// Copyright 2026 The streambid Authors
// The debug-build deadlock sentinel (see lock_order.h). Compiled to an
// empty translation unit unless -DSTREAMBID_LOCK_ORDER=ON.

#include "common/lock_order.h"

#if STREAMBID_LOCK_ORDER

#include <cstdio>
#include <cstdlib>

namespace streambid::lock_order {

namespace {

struct HeldLock {
  int rank = 0;
  const char* name = nullptr;
};

/// The per-thread held-lock stack. A fixed array — the sentinel must
/// not allocate (it runs inside Mutex::lock on allocation-free hot
/// paths, under TSan, and possibly under a malloc lock).
struct HeldStack {
  HeldLock locks[kMaxHeldLocks];
  int depth = 0;
};

thread_local HeldStack tls_held;

void DumpHeldStack(const HeldStack& held) {
  std::fprintf(stderr, "  held stack (outermost first):\n");
  for (int i = 0; i < held.depth; ++i) {
    std::fprintf(stderr, "    [%d] %s (rank %d)\n", i, held.locks[i].name,
                 held.locks[i].rank);
  }
}

[[noreturn]] void FailOrderViolation(const HeldStack& held, int rank,
                                     const char* name) {
  const HeldLock& top = held.locks[held.depth - 1];
  std::fprintf(stderr,
               "LOCK-ORDER CHECK failed: acquiring \"%s\" (rank %d) while "
               "holding \"%s\" (rank %d) descends the declared hierarchy "
               "(common/lock_order.h: ranks must strictly ascend)\n",
               name, rank, top.name, top.rank);
  DumpHeldStack(held);
  std::abort();
}

void CheckAndPush(LockRank lock_rank, const char* name) {
  HeldStack& held = tls_held;
  const int rank = static_cast<int>(lock_rank);
  if (held.depth > 0 && held.locks[held.depth - 1].rank >= rank) {
    FailOrderViolation(held, rank, name);
  }
  if (held.depth >= kMaxHeldLocks) {
    std::fprintf(stderr,
                 "LOCK-ORDER CHECK failed: held-lock stack overflow "
                 "acquiring \"%s\" (rank %d) — more than %d locks held\n",
                 name, rank, kMaxHeldLocks);
    DumpHeldStack(held);
    std::abort();
  }
  held.locks[held.depth] = HeldLock{rank, name};
  ++held.depth;
}

}  // namespace

void OnAcquire(LockRank rank, const char* name) { CheckAndPush(rank, name); }

void OnTryAcquire(LockRank rank, const char* name) {
  CheckAndPush(rank, name);
}

void OnRelease(LockRank lock_rank, const char* name) {
  HeldStack& held = tls_held;
  const int rank = static_cast<int>(lock_rank);
  // MutexLock scopes release LIFO, so the top almost always matches;
  // searching down tolerates a manual out-of-order unlock.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.locks[i].rank == rank && held.locks[i].name == name) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.locks[j] = held.locks[j + 1];
      }
      --held.depth;
      return;
    }
  }
  std::fprintf(stderr,
               "LOCK-ORDER CHECK failed: releasing \"%s\" (rank %d) that "
               "this thread does not hold\n",
               name, rank);
  DumpHeldStack(held);
  std::abort();
}

int HeldDepth() { return tls_held.depth; }

}  // namespace streambid::lock_order

#endif  // STREAMBID_LOCK_ORDER
