// Copyright 2026 The streambid Authors

#include "gametheory/sybil.h"

#include <algorithm>

#include "common/rng.h"
#include "gametheory/payoff.h"

namespace streambid::gametheory {

SybilAttack FairShareAttack(const auction::AuctionInstance& instance,
                            auction::QueryId attacker_query, int num_fakes,
                            double fake_valuation) {
  SybilAttack attack;
  const auction::UserId attacker = instance.user(attacker_query);
  for (int k = 0; k < num_fakes; ++k) {
    auction::QuerySpec fake;
    fake.user = attacker;  // Payoff attribution only.
    fake.bid = fake_valuation;
    fake.operators = instance.query_operators(attacker_query);
    attack.fake_queries.push_back(std::move(fake));
  }
  return attack;
}

Result<SybilReport> EvaluateSybilAttack(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    auction::UserId attacker, const SybilAttack& attack, uint64_t seed,
    int trials) {
  SybilReport report;
  const std::vector<double> values = TruthfulValues(instance);
  report.payoff_without_attack =
      ExpectedUserPayoff(service, mechanism, instance, capacity, values,
                         attacker, seed, trials);

  STREAMBID_ASSIGN_OR_RETURN(
      auction::AuctionInstance attacked,
      instance.WithExtraOperators(attack.new_operators,
                                  attack.fake_queries));
  // Fake queries are worth nothing to the attacker. Both evaluations
  // share (seed, trial) streams — common random numbers, so randomized
  // mechanisms compare the attack, not partition luck.
  std::vector<double> attacked_values = values;
  attacked_values.resize(static_cast<size_t>(attacked.num_queries()), 0.0);
  report.payoff_with_attack =
      ExpectedUserPayoff(service, mechanism, attacked, capacity,
                         attacked_values, attacker, seed, trials);
  return report;
}

SybilReport SearchSybilAttacks(service::AdmissionService& service,
                               std::string_view mechanism,
                               const auction::AuctionInstance& instance,
                               double capacity, uint64_t seed,
                               int max_attackers, int trials) {
  std::vector<auction::QueryId> attackers;
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    attackers.push_back(i);
  }
  Rng sampler(seed ^ 0x5B11A77Cull);
  sampler.Shuffle(attackers);
  if (max_attackers > 0 &&
      max_attackers < static_cast<int>(attackers.size())) {
    attackers.resize(static_cast<size_t>(max_attackers));
  }

  SybilReport best;
  bool first = true;
  for (auction::QueryId q : attackers) {
    for (int fakes : {1, 2, 5, 10}) {
      for (double fake_value : {1e-6, 0.5, 1.0}) {
        const SybilAttack attack =
            FairShareAttack(instance, q, fakes, fake_value);
        auto result = EvaluateSybilAttack(service, mechanism, instance,
                                          capacity, instance.user(q),
                                          attack, seed, trials);
        if (!result.ok()) continue;
        if (first || result->Gain() > best.Gain()) {
          best = *result;
          first = false;
        }
      }
    }
  }
  return best;
}

}  // namespace streambid::gametheory
