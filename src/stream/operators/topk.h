// Copyright 2026 The streambid Authors
// Windowed top-k: at each tumbling-window close, emits the k tuples with
// the largest value of `rank_field` (ties broken by arrival order). The
// classic "top movers" query of stock monitoring dashboards.

#ifndef STREAMBID_STREAM_OPERATORS_TOPK_H_
#define STREAMBID_STREAM_OPERATORS_TOPK_H_

#include <map>
#include <string>
#include <vector>

#include "stream/operator.h"
#include "stream/operators/aggregate.h"

namespace streambid::stream {

/// topk(k by field over tumbling window). Output schema = input schema
/// (the winning tuples are re-emitted, stamped with the window end).
class TopKOperator : public OperatorBase {
 public:
  TopKOperator(SchemaPtr input_schema, int k, std::string rank_field,
               VirtualTime window_size,
               double cost_per_tuple = DefaultCosts::kTopK);

  SchemaPtr output_schema() const override { return schema_; }

  void Process(int port, const Tuple& tuple,
               std::vector<Tuple>* out) override;

  void AdvanceTime(VirtualTime now, std::vector<Tuple>* out) override;

  void Reset() override;

 private:
  struct OpenWindow {
    // Kept sorted ascending by rank value; holds at most k entries.
    std::vector<Tuple> best;
  };

  VirtualTime WindowStart(VirtualTime ts) const;

  SchemaPtr schema_;
  int k_;
  int rank_index_;
  VirtualTime window_size_;
  std::map<VirtualTime, OpenWindow> open_;
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_OPERATORS_TOPK_H_
