// Copyright 2026 The streambid Authors
// Period pipelining contract: a cluster whose periods run as per-shard
// prepare -> admit -> complete chains on the persistent executor pool
// must produce ClusterPeriodReports byte-identical to the barriered
// reference implementation, at pool sizes 1/2/8, with and without
// autoscaling — and all period work must land on pool workers (no
// per-period threads). Also covers the BeginPeriod/EndPeriod surface.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "cluster/cluster_center.h"
#include "cluster/task_executor.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

namespace streambid::cluster {
namespace {

constexpr int kPeriods = 8;
constexpr int kShards = 4;

Status RegisterQuotes(stream::Engine& engine) {
  return engine.RegisterSource(stream::MakeStockQuoteSource(
      "quotes", {"IBM", "AAPL", "MSFT"}, 100.0, 11));
}

stream::QuerySubmission MakeSubmission(int id, auction::UserId user,
                                       double bid, double threshold) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(threshold));
  stream::QuerySubmission sub;
  sub.query_id = id;
  sub.user = user;
  sub.bid = bid;
  sub.plan = b.Build(sel);
  return sub;
}

/// Bursty tenant count: spikes, a trickle, and one fully idle period,
/// so the identity check covers loaded, light, and no-auction shards.
int TenantsFor(int period) {
  if (period == 5) return 0;
  return period % 3 == 0 ? 10 : 4;
}

ClusterOptions BaseOptions(int executor_threads, bool autoscale) {
  ClusterOptions options;
  options.num_shards = kShards;
  options.total_capacity = 8.0;
  options.routing = RoutingPolicy::kHashUser;
  options.mechanism = "cat";
  options.period_length = 5.0;
  options.seed = 61;
  options.engine_options.tick = 1.0;
  options.engine_options.sink_history = 4;
  options.executor_threads = executor_threads;
  if (autoscale) {
    options.autoscale.enabled = true;
    options.autoscale.min_capacity_ratio = 0.25;
    options.autoscale.min_dwell_periods = 2;
  }
  return options;
}

void SubmitTenants(ClusterCenter& cluster, int period) {
  for (int t = 1; t <= TenantsFor(period); ++t) {
    ASSERT_TRUE(cluster
                    .Submit(MakeSubmission(t, t, 55.0 - 3.0 * t,
                                           100.0 + 5.0 * (t % 4)))
                    .ok());
  }
}

void ExpectReportsIdentical(const cloud::PeriodReport& a,
                            const cloud::PeriodReport& b) {
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.mechanism, b.mechanism);
  EXPECT_EQ(a.submissions, b.submissions);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.admitted_ids, b.admitted_ids);
  EXPECT_EQ(a.payments, b.payments);
  // Byte-identical doubles: pipelining must be invisible, not "close".
  EXPECT_EQ(a.revenue, b.revenue);
  EXPECT_EQ(a.total_payoff, b.total_payoff);
  EXPECT_EQ(a.auction_utilization, b.auction_utilization);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.shed_fraction, b.shed_fraction);
  EXPECT_EQ(a.provisioned_capacity, b.provisioned_capacity);
  EXPECT_EQ(a.energy_cost, b.energy_cost);
  ASSERT_EQ(a.autoscale_decision.has_value(),
            b.autoscale_decision.has_value());
  if (a.autoscale_decision.has_value()) {
    EXPECT_EQ(a.autoscale_decision->capacity,
              b.autoscale_decision->capacity);
    EXPECT_EQ(a.autoscale_decision->changed,
              b.autoscale_decision->changed);
    EXPECT_EQ(a.autoscale_decision->reason,
              b.autoscale_decision->reason);
  }
}

void ExpectClusterReportsIdentical(const ClusterPeriodReport& a,
                                   const ClusterPeriodReport& b) {
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.submissions, b.submissions);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.revenue, b.revenue);
  EXPECT_EQ(a.total_payoff, b.total_payoff);
  EXPECT_EQ(a.auction_utilization, b.auction_utilization);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.provisioned_capacity, b.provisioned_capacity);
  EXPECT_EQ(a.energy_cost, b.energy_cost);
  ASSERT_EQ(a.shard_reports.size(), b.shard_reports.size());
  for (size_t s = 0; s < a.shard_reports.size(); ++s) {
    ExpectReportsIdentical(a.shard_reports[s], b.shard_reports[s]);
  }
}

/// Runs kPeriods through either the pipelined or the barriered path.
std::vector<ClusterPeriodReport> RunPeriods(int executor_threads,
                                            bool autoscale,
                                            bool pipelined) {
  ClusterCenter cluster(BaseOptions(executor_threads, autoscale),
                        RegisterQuotes);
  std::vector<ClusterPeriodReport> reports;
  for (int period = 0; period < kPeriods; ++period) {
    SubmitTenants(cluster, period);
    const auto report =
        pipelined ? cluster.RunPeriod() : cluster.RunPeriodBarriered();
    EXPECT_TRUE(report.ok());
    reports.push_back(*report);
  }
  return reports;
}

TEST(PeriodPipelineTest, PipelinedMatchesBarrieredAtEveryPoolSize) {
  const auto barriered = RunPeriods(2, /*autoscale=*/false,
                                    /*pipelined=*/false);
  ASSERT_EQ(barriered.size(), static_cast<size_t>(kPeriods));
  for (int threads : {1, 2, 8}) {
    const auto pipelined = RunPeriods(threads, /*autoscale=*/false,
                                      /*pipelined=*/true);
    ASSERT_EQ(pipelined.size(), barriered.size()) << threads;
    for (size_t p = 0; p < barriered.size(); ++p) {
      ExpectClusterReportsIdentical(pipelined[p], barriered[p]);
    }
  }
}

/// Like RunPeriods (pipelined, no autoscale), but with the executor's
/// stealing mode and victim-scan seed set explicitly.
std::vector<ClusterPeriodReport> RunPeriodsStealing(int executor_threads,
                                                    bool stealing,
                                                    uint64_t steal_seed) {
  ClusterOptions options = BaseOptions(executor_threads,
                                       /*autoscale=*/false);
  options.executor_stealing = stealing;
  options.executor_steal_seed = steal_seed;
  ClusterCenter cluster(options, RegisterQuotes);
  std::vector<ClusterPeriodReport> reports;
  for (int period = 0; period < kPeriods; ++period) {
    SubmitTenants(cluster, period);
    const auto report = cluster.RunPeriod();
    EXPECT_TRUE(report.ok());
    reports.push_back(*report);
  }
  return reports;
}

TEST(PeriodPipelineTest, StealingIsInvisibleToReportsAtEveryPoolSize) {
  // The determinism contract: stealing moves where a task runs, never
  // what it computes. Reports with stealing on and off (the
  // single-queue-equivalent reference mode) must be byte-identical to
  // the barriered reference at pools 1/2/8.
  const auto barriered = RunPeriods(2, /*autoscale=*/false,
                                    /*pipelined=*/false);
  for (int threads : {1, 2, 8}) {
    for (const bool stealing : {true, false}) {
      const auto reports =
          RunPeriodsStealing(threads, stealing, ExecutorOptions{}.steal_seed);
      ASSERT_EQ(reports.size(), barriered.size())
          << threads << " stealing=" << stealing;
      for (size_t p = 0; p < barriered.size(); ++p) {
        ExpectClusterReportsIdentical(reports[p], barriered[p]);
      }
    }
  }
}

TEST(PeriodPipelineTest, StealSeedNeverChangesResults) {
  // The seed rotates each worker's victim-scan order; any observable
  // difference between seeds would mean a task's result depended on
  // which worker ran it.
  const auto reference = RunPeriodsStealing(8, /*stealing=*/true, 1);
  for (const uint64_t seed : {uint64_t{7}, uint64_t{99},
                              uint64_t{0xDEADBEEF}}) {
    const auto reports = RunPeriodsStealing(8, /*stealing=*/true, seed);
    ASSERT_EQ(reports.size(), reference.size()) << seed;
    for (size_t p = 0; p < reference.size(); ++p) {
      ExpectClusterReportsIdentical(reports[p], reference[p]);
    }
  }
}

TEST(PeriodPipelineTest, PipelinedMatchesBarrieredUnderAutoscaling) {
  // The prepare stage now fans out per shard (candidate grid and all);
  // autoscaled provisioning decisions must still replay identically.
  const auto barriered = RunPeriods(2, /*autoscale=*/true,
                                    /*pipelined=*/false);
  for (int threads : {1, 2, 8}) {
    const auto pipelined = RunPeriods(threads, /*autoscale=*/true,
                                      /*pipelined=*/true);
    ASSERT_EQ(pipelined.size(), barriered.size()) << threads;
    for (size_t p = 0; p < barriered.size(); ++p) {
      ExpectClusterReportsIdentical(pipelined[p], barriered[p]);
    }
  }
  // The runs must actually have moved capacity to count as coverage.
  bool any_change = false;
  for (const ClusterPeriodReport& report : barriered) {
    for (const cloud::PeriodReport& shard : report.shard_reports) {
      any_change = any_change || (shard.autoscale_decision.has_value() &&
                                  shard.autoscale_decision->changed);
    }
  }
  EXPECT_TRUE(any_change);
}

TEST(PeriodPipelineTest, AllPeriodWorkLandsOnPoolWorkers) {
  // The satellite check for "no per-period threads": after P pipelined
  // periods, every task is accounted to one of the pool's workers, and
  // the chain count is exactly periods x shards — there is nowhere else
  // work could have run.
  ClusterCenter cluster(BaseOptions(2, /*autoscale=*/false),
                        RegisterQuotes);
  for (int period = 0; period < 3; ++period) {
    SubmitTenants(cluster, period);
    ASSERT_TRUE(cluster.RunPeriod().ok());
  }
  const ExecutorStats stats = cluster.executor().StatsReport();
  ASSERT_EQ(stats.tasks_per_worker.size(), 2u);
  EXPECT_EQ(std::accumulate(stats.tasks_per_worker.begin(),
                            stats.tasks_per_worker.end(), int64_t{0}),
            static_cast<int64_t>(3 * kShards));
  // Every shard auction that ran went through a worker-local service
  // and landed in the rolling stats.
  int64_t mechanism_count = 0;
  for (const auto& [name, m] : stats.per_mechanism) {
    EXPECT_EQ(name, "cat");
    mechanism_count += m.count;
  }
  EXPECT_EQ(stats.total_requests, mechanism_count);
  EXPECT_GT(mechanism_count, 0);
}

TEST(PeriodPipelineTest, DroppingPendingPeriodWithoutEndIsSafe) {
  // Regression: the executor is the cluster's last-declared member, so
  // destruction joins the pool before freeing the shards a still-running
  // period chain dereferences. Without the ordering this is a
  // heap-use-after-free the ASan CI job catches.
  for (int round = 0; round < 10; ++round) {
    ClusterCenter cluster(BaseOptions(2, /*autoscale=*/false),
                          RegisterQuotes);
    SubmitTenants(cluster, 0);
    const auto period = cluster.BeginPeriod();
    ASSERT_TRUE(period.ok());
    // Drop the handle and the cluster with chains possibly in flight.
  }
  SUCCEED();
}

TEST(PeriodPipelineTest, EndPeriodRejectsForeignAndStaleHandles) {
  ClusterCenter cluster(BaseOptions(2, /*autoscale=*/false),
                        RegisterQuotes);
  auto first = cluster.BeginPeriod();
  ASSERT_TRUE(first.ok());
  PendingPeriod foreign;  // Default-constructed: no owner, no tickets.
  EXPECT_EQ(cluster.EndPeriod(foreign).status().code(),
            StatusCode::kFailedPrecondition);

  // Another cluster's live handle must not end this cluster's period.
  ClusterCenter other(BaseOptions(2, /*autoscale=*/false),
                      RegisterQuotes);
  auto other_period = other.BeginPeriod();
  ASSERT_TRUE(other_period.ok());
  EXPECT_EQ(cluster.EndPeriod(*other_period).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(other.EndPeriod(*other_period).ok());

  // A stale copy of an already-ended handle must not end a LATER
  // period: ending period 2 with period 1's copy would unfreeze Submit
  // while period 2's chains still run and strand period 2's tickets.
  PendingPeriod stale_copy = *first;
  ASSERT_TRUE(cluster.EndPeriod(*first).ok());
  auto second = cluster.BeginPeriod();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cluster.EndPeriod(stale_copy).status().code(),
            StatusCode::kFailedPrecondition);
  // The live handle still works and the surface stayed frozen in between.
  ASSERT_TRUE(cluster.EndPeriod(*second).ok());
  EXPECT_EQ(cluster.history().size(), 2u);
}

TEST(PeriodPipelineTest, BeginEndPeriodSurface) {
  ClusterCenter cluster(BaseOptions(2, /*autoscale=*/false),
                        RegisterQuotes);
  SubmitTenants(cluster, 0);

  auto period = cluster.BeginPeriod();
  ASSERT_TRUE(period.ok());

  // The surface freezes while the period is in flight.
  EXPECT_EQ(cluster.Submit(MakeSubmission(99, 99, 10.0, 110.0))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.BeginPeriod().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.RunPeriod().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.RunPeriodBarriered().status().code(),
            StatusCode::kFailedPrecondition);

  const auto report = cluster.EndPeriod(*period);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->submissions, TenantsFor(0));
  EXPECT_EQ(cluster.history().size(), 1u);

  // The handle is consumed exactly once.
  EXPECT_EQ(cluster.EndPeriod(*period).status().code(),
            StatusCode::kFailedPrecondition);

  // The surface thaws: Submit and the next period work again, and the
  // split path produced the same thing RunPeriod would have.
  ASSERT_TRUE(cluster.Submit(MakeSubmission(7, 7, 20.0, 105.0)).ok());
  const auto next = cluster.RunPeriod();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->period, 1);

  ClusterCenter twin(BaseOptions(2, /*autoscale=*/false), RegisterQuotes);
  SubmitTenants(twin, 0);
  const auto twin_report = twin.RunPeriod();
  ASSERT_TRUE(twin_report.ok());
  ExpectClusterReportsIdentical(*report, *twin_report);
}

}  // namespace
}  // namespace streambid::cluster
