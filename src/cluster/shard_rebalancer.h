// Copyright 2026 The streambid Authors
// Inter-period tenant migration planning for the sharded deployment.
// The paper's admission auctions price capacity under the assumption
// that one center sees all competing queries; a static hash placement
// breaks that — a hot shard rejects bidders (revenue on the floor)
// while a cold shard idles. The ShardRebalancer closes the gap: between
// periods it reads the router-visible ShardStatus signals (pending
// load, clearing price, admission rate, next_capacity) plus the latest
// per-shard PeriodReports and emits a bounded migration plan that moves
// tenants from the most pressured shard to the least pressured one.
//
// Determinism contract: Plan() is a pure function of its inputs and
// the construction-time (options, seed). It never reads a clock, an
// RNG stream, or executor state, so a cluster that replays the same
// submission history produces the identical migration sequence at
// every executor pool size — the same contract every other period
// stage already honors.
//
// Hysteresis, so placement cannot thrash:
//  - a plan is only emitted when the hot shard's recent demand exceeds
//    its next-period capacity AND it rejected work in the last period
//    (there is actual revenue to recover, not just noise);
//  - the hot/cold pressure gap must exceed min_pressure_gap;
//  - each move must keep the destination strictly less pressured than
//    the source after the move (a move can narrow the gap, never
//    invert it);
//  - a moved tenant is pinned for tenant_cooldown_periods;
//  - at most max_moves_per_period tenants move per period.

#ifndef STREAMBID_CLUSTER_SHARD_REBALANCER_H_
#define STREAMBID_CLUSTER_SHARD_REBALANCER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "auction/types.h"
#include "cloud/dsms_center.h"
#include "cluster/shard_router.h"

namespace streambid::cluster {

/// Migration-planning knobs. All thresholds are hysteresis: they gate
/// when a plan is emitted, not what the plan optimizes.
struct RebalancerOptions {
  bool enabled = false;
  /// Upper bound on tenants moved per period (>= 1 when enabled).
  int max_moves_per_period = 2;
  /// Completed periods required before the first plan (the signals
  /// need at least one auction outcome to mean anything).
  int min_history_periods = 2;
  /// A migrated tenant stays put for this many periods.
  int tenant_cooldown_periods = 3;
  /// Required relative pressure gap: the hot shard's demand/capacity
  /// must exceed the cold shard's by this fraction before any move.
  double min_pressure_gap = 0.25;
  /// Tie-break stream for tenants with exactly equal load; part of the
  /// (history, seed) determinism contract.
  uint64_t seed = 1;
};

/// What the planner knows about one tenant: its current placement and
/// the demand it generated recently. Maintained by the ClusterCenter
/// from its submit-time load estimates.
struct TenantSignal {
  auction::UserId user = 0;
  int home = 0;           ///< Shard the tenant's submissions route to.
  double load = 0.0;      ///< Estimated demand in its last active period.
  int last_active_period = -1;
  /// Period index of the tenant's last migration; the sentinel means
  /// never moved.
  int last_moved_period = std::numeric_limits<int>::min();
};

/// One planned migration.
struct TenantMove {
  auction::UserId user = 0;
  int from = 0;
  int to = 0;
  double load = 0.0;  ///< The signal load the planner shifted.
};

/// The planner's decision for one period boundary, including the
/// pressure diagnostics even when no move cleared the hysteresis.
struct MigrationPlan {
  int period = 0;       ///< Completed periods when planned.
  int hot_shard = -1;   ///< Highest demand/capacity shard (-1: no data).
  int cold_shard = -1;  ///< Lowest demand/capacity eligible shard.
  double hot_pressure = 0.0;
  double cold_pressure = 0.0;
  std::vector<TenantMove> moves;
};

/// Stateless migration planner (const after construction); the owner
/// feeds it signals and applies the plan.
class ShardRebalancer {
 public:
  /// Preconditions (checked): num_shards >= 1; when enabled,
  /// max_moves_per_period >= 1 and min_pressure_gap >= 0.
  ShardRebalancer(const RebalancerOptions& options, int num_shards);

  /// Plans the migrations to apply before the next period.
  /// `completed_periods` counts finished periods; `statuses` is the
  /// router's per-shard view (size num_shards, refreshed at the period
  /// close); `last_reports` is the latest period's per-shard reports
  /// (size num_shards, or empty before any period); `tenants` carries
  /// one signal per known tenant in any order (the planner sorts).
  /// Pure function of the arguments and (options, seed).
  MigrationPlan Plan(int completed_periods,
                     const std::vector<ShardStatus>& statuses,
                     const std::vector<cloud::PeriodReport>& last_reports,
                     std::vector<TenantSignal> tenants) const;

  const RebalancerOptions& options() const { return options_; }
  int num_shards() const { return num_shards_; }

 private:
  RebalancerOptions options_;
  int num_shards_;
};

}  // namespace streambid::cluster

#endif  // STREAMBID_CLUSTER_SHARD_REBALANCER_H_
