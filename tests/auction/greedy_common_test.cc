// Copyright 2026 The streambid Authors

#include "auction/greedy_common.h"

#include <gtest/gtest.h>

namespace streambid::auction {
namespace {

AuctionInstance Make(std::vector<double> op_loads,
                     std::vector<QuerySpec> queries) {
  std::vector<OperatorSpec> ops;
  for (double l : op_loads) ops.push_back({l});
  auto r = AuctionInstance::Create(std::move(ops), std::move(queries));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(GreedyCommonTest, LoadOfBases) {
  AuctionInstance inst =
      Make({4.0, 2.0}, {{0, 10.0, {0, 1}}, {1, 8.0, {0}}});
  EXPECT_DOUBLE_EQ(LoadOf(inst, 0, LoadBasis::kTotal), 6.0);
  EXPECT_DOUBLE_EQ(LoadOf(inst, 0, LoadBasis::kFairShare), 4.0);  // 2+2.
  EXPECT_DOUBLE_EQ(LoadOf(inst, 0, LoadBasis::kUnit), 1.0);
}

TEST(GreedyCommonTest, PriorityOrderSortsByDensity) {
  // Bids 10/6, 8/4 -> densities 1.67, 2.0: q1 first under kTotal.
  AuctionInstance inst =
      Make({6.0, 4.0}, {{0, 10.0, {0}}, {1, 8.0, {1}}});
  const auto order = PriorityOrder(inst, LoadBasis::kTotal);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
}

TEST(GreedyCommonTest, PriorityOrderUnitIsBidOrder) {
  AuctionInstance inst =
      Make({6.0, 4.0, 1.0},
           {{0, 10.0, {0}}, {1, 80.0, {1}}, {2, 30.0, {2}}});
  const auto order = PriorityOrder(inst, LoadBasis::kUnit);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 0);
}

TEST(GreedyCommonTest, TieBrokenByQueryId) {
  AuctionInstance inst = Make({2.0, 2.0}, {{0, 4.0, {0}}, {1, 4.0, {1}}});
  const auto order = PriorityOrder(inst, LoadBasis::kTotal);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST(GreedyCommonTest, StopPolicyHaltsAtFirstMisfit) {
  // Order: q0 (load 5), q1 (load 6, misfit), q2 (load 1, would fit).
  AuctionInstance inst = Make({5.0, 6.0, 1.0}, {{0, 50.0, {0}},
                                                {1, 54.0, {1}},
                                                {2, 6.0, {2}}});
  const GreedyScan scan =
      RunGreedy(inst, 7.0, LoadBasis::kTotal, MisfitPolicy::kStop);
  EXPECT_TRUE(scan.admitted[0]);
  EXPECT_FALSE(scan.admitted[1]);
  EXPECT_FALSE(scan.admitted[2]);  // Never reached.
  EXPECT_EQ(scan.first_loser_pos, 1);
  EXPECT_DOUBLE_EQ(scan.used, 5.0);
}

TEST(GreedyCommonTest, SkipPolicyContinuesPastMisfit) {
  AuctionInstance inst = Make({5.0, 6.0, 1.0}, {{0, 50.0, {0}},
                                                {1, 54.0, {1}},
                                                {2, 6.0, {2}}});
  const GreedyScan scan =
      RunGreedy(inst, 7.0, LoadBasis::kTotal, MisfitPolicy::kSkip);
  EXPECT_TRUE(scan.admitted[0]);
  EXPECT_FALSE(scan.admitted[1]);
  EXPECT_TRUE(scan.admitted[2]);  // Skipped over q1.
  EXPECT_EQ(scan.first_loser_pos, 1);
  EXPECT_DOUBLE_EQ(scan.used, 6.0);
}

TEST(GreedyCommonTest, SharedOperatorsReduceConsumption) {
  // Both queries contain op0; admitting the second costs only its
  // private op.
  AuctionInstance inst =
      Make({4.0, 1.0, 2.0}, {{0, 55.0, {0, 1}}, {1, 72.0, {0, 2}}});
  const GreedyScan scan =
      RunGreedy(inst, 7.0, LoadBasis::kTotal, MisfitPolicy::kStop);
  EXPECT_TRUE(scan.admitted[0]);
  EXPECT_TRUE(scan.admitted[1]);
  EXPECT_DOUBLE_EQ(scan.used, 7.0);
  EXPECT_EQ(scan.first_loser_pos, -1);
}

TEST(GreedyCommonTest, NoLoserWhenAllFit) {
  AuctionInstance inst = Make({1.0}, {{0, 5.0, {0}}});
  const GreedyScan scan =
      RunGreedy(inst, 10.0, LoadBasis::kTotal, MisfitPolicy::kStop);
  EXPECT_EQ(scan.first_loser_pos, -1);
  EXPECT_TRUE(scan.admitted[0]);
}

TEST(GreedyCommonTest, ZeroCapacityRejectsAll) {
  AuctionInstance inst = Make({1.0}, {{0, 5.0, {0}}});
  const GreedyScan scan =
      RunGreedy(inst, 0.0, LoadBasis::kTotal, MisfitPolicy::kSkip);
  EXPECT_FALSE(scan.admitted[0]);
  EXPECT_EQ(scan.first_loser_pos, 0);
}

}  // namespace
}  // namespace streambid::auction
