// Copyright 2026 The streambid Authors

#include "stream/load_estimator.h"

#include <gtest/gtest.h>

#include "stream/query_builder.h"

namespace streambid::stream {
namespace {

class LoadEstimatorTest : public ::testing::Test {
 protected:
  LoadEstimatorTest() : engine_(EngineOptions{1000.0, 1.0, 8}) {
    EXPECT_TRUE(engine_
                    .RegisterSource(MakeStockQuoteSource(
                        "quotes", {"IBM", "AAPL"}, 100.0, 3))
                    .ok());
    EXPECT_TRUE(engine_
                    .RegisterSource(MakeNewsSource("news", {"IBM", "AAPL"},
                                                   0.5, 10.0, 4))
                    .ok());
  }

  QueryPlan SelectPlan(double threshold) {
    QueryBuilder b;
    const int src = b.Source("quotes");
    const int sel =
        b.Select(src, "price", CompareOp::kGt, Value(threshold));
    return b.Build(sel);
  }

  Engine engine_;
  LoadEstimateOptions options_;
};

TEST_F(LoadEstimatorTest, SelectLoadIsCostTimesRate) {
  auto est = EstimatePlanLoad(engine_, SelectPlan(100.0), options_);
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est->nodes.size(), 2u);
  EXPECT_TRUE(est->nodes[0].is_source);
  EXPECT_DOUBLE_EQ(est->nodes[0].output_rate, 100.0);
  // Select: input 100/s * default cost 0.01 = 1 capacity unit.
  EXPECT_DOUBLE_EQ(est->nodes[1].input_rate, 100.0);
  EXPECT_DOUBLE_EQ(est->nodes[1].load, 1.0);
  EXPECT_DOUBLE_EQ(est->nodes[1].output_rate, 50.0);  // Selectivity 0.5.
  EXPECT_DOUBLE_EQ(est->total_load, 1.0);
}

TEST_F(LoadEstimatorTest, ChainedSelectivityCompounds) {
  QueryBuilder b;
  const int src = b.Source("quotes");
  const int s1 = b.Select(src, "price", CompareOp::kGt, Value(10.0));
  const int s2 = b.Select(s1, "volume", CompareOp::kGt,
                          Value(int64_t{100}));
  auto est = EstimatePlanLoad(engine_, b.Build(s2), options_);
  ASSERT_TRUE(est.ok());
  // Second select sees 50/s, outputs 25/s.
  EXPECT_DOUBLE_EQ(est->nodes[2].input_rate, 50.0);
  EXPECT_DOUBLE_EQ(est->nodes[2].output_rate, 25.0);
  EXPECT_DOUBLE_EQ(est->nodes[2].load, 0.5);
}

TEST_F(LoadEstimatorTest, JoinRateUsesWindowAndMatchFraction) {
  QueryBuilder b;
  const int quotes = b.Source("quotes");
  const int news = b.Source("news");
  const int j = b.Join(quotes, news, "symbol", "company", 10.0);
  auto est = EstimatePlanLoad(engine_, b.Build(j), options_);
  ASSERT_TRUE(est.ok());
  const NodeLoadEstimate& join = est->nodes[2];
  EXPECT_DOUBLE_EQ(join.input_rate, 110.0);  // Both sides.
  // 100 * 10 * 10s * 0.01 match fraction = 100/s out.
  EXPECT_DOUBLE_EQ(join.output_rate, 100.0);
  EXPECT_DOUBLE_EQ(join.load, 110.0 * DefaultCosts::kJoin);
}

TEST_F(LoadEstimatorTest, CostOverrideRespected) {
  QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", CompareOp::kGt, Value(1.0));
  b.SetCostOverride(0.05);
  auto est = EstimatePlanLoad(engine_, b.Build(sel), options_);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->nodes[1].load, 5.0);  // 100/s * 0.05.
}

TEST_F(LoadEstimatorTest, MeasuredLoadPreferredWhenInstalled) {
  const QueryPlan plan = SelectPlan(0.0);  // Passes everything.
  ASSERT_TRUE(engine_.InstallQuery(1, plan).ok());
  engine_.Run(10.0);
  LoadEstimateOptions prefer = options_;
  prefer.prefer_measured = true;
  auto est = EstimatePlanLoad(engine_, plan, prefer);
  ASSERT_TRUE(est.ok());
  auto measured = engine_.MeasuredLoad(plan.NodeSignature(plan.output_node));
  ASSERT_TRUE(measured.ok());
  EXPECT_DOUBLE_EQ(est->nodes[1].load, *measured);

  LoadEstimateOptions analytic = options_;
  analytic.prefer_measured = false;
  auto est2 = EstimatePlanLoad(engine_, plan, analytic);
  ASSERT_TRUE(est2.ok());
  EXPECT_DOUBLE_EQ(est2->nodes[1].load, 1.0);  // Model, not measurement.
}

TEST_F(LoadEstimatorTest, BuildAuctionInstanceSharesOperators) {
  std::vector<QuerySubmission> subs;
  QuerySubmission a;
  a.query_id = 10;
  a.user = 1;
  a.bid = 50.0;
  a.plan = SelectPlan(100.0);
  QuerySubmission b_sub;
  b_sub.query_id = 11;
  b_sub.user = 2;
  b_sub.bid = 30.0;
  b_sub.plan = SelectPlan(100.0);  // Identical plan: full sharing.
  QuerySubmission c;
  c.query_id = 12;
  c.user = 3;
  c.bid = 20.0;
  c.plan = SelectPlan(200.0);  // Different predicate.
  subs = {a, b_sub, c};

  auto build = BuildAuctionInstance(engine_, subs, options_);
  ASSERT_TRUE(build.ok());
  const auction::AuctionInstance& inst = build->instance;
  EXPECT_EQ(inst.num_queries(), 3);
  // Two distinct select operators (sources excluded).
  EXPECT_EQ(inst.num_operators(), 2);
  EXPECT_EQ(inst.sharing_degree(0), 2);
  EXPECT_EQ(inst.sharing_degree(1), 1);
  EXPECT_EQ(build->query_ids, (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(build->op_signatures.size(), 2u);
  // Queries 0 and 1 share their only operator; fair share halves.
  EXPECT_DOUBLE_EQ(inst.fair_share_load(0), inst.total_load(0) / 2.0);
}

TEST_F(LoadEstimatorTest, SourceOnlyPlanRejected) {
  QueryBuilder b;
  const int src = b.Source("quotes");
  QuerySubmission sub;
  sub.query_id = 1;
  sub.plan = b.Build(src);
  sub.bid = 5.0;
  auto build = BuildAuctionInstance(engine_, {sub}, options_);
  EXPECT_FALSE(build.ok());
}

TEST_F(LoadEstimatorTest, UnknownSourceFails) {
  QueryBuilder b;
  const int src = b.Source("bogus");
  const int sel = b.Select(src, "x", CompareOp::kGt, Value(1.0));
  auto est = EstimatePlanLoad(engine_, b.Build(sel), options_);
  EXPECT_FALSE(est.ok());
}

}  // namespace
}  // namespace streambid::stream
