// Copyright 2026 The streambid Authors
// Abstract interface implemented by every admission control mechanism.

#ifndef STREAMBID_AUCTION_MECHANISM_H_
#define STREAMBID_AUCTION_MECHANISM_H_

#include <memory>
#include <string>

#include "auction/allocation.h"
#include "auction/context.h"
#include "auction/instance.h"

namespace streambid::auction {

/// Declared game-theoretic properties of a mechanism (paper Tables I/V).
/// These are the *claimed* properties; the gametheory harness verifies
/// them empirically and the unit tests verify the paper's hand examples.
struct MechanismProperties {
  bool strategyproof = false;
  bool sybil_immune = false;
  bool profit_guarantee = false;
  bool randomized = false;
};

/// An admission control auction mechanism: given an instance and a server
/// capacity, selects winners and computes payments.
///
/// Implementations must be stateless w.r.t. Run (safe to reuse across
/// instances); randomized mechanisms draw from the context's Rng only,
/// and any implementation may use the context's scratch workspace.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Stable lowercase identifier (e.g. "caf+", "two-price").
  virtual const std::string& name() const = 0;

  /// Claimed properties, mirroring paper Table I.
  virtual MechanismProperties properties() const = 0;

  /// Runs the auction. The context supplies the RNG stream (consumed
  /// only by randomized mechanisms — Random baseline, Two-price) and a
  /// scratch workspace reused across calls.
  virtual Allocation Run(const AuctionInstance& instance, double capacity,
                         AuctionContext& context) const = 0;
};

using MechanismPtr = std::unique_ptr<Mechanism>;

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_MECHANISM_H_
