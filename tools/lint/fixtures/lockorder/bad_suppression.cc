// Copyright 2026 The streambid Authors
// Fixture: a NOLINT(lockorder) with no reason still suppresses the
// edge, but is itself a finding -- every suppression must say WHY the
// order is safe.

#include "ranks.h"

Mutex g_bad_outer{LockRank::kOuter, "fixture/bad_outer"};
Mutex g_bad_inner{LockRank::kInner, "fixture/bad_inner"};

inline void UnjustifiedInversion() {
  MutexLock inner(g_bad_inner);
  MutexLock outer(g_bad_outer);  // NOLINT(lockorder) -- WANT(bare-suppression)
}
