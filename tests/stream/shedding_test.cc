// Copyright 2026 The streambid Authors
// Tuple-level load shedding (the overload response the paper's
// conclusion contrasts with query-level admission control).

#include <gtest/gtest.h>

#include "stream/engine.h"
#include "stream/query_builder.h"

namespace streambid::stream {
namespace {

/// Fixed-rate source of unit tuples.
class FirehoseSource final : public StreamSource {
 public:
  FirehoseSource(std::string name, double rate)
      : StreamSource(std::move(name),
                     MakeSchema({{"x", ValueType::kDouble}}), rate, 3) {}

 protected:
  std::vector<Value> Generate(VirtualTime ts, Rng& rng) override {
    (void)ts;
    return {Value(rng.NextDouble())};
  }
};

QueryPlan PassAll() {
  QueryBuilder b;
  const int src = b.Source("firehose");
  const int sel = b.Select(src, "x", CompareOp::kGe, Value(0.0));
  return b.Build(sel);
}

TEST(SheddingTest, NoSheddingWhenUnderProvisioned) {
  // Capacity 10 units; one select at 100 tuples/s costs 1 unit.
  Engine engine(EngineOptions{10.0, 1.0, 8, /*shed_on_overload=*/true});
  ASSERT_TRUE(engine
                  .RegisterSource(
                      std::make_unique<FirehoseSource>("firehose", 100.0))
                  .ok());
  ASSERT_TRUE(engine.InstallQuery(1, PassAll()).ok());
  engine.Run(20.0);
  EXPECT_EQ(engine.LastRunShedTuples(), 0);
  EXPECT_DOUBLE_EQ(engine.LastRunShedFraction(), 0.0);
}

TEST(SheddingTest, OverloadTriggersProportionalDrops) {
  // Capacity 0.5 units but the query needs ~1 unit: the controller
  // should shed roughly half the arriving tuples.
  Engine engine(EngineOptions{0.5, 1.0, 8, /*shed_on_overload=*/true});
  ASSERT_TRUE(engine
                  .RegisterSource(
                      std::make_unique<FirehoseSource>("firehose", 100.0))
                  .ok());
  ASSERT_TRUE(engine.InstallQuery(1, PassAll()).ok());
  engine.Run(100.0);
  EXPECT_GT(engine.LastRunShedTuples(), 0);
  EXPECT_NEAR(engine.LastRunShedFraction(), 0.5, 0.1);
  // Post-shedding load respects the capacity (within controller lag).
  EXPECT_LE(engine.LastRunUtilization(), 1.2);
}

TEST(SheddingTest, DisabledByDefault) {
  Engine engine(EngineOptions{0.5, 1.0, 8});  // shed_on_overload=false.
  ASSERT_TRUE(engine
                  .RegisterSource(
                      std::make_unique<FirehoseSource>("firehose", 100.0))
                  .ok());
  ASSERT_TRUE(engine.InstallQuery(1, PassAll()).ok());
  engine.Run(20.0);
  EXPECT_EQ(engine.LastRunShedTuples(), 0);
  // Without shedding the engine simply runs over capacity.
  EXPECT_GT(engine.LastRunUtilization(), 1.5);
}

TEST(SheddingTest, AdmissionControlAvoidsSheddingEntirely) {
  // The paper's thesis in one test: with a feasible admitted set
  // (auction's promise: union load <= capacity), the shedder never
  // fires even when enabled.
  Engine engine(EngineOptions{1.2, 1.0, 8, /*shed_on_overload=*/true});
  ASSERT_TRUE(engine
                  .RegisterSource(
                      std::make_unique<FirehoseSource>("firehose", 100.0))
                  .ok());
  ASSERT_TRUE(engine.InstallQuery(1, PassAll()).ok());  // ~1.0 unit.
  engine.Run(50.0);
  EXPECT_EQ(engine.LastRunShedTuples(), 0);
  EXPECT_LE(engine.LastRunUtilization(), 1.0);
}

TEST(SheddingTest, ShedCountersResetPerRun) {
  Engine engine(EngineOptions{0.5, 1.0, 8, /*shed_on_overload=*/true});
  ASSERT_TRUE(engine
                  .RegisterSource(
                      std::make_unique<FirehoseSource>("firehose", 100.0))
                  .ok());
  ASSERT_TRUE(engine.InstallQuery(1, PassAll()).ok());
  engine.Run(50.0);
  ASSERT_GT(engine.LastRunShedTuples(), 0);
  ASSERT_TRUE(engine.UninstallQuery(1).ok());
  engine.Run(10.0);  // Nothing installed: nothing shed.
  EXPECT_EQ(engine.LastRunShedTuples(), 0);
}

}  // namespace
}  // namespace streambid::stream
