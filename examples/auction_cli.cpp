// Copyright 2026 The streambid Authors
// File-driven auction runner: load (or generate) a workload, run one or
// all admission mechanisms at a capacity, print the §VI metrics.
//
// Usage:
//   auction_cli                          # self-demo: generate, save,
//                                        # reload, run all mechanisms
//   auction_cli <workload-file>          # run all mechanisms @ 15000
//   auction_cli <workload-file> <mech> <capacity>
//
// Workload files use the format of src/workload/io.h; generate one with
// the self-demo and edit it by hand to explore.

#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "service/admission_service.h"
#include "workload/generator.h"
#include "workload/io.h"

namespace {

using namespace streambid;

int RunMechanisms(const auction::AuctionInstance& instance,
                  const std::vector<std::string>& names, double capacity) {
  std::printf("%s @ capacity %.0f\n", instance.Summary().c_str(),
              capacity);
  service::AdmissionService service;
  TextTable table({"mechanism", "admitted", "profit", "payoff",
                   "utilization"});
  for (const std::string& name : names) {
    auto properties = service.Properties(name);
    if (!properties.ok()) {
      std::fprintf(stderr, "%s\n",
                   properties.status().ToString().c_str());
      return 1;
    }
    // Average randomized mechanisms over a few runs — one batch, one
    // deterministic (seed, trial) stream per run.
    const int trials = properties->randomized ? 9 : 1;
    std::vector<service::AdmissionRequest> requests;
    for (int t = 0; t < trials; ++t) {
      service::AdmissionRequest request;
      request.instance = &instance;
      request.capacity = capacity;
      request.mechanism = name;
      request.seed = 2026;
      request.request_index = static_cast<uint32_t>(t);
      requests.push_back(std::move(request));
    }
    auto responses = service.AdmitBatch(requests);
    if (!responses.ok()) {
      std::fprintf(stderr, "%s\n",
                   responses.status().ToString().c_str());
      return 1;
    }
    auction::AllocationMetrics mean;
    for (const service::AdmissionResponse& response : *responses) {
      mean.profit += response.metrics.profit / trials;
      mean.admission_rate += response.metrics.admission_rate / trials;
      mean.total_payoff += response.metrics.total_payoff / trials;
      mean.utilization += response.metrics.utilization / trials;
    }
    table.AddRow({name, FormatPercent(mean.admission_rate, 1),
                  FormatDouble(mean.profit, 1),
                  FormatDouble(mean.total_payoff, 1),
                  FormatPercent(mean.utilization, 1)});
  }
  std::fputs(table.ToAligned().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  workload::RawWorkload raw;
  if (argc >= 2) {
    auto loaded = workload::LoadWorkload(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    raw = std::move(loaded).value();
  } else {
    // Self-demo: small Table III workload, round-tripped through a file
    // so the format is demonstrated.
    workload::WorkloadParams params;
    params.num_queries = 300;
    params.base_num_operators = 105;
    Rng rng(42);
    raw = workload::GenerateBaseWorkload(params, rng);
    const std::string path = "/tmp/streambid_demo_workload.txt";
    if (workload::SaveWorkload(raw, path).ok()) {
      std::printf("(self-demo workload written to %s)\n", path.c_str());
      raw = std::move(workload::LoadWorkload(path)).value();
    }
  }

  auto instance = raw.ToInstance();
  if (!instance.ok()) {
    std::fprintf(stderr, "bad workload: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> names =
      service::AdmissionService().MechanismNames();
  double capacity = argc >= 2 ? 15000.0 : instance->total_union_load() * 0.5;
  if (argc >= 3) names = {argv[2]};
  if (argc >= 4) capacity = std::atof(argv[3]);
  return RunMechanisms(*instance, names, capacity);
}
