// Copyright 2026 The streambid Authors
// File-driven auction runner: load (or generate) a workload, run one or
// all admission mechanisms at a capacity, print the §VI metrics.
//
// Usage:
//   auction_cli                          # self-demo: generate, save,
//                                        # reload, run all mechanisms
//   auction_cli <workload-file>          # run all mechanisms @ 15000
//   auction_cli <workload-file> <mech> <capacity>
//
// Workload files use the format of src/workload/io.h; generate one with
// the self-demo and edit it by hand to explore.

#include <cstdio>
#include <cstdlib>

#include "auction/metrics.h"
#include "auction/registry.h"
#include "common/table.h"
#include "workload/generator.h"
#include "workload/io.h"

namespace {

using namespace streambid;

int RunMechanisms(const auction::AuctionInstance& instance,
                  const std::vector<std::string>& names, double capacity) {
  std::printf("%s @ capacity %.0f\n", instance.Summary().c_str(),
              capacity);
  TextTable table({"mechanism", "admitted", "profit", "payoff",
                   "utilization"});
  for (const std::string& name : names) {
    auto mechanism = auction::MakeMechanism(name);
    if (!mechanism.ok()) {
      std::fprintf(stderr, "%s\n", mechanism.status().ToString().c_str());
      return 1;
    }
    Rng rng(2026);
    // Average randomized mechanisms over a few runs.
    const int trials = (*mechanism)->properties().randomized ? 9 : 1;
    auction::AllocationMetrics mean;
    for (int t = 0; t < trials; ++t) {
      const auction::Allocation alloc =
          (*mechanism)->Run(instance, capacity, rng);
      const auction::AllocationMetrics m =
          auction::ComputeMetrics(instance, alloc);
      mean.profit += m.profit / trials;
      mean.admission_rate += m.admission_rate / trials;
      mean.total_payoff += m.total_payoff / trials;
      mean.utilization += m.utilization / trials;
    }
    table.AddRow({name, FormatPercent(mean.admission_rate, 1),
                  FormatDouble(mean.profit, 1),
                  FormatDouble(mean.total_payoff, 1),
                  FormatPercent(mean.utilization, 1)});
  }
  std::fputs(table.ToAligned().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  workload::RawWorkload raw;
  if (argc >= 2) {
    auto loaded = workload::LoadWorkload(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    raw = std::move(loaded).value();
  } else {
    // Self-demo: small Table III workload, round-tripped through a file
    // so the format is demonstrated.
    workload::WorkloadParams params;
    params.num_queries = 300;
    params.base_num_operators = 105;
    Rng rng(42);
    raw = workload::GenerateBaseWorkload(params, rng);
    const std::string path = "/tmp/streambid_demo_workload.txt";
    if (workload::SaveWorkload(raw, path).ok()) {
      std::printf("(self-demo workload written to %s)\n", path.c_str());
      raw = std::move(workload::LoadWorkload(path)).value();
    }
  }

  auto instance = raw.ToInstance();
  if (!instance.ok()) {
    std::fprintf(stderr, "bad workload: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> names = auction::AllMechanismNames();
  double capacity = argc >= 2 ? 15000.0 : instance->total_union_load() * 0.5;
  if (argc >= 3) names = {argv[2]};
  if (argc >= 4) capacity = std::atof(argv[3]);
  return RunMechanisms(*instance, names, capacity);
}
