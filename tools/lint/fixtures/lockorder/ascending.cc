// Copyright 2026 The streambid Authors
// Fixture: acquisitions that strictly ascend the hierarchy are silent,
// including one reached through a call while a lock is held.

#include "ranks.h"

Mutex g_asc_outer{LockRank::kOuter, "fixture/asc_outer"};
Mutex g_asc_inner{LockRank::kInner, "fixture/asc_inner"};
Mutex g_asc_leaf{LockRank::kLeaf, "fixture/asc_leaf"};

inline void LockAscLeaf() { MutexLock leaf(g_asc_leaf); }

inline void AscendingOrder() {
  MutexLock outer(g_asc_outer);
  MutexLock inner(g_asc_inner);
  LockAscLeaf();
}
