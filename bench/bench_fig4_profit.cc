// Copyright 2026 The streambid Authors
// Figures 4(c)-(f): system profit vs maximum degree of sharing at
// capacities 5000, 10000, 15000, 20000.
// Expected shape (paper §VI-B): CAF/CAT earn the most at low-to-mid
// sharing; CAF+/CAT+ profits decline with sharing (prices driven
// down); Two-price rises and eventually crosses over CAF/CAT; the
// crossover shifts LEFT (to lower degrees of sharing) as capacity
// grows, and at capacity close to total demand Two-price clearly wins
// at high sharing.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace streambid::bench;
  streambid::service::AdmissionService service;
  const BenchConfig config = LoadConfig();
  PrintBanner("Figures 4(c)-(f): profit vs max degree of sharing at "
              "four capacities",
              config);

  const std::vector<std::string> mechanisms = {"caf", "caf+", "cat",
                                               "cat+", "two-price"};
  const std::vector<double> capacities = {5000.0, 10000.0, 15000.0,
                                          20000.0};
  const SweepResult result =
      RunSweep(service, config, mechanisms, capacities, ProfitMetric());

  const char* figure[] = {"4(c)", "4(d)", "4(e)", "4(f)"};
  for (size_t c = 0; c < capacities.size(); ++c) {
    std::printf("## Figure %s — capacity %.0f\n", figure[c],
                capacities[c]);
    PrintSeries(config, result, capacities[c], mechanisms);
  }

  // Crossover table: the degree where Two-price first beats CAT
  // (paper: shifts left as capacity grows).
  std::printf("# crossover (two-price overtakes cat) by capacity:");
  for (double cap : capacities) {
    std::printf(" %.0f->%s", cap,
                CrossoverDegree(config, result, cap, "two-price", "cat")
                    .c_str());
  }
  std::printf("\n");
  // CAF+/CAT+ decline check at capacity 15000.
  const auto& series = result.at(15000.0);
  const size_t last = config.Degrees().size() - 1;
  std::printf("# shape: caf+ profit declines with sharing: %s; cat+ "
              "declines: %s\n",
              series.at("caf+")[last] < series.at("caf+")[0] ? "yes"
                                                             : "NO",
              series.at("cat+")[last] < series.at("cat+")[0] ? "yes"
                                                             : "NO");
  WriteBenchJson(
      "fig4_profit",
      {{"profit_caf_cap15000_last", series.at("caf")[last]},
       {"profit_cat_cap15000_last", series.at("cat")[last]},
       {"profit_two_price_cap15000_last", series.at("two-price")[last]},
       {"caf_plus_declines",
        series.at("caf+")[last] < series.at("caf+")[0] ? 1.0 : 0.0},
       {"cat_plus_declines",
        series.at("cat+")[last] < series.at("cat+")[0] ? 1.0 : 0.0}});
  return 0;
}
