// Copyright 2026 The streambid Authors

#include "common/timer.h"

#include <gtest/gtest.h>

namespace streambid {
namespace {

TEST(TimerTest, StartsAtZero) {
  Timer timer;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedNanos(), 0);
}

TEST(TimerTest, Monotonic) {
  // steady_clock never jumps backwards: successive reads of one timer
  // are non-decreasing, in every unit.
  Timer timer;
  int64_t last_nanos = timer.ElapsedNanos();
  double last_seconds = timer.ElapsedSeconds();
  for (int i = 0; i < 1000; ++i) {
    const int64_t nanos = timer.ElapsedNanos();
    const double seconds = timer.ElapsedSeconds();
    EXPECT_GE(nanos, last_nanos);
    EXPECT_GE(seconds, last_seconds);
    last_nanos = nanos;
    last_seconds = seconds;
  }
}

TEST(TimerTest, StartResets) {
  Timer timer;
  // Burn a little time so the reset is observable.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const int64_t before = timer.ElapsedNanos();
  timer.Start();
  EXPECT_LT(timer.ElapsedNanos(), before);
}

TEST(TimerTest, UnitsAgree) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double seconds = timer.ElapsedSeconds();
  const double millis = timer.ElapsedMillis();
  // Millis read after seconds, so it covers at least as much time.
  EXPECT_GE(millis, seconds * 1e3);
  EXPECT_LT(millis, seconds * 1e3 + 1e3);  // Within a second of it.
}

}  // namespace
}  // namespace streambid
