// Copyright 2026 The streambid Authors
// Immutable auction input: the operator pool, per-operator loads, the
// query -> operator mapping, and user bids (paper §II, Figure 2), plus the
// derived quantities every mechanism needs: sharing degrees l_j, total
// loads CT_i, and static fair-share loads CSF_i (Definition 3).

#ifndef STREAMBID_AUCTION_INSTANCE_H_
#define STREAMBID_AUCTION_INSTANCE_H_

#include <string>
#include <vector>

#include "auction/types.h"
#include "common/status.h"

namespace streambid::auction {

/// Validated, immutable instance of the CQ admission problem.
///
/// Construction validates that every operator referenced by a query
/// exists, loads are positive, bids are non-negative, and each query has
/// at least one operator. Derived arrays (sharing degrees, CT, CSF,
/// operator->query incidence) are precomputed once; mechanisms treat the
/// instance as read-only, so a single instance can be auctioned at many
/// capacities and shared across threads.
class AuctionInstance {
 public:
  /// Builds and validates an instance. Errors:
  /// - kInvalidArgument: bad operator reference, non-positive load,
  ///   negative bid, duplicate operator within one query, empty query.
  static Result<AuctionInstance> Create(std::vector<OperatorSpec> operators,
                                        std::vector<QuerySpec> queries);

  int num_queries() const { return static_cast<int>(queries_.size()); }
  int num_operators() const { return static_cast<int>(operators_.size()); }

  /// Load c_j of operator j.
  double operator_load(OperatorId j) const {
    return operators_[static_cast<size_t>(j)].load;
  }

  /// Number of submitted queries sharing operator j (l_j >= 0; zero for
  /// operators no query references).
  int sharing_degree(OperatorId j) const {
    return sharing_degree_[static_cast<size_t>(j)];
  }

  /// The queries that contain operator j.
  const std::vector<QueryId>& operator_queries(OperatorId j) const {
    return op_queries_[static_cast<size_t>(j)];
  }

  const std::vector<OperatorId>& query_operators(QueryId i) const {
    return queries_[static_cast<size_t>(i)].operators;
  }

  double bid(QueryId i) const { return queries_[static_cast<size_t>(i)].bid; }
  UserId user(QueryId i) const {
    return queries_[static_cast<size_t>(i)].user;
  }

  /// Total load CT_i = sum of the loads of the query's operators.
  double total_load(QueryId i) const {
    return total_load_[static_cast<size_t>(i)];
  }

  /// Static fair-share load CSF_i = sum of c_j / l_j (Definition 3).
  double fair_share_load(QueryId i) const {
    return fair_share_load_[static_cast<size_t>(i)];
  }

  /// Sum of the loads of all operators referenced by at least one query:
  /// the capacity needed to admit everyone (with full sharing).
  double total_union_load() const { return total_union_load_; }

  /// Sum over queries of CT_i: the paper's "total query demand".
  double total_demand() const { return total_demand_; }

  /// Largest bid h (0 for an empty instance), used by the Two-price
  /// profit bound (Theorems 11/12).
  double max_bid() const { return max_bid_; }

  /// Returns a copy of this instance with extra queries appended (used by
  /// the sybil-attack harness; sharing degrees and fair shares are
  /// recomputed, which is exactly how a sybil attack shifts CSF).
  Result<AuctionInstance> WithExtraQueries(
      std::vector<QuerySpec> extra) const;

  /// Returns a copy with query i's bid replaced (deviation testing).
  AuctionInstance WithBid(QueryId i, double new_bid) const;

  /// Returns a copy with operators appended (attackers may introduce new
  /// private operators for their fake queries).
  Result<AuctionInstance> WithExtraOperators(
      std::vector<OperatorSpec> extra_ops,
      std::vector<QuerySpec> extra_queries) const;

  const std::vector<QuerySpec>& queries() const { return queries_; }
  const std::vector<OperatorSpec>& operators() const { return operators_; }

  /// Human-readable one-line summary (for logs and examples).
  std::string Summary() const;

 private:
  AuctionInstance() = default;
  void BuildDerived();

  std::vector<OperatorSpec> operators_;
  std::vector<QuerySpec> queries_;

  // Derived.
  std::vector<int> sharing_degree_;             // l_j per operator
  std::vector<std::vector<QueryId>> op_queries_;  // incidence
  std::vector<double> total_load_;              // CT_i
  std::vector<double> fair_share_load_;         // CSF_i
  double total_union_load_ = 0.0;
  double total_demand_ = 0.0;
  double max_bid_ = 0.0;
};

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_INSTANCE_H_
