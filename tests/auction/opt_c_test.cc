// Copyright 2026 The streambid Authors

#include "auction/mechanisms/opt_c.h"

#include <gtest/gtest.h>

#include "auction/metrics.h"
#include "gametheory/attacks.h"

namespace streambid::auction {
namespace {

AuctionInstance UnitQueries(std::vector<double> bids) {
  std::vector<OperatorSpec> ops;
  std::vector<QuerySpec> queries;
  for (size_t i = 0; i < bids.size(); ++i) {
    ops.push_back({1.0});
    queries.push_back({static_cast<UserId>(i), bids[i],
                       {static_cast<OperatorId>(i)}});
  }
  auto r = AuctionInstance::Create(std::move(ops), std::move(queries));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(OptCTest, PicksRevenueMaximizingPrice) {
  // Prices tried: 10 -> 10, 6 -> 12, 1 -> 3. Best is 6 x 2.
  AuctionInstance inst = UnitQueries({10.0, 6.0, 1.0});
  const ConstantPriceResult r = OptimalConstantPricing(inst, 3.0);
  EXPECT_DOUBLE_EQ(r.price, 6.0);
  EXPECT_DOUBLE_EQ(r.profit, 12.0);
  EXPECT_EQ(r.winners.size(), 2u);
}

TEST(OptCTest, CapacityLimitsWinnerCount) {
  AuctionInstance inst = UnitQueries({10.0, 10.0, 10.0, 10.0});
  const ConstantPriceResult r = OptimalConstantPricing(inst, 2.0);
  // Only two unit loads fit: profit 20, not 40.
  EXPECT_DOUBLE_EQ(r.price, 10.0);
  EXPECT_DOUBLE_EQ(r.profit, 20.0);
  EXPECT_EQ(r.winners.size(), 2u);
}

TEST(OptCTest, InvalidHighPricePrefixSkipsLowerPrices) {
  // Two huge-load high bidders that cannot fit together: any price below
  // the second bid is invalid (both would be mandatory winners), so the
  // best valid price serves exactly one.
  std::vector<OperatorSpec> ops = {{6.0}, {6.0}, {1.0}};
  std::vector<QuerySpec> queries = {
      {0, 100.0, {0}}, {1, 90.0, {1}}, {2, 50.0, {2}}};
  auto inst = AuctionInstance::Create(ops, queries);
  ASSERT_TRUE(inst.ok());
  const ConstantPriceResult r = OptimalConstantPricing(*inst, 7.0);
  EXPECT_DOUBLE_EQ(r.price, 100.0);
  EXPECT_DOUBLE_EQ(r.profit, 100.0);
}

TEST(OptCTest, SharingMakesMoreWinnersAffordable) {
  // Four queries all sharing one operator: everyone fits, price 5 x 4.
  std::vector<OperatorSpec> ops = {{3.0}};
  std::vector<QuerySpec> queries = {
      {0, 9.0, {0}}, {1, 7.0, {0}}, {2, 6.0, {0}}, {3, 5.0, {0}}};
  auto inst = AuctionInstance::Create(ops, queries);
  ASSERT_TRUE(inst.ok());
  const ConstantPriceResult r = OptimalConstantPricing(*inst, 3.0);
  EXPECT_DOUBLE_EQ(r.price, 5.0);
  EXPECT_DOUBLE_EQ(r.profit, 20.0);
}

TEST(OptCTest, Example1) {
  AuctionInstance inst = gametheory::Example1Instance();
  const ConstantPriceResult r = OptimalConstantPricing(inst, 10.0);
  // Candidates: 100 (q3 fits alone: 100), 72 ({q3,q2} union 16 > 10:
  // only q3 mandatory + q2 tie? q2 has v=72=p; mandatory {q3} load 10,
  // q2 needs 6 more -> no: profit 72), 55 (mandatory {q3, q2} 16 > 10:
  // invalid). Best: 100.
  EXPECT_DOUBLE_EQ(r.profit, 100.0);
  EXPECT_DOUBLE_EQ(r.price, 100.0);
}

TEST(OptCTest, MechanismAdapterChargesConstantPrice) {
  AuctionInstance inst = UnitQueries({10.0, 6.0, 1.0});
  AuctionContext rng(1);
  const Allocation alloc = MakeOptC()->Run(inst, 3.0, rng);
  EXPECT_TRUE(IsFeasible(inst, alloc));
  const AllocationMetrics m = ComputeMetrics(inst, alloc);
  EXPECT_DOUBLE_EQ(m.profit, 12.0);
  EXPECT_TRUE(alloc.IsAdmitted(0));
  EXPECT_TRUE(alloc.IsAdmitted(1));
  EXPECT_DOUBLE_EQ(alloc.Payment(0), 6.0);
  EXPECT_DOUBLE_EQ(alloc.Payment(1), 6.0);
}

TEST(OptCTest, EmptyInstance) {
  auto inst = AuctionInstance::Create({}, {});
  ASSERT_TRUE(inst.ok());
  const ConstantPriceResult r = OptimalConstantPricing(*inst, 10.0);
  EXPECT_DOUBLE_EQ(r.profit, 0.0);
  EXPECT_TRUE(r.winners.empty());
}

TEST(OptCTest, ZeroBidsEarnNothing) {
  AuctionInstance inst = UnitQueries({0.0, 0.0});
  const ConstantPriceResult r = OptimalConstantPricing(inst, 10.0);
  EXPECT_DOUBLE_EQ(r.profit, 0.0);
}

TEST(OptCTest, WorkspaceReuseDoesNotChangeResults) {
  // The sort/tie-packing buffers live in the workspace; results must not
  // depend on what a hot workspace ran before (ties exercise the
  // tie-class buffers).
  AuctionInstance ties = UnitQueries({6.0, 6.0, 6.0, 2.0});
  AuctionInstance inst = UnitQueries({10.0, 6.0, 6.0, 1.0});
  AuctionWorkspace workspace;
  (void)OptimalConstantPricing(ties, 2.0, workspace);
  const ConstantPriceResult reused =
      OptimalConstantPricing(inst, 3.0, workspace);
  const ConstantPriceResult fresh = OptimalConstantPricing(inst, 3.0);
  EXPECT_DOUBLE_EQ(reused.price, fresh.price);
  EXPECT_DOUBLE_EQ(reused.profit, fresh.profit);
  EXPECT_EQ(reused.winners, fresh.winners);
}

}  // namespace
}  // namespace streambid::auction
