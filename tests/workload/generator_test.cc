// Copyright 2026 The streambid Authors
// The Table III generator: distributional sanity and structural
// invariants of the base workload.

#include "workload/generator.h"

#include <gtest/gtest.h>

#include "common/zipf.h"

namespace streambid::workload {
namespace {

WorkloadParams SmallParams() {
  WorkloadParams p;
  p.num_queries = 200;
  p.base_num_operators = 70;
  p.bid_load_correlation = 0.0;  // Literal Table III draws.
  return p;
}

TEST(GeneratorTest, EveryQueryHasAnOperator) {
  Rng rng(1);
  const RawWorkload w = GenerateBaseWorkload(SmallParams(), rng);
  std::vector<bool> covered(static_cast<size_t>(w.num_queries()), false);
  for (const RawOperator& op : w.operators) {
    for (auction::QueryId q : op.subscribers) {
      covered[static_cast<size_t>(q)] = true;
    }
  }
  for (bool c : covered) EXPECT_TRUE(c);
}

TEST(GeneratorTest, ConvertsToValidInstance) {
  Rng rng(2);
  const RawWorkload w = GenerateBaseWorkload(SmallParams(), rng);
  auto inst = w.ToInstance();
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->num_queries(), 200);
  EXPECT_GE(inst->num_operators(), 70);
}

TEST(GeneratorTest, BidsWithinZipfRange) {
  Rng rng(3);
  const RawWorkload w = GenerateBaseWorkload(SmallParams(), rng);
  for (double v : w.valuations) {
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(GeneratorTest, LoadsWithinZipfRange) {
  Rng rng(4);
  const RawWorkload w = GenerateBaseWorkload(SmallParams(), rng);
  for (const RawOperator& op : w.operators) {
    EXPECT_GE(op.load, 1.0);
    EXPECT_LE(op.load, 10.0);
  }
}

TEST(GeneratorTest, SharingDegreesBounded) {
  Rng rng(5);
  WorkloadParams p = SmallParams();
  p.base_max_sharing = 20;
  const RawWorkload w = GenerateBaseWorkload(p, rng);
  EXPECT_LE(w.MaxSharingDegree(), 20);
  EXPECT_GE(w.MaxSharingDegree(), 2);  // Some sharing should occur.
}

TEST(GeneratorTest, SubscribersAreDistinctPerOperator) {
  Rng rng(6);
  const RawWorkload w = GenerateBaseWorkload(SmallParams(), rng);
  for (const RawOperator& op : w.operators) {
    std::vector<auction::QueryId> subs = op.subscribers;
    std::sort(subs.begin(), subs.end());
    EXPECT_TRUE(std::adjacent_find(subs.begin(), subs.end()) == subs.end());
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  Rng a(7), b(7);
  const RawWorkload wa = GenerateBaseWorkload(SmallParams(), a);
  const RawWorkload wb = GenerateBaseWorkload(SmallParams(), b);
  ASSERT_EQ(wa.operators.size(), wb.operators.size());
  EXPECT_EQ(wa.valuations, wb.valuations);
  for (size_t j = 0; j < wa.operators.size(); ++j) {
    EXPECT_EQ(wa.operators[j].load, wb.operators[j].load);
    EXPECT_EQ(wa.operators[j].subscribers, wb.operators[j].subscribers);
  }
}

TEST(GeneratorTest, BidLoadCorrelationScalesValuations) {
  WorkloadParams p = SmallParams();
  p.bid_load_correlation = 1.0;
  Rng rng(9);
  const RawWorkload w = GenerateBaseWorkload(p, rng);
  auto inst = w.ToInstance();
  ASSERT_TRUE(inst.ok());
  // With full correlation, heavy queries should carry larger bids on
  // average: compare mean bid of the heaviest vs lightest quartile.
  std::vector<auction::QueryId> order(200);
  for (int i = 0; i < 200; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(),
            [&](auction::QueryId a, auction::QueryId b) {
              return inst->total_load(a) < inst->total_load(b);
            });
  double light = 0.0, heavy = 0.0;
  for (int k = 0; k < 50; ++k) {
    light += inst->bid(order[static_cast<size_t>(k)]);
    heavy += inst->bid(order[static_cast<size_t>(150 + k)]);
  }
  EXPECT_GT(heavy, light * 1.5);
  // Bids remain at least 1 (the Zipf floor).
  for (auction::QueryId i = 0; i < inst->num_queries(); ++i) {
    EXPECT_GE(inst->bid(i), 1.0);
  }
}

TEST(GeneratorTest, ZeroCorrelationLeavesBidsIndependent) {
  WorkloadParams p = SmallParams();
  Rng rng(10);
  const RawWorkload w = GenerateBaseWorkload(p, rng);
  for (double v : w.valuations) {
    EXPECT_EQ(v, std::floor(v));  // Pure integer Zipf draws.
  }
}

TEST(GeneratorTest, PaperScaleMatchesTableIII) {
  // Full-size workload: 2000 queries, ~700 base operators (+ coverage),
  // mean degree ~ Zipf(60, 1) mean, total incidences in the vicinity of
  // the paper's 8800 operators at max sharing 1.
  Rng rng(8);
  WorkloadParams p;  // Paper defaults.
  const RawWorkload w = GenerateBaseWorkload(p, rng);
  EXPECT_EQ(w.num_queries(), 2000);
  EXPECT_GE(static_cast<int>(w.operators.size()), 700);
  EXPECT_LE(static_cast<int>(w.operators.size()), 1100);
  int64_t incidences = 0;
  for (const RawOperator& op : w.operators) {
    incidences += static_cast<int64_t>(op.subscribers.size());
  }
  // Zipf(60,1) mean is 60/H_60 ~ 12.8; 700 ops -> ~9000 incidences.
  EXPECT_GT(incidences, 6000);
  EXPECT_LT(incidences, 13000);
}

}  // namespace
}  // namespace streambid::workload
