// Copyright 2026 The streambid Authors
// TaskExecutor contract tests: typed tickets round-trip arbitrary
// closure results, RunAll aligns positionally and surfaces the
// lowest-index failure, the bounded queue backpressures TrySubmit,
// shutdown drains without hanging, and every failure mode (error
// Result, consumed ticket, double shutdown) returns a typed error.

#include "cluster/task_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace streambid::cluster {
namespace {

TEST(TaskExecutorTest, SubmitWaitRoundTripsTypedResults) {
  TaskExecutor executor(ExecutorOptions{2, 0});
  EXPECT_EQ(executor.num_threads(), 2);

  const auto int_ticket = executor.Submit<int>(
      [](WorkerContext&) -> Result<int> { return 41 + 1; });
  ASSERT_TRUE(int_ticket.ok());
  const auto string_ticket = executor.Submit<std::string>(
      [](WorkerContext&) -> Result<std::string> {
        return std::string("pipelined");
      });
  ASSERT_TRUE(string_ticket.ok());

  const Result<int> n = executor.Wait(*int_ticket);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 42);
  const Result<std::string> s = executor.Wait(*string_ticket);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "pipelined");
  EXPECT_EQ(executor.pending_tasks(), 0);
}

TEST(TaskExecutorTest, WorkerContextExposesWorkerLocalService) {
  TaskExecutor executor(ExecutorOptions{3, 0});
  std::mutex mutex;
  std::vector<const service::AdmissionService*> seen;
  std::vector<int> ids;
  std::vector<Ticket<bool>> tickets;
  for (int i = 0; i < 12; ++i) {
    const auto ticket = executor.Submit<bool>(
        [&](WorkerContext& context) -> Result<bool> {
          std::lock_guard<std::mutex> lock(mutex);
          seen.push_back(context.service);
          ids.push_back(context.worker_id);
          return true;
        });
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (const Ticket<bool> ticket : tickets) {
    ASSERT_TRUE(executor.Wait(ticket).ok());
  }
  for (size_t k = 0; k < seen.size(); ++k) {
    ASSERT_NE(seen[k], nullptr);
    ASSERT_GE(ids[k], 0);
    ASSERT_LT(ids[k], 3);
    // The context service is the worker's own, never another worker's.
    EXPECT_EQ(seen[k], &executor.worker_service(ids[k]));
  }
}

TEST(TaskExecutorTest, RunAllAlignsPositionally) {
  for (int threads : {1, 2, 8}) {
    TaskExecutor executor(ExecutorOptions{threads, 0});
    std::vector<TaskExecutor::Task<int>> tasks;
    for (int i = 0; i < 20; ++i) {
      tasks.push_back(
          [i](WorkerContext&) -> Result<int> { return i * i; });
    }
    const Result<std::vector<int>> results =
        executor.RunAll(std::move(tasks));
    ASSERT_TRUE(results.ok()) << threads << " threads";
    ASSERT_EQ(results->size(), 20u);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ((*results)[static_cast<size_t>(i)], i * i) << i;
    }
  }
}

TEST(TaskExecutorTest, RunAllEmptyBatchIsEmpty) {
  TaskExecutor executor(ExecutorOptions{2, 0});
  const Result<std::vector<int>> results = executor.RunAll<int>({});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(TaskExecutorTest, RunAllReportsLowestIndexFailure) {
  TaskExecutor executor(ExecutorOptions{4, 0});
  std::atomic<int> executed{0};
  std::vector<TaskExecutor::Task<int>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i, &executed](WorkerContext&) -> Result<int> {
      ++executed;
      if (i == 2) return Status::Internal("boom at 2");
      if (i == 5) return Status::InvalidArgument("boom at 5");
      return i;
    });
  }
  const Result<std::vector<int>> results =
      executor.RunAll(std::move(tasks));
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kInternal);
  EXPECT_EQ(results.status().message(), "boom at 2");
  // All tasks still ran; failure reporting does not cancel the batch.
  EXPECT_EQ(executed.load(), 8);
}

TEST(TaskExecutorTest, ClosureErrorPropagatesThroughTicket) {
  TaskExecutor executor(ExecutorOptions{1, 0});
  const auto ticket = executor.Submit<int>(
      [](WorkerContext&) -> Result<int> {
        return Status::OutOfRange("task failed");
      });
  ASSERT_TRUE(ticket.ok());
  const Result<int> result = executor.Wait(*ticket);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(result.status().message(), "task failed");
  // The error consumed the ticket like any other result.
  EXPECT_EQ(executor.Wait(*ticket).status().code(), StatusCode::kNotFound);
  const TaskExecutorStats stats = executor.StatsReport();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.executed, 1);
}

TEST(TaskExecutorTest, WaitOnConsumedOrUnknownTicketIsNotFound) {
  TaskExecutor executor(ExecutorOptions{1, 0});
  const auto ticket = executor.Submit<int>(
      [](WorkerContext&) -> Result<int> { return 7; });
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(executor.Wait(*ticket).ok());
  EXPECT_EQ(executor.Wait(*ticket).status().code(), StatusCode::kNotFound);
  const auto polled = executor.Poll(*ticket);
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->status().code(), StatusCode::kNotFound);
  EXPECT_EQ(executor.Wait(Ticket<int>{999}).status().code(),
            StatusCode::kNotFound);
}

/// Parks the single worker on a latch so the queue state is fully
/// deterministic: one running task, then exactly max_queue_depth queued.
struct Latch {
  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool release = false;

  void WaitStarted() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return started; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      release = true;
    }
    cv.notify_all();
  }
};

TEST(TaskExecutorTest, TrySubmitBackpressuresOnFullQueue) {
  TaskExecutor executor(ExecutorOptions{1, 1});
  Latch latch;
  const auto blocker = executor.Submit<int>(
      [&latch](WorkerContext&) -> Result<int> {
        {
          std::unique_lock<std::mutex> lock(latch.mutex);
          latch.started = true;
          latch.cv.notify_all();
          latch.cv.wait(lock, [&latch] { return latch.release; });
        }
        return 1;
      });
  ASSERT_TRUE(blocker.ok());
  latch.WaitStarted();  // Worker busy; the queue itself is empty.

  const auto queued = executor.TrySubmit<int>(
      [](WorkerContext&) -> Result<int> { return 2; });
  ASSERT_TRUE(queued.ok());  // Fills the depth-1 queue.

  const auto rejected = executor.TrySubmit<int>(
      [](WorkerContext&) -> Result<int> { return 3; });
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // A blocking Submit parks until the worker frees queue space.
  std::thread submitter([&executor] {
    const auto late = executor.Submit<int>(
        [](WorkerContext&) -> Result<int> { return 4; });
    ASSERT_TRUE(late.ok());
    const Result<int> result = executor.Wait(*late);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, 4);
  });

  latch.Release();
  submitter.join();
  EXPECT_EQ(*executor.Wait(*blocker), 1);
  EXPECT_EQ(*executor.Wait(*queued), 2);
  EXPECT_EQ(executor.pending_tasks(), 0);
}

TEST(TaskExecutorTest, ShutdownDrainsPendingTasksThenRejectsWork) {
  TaskExecutor executor(ExecutorOptions{2, 0});
  std::atomic<int> ran{0};
  std::vector<Ticket<int>> tickets;
  for (int i = 0; i < 16; ++i) {
    const auto ticket = executor.Submit<int>(
        [i, &ran](WorkerContext&) -> Result<int> {
          ++ran;
          return i;
        });
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  ASSERT_TRUE(executor.Shutdown().ok());
  // Drained: every queued task ran, and its result is still claimable.
  EXPECT_EQ(ran.load(), 16);
  for (int i = 0; i < 16; ++i) {
    const Result<int> result =
        executor.Wait(tickets[static_cast<size_t>(i)]);
    ASSERT_TRUE(result.ok()) << i;
    EXPECT_EQ(*result, i);
  }

  // Post-shutdown submissions are typed errors, not hangs.
  const auto after = executor.Submit<int>(
      [](WorkerContext&) -> Result<int> { return 0; });
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  const auto try_after = executor.TrySubmit<int>(
      [](WorkerContext&) -> Result<int> { return 0; });
  ASSERT_FALSE(try_after.ok());
  EXPECT_EQ(try_after.status().code(), StatusCode::kFailedPrecondition);
  const auto batch_after = executor.RunAll<int>(
      {[](WorkerContext&) -> Result<int> { return 0; }});
  ASSERT_FALSE(batch_after.ok());
  EXPECT_EQ(batch_after.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TaskExecutorTest, DoubleShutdownIsFailedPrecondition) {
  TaskExecutor executor(ExecutorOptions{1, 0});
  ASSERT_TRUE(executor.Shutdown().ok());
  const Status second = executor.Shutdown();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
}

TEST(TaskExecutorTest, DestructionWithoutShutdownNeverHangsWaiters) {
  // Queue deep work behind a parked worker, then destroy: queued tasks
  // are dropped and a concurrent-free Wait before destruction still
  // sees a typed error, not a hang (contract: the destructor completes
  // unconsumed tickets with kFailedPrecondition).
  std::optional<TaskExecutor> executor;
  executor.emplace(ExecutorOptions{1, 0});
  Latch latch;
  const auto blocker = executor->Submit<int>(
      [&latch](WorkerContext&) -> Result<int> {
        {
          std::unique_lock<std::mutex> lock(latch.mutex);
          latch.started = true;
          latch.cv.notify_all();
          latch.cv.wait(lock, [&latch] { return latch.release; });
        }
        return 1;
      });
  ASSERT_TRUE(blocker.ok());
  latch.WaitStarted();
  const auto queued = executor->Submit<int>(
      [](WorkerContext&) -> Result<int> { return 2; });
  ASSERT_TRUE(queued.ok());
  latch.Release();
  executor.reset();  // Joins the worker; drops whatever was still queued.
  SUCCEED();
}

TEST(TaskExecutorTest, StatsTrackWorkersAndQueueHighWater) {
  TaskExecutor executor(ExecutorOptions{2, 0});
  std::vector<TaskExecutor::Task<int>> tasks;
  for (int i = 0; i < 30; ++i) {
    tasks.push_back([i](WorkerContext&) -> Result<int> { return i; });
  }
  ASSERT_TRUE(executor.RunAll(std::move(tasks)).ok());

  const TaskExecutorStats stats = executor.StatsReport();
  EXPECT_EQ(stats.submitted, 30);
  EXPECT_EQ(stats.executed, 30);
  EXPECT_EQ(stats.failed, 0);
  ASSERT_EQ(stats.tasks_per_worker.size(), 2u);
  // Every task is accounted to one of the two pool workers — work
  // cannot land anywhere else.
  EXPECT_EQ(std::accumulate(stats.tasks_per_worker.begin(),
                            stats.tasks_per_worker.end(), int64_t{0}),
            30);
  EXPECT_GE(stats.queue_high_water, 1);
  EXPECT_LE(stats.queue_high_water, 30);

  executor.ResetStats();
  const TaskExecutorStats reset = executor.StatsReport();
  EXPECT_EQ(reset.submitted, 0);
  EXPECT_EQ(reset.executed, 0);
  EXPECT_EQ(reset.queue_high_water, 0);
  ASSERT_EQ(reset.tasks_per_worker.size(), 2u);
  EXPECT_EQ(reset.tasks_per_worker[0], 0);
}

TEST(TaskExecutorTest, SetMaxQueueDepthRejectsNegativeAndReads) {
  TaskExecutor executor(ExecutorOptions{1, 3});
  EXPECT_EQ(executor.max_queue_depth(), 3);
  const Status bad = executor.SetMaxQueueDepth(-1);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(executor.max_queue_depth(), 3);
  ASSERT_TRUE(executor.SetMaxQueueDepth(5).ok());
  EXPECT_EQ(executor.max_queue_depth(), 5);
}

TEST(TaskExecutorTest, GrowingQueueDepthUnblocksParkedSubmit) {
  TaskExecutor executor(ExecutorOptions{1, 1});
  Latch latch;
  const auto blocker = executor.Submit<int>(
      [&latch](WorkerContext&) -> Result<int> {
        {
          std::unique_lock<std::mutex> lock(latch.mutex);
          latch.started = true;
          latch.cv.notify_all();
          latch.cv.wait(lock, [&latch] { return latch.release; });
        }
        return 1;
      });
  ASSERT_TRUE(blocker.ok());
  latch.WaitStarted();
  const auto queued = executor.TrySubmit<int>(
      [](WorkerContext&) -> Result<int> { return 2; });
  ASSERT_TRUE(queued.ok());  // Depth-1 queue now full.

  // This Submit parks on the full queue; the resize — not a worker
  // drain — is what must free it (the worker stays latched throughout).
  Result<Ticket<int>> late(Status::Internal("not submitted"));
  std::thread submitter([&executor, &late] {
    late = executor.Submit<int>(
        [](WorkerContext&) -> Result<int> { return 3; });
  });
  ASSERT_TRUE(executor.SetMaxQueueDepth(2).ok());
  submitter.join();  // Worker still parked: only the resize unblocked it.
  ASSERT_TRUE(late.ok());

  latch.Release();
  EXPECT_EQ(*executor.Wait(*blocker), 1);
  EXPECT_EQ(*executor.Wait(*queued), 2);
  EXPECT_EQ(*executor.Wait(*late), 3);
}

TEST(TaskExecutorTest, ResizeToUnboundedUnblocksParkedSubmit) {
  // Regression: the space wait must re-check for depth 0 (unbounded) —
  // "queue_.size() < 0" would otherwise park the producer forever.
  TaskExecutor executor(ExecutorOptions{1, 1});
  Latch latch;
  const auto blocker = executor.Submit<int>(
      [&latch](WorkerContext&) -> Result<int> {
        {
          std::unique_lock<std::mutex> lock(latch.mutex);
          latch.started = true;
          latch.cv.notify_all();
          latch.cv.wait(lock, [&latch] { return latch.release; });
        }
        return 1;
      });
  ASSERT_TRUE(blocker.ok());
  latch.WaitStarted();
  const auto queued = executor.TrySubmit<int>(
      [](WorkerContext&) -> Result<int> { return 2; });
  ASSERT_TRUE(queued.ok());

  Result<Ticket<int>> late(Status::Internal("not submitted"));
  std::thread submitter([&executor, &late] {
    late = executor.Submit<int>(
        [](WorkerContext&) -> Result<int> { return 3; });
  });
  ASSERT_TRUE(executor.SetMaxQueueDepth(0).ok());
  submitter.join();
  ASSERT_TRUE(late.ok());

  latch.Release();
  EXPECT_EQ(*executor.Wait(*blocker), 1);
  EXPECT_EQ(*executor.Wait(*queued), 2);
  EXPECT_EQ(*executor.Wait(*late), 3);
}

TEST(TaskExecutorTest, ShrinkingQueueDepthRejectsNewTrySubmits) {
  TaskExecutor executor(ExecutorOptions{1, 4});
  Latch latch;
  const auto blocker = executor.Submit<int>(
      [&latch](WorkerContext&) -> Result<int> {
        {
          std::unique_lock<std::mutex> lock(latch.mutex);
          latch.started = true;
          latch.cv.notify_all();
          latch.cv.wait(lock, [&latch] { return latch.release; });
        }
        return 1;
      });
  ASSERT_TRUE(blocker.ok());
  latch.WaitStarted();
  std::vector<Ticket<int>> queued;
  for (int i = 0; i < 2; ++i) {
    const auto ticket = executor.TrySubmit<int>(
        [i](WorkerContext&) -> Result<int> { return i; });
    ASSERT_TRUE(ticket.ok());
    queued.push_back(*ticket);
  }
  // Two queued; shrinking under the backlog drops nothing but refuses
  // new pushes until the workers drain below the new bound.
  ASSERT_TRUE(executor.SetMaxQueueDepth(1).ok());
  const auto refused = executor.TrySubmit<int>(
      [](WorkerContext&) -> Result<int> { return 9; });
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  latch.Release();
  EXPECT_EQ(*executor.Wait(*blocker), 1);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(*executor.Wait(queued[static_cast<size_t>(i)]), i);
  }
  EXPECT_EQ(executor.pending_tasks(), 0);
}

// ---------------------------------------------------------------------------
// Work-stealing and stats-coherence regressions.

TEST(TaskExecutorTest, StealingStressEightWorkersRacingSubmitters) {
  ExecutorOptions options;
  options.num_threads = 8;
  TaskExecutor executor(options);
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 200;
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&executor, &sum, s] {
      std::vector<Ticket<int>> tickets;
      tickets.reserve(kPerSubmitter);
      for (int i = 0; i < kPerSubmitter; ++i) {
        const int value = s * kPerSubmitter + i;
        const auto ticket = executor.Submit<int>(
            [value](WorkerContext&) -> Result<int> { return value; });
        ASSERT_TRUE(ticket.ok());
        tickets.push_back(*ticket);
      }
      for (const Ticket<int>& ticket : tickets) {
        const Result<int> r = executor.Wait(ticket);
        ASSERT_TRUE(r.ok());
        sum.fetch_add(*r);
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  constexpr int64_t kTotal = kSubmitters * kPerSubmitter;
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
  const TaskExecutorStats stats = executor.StatsReport();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.executed, kTotal);
  EXPECT_EQ(stats.local_hits + stats.stolen, stats.executed);
  ASSERT_EQ(stats.tasks_per_worker.size(), 8u);
  ASSERT_EQ(stats.steals_per_worker.size(), 8u);
  EXPECT_EQ(std::accumulate(stats.tasks_per_worker.begin(),
                            stats.tasks_per_worker.end(), int64_t{0}),
            stats.executed);
  EXPECT_EQ(std::accumulate(stats.steals_per_worker.begin(),
                            stats.steals_per_worker.end(), int64_t{0}),
            stats.stolen);
  EXPECT_EQ(executor.pending_tasks(), 0);
}

TEST(TaskExecutorTest, IdleWorkersStealHotOwnersBacklog) {
  ExecutorOptions options;
  options.num_threads = 4;
  TaskExecutor executor(options);
  Latch latch;
  constexpr int kChildren = 16;
  std::atomic<int> done{0};
  std::vector<Ticket<int>> children;
  // The producer submits its children from inside a task, so they land
  // on its own worker's deque, then parks that worker on the latch.
  // Until it releases, only stealing can run the children.
  const auto producer = executor.Submit<int>(
      [&executor, &latch, &done, &children](WorkerContext&) -> Result<int> {
        for (int i = 0; i < kChildren; ++i) {
          const auto child = executor.TrySubmit<int>(
              [&done, i](WorkerContext&) -> Result<int> {
                done.fetch_add(1);
                return i;
              });
          if (!child.ok()) return child.status();
          children.push_back(*child);
        }
        std::unique_lock<std::mutex> lock(latch.mutex);
        latch.started = true;
        latch.cv.notify_all();
        latch.cv.wait(lock, [&latch] { return latch.release; });
        return -1;
      });
  ASSERT_TRUE(producer.ok());
  latch.WaitStarted();
  // Starvation regression: the hot owner never yields, yet the backlog
  // drains. If stealing broke, this loop would hang the test.
  while (done.load() < kChildren) std::this_thread::yield();
  const TaskExecutorStats mid = executor.StatsReport();
  EXPECT_GE(mid.stolen, kChildren);

  latch.Release();
  EXPECT_EQ(*executor.Wait(*producer), -1);
  for (const Ticket<int>& child : children) {
    EXPECT_TRUE(executor.Wait(child).ok());
  }
  EXPECT_EQ(executor.pending_tasks(), 0);
}

TEST(TaskExecutorTest, StealingDisabledStillDrainsEveryDeque) {
  ExecutorOptions options;
  options.num_threads = 4;
  options.steal = false;
  TaskExecutor executor(options);
  std::vector<Ticket<int>> tickets;
  for (int i = 0; i < 64; ++i) {
    const auto ticket = executor.Submit<int>(
        [i](WorkerContext&) -> Result<int> { return i; });
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(*executor.Wait(tickets[static_cast<size_t>(i)]), i);
  }
  const TaskExecutorStats stats = executor.StatsReport();
  EXPECT_EQ(stats.executed, 64);
  EXPECT_EQ(stats.stolen, 0);
  EXPECT_EQ(stats.local_hits, 64);
}

TEST(TaskExecutorTest, ResetStatsOpensCoherentWindow) {
  TaskExecutor executor(ExecutorOptions{2, 0});
  for (int i = 0; i < 8; ++i) {
    const auto ticket = executor.Submit<int>(
        [](WorkerContext&) -> Result<int> { return 1; });
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE(executor.Wait(*ticket).ok());
  }
  executor.ResetStats();
  const TaskExecutorStats zero = executor.StatsReport();
  EXPECT_EQ(zero.submitted, 0);
  EXPECT_EQ(zero.executed, 0);
  EXPECT_EQ(zero.stolen, 0);
  EXPECT_EQ(zero.local_hits, 0);
  EXPECT_EQ(std::accumulate(zero.tasks_per_worker.begin(),
                            zero.tasks_per_worker.end(), int64_t{0}),
            0);

  for (int i = 0; i < 5; ++i) {
    const auto ticket = executor.Submit<int>(
        [](WorkerContext&) -> Result<int> { return 1; });
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE(executor.Wait(*ticket).ok());
  }
  const TaskExecutorStats window = executor.StatsReport();
  EXPECT_EQ(window.submitted, 5);
  EXPECT_EQ(window.executed, 5);
  EXPECT_EQ(window.local_hits + window.stolen, window.executed);
}

TEST(TaskExecutorTest, ResetStatsRacingCompletionsStaysCoherent) {
  TaskExecutor executor(ExecutorOptions{2, 0});
  std::atomic<bool> stop{false};
  std::thread pump([&executor, &stop] {
    while (!stop.load()) {
      const auto ticket = executor.Submit<int>(
          [](WorkerContext&) -> Result<int> { return 1; });
      ASSERT_TRUE(ticket.ok());
      ASSERT_TRUE(executor.Wait(*ticket).ok());
    }
  });
  // The old executor zeroed counters non-atomically against racing
  // workers; the baseline scheme must never report torn or negative
  // windows, no matter when the reset lands.
  for (int i = 0; i < 50; ++i) {
    executor.ResetStats();
    const TaskExecutorStats stats = executor.StatsReport();
    EXPECT_GE(stats.submitted, 0);
    EXPECT_GE(stats.executed, 0);
    EXPECT_GE(stats.stolen, 0);
    EXPECT_GE(stats.local_hits, 0);
    EXPECT_EQ(stats.local_hits + stats.stolen, stats.executed);
    EXPECT_EQ(std::accumulate(stats.tasks_per_worker.begin(),
                              stats.tasks_per_worker.end(), int64_t{0}),
              stats.executed);
  }
  stop.store(true);
  pump.join();
}

TEST(TaskExecutorTest, QueueHighWaterTracksSharedDepthCounter) {
  TaskExecutor executor(ExecutorOptions{1, 8});
  Latch latch;
  const auto blocker = executor.Submit<int>(
      [&latch](WorkerContext&) -> Result<int> {
        {
          std::unique_lock<std::mutex> lock(latch.mutex);
          latch.started = true;
          latch.cv.notify_all();
          latch.cv.wait(lock, [&latch] { return latch.release; });
        }
        return -1;
      });
  ASSERT_TRUE(blocker.ok());
  latch.WaitStarted();
  // Eight racing submitters against a depth-8 bound and a parked
  // worker: nothing drains, so the shared depth counter must peak at
  // exactly 8 — and the high-water mark is maintained by CAS-max on
  // that counter, so the race cannot record a stale lower value.
  std::vector<std::thread> submitters;
  std::mutex tickets_mutex;
  std::vector<Ticket<int>> tickets;
  for (int s = 0; s < 8; ++s) {
    submitters.emplace_back([&executor, &tickets_mutex, &tickets, s] {
      const auto ticket = executor.TrySubmit<int>(
          [s](WorkerContext&) -> Result<int> { return s; });
      ASSERT_TRUE(ticket.ok());
      std::lock_guard<std::mutex> lock(tickets_mutex);
      tickets.push_back(*ticket);
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(executor.StatsReport().queue_high_water, 8);

  latch.Release();
  EXPECT_EQ(*executor.Wait(*blocker), -1);
  for (const Ticket<int>& ticket : tickets) {
    EXPECT_TRUE(executor.Wait(ticket).ok());
  }
  EXPECT_EQ(executor.pending_tasks(), 0);
}

}  // namespace
}  // namespace streambid::cluster
