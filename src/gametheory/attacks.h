// Copyright 2026 The streambid Authors
// The concrete attack scenarios the paper proves things with (§IV-A,
// §V-A, §V-B Table II, §V-C), packaged for tests and the property bench.

#ifndef STREAMBID_GAMETHEORY_ATTACKS_H_
#define STREAMBID_GAMETHEORY_ATTACKS_H_

#include "auction/instance.h"
#include "gametheory/sybil.h"

namespace streambid::gametheory {

/// A ready-to-run attack scenario: base instance, capacity, attacker and
/// her sybil attack.
struct AttackScenario {
  auction::AuctionInstance instance;
  double capacity = 0.0;
  auction::UserId attacker = 0;
  SybilAttack attack;
};

/// Paper Table II (§V-B): the attack that beats CAT+ but not CAT.
/// User 1: v=100, load 1. User 2 (attacker): v=89, load 0.9. The fake
/// "user 3": v=101*epsilon, its own operator of load epsilon. Capacity 1.
/// Under CAT+ the fake displaces user 1, the attacker wins free, and her
/// payoff rises from 0 to 89 - 100*epsilon.
AttackScenario TableIIScenario(double epsilon = 0.01);

/// §V-A demo: the universal fair-share attack. Attacker (user 2, v=10,
/// one private operator of load 4) loses to user 1 (v=12, load 4) at
/// capacity 4 under CAF; three negligible fakes sharing her operator
/// deflate her CSF from 4 to 1, making her win cheaply.
AttackScenario FairShareScenario(int num_fakes = 3,
                                 double fake_valuation = 1e-6);

/// §V-C-style attack on Two-price (even-partition variant): user 1
/// (v=10) and one rival (v=5), both load 1, capacity 2 + epsilon. A fake
/// with negligible valuation and load perturbs the random partition: with
/// probability 1/3 the fake is alone on one side and prices the
/// attacker's side at ~0. Expected attacker payoff rises from 5 to ~6.67.
AttackScenario TwoPricePartitionScenario(double epsilon = 1e-3);

/// Paper Example 1 (§II Figures 1-2): queries q1 {A,B} bid 55,
/// q2 {A,C} bid 72, q3 {D,E} bid 100; loads A=4, B=1, C=2, D+E=10;
/// capacity 10. The worked example behind the CAR/CAF/CAT payment
/// walkthroughs (§IV). Operators are indexed A=0, B=1, C=2, D=3, E=4.
auction::AuctionInstance Example1Instance();

/// Capacity used in Example 1.
inline constexpr double kExample1Capacity = 10.0;

}  // namespace streambid::gametheory

#endif  // STREAMBID_GAMETHEORY_ATTACKS_H_
