// Copyright 2026 The streambid Authors
// The greedy density-based mechanisms of paper §IV-B/§IV-C and the GV
// (Greedy-by-Valuation) mechanism of §IV-D, unified: each sorts queries by
// Pr_i = b_i / C_i for a load basis C and admits down the list.
//
//   CAF  = fair-share basis, stop at first misfit, first-loser pricing
//   CAF+ = fair-share basis, skip misfits,       movement-window pricing
//   CAT  = total-load basis, stop at first misfit, first-loser pricing
//   CAT+ = total-load basis, skip misfits,       movement-window pricing
//   GV   = unit basis (raw bids), stop,           first-loser pricing
//          (uniform price b_lost, since C_i = 1 for all i)
//
// First-loser pricing (Algorithm 1, step 5): every winner i pays
// C_i * b_lost / C_lost where `lost` is the first rejected query; if no
// query is rejected all payments are 0 (each winner's critical value).
// Movement-window pricing (Algorithm 2, steps 4-5): winner i pays
// C_i * b_last(i) / C_last(i) (see movement_window.h).

#ifndef STREAMBID_AUCTION_MECHANISMS_DENSITY_H_
#define STREAMBID_AUCTION_MECHANISMS_DENSITY_H_

#include <string>
#include <utility>

#include "auction/greedy_common.h"
#include "auction/mechanism.h"

namespace streambid::auction {

/// Shared implementation of CAF / CAF+ / CAT / CAT+ / GV.
class DensityMechanism : public Mechanism {
 public:
  DensityMechanism(std::string name, LoadBasis basis, MisfitPolicy policy,
                   MechanismProperties properties)
      : name_(std::move(name)),
        basis_(basis),
        policy_(policy),
        properties_(properties) {}

  const std::string& name() const override { return name_; }
  MechanismProperties properties() const override { return properties_; }

  Allocation Run(const AuctionInstance& instance, double capacity,
                 AuctionContext& context) const override;

  LoadBasis basis() const { return basis_; }
  MisfitPolicy policy() const { return policy_; }

 private:
  std::string name_;
  LoadBasis basis_;
  MisfitPolicy policy_;
  MechanismProperties properties_;
};

/// CAF: CQ Admission based on static Fair-share load (Algorithm 1).
MechanismPtr MakeCaf();
/// CAF+: aggressive fair-share mechanism (Algorithm 2).
MechanismPtr MakeCafPlus();
/// CAT: CQ Admission based on Total load (§IV-C). Sybil-strategyproof
/// (Theorem 19).
MechanismPtr MakeCat();
/// CAT+: aggressive total-load mechanism (§IV-C).
MechanismPtr MakeCatPlus();
/// GV: Greedy-by-Valuation (§IV-D) — k-unit-style uniform pricing.
MechanismPtr MakeGv();

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_MECHANISMS_DENSITY_H_
