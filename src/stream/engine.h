// Copyright 2026 The streambid Authors
// The stream execution engine: an Aurora-model DSMS (paper §II) driven in
// virtual time. Installed queries are instantiated into a shared runtime
// graph — any node whose spec-and-inputs subtree matches an existing one
// is reused, so shared operators are processed once regardless of how
// many queries subscribe to them. The engine measures per-operator load
// (cost units per second), which is exactly the c_j the admission
// auction prices, and implements the paper's transition phase: at a
// subscription-period boundary, upstream connection points hold new
// tuples, in-flight tuples are drained, the query network is modified,
// and held tuples are replayed before new arrivals.

#ifndef STREAMBID_STREAM_ENGINE_H_
#define STREAMBID_STREAM_ENGINE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/operator.h"
#include "stream/query.h"
#include "stream/stream_source.h"

namespace streambid::stream {

/// Engine configuration.
struct EngineOptions {
  /// Capacity in cost units per second of virtual time (same units as
  /// the auction capacities).
  double capacity = 1000.0;
  /// Scheduler step in virtual seconds: sources are polled and windows
  /// advanced once per tick.
  VirtualTime tick = 1.0;
  /// Tuples retained per query sink for inspection.
  int sink_history = 32;
  /// Tuple-level load shedding: when true, each tick enforces the
  /// capacity budget (capacity * tick cost units) by dropping source
  /// tuples that arrive after the budget is exhausted. This is the
  /// classic DSMS overload response the paper's conclusion contrasts
  /// with query-level admission control ("most data stream admission
  /// control (load shedding) algorithms work at the tuple level").
  /// With admission control doing its job, shedding should never fire.
  bool shed_on_overload = false;
};

/// Snapshot of one runtime operator's state and measured load.
struct OperatorLoadInfo {
  std::string signature;   ///< Sharing key (spec + input subtree).
  std::string name;        ///< Human-readable operator descriptor.
  bool is_source = false;
  double cost_per_tuple = 0.0;
  int64_t tuples_processed = 0;
  /// Measured load over the last Run(): cost consumed / run duration
  /// (capacity units).
  double measured_load = 0.0;
  /// Number of installed queries whose plans include this node.
  int sharing_degree = 0;
};

/// Per-query output statistics.
struct SinkStats {
  int64_t tuples = 0;
  std::deque<Tuple> recent;  ///< Last `sink_history` output tuples.
};

/// Virtual-time stream engine. Not thread-safe; one engine per
/// simulation.
class Engine {
 public:
  explicit Engine(EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Sources -----------------------------------------------------

  /// Registers an input stream. Fails with kAlreadyExists on duplicate
  /// names.
  Status RegisterSource(StreamSourcePtr source);

  /// Looks up a registered source (nullptr when absent).
  const StreamSource* source(const std::string& name) const;

  // --- Query management ---------------------------------------------

  /// Validates `plan` against the registered sources and derives its
  /// output schema without installing anything.
  Result<SchemaPtr> DeriveOutputSchema(const QueryPlan& plan) const;

  /// Instantiates `plan` for `query_id`, sharing identical subtrees
  /// with already-installed queries. Errors: kAlreadyExists (id in
  /// use), kInvalidArgument / kNotFound (bad plan or unknown source or
  /// field).
  Status InstallQuery(int query_id, const QueryPlan& plan);

  /// Removes the query; operators no longer referenced by any query are
  /// destroyed (their state is discarded).
  Status UninstallQuery(int query_id);

  bool IsInstalled(int query_id) const;
  std::vector<int> InstalledQueries() const;

  // --- Transition phase (§II) ----------------------------------------

  /// Enters the transition: upstream connection points begin holding
  /// newly arriving tuples, and all in-flight tuples are drained
  /// through the network first.
  void BeginTransition();

  /// Ends the transition: held tuples are replayed into the (modified)
  /// network before any new arrivals. kFailedPrecondition if not in a
  /// transition.
  Status CommitTransition();

  bool in_transition() const { return in_transition_; }

  // --- Execution ------------------------------------------------------

  /// Advances virtual time by `duration`, pulling sources, scheduling
  /// operators, and closing windows.
  void Run(VirtualTime duration);

  VirtualTime now() const { return now_; }

  // --- Introspection ---------------------------------------------------

  /// Output statistics of an installed query (nullptr when unknown).
  const SinkStats* sink(int query_id) const;

  /// Per-operator loads measured over the last Run().
  std::vector<OperatorLoadInfo> OperatorLoads() const;

  /// Measured load of the node with `signature` (kNotFound if the node
  /// does not exist or nothing ran yet).
  Result<double> MeasuredLoad(const std::string& signature) const;

  /// Total cost consumed in the last Run() divided by duration *
  /// capacity.
  double LastRunUtilization() const;

  /// Cost units consumed during the last Run().
  double LastRunCost() const { return last_run_cost_; }

  /// Source tuples dropped by overload shedding during the last Run()
  /// (always 0 unless options.shed_on_overload).
  int64_t LastRunShedTuples() const { return last_run_shed_; }

  /// Fraction of arriving source tuples shed during the last Run().
  double LastRunShedFraction() const {
    const int64_t total = last_run_shed_ + last_run_ingested_;
    return total > 0 ? static_cast<double>(last_run_shed_) / total : 0.0;
  }

  int num_runtime_nodes() const { return static_cast<int>(topo_.size()); }
  /// Nodes referenced by two or more queries.
  int num_shared_nodes() const;

  const EngineOptions& options() const { return options_; }

  /// Re-provisions the engine's capacity (the autoscaler's actuator;
  /// call between periods, not mid-Run). Affects the shedding budget
  /// and the utilization denominator of subsequent Runs. Precondition
  /// (checked): capacity > 0.
  void SetCapacity(double capacity);

 private:
  struct Node;

  /// Recursively instantiates plan node `idx` for `query_id`; returns
  /// the runtime node (shared or fresh).
  Result<Node*> Instantiate(int query_id, const QueryPlan& plan, int idx);

  /// Builds the concrete operator for `spec` (validating fields).
  Result<OperatorPtr> MakeOperator(const OpSpec& spec,
                                   const std::vector<SchemaPtr>& inputs) const;

  /// Pushes `tuple` into `node`'s downstream inboxes and sinks.
  void Deliver(Node* node, const Tuple& tuple);

  /// One full pass over the topological order, draining every inbox and
  /// advancing windows to `now`. Returns the cost consumed.
  double ProcessPass(VirtualTime now);

  EngineOptions options_;
  std::vector<StreamSourcePtr> sources_;
  std::map<std::string, int> source_index_;

  std::map<std::string, std::unique_ptr<Node>> nodes_;  // By signature.
  std::vector<Node*> topo_;  // Creation order == topological order.
  std::map<int, SinkStats> sinks_;

  bool in_transition_ = false;
  std::vector<std::vector<Tuple>> held_;  // Per source, during transition.

  VirtualTime now_ = 0.0;
  double last_run_cost_ = 0.0;
  VirtualTime last_run_duration_ = 0.0;
  double last_run_capacity_ = 0.0;  // Capacity during the last Run().
  int64_t last_run_shed_ = 0;
  int64_t last_run_ingested_ = 0;
  double shed_probability_ = 0.0;  // Closed-loop shedding control.
  Rng shed_rng_{0x5EED5EEDull};
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_ENGINE_H_
