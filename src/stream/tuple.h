// Copyright 2026 The streambid Authors
// Timestamped data tuples.

#ifndef STREAMBID_STREAM_TUPLE_H_
#define STREAMBID_STREAM_TUPLE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "stream/schema.h"

namespace streambid::stream {

/// Virtual time in seconds since the start of the simulation.
using VirtualTime = double;

/// One stream element: a schema, field values, and an event timestamp in
/// virtual time. Tuples are value types; the schema is shared.
class Tuple {
 public:
  Tuple() = default;
  Tuple(SchemaPtr schema, std::vector<Value> values, VirtualTime timestamp)
      : schema_(std::move(schema)),
        values_(std::move(values)),
        timestamp_(timestamp) {
    STREAMBID_DCHECK(schema_ != nullptr);
    STREAMBID_DCHECK(static_cast<int>(values_.size()) ==
                     schema_->num_fields());
  }

  const SchemaPtr& schema() const { return schema_; }
  VirtualTime timestamp() const { return timestamp_; }

  const Value& value(int i) const {
    STREAMBID_DCHECK(i >= 0 &&
                     i < static_cast<int>(values_.size()));
    return values_[static_cast<size_t>(i)];
  }

  /// Value of the field named `name` (CHECK-fails when absent).
  const Value& field(const std::string& name) const {
    const int idx = schema_->FieldIndex(name);
    STREAMBID_CHECK_GE(idx, 0);
    return value(idx);
  }

  const std::vector<Value>& values() const { return values_; }

  /// "(ts=1.5 sym=IBM price=42)" — debugging and sinks.
  std::string ToString() const {
    std::string out = "(ts=" + std::to_string(timestamp_);
    for (int i = 0; i < schema_->num_fields(); ++i) {
      out += " " + schema_->field(i).name + "=" + value(i).ToString();
    }
    out += ")";
    return out;
  }

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
  VirtualTime timestamp_ = 0.0;
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_TUPLE_H_
