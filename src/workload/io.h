// Copyright 2026 The streambid Authors
// Plain-text serialization of workloads, so a generated instance can be
// archived next to experiment results and replayed bit-exactly (the
// reproducibility companion to the seeded generator).
//
// Format (line-oriented, '#' comments allowed):
//   streambid-workload v1
//   queries <n>
//   v <query> <valuation> <user>          (one per query)
//   o <load> <subscriber> <subscriber>... (one per operator)

#ifndef STREAMBID_WORKLOAD_IO_H_
#define STREAMBID_WORKLOAD_IO_H_

#include <string>

#include "common/status.h"
#include "workload/raw_workload.h"

namespace streambid::workload {

/// Serializes `workload` to the v1 text format.
std::string SerializeWorkload(const RawWorkload& workload);

/// Parses the v1 text format. Errors: kInvalidArgument with a
/// line-numbered message.
Result<RawWorkload> ParseWorkload(const std::string& text);

/// Writes the workload to `path` (kInternal on I/O failure).
Status SaveWorkload(const RawWorkload& workload, const std::string& path);

/// Reads a workload from `path`.
Result<RawWorkload> LoadWorkload(const std::string& path);

}  // namespace streambid::workload

#endif  // STREAMBID_WORKLOAD_IO_H_
