// Copyright 2026 The streambid Authors

#include "bench/bench_common.h"

#include <cstdio>

#include "common/check.h"
#include "common/string_util.h"
#include "common/table.h"

namespace streambid::bench {

std::vector<int> BenchConfig::Degrees() const {
  return workload::WorkloadSet::SharingSweep(params.base_max_sharing, step);
}

BenchConfig LoadConfig() {
  BenchConfig config;
  config.sets = static_cast<int>(EnvInt("STREAMBID_SETS", 6));
  config.queries = static_cast<int>(EnvInt("STREAMBID_QUERIES", 2000));
  config.step = static_cast<int>(EnvInt("STREAMBID_STEP", 5));
  config.trials = static_cast<int>(EnvInt("STREAMBID_TRIALS", 3));
  STREAMBID_CHECK_GT(config.sets, 0);
  STREAMBID_CHECK_GT(config.queries, 0);
  STREAMBID_CHECK_GT(config.step, 0);
  STREAMBID_CHECK_GT(config.trials, 0);
  config.params.num_queries = config.queries;
  // Keep the paper's 2000:700 query:operator ratio at other scales.
  config.params.base_num_operators =
      std::max(1, config.queries * 700 / 2000);
  return config;
}

MetricFn ProfitMetric() {
  return [](const service::AdmissionResponse& response) {
    return response.metrics.profit;
  };
}

MetricFn AdmissionRateMetric() {
  return [](const service::AdmissionResponse& response) {
    return response.metrics.admission_rate;
  };
}

MetricFn PayoffMetric() {
  return [](const service::AdmissionResponse& response) {
    return response.metrics.total_payoff;
  };
}

MetricFn UtilizationMetric() {
  return [](const service::AdmissionResponse& response) {
    return response.metrics.utilization;
  };
}

SweepResult RunSweep(service::AdmissionService& service,
                     const BenchConfig& config,
                     const std::vector<std::string>& mechanisms,
                     const std::vector<double>& capacities,
                     const MetricFn& metric) {
  const std::vector<int> degrees = config.Degrees();

  // Resolve trial counts once (randomized mechanisms are averaged).
  std::vector<int> trials_for;
  for (const std::string& name : mechanisms) {
    auto properties = service.Properties(name);
    STREAMBID_CHECK(properties.ok());
    trials_for.push_back(properties->randomized ? config.trials : 1);
  }

  SweepResult result;
  for (double cap : capacities) {
    for (const std::string& name : mechanisms) {
      result[cap][name].assign(degrees.size(), 0.0);
    }
  }

  for (int set = 0; set < config.sets; ++set) {
    workload::WorkloadSet ws(config.params,
                             /*seed=*/0xBEEF0000ull + set);
    for (size_t d = 0; d < degrees.size(); ++d) {
      const auction::AuctionInstance& inst = ws.InstanceAt(degrees[d]);

      // The whole capacities x mechanisms x trials grid for this
      // instance goes down as one batch; each request keeps its own
      // (seed, trial) stream, so results are independent of batch
      // order — the contract that lets AdmitBatch parallelize later.
      std::vector<service::AdmissionRequest> requests;
      for (double cap : capacities) {
        for (size_t m = 0; m < mechanisms.size(); ++m) {
          for (int t = 0; t < trials_for[m]; ++t) {
            service::AdmissionRequest request;
            request.instance = &inst;
            request.capacity = cap;
            request.mechanism = mechanisms[m];
            request.seed = 0xC0FFEEull * (set + 1) + 31 * d + 7 * m;
            request.request_index = static_cast<uint32_t>(t);
            requests.push_back(std::move(request));
          }
        }
      }
      auto responses = service.AdmitBatch(requests);
      STREAMBID_CHECK(responses.ok());

      size_t r = 0;
      for (double cap : capacities) {
        for (size_t m = 0; m < mechanisms.size(); ++m) {
          double acc = 0.0;
          for (int t = 0; t < trials_for[m]; ++t, ++r) {
            acc += metric((*responses)[r]);
          }
          result[cap][mechanisms[m]][d] += acc / trials_for[m];
        }
      }
    }
  }
  for (double cap : capacities) {
    for (const std::string& name : mechanisms) {
      for (double& v : result[cap][name]) v /= config.sets;
    }
  }
  return result;
}

void PrintSeries(const BenchConfig& config, const SweepResult& result,
                 double capacity,
                 const std::vector<std::string>& mechanisms) {
  const std::vector<int> degrees = config.Degrees();
  std::vector<std::string> header = {"max_degree"};
  for (const std::string& m : mechanisms) header.push_back(m);
  TextTable table(header);
  for (size_t d = 0; d < degrees.size(); ++d) {
    std::vector<std::string> row = {std::to_string(degrees[d])};
    for (const std::string& m : mechanisms) {
      row.push_back(FormatDouble(result.at(capacity).at(m)[d], 3));
    }
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToCsv().c_str(), stdout);
}

std::string CrossoverDegree(const BenchConfig& config,
                            const SweepResult& result, double capacity,
                            const std::string& a, const std::string& b) {
  const std::vector<int> degrees = config.Degrees();
  const auto& sa = result.at(capacity).at(a);
  const auto& sb = result.at(capacity).at(b);
  for (size_t d = 0; d < degrees.size(); ++d) {
    if (sa[d] > sb[d]) return std::to_string(degrees[d]);
  }
  return "-";
}

void PrintBanner(const std::string& title, const BenchConfig& config) {
  std::printf("# %s\n", title.c_str());
  std::printf(
      "# workload: %d sets x %d queries, sharing degrees step %d "
      "(paper: 50 sets; override with STREAMBID_SETS/QUERIES/STEP)\n",
      config.sets, config.queries, config.step);
}

void WriteBenchJson(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  STREAMBID_CHECK(f != nullptr);
  std::fprintf(f, "{\n  \"bench\": \"%s\"", name.c_str());
  for (const auto& [key, value] : metrics) {
    std::fprintf(f, ",\n  \"%s\": %.6g", key.c_str(), value);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace streambid::bench
