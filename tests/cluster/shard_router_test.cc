// Copyright 2026 The streambid Authors
// ShardRouter policy tests: hash stability, least-loaded tie-breaking,
// and the price-aware fallback when no shard has history.

#include "cluster/shard_router.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.h"

namespace streambid::cluster {
namespace {

stream::QuerySubmission SubmissionFor(auction::UserId user) {
  stream::QuerySubmission submission;
  submission.query_id = user;
  submission.user = user;
  submission.bid = 10.0;
  return submission;
}

TEST(ShardRouterTest, PolicyNames) {
  EXPECT_STREQ(RoutingPolicyName(RoutingPolicy::kHashUser), "hash");
  EXPECT_STREQ(RoutingPolicyName(RoutingPolicy::kLeastLoaded),
               "least-loaded");
  EXPECT_STREQ(RoutingPolicyName(RoutingPolicy::kPriceAware),
               "price-aware");
}

TEST(ShardRouterTest, HashIsStableAndMatchesExposedHash) {
  ShardRouter router(RoutingPolicy::kHashUser, 4);
  const std::vector<ShardStatus> shards(4);
  for (auction::UserId user = 0; user < 200; ++user) {
    const int first = router.Route(SubmissionFor(user), shards);
    const int second = router.Route(SubmissionFor(user), shards);
    EXPECT_EQ(first, second) << user;
    EXPECT_EQ(first,
              static_cast<int>(ShardRouter::HashUser(user) % 4ull));
    EXPECT_GE(first, 0);
    EXPECT_LT(first, 4);
  }
}

TEST(ShardRouterTest, HashSpreadsUsersAcrossShards) {
  ShardRouter router(RoutingPolicy::kHashUser, 4);
  const std::vector<ShardStatus> shards(4);
  std::set<int> hit;
  for (auction::UserId user = 0; user < 64; ++user) {
    hit.insert(router.Route(SubmissionFor(user), shards));
  }
  // 64 sequential users over 4 shards: every shard must be reached (the
  // SplitMix64 finalizer spreads sequential ids).
  EXPECT_EQ(hit.size(), 4u);
}

TEST(ShardRouterTest, HashIsObliviousToLoad) {
  ShardRouter router(RoutingPolicy::kHashUser, 2);
  std::vector<ShardStatus> shards(2);
  const int before = router.Route(SubmissionFor(7), shards);
  shards[static_cast<size_t>(before)].pending_load = 1e9;
  EXPECT_EQ(router.Route(SubmissionFor(7), shards), before);
}

TEST(ShardRouterTest, LeastLoadedPicksMinimum) {
  ShardRouter router(RoutingPolicy::kLeastLoaded, 3);
  std::vector<ShardStatus> shards(3);
  shards[0].pending_load = 5.0;
  shards[1].pending_load = 1.0;
  shards[2].pending_load = 3.0;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 1);
}

TEST(ShardRouterTest, LeastLoadedTiesToLowestIndex) {
  ShardRouter router(RoutingPolicy::kLeastLoaded, 3);
  std::vector<ShardStatus> shards(3);
  // All equal: shard 0.
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 0);
  // Tie between 1 and 2: shard 1.
  shards[0].pending_load = 2.0;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 1);
}

TEST(ShardRouterTest, PriceAwareFallsBackToHashWithoutHistory) {
  ShardRouter price_router(RoutingPolicy::kPriceAware, 4);
  ShardRouter hash_router(RoutingPolicy::kHashUser, 4);
  const std::vector<ShardStatus> shards(4);  // No history anywhere.
  for (auction::UserId user = 0; user < 50; ++user) {
    EXPECT_EQ(price_router.Route(SubmissionFor(user), shards),
              hash_router.Route(SubmissionFor(user), shards))
        << user;
  }
}

TEST(ShardRouterTest, PriceAwarePrefersCheapestClearing) {
  ShardRouter router(RoutingPolicy::kPriceAware, 3);
  std::vector<ShardStatus> shards(3);
  for (ShardStatus& s : shards) s.has_history = true;
  shards[0].last_clearing_price = 9.0;
  shards[1].last_clearing_price = 2.0;
  shards[2].last_clearing_price = 4.0;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 1);
}

TEST(ShardRouterTest, PriceAwareBreaksTiesByAdmissionRate) {
  ShardRouter router(RoutingPolicy::kPriceAware, 3);
  std::vector<ShardStatus> shards(3);
  for (ShardStatus& s : shards) {
    s.has_history = true;
    s.last_clearing_price = 3.0;
  }
  shards[0].last_admission_rate = 0.4;
  shards[1].last_admission_rate = 0.9;
  shards[2].last_admission_rate = 0.9;  // Equal to 1: first wins.
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 1);
}

TEST(ShardRouterTest, PriceAwareExploresShardsWithoutHistory) {
  ShardRouter router(RoutingPolicy::kPriceAware, 3);
  std::vector<ShardStatus> shards(3);
  // Shard 2 cleared at a positive price; shards 0-1 never saw traffic.
  // Unexplored capacity is optimistically price 0, so shard 0 (lowest
  // index among the unexplored) attracts the submission.
  shards[2].has_history = true;
  shards[2].last_clearing_price = 8.0;
  shards[2].last_admission_rate = 1.0;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 0);
  // A free-clearing shard ties unexplored ones on price; its rate 1.0
  // ties their optimistic rate too, so the lowest index still wins.
  shards[2].last_clearing_price = 0.0;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 0);
}

// --- Autoscaled (shrinking/growing) shard capacities: a shard whose
// next-period provisioning hit zero is drained and must never be
// targeted by any policy while an alternative exists. ---

TEST(ShardRouterTest, HashProbesPastDrainedShard) {
  ShardRouter router(RoutingPolicy::kHashUser, 4);
  std::vector<ShardStatus> shards(4);
  const auction::UserId user = 9;
  const int home = router.Route(SubmissionFor(user), shards);
  shards[static_cast<size_t>(home)].next_capacity = 0.0;
  const int rerouted = router.Route(SubmissionFor(user), shards);
  EXPECT_NE(rerouted, home);
  EXPECT_EQ(rerouted, (home + 1) % 4);  // Forward probe, deterministic.
  // Recovery: once the shard is provisioned again, the stable
  // placement snaps back.
  shards[static_cast<size_t>(home)].next_capacity = 1.5;
  EXPECT_EQ(router.Route(SubmissionFor(user), shards), home);
}

TEST(ShardRouterTest, LeastLoadedSkipsDrainedShard) {
  ShardRouter router(RoutingPolicy::kLeastLoaded, 3);
  std::vector<ShardStatus> shards(3);
  shards[0].pending_load = 1.0;
  shards[0].next_capacity = 0.0;  // Emptiest but drained.
  shards[1].pending_load = 5.0;
  shards[1].next_capacity = 2.0;  // 2.5x oversubscribed.
  shards[2].pending_load = 3.0;
  shards[2].next_capacity = 0.5;  // Shrunk AND 6x oversubscribed.
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 1);
}

// --- Capacity-relative least-loaded: raw pending load must not make a
// half-drained autoscaled shard look as roomy as a full one. ---

TEST(ShardRouterTest, LeastLoadedComparesLoadRelativeToCapacity) {
  ShardRouter router(RoutingPolicy::kLeastLoaded, 2);
  std::vector<ShardStatus> shards(2);
  // Shard 0 holds more absolute load but is provisioned 8x larger:
  // relative 0.5 vs 1.0 — the big shard is the roomy one.
  shards[0].pending_load = 4.0;
  shards[0].next_capacity = 8.0;
  shards[1].pending_load = 1.0;
  shards[1].next_capacity = 1.0;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 0);
  // Equal relative load (0.5 both): ties stay on the lowest index.
  shards[1].pending_load = 0.5;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 0);
}

TEST(ShardRouterTest, LeastLoadedUnknownCapacityComparesAtUnit) {
  ShardRouter router(RoutingPolicy::kLeastLoaded, 2);
  std::vector<ShardStatus> shards(2);
  // No owner-tracked provisioning anywhere: the comparison degrades to
  // the raw pending loads (capacity 1 assumed), the pre-autoscaling
  // behavior.
  shards[0].pending_load = 5.0;
  shards[1].pending_load = 1.0;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 1);
}

TEST(ShardRouterTest, PriceAwareSkipsDrainedShard) {
  ShardRouter router(RoutingPolicy::kPriceAware, 3);
  std::vector<ShardStatus> shards(3);
  for (ShardStatus& s : shards) s.has_history = true;
  shards[0].last_clearing_price = 1.0;  // Cheapest but drained.
  shards[0].next_capacity = 0.0;
  shards[1].last_clearing_price = 4.0;
  shards[1].next_capacity = 3.0;
  shards[2].last_clearing_price = 2.0;
  shards[2].next_capacity = 1.0;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 2);
}

TEST(ShardRouterTest, PriceAwareIgnoresDrainedHistoryForFallback) {
  ShardRouter router(RoutingPolicy::kPriceAware, 2);
  std::vector<ShardStatus> shards(2);
  // The only shard with history is drained: price comparison has no
  // eligible data, so routing falls back to the (probing) hash and
  // must land on the live shard.
  shards[0].has_history = true;
  shards[0].last_clearing_price = 1.0;
  shards[0].next_capacity = 0.0;
  shards[1].next_capacity = 2.0;
  for (auction::UserId user = 0; user < 16; ++user) {
    EXPECT_EQ(router.Route(SubmissionFor(user), shards), 1) << user;
  }
}

TEST(ShardRouterTest, NeverTargetsZeroCapacityShard) {
  // Randomized shrink/grow sweep: whatever the provisioning pattern,
  // no policy may target a drained shard while any shard is live.
  Rng rng(0xD2A1Eull);
  for (const RoutingPolicy policy :
       {RoutingPolicy::kHashUser, RoutingPolicy::kLeastLoaded,
        RoutingPolicy::kPriceAware}) {
    ShardRouter router(policy, 5);
    for (int round = 0; round < 200; ++round) {
      std::vector<ShardStatus> shards(5);
      bool any_live = false;
      for (ShardStatus& s : shards) {
        // Autoscaled capacities: zero (drained), shrunk, or grown.
        const double capacity = rng.NextBool(0.4)
                                    ? 0.0
                                    : rng.NextRange(0.25, 4.0);
        s.next_capacity = capacity;
        any_live = any_live || capacity > 0.0;
        s.has_history = rng.NextBool(0.7);
        s.last_clearing_price = rng.NextRange(0.0, 8.0);
        s.last_admission_rate = rng.NextRange(0.0, 1.0);
        s.pending_load = rng.NextRange(0.0, 10.0);
      }
      if (!any_live) continue;
      const int target = router.Route(
          SubmissionFor(static_cast<auction::UserId>(round)), shards);
      EXPECT_TRUE(ShardRouter::Eligible(
          shards[static_cast<size_t>(target)]))
          << RoutingPolicyName(policy) << " round " << round;
    }
  }
}

TEST(ShardRouterTest, AllShardsDrainedFallsBackToStableHash) {
  ShardRouter router(RoutingPolicy::kLeastLoaded, 4);
  std::vector<ShardStatus> shards(4);
  for (ShardStatus& s : shards) s.next_capacity = 0.0;
  for (auction::UserId user = 0; user < 20; ++user) {
    EXPECT_EQ(router.Route(SubmissionFor(user), shards),
              static_cast<int>(ShardRouter::HashUser(user) % 4ull))
        << user;
  }
}

TEST(ShardRouterTest, UnknownNextCapacityStaysEligible) {
  ShardStatus status;  // next_capacity unset: owner tracks nothing.
  EXPECT_TRUE(ShardRouter::Eligible(status));
  status.next_capacity = 0.0;
  EXPECT_FALSE(ShardRouter::Eligible(status));
  status.next_capacity = 0.75;
  EXPECT_TRUE(ShardRouter::Eligible(status));
}

// --- Price ties under tolerance: clearing prices are revenue/admitted,
// and bit-level noise in that division must not flip routing. ---

TEST(ShardRouterTest, PriceTieToleratesBitLevelNoise) {
  ShardRouter router(RoutingPolicy::kPriceAware, 2);
  std::vector<ShardStatus> shards(2);
  for (ShardStatus& s : shards) s.has_history = true;
  // One ulp apart — the kind of difference a different summation order
  // produces. Exact == would route on the noise; the tolerant tie-break
  // must fall through to the admission rate.
  const double price = 3.0;
  shards[0].last_clearing_price = price;
  shards[1].last_clearing_price =
      std::nextafter(price, std::numeric_limits<double>::infinity());
  shards[0].last_admission_rate = 0.2;
  shards[1].last_admission_rate = 0.9;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 1);
  // A genuinely cheaper shard still wins regardless of rate.
  shards[1].last_clearing_price = price * 0.9;
  shards[1].last_admission_rate = 0.0;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 1);
}

TEST(ShardRouterTest, PricesTieSemantics) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(ShardRouter::PricesTie(3.0, 3.0));
  EXPECT_TRUE(ShardRouter::PricesTie(0.0, 0.0));
  EXPECT_TRUE(
      ShardRouter::PricesTie(1e6, std::nextafter(1e6, 2e6)));
  EXPECT_FALSE(ShardRouter::PricesTie(3.0, 3.1));
  // Pinned infinity behavior: saturated shards tie each other and
  // never tie a finite clearing.
  EXPECT_TRUE(ShardRouter::PricesTie(inf, inf));
  EXPECT_FALSE(ShardRouter::PricesTie(inf, 1e18));
  EXPECT_FALSE(ShardRouter::PricesTie(0.0, inf));
}

TEST(ShardRouterTest, BothShardsSaturatedTieOnRateThenIndex) {
  ShardRouter router(RoutingPolicy::kPriceAware, 2);
  std::vector<ShardStatus> shards(2);
  const double inf = std::numeric_limits<double>::infinity();
  for (ShardStatus& s : shards) {
    s.has_history = true;
    s.last_clearing_price = inf;
    s.last_admission_rate = 0.0;
  }
  // inf vs inf is a tie (never NaN arithmetic): equal rates keep the
  // lowest index.
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 0);
  shards[1].last_admission_rate = 0.1;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 1);
}

// --- Placement overrides: the rebalancer pins migrated tenants; every
// policy must follow the current placement, not the original hash. ---

TEST(ShardRouterTest, OverrideWinsUnderEveryPolicy) {
  std::vector<ShardStatus> shards(4);
  shards[2].pending_load = 1e9;             // Worst least-loaded choice.
  for (ShardStatus& s : shards) s.has_history = true;
  shards[2].last_clearing_price = 1e9;      // Worst price-aware choice.
  PlacementOverrides overrides;
  const auction::UserId user = 7;
  overrides[user] = 2;
  for (const RoutingPolicy policy :
       {RoutingPolicy::kHashUser, RoutingPolicy::kLeastLoaded,
        RoutingPolicy::kPriceAware}) {
    ShardRouter router(policy, 4);
    EXPECT_EQ(router.Route(SubmissionFor(user), shards, &overrides), 2)
        << RoutingPolicyName(policy);
    // Other users are unaffected.
    EXPECT_EQ(router.Route(SubmissionFor(user + 1), shards, &overrides),
              router.Route(SubmissionFor(user + 1), shards))
        << RoutingPolicyName(policy);
  }
}

TEST(ShardRouterTest, OverrideProbesPastDrainedHomeAndSnapsBack) {
  ShardRouter router(RoutingPolicy::kHashUser, 4);
  std::vector<ShardStatus> shards(4);
  PlacementOverrides overrides;
  overrides[7] = 2;
  shards[2].next_capacity = 0.0;  // Pinned home drained.
  EXPECT_EQ(router.Route(SubmissionFor(7), shards, &overrides), 3);
  shards[2].next_capacity = 1.0;  // Recovered: placement snaps back.
  EXPECT_EQ(router.Route(SubmissionFor(7), shards, &overrides), 2);
}

TEST(ShardRouterTest, PriceAwareAvoidsSaturatedShards) {
  ShardRouter router(RoutingPolicy::kPriceAware, 2);
  std::vector<ShardStatus> shards(2);
  // Shard 0 admitted nobody last period (clearing marked infinite by
  // the cluster); shard 1 cleared at a high-but-finite price and must
  // still win — saturation repels, it does not read as free service.
  shards[0].has_history = true;
  shards[0].last_clearing_price =
      std::numeric_limits<double>::infinity();
  shards[0].last_admission_rate = 0.0;
  shards[1].has_history = true;
  shards[1].last_clearing_price = 1e6;
  shards[1].last_admission_rate = 0.2;
  EXPECT_EQ(router.Route(SubmissionFor(1), shards), 1);
}

}  // namespace
}  // namespace streambid::cluster
