// Copyright 2026 The streambid Authors
// Process-wide heap-allocation counter for bench binaries.
//
// alloc_probe.cc replaces the global operator new/delete with counting
// wrappers, so a bench can snapshot the count around a hot loop and
// CHECK that the steady state allocated exactly zero times — turning
// "allocation-free hot path" from a comment into an enforced property.
// Link alloc_probe.cc ONLY into binaries that want the probe (it
// replaces global operators binary-wide); under ASan/TSan the
// replacement is disabled (the sanitizer owns malloc) and the probe
// reports itself unavailable.

#ifndef STREAMBID_BENCH_ALLOC_PROBE_H_
#define STREAMBID_BENCH_ALLOC_PROBE_H_

#include <cstdint>

namespace streambid::bench {

/// True when the counting operator new is live in this binary (false
/// under sanitizers, where the probe compiles to a stub).
bool AllocProbeAvailable();

/// Monotonic count of operator-new calls since process start (0 when
/// the probe is unavailable).
int64_t AllocCount();

}  // namespace streambid::bench

#endif  // STREAMBID_BENCH_ALLOC_PROBE_H_
