// Copyright 2026 The streambid Authors
// Empirical strategyproofness (paper Theorems 4, 7, 8, 9, 10): across
// seeded random shared-operator workloads, no query can profit from any
// deviating bid in the search grid. Parameterized over workload seeds.
// All auctions run through the AdmissionService.

#include <gtest/gtest.h>

#include "gametheory/deviation.h"
#include "service/admission_service.h"
#include "workload/generator.h"

namespace streambid {
namespace {

using auction::AuctionInstance;
using gametheory::DeviationOptions;
using gametheory::DeviationReport;
using gametheory::SweepDeviations;

/// A small but genuinely shared workload (~40 queries, ~25 operators).
AuctionInstance RandomSharedInstance(uint64_t seed) {
  workload::WorkloadParams p;
  p.num_queries = 40;
  p.base_num_operators = 18;
  p.base_max_sharing = 10;
  Rng rng(seed);
  auto inst = workload::GenerateBaseWorkload(p, rng).ToInstance();
  EXPECT_TRUE(inst.ok());
  return std::move(inst).value();
}

/// Capacity that leaves roughly half the demand unserved — the
/// competitive regime where manipulation would pay.
double TightCapacity(const AuctionInstance& inst) {
  return inst.total_union_load() * 0.5;
}

class StrategyproofSweep : public ::testing::TestWithParam<uint64_t> {};

/// Shared body: no profitable deviation for `mechanism` on this seed.
void ExpectNoDeviation(const char* mechanism, uint64_t seed,
                       uint64_t seed_offset) {
  const AuctionInstance inst = RandomSharedInstance(seed);
  service::AdmissionService service;
  DeviationOptions options;
  options.probe_other_bids = false;  // Factor grid suffices; keeps the
                                     // sweep O(queries * factors).
  const DeviationReport r =
      SweepDeviations(service, mechanism, inst, TightCapacity(inst),
                      options, /*seed=*/seed + seed_offset, 12);
  EXPECT_FALSE(r.profitable_deviation_found)
      << mechanism << ": query " << r.query << " gains " << r.Gain()
      << " bidding " << r.best_deviant_bid << " (value " << r.true_value
      << ")";
}

TEST_P(StrategyproofSweep, CafHasNoProfitableDeviation) {
  ExpectNoDeviation("caf", GetParam(), 1000);
}

TEST_P(StrategyproofSweep, CatHasNoProfitableDeviation) {
  ExpectNoDeviation("cat", GetParam(), 2000);
}

TEST_P(StrategyproofSweep, GvHasNoProfitableDeviation) {
  ExpectNoDeviation("gv", GetParam(), 3000);
}

TEST_P(StrategyproofSweep, CafPlusHasNoProfitableDeviation) {
  ExpectNoDeviation("caf+", GetParam(), 4000);
}

TEST_P(StrategyproofSweep, CatPlusHasNoProfitableDeviation) {
  ExpectNoDeviation("cat+", GetParam(), 5000);
}

TEST_P(StrategyproofSweep, CarIsManipulableSomewhere) {
  // Control: across the full seed set the non-strategyproof CAR must be
  // manipulable at least once (§IV-A); asserting per-seed would be too
  // strong, so this test only accumulates evidence and the companion
  // aggregate test below asserts it.
  const AuctionInstance inst = RandomSharedInstance(GetParam());
  service::AdmissionService service;
  DeviationOptions options;
  options.probe_other_bids = true;
  const DeviationReport r =
      SweepDeviations(service, "car", inst, TightCapacity(inst), options,
                      /*seed=*/GetParam() + 6000, 12);
  RecordProperty("car_gain", std::to_string(r.Gain()));
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyproofSweep,
                         ::testing::Range<uint64_t>(1, 13));

TEST(CarManipulableAggregate, FindsAtLeastOneProfitableLie) {
  service::AdmissionService service;
  DeviationOptions options;
  bool found = false;
  for (uint64_t seed = 1; seed <= 12 && !found; ++seed) {
    const AuctionInstance inst = RandomSharedInstance(seed);
    const DeviationReport r =
        SweepDeviations(service, "car", inst, TightCapacity(inst),
                        options, /*seed=*/seed + 7000, 20);
    found = r.profitable_deviation_found;
  }
  EXPECT_TRUE(found) << "CAR resisted manipulation on every seed — "
                        "the §IV-A counterexample should be easy to hit";
}

}  // namespace
}  // namespace streambid
