// Copyright 2026 The streambid Authors
// Sybil-strategyproofness (Definition 18 / Theorem 19): CAT resists
// every combined lie+sybil strategy in the search grid; CAF falls to
// combinations even where pure bid deviations fail.

#include "gametheory/combined.h"

#include <gtest/gtest.h>

#include "service/admission_service.h"
#include "gametheory/attacks.h"
#include "workload/generator.h"

namespace streambid::gametheory {
namespace {

auction::AuctionInstance RandomShared(uint64_t seed) {
  workload::WorkloadParams p;
  p.num_queries = 30;
  p.base_num_operators = 12;
  p.base_max_sharing = 8;
  Rng rng(seed);
  auto inst = workload::GenerateBaseWorkload(p, rng).ToInstance();
  EXPECT_TRUE(inst.ok());
  return std::move(inst).value();
}

class CombinedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CombinedSweep, CatIsSybilStrategyproof) {
  const auction::AuctionInstance inst = RandomShared(GetParam());
  service::AdmissionService service;
  CombinedAttackOptions options;
  const CombinedAttackReport best = SweepCombinedAttacks(
      service, "cat", inst, inst.total_union_load() * 0.5, options,
      /*seed=*/GetParam() + 400, /*max_attackers=*/8);
  EXPECT_FALSE(best.Profitable(1e-6))
      << "query " << best.attacker_query << " gains " << best.Gain()
      << " bidding " << best.best_bid << " with " << best.best_num_fakes
      << " fakes at " << best.best_fake_value;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinedSweep,
                         ::testing::Range<uint64_t>(1, 9));

TEST(CombinedAttackTest, CafFallsToCombinedStrategy) {
  // The §V-A scenario: the attacker loses truthfully; fakes alone
  // already help against CAF, and the combined search must find at
  // least as much.
  const AttackScenario s = FairShareScenario();
  service::AdmissionService service;
  CombinedAttackOptions options;
  const CombinedAttackReport report = SearchCombinedAttack(
      service, "caf", s.instance, s.capacity, /*attacker_query=*/1,
      options, /*seed=*/5);
  EXPECT_TRUE(report.Profitable());
  EXPECT_GT(report.best_num_fakes, 0);  // The gain needs the sybils.
}

TEST(CombinedAttackTest, PureDeviationSubsumedByGrid) {
  // With fake_counts = {0}, the search degenerates to a bid-deviation
  // sweep; on Example 1 under CAT it must find nothing.
  auction::AuctionInstance inst = Example1Instance();
  service::AdmissionService service;
  CombinedAttackOptions options;
  options.fake_counts = {0};
  for (auction::QueryId q = 0; q < inst.num_queries(); ++q) {
    const CombinedAttackReport r = SearchCombinedAttack(
        service, "cat", inst, kExample1Capacity, q, options, /*seed=*/6);
    EXPECT_FALSE(r.Profitable()) << "query " << q;
  }
}

TEST(CombinedAttackTest, ReportsTruthfulBaseline) {
  auction::AuctionInstance inst = Example1Instance();
  service::AdmissionService service;
  CombinedAttackOptions options;
  const CombinedAttackReport r = SearchCombinedAttack(
      service, "cat", inst, kExample1Capacity, 0, options, /*seed=*/7);
  // CAT admits q1 at $50: payoff 5.
  EXPECT_DOUBLE_EQ(r.truthful_payoff, 5.0);
  EXPECT_GE(r.best_payoff, r.truthful_payoff);
}

}  // namespace
}  // namespace streambid::gametheory
