#!/usr/bin/env python3
# Copyright 2026 The streambid Authors
"""Include-hygiene linter for streambid headers.

Headers are the tree's dependency fan-out: an #include a header does
not need is recompilation tax on every consumer forever, and a symbol
used without its own #include is a transitive leak that breaks the
build the day an unrelated header slims down. This scanner keeps both
honest for the standard-library headers, where a curated token map can
be precise (repo-relative includes are left to the compiler):

  unused-include    a mapped std header is #included but none of its
                    tokens appear in the file body.
  missing-include   a mapped std header's tokens appear but the header
                    is not #included directly (attributed to the first
                    use).

Only headers in the token map participate; anything unmapped is
skipped rather than guessed. The two rules deliberately use different
strictness: unused-include accepts unqualified C-header spellings
(uint64_t, memcpy) as use, while missing-include only fires on
std::-qualified symbols that unambiguously name their header. Suppression is IWYU-style, not NOLINT:
append "// IWYU pragma: keep" to an #include line that is needed for
reasons the token map cannot see (macro use, platform quirks), or add
the (file, header) pair to KEEP_MAP below when the include line should
stay byte-identical to upstream.

Usage:
  include_hygiene_lint.py [--root REPO_ROOT]  # scan src/ headers
  include_hygiene_lint.py --self-test         # run against the fixtures

Self-test: fixture headers under tools/lint/fixtures/includes/ mark
each expected finding with "// WANT(<rule>)"; --self-test asserts the
finding set matches the markers exactly.

No third-party dependencies; Python 3.8+ stdlib only.
"""

import argparse
import os
import re
import sys
from typing import Dict, List, Set, Tuple

from determinism_lint import strip_comments_and_strings

Finding = Tuple[str, int, str, str]  # (relpath, line, rule, message)

# --------------------------------------------------------------------------
# Token map: std header -> regex matching the symbols it provides.
# Curated to the subset this repo uses; precision over coverage (a
# header absent here is never flagged either way).
# --------------------------------------------------------------------------

STD_TOKEN_MAP: Dict[str, str] = {
    "algorithm": r"\bstd::(?:sort|stable_sort|min|max|clamp|find|find_if|"
                 r"fill|copy|transform|lower_bound|upper_bound|all_of|"
                 r"any_of|none_of|count_if|remove_if|shuffle|nth_element|"
                 r"partial_sort|reverse|max_element|min_element)\b",
    "any": r"\bstd::(?:any|any_cast|bad_any_cast)\b",
    "array": r"\bstd::array\b",
    "atomic": r"\bstd::(?:atomic|memory_order)\b",
    "bitset": r"\bstd::bitset\b",
    "cassert": r"\bassert\s*\(",
    "chrono": r"\bstd::chrono\b",
    "cmath": r"\bstd::(?:sqrt|pow|exp|log|log2|log10|fabs|abs|floor|ceil|"
             r"round|isnan|isfinite|isinf|fmod|hypot|lerp|nan)\b",
    "condition_variable": r"\bstd::(?:condition_variable|cv_status)\b",
    "cstddef": r"\bstd::(?:size_t|byte|ptrdiff_t|nullptr_t)\b",
    "cstdint": r"\bstd::u?int(?:8|16|32|64|max|ptr)_t\b",
    "cstdio": r"\bstd::(?:fprintf|printf|snprintf|fopen|fclose|fwrite|"
              r"fflush|FILE)\b",
    "cstdlib": r"\bstd::(?:abort|exit|getenv|strtod|strtol|malloc|free)\b",
    "cstring": r"\bstd::(?:memcpy|memset|memmove|strcmp|strlen|strncmp)\b",
    "deque": r"\bstd::deque\b",
    "fstream": r"\bstd::(?:ifstream|ofstream|fstream)\b",
    "functional": r"\bstd::(?:function|reference_wrapper|ref|cref|"
                  r"invoke|hash)\b",
    "initializer_list": r"\bstd::initializer_list\b",
    "iomanip": r"\bstd::(?:setw|setprecision|setfill)\b",
    "iostream": r"\bstd::(?:cout|cerr|cin|clog)\b",
    "limits": r"\bstd::numeric_limits\b",
    "map": r"\bstd::(?:multi)?map\b",
    "memory": r"\bstd::(?:unique_ptr|shared_ptr|weak_ptr|make_unique|"
              r"make_shared|addressof|align|allocator)\b",
    "mutex": r"\bstd::(?:mutex|recursive_mutex|lock_guard|unique_lock|"
             r"scoped_lock|adopt_lock|defer_lock|once_flag|call_once)\b",
    "numeric": r"\bstd::(?:accumulate|iota|reduce|gcd|lcm|midpoint)\b",
    "optional": r"\bstd::(?:optional|nullopt|make_optional|"
                r"bad_optional_access)\b",
    "random": r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|random_device|"
              r"uniform_int_distribution|uniform_real_distribution|"
              r"normal_distribution|bernoulli_distribution|"
              r"discrete_distribution|seed_seq)\b",
    "set": r"\bstd::(?:multi)?set\b",
    "span": r"\bstd::span\b",
    "sstream": r"\bstd::(?:ostringstream|istringstream|stringstream)\b",
    "stdexcept": r"\bstd::(?:runtime_error|logic_error|invalid_argument|"
                 r"out_of_range|length_error|domain_error)\b",
    "string": r"\bstd::(?:string|to_string|stoi|stol|stod|char_traits)\b",
    "string_view": r"\bstd::string_view\b",
    "thread": r"\bstd::(?:thread|this_thread)\b",
    "tuple": r"\bstd::(?:tuple|make_tuple|tie|tuple_size|apply)\b",
    "type_traits": r"\bstd::(?:enable_if|is_same|is_base_of|is_integral|"
                   r"is_floating_point|is_invocable|is_constructible|"
                   r"is_nothrow|decay|remove_reference|remove_cv|"
                   r"remove_cvref|conditional|conjunction|disjunction|"
                   r"negation|void_t|true_type|false_type|"
                   r"is_trivially|aligned_storage|invoke_result)\w*\b",
    "unordered_map": r"\bstd::unordered_(?:multi)?map\b",
    "unordered_set": r"\bstd::unordered_(?:multi)?set\b",
    "utility": r"\bstd::(?:move|forward|pair|make_pair|exchange|swap|"
               r"declval|in_place|index_sequence|make_index_sequence|"
               r"integer_sequence)\b",
    "variant": r"\bstd::(?:variant|visit|monostate|holds_alternative|"
               r"get_if|bad_variant_access)\b",
    "vector": r"\bstd::vector\b",
}

# The <c*> headers also inject their names into the global namespace,
# and this codebase writes `uint64_t`, not `std::uint64_t`. For the
# unused-include check those spellings count as use; missing-include
# keeps the strict std::-qualified map above, because an unqualified
# `size_t` is provided by half the standard library in practice and
# demanding <cstddef> for every one of them is noise, not hygiene.
USE_TOKEN_OVERRIDES: Dict[str, str] = {
    "cassert": r"\b(?:static_)?assert\s*\(",
    "cmath": r"\b(?:std::)?(?:sqrt|pow|exp|log|log2|log10|fabs|floor|"
             r"ceil|round|isnan|isfinite|isinf|fmod|hypot|lerp|nan)\s*\(|"
             r"\bstd::abs\b|\b(?:NAN|INFINITY|M_PI)\b",
    "cstddef": r"\b(?:std::)?(?:size_t|ptrdiff_t|max_align_t)\b|"
               r"\bstd::byte\b|\boffsetof\s*\(",
    "cstdint": r"\b(?:std::)?u?int(?:8|16|32|64|max|ptr)_t\b|"
               r"\b(?:U?INT(?:8|16|32|64)_MAX|SIZE_MAX)\b",
    "cstdio": r"\b(?:std::)?(?:fprintf|printf|snprintf|fopen|fclose|"
              r"fwrite|fflush)\s*\(|\bFILE\b|\bstd(?:err|out|in)\b",
    "cstdlib": r"\b(?:std::)?(?:abort|exit|getenv|strtod|strtol|malloc|"
               r"free)\s*\(|\bEXIT_(?:SUCCESS|FAILURE)\b",
    "cstring": r"\b(?:std::)?(?:memcpy|memset|memmove|strcmp|strlen|"
               r"strncmp)\s*\(",
}

COMPILED_TOKEN_MAP = {h: re.compile(p) for h, p in STD_TOKEN_MAP.items()}
COMPILED_USE_MAP = {
    h: re.compile(USE_TOKEN_OVERRIDES.get(h, p))
    for h, p in STD_TOKEN_MAP.items()
}

# (relpath -> headers) to keep regardless of token hits, for cases
# where the include line itself must stay unannotated. Empty today;
# prefer the inline "// IWYU pragma: keep".
KEEP_MAP: Dict[str, Set[str]] = {}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^>"]+)[>"]')
PRAGMA_KEEP_RE = re.compile(r"//\s*IWYU\s+pragma:\s*keep")
WANT_RE = re.compile(r"//.*?\bWANT\(([\w-]+)\)")

MESSAGES = {
    "unused-include":
        "no symbol from this header appears in the file; drop the "
        "include (or mark it '// IWYU pragma: keep' with a reason the "
        "token map cannot see)",
    "missing-include":
        "symbol used without its own #include; the current build "
        "leaks it transitively, which breaks the day a dependency "
        "slims down",
}


# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------


class Config:
    def __init__(self, scan_roots, header_only=True):
        self.scan_roots = scan_roots
        self.header_only = header_only

    @staticmethod
    def for_src():
        return Config(scan_roots=["src"])

    @staticmethod
    def for_fixtures():
        return Config(scan_roots=["tools/lint/fixtures/includes"])


def iter_headers(root: str, config: Config):
    suffixes = (".h", ".hpp") if config.header_only else (".h", ".hpp",
                                                          ".cc", ".cpp")
    for scan_root in config.scan_roots:
        base = os.path.join(root, scan_root)
        for dirpath, _, filenames in os.walk(base):
            for filename in sorted(filenames):
                if filename.endswith(suffixes):
                    path = os.path.join(dirpath, filename)
                    rel = os.path.relpath(path, root).replace(os.sep, "/")
                    yield rel, path


# --------------------------------------------------------------------------
# Scan
# --------------------------------------------------------------------------


def scan_header(relpath: str, raw: str) -> List[Finding]:
    raw_lines = raw.split("\n")
    stripped = strip_comments_and_strings(raw)

    includes: List[Tuple[int, str, str]] = []  # (line, header, raw line)
    for idx, line in enumerate(raw_lines, start=1):
        m = INCLUDE_RE.match(line)
        if m is not None:
            includes.append((idx, m.group(1), line))
    included = {header for _, header, _ in includes}
    kept = KEEP_MAP.get(relpath, set())

    findings: List[Finding] = []
    for idx, header, line in includes:
        pattern = COMPILED_USE_MAP.get(header)
        if pattern is None:
            continue  # unmapped (incl. every repo-relative include)
        if PRAGMA_KEEP_RE.search(line) or header in kept:
            continue
        if not pattern.search(stripped):
            findings.append((relpath, idx, "unused-include",
                             f"<{header}>: {MESSAGES['unused-include']}"))

    # Only the first use of each missing header is reported.
    for header, pattern in COMPILED_TOKEN_MAP.items():
        if header in included:
            continue
        m = pattern.search(stripped)
        if m is None:
            continue
        line_no = stripped.count("\n", 0, m.start()) + 1
        findings.append((
            relpath, line_no, "missing-include",
            f"'{m.group(0)}' needs <{header}>: "
            f"{MESSAGES['missing-include']}"))

    findings.sort(key=lambda f: (f[0], f[1], f[2]))
    return findings


def run_scan(root: str, config: Config) -> List[Finding]:
    findings: List[Finding] = []
    for rel, path in iter_headers(root, config):
        with open(path, "r", encoding="utf-8") as f:
            findings.extend(scan_header(rel, f.read()))
    return findings


def self_test(root: str) -> int:
    config = Config.for_fixtures()
    expected: Set[Tuple[str, int, str]] = set()
    for rel, path in iter_headers(root, config):
        with open(path, "r", encoding="utf-8") as f:
            for idx, line in enumerate(f, start=1):
                for m in WANT_RE.finditer(line):
                    expected.add((rel, idx, m.group(1)))
    if not expected:
        print("include_hygiene_lint self-test: no WANT markers found under "
              "tools/lint/fixtures/includes -- fixtures missing?")
        return 2

    actual = {(rel, line, rule) for rel, line, rule, _ in
              run_scan(root, config)}
    missing = sorted(expected - actual)
    unexpected = sorted(actual - expected)
    for rel, line, rule in missing:
        print(f"MISSING   {rel}:{line}: expected [{rule}] not reported")
    for rel, line, rule in unexpected:
        print(f"SPURIOUS  {rel}:{line}: reported [{rule}] not expected")
    if missing or unexpected:
        print(f"include_hygiene_lint self-test: FAIL "
              f"({len(missing)} missing, {len(unexpected)} spurious)")
        return 1
    print(f"include_hygiene_lint self-test: OK "
          f"({len(expected)} findings matched)")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: two levels up)")
    parser.add_argument("--self-test", action="store_true",
                        help="scan the bundled fixtures and verify the "
                             "finding set against their WANT markers")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(args.root)

    findings = run_scan(args.root, Config.for_src())
    for rel, line, rule, message in findings:
        print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(f"include_hygiene_lint: {len(findings)} finding(s)")
        return 1
    print("include_hygiene_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
