// Copyright 2026 The streambid Authors
// Union operator: merges two streams with identical schemas.

#ifndef STREAMBID_STREAM_OPERATORS_UNION_OP_H_
#define STREAMBID_STREAM_OPERATORS_UNION_OP_H_

#include <vector>

#include "common/check.h"
#include "stream/operator.h"

namespace streambid::stream {

/// union(left, right) — pass-through merge.
class UnionOperator : public OperatorBase {
 public:
  UnionOperator(const SchemaPtr& left_schema, const SchemaPtr& right_schema,
                double cost_per_tuple = DefaultCosts::kUnion)
      : OperatorBase("union", cost_per_tuple), schema_(left_schema) {
    STREAMBID_CHECK(*left_schema == *right_schema);
  }

  SchemaPtr output_schema() const override { return schema_; }
  int num_inputs() const override { return 2; }

  void Process(int port, const Tuple& tuple,
               std::vector<Tuple>* out) override {
    STREAMBID_DCHECK(port == 0 || port == 1);
    (void)port;
    out->push_back(tuple);
  }

 private:
  SchemaPtr schema_;
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_OPERATORS_UNION_OP_H_
