// Copyright 2026 The streambid Authors
// The declared lock hierarchy: one global rank for every
// streambid::Mutex in the tree, plus the debug-build deadlock sentinel
// that enforces it at runtime.
//
// Clang's capability analysis (common/thread_annotations.h) proves that
// every guarded member is accessed under its lock, but it is blind to
// lock *ordering*: an inversion deadlock — thread A holds a gate pool
// mutex and wants an executor mutex while thread B holds the executor
// mutex and wants the pool — type-checks cleanly and only shows up as a
// production hang. This header closes that gap three ways:
//
//  1. The rank table below declares one total order over every mutex:
//     gate → cluster → executor → telemetry → leaf. A thread may only
//     acquire a mutex of STRICTLY GREATER rank than every mutex it
//     already holds. Mutexes that are never held together still get
//     ranks, so the sanctioned order pre-exists the first nesting
//     anyone introduces.
//  2. tools/lint/lock_order_lint.py parses this table, extracts every
//     nested MutexLock acquisition across src/, and fails the build on
//     any acquisition that descends the hierarchy (and on any cycle in
//     the cross-file acquisition graph).
//  3. Under -DSTREAMBID_LOCK_ORDER=ON (debug/TSan builds), Mutex::lock
//     pushes onto a thread_local held-lock stack and CHECK-fails — with
//     both lock names and the whole held stack — the moment any thread
//     acquires out of rank order, whether or not the schedule would
//     have deadlocked this run. When the option is off every hook below
//     compiles to an empty inline body: zero overhead, zero size.
//
// Adding a mutex: pick the rank matching the layer that owns it (or add
// a new enumerator between the right neighbors — values are spaced by
// 10 exactly so insertions never renumber the table), construct the
// Mutex with {LockRank::kYourRank, "layer/what_it_guards"}, and keep
// this table's comment in sync. The lock-order lint fails on any
// src/ Mutex declared without a rank.

#ifndef STREAMBID_COMMON_LOCK_ORDER_H_
#define STREAMBID_COMMON_LOCK_ORDER_H_

#include <cstddef>

namespace streambid {

/// The global mutex ranks, in acquisition order: a thread holding rank
/// r may only acquire ranks > r. Values are spaced so a future mutex
/// can slot between neighbors without renumbering.
enum class LockRank : int {
  // -- Gate layer (outermost: the open-loop front door) -------------
  /// StreamIngress::mutex_ — the gate buffer + period counters. Held
  /// only for the O(1) buffer push / swap.
  kGateIngress = 100,
  /// TicketHolder::mutex_ — one per (mechanism, tenant-class) pool;
  /// held across the FIFO grant protocol (and its condvar waits).
  kGateTicketPool = 110,

  // -- Cluster layer ------------------------------------------------
  /// AdmissionExecutor::WorkerStats::mutex — per-worker rolling-stats
  /// shards (striped; never held together).
  kClusterWorkerStats = 200,

  // -- Executor layer (the task runtime's internal locks) -----------
  /// TaskExecutor::WorkerDeque::mutex — per-worker ring deques
  /// (striped; a worker never holds two deque locks at once).
  kExecutorDeque = 300,
  /// TaskExecutor::grow_mutex_ — serializes ticket-table growth.
  kExecutorGrow = 310,
  /// TaskExecutor::wake_mutex_ — the worker-parking eventcount.
  kExecutorWake = 320,
  /// TaskExecutor::space_mutex_ — the queue-space waiter protocol.
  kExecutorSpace = 330,
  /// TaskExecutor::done_mutex_ — the ticket/batch completion condvar.
  /// Acquired while holding a deque mutex in the destructor's
  /// FailPendingWork sweep (deque → done ascends).
  kExecutorDone = 340,

  // -- Telemetry layer (sinks; callees of every layer above) --------
  /// MetricsRegistry::mutex_ — instrument registration + snapshot.
  /// Held across Histogram::Snapshot (→ kHistogramSlot).
  kMetricsRegistry = 400,
  /// PeriodTracer::mutex_ — the span buffer.
  kPeriodTracer = 410,

  // -- Leaf (innermost: never held while acquiring anything) --------
  /// telemetry::Histogram::Slot::mutex — sharded histogram slots.
  kHistogramSlot = 500,
  /// Default rank of a Mutex constructed without one (tests, scratch
  /// code). A leaf may be acquired while holding anything, but nothing
  /// may be acquired while holding it — the safe default. Every Mutex
  /// under src/ must carry an explicit rank (the lint enforces it).
  kLeaf = 1000,
};

namespace lock_order {

/// The rank table in ascending order, for tests that walk adjacent
/// pairs and for diagnostics. Kept in sync with the enum by
/// tests/common/lock_order_test.cc.
struct RankTableEntry {
  LockRank rank;
  const char* name;
};
inline constexpr RankTableEntry kRankTable[] = {
    {LockRank::kGateIngress, "kGateIngress"},
    {LockRank::kGateTicketPool, "kGateTicketPool"},
    {LockRank::kClusterWorkerStats, "kClusterWorkerStats"},
    {LockRank::kExecutorDeque, "kExecutorDeque"},
    {LockRank::kExecutorGrow, "kExecutorGrow"},
    {LockRank::kExecutorWake, "kExecutorWake"},
    {LockRank::kExecutorSpace, "kExecutorSpace"},
    {LockRank::kExecutorDone, "kExecutorDone"},
    {LockRank::kMetricsRegistry, "kMetricsRegistry"},
    {LockRank::kPeriodTracer, "kPeriodTracer"},
    {LockRank::kHistogramSlot, "kHistogramSlot"},
    {LockRank::kLeaf, "kLeaf"},
};
inline constexpr size_t kRankTableSize =
    sizeof(kRankTable) / sizeof(kRankTable[0]);

#if STREAMBID_LOCK_ORDER

/// Depth of the per-thread held-lock stack. Deeper nesting than this is
/// itself a design smell; the sentinel CHECK-fails on overflow.
inline constexpr int kMaxHeldLocks = 16;

/// Called by Mutex::lock BEFORE blocking on the native mutex: verifies
/// `rank` strictly exceeds every rank this thread already holds, then
/// pushes (rank, name). On violation, prints both lock names plus the
/// whole held stack and aborts — catching the inversion even on
/// schedules where it would not have deadlocked this run.
void OnAcquire(LockRank rank, const char* name);

/// Called by Mutex::try_lock after a SUCCESSFUL native try_lock (a
/// failed try_lock holds nothing). Same check as OnAcquire: a try-lock
/// that descends the hierarchy is still a declared-order violation.
void OnTryAcquire(LockRank rank, const char* name);

/// Called by Mutex::unlock before releasing the native mutex: pops the
/// matching entry (topmost first — MutexLock scopes release LIFO, but
/// out-of-order manual unlocks are tolerated by searching down).
void OnRelease(LockRank rank, const char* name);

/// Number of locks the calling thread currently holds (test hook).
int HeldDepth();

#else  // !STREAMBID_LOCK_ORDER

// The sentinel compiles away: empty inline bodies the optimizer erases
// entirely, so the OFF build's lock/unlock are byte-for-byte the plain
// std::mutex forwarders they were before the sentinel existed.
inline void OnAcquire(LockRank, const char*) {}
inline void OnTryAcquire(LockRank, const char*) {}
inline void OnRelease(LockRank, const char*) {}
inline int HeldDepth() { return 0; }

#endif  // STREAMBID_LOCK_ORDER

}  // namespace lock_order
}  // namespace streambid

#endif  // STREAMBID_COMMON_LOCK_ORDER_H_
