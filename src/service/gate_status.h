// Copyright 2026 The streambid Authors
// Gate-aware response statuses: the typed error the streaming admission
// gate returns when it sheds a submission before the auction, plus the
// helpers callers use to recognize a shed and read its retry-after
// hint. Shed statuses are ordinary kResourceExhausted Status values
// with a structured message, so they travel through Result<T> and the
// service API unchanged; only these helpers know the message layout.

#ifndef STREAMBID_SERVICE_GATE_STATUS_H_
#define STREAMBID_SERVICE_GATE_STATUS_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace streambid::service {

/// The status a shed submission gets: kResourceExhausted with the pool
/// that starved it and a hint (in auction periods) for when retrying is
/// worthwhile — after roughly that many period drains the pool will
/// have recycled its tickets. retry_after_periods must be finite and
/// >= 0; it is clamped to 0 otherwise.
Status ShedRejection(std::string_view pool, double retry_after_periods);

/// True iff `status` is a gate shed produced by ShedRejection (as
/// opposed to some other kResourceExhausted, e.g. executor
/// backpressure).
bool IsShed(const Status& status);

/// The retry-after hint carried by a shed status; nullopt when `status`
/// is not a shed.
std::optional<double> RetryAfterPeriods(const Status& status);

/// The ticket pool named by a shed status; empty when `status` is not a
/// shed.
std::string ShedPool(const Status& status);

}  // namespace streambid::service

#endif  // STREAMBID_SERVICE_GATE_STATUS_H_
