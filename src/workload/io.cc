// Copyright 2026 The streambid Authors

#include "workload/io.h"

#include <cstdio>
#include <sstream>

#include "common/string_util.h"

namespace streambid::workload {

std::string SerializeWorkload(const RawWorkload& workload) {
  std::ostringstream out;
  out << "streambid-workload v1\n";
  out << "queries " << workload.num_queries() << "\n";
  for (int i = 0; i < workload.num_queries(); ++i) {
    out << "v " << i << " " << workload.valuations[static_cast<size_t>(i)]
        << " " << workload.users[static_cast<size_t>(i)] << "\n";
  }
  for (const RawOperator& op : workload.operators) {
    out << "o " << op.load;
    for (auction::QueryId q : op.subscribers) out << " " << q;
    out << "\n";
  }
  return out.str();
}

Result<RawWorkload> ParseWorkload(const std::string& text) {
  RawWorkload w;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  int num_queries = -1;
  bool saw_header = false;

  auto error = [&line_no](const std::string& message) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": " + message);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "streambid-workload v1") {
        return error("expected header 'streambid-workload v1'");
      }
      saw_header = true;
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "queries") {
      if (!(fields >> num_queries) || num_queries < 0) {
        return error("bad query count");
      }
      w.valuations.assign(static_cast<size_t>(num_queries), 0.0);
      w.users.assign(static_cast<size_t>(num_queries), 0);
    } else if (tag == "v") {
      int idx;
      double value;
      auction::UserId user;
      if (!(fields >> idx >> value >> user) || idx < 0 ||
          idx >= num_queries) {
        return error("bad valuation record");
      }
      w.valuations[static_cast<size_t>(idx)] = value;
      w.users[static_cast<size_t>(idx)] = user;
    } else if (tag == "o") {
      RawOperator op;
      if (!(fields >> op.load) || op.load <= 0.0) {
        return error("bad operator load");
      }
      auction::QueryId q;
      while (fields >> q) {
        if (q < 0 || q >= num_queries) {
          return error("operator subscriber out of range");
        }
        op.subscribers.push_back(q);
      }
      w.operators.push_back(std::move(op));
    } else {
      return error("unknown record tag '" + tag + "'");
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty workload file");
  }
  if (num_queries < 0) {
    return Status::InvalidArgument("missing 'queries' record");
  }
  return w;
}

Status SaveWorkload(const RawWorkload& workload, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open for write: " + path);
  }
  const std::string text = SerializeWorkload(workload);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write: " + path);
  }
  return Status::Ok();
}

Result<RawWorkload> LoadWorkload(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ParseWorkload(text);
}

}  // namespace streambid::workload
