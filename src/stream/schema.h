// Copyright 2026 The streambid Authors
// Tuple schemas: ordered, named, typed fields.

#ifndef STREAMBID_STREAM_SCHEMA_H_
#define STREAMBID_STREAM_SCHEMA_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stream/value.h"

namespace streambid::stream {

/// A named, typed field.
struct Field {
  std::string name;
  ValueType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Immutable ordered field list. Schemas are shared between tuples via
/// shared_ptr; operators derive output schemas at plan-build time.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1.
  int FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  bool HasField(const std::string& name) const {
    return FieldIndex(name) >= 0;
  }

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  /// "name:type,name:type,..." — used in operator signatures.
  std::string ToString() const {
    std::string out;
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += fields_[i].name;
      out += ":";
      out += ValueTypeName(fields_[i].type);
    }
    return out;
  }

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// Builds a shared schema.
inline SchemaPtr MakeSchema(std::vector<Field> fields) {
  return std::make_shared<const Schema>(std::move(fields));
}

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_SCHEMA_H_
