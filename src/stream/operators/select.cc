// Copyright 2026 The streambid Authors

#include "stream/operators/select.h"

#include "common/check.h"

namespace streambid::stream {

const char* CompareOpToken(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs < rhs || lhs == rhs;
    case CompareOp::kGt:
      return !(lhs < rhs) && lhs != rhs;
    case CompareOp::kGe:
      return !(lhs < rhs);
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

SelectOperator::SelectOperator(SchemaPtr input_schema, std::string field,
                               CompareOp op, Value operand,
                               double cost_per_tuple)
    : OperatorBase(
          "select(" + field + CompareOpToken(op) + operand.ToString() + ")",
          cost_per_tuple),
      schema_(std::move(input_schema)),
      field_index_(schema_->FieldIndex(field)),
      op_(op),
      operand_(std::move(operand)) {
  STREAMBID_CHECK_GE(field_index_, 0);
}

void SelectOperator::Process(int port, const Tuple& tuple,
                             std::vector<Tuple>* out) {
  STREAMBID_DCHECK(port == 0);
  (void)port;
  if (EvalCompare(tuple.value(field_index_), op_, operand_)) {
    out->push_back(tuple);
  }
}

}  // namespace streambid::stream
