// Copyright 2026 The streambid Authors

#include "workload/workload_set.h"

#include <gtest/gtest.h>

namespace streambid::workload {
namespace {

WorkloadParams SmallParams() {
  WorkloadParams p;
  p.num_queries = 150;
  p.base_num_operators = 60;
  p.base_max_sharing = 30;
  return p;
}

TEST(WorkloadSetTest, InstanceAtRespectsMaxDegree) {
  WorkloadSet set(SmallParams(), /*seed=*/3);
  for (int s : {1, 4, 15, 30}) {
    const auction::AuctionInstance& inst = set.InstanceAt(s);
    int max_degree = 0;
    for (auction::OperatorId j = 0; j < inst.num_operators(); ++j) {
      max_degree = std::max(max_degree, inst.sharing_degree(j));
    }
    EXPECT_LE(max_degree, s);
  }
}

TEST(WorkloadSetTest, CachingReturnsSameInstance) {
  WorkloadSet set(SmallParams(), 4);
  const auction::AuctionInstance& a = set.InstanceAt(5);
  const auction::AuctionInstance& b = set.InstanceAt(5);
  EXPECT_EQ(&a, &b);
}

TEST(WorkloadSetTest, DerivationIndependentOfRequestOrder) {
  WorkloadSet forward(SmallParams(), 5);
  WorkloadSet backward(SmallParams(), 5);
  const auction::AuctionInstance& f3 = forward.InstanceAt(3);
  (void)backward.InstanceAt(20);
  const auction::AuctionInstance& b3 = backward.InstanceAt(3);
  ASSERT_EQ(f3.num_operators(), b3.num_operators());
  for (auction::OperatorId j = 0; j < f3.num_operators(); ++j) {
    EXPECT_EQ(f3.operator_load(j), b3.operator_load(j));
    EXPECT_EQ(f3.operator_queries(j), b3.operator_queries(j));
  }
}

TEST(WorkloadSetTest, DifferentSeedsDiffer) {
  WorkloadSet a(SmallParams(), 1);
  WorkloadSet b(SmallParams(), 2);
  // Identical shapes are astronomically unlikely.
  EXPECT_NE(a.InstanceAt(10).Summary(), b.InstanceAt(10).Summary());
}

TEST(WorkloadSetTest, TotalDemandInvariantAcrossSweep) {
  WorkloadSet set(SmallParams(), 6);
  const double base_demand = set.InstanceAt(30).total_demand();
  for (int s : {1, 7, 15}) {
    EXPECT_NEAR(set.InstanceAt(s).total_demand(), base_demand, 1e-6);
  }
}

TEST(WorkloadSetTest, SharingSweepGrid) {
  const std::vector<int> sweep = WorkloadSet::SharingSweep(60, 10);
  EXPECT_EQ(sweep.front(), 1);
  EXPECT_EQ(sweep.back(), 60);
  for (size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i], sweep[i - 1]);
  }
  const std::vector<int> fine = WorkloadSet::SharingSweep(5, 1);
  EXPECT_EQ(fine, (std::vector<int>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace streambid::workload
