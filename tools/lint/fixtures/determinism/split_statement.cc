// Copyright 2026 The streambid Authors
// Fixture: statements split across physical lines. The joiner must see
// each construct whole — the clock-seeded RNGs below hit the specific
// time-seed rule (not the generic wall-clock rule), and the wrapped
// new on a continuation line is recognized as wrapped.

#include <chrono>
#include <ctime>
#include <memory>
#include <random>

inline std::mt19937 SplitTimeSeed() {
  std::mt19937 rng(  // WANT(time-seed)
      static_cast<unsigned>(time(nullptr)));
  return rng;
}

inline void SplitSeedCall(std::mt19937& rng) {
  rng.seed(  // WANT(time-seed)
      std::chrono::steady_clock::now().time_since_epoch().count());
}

inline int* SplitNakedNew() {
  int* leaked =
      new int(7);  // WANT(naked-new)
  return leaked;
}

inline std::unique_ptr<int> SplitWrappedNew() {
  // Clean: the unique_ptr wrap is on the line above the new, which the
  // per-line scanner used to flag and the statement joiner must not.
  auto owned = std::unique_ptr<int>(
      new int(9));
  return owned;
}

inline void SuppressedSplitSeed(std::mt19937& rng) {
  // A NOLINT anywhere on the statement suppresses it (here: on the
  // continuation line holding the clock read).
  rng.seed(
      std::chrono::steady_clock::now()  // NOLINT(determinism): fixture exercising statement-wide suppression
          .time_since_epoch()
          .count());
}
