// Copyright 2026 The streambid Authors
// Base class for stream operators ("boxes" in the Aurora model the paper
// assumes, §II). Operators are push-based: the engine hands them input
// tuples and they append outputs. Window operators additionally emit on
// time advancement. Each operator carries a per-tuple processing cost in
// abstract capacity units; measured cost x rate is the operator load c_j
// the admission auction prices.

#ifndef STREAMBID_STREAM_OPERATOR_H_
#define STREAMBID_STREAM_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stream/tuple.h"

namespace streambid::stream {

/// Abstract stream operator.
class OperatorBase {
 public:
  OperatorBase(std::string name, double cost_per_tuple)
      : name_(std::move(name)), cost_per_tuple_(cost_per_tuple) {}
  virtual ~OperatorBase() = default;

  OperatorBase(const OperatorBase&) = delete;
  OperatorBase& operator=(const OperatorBase&) = delete;

  /// Short human-readable descriptor, e.g. "select(price>100)".
  const std::string& name() const { return name_; }

  /// Schema of emitted tuples.
  virtual SchemaPtr output_schema() const = 0;

  /// Number of input ports (1, or 2 for join/union).
  virtual int num_inputs() const { return 1; }

  /// Processes one tuple arriving on `port`, appending outputs.
  virtual void Process(int port, const Tuple& tuple,
                       std::vector<Tuple>* out) = 0;

  /// Notifies the operator that virtual time reached `now`; window
  /// operators close and emit expired windows here.
  virtual void AdvanceTime(VirtualTime now, std::vector<Tuple>* out) {
    (void)now;
    (void)out;
  }

  /// Clears operator state (used when draining during a transition
  /// removes a query and its windows should not leak into the next
  /// subscription period).
  virtual void Reset() {}

  /// Abstract processing cost per input tuple, in capacity units x
  /// seconds (i.e., an operator processing r tuples/sec consumes
  /// r * cost capacity units).
  double cost_per_tuple() const { return cost_per_tuple_; }

  // --- Statistics maintained by the engine. ---
  void RecordInput(int64_t n) { tuples_in_ += n; }
  void RecordOutput(int64_t n) { tuples_out_ += n; }
  int64_t tuples_in() const { return tuples_in_; }
  int64_t tuples_out() const { return tuples_out_; }

  /// Observed selectivity (outputs per input; 1.0 until data arrives).
  double MeasuredSelectivity() const {
    return tuples_in_ > 0
               ? static_cast<double>(tuples_out_) /
                     static_cast<double>(tuples_in_)
               : 1.0;
  }

 private:
  std::string name_;
  double cost_per_tuple_;
  int64_t tuples_in_ = 0;
  int64_t tuples_out_ = 0;
};

using OperatorPtr = std::unique_ptr<OperatorBase>;

/// Default per-tuple costs by operator kind, in capacity units. Chosen so
/// that realistic source rates produce loads in the 1..10 range of the
/// paper's workload (Table III: operator loads Zipf max 10).
struct DefaultCosts {
  static constexpr double kSelect = 0.01;
  static constexpr double kProject = 0.008;
  static constexpr double kMap = 0.012;
  static constexpr double kAggregate = 0.02;
  static constexpr double kJoin = 0.05;
  static constexpr double kUnion = 0.005;
  static constexpr double kTopK = 0.03;
  static constexpr double kDistinct = 0.015;
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_OPERATOR_H_
