// Copyright 2026 The streambid Authors
// Theorems 11/12 ablation: expected Two-price profit versus the OPT_C
// benchmark, with the exhaustive duplicate Step 3 on (Theorem 11 bound
// OPT_C - 2h) and off (Theorem 12 bound OPT_C - d*h, d = size of the
// boundary tie class). Run on Table III workloads (integer Zipf bids,
// so ties are common and Step 3 matters) and on a distinct-valuation
// instance where the bound is tight.

#include <algorithm>
#include <cstdio>

#include "auction/mechanisms/opt_c.h"
#include "bench/bench_common.h"
#include "common/check.h"
#include "common/table.h"

namespace {

using namespace streambid;

struct Row {
  std::string label;
  double opt_c;
  double h;
  double exhaustive;
  double poly;
};

double MeanProfit(service::AdmissionService& service,
                  const std::string& mechanism,
                  const auction::AuctionInstance& inst, double capacity,
                  int trials) {
  double acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    service::AdmissionRequest request;
    request.instance = &inst;
    request.capacity = capacity;
    request.mechanism = mechanism;
    request.seed = 42;
    request.request_index = static_cast<uint32_t>(t);
    auto response = service.Admit(request);
    STREAMBID_CHECK(response.ok());
    acc += response->metrics.profit;
  }
  return acc / trials;
}

Row Evaluate(service::AdmissionService& service, const std::string& label,
             const auction::AuctionInstance& inst, double capacity,
             int trials) {
  Row row;
  row.label = label;
  row.opt_c = auction::OptimalConstantPricing(inst, capacity).profit;
  row.h = inst.max_bid();
  row.exhaustive =
      MeanProfit(service, "two-price", inst, capacity, trials);
  row.poly =
      MeanProfit(service, "two-price-poly", inst, capacity, trials);
  return row;
}

}  // namespace

int main() {
  using namespace streambid::bench;
  streambid::service::AdmissionService service;
  const BenchConfig config = LoadConfig();
  std::printf("# Theorems 11/12: Two-price profit vs OPT_C "
              "(expected profit >= OPT_C - 2h with Step 3; "
              ">= OPT_C - d*h without)\n");

  TextTable table({"instance", "opt_c", "h", "two-price", "bound_2h",
                   "holds", "two-price-poly"});
  std::vector<Row> rows;

  // Table III workloads at two sharing levels.
  workload::WorkloadParams params = config.params;
  params.num_queries = std::min(config.queries, 500);
  params.base_num_operators = std::max(1, params.num_queries * 700 / 2000);
  for (int degree : {5, 30}) {
    workload::WorkloadSet ws(params, 0x5EEDu);
    const auction::AuctionInstance& inst = ws.InstanceAt(degree);
    rows.push_back(Evaluate(
        service, "tableIII-deg" + std::to_string(degree), inst,
        inst.total_union_load() * 0.5, 200));
  }

  // Distinct-valuation instance (the Theorem 11 setting).
  {
    std::vector<auction::OperatorSpec> ops;
    std::vector<auction::QuerySpec> queries;
    Rng rng(9);
    for (int i = 0; i < 300; ++i) {
      ops.push_back({1.0 + static_cast<double>(rng.NextBounded(5))});
      queries.push_back(
          {i, 100.0 - 0.1 * i, {static_cast<auction::OperatorId>(i)}});
    }
    auto inst = auction::AuctionInstance::Create(std::move(ops),
                                                 std::move(queries))
                    .value();
    rows.push_back(Evaluate(service, "distinct-vals", inst,
                            inst.total_union_load() * 0.6, 400));
  }

  std::vector<std::pair<std::string, double>> artifact;
  double min_margin = 1e300;
  for (const Row& row : rows) {
    const double bound = row.opt_c - 2.0 * row.h;
    table.AddRow({row.label, FormatDouble(row.opt_c, 1),
                  FormatDouble(row.h, 0), FormatDouble(row.exhaustive, 1),
                  FormatDouble(bound, 1),
                  row.exhaustive >= bound - 1e-6 ? "yes" : "NO",
                  FormatDouble(row.poly, 1)});
    min_margin = std::min(min_margin, row.exhaustive - bound);
    artifact.emplace_back("profit_" + row.label, row.exhaustive);
  }
  artifact.emplace_back("min_margin_vs_bound_2h", min_margin);
  artifact.emplace_back("all_bounds_hold", min_margin >= -1e-6 ? 1.0 : 0.0);
  std::fputs(table.ToAligned().c_str(), stdout);
  std::printf("# note: with integer Zipf bids the boundary tie class d "
              "is large, so the poly variant's OPT_C - d*h bound is "
              "weak there — exactly the trade-off §IV-D discusses.\n");
  WriteBenchJson("twoprice_guarantee", artifact);
  return 0;
}
