// Copyright 2026 The streambid Authors
// Quickstart: the paper's Example 1 (§II) on the admission service API.
//
// Three continuous queries are submitted to a DSMS with capacity 10:
//   q1 = {A, B} bid $55;  q2 = {A, C} bid $72;  q3 = {D, E} bid $100,
// with loads A=4, B=1, C=2, D=6, E=4 and operator A shared by q1/q2.
// One AdmitAll call auctions the instance under every registered
// mechanism and returns winners, payments, the §VI metrics, and
// diagnostics. Expected (paper §IV): CAR charges $10/$60, CAF $30/$40,
// CAT $50/$60, all admitting {q1, q2}.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/table.h"
#include "service/admission_service.h"

int main() {
  using namespace streambid;
  using auction::AuctionInstance;

  // --- Describe the instance: operators (loads) and queries
  //     (user, bid, operator set). -----------------------------------
  auto instance_or = AuctionInstance::Create(
      /*operators=*/{{4.0}, {1.0}, {2.0}, {6.0}, {4.0}},  // A B C D E
      /*queries=*/{
          {/*user=*/1, /*bid=*/55.0, /*operators=*/{0, 1}},   // q1
          {/*user=*/2, /*bid=*/72.0, /*operators=*/{0, 2}},   // q2
          {/*user=*/3, /*bid=*/100.0, /*operators=*/{3, 4}},  // q3
      });
  if (!instance_or.ok()) {
    std::fprintf(stderr, "bad instance: %s\n",
                 instance_or.status().ToString().c_str());
    return 1;
  }
  const AuctionInstance& instance = *instance_or;
  const double capacity = 10.0;

  std::printf("%s\n", instance.Summary().c_str());
  std::printf("derived loads: q1 CT=%.0f CSF=%.0f | q2 CT=%.0f CSF=%.0f "
              "| q3 CT=%.0f CSF=%.0f\n\n",
              instance.total_load(0), instance.fair_share_load(0),
              instance.total_load(1), instance.fair_share_load(1),
              instance.total_load(2), instance.fair_share_load(2));

  // --- One request/response call per registered mechanism. ----------
  service::AdmissionService service;
  auto responses = service.AdmitAll(instance, capacity, /*seed=*/2026);
  if (!responses.ok()) {
    std::fprintf(stderr, "admission failed: %s\n",
                 responses.status().ToString().c_str());
    return 1;
  }

  TextTable table({"mechanism", "winners", "p(q1)", "p(q2)", "p(q3)",
                   "profit", "payoff", "admission", "ms"});
  for (const service::AdmissionResponse& response : *responses) {
    const auction::Allocation& alloc = response.allocation;
    std::string winners;
    for (auction::QueryId q = 0; q < instance.num_queries(); ++q) {
      if (alloc.IsAdmitted(q)) {
        winners += (winners.empty() ? "q" : ",q") + std::to_string(q + 1);
      }
    }
    table.AddRow({response.diagnostics.mechanism,
                  winners.empty() ? "-" : winners,
                  FormatDouble(alloc.Payment(0), 2),
                  FormatDouble(alloc.Payment(1), 2),
                  FormatDouble(alloc.Payment(2), 2),
                  FormatDouble(response.metrics.profit, 2),
                  FormatDouble(response.metrics.total_payoff, 2),
                  FormatPercent(response.metrics.admission_rate, 0),
                  FormatDouble(response.elapsed_ms, 3)});
  }
  std::fputs(table.ToAligned().c_str(), stdout);
  std::printf("\npaper walkthrough: CAR $10/$60, CAF $30/$40, CAT "
              "$50/$60 — all admit {q1, q2} and reject q3.\n");
  return 0;
}
