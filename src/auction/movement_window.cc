// Copyright 2026 The streambid Authors

#include "auction/movement_window.h"

#include <algorithm>

#include "auction/admitted_set.h"
#include "auction/greedy_common.h"
#include "common/check.h"

namespace streambid::auction {

QueryId ComputeLast(const AuctionInstance& instance, double capacity,
                    const std::vector<QueryId>& order, QueryId winner) {
  const size_t n = order.size();
  size_t winner_pos = n;
  for (size_t p = 0; p < n; ++p) {
    if (order[p] == winner) {
      winner_pos = p;
      break;
    }
  }
  STREAMBID_CHECK_LT(winner_pos, n);

  // Mark the winner's operators so the scan below can track how much of
  // its load becomes covered by other admitted queries.
  std::vector<bool> is_winner_op(
      static_cast<size_t>(instance.num_operators()), false);
  for (OperatorId j : instance.query_operators(winner)) {
    is_winner_op[static_cast<size_t>(j)] = true;
  }
  const double winner_total = instance.total_load(winner);

  // Single skip-greedy scan over the priority list with `winner` removed.
  // After each processed entry at an original position beyond winner_pos
  // (a candidate j for "place winner directly after j"), test whether the
  // winner would still fit there.
  AdmittedSet set(instance);
  double covered = 0.0;  // Load of winner's ops admitted via other queries.
  for (size_t p = 0; p < n; ++p) {
    const QueryId q = order[p];
    if (q == winner) continue;
    if (set.Fits(q, capacity)) {
      // Track newly covered winner operators before admitting (Admit
      // flips the shared flags).
      for (OperatorId j : instance.query_operators(q)) {
        auto idx = static_cast<size_t>(j);
        if (is_winner_op[idx] && !set.IsOperatorAdmitted(j)) {
          covered += instance.operator_load(j);
        }
      }
      set.Admit(q);
    }
    if (p > winner_pos) {
      // Candidate: winner re-inserted directly after order[p].
      const double remaining = winner_total - covered;
      if (set.used() + remaining > capacity + kFitEpsilon) {
        return q;  // First position where the winner would lose.
      }
    }
  }
  return kNoQuery;  // Movement window spans the rest of the list.
}

QueryId ComputeLastBruteForce(const AuctionInstance& instance,
                              double capacity,
                              const std::vector<QueryId>& order,
                              QueryId winner) {
  const size_t n = order.size();
  size_t winner_pos = n;
  for (size_t p = 0; p < n; ++p) {
    if (order[p] == winner) {
      winner_pos = p;
      break;
    }
  }
  STREAMBID_CHECK_LT(winner_pos, n);

  for (size_t target = winner_pos + 1; target < n; ++target) {
    // Rebuild the order with `winner` placed directly after order[target].
    std::vector<QueryId> moved;
    moved.reserve(n);
    for (size_t p = 0; p < n; ++p) {
      if (p == winner_pos) continue;
      moved.push_back(order[p]);
      if (order[p] == order[target]) moved.push_back(winner);
    }
    GreedyScan scan =
        RunGreedyScan(instance, capacity, moved, MisfitPolicy::kSkip);
    if (!scan.admitted[static_cast<size_t>(winner)]) {
      return order[target];
    }
  }
  return kNoQuery;
}

}  // namespace streambid::auction
