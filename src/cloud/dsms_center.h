// Copyright 2026 The streambid Authors
// The DSMS "cloud center" of paper §I-II: a for-profit service that, at
// the end of each subscription period, auctions the next period's server
// capacity among submitted continuous queries, installs the winners into
// the stream engine through the §II transition phase, executes the
// period, and bills the winners the mechanism's payments. Auctions run
// through an AdmissionService; the per-period request stream is
// (options.seed, period), so any period's auction replays in isolation.

#ifndef STREAMBID_CLOUD_DSMS_CENTER_H_
#define STREAMBID_CLOUD_DSMS_CENTER_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/autoscaler.h"
#include "common/status.h"
#include "service/admission_service.h"
#include "stream/engine.h"
#include "stream/load_estimator.h"

namespace streambid::telemetry {
class Counter;
class Gauge;
class MetricsRegistry;
class PeriodTracer;
}  // namespace streambid::telemetry

namespace streambid::cloud {

/// Center configuration.
struct DsmsCenterOptions {
  /// Length of one subscription period in virtual seconds ("say, a
  /// day" — we default to a compressed day for fast simulation).
  stream::VirtualTime period_length = 3600.0;
  /// Admission mechanism name (see AdmissionService::MechanismNames()).
  std::string mechanism = "cat";
  /// Load model used to derive operator loads for the auction.
  stream::LoadEstimateOptions load_options;
  /// Seed for randomized mechanisms.
  uint64_t seed = 1;
  /// Closed-loop capacity autoscaling (§VII). When enabled, each
  /// PrepareAuction re-provisions the engine via a CapacityAutoscaler
  /// seeded with the engine's construction-time capacity as baseline.
  /// The energy model inside prices PeriodReport::energy_cost whether
  /// or not autoscaling is on.
  AutoscalerOptions autoscale;
  /// Optional telemetry sink. When set, every period publishes the
  /// center's business series — revenue, energy cost, shed fraction,
  /// provisioned capacity, admitted/submitted counts, and the
  /// autoscaler's capacity decisions — labeled {shard="<shard_index>"}.
  /// Null disables publication entirely. Must outlive the center.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// The label value for this center's metric series (the cluster layer
  /// passes the shard index; standalone centers default to 0).
  int shard_index = 0;
  /// Optional period tracer: when set and autoscaling is enabled,
  /// PrepareAuction records one kAutoscale span per period (shard =
  /// shard_index, epoch = set_trace_epoch's value). Null disables.
  /// Must outlive the center.
  telemetry::PeriodTracer* tracer = nullptr;
};

/// Outcome of one subscription period.
struct PeriodReport {
  int period = 0;
  /// Admission mechanism that ran this period's auction — carried so
  /// aggregated reports (cluster layer) need not reach back into the
  /// center's options.
  std::string mechanism;
  int submissions = 0;
  int admitted = 0;
  double revenue = 0.0;
  /// Winners' total payoff (bid - payment), assuming truthful bids.
  double total_payoff = 0.0;
  /// Utilization per the auction's load model.
  double auction_utilization = 0.0;
  /// Utilization actually measured by the engine over the period.
  double measured_utilization = 0.0;
  /// Fraction of arriving source tuples shed by engine overload
  /// protection (0 unless EngineOptions::shed_on_overload).
  double shed_fraction = 0.0;
  /// Capacity the engine ran this period at (equals the construction
  /// capacity unless the autoscaler re-provisioned).
  double provisioned_capacity = 0.0;
  /// Energy cost of the period under the configured EnergyModel
  /// (options.autoscale.energy), computed whether or not autoscaling
  /// is enabled so fixed-vs-autoscaled net profit is comparable.
  double energy_cost = 0.0;
  /// The autoscaler's decision for this period; absent when
  /// autoscaling is disabled.
  std::optional<AutoscaleDecision> autoscale_decision;
  /// Wall-clock milliseconds the admission auction took.
  double auction_elapsed_ms = 0.0;
  /// Engine query ids admitted this period.
  std::vector<int> admitted_ids;
  /// Payment charged per admitted engine query id. Hot billing path:
  /// hashed, not ordered — sort keys at the presentation layer.
  std::unordered_map<int, double> payments;
};

/// Per-user cumulative billing ledger. Hot path on every period close;
/// hashed lookups, no ordering guarantee on iteration.
class BillingLedger {
 public:
  void Charge(auction::UserId user, double amount) {
    charges_[user] += amount;
    total_ += amount;
  }
  /// Removes `user`'s cumulative charges and returns them, so a
  /// migrating tenant's billing history can be carried to the adopting
  /// center's ledger (Charge there restores the cluster-wide total).
  double Extract(auction::UserId user) {
    auto it = charges_.find(user);
    if (it == charges_.end()) return 0.0;
    const double amount = it->second;
    charges_.erase(it);
    total_ -= amount;
    return amount;
  }
  double TotalCharged(auction::UserId user) const {
    auto it = charges_.find(user);
    return it == charges_.end() ? 0.0 : it->second;
  }
  double total() const { return total_; }
  const std::unordered_map<auction::UserId, double>& charges() const {
    return charges_;
  }

 private:
  std::unordered_map<auction::UserId, double> charges_;
  double total_ = 0.0;
};

/// The auction inputs for one period boundary, built from the pending
/// submissions. The admission request's instance points into `build`,
/// which is heap-held so the struct stays valid across moves — the
/// cluster layer collects one of these per shard, runs the requests
/// through its parallel executor, and hands each response back to
/// CompletePeriod.
struct PreparedAuction {
  /// False when no submissions are pending (the period still runs:
  /// CompletePeriod(nullptr) expires active queries and executes).
  bool has_auction = false;
  std::unique_ptr<stream::AuctionBuild> build;
  service::AdmissionRequest request;
};

/// One tenant's center-resident state, as moved between centers by the
/// cluster layer's inter-period rebalancer: the submissions still
/// waiting for an auction plus the cumulative ledger charges. Active
/// (installed) queries are never part of it — they expire at the next
/// period boundary of the center that admitted them, so migration
/// between periods never touches engine state.
struct TenantState {
  auction::UserId user = 0;
  /// Pending (not yet auctioned) submissions, in submission order.
  std::vector<stream::QuerySubmission> pending;
  /// Cumulative charges carried to the adopting center's ledger.
  double charged = 0.0;
};

/// The admission-controlled streaming service. Borrows an engine whose
/// capacity defines the auction capacity.
class DsmsCenter {
 public:
  /// Precondition (checked): `engine` is non-null. The caller retains
  /// ownership and must keep the engine alive for the center's lifetime.
  /// The mechanism name must be registered (checked).
  DsmsCenter(const DsmsCenterOptions& options, stream::Engine* engine);

  /// Queues a query submission (bid + plan) for the next period's
  /// auction. Fails fast when the plan does not validate against the
  /// engine (kInvalidArgument/kNotFound) or the id is already pending
  /// or active (kAlreadyExists).
  Status Submit(stream::QuerySubmission submission);

  /// Ends the current period: runs the auction over pending
  /// submissions, transitions the engine (expired queries out, winners
  /// in), executes one period of stream processing, and bills winners.
  /// Queries run for exactly one period; users must resubmit to renew
  /// (see SubscriptionManager for the §VII multi-period extension).
  /// Equivalent to PrepareAuction + Admit on the own service +
  /// CompletePeriod.
  Result<PeriodReport> RunPeriod();

  /// Builds this period's auction instance and admission request from
  /// the pending submissions without running anything. The request's
  /// stream is (options.seed, period), exactly as RunPeriod would use,
  /// so admitting it through any AdmissionService — including another
  /// thread's — yields the identical allocation. With autoscaling
  /// enabled this also commits the period's provisioning decision
  /// (engine re-provisioned, request capacity set) — call it exactly
  /// once per period.
  ///
  /// Thread placement: PrepareAuction and CompletePeriod may run on any
  /// thread (the cluster layer schedules them on its TaskExecutor pool
  /// workers), as long as calls against one center are externally
  /// serialized — the center itself is not thread-safe. Both are
  /// deterministic functions of center-local state, so placement never
  /// changes a report.
  Result<PreparedAuction> PrepareAuction();

  /// Sets the logical epoch stamped onto this center's trace spans (the
  /// cluster layer forwards its period epoch before each PrepareAuction;
  /// standalone centers can leave the default 0). Same serialization
  /// contract as PrepareAuction.
  void set_trace_epoch(uint64_t epoch) { trace_epoch_ = epoch; }

  /// Applies an admission outcome and finishes the period: transition,
  /// execution, billing, history. `response` must be the result of
  /// admitting the PreparedAuction request (null iff there was no
  /// auction; kInvalidArgument when submissions are pending but the
  /// response is missing or mis-sized). See PrepareAuction for the
  /// thread-placement contract.
  Result<PeriodReport> CompletePeriod(
      const service::AdmissionResponse* response);

  /// Removes `user`'s center-resident state (see TenantState): the
  /// user's pending submissions leave the next auction and the
  /// cumulative ledger charges move out with them. Always succeeds; a
  /// tenant this center never saw yields an empty state. Call between
  /// periods (never while a prepared auction is outstanding — the
  /// prepared instance indexes the pending vector positionally).
  TenantState ExtractTenant(auction::UserId user);

  /// Installs a tenant extracted from another center: validates every
  /// pending submission exactly as Submit would, re-queues them for
  /// the next auction, and credits the carried charges to this ledger.
  /// All-or-nothing: any validation failure (kAlreadyExists on a
  /// pending-id collision, kInvalidArgument/kNotFound on a plan this
  /// engine rejects) leaves the center untouched — the caller still
  /// owns the state. On success the state is fully consumed (pending
  /// emptied, charged zeroed).
  Status AdoptTenant(TenantState& state);

  /// Total revenue across periods.
  double total_revenue() const { return ledger_.total(); }

  const BillingLedger& ledger() const { return ledger_; }
  const std::vector<PeriodReport>& history() const { return history_; }
  const std::vector<int>& active_queries() const { return active_; }
  int pending_submissions() const {
    return static_cast<int>(pending_.size());
  }
  stream::Engine& engine() { return *engine_; }
  const stream::Engine& engine() const { return *engine_; }
  service::AdmissionService& admission_service() { return service_; }
  const service::AdmissionService& admission_service() const {
    return service_;
  }
  const DsmsCenterOptions& options() const { return options_; }
  /// The capacity controller; null unless options.autoscale.enabled.
  const CapacityAutoscaler* autoscaler() const {
    return autoscaler_ ? &*autoscaler_ : nullptr;
  }

 private:
  /// The one submission gate Submit and AdoptTenant share: bid sign,
  /// pending-id uniqueness, plan validation against the engine.
  Status ValidateSubmission(const stream::QuerySubmission& submission) const;

  DsmsCenterOptions options_;
  stream::Engine* engine_;
  service::AdmissionService service_;

  std::vector<stream::QuerySubmission> pending_;
  std::vector<int> active_;  // Engine query ids installed this period.
  BillingLedger ledger_;
  std::vector<PeriodReport> history_;
  std::optional<CapacityAutoscaler> autoscaler_;
  /// Decision taken at PrepareAuction, recorded into the report by
  /// CompletePeriod.
  std::optional<AutoscaleDecision> pending_decision_;

  /// Telemetry instruments, resolved once at construction; all null
  /// when options.metrics is.
  telemetry::Counter* periods_metric_ = nullptr;
  telemetry::Counter* submissions_metric_ = nullptr;
  telemetry::Counter* admitted_metric_ = nullptr;
  telemetry::Counter* autoscale_decisions_metric_ = nullptr;
  telemetry::Gauge* revenue_metric_ = nullptr;
  telemetry::Gauge* energy_cost_metric_ = nullptr;
  telemetry::Gauge* shed_fraction_metric_ = nullptr;
  telemetry::Gauge* capacity_metric_ = nullptr;
  /// Epoch stamped onto kAutoscale spans (see set_trace_epoch).
  uint64_t trace_epoch_ = 0;
};

}  // namespace streambid::cloud

#endif  // STREAMBID_CLOUD_DSMS_CENTER_H_
