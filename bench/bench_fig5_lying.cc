// Copyright 2026 The streambid Authors
// Figure 5: profit of the strategyproof mechanisms (CAF, CAT,
// Two-price, evaluated on truthful bids — their users have no reason to
// lie) against the non-strategyproof CAR evaluated truthful, under the
// Moderate Lying workload (CAR-ML), and under the Aggressive Lying
// workload (CAR-AL).
// Expected shape (paper §VI-B): lying lowers CAR's profit — CAR >=
// CAR-ML >= CAR-AL — "the profit of the three strategyproof mechanisms
// is dependable, while the profit from CAR is manipulable".
//
// The paper plots capacity 15,000; under our calibration that capacity
// stops rationing beyond sharing degree ~10 (every mechanism is free),
// so the lying effect is only visible at low degrees. We therefore also
// print capacity 5,000, where admission stays competitive deep into the
// sweep and the §VI lying model (users with CSF/CT below threshold
// underbid) actually fires.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "workload/lying.h"

namespace {

using namespace streambid;
using namespace streambid::bench;

void RunAtCapacity(const BenchConfig& config, double capacity) {
  const std::vector<int> degrees = config.Degrees();
  const std::vector<std::string> columns = {"caf",    "cat", "two-price",
                                            "car",    "car-ml",
                                            "car-al"};
  std::map<std::string, std::vector<double>> profit;
  for (const auto& c : columns) profit[c].assign(degrees.size(), 0.0);

  service::AdmissionService service;

  for (int set = 0; set < config.sets; ++set) {
    workload::WorkloadSet ws(config.params, 0xF1651u + set);
    for (size_t d = 0; d < degrees.size(); ++d) {
      const auction::AuctionInstance& truthful =
          ws.InstanceAt(degrees[d]);
      const uint64_t seed = 0x11ABCDull * (set + 3) + d;

      auto run = [&](const std::string& mechanism,
                     const auction::AuctionInstance& inst,
                     uint32_t trial = 0) {
        service::AdmissionRequest request;
        request.instance = &inst;
        request.capacity = capacity;
        request.mechanism = mechanism;
        request.seed = seed;
        request.request_index = trial;
        auto response = service.Admit(request);
        STREAMBID_CHECK(response.ok());
        return response->metrics.profit;
      };
      profit["caf"][d] += run("caf", truthful);
      profit["cat"][d] += run("cat", truthful);
      double tp = 0.0;
      for (int t = 0; t < config.trials; ++t) {
        tp += run("two-price", truthful, static_cast<uint32_t>(t));
      }
      profit["two-price"][d] += tp / config.trials;
      profit["car"][d] += run("car", truthful);

      // Lying workloads: strategizing users submit discounted bids to
      // CAR; profit counts what the mechanism actually charges.
      const workload::RawWorkload& raw = ws.RawAt(degrees[d]);
      Rng lie_rng(0x717171ull + set * 131 + d);
      const std::vector<double> ml_bids = workload::ApplyLying(
          truthful, workload::ModerateLying(), lie_rng);
      const std::vector<double> al_bids = workload::ApplyLying(
          truthful, workload::AggressiveLying(), lie_rng);
      auto ml = raw.ToInstanceWithBids(ml_bids);
      auto al = raw.ToInstanceWithBids(al_bids);
      profit["car-ml"][d] += run("car", ml.value());
      profit["car-al"][d] += run("car", al.value());
    }
  }
  for (auto& [name, series] : profit) {
    for (double& v : series) v /= config.sets;
  }

  std::printf("## capacity %.0f\n", capacity);
  TextTable table([&] {
    std::vector<std::string> h = {"max_degree"};
    h.insert(h.end(), columns.begin(), columns.end());
    return h;
  }());
  for (size_t d = 0; d < degrees.size(); ++d) {
    std::vector<std::string> row = {std::to_string(degrees[d])};
    for (const auto& c : columns) {
      row.push_back(FormatDouble(profit[c][d], 1));
    }
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToCsv().c_str(), stdout);

  auto mean = [&](const std::string& c) {
    double acc = 0.0;
    for (double v : profit[c]) acc += v;
    return acc / profit[c].size();
  };
  std::printf("# mean profit: car %.1f, car-ml %.1f, car-al %.1f\n",
              mean("car"), mean("car-ml"), mean("car-al"));
  std::printf("# shape: lying lowers CAR profit (car >= car-ml >= "
              "car-al): %s\n",
              mean("car") >= mean("car-ml") * 0.999 &&
                      mean("car-ml") >= mean("car-al") * 0.999
                  ? "yes"
                  : "NO");
  if (capacity == 5000.0) {
    // The constrained regime is where the lying model actually fires —
    // that's the series worth tracking across PRs.
    WriteBenchJson("fig5_lying",
                   {{"mean_profit_car", mean("car")},
                    {"mean_profit_car_ml", mean("car-ml")},
                    {"mean_profit_car_al", mean("car-al")},
                    {"mean_profit_caf", mean("caf")},
                    {"mean_profit_cat", mean("cat")}});
  }
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  PrintBanner("Figure 5: profit under lying workloads (CAR vs CAR-ML "
              "vs CAR-AL vs strategyproof CAF/CAT/Two-price)",
              config);
  RunAtCapacity(config, 15000.0);  // The paper's plotted capacity.
  RunAtCapacity(config, 5000.0);   // Constrained regime under our
                                   // calibration (see EXPERIMENTS.md).
  return 0;
}
