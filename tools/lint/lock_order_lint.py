#!/usr/bin/env python3
# Copyright 2026 The streambid Authors
"""Lock-order linter for the streambid tree.

The declared lock hierarchy (src/common/lock_order.h) assigns every
streambid::Mutex a rank; a thread may only acquire a mutex of strictly
greater rank than every mutex it already holds. Clang's capability
analysis proves guarded access but is blind to ordering, and the
runtime sentinel (-DSTREAMBID_LOCK_ORDER=ON) only sees the schedules
the tests happen to run. This scanner closes the static half: it parses
the rank table, extracts every MutexLock acquisition scope across src/
(including acquisitions reached through a call to another scanned
function while a lock is held), builds the acquisition graph, and fails
on:

  unranked-mutex       a Mutex declared under src/ without an explicit
                       LockRank. Unranked mutexes default to kLeaf at
                       runtime but leave the declared order incomplete.
  unknown-rank         a Mutex constructed with a LockRank enumerator
                       that is not in the rank table (typo or a table
                       left out of sync).
  lock-order-descent   an acquisition whose rank does not strictly
                       exceed the rank already held -- the inversion
                       deadlock pattern, caught at the inner acquisition
                       (or at the call site that reaches it).
  lock-order-cycle     a cycle in the acquisition graph. Load-bearing
                       for mutexes the rank checks cannot cover (e.g.
                       unranked fixtures): a cycle means two threads can
                       wait on each other regardless of ranks.
  bare-suppression     a NOLINT(lockorder) without a reason.

Scope extraction is heuristic, not a compiler: MutexLock RAII scopes
are tracked through a comment/string-stripping state machine and brace
depths; calls made while a lock is held propagate one level into any
UNIQUELY-NAMED scanned function that itself acquires (ambiguous names
-- overloads, same-named methods on different classes -- are skipped
rather than guessed, trading recall for zero false positives).

Suppression: append "// NOLINT(lockorder): <reason>" to the inner
acquisition (or call) line; the edge is dropped from every check. The
reason is mandatory; a bare NOLINT(lockorder) is itself a finding.

Usage:
  lock_order_lint.py [--root REPO_ROOT]   # scan src/, exit 1 on findings
  lock_order_lint.py --self-test          # run against the fixtures

Self-test: fixture files under tools/lint/fixtures/lockorder/ mark each
expected finding with "// WANT(<rule>)" on the offending line;
--self-test scans the fixtures (with their own miniature rank header,
ranks.h) and asserts the finding set matches the markers exactly.

No third-party dependencies; Python 3.8+ stdlib only.
"""

import argparse
import os
import re
import sys
from typing import Dict, List, Optional, Set, Tuple

from determinism_lint import strip_comments_and_strings

Finding = Tuple[str, int, str, str]  # (relpath, line, rule, message)

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------


class Config:
    """Where the rank table lives and which files are scanned."""

    def __init__(self, rank_header, scan_roots, skip_files):
        self.rank_header = rank_header
        self.scan_roots = scan_roots
        # The hierarchy's own machinery declares/locks nothing rankable.
        self.skip_files = skip_files

    @staticmethod
    def for_src():
        return Config(
            rank_header="src/common/lock_order.h",
            scan_roots=["src"],
            skip_files={
                "src/common/lock_order.h",
                "src/common/lock_order.cc",
                "src/common/thread_annotations.h",
            },
        )

    @staticmethod
    def for_fixtures():
        return Config(
            rank_header="tools/lint/fixtures/lockorder/ranks.h",
            scan_roots=["tools/lint/fixtures/lockorder"],
            skip_files={"tools/lint/fixtures/lockorder/ranks.h"},
        )


# --------------------------------------------------------------------------
# Rank table
# --------------------------------------------------------------------------

RANK_ENTRY_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)\s*,")


def parse_rank_table(root: str, config: Config) -> Dict[str, int]:
    """Enumerator name (with the k prefix) -> numeric rank."""
    path = os.path.join(root, config.rank_header)
    with open(path, "r", encoding="utf-8") as f:
        stripped = strip_comments_and_strings(f.read())
    enum_match = re.search(r"enum\s+class\s+LockRank[^{]*\{", stripped)
    if enum_match is None:
        raise RuntimeError(f"{config.rank_header}: no 'enum class LockRank'")
    body_end = stripped.index("}", enum_match.end())
    body = stripped[enum_match.end():body_end]
    table = {"k" + m.group(1): int(m.group(2))
             for m in RANK_ENTRY_RE.finditer(body)}
    if not table:
        raise RuntimeError(f"{config.rank_header}: empty LockRank table")
    return table


# --------------------------------------------------------------------------
# Per-file model
# --------------------------------------------------------------------------

MUTEX_DECL_RE = re.compile(r"\bMutex\s+(\w+)")
LOCK_RANK_USE_RE = re.compile(r"\bLockRank\s*::\s*(\w+)")
MUTEX_LOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(")
CALL_RE = re.compile(r"\b(~?\w+)\s*\(")
NON_FUNCTION_NAMES = frozenset({
    "if", "while", "for", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "static_assert", "decltype", "noexcept", "defined", "assert",
    "MutexLock", "Mutex", "CondVar", "STREAMBID_CHECK",
})


class MutexDecl:
    def __init__(self, relpath, line, name, rank_token):
        self.relpath = relpath
        self.line = line
        self.name = name
        self.rank_token = rank_token  # None when unranked
        self.key = f"{relpath}:{name}"


class Edge:
    """outer is held at (relpath, line) when inner is acquired."""

    def __init__(self, outer: MutexDecl, inner: MutexDecl, relpath, line,
                 via: Optional[str]):
        self.outer = outer
        self.inner = inner
        self.relpath = relpath
        self.line = line
        self.via = via  # callee name for cross-function edges


def _matching_paren_end(text: str, open_index: int) -> Optional[int]:
    depth = 0
    for i in range(open_index, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
        elif c in ";{}":
            return None
    return None


class FileModel:
    """Everything the graph passes need from one source file."""

    def __init__(self, relpath: str, raw: str, stripped: str):
        self.relpath = relpath
        self.raw_lines = raw.split("\n")
        self.stripped = stripped
        self.decls: List[MutexDecl] = []
        # (offset, lock_expr) for each MutexLock acquisition.
        self.acquisitions: List[Tuple[int, str]] = []
        # (offset, callee) for every call-looking token.
        self.calls: List[Tuple[int, str]] = []
        # (offset, name) for every function-definition body opening '{'.
        self.function_opens: List[Tuple[int, str]] = []
        self._collect()

    def line_of(self, offset: int) -> int:
        return self.stripped.count("\n", 0, offset) + 1

    def nolint_on(self, line: int) -> bool:
        if 1 <= line <= len(self.raw_lines):
            return NOLINT_RE.search(self.raw_lines[line - 1]) is not None
        return False

    def _collect(self) -> None:
        text = self.stripped
        for m in MUTEX_DECL_RE.finditer(text):
            name = m.group(1)
            # "Mutex m" inside a statement; the rank (if any) sits in the
            # same statement's initializer: "... = Mutex{LockRank::kX, ...}"
            # or "Mutex m{LockRank::kX, ...}".
            stmt_end = text.find(";", m.end())
            stmt = text[m.end():stmt_end] if stmt_end >= 0 else ""
            rank = LOCK_RANK_USE_RE.search(stmt)
            self.decls.append(MutexDecl(
                self.relpath, self.line_of(m.start()), name,
                rank.group(1) if rank else None))
        for m in MUTEX_LOCK_RE.finditer(text):
            open_paren = m.end() - 1
            close = _matching_paren_end(text, open_paren)
            if close is None:
                continue
            expr = text[open_paren + 1:close].strip()
            self.acquisitions.append((m.start(), expr))
        for m in CALL_RE.finditer(text):
            name = m.group(1)
            if name in NON_FUNCTION_NAMES or name.startswith("~"):
                continue
            self.calls.append((m.start(), name))
            close = _matching_paren_end(text, m.end() - 1)
            if close is None:
                continue
            # Function definition: '(params)' then anything but ';' or a
            # brace pair boundary up to an opening '{' (covers const,
            # noexcept, ctor init lists, trailing return types).
            tail = text[close + 1:close + 256]
            body = re.match(r"[^;{}()]*\{", tail)
            if body is not None:
                self.function_opens.append((close + 1 + body.end() - 1, name))


# --------------------------------------------------------------------------
# Acquisition sweep
# --------------------------------------------------------------------------


class SweepResult:
    def __init__(self):
        self.direct_edges: List[Edge] = []
        # callee -> acquisitions while executing it (one level deep).
        self.function_acquires: Dict[str, List[MutexDecl]] = {}
        # (outer decl, callee, relpath, line) calls made under a lock.
        self.held_calls: List[Tuple[MutexDecl, str, str, int]] = []


def resolve_mutex(expr: str, model: FileModel,
                  by_name: Dict[str, List[MutexDecl]]) -> Optional[MutexDecl]:
    """Maps a MutexLock argument expression to its declaration.

    Resolution order for the trailing identifier: declaration in the
    same file, then in the paired header/source (same filename stem),
    then globally if the name is unique. Ambiguity returns None -- the
    acquisition still participates as a file-local node so cycles
    through it are not lost.
    """
    m = re.search(r"(\w+)\s*$", expr)
    if m is None:
        return None
    name = m.group(1)
    candidates = by_name.get(name, [])
    same_file = [d for d in candidates if d.relpath == model.relpath]
    if len(same_file) == 1:
        return same_file[0]
    stem = os.path.splitext(os.path.basename(model.relpath))[0]
    same_stem = [d for d in candidates
                 if os.path.splitext(os.path.basename(d.relpath))[0] == stem]
    if len(same_stem) == 1:
        return same_stem[0]
    if len(candidates) == 1:
        return candidates[0]
    return None


def sweep_file(model: FileModel, by_name: Dict[str, List[MutexDecl]],
               result: SweepResult) -> None:
    """One linear pass: brace depth, active-lock stack, function stack."""
    events = []  # (offset, order, kind, payload)
    for i, c in enumerate(model.stripped):
        if c == "{":
            events.append((i, 1, "open", None))
        elif c == "}":
            events.append((i, 0, "close", None))
    for offset, name in model.function_opens:
        events.append((offset, 0, "func", name))  # before the '{' at offset
    for offset, expr in model.acquisitions:
        events.append((offset, 2, "lock", expr))
    for offset, name in model.calls:
        events.append((offset, 3, "call", name))
    events.sort(key=lambda e: (e[0], e[1]))

    depth = 0
    lock_stack: List[Tuple[int, MutexDecl]] = []  # (depth at acquisition, decl)
    func_stack: List[Tuple[int, str]] = []  # (depth of body, name)
    pending_func: Optional[str] = None
    for offset, _, kind, payload in events:
        if kind == "func":
            pending_func = payload
        elif kind == "open":
            depth += 1
            if pending_func is not None:
                func_stack.append((depth, pending_func))
                pending_func = None
        elif kind == "close":
            depth -= 1
            while lock_stack and lock_stack[-1][0] > depth:
                lock_stack.pop()
            while func_stack and func_stack[-1][0] > depth:
                func_stack.pop()
        elif kind == "lock":
            decl = resolve_mutex(payload, model, by_name)
            if decl is None:
                # File-local anonymous node: keeps unresolvable mutexes
                # in the graph without guessing a rank.
                name = re.search(r"(\w+)\s*$", payload)
                decl = MutexDecl(model.relpath, model.line_of(offset),
                                 name.group(1) if name else payload, None)
            line = model.line_of(offset)
            if lock_stack:
                result.direct_edges.append(Edge(
                    lock_stack[-1][1], decl, model.relpath, line, None))
            if func_stack:
                result.function_acquires.setdefault(
                    func_stack[-1][1], []).append(decl)
            lock_stack.append((depth, decl))
        elif kind == "call":
            if lock_stack:
                result.held_calls.append((
                    lock_stack[-1][1], payload, model.relpath,
                    model.line_of(offset)))


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

NOLINT_RE = re.compile(r"//\s*NOLINT\(lockorder\)")
NOLINT_WITH_REASON_RE = re.compile(r"//\s*NOLINT\(lockorder\)\s*:\s*\S")
WANT_RE = re.compile(r"//.*?\bWANT\(([\w-]+)\)")

MESSAGES = {
    "unranked-mutex":
        "Mutex declared without a LockRank; every mutex under src/ must "
        "name its place in the declared hierarchy "
        "(common/lock_order.h) -- construct with "
        "{LockRank::k<Rank>, \"layer/name\"}",
    "unknown-rank":
        "LockRank enumerator not found in the rank table of "
        "common/lock_order.h; the table and the enum are out of sync",
    "lock-order-descent":
        "acquisition does not strictly ascend the declared hierarchy; "
        "a concurrent thread taking these locks in rank order can "
        "deadlock against this one",
    "lock-order-cycle":
        "cycle in the acquisition graph; two threads can each hold one "
        "lock of the cycle and wait forever on the next",
    "bare-suppression":
        "NOLINT(lockorder) without a reason; write "
        "'// NOLINT(lockorder): <why this order is safe>'",
}


def rank_of(decl: MutexDecl, table: Dict[str, int]) -> Optional[int]:
    if decl.rank_token is None:
        return None
    return table.get(decl.rank_token)


def check_edges(edges: List[Edge], table: Dict[str, int],
                models: Dict[str, FileModel]) -> List[Finding]:
    findings: List[Finding] = []
    live_edges: List[Edge] = []
    for edge in edges:
        model = models[edge.relpath]
        if model.nolint_on(edge.line):
            continue  # suppressed; reason hygiene is checked separately
        live_edges.append(edge)
        outer_rank = rank_of(edge.outer, table)
        inner_rank = rank_of(edge.inner, table)
        if outer_rank is None or inner_rank is None:
            continue  # unranked mutexes are their own finding
        if inner_rank <= outer_rank:
            via = f" (via call to {edge.via})" if edge.via else ""
            findings.append((
                edge.relpath, edge.line, "lock-order-descent",
                f"{MESSAGES['lock-order-descent']}: acquiring "
                f"\"{edge.inner.name}\" ({edge.inner.rank_token}, rank "
                f"{inner_rank}) while holding \"{edge.outer.name}\" "
                f"({edge.outer.rank_token}, rank {outer_rank}){via}"))

    findings.extend(find_cycles(live_edges))
    return findings


def find_cycles(edges: List[Edge]) -> List[Finding]:
    """Reports each elementary cycle once, at its smallest edge site."""
    graph: Dict[str, List[Edge]] = {}
    for edge in edges:
        graph.setdefault(edge.outer.key, []).append(edge)

    findings: List[Finding] = []
    seen_cycles: Set[Tuple[str, ...]] = set()
    for start in sorted(graph):
        # Bounded DFS from each node; cycles in a lock graph are tiny.
        stack: List[Tuple[str, List[Edge]]] = [(start, [])]
        while stack:
            node, path = stack.pop()
            if len(path) > 8:
                continue
            for edge in graph.get(node, []):
                nxt = edge.inner.key
                if nxt == start:
                    cycle = path + [edge]
                    ident = tuple(sorted(e.outer.key for e in cycle))
                    if ident in seen_cycles:
                        continue
                    seen_cycles.add(ident)
                    site = min(cycle, key=lambda e: (e.relpath, e.line))
                    chain = " -> ".join(
                        [e.outer.name for e in cycle] + [cycle[0].outer.name])
                    findings.append((
                        site.relpath, site.line, "lock-order-cycle",
                        f"{MESSAGES['lock-order-cycle']}: {chain}"))
                elif all(e.outer.key != nxt for e in path):
                    stack.append((nxt, path + [edge]))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def iter_source_files(root: str, config: Config):
    for scan_root in config.scan_roots:
        base = os.path.join(root, scan_root)
        for dirpath, _, filenames in os.walk(base):
            for filename in sorted(filenames):
                if filename.endswith((".h", ".cc", ".cpp", ".hpp")):
                    path = os.path.join(dirpath, filename)
                    rel = os.path.relpath(path, root).replace(os.sep, "/")
                    if rel in config.skip_files:
                        continue
                    yield rel, path


def run_scan(root: str, config: Config) -> List[Finding]:
    table = parse_rank_table(root, config)
    models: Dict[str, FileModel] = {}
    for rel, path in iter_source_files(root, config):
        with open(path, "r", encoding="utf-8") as f:
            raw = f.read()
        models[rel] = FileModel(rel, raw, strip_comments_and_strings(raw))

    by_name: Dict[str, List[MutexDecl]] = {}
    for model in models.values():
        for decl in model.decls:
            by_name.setdefault(decl.name, []).append(decl)

    findings: List[Finding] = []

    # Declaration hygiene: every mutex ranked, every rank known.
    for model in models.values():
        for decl in model.decls:
            if model.nolint_on(decl.line):
                continue
            if decl.rank_token is None:
                findings.append((decl.relpath, decl.line, "unranked-mutex",
                                 MESSAGES["unranked-mutex"]))
            elif decl.rank_token not in table:
                findings.append((
                    decl.relpath, decl.line, "unknown-rank",
                    f"{MESSAGES['unknown-rank']}: LockRank::"
                    f"{decl.rank_token}"))

    # Acquisition sweep + one level of call propagation.
    result = SweepResult()
    for rel in sorted(models):
        sweep_file(models[rel], by_name, result)

    # A callee participates only when its name is globally unique among
    # scanned definitions (no guessing between overloads/same-named
    # methods on different classes).
    definition_counts: Dict[str, int] = {}
    for model in models.values():
        for _, name in model.function_opens:
            definition_counts[name] = definition_counts.get(name, 0) + 1

    edges = list(result.direct_edges)
    for outer, callee, rel, line in result.held_calls:
        if definition_counts.get(callee, 0) != 1:
            continue
        for inner in result.function_acquires.get(callee, []):
            if inner.key == outer.key:
                continue  # recursion into the same lock's own scope
            edges.append(Edge(outer, inner, rel, line, callee))

    findings.extend(check_edges(edges, table, models))

    # Suppression hygiene runs on raw lines (NOLINT lives in comments).
    for model in models.values():
        for idx, raw_line in enumerate(model.raw_lines, start=1):
            if NOLINT_RE.search(raw_line) and \
                    not NOLINT_WITH_REASON_RE.search(raw_line):
                findings.append((model.relpath, idx, "bare-suppression",
                                 MESSAGES["bare-suppression"]))

    findings = sorted(set(findings), key=lambda f: (f[0], f[1], f[2]))
    return findings


def self_test(root: str) -> int:
    config = Config.for_fixtures()
    expected: Set[Tuple[str, int, str]] = set()
    for rel, path in iter_source_files(root, config):
        with open(path, "r", encoding="utf-8") as f:
            for idx, line in enumerate(f, start=1):
                for m in WANT_RE.finditer(line):
                    expected.add((rel, idx, m.group(1)))
    if not expected:
        print("lock_order_lint self-test: no WANT markers found under "
              "tools/lint/fixtures/lockorder -- fixtures missing?")
        return 2

    actual = {(rel, line, rule) for rel, line, rule, _ in
              run_scan(root, config)}
    missing = sorted(expected - actual)
    unexpected = sorted(actual - expected)
    for rel, line, rule in missing:
        print(f"MISSING   {rel}:{line}: expected [{rule}] not reported")
    for rel, line, rule in unexpected:
        print(f"SPURIOUS  {rel}:{line}: reported [{rule}] not expected")
    if missing or unexpected:
        print(f"lock_order_lint self-test: FAIL "
              f"({len(missing)} missing, {len(unexpected)} spurious)")
        return 1
    print(f"lock_order_lint self-test: OK "
          f"({len(expected)} findings matched)")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: two levels up)")
    parser.add_argument("--self-test", action="store_true",
                        help="scan the bundled fixtures and verify the "
                             "finding set against their WANT markers")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(args.root)

    findings = run_scan(args.root, Config.for_src())
    for rel, line, rule, message in findings:
        print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(f"lock_order_lint: {len(findings)} finding(s)")
        return 1
    print("lock_order_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
