// Copyright 2026 The streambid Authors
// Small string helpers shared by the workload/bench/example code.

#ifndef STREAMBID_COMMON_STRING_UTIL_H_
#define STREAMBID_COMMON_STRING_UTIL_H_

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace streambid {

/// Splits `s` on `sep`, keeping empty fields.
inline std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

/// Joins `parts` with `sep`.
inline std::string Join(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

/// Reads an integer environment variable, falling back to `fallback` when
/// unset or unparsable. Used by the bench harness for knobs like
/// STREAMBID_SETS (number of workload sets, paper default 50).
inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int64_t>(v);
}

}  // namespace streambid

#endif  // STREAMBID_COMMON_STRING_UTIL_H_
