// Copyright 2026 The streambid Authors
// Performance metrics of an allocation (paper §VI-A): profit, admission
// rate, total user payoff, and system utilization.

#ifndef STREAMBID_AUCTION_METRICS_H_
#define STREAMBID_AUCTION_METRICS_H_

#include <vector>

#include "auction/allocation.h"
#include "auction/instance.h"

namespace streambid::auction {

/// The four §VI metrics for a single allocation.
struct AllocationMetrics {
  double profit = 0.0;          ///< Sum of winner payments.
  double admission_rate = 0.0;  ///< Admitted queries / total queries.
  double total_payoff = 0.0;    ///< Sum over winners of value - payment.
  double utilization = 0.0;     ///< Union load of admitted ops / capacity.
};

/// Computes metrics assuming bids equal true valuations (the truthful
/// setting of Figure 4).
AllocationMetrics ComputeMetrics(const AuctionInstance& instance,
                                 const Allocation& alloc);

/// Computes metrics when bids may differ from valuations (the lying
/// workloads of Figure 5): payoffs use `true_values`, indexed by QueryId.
AllocationMetrics ComputeMetricsWithValues(
    const AuctionInstance& instance, const Allocation& alloc,
    const std::vector<double>& true_values);

/// Union load of the operators of the admitted queries (capacity used).
double UsedCapacity(const AuctionInstance& instance,
                    const Allocation& alloc);

/// Verifies the allocation is feasible (used capacity <= capacity) and
/// internally consistent (rejected queries pay zero, no negative
/// payments). Used by tests and by the DSMS center before installing.
bool IsFeasible(const AuctionInstance& instance, const Allocation& alloc);

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_METRICS_H_
