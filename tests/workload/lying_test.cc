// Copyright 2026 The streambid Authors

#include "workload/lying.h"

#include <gtest/gtest.h>

namespace streambid::workload {
namespace {

/// Instance where q0 heavily shares (CSF/CT = 1/4) and q1 does not
/// (CSF/CT = 1).
auction::AuctionInstance SharingContrast() {
  std::vector<auction::OperatorSpec> ops = {{4.0}, {4.0}};
  std::vector<auction::QuerySpec> queries = {
      {0, 40.0, {0}}, {1, 40.0, {1}},
      // Three extra queries sharing op0 to push q0's ratio to 1/4.
      {2, 10.0, {0}}, {3, 10.0, {0}}, {4, 10.0, {0}}};
  auto r = auction::AuctionInstance::Create(ops, queries);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(LyingTest, ProfilesMatchPaperParameters) {
  const LyingProfile ml = ModerateLying();
  EXPECT_DOUBLE_EQ(ml.ratio_threshold, 0.25);
  EXPECT_DOUBLE_EQ(ml.lying_probability, 0.5);
  EXPECT_DOUBLE_EQ(ml.lying_factor, 0.5);
  const LyingProfile al = AggressiveLying();
  EXPECT_DOUBLE_EQ(al.ratio_threshold, 0.35);
  EXPECT_DOUBLE_EQ(al.lying_probability, 0.7);
  EXPECT_DOUBLE_EQ(al.lying_factor, 0.3);
}

TEST(LyingTest, OnlyHighSharingQueriesLie) {
  auction::AuctionInstance inst = SharingContrast();
  // q0's ratio: CSF = 4/4 = 1, CT = 4 -> 0.25; with threshold 0.3 and
  // probability 1.0 it must lie; q1's ratio is 1.0: never lies.
  LyingProfile profile{0.3, 1.0, 0.5};
  Rng rng(1);
  const std::vector<double> bids = ApplyLying(inst, profile, rng);
  EXPECT_DOUBLE_EQ(bids[0], 20.0);  // 40 * 0.5.
  EXPECT_DOUBLE_EQ(bids[1], 40.0);  // Truthful.
}

TEST(LyingTest, ZeroProbabilityMeansAllTruthful) {
  auction::AuctionInstance inst = SharingContrast();
  LyingProfile profile{0.9, 0.0, 0.5};
  Rng rng(2);
  const std::vector<double> bids = ApplyLying(inst, profile, rng);
  for (auction::QueryId i = 0; i < inst.num_queries(); ++i) {
    EXPECT_DOUBLE_EQ(bids[static_cast<size_t>(i)], inst.bid(i));
  }
}

TEST(LyingTest, ProbabilityRoughlyRespected) {
  auction::AuctionInstance inst = SharingContrast();
  LyingProfile profile{0.3, 0.5, 0.5};
  int lied = 0;
  const int trials = 2000;
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    const std::vector<double> bids = ApplyLying(inst, profile, rng);
    if (bids[0] != inst.bid(0)) ++lied;
  }
  EXPECT_NEAR(static_cast<double>(lied) / trials, 0.5, 0.05);
}

TEST(LyingTest, LiedBidsScaleByFactor) {
  auction::AuctionInstance inst = SharingContrast();
  LyingProfile profile{0.3, 1.0, 0.3};
  Rng rng(4);
  const std::vector<double> bids = ApplyLying(inst, profile, rng);
  EXPECT_DOUBLE_EQ(bids[0], 12.0);  // 40 * 0.3.
}

}  // namespace
}  // namespace streambid::workload
