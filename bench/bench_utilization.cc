// Copyright 2026 The streambid Authors
// §VI-B utilization claim: "all proposed mechanisms admit queries so as
// to utilize more than 98 percent of the system capacity, except for
// Two-price which utilizes between 96 percent and 98 percent."
// The claim concerns the CONSTRAINED regime (demand exceeding
// capacity): once everything fits, utilization equals demand/capacity
// for every mechanism. We report the full series at the paper's
// capacity 15000 and at 5000 (which stays constrained much deeper into
// the sharing sweep under our calibration), plus constrained-regime
// means.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"

int main() {
  using namespace streambid::bench;
  streambid::service::AdmissionService service;
  const BenchConfig config = LoadConfig();
  PrintBanner("§VI utilization: used capacity / capacity", config);

  const std::vector<std::string> mechanisms = {"caf", "caf+", "cat",
                                               "cat+", "two-price"};
  const std::vector<double> capacities = {5000.0, 15000.0};
  const SweepResult result =
      RunSweep(service, config, mechanisms, capacities, UtilizationMetric());

  const std::vector<int> degrees = config.Degrees();
  std::vector<std::pair<std::string, double>> artifact;
  for (double capacity : capacities) {
    std::printf("## capacity %.0f\n", capacity);
    PrintSeries(config, result, capacity, mechanisms);

    // Mean utilization over constrained degrees (where even the most
    // admissive density mechanism is pinned at ~full capacity).
    const auto& series = result.at(capacity);
    std::printf("# constrained-regime mean utilization:\n");
    for (const std::string& m : mechanisms) {
      double acc = 0.0;
      int n = 0;
      for (size_t d = 0; d < degrees.size(); ++d) {
        if (series.at("caf+")[d] > 0.95) {
          acc += series.at(m)[d];
          ++n;
        }
      }
      std::printf("#   %-10s %s\n", m.c_str(),
                  n > 0 ? streambid::FormatPercent(acc / n, 2).c_str()
                        : "(never constrained at this scale)");
      // Capacity 5000 stays constrained deepest into the sweep under
      // our calibration — that's the regime the paper's claim covers.
      if (capacity == 5000.0 && n > 0) {
        artifact.emplace_back("mean_util_cap5000_" + m, acc / n);
      }
    }
  }
  std::printf("# paper: density mechanisms > 98%%, two-price 96-98%% "
              "(constrained regime)\n");
  WriteBenchJson("utilization", artifact);
  return 0;
}
