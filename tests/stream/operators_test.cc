// Copyright 2026 The streambid Authors
// Unit tests for each stream operator in isolation.

#include <gtest/gtest.h>

#include "stream/operators/aggregate.h"
#include "stream/operators/join.h"
#include "stream/operators/map.h"
#include "stream/operators/project.h"
#include "stream/operators/select.h"
#include "stream/operators/union_op.h"

namespace streambid::stream {
namespace {

SchemaPtr QuoteSchema() {
  return MakeSchema({{"symbol", ValueType::kString},
                     {"price", ValueType::kDouble},
                     {"volume", ValueType::kInt64}});
}

Tuple Quote(const SchemaPtr& s, const std::string& sym, double price,
            int64_t volume, VirtualTime ts) {
  return Tuple(s, {Value(sym), Value(price), Value(volume)}, ts);
}

TEST(SelectOperatorTest, FiltersOnPredicate) {
  SchemaPtr s = QuoteSchema();
  SelectOperator sel(s, "price", CompareOp::kGt, Value(100.0));
  std::vector<Tuple> out;
  sel.Process(0, Quote(s, "IBM", 101.0, 10, 0.0), &out);
  sel.Process(0, Quote(s, "IBM", 99.0, 10, 1.0), &out);
  sel.Process(0, Quote(s, "IBM", 100.0, 10, 2.0), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].field("price").AsDouble(), 101.0);
  EXPECT_EQ(sel.output_schema()->num_fields(), 3);
}

TEST(SelectOperatorTest, AllCompareOps) {
  SchemaPtr s = QuoteSchema();
  auto passes = [&s](CompareOp op, double price) {
    SelectOperator sel(s, "price", op, Value(10.0));
    std::vector<Tuple> out;
    sel.Process(0, Quote(s, "X", price, 1, 0.0), &out);
    return !out.empty();
  };
  EXPECT_TRUE(passes(CompareOp::kLt, 9.0));
  EXPECT_FALSE(passes(CompareOp::kLt, 10.0));
  EXPECT_TRUE(passes(CompareOp::kLe, 10.0));
  EXPECT_TRUE(passes(CompareOp::kGt, 11.0));
  EXPECT_FALSE(passes(CompareOp::kGt, 10.0));
  EXPECT_TRUE(passes(CompareOp::kGe, 10.0));
  EXPECT_TRUE(passes(CompareOp::kEq, 10.0));
  EXPECT_FALSE(passes(CompareOp::kEq, 10.5));
  EXPECT_TRUE(passes(CompareOp::kNe, 10.5));
}

TEST(SelectOperatorTest, StringPredicate) {
  SchemaPtr s = QuoteSchema();
  SelectOperator sel(s, "symbol", CompareOp::kEq, Value("IBM"));
  std::vector<Tuple> out;
  sel.Process(0, Quote(s, "IBM", 1.0, 1, 0.0), &out);
  sel.Process(0, Quote(s, "AAPL", 1.0, 1, 0.0), &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(ProjectOperatorTest, KeepsRequestedFields) {
  SchemaPtr s = QuoteSchema();
  ProjectOperator proj(s, {"price", "symbol"});
  std::vector<Tuple> out;
  proj.Process(0, Quote(s, "IBM", 5.0, 9, 1.5), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema()->num_fields(), 2);
  EXPECT_DOUBLE_EQ(out[0].value(0).AsDouble(), 5.0);
  EXPECT_EQ(out[0].value(1).AsString(), "IBM");
  EXPECT_DOUBLE_EQ(out[0].timestamp(), 1.5);
}

TEST(MapOperatorTest, AppendsComputedField) {
  SchemaPtr s = QuoteSchema();
  MapOperator map(s, "price", MapFn::kMul, 2.0, "double_price");
  std::vector<Tuple> out;
  map.Process(0, Quote(s, "IBM", 7.0, 1, 0.0), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema()->num_fields(), 4);
  EXPECT_DOUBLE_EQ(out[0].field("double_price").AsDouble(), 14.0);
}

TEST(MapOperatorTest, AllFns) {
  SchemaPtr s = QuoteSchema();
  auto compute = [&s](MapFn fn, double operand) {
    MapOperator map(s, "price", fn, operand, "y");
    std::vector<Tuple> out;
    map.Process(0, Quote(s, "X", 8.0, 1, 0.0), &out);
    return out[0].field("y").AsDouble();
  };
  EXPECT_DOUBLE_EQ(compute(MapFn::kAdd, 2.0), 10.0);
  EXPECT_DOUBLE_EQ(compute(MapFn::kSub, 2.0), 6.0);
  EXPECT_DOUBLE_EQ(compute(MapFn::kMul, 2.0), 16.0);
  EXPECT_DOUBLE_EQ(compute(MapFn::kDiv, 2.0), 4.0);
}

TEST(AggregateOperatorTest, TumblingCountEmitsOnAdvance) {
  SchemaPtr s = QuoteSchema();
  AggregateOperator agg(s, AggFn::kCount, "price", "", {10.0, 10.0});
  std::vector<Tuple> out;
  agg.Process(0, Quote(s, "A", 1.0, 1, 1.0), &out);
  agg.Process(0, Quote(s, "A", 2.0, 1, 5.0), &out);
  EXPECT_TRUE(out.empty());  // Window [0,10) still open.
  agg.AdvanceTime(9.0, &out);
  EXPECT_TRUE(out.empty());
  agg.AdvanceTime(10.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].field("value").AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(out[0].field("window_end").AsDouble(), 10.0);
}

TEST(AggregateOperatorTest, GroupedAverages) {
  SchemaPtr s = QuoteSchema();
  AggregateOperator agg(s, AggFn::kAvg, "price", "symbol", {10.0, 10.0});
  std::vector<Tuple> out;
  agg.Process(0, Quote(s, "IBM", 10.0, 1, 1.0), &out);
  agg.Process(0, Quote(s, "IBM", 20.0, 1, 2.0), &out);
  agg.Process(0, Quote(s, "AAPL", 5.0, 1, 3.0), &out);
  agg.AdvanceTime(10.0, &out);
  ASSERT_EQ(out.size(), 2u);
  // Groups emit in key order (map iteration): AAPL then IBM.
  EXPECT_EQ(out[0].field("symbol").AsString(), "AAPL");
  EXPECT_DOUBLE_EQ(out[0].field("value").AsDouble(), 5.0);
  EXPECT_EQ(out[1].field("symbol").AsString(), "IBM");
  EXPECT_DOUBLE_EQ(out[1].field("value").AsDouble(), 15.0);
}

TEST(AggregateOperatorTest, SlidingWindowsOverlap) {
  SchemaPtr s = QuoteSchema();
  // Size 10, slide 5: a tuple at t=7 belongs to windows [0,10) and
  // [5,15).
  AggregateOperator agg(s, AggFn::kSum, "price", "", {10.0, 5.0});
  std::vector<Tuple> out;
  agg.Process(0, Quote(s, "A", 3.0, 1, 7.0), &out);
  agg.AdvanceTime(10.0, &out);
  ASSERT_EQ(out.size(), 1u);  // [0,10) closed.
  EXPECT_DOUBLE_EQ(out[0].field("value").AsDouble(), 3.0);
  out.clear();
  agg.AdvanceTime(15.0, &out);
  ASSERT_EQ(out.size(), 1u);  // [5,15) closed, contains the same tuple.
  EXPECT_DOUBLE_EQ(out[0].field("value").AsDouble(), 3.0);
}

TEST(AggregateOperatorTest, MinMax) {
  SchemaPtr s = QuoteSchema();
  AggregateOperator mn(s, AggFn::kMin, "price", "", {10.0, 10.0});
  AggregateOperator mx(s, AggFn::kMax, "price", "", {10.0, 10.0});
  std::vector<Tuple> out;
  for (double p : {5.0, 1.0, 9.0}) {
    mn.Process(0, Quote(s, "A", p, 1, 2.0), &out);
    mx.Process(0, Quote(s, "A", p, 1, 2.0), &out);
  }
  out.clear();
  mn.AdvanceTime(10.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].field("value").AsDouble(), 1.0);
  out.clear();
  mx.AdvanceTime(10.0, &out);
  EXPECT_DOUBLE_EQ(out[0].field("value").AsDouble(), 9.0);
}

TEST(AggregateOperatorTest, ResetDropsOpenWindows) {
  SchemaPtr s = QuoteSchema();
  AggregateOperator agg(s, AggFn::kCount, "price", "", {10.0, 10.0});
  std::vector<Tuple> out;
  agg.Process(0, Quote(s, "A", 1.0, 1, 1.0), &out);
  agg.Reset();
  agg.AdvanceTime(100.0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(JoinOperatorTest, MatchesWithinWindow) {
  SchemaPtr quotes = QuoteSchema();
  SchemaPtr news = MakeSchema({{"company", ValueType::kString},
                               {"sentiment", ValueType::kDouble}});
  JoinOperator join(quotes, news, "symbol", "company", 10.0);
  std::vector<Tuple> out;
  join.Process(0, Quote(quotes, "IBM", 100.0, 1, 1.0), &out);
  EXPECT_TRUE(out.empty());
  join.Process(1, Tuple(news, {Value("IBM"), Value(0.5)}, 5.0), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].field("symbol").AsString(), "IBM");
  EXPECT_DOUBLE_EQ(out[0].field("sentiment").AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(out[0].timestamp(), 5.0);
}

TEST(JoinOperatorTest, NoMatchOutsideWindow) {
  SchemaPtr quotes = QuoteSchema();
  SchemaPtr news = MakeSchema({{"company", ValueType::kString},
                               {"sentiment", ValueType::kDouble}});
  JoinOperator join(quotes, news, "symbol", "company", 10.0);
  std::vector<Tuple> out;
  join.Process(0, Quote(quotes, "IBM", 100.0, 1, 1.0), &out);
  join.Process(1, Tuple(news, {Value("IBM"), Value(0.5)}, 12.0), &out);
  EXPECT_TRUE(out.empty());
}

TEST(JoinOperatorTest, DifferentKeysDoNotMatch) {
  SchemaPtr quotes = QuoteSchema();
  SchemaPtr news = MakeSchema({{"company", ValueType::kString},
                               {"sentiment", ValueType::kDouble}});
  JoinOperator join(quotes, news, "symbol", "company", 10.0);
  std::vector<Tuple> out;
  join.Process(0, Quote(quotes, "IBM", 100.0, 1, 1.0), &out);
  join.Process(1, Tuple(news, {Value("AAPL"), Value(0.1)}, 2.0), &out);
  EXPECT_TRUE(out.empty());
}

TEST(JoinOperatorTest, EvictionDropsStaleTuples) {
  SchemaPtr quotes = QuoteSchema();
  SchemaPtr news = MakeSchema({{"company", ValueType::kString},
                               {"sentiment", ValueType::kDouble}});
  JoinOperator join(quotes, news, "symbol", "company", 10.0);
  std::vector<Tuple> out;
  join.Process(0, Quote(quotes, "IBM", 1.0, 1, 0.0), &out);
  EXPECT_EQ(join.BufferedTuples(), 1u);
  join.AdvanceTime(20.0, &out);
  EXPECT_EQ(join.BufferedTuples(), 0u);
}

TEST(JoinOperatorTest, CollidingFieldNamesPrefixed) {
  SchemaPtr a = MakeSchema({{"k", ValueType::kString},
                            {"x", ValueType::kDouble}});
  SchemaPtr b = MakeSchema({{"k", ValueType::kString},
                            {"y", ValueType::kDouble}});
  JoinOperator join(a, b, "k", "k", 5.0);
  EXPECT_TRUE(join.output_schema()->HasField("k"));
  EXPECT_TRUE(join.output_schema()->HasField("r_k"));
  EXPECT_TRUE(join.output_schema()->HasField("x"));
  EXPECT_TRUE(join.output_schema()->HasField("y"));
}

TEST(UnionOperatorTest, MergesBothPorts) {
  SchemaPtr s = QuoteSchema();
  UnionOperator u(s, s);
  std::vector<Tuple> out;
  u.Process(0, Quote(s, "A", 1.0, 1, 0.0), &out);
  u.Process(1, Quote(s, "B", 2.0, 1, 0.5), &out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(u.num_inputs(), 2);
}

TEST(OperatorStatsTest, SelectivityTracksCounts) {
  SchemaPtr s = QuoteSchema();
  SelectOperator sel(s, "price", CompareOp::kGt, Value(100.0));
  std::vector<Tuple> out;
  for (double p : {99.0, 101.0, 102.0, 98.0}) {
    out.clear();
    sel.Process(0, Quote(s, "A", p, 1, 0.0), &out);
    sel.RecordInput(1);
    sel.RecordOutput(static_cast<int64_t>(out.size()));
  }
  EXPECT_EQ(sel.tuples_in(), 4);
  EXPECT_EQ(sel.tuples_out(), 2);
  EXPECT_DOUBLE_EQ(sel.MeasuredSelectivity(), 0.5);
}

}  // namespace
}  // namespace streambid::stream
