// Copyright 2026 The streambid Authors

#include "gametheory/deviation.h"

#include <gtest/gtest.h>

#include "service/admission_service.h"
#include "gametheory/attacks.h"

namespace streambid::gametheory {
namespace {

TEST(DeviationTest, FindsCarManipulationOnExample1) {
  // §IV-A: CAR is not bid-strategyproof. With user 1's value boosted so
  // she is selected first, underbidding lowers her remaining load and
  // payment — the deviation search must find a profitable lie.
  auction::AuctionInstance inst = Example1Instance().WithBid(0, 80.0);
  service::AdmissionService service;
  DeviationOptions options;
  const DeviationReport report =
      FindBestDeviation(service, "car", inst, kExample1Capacity, 0,
                        options);
  EXPECT_TRUE(report.profitable_deviation_found);
  EXPECT_LT(report.best_deviant_bid, 80.0);  // An underbid.
  EXPECT_GT(report.Gain(), 1.0);
}

TEST(DeviationTest, NoDeviationBeatsCatOnExample1) {
  auction::AuctionInstance inst = Example1Instance();
  service::AdmissionService service;
  DeviationOptions options;
  for (auction::QueryId q = 0; q < inst.num_queries(); ++q) {
    const DeviationReport report = FindBestDeviation(
        service, "cat", inst, kExample1Capacity, q, options);
    EXPECT_FALSE(report.profitable_deviation_found)
        << "query " << q << " gains " << report.Gain() << " bidding "
        << report.best_deviant_bid;
  }
}

TEST(DeviationTest, SweepReportsWorstQuery) {
  auction::AuctionInstance inst = Example1Instance().WithBid(0, 80.0);
  service::AdmissionService service;
  DeviationOptions options;
  const DeviationReport worst = SweepDeviations(
      service, "car", inst, kExample1Capacity, options, /*seed=*/3);
  EXPECT_TRUE(worst.profitable_deviation_found);
}

TEST(DeviationTest, TruthfulPayoffMatchesDirectComputation) {
  auction::AuctionInstance inst = Example1Instance();
  service::AdmissionService service;
  DeviationOptions options;
  const DeviationReport report =
      FindBestDeviation(service, "caf", inst, kExample1Capacity, 0,
                        options);
  // CAF admits q1 at payment $30 (Example 1): payoff 55 - 30 = 25.
  EXPECT_DOUBLE_EQ(report.truthful_payoff, 25.0);
}

TEST(DeviationTest, ZeroValueQueryCannotGain) {
  auction::AuctionInstance inst = Example1Instance().WithBid(2, 0.0);
  service::AdmissionService service;
  DeviationOptions options;
  const DeviationReport report =
      FindBestDeviation(service, "cat", inst, kExample1Capacity, 2,
                        options);
  // Bidding above 0 can only win at a price >= some positive critical
  // value >= ... well, winning at price <= 0 is impossible here, so any
  // win gives negative payoff. Truthful (losing) payoff is 0.
  EXPECT_FALSE(report.profitable_deviation_found);
}

}  // namespace
}  // namespace streambid::gametheory
