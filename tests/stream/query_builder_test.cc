// Copyright 2026 The streambid Authors

#include "stream/query_builder.h"

#include <gtest/gtest.h>

namespace streambid::stream {
namespace {

TEST(QueryBuilderTest, LinearChainValidates) {
  QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", CompareOp::kGt, Value(100.0));
  const int proj = b.Project(sel, {"symbol"});
  const QueryPlan plan = b.Build(proj);
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_EQ(plan.nodes.size(), 3u);
  EXPECT_EQ(plan.output_node, proj);
}

TEST(QueryBuilderTest, JoinPlanValidates) {
  QueryBuilder b;
  const int quotes = b.Source("quotes");
  const int news = b.Source("news");
  const int j = b.Join(quotes, news, "symbol", "company", 60.0);
  const QueryPlan plan = b.Build(j);
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_EQ(plan.nodes[static_cast<size_t>(j)].inputs.size(), 2u);
}

TEST(QueryBuilderTest, BuilderResetsAfterBuild) {
  QueryBuilder b;
  const int s1 = b.Source("a");
  const QueryPlan p1 = b.Build(s1);
  const int s2 = b.Source("b");
  const QueryPlan p2 = b.Build(s2);
  EXPECT_EQ(p1.nodes.size(), 1u);
  EXPECT_EQ(p2.nodes.size(), 1u);
  EXPECT_EQ(p2.nodes[0].spec.source_name, "b");
}

TEST(QueryBuilderTest, CostOverrideAppliesToLastNode) {
  QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", CompareOp::kGt, Value(1.0));
  b.SetCostOverride(0.25);
  const QueryPlan plan = b.Build(sel);
  EXPECT_DOUBLE_EQ(plan.nodes[static_cast<size_t>(sel)].spec.cost_override,
                   0.25);
}

TEST(QueryPlanTest, SignatureStableAndStructural) {
  QueryBuilder b1;
  int s = b1.Source("quotes");
  int sel = b1.Select(s, "price", CompareOp::kGt, Value(100.0));
  const QueryPlan p1 = b1.Build(sel);

  QueryBuilder b2;
  s = b2.Source("quotes");
  sel = b2.Select(s, "price", CompareOp::kGt, Value(100.0));
  const QueryPlan p2 = b2.Build(sel);

  EXPECT_EQ(p1.NodeSignature(p1.output_node),
            p2.NodeSignature(p2.output_node));

  QueryBuilder b3;
  s = b3.Source("quotes");
  sel = b3.Select(s, "price", CompareOp::kGt, Value(200.0));  // Differs.
  const QueryPlan p3 = b3.Build(sel);
  EXPECT_NE(p1.NodeSignature(p1.output_node),
            p3.NodeSignature(p3.output_node));
}

TEST(QueryPlanTest, ValidateCatchesBadArity) {
  QueryPlan plan;
  QueryPlan::Node join;
  join.spec.kind = OpKind::kJoin;
  join.inputs = {0};  // Joins need two inputs.
  plan.nodes.push_back(join);
  plan.output_node = 0;
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(QueryPlanTest, ValidateCatchesForwardReference) {
  QueryPlan plan;
  QueryPlan::Node src;
  src.spec.kind = OpKind::kSource;
  src.spec.source_name = "s";
  QueryPlan::Node sel;
  sel.spec.kind = OpKind::kSelect;
  sel.spec.field = "x";
  sel.inputs = {1};  // Self/forward reference.
  plan.nodes.push_back(src);
  plan.nodes.push_back(sel);
  plan.output_node = 1;
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(QueryPlanTest, ValidateRequiresSource) {
  QueryPlan plan;
  plan.output_node = 0;
  EXPECT_FALSE(plan.Validate().ok());  // Empty.
}

TEST(OpSpecTest, SignaturesDistinguishKinds) {
  OpSpec select;
  select.kind = OpKind::kSelect;
  select.field = "x";
  select.operand = Value(1.0);
  OpSpec agg;
  agg.kind = OpKind::kAggregate;
  agg.field = "x";
  EXPECT_NE(select.Signature(), agg.Signature());
  EXPECT_NE(select.Signature().find("select"), std::string::npos);
}

}  // namespace
}  // namespace streambid::stream
