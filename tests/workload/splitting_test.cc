// Copyright 2026 The streambid Authors
// The §VI-A operator-splitting procedure: halving chains and the
// invariants the paper relies on (per-query total load unchanged).

#include "workload/splitting.h"

#include <gtest/gtest.h>

#include <numeric>

#include "workload/generator.h"

namespace streambid::workload {
namespace {

TEST(HalvingChainTest, PaperExampleEightToFourTwoOneOne) {
  // §VI-A: "if there were 100 operators with degree 8, we split each one
  // of them to degrees 4,2,1,1".
  const std::vector<int> parts = HalvingChain(8, 7);
  EXPECT_EQ(parts, (std::vector<int>{4, 2, 1, 1}));
}

TEST(HalvingChainTest, NoSplitWhenWithinBound) {
  EXPECT_EQ(HalvingChain(5, 5), (std::vector<int>{5}));
  EXPECT_EQ(HalvingChain(1, 60), (std::vector<int>{1}));
}

TEST(HalvingChainTest, PartsSumToDegreeAndRespectBound) {
  for (int d = 1; d <= 64; ++d) {
    for (int s : {1, 2, 3, 5, 7, 10, 31}) {
      const std::vector<int> parts = HalvingChain(d, s);
      EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), 0), d)
          << "d=" << d << " s=" << s;
      for (int part : parts) {
        EXPECT_GE(part, 1);
        EXPECT_LE(part, s) << "d=" << d << " s=" << s;
      }
    }
  }
}

TEST(HalvingChainTest, MaxDegreeOneGivesAllOnes) {
  const std::vector<int> parts = HalvingChain(13, 1);
  EXPECT_EQ(parts.size(), 13u);
  for (int p : parts) EXPECT_EQ(p, 1);
}

class SplittingTest : public ::testing::Test {
 protected:
  static RawWorkload Base() {
    WorkloadParams p;
    p.num_queries = 300;
    p.base_num_operators = 100;
    p.base_max_sharing = 40;
    Rng rng(11);
    return GenerateBaseWorkload(p, rng);
  }
};

TEST_F(SplittingTest, MaxDegreeRespected) {
  const RawWorkload base = Base();
  for (int s : {1, 3, 8, 20, 40}) {
    Rng rng(5);
    const RawWorkload split = SplitToMaxDegree(base, s, rng);
    EXPECT_LE(split.MaxSharingDegree(), s) << "s=" << s;
  }
}

TEST_F(SplittingTest, PerQueryTotalLoadInvariant) {
  // The paper keeps average query load constant; our construction keeps
  // every query's CT exactly constant.
  const RawWorkload base = Base();
  auto base_inst = base.ToInstance();
  ASSERT_TRUE(base_inst.ok());
  for (int s : {1, 5, 17}) {
    Rng rng(6);
    const RawWorkload split = SplitToMaxDegree(base, s, rng);
    auto inst = split.ToInstance();
    ASSERT_TRUE(inst.ok());
    for (auction::QueryId q = 0; q < inst->num_queries(); ++q) {
      EXPECT_NEAR(inst->total_load(q), base_inst->total_load(q), 1e-9)
          << "s=" << s << " q=" << q;
    }
  }
}

TEST_F(SplittingTest, OperatorCountGrowsAsSharingShrinks) {
  const RawWorkload base = Base();
  size_t prev = base.operators.size();
  for (int s : {20, 8, 3, 1}) {
    Rng rng(7);
    const RawWorkload split = SplitToMaxDegree(base, s, rng);
    EXPECT_GE(split.operators.size(), prev) << "s=" << s;
    prev = split.operators.size();
  }
}

TEST_F(SplittingTest, DegreeOneMatchesIncidences) {
  // At max degree 1, every (operator, query) incidence is a private
  // operator, so #ops equals total incidences (the paper's 8800).
  const RawWorkload base = Base();
  int64_t incidences = 0;
  for (const RawOperator& op : base.operators) {
    incidences += static_cast<int64_t>(op.subscribers.size());
  }
  Rng rng(8);
  const RawWorkload split = SplitToMaxDegree(base, 1, rng);
  EXPECT_EQ(static_cast<int64_t>(split.operators.size()), incidences);
}

TEST_F(SplittingTest, SubscriberMultisetPreserved) {
  // Splitting redistributes subscribers but never loses or duplicates a
  // subscription.
  const RawWorkload base = Base();
  Rng rng(9);
  const RawWorkload split = SplitToMaxDegree(base, 4, rng);
  auto count_subs = [](const RawWorkload& w) {
    std::vector<int> per_query;
    for (const RawOperator& op : w.operators) {
      for (auction::QueryId q : op.subscribers) {
        if (static_cast<size_t>(q) >= per_query.size()) {
          per_query.resize(static_cast<size_t>(q) + 1, 0);
        }
        ++per_query[static_cast<size_t>(q)];
      }
    }
    return per_query;
  };
  EXPECT_EQ(count_subs(base), count_subs(split));
}

TEST_F(SplittingTest, SplitPartsKeepOriginalLoad) {
  const RawWorkload base = Base();
  Rng rng(10);
  const RawWorkload split = SplitToMaxDegree(base, 2, rng);
  // Every load value in the split workload must appear in the base.
  std::set<double> base_loads;
  for (const RawOperator& op : base.operators) base_loads.insert(op.load);
  for (const RawOperator& op : split.operators) {
    EXPECT_TRUE(base_loads.count(op.load) > 0);
  }
}

}  // namespace
}  // namespace streambid::workload
