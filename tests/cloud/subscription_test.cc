// Copyright 2026 The streambid Authors
// The §VII multi-length subscription scheme.

#include "cloud/subscription.h"

#include <gtest/gtest.h>

namespace streambid::cloud {
namespace {

std::vector<auction::OperatorSpec> Pool() {
  return {{2.0}, {3.0}, {5.0}, {4.0}};
}

std::vector<SubscriptionCategory> DayWeek() {
  return {{"daily", 1, 0.5}, {"weekly", 7, 0.5}};
}

SubscriptionRequest Req(int id, auction::UserId user, double bid,
                        std::vector<auction::OperatorId> ops, int cat) {
  SubscriptionRequest r;
  r.request_id = id;
  r.user = user;
  r.bid = bid;
  r.operators = std::move(ops);
  r.category = cat;
  return r;
}

TEST(SubscriptionTest, SubmitValidation) {
  SubscriptionManager mgr(DayWeek(), Pool(), 10.0, "cat", 1);
  EXPECT_TRUE(mgr.Submit(Req(1, 1, 5.0, {0}, 0)).ok());
  EXPECT_FALSE(mgr.Submit(Req(2, 1, 5.0, {9}, 0)).ok());   // Bad op.
  EXPECT_FALSE(mgr.Submit(Req(3, 1, 5.0, {0}, 7)).ok());   // Bad cat.
  EXPECT_FALSE(mgr.Submit(Req(4, 1, -1.0, {0}, 0)).ok());  // Bad bid.
  EXPECT_FALSE(mgr.Submit(Req(5, 1, 5.0, {}, 0)).ok());    // No ops.
}

TEST(SubscriptionTest, WinnersRunForTheirCategoryLength) {
  SubscriptionManager mgr(DayWeek(), Pool(), 20.0, "cat", 1);
  ASSERT_TRUE(mgr.Submit(Req(1, 1, 50.0, {0}, /*daily*/ 0)).ok());
  ASSERT_TRUE(mgr.Submit(Req(2, 2, 60.0, {1}, /*weekly*/ 1)).ok());
  const SubscriptionDayReport day1 = mgr.AdvanceDay();
  EXPECT_EQ(day1.admitted, 2);
  EXPECT_EQ(mgr.active().size(), 2u);

  // Day 2: the daily subscription expired, the weekly continues.
  const SubscriptionDayReport day2 = mgr.AdvanceDay();
  EXPECT_EQ(day2.expired, 1);
  ASSERT_EQ(mgr.active().size(), 1u);
  EXPECT_EQ(mgr.active()[0].request_id, 2);
  EXPECT_EQ(mgr.active()[0].expires_day, 8);  // Day 1 + 7.
}

TEST(SubscriptionTest, ContinuingSubscriptionsReduceAvailableCapacity) {
  SubscriptionManager mgr(DayWeek(), Pool(), 10.0, "cat", 1);
  ASSERT_TRUE(mgr.Submit(Req(1, 1, 50.0, {2}, /*weekly*/ 1)).ok());
  const SubscriptionDayReport day1 = mgr.AdvanceDay();
  ASSERT_EQ(day1.admitted, 1);
  EXPECT_DOUBLE_EQ(day1.committed_load, 0.0);  // Before admission.

  const SubscriptionDayReport day2 = mgr.AdvanceDay();
  // Operator 2 (load 5) is committed to the continuing weekly sub.
  EXPECT_DOUBLE_EQ(day2.committed_load, 5.0);
  EXPECT_DOUBLE_EQ(day2.available_capacity, 5.0);
}

TEST(SubscriptionTest, CategoryCapacityLimitsAdmission) {
  // Total 10, two categories at 50%: each auction sees 5 units.
  SubscriptionManager mgr(DayWeek(), Pool(), 10.0, "cat", 1);
  // Two daily requests with disjoint ops (2 + 3 = 5 > 5? No: equals 5,
  // fits). A third (load 5) cannot.
  ASSERT_TRUE(mgr.Submit(Req(1, 1, 50.0, {0}, 0)).ok());
  ASSERT_TRUE(mgr.Submit(Req(2, 2, 40.0, {1}, 0)).ok());
  ASSERT_TRUE(mgr.Submit(Req(3, 3, 30.0, {2}, 0)).ok());
  const SubscriptionDayReport day1 = mgr.AdvanceDay();
  EXPECT_EQ(day1.admitted, 2);
  EXPECT_EQ(day1.rejected, 1);
  EXPECT_EQ(day1.admitted_per_category[0], 2);
  EXPECT_EQ(day1.admitted_per_category[1], 0);
}

TEST(SubscriptionTest, RevenueAccumulates) {
  SubscriptionManager mgr(DayWeek(), Pool(), 10.0, "cat", 1);
  ASSERT_TRUE(mgr.Submit(Req(1, 1, 50.0, {0}, 0)).ok());
  ASSERT_TRUE(mgr.Submit(Req(2, 2, 8.0, {1}, 0)).ok());
  const SubscriptionDayReport day1 = mgr.AdvanceDay();
  // Category capacity 5: q1 (load 2, density 25) admitted; q2 (load 3,
  // density 2.67) admitted too (2+3=5 fits) -> no loser -> payments 0.
  // Revenue may be zero; the ledger still tracks it consistently.
  EXPECT_DOUBLE_EQ(mgr.total_revenue(), day1.revenue);
  EXPECT_GE(mgr.total_revenue(), 0.0);
}

TEST(SubscriptionTest, SharedOperatorsAcrossCategoryMembersCount) {
  // Two daily requests share operator 2 (load 5): together they fit in
  // the 5-unit category slice only because of sharing.
  SubscriptionManager mgr(DayWeek(), Pool(), 10.0, "cat", 1);
  ASSERT_TRUE(mgr.Submit(Req(1, 1, 50.0, {2}, 0)).ok());
  ASSERT_TRUE(mgr.Submit(Req(2, 2, 40.0, {2}, 0)).ok());
  const SubscriptionDayReport day1 = mgr.AdvanceDay();
  EXPECT_EQ(day1.admitted, 2);
}

TEST(SubscriptionTest, PendingClearedEachDay) {
  SubscriptionManager mgr(DayWeek(), Pool(), 10.0, "cat", 1);
  ASSERT_TRUE(mgr.Submit(Req(1, 1, 0.5, {2}, 0)).ok());
  (void)mgr.AdvanceDay();
  const SubscriptionDayReport day2 = mgr.AdvanceDay();
  EXPECT_EQ(day2.admitted + day2.rejected, 0);
}

}  // namespace
}  // namespace streambid::cloud
