// Copyright 2026 The streambid Authors

#include "workload/io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/generator.h"

namespace streambid::workload {
namespace {

RawWorkload SampleWorkload() {
  WorkloadParams p;
  p.num_queries = 25;
  p.base_num_operators = 10;
  p.base_max_sharing = 5;
  Rng rng(77);
  return GenerateBaseWorkload(p, rng);
}

TEST(WorkloadIoTest, RoundTripPreservesEverything) {
  const RawWorkload original = SampleWorkload();
  const std::string text = SerializeWorkload(original);
  auto parsed = ParseWorkload(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->valuations, original.valuations);
  EXPECT_EQ(parsed->users, original.users);
  ASSERT_EQ(parsed->operators.size(), original.operators.size());
  for (size_t j = 0; j < original.operators.size(); ++j) {
    EXPECT_EQ(parsed->operators[j].load, original.operators[j].load);
    EXPECT_EQ(parsed->operators[j].subscribers,
              original.operators[j].subscribers);
  }
  // Derived instances agree.
  EXPECT_EQ(parsed->ToInstance()->Summary(),
            original.ToInstance()->Summary());
}

TEST(WorkloadIoTest, CommentsAndBlankLinesIgnored) {
  auto parsed = ParseWorkload(
      "streambid-workload v1\n"
      "# a comment\n"
      "\n"
      "queries 2\n"
      "v 0 5.5 10\n"
      "v 1 7.0 11\n"
      "o 3.5 0 1\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_queries(), 2);
  EXPECT_DOUBLE_EQ(parsed->valuations[0], 5.5);
  EXPECT_EQ(parsed->users[1], 11);
  ASSERT_EQ(parsed->operators.size(), 1u);
  EXPECT_EQ(parsed->operators[0].subscribers.size(), 2u);
}

TEST(WorkloadIoTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseWorkload("queries 1\n").ok());
  EXPECT_FALSE(ParseWorkload("").ok());
}

TEST(WorkloadIoTest, RejectsBadRecords) {
  const std::string header = "streambid-workload v1\nqueries 2\n";
  EXPECT_FALSE(ParseWorkload(header + "v 9 1.0 1\n").ok());  // Range.
  EXPECT_FALSE(ParseWorkload(header + "o -1 0\n").ok());     // Load.
  EXPECT_FALSE(ParseWorkload(header + "o 1.0 5\n").ok());    // Sub range.
  EXPECT_FALSE(ParseWorkload(header + "z 1\n").ok());        // Tag.
}

TEST(WorkloadIoTest, SaveAndLoadFile) {
  const RawWorkload original = SampleWorkload();
  const std::string path = ::testing::TempDir() + "/workload_io_test.txt";
  ASSERT_TRUE(SaveWorkload(original, path).ok());
  auto loaded = LoadWorkload(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->valuations, original.valuations);
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadWorkload("/nonexistent/nope.txt").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace streambid::workload
