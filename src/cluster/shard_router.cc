// Copyright 2026 The streambid Authors

#include "cluster/shard_router.h"

#include "common/check.h"
#include "common/rng.h"

namespace streambid::cluster {

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kHashUser:
      return "hash";
    case RoutingPolicy::kLeastLoaded:
      return "least-loaded";
    case RoutingPolicy::kPriceAware:
      return "price-aware";
  }
  return "unknown";
}

ShardRouter::ShardRouter(RoutingPolicy policy, int num_shards)
    : policy_(policy), num_shards_(num_shards) {
  STREAMBID_CHECK_GE(num_shards, 1);
}

uint64_t ShardRouter::HashUser(auction::UserId user) {
  // User ids are typically small and sequential; Mix64 spreads them
  // evenly over shards.
  return Mix64(static_cast<uint64_t>(static_cast<int64_t>(user)) +
               0x9E3779B97F4A7C15ull);
}

int ShardRouter::RouteHash(const stream::QuerySubmission& submission,
                           const std::vector<ShardStatus>& shards) const {
  const int home = static_cast<int>(HashUser(submission.user) %
                                    static_cast<uint64_t>(num_shards_));
  // Probe forward from the home shard past drained ones, so the
  // placement stays stable while a shard's provisioning is at zero and
  // snaps back the period it recovers.
  for (int k = 0; k < num_shards_; ++k) {
    const int s = (home + k) % num_shards_;
    if (Eligible(shards[static_cast<size_t>(s)])) return s;
  }
  return home;  // Everything drained: deterministic degenerate choice.
}

int ShardRouter::Route(const stream::QuerySubmission& submission,
                       const std::vector<ShardStatus>& shards) const {
  STREAMBID_CHECK_EQ(static_cast<int>(shards.size()), num_shards_);
  switch (policy_) {
    case RoutingPolicy::kHashUser:
      return RouteHash(submission, shards);

    case RoutingPolicy::kLeastLoaded: {
      int best = -1;
      for (int s = 0; s < num_shards_; ++s) {
        if (!Eligible(shards[static_cast<size_t>(s)])) continue;
        // Strict <: ties stay on the lowest index (deterministic).
        if (best < 0 || shards[static_cast<size_t>(s)].pending_load <
                            shards[static_cast<size_t>(best)].pending_load) {
          best = s;
        }
      }
      return best >= 0 ? best : RouteHash(submission, shards);
    }

    case RoutingPolicy::kPriceAware: {
      // No eligible shard has run a period yet: nothing to compare
      // prices on, so place by the stable hash instead.
      bool any_history = false;
      for (const ShardStatus& status : shards) {
        any_history =
            any_history || (Eligible(status) && status.has_history);
      }
      if (!any_history) return RouteHash(submission, shards);

      // A shard without history is optimistically price 0 / rate 1, so
      // unexplored capacity attracts traffic until it clears a period —
      // otherwise a shard the hash never seeded could stay dead weight
      // forever. Ties go to the lowest index.
      const auto price = [](const ShardStatus& s) {
        return s.has_history ? s.last_clearing_price : 0.0;
      };
      const auto rate = [](const ShardStatus& s) {
        return s.has_history ? s.last_admission_rate : 1.0;
      };
      int best = -1;
      for (int s = 0; s < num_shards_; ++s) {
        const ShardStatus& status = shards[static_cast<size_t>(s)];
        if (!Eligible(status)) continue;
        if (best < 0) {
          best = s;
          continue;
        }
        const ShardStatus& incumbent =
            shards[static_cast<size_t>(best)];
        if (price(status) < price(incumbent) ||
            (price(status) == price(incumbent) &&
             rate(status) > rate(incumbent))) {
          best = s;
        }
      }
      return best >= 0 ? best : RouteHash(submission, shards);
    }
  }
  STREAMBID_CHECK(false);
  return 0;
}

}  // namespace streambid::cluster
