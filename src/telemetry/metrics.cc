// Copyright 2026 The streambid Authors

#include "telemetry/metrics.h"

#include <cstdio>

namespace streambid::telemetry {

namespace {

std::atomic<uint32_t> next_thread_index{0};

/// Formats a double the way Prometheus expects: plain decimal with
/// enough precision, no trailing-zero noise.
std::string FormatValue(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

int ThreadSlot() {
  thread_local const uint32_t index =
      next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(index % kMetricSlots);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Histogram::Record(double micros) {
  Slot& slot = slots_[static_cast<size_t>(ThreadSlot())];
  MutexLock lock(slot.mutex);
  slot.histogram.Record(micros);
}

LatencyHistogram Histogram::Snapshot() const {
  LatencyHistogram merged;
  for (const Slot& slot : slots_) {
    MutexLock lock(slot.mutex);
    merged.Merge(slot.histogram);
  }
  return merged;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

namespace {

/// Splits "name{label="v"}" into the base name and the label block, so
/// histogram suffixes (_bucket/_sum/_count) attach to the base name and
/// the le label merges into an existing label set.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  // Keep the inner "k="v"" text without the braces.
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

}  // namespace

std::string MetricsRegistry::TextExposition() const {
  const MetricsSnapshot snapshot = Snapshot();
  std::string out;
  // Labelled series of one family are adjacent in the ordered maps, so
  // tracking the last base name is enough to emit each TYPE line once.
  std::string last_base;
  for (const auto& [name, value] : snapshot.counters) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (base != last_base) out += "# TYPE " + base + " counter\n";
    last_base = base;
    out += name + " " + std::to_string(value) + "\n";
  }
  last_base.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (base != last_base) out += "# TYPE " + base + " gauge\n";
    last_base = base;
    out += name + " " + FormatValue(value) + "\n";
  }
  last_base.clear();
  for (const auto& [name, histogram] : snapshot.histograms) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (base != last_base) out += "# TYPE " + base + " histogram\n";
    last_base = base;
    int64_t cumulative = 0;
    for (int k = 0; k < LatencyHistogram::kBuckets; ++k) {
      cumulative += histogram.buckets[static_cast<size_t>(k)];
      std::string le =
          FormatValue(LatencyHistogram::BucketUpperMicros(k));
      std::string labelled = labels.empty()
                                 ? "{le=\"" + le + "\"}"
                                 : "{" + labels + ",le=\"" + le + "\"}";
      out += base + "_bucket" + labelled + " " +
             std::to_string(cumulative) + "\n";
    }
    std::string inf_labelled = labels.empty()
                                   ? "{le=\"+Inf\"}"
                                   : "{" + labels + ",le=\"+Inf\"}";
    out += base + "_bucket" + inf_labelled + " " +
           std::to_string(histogram.total) + "\n";
    std::string suffix_labels = labels.empty() ? "" : "{" + labels + "}";
    out += base + "_sum" + suffix_labels + " " +
           FormatValue(histogram.sum) + "\n";
    out += base + "_count" + suffix_labels + " " +
           std::to_string(histogram.total) + "\n";
  }
  return out;
}

}  // namespace streambid::telemetry
