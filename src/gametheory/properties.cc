// Copyright 2026 The streambid Authors

#include "gametheory/properties.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streambid::gametheory {
namespace {

bool Wins(const auction::Mechanism& mechanism,
          const auction::AuctionInstance& instance, double capacity,
          auction::QueryId query, Rng& rng) {
  const auction::Allocation alloc = mechanism.Run(instance, capacity, rng);
  return alloc.IsAdmitted(query);
}

}  // namespace

MonotonicityReport CheckMonotonicity(const auction::Mechanism& mechanism,
                                     const auction::AuctionInstance& instance,
                                     double capacity,
                                     bool check_subset_monotonicity,
                                     Rng& rng) {
  MonotonicityReport report;
  const auction::Allocation base = mechanism.Run(instance, capacity, rng);
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    const double v = instance.bid(i);
    if (base.IsAdmitted(i)) {
      for (double factor : {1.5, 3.0, 10.0}) {
        const auction::AuctionInstance raised =
            instance.WithBid(i, v * factor);
        if (!Wins(mechanism, raised, capacity, i, rng)) {
          report.monotone = false;
          report.violating_query = i;
          report.violating_bid = v * factor;
          return report;
        }
      }
      if (check_subset_monotonicity &&
          instance.query_operators(i).size() > 1) {
        // Drop the last operator: a winner asking for a strict subset of
        // her operators must still win (SMB monotonicity, §III).
        std::vector<auction::QuerySpec> queries = instance.queries();
        queries[static_cast<size_t>(i)].operators.pop_back();
        auto shrunk = auction::AuctionInstance::Create(
            instance.operators(), std::move(queries));
        STREAMBID_CHECK(shrunk.ok());
        if (!Wins(mechanism, *shrunk, capacity, i, rng)) {
          report.monotone = false;
          report.violating_query = i;
          report.violating_bid = v;
          return report;
        }
      }
    } else if (v > 0.0) {
      for (double factor : {0.5, 0.1}) {
        const auction::AuctionInstance lowered =
            instance.WithBid(i, v * factor);
        if (Wins(mechanism, lowered, capacity, i, rng)) {
          report.monotone = false;
          report.violating_query = i;
          report.violating_bid = v * factor;
          return report;
        }
      }
    }
  }
  return report;
}

CriticalValue EstimateCriticalValue(const auction::Mechanism& mechanism,
                                    const auction::AuctionInstance& instance,
                                    double capacity, auction::QueryId query,
                                    Rng& rng, double hi_hint,
                                    int iterations) {
  CriticalValue cv;
  // Upper probe: if the query loses even at an enormous bid, it can
  // never win (e.g., its own remaining load exceeds capacity).
  double hi = std::max({hi_hint, instance.max_bid() * 4.0, 1.0});
  if (!Wins(mechanism, instance.WithBid(query, hi), capacity, query, rng)) {
    cv.unbounded = true;
    return cv;
  }
  double lo = 0.0;
  if (Wins(mechanism, instance.WithBid(query, 0.0), capacity, query, rng)) {
    cv.value = 0.0;  // Wins for free.
    return cv;
  }
  for (int it = 0; it < iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (Wins(mechanism, instance.WithBid(query, mid), capacity, query,
             rng)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  cv.value = 0.5 * (lo + hi);
  return cv;
}

double MaxCriticalValueDiscrepancy(const auction::Mechanism& mechanism,
                                   const auction::AuctionInstance& instance,
                                   double capacity, Rng& rng,
                                   int max_queries) {
  const auction::Allocation base = mechanism.Run(instance, capacity, rng);
  std::vector<auction::QueryId> targets;
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    if (base.IsAdmitted(i)) targets.push_back(i);
  }
  if (max_queries > 0 &&
      max_queries < static_cast<int>(targets.size())) {
    rng.Shuffle(targets);
    targets.resize(static_cast<size_t>(max_queries));
  }
  double worst = 0.0;
  for (auction::QueryId q : targets) {
    const CriticalValue cv =
        EstimateCriticalValue(mechanism, instance, capacity, q, rng);
    if (cv.unbounded) continue;  // Winner that can't win: contradiction,
                                 // but let the monotonicity check flag it.
    worst = std::max(worst, std::fabs(cv.value - base.Payment(q)));
  }
  return worst;
}

}  // namespace streambid::gametheory
