// Copyright 2026 The streambid Authors
// The operator-splitting procedure of paper §VI-A: derives an instance
// with a lower maximum degree of sharing from the base instance while
// keeping every query's total load unchanged.

#ifndef STREAMBID_WORKLOAD_SPLITTING_H_
#define STREAMBID_WORKLOAD_SPLITTING_H_

#include <vector>

#include "common/rng.h"
#include "workload/raw_workload.h"

namespace streambid::workload {

/// Decomposes a degree `d` into the paper's halving chain:
/// 8 -> {4, 2, 1, 1}; 7 -> {3, 2, 1, 1}; re-splitting any part that still
/// exceeds `max_degree`. Parts are positive and sum to d; every part is
/// <= max_degree. d <= max_degree returns {d}.
std::vector<int> HalvingChain(int d, int max_degree);

/// Returns a copy of `base` where every operator of degree > max_degree
/// is split into halving-chain parts. Each part keeps the ORIGINAL load
/// and receives a random disjoint slice of the original subscriber list
/// (so each subscriber still pays for exactly one copy: per-query total
/// load CT_i is invariant, the paper's "average query load stays the
/// same"). Degrees of sharing shrink; the number of operators grows.
RawWorkload SplitToMaxDegree(const RawWorkload& base, int max_degree,
                             Rng& rng);

}  // namespace streambid::workload

#endif  // STREAMBID_WORKLOAD_SPLITTING_H_
