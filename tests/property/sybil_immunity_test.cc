// Copyright 2026 The streambid Authors
// Empirical sybil immunity (paper §V): CAT never profits from the
// attack family; CAF/CAF+ are (universally) vulnerable — the §V-A
// attack must succeed on shared instances. All auctions run through the
// AdmissionService.

#include <gtest/gtest.h>

#include "gametheory/sybil.h"
#include "service/admission_service.h"
#include "workload/generator.h"

namespace streambid {
namespace {

using auction::AuctionInstance;
using gametheory::SearchSybilAttacks;
using gametheory::SybilReport;

AuctionInstance RandomSharedInstance(uint64_t seed) {
  workload::WorkloadParams p;
  p.num_queries = 30;
  p.base_num_operators = 12;
  p.base_max_sharing = 8;
  Rng rng(seed);
  auto inst = workload::GenerateBaseWorkload(p, rng).ToInstance();
  EXPECT_TRUE(inst.ok());
  return std::move(inst).value();
}

class SybilSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SybilSweep, CatNeverProfitsFromSybilAttacks) {
  const AuctionInstance inst = RandomSharedInstance(GetParam());
  service::AdmissionService service;
  const SybilReport best = SearchSybilAttacks(
      service, "cat", inst, inst.total_union_load() * 0.5,
      /*seed=*/GetParam() + 100, /*max_attackers=*/8);
  EXPECT_FALSE(best.Profitable())
      << "gain " << best.Gain() << " — CAT is sybil-strategyproof "
      << "(Theorem 19), the harness found a counterexample";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SybilSweep,
                         ::testing::Range<uint64_t>(1, 11));

TEST(SybilVulnerabilityTest, CafAttackSucceedsSomewhere) {
  // Theorem 15: CAF is universally vulnerable. The search should find a
  // profitable attack on at least one (in practice nearly every)
  // shared instance at competitive capacity.
  service::AdmissionService service;
  bool found = false;
  for (uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    const AuctionInstance inst = RandomSharedInstance(seed);
    const SybilReport best = SearchSybilAttacks(
        service, "caf", inst, inst.total_union_load() * 0.5,
        /*seed=*/seed + 200, 10);
    found = best.Profitable();
  }
  EXPECT_TRUE(found);
}

TEST(SybilVulnerabilityTest, CafPlusAttackSucceedsSomewhere) {
  service::AdmissionService service;
  bool found = false;
  for (uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    const AuctionInstance inst = RandomSharedInstance(seed);
    const SybilReport best = SearchSybilAttacks(
        service, "caf+", inst, inst.total_union_load() * 0.5,
        /*seed=*/seed + 300, 10);
    found = best.Profitable();
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace streambid
