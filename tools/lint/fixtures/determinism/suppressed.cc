// Copyright 2026 The streambid Authors
// Fixture: every violation carries a NOLINT(determinism) with a written
// reason -- no findings expected.

#include <random>
#include <unordered_map>

inline unsigned SuppressedEntropy() {
  std::random_device device;  // NOLINT(determinism): fixture demonstrating a suppression with a written reason
  return device();
}

struct FixtureLedger {
  std::unordered_map<int, double> balances;

  double Total() const {
    double total = 0.0;
    for (const auto& [user, value] : balances) {  // NOLINT(determinism): commutative sum -- iteration order cannot change the result
      (void)user;
      total += value;
    }
    return total;
  }
};
