// Copyright 2026 The streambid Authors
// The fast incremental ComputeLast must agree with the brute-force
// re-simulation on hand-built cases and on randomized instances
// (parameterized sweep over seeds).

#include "auction/movement_window.h"

#include <gtest/gtest.h>

#include "auction/greedy_common.h"
#include "common/rng.h"

namespace streambid::auction {
namespace {

AuctionInstance Make(std::vector<double> op_loads,
                     std::vector<QuerySpec> queries) {
  std::vector<OperatorSpec> ops;
  for (double l : op_loads) ops.push_back({l});
  auto r = AuctionInstance::Create(std::move(ops), std::move(queries));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(MovementWindowTest, WindowSpansListWhenUncontested) {
  // Capacity ample: no position loses; last = kNoQuery.
  AuctionInstance inst = Make(
      {1.0, 1.0, 1.0},
      {{0, 9.0, {0}}, {1, 8.0, {1}}, {2, 7.0, {2}}});
  const auto order = PriorityOrder(inst, LoadBasis::kTotal);
  EXPECT_EQ(ComputeLast(inst, 100.0, order, 0), kNoQuery);
  EXPECT_EQ(ComputeLast(inst, 100.0, order, 1), kNoQuery);
}

TEST(MovementWindowTest, TightCapacityEndsWindowImmediately) {
  // Capacity 2, three unit queries: moving any winner below the next
  // query loses (the other two fill the server).
  AuctionInstance inst = Make(
      {1.0, 1.0, 1.0},
      {{0, 9.0, {0}}, {1, 8.0, {1}}, {2, 7.0, {2}}});
  const auto order = PriorityOrder(inst, LoadBasis::kTotal);
  // Winner 0 moved after 1: {1, 2} admitted first -> full. last(0) = 2?
  // After q1: used 1 + rem 1 = 2 fits. After q2: used 2 + 1 = 3 > 2.
  EXPECT_EQ(ComputeLast(inst, 2.0, order, 0), 2);
  EXPECT_EQ(ComputeLast(inst, 2.0, order, 1), 2);
}

TEST(MovementWindowTest, SharedOpsShrinkRemainingLoad) {
  // Winner's operator gets covered by a later winner: moving below it
  // is free. Example 1 shape: loads D=6, E=4 appended.
  AuctionInstance ex1 = Make(
      {4.0, 1.0, 2.0, 6.0, 4.0},
      {{0, 55.0, {0, 1}}, {1, 72.0, {0, 2}}, {2, 100.0, {3, 4}}});
  const auto order = PriorityOrder(ex1, LoadBasis::kFairShare);
  // q0 first in CSF order; moving it after q1 covers op0 -> still fits;
  // after q2 (rejected, adds nothing) -> still fits. Window spans list.
  EXPECT_EQ(ComputeLast(ex1, 10.0, order, 0), kNoQuery);
}

TEST(MovementWindowTest, MatchesBruteForceOnHandCase) {
  AuctionInstance inst = Make(
      {4.0, 1.0, 3.0, 1.0},
      {{0, 40.0, {0}}, {1, 9.0, {1}}, {2, 21.0, {2}}, {3, 5.0, {3}}});
  const auto order = PriorityOrder(inst, LoadBasis::kTotal);
  const GreedyScan scan =
      RunGreedyScan(inst, 5.0, order, MisfitPolicy::kSkip);
  for (QueryId i = 0; i < inst.num_queries(); ++i) {
    if (!scan.admitted[static_cast<size_t>(i)]) continue;
    EXPECT_EQ(ComputeLast(inst, 5.0, order, i),
              ComputeLastBruteForce(inst, 5.0, order, i))
        << "winner " << i;
  }
}

/// Random instances: n queries, m operators, random sharing. The fast
/// and brute-force window computations must agree for every winner,
/// under both load bases.
class MovementWindowFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MovementWindowFuzz, FastMatchesBruteForce) {
  Rng rng(GetParam());
  const int num_ops = 3 + static_cast<int>(rng.NextBounded(10));
  const int num_queries = 2 + static_cast<int>(rng.NextBounded(12));
  std::vector<OperatorSpec> ops;
  for (int j = 0; j < num_ops; ++j) {
    ops.push_back({1.0 + static_cast<double>(rng.NextBounded(9))});
  }
  std::vector<QuerySpec> queries;
  for (int i = 0; i < num_queries; ++i) {
    QuerySpec q;
    q.user = i;
    q.bid = 1.0 + static_cast<double>(rng.NextBounded(99));
    const int k = 1 + static_cast<int>(rng.NextBounded(3));
    const auto picked = rng.SampleDistinct(num_ops, std::min(k, num_ops));
    for (int j : picked) q.operators.push_back(j);
    queries.push_back(std::move(q));
  }
  auto inst = AuctionInstance::Create(std::move(ops), std::move(queries));
  ASSERT_TRUE(inst.ok());
  const double capacity =
      1.0 + rng.NextDouble() * inst->total_union_load();

  for (LoadBasis basis : {LoadBasis::kTotal, LoadBasis::kFairShare}) {
    const auto order = PriorityOrder(*inst, basis);
    const GreedyScan scan =
        RunGreedyScan(*inst, capacity, order, MisfitPolicy::kSkip);
    for (QueryId i = 0; i < inst->num_queries(); ++i) {
      if (!scan.admitted[static_cast<size_t>(i)]) continue;
      EXPECT_EQ(ComputeLast(*inst, capacity, order, i),
                ComputeLastBruteForce(*inst, capacity, order, i))
          << "seed " << GetParam() << " winner " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MovementWindowFuzz,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace streambid::auction
