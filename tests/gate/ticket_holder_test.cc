// Copyright 2026 The streambid Authors
// TicketHolder contract tests: the fast path grants immediately, the
// FIFO queue wakes in arrival order and cannot be starved by
// opportunistic TryAcquire, timeouts leave the queue with a typed
// error, resizes grow and shrink without invalidating held tickets,
// and the stats snapshot accounts every outcome.

#include "gate/ticket_holder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace streambid::gate {
namespace {

/// Spins until `pool` shows `waiters` queued Acquire calls — the only
/// cross-thread ordering the tests need.
void WaitForWaiters(const TicketHolder& pool, int waiters) {
  while (pool.waiting() < waiters) {
    std::this_thread::yield();
  }
}

TEST(TicketHolderTest, FastPathGrantsUpToCapacity) {
  TicketHolder pool("cat/class0", 3);
  EXPECT_EQ(pool.capacity(), 3);
  EXPECT_EQ(pool.name(), "cat/class0");
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(pool.TryAcquire());
  }
  EXPECT_FALSE(pool.TryAcquire());
  EXPECT_EQ(pool.used(), 3);
  EXPECT_EQ(pool.available(), 0);

  pool.Release();
  EXPECT_EQ(pool.available(), 1);
  EXPECT_TRUE(pool.TryAcquire());

  const TicketHolderStats stats = pool.Stats();
  EXPECT_EQ(stats.granted_immediate, 4);
  EXPECT_EQ(stats.granted_queued, 0);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.used_high_water, 3);
}

TEST(TicketHolderTest, ZeroTimeoutShedsWithTypedError) {
  TicketHolder pool("pool", 1);
  ASSERT_TRUE(pool.Acquire(0.0).ok());
  const Status shed = pool.Acquire(0.0);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.Stats().rejected, 1);
  EXPECT_EQ(pool.Stats().timed_out, 0);
  EXPECT_EQ(pool.waiting(), 0);  // Zero timeout never queues.
}

TEST(TicketHolderTest, TimeoutLeavesQueueWithTypedError) {
  TicketHolder pool("pool", 1);
  ASSERT_TRUE(pool.TryAcquire());
  const Status timed_out = pool.Acquire(20.0);
  EXPECT_EQ(timed_out.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.waiting(), 0);
  const TicketHolderStats stats = pool.Stats();
  EXPECT_EQ(stats.timed_out, 1);
  EXPECT_EQ(stats.queue_high_water, 1);
  // The histogram only records grants, never timeouts.
  EXPECT_EQ(stats.wait.total, 1);  // The TryAcquire fast path.
}

TEST(TicketHolderTest, InvalidTimeoutsAreTypedErrors) {
  TicketHolder pool("pool", 1);
  EXPECT_EQ(pool.Acquire(-1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.Acquire(std::numeric_limits<double>::infinity()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.Resize(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.Resize(-3).code(), StatusCode::kInvalidArgument);
}

TEST(TicketHolderTest, WaitersGrantInFifoOrder) {
  TicketHolder pool("pool", 1);
  ASSERT_TRUE(pool.TryAcquire());

  std::mutex order_mutex;
  std::vector<int> order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    // Stagger: waiter i is queued before waiter i+1 starts, so the
    // FIFO positions are known.
    waiters.emplace_back([&pool, &order_mutex, &order, i] {
      ASSERT_TRUE(pool.Acquire(10000.0).ok());
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(i);
    });
    WaitForWaiters(pool, i + 1);
  }

  for (int i = 0; i < 3; ++i) {
    pool.Release();
    // The released ticket must land on the single front waiter before
    // the next release frees the following one.
    while (true) {
      std::lock_guard<std::mutex> lock(order_mutex);
      if (static_cast<int>(order.size()) > i) break;
    }
  }
  for (std::thread& t : waiters) t.join();
  pool.Release();

  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  const TicketHolderStats stats = pool.Stats();
  EXPECT_EQ(stats.granted_queued, 3);
  EXPECT_EQ(stats.queue_high_water, 3);
  EXPECT_GE(stats.wait.total, 4);  // 1 immediate + 3 queued grants.
}

TEST(TicketHolderTest, TryAcquireCannotStealFromQueuedWaiters) {
  TicketHolder pool("pool", 1);
  ASSERT_TRUE(pool.TryAcquire());
  std::thread waiter([&pool] { ASSERT_TRUE(pool.Acquire(10000.0).ok()); });
  WaitForWaiters(pool, 1);

  // A free ticket appears via Resize while the waiter is queued. No
  // matter how the wakeup races, TryAcquire must never jump the queue:
  // either the waiter already took the ticket (pool full again) or the
  // waiter is still queued (TryAcquire defers to it).
  ASSERT_TRUE(pool.Resize(2).ok());
  for (int i = 0; i < 100; ++i) {
    if (pool.TryAcquire()) {
      // Only legal once the waiter has been granted (queue empty).
      EXPECT_EQ(pool.waiting(), 0);
      pool.Release();
      break;
    }
  }
  waiter.join();
  EXPECT_EQ(pool.waiting(), 0);
  pool.Release();
  pool.Release();
}

TEST(TicketHolderTest, ResizeGrowWakesWaiters) {
  TicketHolder pool("pool", 1);
  ASSERT_TRUE(pool.TryAcquire());
  std::thread waiter([&pool] { ASSERT_TRUE(pool.Acquire(10000.0).ok()); });
  WaitForWaiters(pool, 1);
  ASSERT_TRUE(pool.Resize(2).ok());
  waiter.join();
  EXPECT_EQ(pool.used(), 2);
  EXPECT_EQ(pool.capacity(), 2);
}

TEST(TicketHolderTest, ResizeShrinkNeverInvalidatesHeldTickets) {
  TicketHolder pool("pool", 4);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(pool.TryAcquire());
  ASSERT_TRUE(pool.Resize(1).ok());
  EXPECT_EQ(pool.used(), 3);      // Held tickets survive.
  EXPECT_EQ(pool.available(), 0); // But no new grants...
  EXPECT_FALSE(pool.TryAcquire());
  pool.Release();
  pool.Release();
  EXPECT_FALSE(pool.TryAcquire());  // Still over the new bound.
  pool.Release();
  EXPECT_TRUE(pool.TryAcquire());   // Back under: one ticket again.
}

TEST(TicketHolderTest, NoStarvationUnderOpportunisticLoad) {
  TicketHolder pool("pool", 2);
  std::atomic<bool> stop{false};
  // Opportunistic threads hammer the fast path for the whole test.
  std::vector<std::thread> hammers;
  for (int i = 0; i < 2; ++i) {
    hammers.emplace_back([&pool, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (pool.TryAcquire()) pool.Release();
      }
    });
  }
  // Queued waiters must still all get through: TryAcquire cannot steal
  // a release out from under the FIFO queue.
  std::atomic<int> granted{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 8; ++i) {
    waiters.emplace_back([&pool, &granted] {
      ASSERT_TRUE(pool.Acquire(30000.0).ok());
      ++granted;
      pool.Release();
    });
  }
  for (std::thread& t : waiters) t.join();
  stop = true;
  for (std::thread& t : hammers) t.join();
  EXPECT_EQ(granted.load(), 8);
  EXPECT_EQ(pool.used(), 0);
  EXPECT_LE(pool.Stats().used_high_water, 2);  // Bound held throughout.
}

TEST(WaitHistogramTest, PercentileReportsBucketUpperEdges) {
  WaitHistogram h;
  h.Record(0.5);     // Bucket 0: the immediate fast path.
  h.Record(10.0);    // [8, 16)us -> upper edge 16us.
  h.Record(1000.0);  // [512, 1024)us -> upper edge 1024us.
  EXPECT_EQ(h.total, 3);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(0.3), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(0.6), 0.016);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(1.0), 1.024);
}

TEST(WaitHistogramTest, MergeAccumulatesAndEmptyIsZero) {
  WaitHistogram a;
  EXPECT_DOUBLE_EQ(a.PercentileMillis(0.99), 0.0);
  a.Record(10.0);
  WaitHistogram b;
  b.Record(10.0);
  b.Record(1.0e12);  // Clamped into the last bucket.
  a.Merge(b);
  EXPECT_EQ(a.total, 3);
  EXPECT_DOUBLE_EQ(a.PercentileMillis(0.5), 0.016);
}

}  // namespace
}  // namespace streambid::gate
