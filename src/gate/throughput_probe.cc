// Copyright 2026 The streambid Authors

#include "gate/throughput_probe.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace streambid::gate {

const char* ProbeStateName(ProbeState state) {
  switch (state) {
    case ProbeState::kStable:
      return "stable";
    case ProbeState::kProbingUp:
      return "probe-up";
    case ProbeState::kProbingDown:
      return "probe-down";
  }
  return "unknown";
}

ThroughputProbe::ThroughputProbe(const ProbeOptions& options)
    : options_(options) {
  STREAMBID_CHECK_GE(options.min_concurrency, 1);
  STREAMBID_CHECK_GE(options.max_concurrency, options.min_concurrency);
  STREAMBID_CHECK_GT(options.step_ratio, 0.0);
  STREAMBID_CHECK_LE(options.step_ratio, 1.0);
  STREAMBID_CHECK_GT(options.ema_weight, 0.0);
  STREAMBID_CHECK_LE(options.ema_weight, 1.0);
  STREAMBID_CHECK_GE(options.min_gain_ratio, 0.0);
  stable_ = std::clamp(options.initial_concurrency, options.min_concurrency,
                       options.max_concurrency);
  concurrency_ = stable_;
}

int ThroughputProbe::ClampStep(double target) const {
  const int rounded = static_cast<int>(std::lround(target));
  return std::clamp(rounded, options_.min_concurrency,
                    options_.max_concurrency);
}

int ThroughputProbe::StepUp() const {
  // At least one ticket above stable, clamped to the max.
  const double target = stable_ * (1.0 + options_.step_ratio);
  return std::max(ClampStep(target),
                  std::min(stable_ + 1, options_.max_concurrency));
}

int ThroughputProbe::StepDown() const {
  const double target = stable_ * (1.0 - options_.step_ratio);
  return std::min(ClampStep(target),
                  std::max(stable_ - 1, options_.min_concurrency));
}

ProbeDecision ThroughputProbe::Observe(double throughput) {
  ProbeDecision decision;
  decision.epoch = epochs_;
  decision.throughput = throughput;

  switch (state_) {
    case ProbeState::kStable: {
      // Blend the stable observation into the moving average the probe
      // epochs will be judged against.
      if (!has_ema_) {
        ema_ = throughput;
        has_ema_ = true;
      } else {
        ema_ = options_.ema_weight * throughput +
               (1.0 - options_.ema_weight) * ema_;
      }
      const int up = StepUp();
      const int down = StepDown();
      const bool can_up = up > stable_;
      const bool can_down = down < stable_;
      if (can_up && can_down) {
        // Seeded coin so the direction sequence replays byte-identically.
        const bool go_up =
            (Mix64(options_.seed ^ static_cast<uint64_t>(epochs_)) & 1) == 0;
        state_ = go_up ? ProbeState::kProbingUp : ProbeState::kProbingDown;
        concurrency_ = go_up ? up : down;
        decision.reason = go_up ? "probe-up" : "probe-down";
      } else if (can_up) {
        state_ = ProbeState::kProbingUp;
        concurrency_ = up;
        decision.reason = "probe-up";
      } else if (can_down) {
        state_ = ProbeState::kProbingDown;
        concurrency_ = down;
        decision.reason = "probe-down";
      } else {
        // min == max: nothing to probe.
        decision.reason = "pinned";
      }
      break;
    }
    case ProbeState::kProbingUp:
    case ProbeState::kProbingDown: {
      const bool improved =
          throughput > ema_ * (1.0 + options_.min_gain_ratio);
      if (improved) {
        stable_ = concurrency_;
        ema_ = options_.ema_weight * throughput +
               (1.0 - options_.ema_weight) * ema_;
        decision.adopted = true;
        decision.reason = "adopted";
      } else {
        concurrency_ = stable_;
        decision.reason = "reverted";
      }
      state_ = ProbeState::kStable;
      break;
    }
  }

  ++epochs_;
  decision.state = state_;
  decision.concurrency = concurrency_;
  decision.stable_concurrency = stable_;
  decision.ema_throughput = ema_;
  return decision;
}

}  // namespace streambid::gate
