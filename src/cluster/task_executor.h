// Copyright 2026 The streambid Authors
// The generic task runtime of the cluster layer: a fixed pool of
// persistent worker threads that runs arbitrary closures, not just
// admission auctions. Each worker owns a WorkerContext — its worker id
// plus its own AdmissionService (and therefore its own AuctionContext
// scratch arena) — so admission work scheduled here still honors the
// "shard one service per thread" rule, while non-admission stages
// (auction preparation, engine execution, billing) share the same pool
// instead of spawning ad-hoc threads.
//
// Scheduling: per-worker deques with work stealing. Every worker owns a
// ring-buffer deque under its own narrow lock (contention is striped
// per worker instead of serialized on one pool mutex). The owner pushes
// and pops LIFO at the bottom of its own deque — tasks submitted from
// inside a task land on the submitting worker and run cache-hot — while
// external submissions are spread round-robin across the deques. A
// worker that finds its own deque empty steals FIFO from the front of a
// victim's deque, scanning the other workers in a deterministic order
// derived from (steal_seed, worker id), so the oldest queued work is
// what migrates. Global coordination (the queue bound, the idle-worker
// eventcount, ticket completion) is atomics + two narrow mutex/condvar
// pairs; nothing on the Submit→execute path allocates in steady state:
// tasks travel in small-buffer-optimized InlineFunction slots, ring
// slots are recycled in place, and ticket completion slots come from a
// lock-free free list (generation-tagged against ABA/stale handles).
//
// Determinism contract: the executor adds none of its own randomness to
// results. A task's result is whatever the closure computes; closures
// that are pure functions of their captures (the admission requests'
// per-request RNG streams, a shard's private state) produce identical
// results at every pool size, placement, steal seed, and interleaving —
// stealing only moves *where* a task runs, never what it computes. That
// is what lets the ClusterCenter pipeline whole periods through this
// pool and still replay byte-identically with stealing on or off.
//
// Surfaces:
//  - Submit / TrySubmit -> Ticket<T>: async submission with typed
//    completion handles. Submit blocks for space when the queue is
//    bounded; TrySubmit returns kResourceExhausted instead (the
//    backpressure path). The bound is pool-wide (the sum of all deque
//    depths), not per deque.
//  - Poll / Wait (Ticket<T>): completion draining. Tickets are issued
//    once and consumed once; errors inside the closure come back as the
//    ticket's Result<T>.
//  - RunAll: blocking batch fan-out, results positionally aligned; the
//    lowest-index failure is returned (all tasks still run).
//  - Shutdown(): drains every queued task (stealers help empty every
//    deque), then stops the workers. Destruction without Shutdown
//    discards queued work (fast teardown).
//  - StatsReport(): per-worker task counts, steal/local-hit counts, and
//    the pool-wide queue-depth high-water mark, the observability
//    surface of the generic runtime.

#ifndef STREAMBID_CLUSTER_TASK_EXECUTOR_H_
#define STREAMBID_CLUSTER_TASK_EXECUTOR_H_

#include <any>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/inline_function.h"
#include "common/lock_order.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "service/admission_service.h"

namespace streambid::telemetry {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace streambid::telemetry

namespace streambid::cluster {

/// Executor configuration.
struct ExecutorOptions {
  /// Worker threads; 0 means the CPUs actually available to this
  /// process (affinity mask ∧ cgroup quota — see
  /// common/cpu.h AvailableCpuCount), at least 1.
  int num_threads = 0;
  /// Maximum queued (not yet running) tasks across all worker deques; 0
  /// means unbounded. When the queue is full, Submit/RunAll block for
  /// space and TrySubmit returns kResourceExhausted — the backpressure
  /// contract for async producers.
  int max_queue_depth = 0;
  /// Work stealing. On (the default), an idle worker steals the oldest
  /// task from a victim's deque. Off, every worker runs only its own
  /// deque — the single-queue-equivalent reference mode the replay
  /// tests compare against. Results are identical either way (the
  /// determinism contract); only placement and latency change.
  bool steal = true;
  /// Seed for the deterministic steal-victim scan order. Each worker
  /// derives its fixed scan rotation from Mix64(steal_seed ^ worker_id);
  /// replays with the same seed scan victims in the same order.
  uint64_t steal_seed = 0x51EA15EEDULL;
  /// Optional telemetry sink. When set, the executor publishes
  /// executor_tasks_executed / executor_tasks_stolen /
  /// executor_tasks_local / executor_queue_depth /
  /// executor_task_latency, and each worker's AdmissionService records
  /// its per-admission series into the same registry. Null disables all
  /// of it at zero hot-path cost. Must outlive the executor.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Typed completion handle. Tickets are issued once and consumed once:
/// a successful Poll/Wait removes the result, and the T parameter binds
/// the handle to its task's result type at compile time.
template <typename T>
struct Ticket {
  uint64_t id = 0;
};

/// Worker-local state handed to every task. The service is owned by the
/// worker (one per thread, never shared), so tasks may run admission
/// auctions on it without synchronization — but must not stash the
/// pointer beyond the task's own execution.
struct WorkerContext {
  int worker_id = 0;
  service::AdmissionService* service = nullptr;
};

/// Snapshot returned by TaskExecutor::StatsReport().
struct TaskExecutorStats {
  /// Tasks accepted into the queue (async submissions + batch items).
  int64_t submitted = 0;
  /// Tasks a worker finished executing (sum of tasks_per_worker).
  int64_t executed = 0;
  /// Executed tasks whose closure returned an error Result.
  int64_t failed = 0;
  /// Executed tasks the worker stole from another worker's deque.
  int64_t stolen = 0;
  /// Executed tasks popped from the worker's own deque (local hits;
  /// local + stolen == executed).
  int64_t local_hits = 0;
  /// Highest pool-wide queued-task count observed (maintained on every
  /// reservation against the shared depth counter, so concurrent
  /// submitters can't race it back to a stale low value). Against a
  /// bounded queue this approaches max_queue_depth under backpressure;
  /// unbounded, it shows how deep async producers actually run ahead.
  int64_t queue_high_water = 0;
  /// Tasks executed per worker, indexed by worker id. The vector length
  /// is always num_threads(): work landing anywhere else than these
  /// workers is structurally impossible, which is the "no threads
  /// outside the pool" observability hook the cluster tests assert.
  std::vector<int64_t> tasks_per_worker;
  /// Steals per worker, indexed by the *thief's* worker id.
  std::vector<int64_t> steals_per_worker;
};

/// Thread-pool task runtime. Thread-safe: any thread may submit tasks
/// and poll tickets concurrently. Tasks themselves may submit further
/// tasks (they land on the submitting worker's own deque and run LIFO,
/// or get stolen if the owner stays busy), but from inside a task use
/// TrySubmit and never block on the pool: a task Wait()ing on a ticket
/// of the same executor — or a blocking Submit against a full bounded
/// queue, which parks the worker that would have drained it — can
/// deadlock the pool. Shutdown and destruction must happen-after every
/// concurrent Submit/Poll/Wait/RunAll call has returned.
class TaskExecutor {
 public:
  /// A unit of work: runs on some worker, sees that worker's context,
  /// reports success or failure through Result<T>. T must be movable
  /// and copy-constructible (results travel through the type-erased
  /// completion slot). Deliberately a copyable std::function — callers
  /// build task vectors they reuse; the executor re-wraps it into its
  /// own move-only inline slot at submission.
  template <typename T>
  using Task = std::function<Result<T>(WorkerContext&)>;

  explicit TaskExecutor(const ExecutorOptions& options = {});
  /// Discards queued work (running tasks finish) and completes every
  /// unconsumed ticket with kFailedPrecondition so a straggling Wait
  /// unblocks. For a drained teardown call Shutdown() first.
  ~TaskExecutor();

  TaskExecutor(const TaskExecutor&) = delete;
  TaskExecutor& operator=(const TaskExecutor&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Worker w's admission service — exposed so facades can validate
  /// requests against the same registry the workers execute with.
  /// Const registry reads (Validate, HasMechanism, MechanismNames) are
  /// safe concurrently with tasks running on worker w; anything that
  /// can touch the service's mutable state (Admit and friends, which
  /// reuse the AuctionContext scratch) must not race them.
  service::AdmissionService& worker_service(int worker_id) {
    return *services_[static_cast<size_t>(worker_id)];
  }
  const service::AdmissionService& worker_service(int worker_id) const {
    return *services_[static_cast<size_t>(worker_id)];
  }

  /// Queues `task`; the returned ticket completes on some worker. When
  /// the queue is bounded and full, blocks until space frees up.
  /// kFailedPrecondition after Shutdown.
  template <typename T>
  Result<Ticket<T>> Submit(Task<T> task) {
    STREAMBID_ASSIGN_OR_RETURN(
        const uint64_t id,
        SubmitErased(Erase<T>(std::move(task)), /*blocking=*/true));
    return Ticket<T>{id};
  }

  /// Non-blocking Submit: kResourceExhausted when the bounded queue is
  /// full, so async producers get backpressure instead of unbounded
  /// queue growth.
  template <typename T>
  Result<Ticket<T>> TrySubmit(Task<T> task) {
    STREAMBID_ASSIGN_OR_RETURN(
        const uint64_t id,
        SubmitErased(Erase<T>(std::move(task)), /*blocking=*/false));
    return Ticket<T>{id};
  }

  /// Non-blocking completion check: empty while the ticket is still
  /// queued or running; otherwise the result (or the closure's error),
  /// which is removed — a second Poll of the same ticket is kNotFound.
  template <typename T>
  std::optional<Result<T>> Poll(Ticket<T> ticket) {
    std::optional<Result<std::any>> erased = PollErased(ticket.id);
    if (!erased.has_value()) return std::nullopt;
    return Unerase<T>(std::move(*erased));
  }

  /// Blocks until the ticket completes and returns its result (removing
  /// it, as Poll does). kNotFound for never-issued or already-consumed
  /// tickets. Never hangs across Shutdown (drained results stay
  /// available) or destruction (pending tickets error out).
  template <typename T>
  Result<T> Wait(Ticket<T> ticket) {
    return Unerase<T>(WaitErased(ticket.id));
  }

  /// Runs every task and blocks until all finish; results are
  /// positionally aligned with the tasks. All tasks run even when some
  /// fail; the lowest-index failure is returned. Must be called from
  /// outside the pool.
  template <typename T>
  Result<std::vector<T>> RunAll(std::vector<Task<T>> tasks) {
    std::vector<ErasedTask> erased;
    erased.reserve(tasks.size());
    for (Task<T>& task : tasks) {
      erased.push_back(Erase<T>(std::move(task)));
    }
    STREAMBID_ASSIGN_OR_RETURN(std::vector<Result<std::any>> results,
                               RunAllErased(std::move(erased)));
    std::vector<T> out;
    out.reserve(results.size());
    for (Result<std::any>& result : results) {
      STREAMBID_ASSIGN_OR_RETURN(T value, Unerase<T>(std::move(result)));
      out.push_back(std::move(value));
    }
    return out;
  }

  /// Re-bounds the queue at runtime; the admission gate's throughput
  /// probe calls this to keep executor backlog proportional to the
  /// concurrency it has measured the system can absorb. `depth` 0 means
  /// unbounded; negative is kInvalidArgument. Thread-safe: growing (or
  /// unbounding) wakes producers blocked in Submit/RunAll; shrinking
  /// below the current backlog never drops queued tasks — the queue
  /// just refuses new pushes until workers drain it under the new cap.
  Status SetMaxQueueDepth(int depth);

  /// Current queue bound (0 = unbounded).
  int max_queue_depth() const;

  /// Drains the queue (every already-submitted task runs to completion)
  /// and joins the workers. Unconsumed tickets stay pollable afterwards;
  /// new submissions fail with kFailedPrecondition. A second Shutdown is
  /// kFailedPrecondition. Must not race in-flight RunAll calls.
  Status Shutdown();

  /// Outstanding (submitted, not yet consumed) tickets.
  int pending_tasks() const;

  /// Copies the generic runtime counters accumulated so far.
  TaskExecutorStats StatsReport() const;

  /// Clears the counters (benches reset between phases). Coherent with
  /// concurrently-finishing tasks: the reset records per-counter
  /// baselines instead of zeroing the atomics, so an increment racing
  /// the reset is never lost — it is simply attributed to the new
  /// window.
  void ResetStats();

 private:
  using ErasedResult = Result<std::any>;
  /// The queue-resident task slot: move-only, small-buffer-optimized.
  /// The Erase<T> wrapper (one captured std::function) always fits
  /// inline, so queuing a task never heap-allocates.
  using ErasedTask = InlineFunction<ErasedResult(WorkerContext&), 64>;

  /// Shared state of one RunAll call. Results are collected
  /// positionally; the submitting thread waits on done_cv_ until
  /// `remaining` drains to zero.
  struct BatchJob {
    std::vector<std::optional<ErasedResult>> results;
    std::atomic<size_t> remaining{0};
  };
  /// One queued unit: an async ticket or one index of a batch job.
  struct WorkItem {
    ErasedTask task;
    uint64_t ticket = 0;      ///< Valid when job == nullptr.
    BatchJob* job = nullptr;  ///< Valid for batch items.
    size_t index = 0;         ///< Position within the batch.
  };

  /// One worker's deque: a ring buffer of WorkItems under its own
  /// narrow lock. The owner pushes/pops at the bottom (LIFO), thieves
  /// take from the top (FIFO — the oldest work migrates). The lock is
  /// held only for the O(1) slot move, so contention is striped per
  /// worker rather than pooled; cache-line alignment keeps neighboring
  /// deques from false-sharing.
  struct alignas(64) WorkerDeque {
    Mutex mutex ACQUIRED_AFTER(kExecutorRankBoundary) =
        Mutex{LockRank::kExecutorDeque, "executor/deque"};
    /// Circular storage; size() == capacity.
    std::vector<WorkItem> ring GUARDED_BY(mutex);
    /// Index of the oldest item (steal end).
    size_t top GUARDED_BY(mutex) = 0;
    /// Items currently queued.
    size_t count GUARDED_BY(mutex) = 0;
  };

  /// One ticket's completion slot, recycled through a lock-free free
  /// list. The ticket id embeds (generation << 32 | slot_index + 1),
  /// and the slot packs the same generation next to its state in one
  /// atomic control word: a consume/recycle bumps the generation, so a
  /// stale handle's claim CAS — which carries the expected generation —
  /// can never capture a recycled slot holding a stranger's result.
  struct TicketSlot {
    static constexpr uint32_t kFree = 0;     ///< On the free list.
    static constexpr uint32_t kPending = 1;  ///< Queued or running.
    static constexpr uint32_t kReady = 2;    ///< Result present.
    static constexpr uint32_t kClaimed = 3;  ///< A consumer won the CAS.
    /// (generation << 32) | state — see MakeControl/GenOf/StateOf.
    std::atomic<uint64_t> control{kFree};
    /// Free-list link: the encoded (index + 1) of the next free slot,
    /// 0 at the end. Atomic only to keep the lock-free pop's benign
    /// speculative read TSan-clean; the tagged-head CAS carries the
    /// actual synchronization.
    std::atomic<uint32_t> next_free{0};
    /// Written by the completing worker while state is kPending, moved
    /// out by the consumer that won the kReady->kClaimed CAS.
    std::optional<ErasedResult> result;
  };
  static constexpr uint64_t MakeControl(uint32_t generation,
                                        uint32_t state) {
    return (static_cast<uint64_t>(generation) << 32) | state;
  }
  static constexpr uint32_t GenOf(uint64_t control) {
    return static_cast<uint32_t>(control >> 32);
  }
  static constexpr uint32_t StateOf(uint64_t control) {
    return static_cast<uint32_t>(control & 0xffffffffu);
  }

  /// Wraps a typed task so the queue can hold it: the value travels as
  /// std::any, the error as the task's own Status.
  template <typename T>
  static ErasedTask Erase(Task<T> task) {
    return [task = std::move(task)](WorkerContext& context) -> ErasedResult {
      Result<T> result = task(context);
      if (!result.ok()) return result.status();
      return std::any(std::move(result).value());
    };
  }

  /// Recovers the typed result. A Ticket<T> can only be minted by
  /// Submit<T>, so the cast matches by construction; a mismatch (a
  /// forged ticket id reused across types) is reported as kInternal
  /// rather than thrown.
  template <typename T>
  static Result<T> Unerase(ErasedResult erased) {
    if (!erased.ok()) return erased.status();
    std::any value = std::move(erased).value();
    T* typed = std::any_cast<T>(&value);
    if (typed == nullptr) {
      return Status::Internal("ticket result type mismatch");
    }
    return std::move(*typed);
  }

  Result<uint64_t> SubmitErased(ErasedTask task, bool blocking);
  std::optional<ErasedResult> PollErased(uint64_t ticket);
  ErasedResult WaitErased(uint64_t ticket);
  Result<std::vector<ErasedResult>> RunAllErased(
      std::vector<ErasedTask> tasks);
  void WorkerLoop(int worker_id);

  // -- Queue bound (pool-wide, atomic) ------------------------------
  /// Reserves one unit of queue capacity against the shared bound,
  /// blocking for space (or failing with kResourceExhausted when
  /// non-blocking) and failing with kFailedPrecondition once the
  /// executor stops accepting work. Maintains queue_high_water_.
  Status ReserveQueueSlot(bool blocking);
  /// Returns one unit of capacity (after a pop) and wakes a parked
  /// producer if any are waiting.
  void ReleaseQueueSlot();

  // -- Deques -------------------------------------------------------
  /// Pushes to the bottom of `worker_id`'s deque (capacity already
  /// reserved) and wakes an idle worker if one is parked.
  void PushToDeque(int worker_id, WorkItem item);
  /// Chooses the target deque for an external or in-task submission.
  int PickSubmitTarget();
  /// Owner pop: bottom (LIFO) of the worker's own deque.
  bool PopOwn(int worker_id, WorkItem* item);
  /// Thief pop: top (FIFO) of `victim`'s deque.
  bool StealFrom(int victim, WorkItem* item);
  /// One full scan: own deque first, then the victims in this worker's
  /// seeded order (no-op beyond the own deque when stealing is off).
  bool FindWork(int worker_id, WorkItem* item, bool* stolen);

  // -- Parking (eventcount) -----------------------------------------
  /// Wakes parked workers after a push; cheap no-op when nobody is
  /// parked (the common case under load).
  void NotifyWorkers();

  // -- Tickets ------------------------------------------------------
  /// Pops a free slot (or grows the table) and arms it as kPending.
  /// Returns the encoded ticket id.
  Result<uint64_t> AcquireTicketSlot();
  TicketSlot& Slot(uint32_t index);
  std::optional<uint32_t> PopFreeSlot();
  void PushFreeSlot(uint32_t index);
  /// Stores `result` into the ticket's slot and wakes Wait()ers.
  void CompleteTicket(uint64_t ticket, ErasedResult result);
  /// Consumes the slot the caller just claimed (kClaimed): moves the
  /// result out, bumps the generation, and recycles the slot.
  ErasedResult ConsumeClaimedSlot(uint32_t index, uint32_t generation);

  void Execute(WorkItem& item, WorkerContext& context, int worker_id,
               bool stolen);
  /// Destructor sweep: fails queued-but-never-run tickets and any
  /// still-pending slots with kFailedPrecondition.
  void FailPendingWork();

  std::vector<std::unique_ptr<service::AdmissionService>> services_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;
  bool steal_enabled_ = true;
  uint64_t steal_seed_ = 0;

  // -- Lifecycle ----------------------------------------------------
  std::atomic<bool> stopping_{false};  ///< Destructor: discard queued work.
  std::atomic<bool> draining_{false};  ///< Shutdown(): drain, then stop.
  std::atomic<bool> shutdown_called_{false};

  // -- Queue bound + submit cursor ----------------------------------
  std::atomic<size_t> max_queue_depth_{0};  ///< 0 = unbounded.
  std::atomic<size_t> total_queued_{0};     ///< Sum of all deque depths.
  std::atomic<uint64_t> submit_cursor_{0};  ///< Round-robin placement.
  /// Pure condvar pairing mutex: the space-waiter protocol's state
  /// (max_queue_depth_, total_queued_) is atomic; the lock only closes
  /// the check-then-sleep window.
  Mutex space_mutex_ ACQUIRED_AFTER(wake_mutex_) =
      Mutex{LockRank::kExecutorSpace, "executor/space"};
  CondVar space_cv_;  ///< Signals queue space freed.
  std::atomic<int> space_waiters_{0};

  // -- Worker parking (eventcount) ----------------------------------
  Mutex wake_mutex_ ACQUIRED_AFTER(grow_mutex_) =
      Mutex{LockRank::kExecutorWake, "executor/wake"};
  CondVar work_cv_;  ///< Signals queued work / teardown.
  uint64_t work_epoch_ GUARDED_BY(wake_mutex_) = 0;
  std::atomic<int> idle_workers_{0};

  // -- Ticket table -------------------------------------------------
  static constexpr size_t kSlotsPerChunk = 256;
  static constexpr size_t kMaxSlotChunks = 1 << 14;  ///< ~4.2M tickets.
  /// Chunked so grown slots never move (lock-free readers hold raw
  /// references across the growth); the outer vector's capacity is
  /// reserved up front so push_back never reallocates either.
  /// NOT GUARDED_BY(grow_mutex_) although growth holds it: readers
  /// index the vector lock-free by design, ordered by the num_slots_
  /// publication protocol (chunk pointer stored before the bound) plus
  /// the up-front capacity reservation — a protocol the capability
  /// analysis cannot express, so the invariant stays prose here.
  std::vector<std::unique_ptr<TicketSlot[]>> slot_chunks_;
  std::atomic<uint32_t> num_slots_{0};
  /// Serializes table growth only.
  Mutex grow_mutex_ ACQUIRED_AFTER(kExecutorRankBoundary) =
      Mutex{LockRank::kExecutorGrow, "executor/grow"};
  /// Treiber free stack: low 32 bits encode (index + 1) of the head (0
  /// = empty), high 32 bits are a pop tag against ABA.
  std::atomic<uint64_t> free_head_{0};
  std::atomic<int> pending_tickets_{0};
  /// Pure condvar pairing mutex (completion state is the atomic slot
  /// control words); closes the Wait/RunAll check-then-sleep window.
  Mutex done_mutex_ ACQUIRED_AFTER(space_mutex_)
      ACQUIRED_BEFORE(kTelemetryRankBoundary) =
          Mutex{LockRank::kExecutorDone, "executor/done"};
  CondVar done_cv_;  ///< Signals completions.
  std::atomic<int> done_waiters_{0};

  // -- Stats --------------------------------------------------------
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> submitted_baseline_{0};
  std::atomic<int64_t> queue_high_water_{0};
  /// Telemetry instruments; all null when ExecutorOptions::metrics is.
  telemetry::Counter* tasks_executed_metric_ = nullptr;
  telemetry::Counter* tasks_stolen_metric_ = nullptr;
  telemetry::Counter* tasks_local_metric_ = nullptr;
  telemetry::Gauge* queue_depth_metric_ = nullptr;
  telemetry::Histogram* task_latency_metric_ = nullptr;
  /// Execution counters are per worker and atomic so the hot path never
  /// takes a shared lock to account a finished task. ResetStats()
  /// snapshots baselines rather than zeroing, keeping reports coherent
  /// with tasks that finish mid-reset.
  struct alignas(64) WorkerCounters {
    std::atomic<int64_t> executed{0};
    std::atomic<int64_t> failed{0};
    std::atomic<int64_t> stolen{0};
    std::atomic<int64_t> local{0};
    std::atomic<int64_t> executed_baseline{0};
    std::atomic<int64_t> failed_baseline{0};
    std::atomic<int64_t> stolen_baseline{0};
    std::atomic<int64_t> local_baseline{0};
  };
  std::vector<std::unique_ptr<WorkerCounters>> counters_;
};

}  // namespace streambid::cluster

#endif  // STREAMBID_CLUSTER_TASK_EXECUTOR_H_
