// Copyright 2026 The streambid Authors

#include "stream/tuple.h"

#include <gtest/gtest.h>

namespace streambid::stream {
namespace {

SchemaPtr QuoteSchema() {
  return MakeSchema({{"symbol", ValueType::kString},
                     {"price", ValueType::kDouble}});
}

TEST(SchemaTest, FieldLookup) {
  SchemaPtr s = QuoteSchema();
  EXPECT_EQ(s->num_fields(), 2);
  EXPECT_EQ(s->FieldIndex("symbol"), 0);
  EXPECT_EQ(s->FieldIndex("price"), 1);
  EXPECT_EQ(s->FieldIndex("nope"), -1);
  EXPECT_TRUE(s->HasField("price"));
  EXPECT_FALSE(s->HasField("volume"));
}

TEST(SchemaTest, EqualityAndToString) {
  SchemaPtr a = QuoteSchema();
  SchemaPtr b = QuoteSchema();
  EXPECT_TRUE(*a == *b);
  EXPECT_EQ(a->ToString(), "symbol:string,price:double");
  SchemaPtr c = MakeSchema({{"x", ValueType::kInt64}});
  EXPECT_FALSE(*a == *c);
}

TEST(TupleTest, FieldAccess) {
  Tuple t(QuoteSchema(), {Value("IBM"), Value(101.5)}, 2.5);
  EXPECT_DOUBLE_EQ(t.timestamp(), 2.5);
  EXPECT_EQ(t.field("symbol").AsString(), "IBM");
  EXPECT_DOUBLE_EQ(t.field("price").AsDouble(), 101.5);
  EXPECT_EQ(t.value(0).AsString(), "IBM");
}

TEST(TupleTest, ToStringMentionsFields) {
  Tuple t(QuoteSchema(), {Value("A"), Value(1.0)}, 0.0);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("symbol=A"), std::string::npos);
  EXPECT_NE(s.find("price=1"), std::string::npos);
}

}  // namespace
}  // namespace streambid::stream
