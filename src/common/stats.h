// Copyright 2026 The streambid Authors
// Streaming summary statistics (Welford) used by the bench harness to
// average metrics over workload sets, and by the stream engine's load
// estimator.

#ifndef STREAMBID_COMMON_STATS_H_
#define STREAMBID_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace streambid {

/// Accumulates count / mean / variance / min / max in one pass
/// (numerically stable Welford update).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator (parallel-safe combine).
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Standard error of the mean.
  double sem() const {
    return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average, used for operator cost tracking
/// in the stream engine (alpha = weight of the newest observation).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    STREAMBID_CHECK(alpha > 0.0 && alpha <= 1.0);
  }

  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return initialized_ ? value_ : 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Relative comparison helper for floating-point metrics.
inline bool ApproxEqual(double a, double b, double rel_tol = 1e-9,
                        double abs_tol = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

}  // namespace streambid

#endif  // STREAMBID_COMMON_STATS_H_
