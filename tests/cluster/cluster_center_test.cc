// Copyright 2026 The streambid Authors
// ClusterCenter: sharded periods through the parallel executor must be
// indistinguishable from each shard running alone, and routing policies
// must steer submissions as documented.

#include "cluster/cluster_center.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stream/query_builder.h"
#include "stream/stream_source.h"

namespace streambid::cluster {
namespace {

using stream::CompareOp;
using stream::QueryBuilder;
using stream::QuerySubmission;
using stream::Value;

Status RegisterQuotes(stream::Engine& engine) {
  return engine.RegisterSource(stream::MakeStockQuoteSource(
      "quotes", {"IBM", "AAPL", "MSFT"}, 100.0, 11));
}

QuerySubmission MakeSubmission(int id, auction::UserId user, double bid,
                               double threshold) {
  QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", CompareOp::kGt, Value(threshold));
  QuerySubmission sub;
  sub.query_id = id;
  sub.user = user;
  sub.bid = bid;
  sub.plan = b.Build(sel);
  return sub;
}

ClusterOptions BaseOptions(int num_shards, RoutingPolicy routing) {
  ClusterOptions options;
  options.num_shards = num_shards;
  // 2 capacity units per shard — each distinct select costs ~1 unit, so
  // auctions actually reject (same regime as the DsmsCenter tests).
  options.total_capacity = 2.0 * num_shards;
  options.routing = routing;
  options.mechanism = "cat";
  options.period_length = 5.0;
  options.seed = 21;
  options.engine_options.tick = 1.0;
  options.engine_options.sink_history = 8;
  options.executor_threads = 2;
  return options;
}

TEST(ClusterCenterTest, MergesShardReports) {
  ClusterCenter cluster(BaseOptions(2, RoutingPolicy::kHashUser),
                        RegisterQuotes);
  // Enough tenants that both shards receive submissions.
  for (int id = 1; id <= 8; ++id) {
    const auto shard =
        cluster.Submit(MakeSubmission(id, id, 60.0 - 5.0 * id,
                                      100.0 + 5.0 * (id % 3)));
    ASSERT_TRUE(shard.ok());
    EXPECT_GE(*shard, 0);
    EXPECT_LT(*shard, 2);
  }

  const auto report = cluster.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->period, 0);
  EXPECT_EQ(report->submissions, 8);
  ASSERT_EQ(report->shard_reports.size(), 2u);

  int admitted = 0;
  int submissions = 0;
  double revenue = 0.0;
  for (const cloud::PeriodReport& shard : report->shard_reports) {
    EXPECT_EQ(shard.mechanism, "cat");
    admitted += shard.admitted;
    submissions += shard.submissions;
    revenue += shard.revenue;
  }
  EXPECT_EQ(report->admitted, admitted);
  EXPECT_EQ(report->submissions, submissions);
  EXPECT_DOUBLE_EQ(report->revenue, revenue);
  EXPECT_DOUBLE_EQ(cluster.total_revenue(), revenue);
  EXPECT_GT(report->admitted, 0);
  // Capacity 2 per shard and ~1 unit per distinct select: at least one
  // of the 8 submissions must lose.
  EXPECT_LT(report->admitted, report->submissions);
  EXPECT_GE(report->elapsed_ms, 0.0);
  EXPECT_EQ(cluster.history().size(), 1u);
}

TEST(ClusterCenterTest, ShardsMatchStandaloneCenters) {
  // The acceptance bar for the cluster layer: N shards driven through
  // the parallel executor produce exactly the periods each center would
  // produce on its own.
  const ClusterOptions options = BaseOptions(2, RoutingPolicy::kHashUser);
  ClusterCenter cluster(options, RegisterQuotes);

  // Standalone twins of the two shards: same capacity split, same
  // per-shard seeds, same engine configuration.
  stream::EngineOptions engine_options = options.engine_options;
  engine_options.capacity = options.total_capacity / 2;
  stream::Engine engine_a(engine_options);
  stream::Engine engine_b(engine_options);
  ASSERT_TRUE(RegisterQuotes(engine_a).ok());
  ASSERT_TRUE(RegisterQuotes(engine_b).ok());
  cloud::DsmsCenterOptions center_options;
  center_options.period_length = options.period_length;
  center_options.mechanism = options.mechanism;
  center_options.load_options = options.load_options;
  center_options.seed = options.seed;
  cloud::DsmsCenter center_a(center_options, &engine_a);
  center_options.seed = options.seed + 1;
  cloud::DsmsCenter center_b(center_options, &engine_b);
  cloud::DsmsCenter* standalone[2] = {&center_a, &center_b};

  for (int period = 0; period < 2; ++period) {
    for (int id = 1; id <= 8; ++id) {
      QuerySubmission sub = MakeSubmission(
          id, id, 70.0 - 4.0 * id - period, 100.0 + 5.0 * (id % 3));
      const int shard =
          static_cast<int>(ShardRouter::HashUser(sub.user) % 2ull);
      ASSERT_TRUE(standalone[shard]->Submit(sub).ok());
      const auto routed = cluster.Submit(std::move(sub));
      ASSERT_TRUE(routed.ok());
      ASSERT_EQ(*routed, shard);
    }
    const auto merged = cluster.RunPeriod();
    ASSERT_TRUE(merged.ok());
    for (int s = 0; s < 2; ++s) {
      const auto expected = standalone[s]->RunPeriod();
      ASSERT_TRUE(expected.ok());
      const cloud::PeriodReport& actual =
          merged->shard_reports[static_cast<size_t>(s)];
      EXPECT_EQ(actual.period, expected->period);
      EXPECT_EQ(actual.submissions, expected->submissions);
      EXPECT_EQ(actual.admitted, expected->admitted);
      EXPECT_EQ(actual.admitted_ids, expected->admitted_ids);
      EXPECT_EQ(actual.payments, expected->payments);
      EXPECT_EQ(actual.revenue, expected->revenue);
      EXPECT_EQ(actual.total_payoff, expected->total_payoff);
      EXPECT_EQ(actual.auction_utilization,
                expected->auction_utilization);
      EXPECT_EQ(actual.measured_utilization,
                expected->measured_utilization);
    }
  }
}

TEST(ClusterCenterTest, LeastLoadedBalancesIdenticalTenants) {
  ClusterCenter cluster(BaseOptions(2, RoutingPolicy::kLeastLoaded),
                        RegisterQuotes);
  // Distinct thresholds -> distinct loads per submission, so every
  // submission raises its shard's pending load and the next one goes to
  // the other shard.
  std::vector<int> counts(2, 0);
  for (int id = 1; id <= 6; ++id) {
    const auto shard = cluster.Submit(
        MakeSubmission(id, 1, 30.0, 100.0 + id));
    ASSERT_TRUE(shard.ok());
    ++counts[static_cast<size_t>(*shard)];
  }
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 3);
  const auto& statuses = cluster.shard_statuses();
  EXPECT_EQ(statuses[0].pending_count, 3);
  EXPECT_EQ(statuses[1].pending_count, 3);
  EXPECT_GT(statuses[0].pending_load, 0.0);

  // After the period the pending accumulators reset.
  ASSERT_TRUE(cluster.RunPeriod().ok());
  EXPECT_EQ(cluster.shard_statuses()[0].pending_count, 0);
  EXPECT_DOUBLE_EQ(cluster.shard_statuses()[0].pending_load, 0.0);
}

TEST(ClusterCenterTest, PriceAwareFallsBackToHashThenExplores) {
  ClusterCenter cluster(BaseOptions(2, RoutingPolicy::kPriceAware),
                        RegisterQuotes);
  // Period 0: no history anywhere — routing falls back to hash(user).
  // Pick three users that all hash to the same shard so the other one
  // stays unexplored, and give them distinct ~1-unit selects so the
  // 2-unit auction clears at a positive price.
  std::vector<auction::UserId> users;
  const int hash_shard = static_cast<int>(ShardRouter::HashUser(1) % 2ull);
  for (auction::UserId u = 1; users.size() < 3; ++u) {
    if (static_cast<int>(ShardRouter::HashUser(u) % 2ull) == hash_shard) {
      users.push_back(u);
    }
  }
  for (size_t k = 0; k < users.size(); ++k) {
    const auto shard = cluster.Submit(
        MakeSubmission(static_cast<int>(k) + 1, users[k],
                       50.0 - 10.0 * static_cast<double>(k),
                       105.0 + 5.0 * static_cast<double>(k)));
    ASSERT_TRUE(shard.ok());
    EXPECT_EQ(*shard, hash_shard) << users[k];
  }
  const auto report = cluster.RunPeriod();
  ASSERT_TRUE(report.ok());
  const auto& status =
      cluster.shard_statuses()[static_cast<size_t>(hash_shard)];
  ASSERT_TRUE(status.has_history);
  ASSERT_GT(status.last_clearing_price, 0.0);

  // The other shard never saw traffic: optimistic exploration (price 0)
  // beats the positive clearing price, so every user routes there now.
  for (int id = 10; id <= 13; ++id) {
    const auto shard =
        cluster.Submit(MakeSubmission(id, id, 40.0, 110.0));
    ASSERT_TRUE(shard.ok());
    EXPECT_EQ(*shard, 1 - hash_shard) << id;
  }
}

TEST(ClusterCenterTest, SaturatedShardMarkedInfinitelyExpensive) {
  // Capacity so small nothing fits: the period admits nobody, and the
  // shard's clearing must read as +infinity (saturation), not 0 (free).
  ClusterOptions options = BaseOptions(1, RoutingPolicy::kPriceAware);
  options.total_capacity = 1e-3;
  ClusterCenter cluster(options, RegisterQuotes);
  ASSERT_TRUE(cluster.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  const auto report = cluster.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->admitted, 0);
  const ShardStatus& status = cluster.shard_statuses()[0];
  EXPECT_TRUE(status.has_history);
  EXPECT_TRUE(std::isinf(status.last_clearing_price));
  EXPECT_DOUBLE_EQ(status.last_admission_rate, 0.0);
}

TEST(ClusterCenterTest, EmptyPeriodRunsCleanly) {
  ClusterCenter cluster(BaseOptions(2, RoutingPolicy::kHashUser),
                        RegisterQuotes);
  const auto report = cluster.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->submissions, 0);
  EXPECT_EQ(report->admitted, 0);
  EXPECT_DOUBLE_EQ(report->revenue, 0.0);
  ASSERT_EQ(report->shard_reports.size(), 2u);
  for (int s = 0; s < 2; ++s) {
    EXPECT_DOUBLE_EQ(cluster.shard(s).engine().now(), 5.0);
  }
}

TEST(ClusterCenterTest, SubmitValidationPropagates) {
  ClusterCenter cluster(BaseOptions(2, RoutingPolicy::kHashUser),
                        RegisterQuotes);
  QueryBuilder b;
  const int src = b.Source("no_such_stream");
  QuerySubmission unknown;
  unknown.query_id = 1;
  unknown.user = 1;
  unknown.bid = 5.0;
  unknown.plan = b.Build(src);
  EXPECT_EQ(cluster.Submit(std::move(unknown)).status().code(),
            StatusCode::kNotFound);
}

TEST(ClusterCenterTest, UtilizationWeightedByDivergedCapacities) {
  // Autoscaling with all traffic hashed onto one shard: the idle shard
  // shrinks toward its floor while the busy one holds, so per-shard
  // capacities genuinely diverge — the regression regime for the
  // cluster report's utilization fields.
  ClusterOptions options = BaseOptions(2, RoutingPolicy::kHashUser);
  options.autoscale.enabled = true;
  options.autoscale.min_capacity_ratio = 0.25;
  options.autoscale.min_dwell_periods = 1;
  ClusterCenter cluster(options, RegisterQuotes);

  const int busy_shard =
      static_cast<int>(ShardRouter::HashUser(1) % 2ull);
  std::vector<auction::UserId> users;
  for (auction::UserId u = 1; users.size() < 3; ++u) {
    if (static_cast<int>(ShardRouter::HashUser(u) % 2ull) == busy_shard) {
      users.push_back(u);
    }
  }
  ClusterPeriodReport last;
  for (int period = 0; period < 4; ++period) {
    for (size_t k = 0; k < users.size(); ++k) {
      ASSERT_TRUE(cluster
                      .Submit(MakeSubmission(
                          static_cast<int>(k) + 1, users[k], 40.0,
                          105.0 + 5.0 * static_cast<double>(k)))
                      .ok());
    }
    const auto report = cluster.RunPeriod();
    ASSERT_TRUE(report.ok());
    last = *report;
  }

  // Capacities diverged; the reported utilizations must be the
  // capacity-weighted means over the shard reports, not plain means.
  const cloud::PeriodReport& a = last.shard_reports[0];
  const cloud::PeriodReport& b = last.shard_reports[1];
  ASSERT_NE(a.provisioned_capacity, b.provisioned_capacity);
  const double total = a.provisioned_capacity + b.provisioned_capacity;
  EXPECT_DOUBLE_EQ(last.auction_utilization,
                   (a.auction_utilization * a.provisioned_capacity +
                    b.auction_utilization * b.provisioned_capacity) /
                       total);
  EXPECT_DOUBLE_EQ(last.measured_utilization,
                   (a.measured_utilization * a.provisioned_capacity +
                    b.measured_utilization * b.provisioned_capacity) /
                       total);
  // The plain mean would over-credit the shrunken idle shard: make
  // sure the weighted figure actually differs from it.
  EXPECT_NE(last.measured_utilization,
            (a.measured_utilization + b.measured_utilization) / 2.0);
}

// --- Error paths: a submission the shard rejects must not bias the
// router's view, and a BeginPeriod that cannot reach the executor must
// leave the surface usable. ---

TEST(ClusterCenterTest, FailedSubmitLeavesStatusesUntouched) {
  // Hash routing: user 1 deterministically re-routes to the same
  // shard, so the duplicate below really reaches the pending check.
  ClusterCenter cluster(BaseOptions(2, RoutingPolicy::kHashUser),
                        RegisterQuotes);
  ASSERT_TRUE(cluster.Submit(MakeSubmission(1, 1, 40.0, 105.0)).ok());
  const std::vector<ShardStatus> before = cluster.shard_statuses();

  // Load estimation fails after routing (unknown source)...
  QueryBuilder bad;
  const int src = bad.Source("no_such_stream");
  QuerySubmission unknown;
  unknown.query_id = 2;
  unknown.user = 2;
  unknown.bid = 5.0;
  unknown.plan = bad.Build(src);
  EXPECT_EQ(cluster.Submit(std::move(unknown)).status().code(),
            StatusCode::kNotFound);
  // ...and the shard's own Submit fails after estimation (duplicate
  // pending id routed to the same least-loaded shard as a duplicate).
  EXPECT_EQ(cluster.Submit(MakeSubmission(1, 1, 40.0, 105.0))
                .status()
                .code(),
            StatusCode::kAlreadyExists);

  const std::vector<ShardStatus>& after = cluster.shard_statuses();
  for (size_t s = 0; s < before.size(); ++s) {
    EXPECT_EQ(after[s].pending_count, before[s].pending_count) << s;
    EXPECT_DOUBLE_EQ(after[s].pending_load, before[s].pending_load) << s;
  }
}

TEST(ClusterCenterTest, BeginPeriodAfterShutdownRestoresSurface) {
  ClusterCenter cluster(BaseOptions(2, RoutingPolicy::kHashUser),
                        RegisterQuotes);
  ASSERT_TRUE(cluster.Submit(MakeSubmission(1, 1, 40.0, 105.0)).ok());
  ASSERT_TRUE(cluster.executor().tasks().Shutdown().ok());

  // The chains cannot be submitted: the error surfaces...
  const auto period = cluster.BeginPeriod();
  ASSERT_FALSE(period.ok());
  EXPECT_EQ(period.status().code(), StatusCode::kFailedPrecondition);

  // ...and period_in_flight_ was restored, so the surface still
  // accepts submissions and reports the executor error again (not a
  // bogus "period already in flight").
  EXPECT_TRUE(cluster.Submit(MakeSubmission(2, 2, 30.0, 110.0)).ok());
  const auto again = cluster.BeginPeriod();
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.status().message(), "a period is already in flight");
}

TEST(ClusterCenterTest, SingleShardDegeneratesToOneCenter) {
  ClusterCenter cluster(BaseOptions(1, RoutingPolicy::kLeastLoaded),
                        RegisterQuotes);
  for (int id = 1; id <= 3; ++id) {
    const auto shard =
        cluster.Submit(MakeSubmission(id, id, 50.0 - id, 110.0 + id));
    ASSERT_TRUE(shard.ok());
    EXPECT_EQ(*shard, 0);
  }
  const auto report = cluster.RunPeriod();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->shard_reports.size(), 1u);
  EXPECT_EQ(report->submissions, 3);
}

}  // namespace
}  // namespace streambid::cluster
