// Copyright 2026 The streambid Authors

#include "auction/admitted_set.h"

#include <gtest/gtest.h>

namespace streambid::auction {
namespace {

AuctionInstance SharedPairInstance() {
  // q0 = {op0(4), op1(1)}, q1 = {op0(4), op2(2)}.
  auto r = AuctionInstance::Create(
      {{4.0}, {1.0}, {2.0}}, {{0, 10.0, {0, 1}}, {1, 20.0, {0, 2}}});
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(AdmittedSetTest, RemainingLoadBeforeAnyAdmission) {
  AuctionInstance inst = SharedPairInstance();
  AdmittedSet set(inst);
  EXPECT_DOUBLE_EQ(set.RemainingLoad(0), 5.0);
  EXPECT_DOUBLE_EQ(set.RemainingLoad(1), 6.0);
  EXPECT_DOUBLE_EQ(set.used(), 0.0);
}

TEST(AdmittedSetTest, SharedOperatorCountedOnce) {
  AuctionInstance inst = SharedPairInstance();
  AdmittedSet set(inst);
  EXPECT_DOUBLE_EQ(set.Admit(0), 5.0);
  EXPECT_DOUBLE_EQ(set.used(), 5.0);
  // op0 already admitted: q1 only needs op2.
  EXPECT_DOUBLE_EQ(set.RemainingLoad(1), 2.0);
  EXPECT_DOUBLE_EQ(set.Admit(1), 2.0);
  EXPECT_DOUBLE_EQ(set.used(), 7.0);
}

TEST(AdmittedSetTest, FitsRespectsCapacity) {
  AuctionInstance inst = SharedPairInstance();
  AdmittedSet set(inst);
  EXPECT_TRUE(set.Fits(0, 5.0));
  EXPECT_FALSE(set.Fits(0, 4.9));
  set.Admit(0);
  EXPECT_TRUE(set.Fits(1, 7.0));
  EXPECT_FALSE(set.Fits(1, 6.9));
}

TEST(AdmittedSetTest, ReadmissionIsIdempotent) {
  AuctionInstance inst = SharedPairInstance();
  AdmittedSet set(inst);
  set.Admit(0);
  EXPECT_DOUBLE_EQ(set.Admit(0), 0.0);
  EXPECT_DOUBLE_EQ(set.used(), 5.0);
}

TEST(AdmittedSetTest, OperatorFlags) {
  AuctionInstance inst = SharedPairInstance();
  AdmittedSet set(inst);
  EXPECT_FALSE(set.IsOperatorAdmitted(0));
  set.Admit(0);
  EXPECT_TRUE(set.IsOperatorAdmitted(0));
  EXPECT_TRUE(set.IsOperatorAdmitted(1));
  EXPECT_FALSE(set.IsOperatorAdmitted(2));
}

TEST(AdmittedSetTest, CopyIsIndependent) {
  AuctionInstance inst = SharedPairInstance();
  AdmittedSet a(inst);
  a.Admit(0);
  AdmittedSet b = a;
  b.Admit(1);
  EXPECT_DOUBLE_EQ(a.used(), 5.0);
  EXPECT_DOUBLE_EQ(b.used(), 7.0);
}

TEST(AdmittedSetTest, FitEpsilonForgivesRounding) {
  AuctionInstance inst = SharedPairInstance();
  AdmittedSet set(inst);
  // Exactly-full capacity fits despite floating-point equality.
  EXPECT_TRUE(set.Fits(0, 5.0 + 1e-13));
  EXPECT_TRUE(set.Fits(0, 5.0 - 1e-13));
}

}  // namespace
}  // namespace streambid::auction
