// Copyright 2026 The streambid Authors
// The generic task runtime of the cluster layer: a fixed pool of
// persistent worker threads that runs arbitrary closures, not just
// admission auctions. Each worker owns a WorkerContext — its worker id
// plus its own AdmissionService (and therefore its own AuctionContext
// scratch arena) — so admission work scheduled here still honors the
// "shard one service per thread" rule, while non-admission stages
// (auction preparation, engine execution, billing) share the same pool
// instead of spawning ad-hoc threads.
//
// Determinism contract: the executor adds none of its own randomness.
// A task's result is whatever the closure computes; closures that are
// pure functions of their captures (the admission requests' per-request
// RNG streams, a shard's private state) produce identical results at
// every pool size, placement, and interleaving. That is what lets the
// ClusterCenter pipeline whole periods through this pool and still
// replay byte-identically.
//
// Surfaces:
//  - Submit / TrySubmit -> Ticket<T>: async submission with typed
//    completion handles. Submit blocks for space when the queue is
//    bounded; TrySubmit returns kResourceExhausted instead (the
//    backpressure path).
//  - Poll / Wait (Ticket<T>): completion draining. Tickets are issued
//    once and consumed once; errors inside the closure come back as the
//    ticket's Result<T>.
//  - RunAll: blocking batch fan-out, results positionally aligned; the
//    lowest-index failure is returned (all tasks still run).
//  - Shutdown(): drains every queued task, then stops the workers.
//    Destruction without Shutdown discards queued work (fast teardown).
//  - StatsReport(): per-worker task counts and the queue-depth
//    high-water mark, the observability surface of the generic runtime.

#ifndef STREAMBID_CLUSTER_TASK_EXECUTOR_H_
#define STREAMBID_CLUSTER_TASK_EXECUTOR_H_

#include <any>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "service/admission_service.h"

namespace streambid::telemetry {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace streambid::telemetry

namespace streambid::cluster {

/// Executor configuration.
struct ExecutorOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (at
  /// least 1).
  int num_threads = 0;
  /// Maximum queued (not yet running) tasks; 0 means unbounded. When
  /// the queue is full, Submit/RunAll block for space and TrySubmit
  /// returns kResourceExhausted — the backpressure contract for async
  /// producers.
  int max_queue_depth = 0;
  /// Optional telemetry sink. When set, the executor publishes
  /// executor_tasks_executed / executor_queue_depth /
  /// executor_task_latency, and each worker's AdmissionService records
  /// its per-admission series into the same registry. Null disables all
  /// of it at zero hot-path cost. Must outlive the executor.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Typed completion handle. Tickets are issued once and consumed once:
/// a successful Poll/Wait removes the result, and the T parameter binds
/// the handle to its task's result type at compile time.
template <typename T>
struct Ticket {
  uint64_t id = 0;
};

/// Worker-local state handed to every task. The service is owned by the
/// worker (one per thread, never shared), so tasks may run admission
/// auctions on it without synchronization — but must not stash the
/// pointer beyond the task's own execution.
struct WorkerContext {
  int worker_id = 0;
  service::AdmissionService* service = nullptr;
};

/// Snapshot returned by TaskExecutor::StatsReport().
struct TaskExecutorStats {
  /// Tasks accepted into the queue (async submissions + batch items).
  int64_t submitted = 0;
  /// Tasks a worker finished executing (sum of tasks_per_worker).
  int64_t executed = 0;
  /// Executed tasks whose closure returned an error Result.
  int64_t failed = 0;
  /// Highest queued-task count observed at submission time. Against a
  /// bounded queue this approaches max_queue_depth under backpressure;
  /// unbounded, it shows how deep async producers actually run ahead.
  int64_t queue_high_water = 0;
  /// Tasks executed per worker, indexed by worker id. The vector length
  /// is always num_threads(): work landing anywhere else than these
  /// workers is structurally impossible, which is the "no threads
  /// outside the pool" observability hook the cluster tests assert.
  std::vector<int64_t> tasks_per_worker;
};

/// Thread-pool task runtime. Thread-safe: any thread may submit tasks
/// and poll tickets concurrently. Tasks themselves may submit further
/// tasks, but from inside a task use TrySubmit and never block on the
/// pool: a task Wait()ing on a ticket of the same executor — or a
/// blocking Submit against a full bounded queue, which parks the
/// worker that would have drained it — can deadlock the pool. Shutdown
/// and destruction must happen-after every concurrent
/// Submit/Poll/Wait/RunAll call has returned.
class TaskExecutor {
 public:
  /// A unit of work: runs on some worker, sees that worker's context,
  /// reports success or failure through Result<T>. T must be movable
  /// and copy-constructible (results travel through the type-erased
  /// completion slot).
  template <typename T>
  using Task = std::function<Result<T>(WorkerContext&)>;

  explicit TaskExecutor(const ExecutorOptions& options = {});
  /// Discards queued work (running tasks finish) and completes every
  /// unconsumed ticket with kFailedPrecondition so a straggling Wait
  /// unblocks. For a drained teardown call Shutdown() first.
  ~TaskExecutor();

  TaskExecutor(const TaskExecutor&) = delete;
  TaskExecutor& operator=(const TaskExecutor&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Worker w's admission service — exposed so facades can validate
  /// requests against the same registry the workers execute with.
  /// Const registry reads (Validate, HasMechanism, MechanismNames) are
  /// safe concurrently with tasks running on worker w; anything that
  /// can touch the service's mutable state (Admit and friends, which
  /// reuse the AuctionContext scratch) must not race them.
  service::AdmissionService& worker_service(int worker_id) {
    return *services_[static_cast<size_t>(worker_id)];
  }
  const service::AdmissionService& worker_service(int worker_id) const {
    return *services_[static_cast<size_t>(worker_id)];
  }

  /// Queues `task`; the returned ticket completes on some worker. When
  /// the queue is bounded and full, blocks until space frees up.
  /// kFailedPrecondition after Shutdown.
  template <typename T>
  Result<Ticket<T>> Submit(Task<T> task) {
    STREAMBID_ASSIGN_OR_RETURN(
        const uint64_t id,
        SubmitErased(Erase<T>(std::move(task)), /*blocking=*/true));
    return Ticket<T>{id};
  }

  /// Non-blocking Submit: kResourceExhausted when the bounded queue is
  /// full, so async producers get backpressure instead of unbounded
  /// deque growth.
  template <typename T>
  Result<Ticket<T>> TrySubmit(Task<T> task) {
    STREAMBID_ASSIGN_OR_RETURN(
        const uint64_t id,
        SubmitErased(Erase<T>(std::move(task)), /*blocking=*/false));
    return Ticket<T>{id};
  }

  /// Non-blocking completion check: empty while the ticket is still
  /// queued or running; otherwise the result (or the closure's error),
  /// which is removed — a second Poll of the same ticket is kNotFound.
  template <typename T>
  std::optional<Result<T>> Poll(Ticket<T> ticket) {
    std::optional<Result<std::any>> erased = PollErased(ticket.id);
    if (!erased.has_value()) return std::nullopt;
    return Unerase<T>(std::move(*erased));
  }

  /// Blocks until the ticket completes and returns its result (removing
  /// it, as Poll does). kNotFound for never-issued or already-consumed
  /// tickets. Never hangs across Shutdown (drained results stay
  /// available) or destruction (pending tickets error out).
  template <typename T>
  Result<T> Wait(Ticket<T> ticket) {
    return Unerase<T>(WaitErased(ticket.id));
  }

  /// Runs every task and blocks until all finish; results are
  /// positionally aligned with the tasks. All tasks run even when some
  /// fail; the lowest-index failure is returned. Must be called from
  /// outside the pool.
  template <typename T>
  Result<std::vector<T>> RunAll(std::vector<Task<T>> tasks) {
    std::vector<ErasedTask> erased;
    erased.reserve(tasks.size());
    for (Task<T>& task : tasks) {
      erased.push_back(Erase<T>(std::move(task)));
    }
    STREAMBID_ASSIGN_OR_RETURN(std::vector<Result<std::any>> results,
                               RunAllErased(std::move(erased)));
    std::vector<T> out;
    out.reserve(results.size());
    for (Result<std::any>& result : results) {
      STREAMBID_ASSIGN_OR_RETURN(T value, Unerase<T>(std::move(result)));
      out.push_back(std::move(value));
    }
    return out;
  }

  /// Re-bounds the queue at runtime; the admission gate's throughput
  /// probe calls this to keep executor backlog proportional to the
  /// concurrency it has measured the system can absorb. `depth` 0 means
  /// unbounded; negative is kInvalidArgument. Thread-safe: growing (or
  /// unbounding) wakes producers blocked in Submit/RunAll; shrinking
  /// below the current backlog never drops queued tasks — the queue
  /// just refuses new pushes until workers drain it under the new cap.
  Status SetMaxQueueDepth(int depth);

  /// Current queue bound (0 = unbounded).
  int max_queue_depth() const;

  /// Drains the queue (every already-submitted task runs to completion)
  /// and joins the workers. Unconsumed tickets stay pollable afterwards;
  /// new submissions fail with kFailedPrecondition. A second Shutdown is
  /// kFailedPrecondition. Must not race in-flight RunAll calls.
  Status Shutdown();

  /// Outstanding (submitted, not yet consumed) tickets.
  int pending_tasks() const;

  /// Copies the generic runtime counters accumulated so far.
  TaskExecutorStats StatsReport() const;

  /// Clears the counters (benches reset between phases).
  void ResetStats();

 private:
  using ErasedResult = Result<std::any>;
  using ErasedTask = std::function<ErasedResult(WorkerContext&)>;

  /// Shared state of one RunAll call. Results are collected
  /// positionally; the submitting thread waits on done_cv_ until
  /// `remaining` drains.
  struct BatchJob {
    std::vector<std::optional<ErasedResult>> results;
    size_t remaining = 0;
  };
  /// One queued unit: an async ticket or one index of a batch job.
  struct WorkItem {
    ErasedTask task;
    uint64_t ticket = 0;      ///< Valid when job == nullptr.
    BatchJob* job = nullptr;  ///< Valid for batch items.
    size_t index = 0;         ///< Position within the batch.
  };

  /// Wraps a typed task so the queue can hold it: the value travels as
  /// std::any, the error as the task's own Status.
  template <typename T>
  static ErasedTask Erase(Task<T> task) {
    return [task = std::move(task)](WorkerContext& context) -> ErasedResult {
      Result<T> result = task(context);
      if (!result.ok()) return result.status();
      return std::any(std::move(result).value());
    };
  }

  /// Recovers the typed result. A Ticket<T> can only be minted by
  /// Submit<T>, so the cast matches by construction; a mismatch (a
  /// forged ticket id reused across types) is reported as kInternal
  /// rather than thrown.
  template <typename T>
  static Result<T> Unerase(ErasedResult erased) {
    if (!erased.ok()) return erased.status();
    std::any value = std::move(erased).value();
    T* typed = std::any_cast<T>(&value);
    if (typed == nullptr) {
      return Status::Internal("ticket result type mismatch");
    }
    return std::move(*typed);
  }

  Result<uint64_t> SubmitErased(ErasedTask task, bool blocking);
  std::optional<ErasedResult> PollErased(uint64_t ticket);
  ErasedResult WaitErased(uint64_t ticket);
  Result<std::vector<ErasedResult>> RunAllErased(
      std::vector<ErasedTask> tasks);
  void WorkerLoop(int worker_id);
  /// Precondition: `lock` holds mutex_. Waits (or fails, when
  /// non-blocking) until the bounded queue has room and the executor is
  /// accepting work; on OK the caller may push exactly one item.
  Status ReserveSlotLocked(std::unique_lock<std::mutex>& lock,
                           bool blocking);
  /// Precondition: mutex_ held and a slot reserved. Pushes one item and
  /// maintains the submission counters.
  void PushLocked(WorkItem item);

  std::vector<std::unique_ptr<service::AdmissionService>> services_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< Signals queued work / teardown.
  std::condition_variable done_cv_;   ///< Signals completions.
  std::condition_variable space_cv_;  ///< Signals queue space freed.
  std::deque<WorkItem> queue_;
  uint64_t next_ticket_ = 1;
  /// Issued-but-unconsumed tickets; presence without a result means
  /// queued or running.
  std::unordered_map<uint64_t, std::optional<ErasedResult>> tickets_;
  size_t max_queue_depth_ = 0;  ///< 0 = unbounded.
  bool stopping_ = false;       ///< Destructor: discard queued work.
  bool draining_ = false;       ///< Shutdown(): run queued work, then stop.
  bool shutdown_called_ = false;

  int64_t submitted_ = 0;          ///< Guarded by mutex_.
  int64_t queue_high_water_ = 0;   ///< Guarded by mutex_.
  /// Telemetry instruments; all null when ExecutorOptions::metrics is.
  telemetry::Counter* tasks_executed_metric_ = nullptr;
  telemetry::Gauge* queue_depth_metric_ = nullptr;
  telemetry::Histogram* task_latency_metric_ = nullptr;
  /// Execution counters are per worker and atomic so the hot path never
  /// takes the queue lock to account a finished task.
  struct WorkerCounters {
    std::atomic<int64_t> executed{0};
    std::atomic<int64_t> failed{0};
  };
  std::vector<std::unique_ptr<WorkerCounters>> counters_;
};

}  // namespace streambid::cluster

#endif  // STREAMBID_CLUSTER_TASK_EXECUTOR_H_
