// Copyright 2026 The streambid Authors
// Bounded Zipf distribution sampler. The paper's workload (Table III) draws
// bids, operator loads, and operator degrees of sharing from Zipf
// distributions parameterized by a maximum value and a skew (theta).

#ifndef STREAMBID_COMMON_ZIPF_H_
#define STREAMBID_COMMON_ZIPF_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace streambid {

/// Samples integers v in {1, ..., max_value} with P(v) proportional to
/// 1 / v^theta. theta = 0 is uniform; larger theta skews mass toward 1.
///
/// Uses a precomputed CDF with binary search: O(max) setup, O(log max) per
/// sample. Our maxima (10, 60, 100) make this both exact and fast.
class ZipfDistribution {
 public:
  ZipfDistribution(int max_value, double theta)
      : max_value_(max_value), theta_(theta) {
    STREAMBID_CHECK_GE(max_value, 1);
    STREAMBID_CHECK_GE(theta, 0.0);
    cdf_.resize(static_cast<size_t>(max_value));
    double sum = 0.0;
    for (int v = 1; v <= max_value; ++v) {
      sum += 1.0 / std::pow(static_cast<double>(v), theta);
      cdf_[static_cast<size_t>(v - 1)] = sum;
    }
    const double total = sum;
    for (auto& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // Guard against floating-point shortfall.
  }

  /// Draws one sample in [1, max_value].
  int Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // First index whose CDF weakly exceeds u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(lo) + 1;
  }

  /// Exact probability mass of value v.
  double Pmf(int v) const {
    STREAMBID_CHECK(v >= 1 && v <= max_value_);
    const double prev = (v == 1) ? 0.0 : cdf_[static_cast<size_t>(v - 2)];
    return cdf_[static_cast<size_t>(v - 1)] - prev;
  }

  /// Exact mean of the distribution.
  double Mean() const {
    double m = 0.0;
    for (int v = 1; v <= max_value_; ++v) {
      m += v * Pmf(v);
    }
    return m;
  }

  int max_value() const { return max_value_; }
  double theta() const { return theta_; }

 private:
  int max_value_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace streambid

#endif  // STREAMBID_COMMON_ZIPF_H_
