#!/usr/bin/env python3
# Copyright 2026 The streambid Authors
"""Determinism linter for the streambid tree.

The repo's determinism contract (ROADMAP.md): every admission, routing,
and scaling decision is a pure function of (history, seed), replays
byte-identical at any executor pool size. This scanner bans the C++
constructs that silently break that contract:

  random-device        std::random_device, rand(), srand() -- ambient
                       entropy instead of the seeded per-request RNG
                       streams.
  time-seed            seeding an RNG from a clock (mt19937(time(0)),
                       seed(now().count()), ...).
  wall-clock           wall-clock reads (system_clock, steady_clock::now,
                       high_resolution_clock, time(nullptr),
                       clock_gettime, gettimeofday) outside the
                       allowlisted timer/trace paths. Timing annotations
                       belong in common/timer.h's Timer; decisions never
                       read the clock.
  unordered-iteration  range-for over a std::unordered_map/unordered_set
                       (including aliases and accessors returning one):
                       iteration order is nondeterministic, so anything
                       folded from it in order-sensitive ways diverges
                       across runs. Sort first, use std::map, or suppress
                       with a reason stating why order cannot matter.
  raw-thread           spawning std::thread outside the TaskExecutor:
                       ad-hoc threads bypass the pool's deterministic
                       submission order and drain barriers.
  naked-new            naked new/delete in the hot-path directories
                       (cluster/, gate/, telemetry/, common/): the hot
                       path is allocation-free by contract; ownership
                       goes through make_unique or a same-line
                       unique_ptr/shared_ptr wrap.
  bare-suppression     a NOLINT(determinism) without a reason. Every
                       suppression must say WHY the construct is safe:
                       "// NOLINT(determinism): <reason>".

Rules match per logical statement, not per physical line: lines are
joined until a ';', '{', or '}' terminator (or a blank/comment-only
boundary), so a clock-seeded RNG split across lines is caught by the
specific time-seed rule rather than the generic wall-clock rule, and a
unique_ptr wrap whose `new` sits on a continuation line is recognized
as wrapped. Findings anchor at the line where the match starts.

Suppression: append "// NOLINT(determinism): <reason>" to any line of
the flagged statement. The reason is mandatory; a bare
NOLINT(determinism) is itself a finding.

Usage:
  determinism_lint.py [--root REPO_ROOT]   # scan src/, exit 1 on findings
  determinism_lint.py --self-test          # run against the fixtures

Self-test: fixture files under tools/lint/fixtures/determinism/ mark
each expected finding with "// WANT(<rule>)" on the offending line;
--self-test scans the fixtures and asserts the finding set matches the
markers exactly.

No third-party dependencies; Python 3.8+ stdlib only.
"""

import argparse
import os
import re
import sys
from typing import Dict, List, Optional, Set, Tuple

Finding = Tuple[str, int, str, str]  # (relpath, line, rule, message)

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------


class Config:
    """Which paths are scanned and which are exempt from which rules.

    Paths are repo-relative with forward slashes.
    """

    def __init__(self, scan_roots, wall_clock_allowlist, raw_thread_allowlist,
                 naked_new_scope):
        self.scan_roots = scan_roots
        self.wall_clock_allowlist = wall_clock_allowlist
        self.raw_thread_allowlist = raw_thread_allowlist
        self.naked_new_scope = naked_new_scope

    @staticmethod
    def for_src():
        return Config(
            scan_roots=["src"],
            # The sanctioned stopwatch: Timer wraps steady_clock for
            # latency annotations that never feed a decision.
            wall_clock_allowlist={"src/common/timer.h"},
            # The pool itself owns its worker threads; cpu.cc only reads
            # hardware_concurrency (no spawn), listed for robustness.
            raw_thread_allowlist={
                "src/cluster/task_executor.h",
                "src/cluster/task_executor.cc",
                "src/common/cpu.cc",
            },
            naked_new_scope=(
                "src/cluster/",
                "src/gate/",
                "src/telemetry/",
                "src/common/",
            ),
        )

    @staticmethod
    def for_fixtures():
        return Config(
            scan_roots=["tools/lint/fixtures/determinism"],
            wall_clock_allowlist={
                "tools/lint/fixtures/determinism/allowlisted_clock.cc"},
            raw_thread_allowlist={
                "tools/lint/fixtures/determinism/allowlisted_thread.cc"},
            naked_new_scope=("tools/lint/fixtures/determinism/",),
        )


# --------------------------------------------------------------------------
# Source text preparation
# --------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals, and char literals.

    Every replaced character becomes a space (newlines are kept), so
    offsets and line numbers in the stripped text match the original.
    Raw strings (R"...") are treated as ordinary strings; the delimiter
    forms used in this repo do not contain quotes.
    """
    out = list(text)
    i = 0
    n = len(text)
    CODE, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = CODE
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == CODE:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = STRING
                out[i] = " "
                i += 1
                continue
            if c == "'":
                # Distinguish char literals from digit separators (1'000).
                if i > 0 and text[i - 1].isalnum():
                    i += 1
                    continue
                state = CHAR
                out[i] = " "
                i += 1
                continue
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = CODE
            else:
                out[i] = " "
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = CODE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        elif state == STRING:
            if c == "\\":
                out[i] = " "
                if nxt and nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == '"' or c == "\n":
                state = CODE
            if c != "\n":
                out[i] = " "
            i += 1
        else:  # CHAR
            if c == "\\":
                out[i] = " "
                if nxt and nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == "'" or c == "\n":
                state = CODE
            if c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Pass 1: unordered-container symbol table
# --------------------------------------------------------------------------

UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:std::\s*)?unordered_(?:map|set)\s*<")


def _balanced_angle_end(text: str, open_index: int) -> Optional[int]:
    """Index just past the '>' matching the '<' at open_index."""
    depth = 0
    i = open_index
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            # Ignore '->' (operator arrow) inside template args.
            if i > 0 and text[i - 1] == "-":
                i += 1
                continue
            depth -= 1
            if depth == 0:
                return i + 1
        elif c == ";":
            return None  # unbalanced: not a template use after all
        i += 1
    return None


NAME_AFTER_TYPE_RE = re.compile(r"\s*(?:const\s+)?[&*]?\s*(\w+)\s*([;={(,)\[]|$)")


class UnorderedSymbols:
    """Names known to denote unordered containers across the file set."""

    def __init__(self):
        self.variables: Set[str] = set()
        self.accessors: Set[str] = set()
        self.aliases: Set[str] = set()

    def collect(self, stripped: str) -> None:
        for m in ALIAS_RE.finditer(stripped):
            self.aliases.add(m.group(1))
        for m in UNORDERED_TYPE_RE.finditer(stripped):
            end = _balanced_angle_end(stripped, m.end() - 1)
            if end is None:
                continue
            self._record_declared_name(stripped, end)

    def collect_alias_uses(self, stripped: str) -> None:
        for alias in self.aliases:
            for m in re.finditer(r"\b" + re.escape(alias) + r"\b", stripped):
                self._record_declared_name(stripped, m.end())

    def _record_declared_name(self, stripped: str, end: int) -> None:
        m = NAME_AFTER_TYPE_RE.match(stripped, end)
        if m is None:
            return
        name, delim = m.group(1), m.group(2)
        if delim == "(":
            self.accessors.add(name)
        elif delim != "," and delim != ")":
            # Skip template-argument and call-argument positions.
            self.variables.add(name)
        else:
            # A parameter declaration: "const PlacementOverrides& overrides)"
            # still introduces an unordered-typed name in the function body.
            self.variables.add(name)


# --------------------------------------------------------------------------
# Range-for extraction
# --------------------------------------------------------------------------


def find_range_fors(stripped: str):
    """Yields (offset, sequence_expression) for each range-based for."""
    for m in re.finditer(r"\bfor\s*\(", stripped):
        start = m.end() - 1
        depth = 0
        i = start
        n = len(stripped)
        while i < n:
            c = stripped[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        header = stripped[start + 1:i]
        if ";" in header:
            continue  # classic for loop
        colon = _top_level_colon(header)
        if colon < 0:
            continue
        yield m.start(), header[colon + 1:].strip()


def _top_level_colon(header: str) -> int:
    depth = 0
    j = 0
    n = len(header)
    while j < n:
        c = header[j]
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        elif c == ":" and depth == 0:
            if j + 1 < n and header[j + 1] == ":":
                j += 2
                continue
            return j
        j += 1
    return -1


SEQ_VAR_RE = re.compile(r"(\w+)$")
SEQ_CALL_RE = re.compile(r"(\w+)\s*\(\s*\)$")


def sequence_symbol(seq: str) -> Optional[Tuple[str, str]]:
    """Resolves a range-for sequence expression to ('var'|'call', name)."""
    seq = seq.strip()
    m = SEQ_CALL_RE.search(seq)
    if m is not None:
        return ("call", m.group(1))
    m = SEQ_VAR_RE.search(seq)
    if m is not None and re.fullmatch(r"[\w.\->:]+", seq.replace(" ", "")):
        return ("var", m.group(1))
    return None


# --------------------------------------------------------------------------
# Line rules
# --------------------------------------------------------------------------

RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b|\bs?rand\s*\(")
TIME_SEED_RE = re.compile(
    r"(?:mt19937|minstd_rand|ranlux\w*|knuth_b|default_random_engine|"
    r"\.seed\s*\()[^;]*(?:::now\s*\(|(?<![\w:])time\s*\()")
WALL_CLOCK_RE = re.compile(
    r"\bsystem_clock\b|\bsteady_clock\s*::\s*now\b|"
    r"\bhigh_resolution_clock\b|\bgettimeofday\s*\(|\bclock_gettime\s*\(|"
    r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)")
RAW_THREAD_RE = re.compile(r"\bstd\s*::\s*thread\b\s*(?!::)")
NEW_RE = re.compile(r"(?<![\w:])new\b(?!\s*\()")  # new ( is placement new
DELETE_RE = re.compile(r"\bdelete\b(?:\s*\[\s*\])?")
SMART_PTR_WRAP_RE = re.compile(
    r"(?:unique_ptr|shared_ptr)\s*<[^<>;]*(?:<[^<>;]*>)?[^<>;]*>\s*\(\s*$")

NOLINT_RE = re.compile(r"//\s*NOLINT\(determinism\)")
NOLINT_WITH_REASON_RE = re.compile(r"//\s*NOLINT\(determinism\)\s*:\s*\S")
WANT_RE = re.compile(r"//.*?\bWANT\(([\w-]+)\)")

MESSAGES = {
    "random-device":
        "ambient entropy (random_device/rand/srand); use the seeded "
        "per-request RNG streams (common/random.h)",
    "time-seed":
        "RNG seeded from a clock; seeds must come from the workload "
        "config so replays are byte-identical",
    "wall-clock":
        "wall-clock read outside the allowlisted timer/trace paths; "
        "decisions are pure functions of (history, seed) -- use logical "
        "time, or common/timer.h Timer for latency annotations",
    "unordered-iteration":
        "iteration over an unordered container; order is "
        "nondeterministic. Sort first, use std::map, or suppress with a "
        "reason stating why order cannot matter",
    "raw-thread":
        "raw std::thread outside TaskExecutor; pool submission keeps "
        "execution replay-deterministic and drain-safe",
    "naked-new":
        "naked new/delete on the hot path; use std::make_unique or a "
        "same-line unique_ptr/shared_ptr wrap",
    "bare-suppression":
        "NOLINT(determinism) without a reason; write "
        "'// NOLINT(determinism): <why this is safe>'",
}


def split_statements(stripped_lines: List[str]):
    """Groups physical lines into logical statements.

    Yields (first_line, text) with 1-based first_line and the joined
    (newline-preserving) statement text. A statement closes at a line
    whose code ends with ';', '{', or '}', or at a blank/comment-only
    line (already spaces in the stripped text). Preprocessor directives
    (with backslash continuations) are boundaries, never joined -- an
    #include must not glue onto the statement after it.
    """
    buf: List[str] = []
    buf_start = 0
    in_directive = False
    for idx, line in enumerate(stripped_lines, start=1):
        if in_directive:
            in_directive = line.rstrip().endswith("\\")
            continue
        if line.lstrip().startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            if buf:
                yield buf_start, "\n".join(buf)
                buf = []
            continue
        if not buf:
            buf_start = idx
        buf.append(line)
        code = line.rstrip()
        if not code or code[-1] in ";{}":
            yield buf_start, "\n".join(buf)
            buf = []
    if buf:
        yield buf_start, "\n".join(buf)


def scan_file(relpath: str, raw: str, stripped: str, config: Config,
              symbols: UnorderedSymbols) -> List[Finding]:
    raw_lines = raw.split("\n")
    stripped_lines = stripped.split("\n")
    # rule -> set of 1-based line numbers with a candidate finding
    candidates: Dict[int, Set[str]] = {}
    # line -> (first, last) line span of the statement that produced the
    # candidate, so a NOLINT anywhere on the statement suppresses it.
    spans: Dict[int, Tuple[int, int]] = {}

    def add(line_no: int, rule: str, first: int, last: int) -> None:
        candidates.setdefault(line_no, set()).add(rule)
        old = spans.get(line_no, (line_no, line_no))
        spans[line_no] = (min(old[0], first), max(old[1], last))

    in_naked_new_scope = any(
        relpath.startswith(prefix) for prefix in config.naked_new_scope)

    for first, text in split_statements(stripped_lines):
        last = first + text.count("\n")

        def line_of(offset: int, base: int = first, body: str = text) -> int:
            return base + body.count("\n", 0, offset)

        for m in RANDOM_DEVICE_RE.finditer(text):
            add(line_of(m.start()), "random-device", first, last)
        seeded = False
        for m in TIME_SEED_RE.finditer(text):
            add(line_of(m.start()), "time-seed", first, last)
            seeded = True
        # The statement-level counterpart of the old per-line elif: a
        # clock read that feeds a seed is the seed finding, wherever the
        # line break falls within the statement.
        if not seeded and relpath not in config.wall_clock_allowlist:
            for m in WALL_CLOCK_RE.finditer(text):
                add(line_of(m.start()), "wall-clock", first, last)
        if relpath not in config.raw_thread_allowlist:
            for m in RAW_THREAD_RE.finditer(text):
                add(line_of(m.start()), "raw-thread", first, last)
        if in_naked_new_scope:
            for m in NEW_RE.finditer(text):
                # The wrap check sees the whole statement prefix, so
                # "unique_ptr<T> p(\n    new T)" counts as wrapped.
                if not SMART_PTR_WRAP_RE.search(text[:m.start()]):
                    add(line_of(m.start()), "naked-new", first, last)
            for m in DELETE_RE.finditer(text):
                prefix = text[:m.start()]
                if re.search(r"=\s*$", prefix):
                    continue  # deleted special member: "... = delete;"
                add(line_of(m.start()), "naked-new", first, last)

    # Unordered iteration: offsets -> line numbers via newline counting.
    for offset, seq in find_range_fors(stripped):
        symbol = sequence_symbol(seq)
        if symbol is None:
            continue
        kind, name = symbol
        hit = (kind == "var" and name in symbols.variables) or \
              (kind == "call" and name in symbols.accessors)
        if hit:
            line_no = stripped.count("\n", 0, offset) + 1
            add(line_no, "unordered-iteration", line_no, line_no)

    findings: List[Finding] = []
    for line_no, rules in sorted(candidates.items()):
        first, last = spans[line_no]
        span = raw_lines[first - 1:min(last, len(raw_lines))]
        if any(NOLINT_RE.search(raw_line) for raw_line in span):
            continue  # suppressed; reason checked below for every NOLINT
        for rule in sorted(rules):
            findings.append((relpath, line_no, rule, MESSAGES[rule]))

    # Suppression hygiene runs on raw lines (NOLINT lives in comments).
    for idx, raw_line in enumerate(raw_lines, start=1):
        if NOLINT_RE.search(raw_line) and \
                not NOLINT_WITH_REASON_RE.search(raw_line):
            findings.append(
                (relpath, idx, "bare-suppression", MESSAGES["bare-suppression"]))

    findings.sort(key=lambda f: (f[0], f[1], f[2]))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def iter_source_files(root: str, config: Config):
    for scan_root in config.scan_roots:
        base = os.path.join(root, scan_root)
        for dirpath, _, filenames in os.walk(base):
            for filename in sorted(filenames):
                if filename.endswith((".h", ".cc", ".cpp", ".hpp")):
                    path = os.path.join(dirpath, filename)
                    rel = os.path.relpath(path, root).replace(os.sep, "/")
                    yield rel, path


def run_scan(root: str, config: Config) -> List[Finding]:
    files: List[Tuple[str, str, str]] = []  # (rel, raw, stripped)
    symbols = UnorderedSymbols()
    for rel, path in iter_source_files(root, config):
        with open(path, "r", encoding="utf-8") as f:
            raw = f.read()
        stripped = strip_comments_and_strings(raw)
        files.append((rel, raw, stripped))
        symbols.collect(stripped)
    for _, _, stripped in files:
        symbols.collect_alias_uses(stripped)

    findings: List[Finding] = []
    for rel, raw, stripped in files:
        findings.extend(scan_file(rel, raw, stripped, config, symbols))
    return findings


def self_test(root: str) -> int:
    config = Config.for_fixtures()
    expected: Set[Tuple[str, int, str]] = set()
    for rel, path in iter_source_files(root, config):
        with open(path, "r", encoding="utf-8") as f:
            for idx, line in enumerate(f, start=1):
                for m in WANT_RE.finditer(line):
                    expected.add((rel, idx, m.group(1)))
    if not expected:
        print("determinism_lint self-test: no WANT markers found under "
              "tools/lint/fixtures -- fixtures missing?")
        return 2

    actual = {(rel, line, rule) for rel, line, rule, _ in
              run_scan(root, config)}
    missing = sorted(expected - actual)
    unexpected = sorted(actual - expected)
    for rel, line, rule in missing:
        print(f"MISSING   {rel}:{line}: expected [{rule}] not reported")
    for rel, line, rule in unexpected:
        print(f"SPURIOUS  {rel}:{line}: reported [{rule}] not expected")
    if missing or unexpected:
        print(f"determinism_lint self-test: FAIL "
              f"({len(missing)} missing, {len(unexpected)} spurious)")
        return 1
    print(f"determinism_lint self-test: OK "
          f"({len(expected)} findings matched)")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: two levels up)")
    parser.add_argument("--self-test", action="store_true",
                        help="scan the bundled fixtures and verify the "
                             "finding set against their WANT markers")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(args.root)

    findings = run_scan(args.root, Config.for_src())
    for rel, line, rule, message in findings:
        print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s)")
        return 1
    print("determinism_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
