// Copyright 2026 The streambid Authors

#include "cluster/cluster_center.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "common/check.h"
#include "stream/load_estimator.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace streambid::cluster {

namespace {

ExecutorOptions MakeExecutorOptions(const ClusterOptions& options) {
  ExecutorOptions executor_options;
  executor_options.num_threads = options.executor_threads;
  executor_options.max_queue_depth = options.executor_queue_depth;
  executor_options.steal = options.executor_stealing;
  executor_options.steal_seed = options.executor_steal_seed;
  executor_options.metrics = options.metrics;
  return executor_options;
}

}  // namespace

ClusterCenter::ClusterCenter(const ClusterOptions& options,
                             const EngineConfigurator& configure_engine)
    : options_(options),
      router_(options.routing, options.num_shards),
      rebalancer_(options.rebalance, options.num_shards),
      executor_(MakeExecutorOptions(options)) {
  STREAMBID_CHECK_GE(options.num_shards, 1);
  STREAMBID_CHECK_GT(options.total_capacity, 0.0);

  stream::EngineOptions engine_options = options.engine_options;
  engine_options.capacity =
      options.total_capacity / options.num_shards;

  shards_.reserve(static_cast<size_t>(options.num_shards));
  statuses_.resize(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    Shard shard;
    shard.engine = std::make_unique<stream::Engine>(engine_options);
    if (configure_engine) {
      const Status status = configure_engine(*shard.engine);
      STREAMBID_CHECK(status.ok());
    }
    cloud::DsmsCenterOptions center_options;
    center_options.period_length = options.period_length;
    center_options.mechanism = options.mechanism;
    center_options.load_options = options.load_options;
    // Independent per-shard streams: shard s replays from (seed + s,
    // period) no matter what the other shards do.
    center_options.seed = options.seed + static_cast<uint64_t>(s);
    center_options.autoscale = options.autoscale;
    center_options.metrics = options.metrics;
    center_options.shard_index = s;
    center_options.tracer = options.tracer;
    shard.center = std::make_unique<cloud::DsmsCenter>(center_options,
                                                       shard.engine.get());
    // The router sees each shard's provisioning from the start (the
    // autoscaler may have clamped the baseline into its bounds).
    statuses_[static_cast<size_t>(s)].next_capacity =
        shard.engine->options().capacity;
    shards_.push_back(std::move(shard));
  }
  if (options_.metrics != nullptr) {
    periods_metric_ = options_.metrics->GetCounter("cluster_periods");
    migrated_tenants_metric_ =
        options_.metrics->GetCounter("cluster_migrated_tenants");
  }
}

Result<int> ClusterCenter::Submit(stream::QuerySubmission submission) {
  if (period_in_flight_) {
    return Status::FailedPrecondition(
        "a period is in flight: EndPeriod before Submit");
  }
  const auction::UserId user = submission.user;
  const int s = router_.Route(submission, statuses_, &overrides_);
  Shard& shard = shards_[static_cast<size_t>(s)];
  // Estimate before the submission is moved into the shard: the router's
  // least-loaded policy runs on these pending-load accumulations. Both
  // steps happen before any state change, so a rejected submission
  // leaves the router's view (and the tenant signals) untouched.
  STREAMBID_ASSIGN_OR_RETURN(
      const stream::PlanLoadEstimate estimate,
      stream::EstimatePlanLoad(*shard.engine, submission.plan,
                               options_.load_options));
  STREAMBID_RETURN_IF_ERROR(shard.center->Submit(std::move(submission)));
  ShardStatus& status = statuses_[static_cast<size_t>(s)];
  status.pending_load += estimate.total_load;
  ++status.pending_count;
  // The rebalancer's signal source: where this tenant lives and how
  // much demand it generated this period.
  TenantRecord& record = tenants_[user];
  record.home = s;
  record.period_load += estimate.total_load;
  return s;
}

Result<BatchSubmitOutcome> ClusterCenter::SubmitBatch(
    std::vector<stream::QuerySubmission> batch) {
  if (period_in_flight_) {
    return Status::FailedPrecondition(
        "a period is in flight: EndPeriod before SubmitBatch");
  }
  BatchSubmitOutcome outcome;
  for (stream::QuerySubmission& submission : batch) {
    const Result<int> shard = Submit(std::move(submission));
    if (shard.ok()) {
      ++outcome.accepted;
    } else {
      ++outcome.rejected;
      if (outcome.first_error.ok()) outcome.first_error = shard.status();
    }
  }
  return outcome;
}

Result<cloud::PeriodReport> ClusterCenter::RunShardPeriod(
    int s, uint64_t epoch, WorkerContext& context) {
  cloud::DsmsCenter& center = *shards_[static_cast<size_t>(s)].center;
  // Logical span key: the shard's own period number, fixed before any
  // stage mutates center state.
  const int period = static_cast<int>(center.history().size());
  telemetry::PeriodTracer* tracer = options_.tracer;
  center.set_trace_epoch(epoch);
  // Stage 1: the autoscaled prepare (candidate grid + instance build)
  // — shard-local, so fanning it onto the pool changes no outcome.
  cloud::PreparedAuction prepared;
  {
    telemetry::ScopedSpan span(tracer, telemetry::Phase::kPrepare, period,
                               s, epoch);
    STREAMBID_ASSIGN_OR_RETURN(prepared, center.PrepareAuction());
  }
  // Stage 2: the auction, on this worker's own service. The
  // (seed + shard, period) request stream makes the response identical
  // to any other service running it.
  const service::AdmissionResponse* response = nullptr;
  service::AdmissionResponse admitted;
  if (prepared.has_auction) {
    telemetry::ScopedSpan span(tracer, telemetry::Phase::kAdmit, period, s,
                               epoch);
    STREAMBID_ASSIGN_OR_RETURN(
        admitted, executor_.AdmitOn(context, prepared.request));
    response = &admitted;
  }
  // Stage 3: transition + engine execution + billing.
  telemetry::ScopedSpan span(tracer, telemetry::Phase::kComplete, period, s,
                             epoch);
  return center.CompletePeriod(response);
}

Result<PendingPeriod> ClusterCenter::BeginPeriod() {
  if (period_in_flight_) {
    return Status::FailedPrecondition("a period is already in flight");
  }
  PendingPeriod period;
  period.timer.Start();
  period.shard_tickets.reserve(shards_.size());
  period.owner = this;
  period.epoch = ++period_epoch_;
  period_in_flight_ = true;
  for (int s = 0; s < num_shards(); ++s) {
    const Result<Ticket<cloud::PeriodReport>> ticket =
        executor_.tasks().Submit<cloud::PeriodReport>(
            [this, s, epoch = period.epoch](WorkerContext& context) {
              return RunShardPeriod(s, epoch, context);
            });
    if (!ticket.ok()) {
      // Submission can only fail on a shut-down executor; wait out the
      // chains already in flight so no task outlives this call's view
      // of the cluster, then surface the error.
      for (const Ticket<cloud::PeriodReport> t : period.shard_tickets) {
        (void)executor_.tasks().Wait(t);
      }
      period_in_flight_ = false;
      return ticket.status();
    }
    period.shard_tickets.push_back(*ticket);
  }
  return period;
}

Result<ClusterPeriodReport> ClusterCenter::EndPeriod(
    PendingPeriod& period) {
  if (period.consumed) {
    return Status::FailedPrecondition("period already ended");
  }
  if (!period_in_flight_) {
    return Status::FailedPrecondition("no period is in flight");
  }
  // Identity check before any state changes: a stale copy of an earlier
  // handle, a foreign cluster's handle, or a default-constructed one
  // must not unfreeze the surface while the live period's chains are
  // still running (nor strand the live handle's tickets).
  if (period.owner != this || period.epoch != period_epoch_ ||
      period.shard_tickets.size() != shards_.size()) {
    return Status::FailedPrecondition(
        "period handle does not match this cluster's in-flight period");
  }
  period.consumed = true;
  std::vector<Result<cloud::PeriodReport>> completed;
  completed.reserve(period.shard_tickets.size());
  for (const Ticket<cloud::PeriodReport> ticket : period.shard_tickets) {
    completed.push_back(executor_.tasks().Wait(ticket));
  }
  period_in_flight_ = false;
  return MergeCompleted(std::move(completed), period.timer);
}

Result<ClusterPeriodReport> ClusterCenter::RunPeriod() {
  STREAMBID_ASSIGN_OR_RETURN(PendingPeriod period, BeginPeriod());
  return EndPeriod(period);
}

Result<ClusterPeriodReport> ClusterCenter::RunPeriodBarriered() {
  if (period_in_flight_) {
    return Status::FailedPrecondition("a period is already in flight");
  }
  const int n = num_shards();
  Timer timer;

  // --- Phase 1: every shard builds its auction (serial; with
  // autoscaling this includes the candidate-grid what-if auctions). ---
  std::vector<cloud::PreparedAuction> prepared;
  prepared.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    STREAMBID_ASSIGN_OR_RETURN(
        cloud::PreparedAuction p,
        shards_[static_cast<size_t>(s)].center->PrepareAuction());
    prepared.push_back(std::move(p));
  }

  // --- Phase 2: all shard auctions as one parallel batch. ---
  std::vector<service::AdmissionRequest> requests;
  std::vector<int> owner;  // requests[k] belongs to shard owner[k].
  for (int s = 0; s < n; ++s) {
    if (!prepared[static_cast<size_t>(s)].has_auction) continue;
    requests.push_back(prepared[static_cast<size_t>(s)].request);
    owner.push_back(s);
  }
  STREAMBID_ASSIGN_OR_RETURN(
      const std::vector<service::AdmissionResponse> responses,
      executor_.AdmitBatchParallel(requests));
  std::vector<const service::AdmissionResponse*> response_of(
      static_cast<size_t>(n), nullptr);
  for (size_t k = 0; k < owner.size(); ++k) {
    response_of[static_cast<size_t>(owner[k])] = &responses[k];
  }

  // --- Phase 3: shards complete their periods as pool tasks. Each
  // slot is touched by exactly one task (a shard's engine, ledger, and
  // history are private to it), so the fan-out cannot change any
  // per-shard outcome — and the pool caps the parallelism, so a
  // many-shard cluster does not oversubscribe the machine. ---
  std::vector<Ticket<cloud::PeriodReport>> tickets;
  tickets.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    const service::AdmissionResponse* response =
        response_of[static_cast<size_t>(s)];
    const Result<Ticket<cloud::PeriodReport>> ticket =
        executor_.tasks().Submit<cloud::PeriodReport>(
            [this, s, response](WorkerContext&) {
              return shards_[static_cast<size_t>(s)]
                  .center->CompletePeriod(response);
            });
    if (!ticket.ok()) {
      for (const Ticket<cloud::PeriodReport> t : tickets) {
        (void)executor_.tasks().Wait(t);
      }
      return ticket.status();
    }
    tickets.push_back(*ticket);
  }
  std::vector<Result<cloud::PeriodReport>> completed;
  completed.reserve(static_cast<size_t>(n));
  for (const Ticket<cloud::PeriodReport> ticket : tickets) {
    completed.push_back(executor_.tasks().Wait(ticket));
  }
  return MergeCompleted(std::move(completed), timer);
}

Result<ClusterPeriodReport> ClusterCenter::MergeCompleted(
    std::vector<Result<cloud::PeriodReport>> completed,
    const Timer& timer) {
  const int n = num_shards();

  // --- Refresh the router's view for every shard that completed:
  // pending demand was consumed, and the price-aware policy keys off
  // this period's clearing. This runs before any failure surfaces so a
  // partial failure does not leave stale pending-load bias on the
  // surviving shards (a failed shard itself is unrecoverable — its
  // engine may be mid-transition — matching DsmsCenter::RunPeriod
  // error semantics). ---
  Status first_error;
  for (int s = 0; s < n; ++s) {
    const Result<cloud::PeriodReport>& result =
        completed[static_cast<size_t>(s)];
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    const cloud::PeriodReport& shard_report = *result;
    ShardStatus& status = statuses_[static_cast<size_t>(s)];
    status.pending_load = 0.0;
    status.pending_count = 0;
    // The engine keeps this period's provisioning until the next
    // prepare phase re-decides, so it is the router's best view of the
    // shard's next-period capacity.
    status.next_capacity = shard_report.provisioned_capacity;
    if (shard_report.submissions > 0) {
      status.has_history = true;
      // Admitting nobody means saturation, not free service: mark the
      // clearing infinite so the price-aware policy repels traffic
      // instead of funneling everything into the saturated shard.
      status.last_clearing_price =
          shard_report.admitted > 0
              ? shard_report.revenue / shard_report.admitted
              : std::numeric_limits<double>::infinity();
      status.last_admission_rate =
          static_cast<double>(shard_report.admitted) /
          shard_report.submissions;
    }
  }
  if (!first_error.ok()) return first_error;

  // --- Merge into the cluster view. Utilizations are weighted by each
  // shard's provisioned capacity: once the autoscalers diverge, a
  // plain mean would let a tiny busy shard read like half the cluster
  // (the degenerate zero-total-capacity period falls back to the plain
  // mean so the fields stay defined). ---
  ClusterPeriodReport report;
  report.period = static_cast<int>(history_.size());
  report.shard_reports.reserve(static_cast<size_t>(n));
  double weighted_auction = 0.0;
  double weighted_measured = 0.0;
  for (int s = 0; s < n; ++s) {
    Result<cloud::PeriodReport>& result =
        completed[static_cast<size_t>(s)];
    const cloud::PeriodReport& shard_report = *result;
    report.submissions += shard_report.submissions;
    report.admitted += shard_report.admitted;
    report.revenue += shard_report.revenue;
    report.total_payoff += shard_report.total_payoff;
    weighted_auction +=
        shard_report.auction_utilization * shard_report.provisioned_capacity;
    weighted_measured +=
        shard_report.measured_utilization * shard_report.provisioned_capacity;
    report.auction_utilization += shard_report.auction_utilization / n;
    report.measured_utilization +=
        shard_report.measured_utilization / n;
    report.provisioned_capacity += shard_report.provisioned_capacity;
    report.energy_cost += shard_report.energy_cost;
    report.shard_reports.push_back(std::move(result).value());
  }
  if (report.provisioned_capacity > 0.0) {
    report.auction_utilization =
        weighted_auction / report.provisioned_capacity;
    report.measured_utilization =
        weighted_measured / report.provisioned_capacity;
  }
  report.elapsed_ms = timer.ElapsedMillis();
  history_.push_back(report);
  if (periods_metric_ != nullptr) periods_metric_->Increment();

  // --- Fold the period's tenant activity into the rebalancer signals
  // (per-tenant state only: iteration order cannot matter), then run
  // the rebalance stage against the refreshed router view. ---
  for (auto& [user, record] : tenants_) {  // NOLINT(determinism): order-independent fold -- each tenant's record is updated from its own fields only, no cross-tenant state
    if (record.period_load > 0.0) {
      record.last_load = record.period_load;
      record.last_active_period = report.period;
      record.period_load = 0.0;
    }
  }
  {
    telemetry::ScopedSpan span(options_.tracer,
                               telemetry::Phase::kRebalance, report.period,
                               /*shard=*/-1, period_epoch_);
    STREAMBID_RETURN_IF_ERROR(RebalanceAfterPeriod());
  }
  return report;
}

Status ClusterCenter::RebalanceAfterPeriod() {
  if (!options_.rebalance.enabled || num_shards() < 2) {
    return Status::Ok();
  }
  std::vector<TenantSignal> signals;
  signals.reserve(tenants_.size());
  for (const auto& [user, record] : tenants_) {  // NOLINT(determinism): collection order is irrelevant -- ShardRebalancer::Plan sorts the signals by user id before any decision
    TenantSignal signal;
    signal.user = user;
    signal.home = record.home;
    signal.load = record.last_load;
    signal.last_active_period = record.last_active_period;
    signal.last_moved_period = record.last_moved_period;
    signals.push_back(signal);
  }
  MigrationPlan plan = rebalancer_.Plan(
      static_cast<int>(history_.size()), statuses_,
      history_.back().shard_reports, std::move(signals));
  if (plan.moves.empty()) return Status::Ok();

  // Group the moves by shard so each phase touches a shard from at
  // most one task — parallel tasks never share a center, and the
  // ordered maps keep the fan-out (and thus the replay) deterministic.
  std::map<int, std::vector<const TenantMove*>> by_source;
  std::map<int, std::vector<const TenantMove*>> by_destination;
  for (const TenantMove& move : plan.moves) {
    by_source[move.from].push_back(&move);
    by_destination[move.to].push_back(&move);
  }

  // What one extraction task hands to the adoption phase; the load and
  // count keep the router's pending view consistent when tenants
  // migrate with submissions still queued (between periods both are
  // normally zero — the period just consumed the queue).
  struct Extracted {
    std::vector<cloud::TenantState> states;
    double pending_load = 0.0;
    int pending_count = 0;
  };

  // --- Phase 1: extraction, one task per source shard. ---
  std::vector<int> sources;
  std::vector<TaskExecutor::Task<Extracted>> extract_tasks;
  for (const auto& [from, source_moves] : by_source) {
    sources.push_back(from);
    extract_tasks.push_back(
        [this, from,
         moves = source_moves](WorkerContext&) -> Result<Extracted> {
          Shard& shard = shards_[static_cast<size_t>(from)];
          Extracted extracted;
          for (const TenantMove* move : moves) {
            cloud::TenantState state =
                shard.center->ExtractTenant(move->user);
            for (const stream::QuerySubmission& sub : state.pending) {
              STREAMBID_ASSIGN_OR_RETURN(
                  const stream::PlanLoadEstimate estimate,
                  stream::EstimatePlanLoad(*shard.engine, sub.plan,
                                           options_.load_options));
              extracted.pending_load += estimate.total_load;
              ++extracted.pending_count;
            }
            extracted.states.push_back(std::move(state));
          }
          return extracted;
        });
  }
  STREAMBID_ASSIGN_OR_RETURN(
      std::vector<Extracted> extracted_per_source,
      executor_.tasks().RunAll(std::move(extract_tasks)));

  // Reassemble per destination on the caller's thread.
  std::unordered_map<auction::UserId, cloud::TenantState> state_of;
  for (size_t k = 0; k < sources.size(); ++k) {
    Extracted& extracted = extracted_per_source[k];
    ShardStatus& status = statuses_[static_cast<size_t>(sources[k])];
    status.pending_load =
        std::max(0.0, status.pending_load - extracted.pending_load);
    status.pending_count =
        std::max(0, status.pending_count - extracted.pending_count);
    for (cloud::TenantState& state : extracted.states) {
      state_of[state.user] = std::move(state);
    }
  }

  // --- Phase 2: adoption, one task per destination shard. ---
  struct Adopted {
    double pending_load = 0.0;
    int pending_count = 0;
  };
  std::vector<int> destinations;
  std::vector<TaskExecutor::Task<Adopted>> adopt_tasks;
  for (const auto& [to, moves] : by_destination) {
    // Tasks are std::functions (copyable), so the batch travels behind
    // a shared_ptr rather than by move-capture.
    auto batch = std::make_shared<std::vector<cloud::TenantState>>();
    for (const TenantMove* move : moves) {
      batch->push_back(std::move(state_of[move->user]));
    }
    destinations.push_back(to);
    adopt_tasks.push_back(
        [this, to, batch](WorkerContext&) -> Result<Adopted> {
          Shard& shard = shards_[static_cast<size_t>(to)];
          Adopted adopted;
          for (cloud::TenantState& state : *batch) {
            for (const stream::QuerySubmission& sub : state.pending) {
              STREAMBID_ASSIGN_OR_RETURN(
                  const stream::PlanLoadEstimate estimate,
                  stream::EstimatePlanLoad(*shard.engine, sub.plan,
                                           options_.load_options));
              adopted.pending_load += estimate.total_load;
              ++adopted.pending_count;
            }
            STREAMBID_RETURN_IF_ERROR(shard.center->AdoptTenant(state));
          }
          return adopted;
        });
  }
  STREAMBID_ASSIGN_OR_RETURN(
      std::vector<Adopted> adopted_per_destination,
      executor_.tasks().RunAll(std::move(adopt_tasks)));
  for (size_t k = 0; k < destinations.size(); ++k) {
    ShardStatus& status =
        statuses_[static_cast<size_t>(destinations[k])];
    status.pending_load += adopted_per_destination[k].pending_load;
    status.pending_count += adopted_per_destination[k].pending_count;
  }

  // --- Commit the placement: pin the tenants to their new homes. ---
  for (const TenantMove& move : plan.moves) {
    overrides_[move.user] = move.to;
    TenantRecord& record = tenants_[move.user];
    record.home = move.to;
    record.last_moved_period = plan.period;
  }
  if (migrated_tenants_metric_ != nullptr) {
    migrated_tenants_metric_->Increment(
        static_cast<int64_t>(plan.moves.size()));
  }
  migrations_.push_back(std::move(plan));
  return Status::Ok();
}

double ClusterCenter::total_revenue() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.center->total_revenue();
  }
  return total;
}

}  // namespace streambid::cluster
