// Copyright 2026 The streambid Authors
// A "workload set" in the paper's sense: one seeded base workload plus
// the family of derived instances, one per maximum degree of sharing.

#ifndef STREAMBID_WORKLOAD_WORKLOAD_SET_H_
#define STREAMBID_WORKLOAD_WORKLOAD_SET_H_

#include <map>
#include <vector>

#include "auction/instance.h"
#include "common/rng.h"
#include "workload/params.h"
#include "workload/raw_workload.h"

namespace streambid::workload {

/// One of the paper's 50 workload sets. Construction generates the base
/// (max-sharing) workload from the seed; InstanceAt(s) lazily derives and
/// caches the instance whose maximum degree of sharing is s.
class WorkloadSet {
 public:
  WorkloadSet(const WorkloadParams& params, uint64_t seed);

  /// Truthful auction instance at maximum degree of sharing `s`
  /// (1 <= s <= params.base_max_sharing).
  const auction::AuctionInstance& InstanceAt(int max_degree);

  /// The raw (mutable-form) workload at `s` — used by the lying
  /// transformation and the stream-engine integration.
  const RawWorkload& RawAt(int max_degree);

  const WorkloadParams& params() const { return params_; }
  uint64_t seed() const { return seed_; }

  /// The sharing-degree sweep used by the figures: 1, then multiples of
  /// `step` up to the base maximum (the paper sweeps every degree 1..60;
  /// benches default to a coarser grid for wall-clock sanity).
  static std::vector<int> SharingSweep(int base_max, int step);

 private:
  WorkloadParams params_;
  uint64_t seed_;
  Rng derive_rng_;
  RawWorkload base_;
  std::map<int, RawWorkload> raw_cache_;
  std::map<int, auction::AuctionInstance> instance_cache_;
};

}  // namespace streambid::workload

#endif  // STREAMBID_WORKLOAD_WORKLOAD_SET_H_
