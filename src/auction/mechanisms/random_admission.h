// Copyright 2026 The streambid Authors
// Random admission baseline (paper §VI, Table IV): picks queries in a
// uniformly random order and stops at the first query that does not fit
// in the remaining capacity. Used as a runtime floor; it charges nothing
// (it has no pricing rule in the paper).

#ifndef STREAMBID_AUCTION_MECHANISMS_RANDOM_ADMISSION_H_
#define STREAMBID_AUCTION_MECHANISMS_RANDOM_ADMISSION_H_

#include "auction/mechanism.h"

namespace streambid::auction {

/// Builds the random-admission baseline.
MechanismPtr MakeRandomAdmission();

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_MECHANISMS_RANDOM_ADMISSION_H_
