// Copyright 2026 The streambid Authors
// Name-indexed construction of every mechanism, used by the bench harness
// and examples ("give me caf+, cat, two-price, ...").

#ifndef STREAMBID_AUCTION_REGISTRY_H_
#define STREAMBID_AUCTION_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "auction/mechanism.h"
#include "common/status.h"

namespace streambid::auction {

/// Names of all registered mechanisms, in the paper's presentation order:
/// car, caf, caf+, cat, cat+, gv, two-price, two-price-poly, random,
/// opt-c.
std::vector<std::string> AllMechanismNames();

/// Builds a mechanism by name; kNotFound for unknown names.
Result<MechanismPtr> MakeMechanism(std::string_view name);

/// Builds every mechanism in AllMechanismNames() order.
std::vector<MechanismPtr> MakeAllMechanisms();

/// The five mechanisms plotted in Figure 4 (CAF, CAF+, CAT, CAT+,
/// Two-price) — the paper omits GV and OPT_C "as they echo the behavior
/// of Two-price".
std::vector<MechanismPtr> MakeFigure4Mechanisms();

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_REGISTRY_H_
