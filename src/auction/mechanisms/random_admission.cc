// Copyright 2026 The streambid Authors

#include "auction/mechanisms/random_admission.h"

#include <memory>
#include <string>
#include <vector>

#include "auction/greedy_common.h"

namespace streambid::auction {
namespace {

class RandomAdmission : public Mechanism {
 public:
  const std::string& name() const override {
    static const std::string kName = "random";
    return kName;
  }

  MechanismProperties properties() const override {
    MechanismProperties p;
    p.randomized = true;
    return p;
  }

  Allocation Run(const AuctionInstance& instance, double capacity,
                 AuctionContext& context) const override {
    const int n = instance.num_queries();
    std::vector<QueryId>& order = context.workspace().order;
    order.resize(static_cast<size_t>(n));
    for (QueryId i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
    context.rng().Shuffle(order);
    const GreedyScan scan =
        RunGreedyScan(instance, capacity, order, MisfitPolicy::kStop);
    Allocation alloc = MakeEmptyAllocation("random", capacity, n);
    alloc.admitted = scan.admitted;
    return alloc;  // No pricing rule: payments stay 0.
  }
};

}  // namespace

MechanismPtr MakeRandomAdmission() {
  return std::make_unique<RandomAdmission>();
}

}  // namespace streambid::auction
