// Copyright 2026 The streambid Authors
// Multi-period determinism of the closed autoscaling loop — the PR 2
// identity contract extended to re-provisioning: a DsmsCenter and a
// 4-shard ClusterCenter run 20 autoscaled periods, and the full
// PeriodReport sequence (allocations, payments, provisioning decisions,
// energy) must be identical across repeated runs and across executor
// pool sizes 1/2/8. Provisioning decisions happen in the serial prepare
// phase against each shard's own service, so nothing about the pool may
// leak into them.

#include <gtest/gtest.h>

#include <vector>

#include "cloud/dsms_center.h"
#include "cluster/cluster_center.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

namespace streambid::cluster {
namespace {

constexpr int kPeriods = 20;

Status RegisterQuotes(stream::Engine& engine) {
  return engine.RegisterSource(stream::MakeStockQuoteSource(
      "quotes", {"IBM", "AAPL", "MSFT"}, 100.0, 11));
}

stream::QuerySubmission MakeSubmission(int id, auction::UserId user,
                                       double bid, double threshold) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(threshold));
  stream::QuerySubmission sub;
  sub.query_id = id;
  sub.user = user;
  sub.bid = bid;
  sub.plan = b.Build(sel);
  return sub;
}

/// Bursty tenant count for a period: a deterministic spike every fifth
/// period, a trickle otherwise, and two fully idle periods.
int TenantsFor(int period) {
  if (period == 7 || period == 13) return 0;
  return period % 5 == 0 ? 12 : 3;
}

cloud::AutoscalerOptions AutoscaleOptions() {
  cloud::AutoscalerOptions autoscale;
  autoscale.enabled = true;
  autoscale.min_capacity_ratio = 0.25;
  autoscale.min_dwell_periods = 2;
  return autoscale;
}

void ExpectReportsIdentical(const cloud::PeriodReport& a,
                            const cloud::PeriodReport& b) {
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.mechanism, b.mechanism);
  EXPECT_EQ(a.submissions, b.submissions);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.admitted_ids, b.admitted_ids);
  EXPECT_EQ(a.payments, b.payments);
  // Byte-identical doubles: the loop is deterministic, not just close.
  EXPECT_EQ(a.revenue, b.revenue);
  EXPECT_EQ(a.total_payoff, b.total_payoff);
  EXPECT_EQ(a.auction_utilization, b.auction_utilization);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.shed_fraction, b.shed_fraction);
  EXPECT_EQ(a.provisioned_capacity, b.provisioned_capacity);
  EXPECT_EQ(a.energy_cost, b.energy_cost);
  ASSERT_EQ(a.autoscale_decision.has_value(),
            b.autoscale_decision.has_value());
  if (a.autoscale_decision.has_value()) {
    const cloud::AutoscaleDecision& da = *a.autoscale_decision;
    const cloud::AutoscaleDecision& db = *b.autoscale_decision;
    EXPECT_EQ(da.period, db.period);
    EXPECT_EQ(da.evaluated, db.evaluated);
    EXPECT_EQ(da.changed, db.changed);
    EXPECT_EQ(da.previous_capacity, db.previous_capacity);
    EXPECT_EQ(da.capacity, db.capacity);
    EXPECT_EQ(da.demand_estimate, db.demand_estimate);
    EXPECT_EQ(da.expected_net_profit, db.expected_net_profit);
    EXPECT_EQ(da.reason, db.reason);
  }
}

// --- Single center. ---------------------------------------------------

std::vector<cloud::PeriodReport> RunCenter() {
  stream::Engine engine(stream::EngineOptions{6.0, 1.0, 8});
  EXPECT_TRUE(RegisterQuotes(engine).ok());
  cloud::DsmsCenterOptions options;
  options.mechanism = "cat";
  options.period_length = 5.0;
  options.seed = 31;
  options.autoscale = AutoscaleOptions();
  cloud::DsmsCenter center(options, &engine);
  std::vector<cloud::PeriodReport> reports;
  for (int period = 0; period < kPeriods; ++period) {
    for (int t = 1; t <= TenantsFor(period); ++t) {
      EXPECT_TRUE(center
                      .Submit(MakeSubmission(t, t, 60.0 - 3.0 * t,
                                             100.0 + 5.0 * (t % 4)))
                      .ok());
    }
    const auto report = center.RunPeriod();
    EXPECT_TRUE(report.ok());
    reports.push_back(*report);
  }
  return reports;
}

TEST(AutoscaleReplayTest, CenterReplaysTwentyPeriodsIdentically) {
  const auto first = RunCenter();
  const auto second = RunCenter();
  ASSERT_EQ(first.size(), static_cast<size_t>(kPeriods));
  ASSERT_EQ(second.size(), first.size());
  bool any_change = false;
  for (size_t p = 0; p < first.size(); ++p) {
    ExpectReportsIdentical(first[p], second[p]);
    any_change = any_change || (first[p].autoscale_decision.has_value() &&
                                first[p].autoscale_decision->changed);
  }
  // The run must actually exercise the loop, not hold one capacity.
  EXPECT_TRUE(any_change);
}

// --- 4-shard cluster across executor pool sizes. ----------------------

std::vector<ClusterPeriodReport> RunCluster(int executor_threads) {
  ClusterOptions options;
  options.num_shards = 4;
  options.total_capacity = 8.0;
  options.routing = RoutingPolicy::kHashUser;
  options.mechanism = "cat";
  options.period_length = 5.0;
  options.seed = 47;
  options.engine_options.tick = 1.0;
  options.engine_options.sink_history = 4;
  options.executor_threads = executor_threads;
  options.autoscale = AutoscaleOptions();
  ClusterCenter cluster(options, RegisterQuotes);
  std::vector<ClusterPeriodReport> reports;
  for (int period = 0; period < kPeriods; ++period) {
    for (int t = 1; t <= TenantsFor(period); ++t) {
      EXPECT_TRUE(cluster
                      .Submit(MakeSubmission(t, t, 60.0 - 3.0 * t,
                                             100.0 + 5.0 * (t % 4)))
                      .ok());
    }
    const auto report = cluster.RunPeriod();
    EXPECT_TRUE(report.ok());
    reports.push_back(*report);
  }
  return reports;
}

void ExpectClusterRunsIdentical(
    const std::vector<ClusterPeriodReport>& a,
    const std::vector<ClusterPeriodReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].period, b[p].period);
    EXPECT_EQ(a[p].submissions, b[p].submissions);
    EXPECT_EQ(a[p].admitted, b[p].admitted);
    EXPECT_EQ(a[p].revenue, b[p].revenue);
    EXPECT_EQ(a[p].total_payoff, b[p].total_payoff);
    EXPECT_EQ(a[p].auction_utilization, b[p].auction_utilization);
    EXPECT_EQ(a[p].measured_utilization, b[p].measured_utilization);
    EXPECT_EQ(a[p].provisioned_capacity, b[p].provisioned_capacity);
    EXPECT_EQ(a[p].energy_cost, b[p].energy_cost);
    ASSERT_EQ(a[p].shard_reports.size(), b[p].shard_reports.size());
    for (size_t s = 0; s < a[p].shard_reports.size(); ++s) {
      ExpectReportsIdentical(a[p].shard_reports[s],
                             b[p].shard_reports[s]);
    }
  }
}

TEST(AutoscaleReplayTest, ClusterReplaysAcrossPoolSizes) {
  const auto pool1 = RunCluster(1);
  const auto pool1_again = RunCluster(1);
  const auto pool2 = RunCluster(2);
  const auto pool8 = RunCluster(8);
  ExpectClusterRunsIdentical(pool1, pool1_again);
  ExpectClusterRunsIdentical(pool1, pool2);
  ExpectClusterRunsIdentical(pool1, pool8);

  // The closed loop actually moved capacity, and the merged view adds
  // up: total provisioned == sum over shards, ditto energy.
  bool any_change = false;
  for (const ClusterPeriodReport& report : pool1) {
    double provisioned = 0.0, energy = 0.0;
    for (const cloud::PeriodReport& shard : report.shard_reports) {
      provisioned += shard.provisioned_capacity;
      energy += shard.energy_cost;
      any_change = any_change || (shard.autoscale_decision.has_value() &&
                                  shard.autoscale_decision->changed);
    }
    EXPECT_DOUBLE_EQ(report.provisioned_capacity, provisioned);
    EXPECT_DOUBLE_EQ(report.energy_cost, energy);
  }
  EXPECT_TRUE(any_change);
}

TEST(AutoscaleReplayTest, RouterSeesAutoscaledCapacities) {
  ClusterOptions options;
  options.num_shards = 2;
  options.total_capacity = 8.0;
  options.mechanism = "cat";
  options.period_length = 5.0;
  options.seed = 5;
  options.engine_options.tick = 1.0;
  options.executor_threads = 2;
  options.autoscale = AutoscaleOptions();
  options.autoscale.min_dwell_periods = 1;
  ClusterCenter cluster(options, RegisterQuotes);
  for (const ShardStatus& status : cluster.shard_statuses()) {
    ASSERT_TRUE(status.next_capacity.has_value());
    EXPECT_DOUBLE_EQ(*status.next_capacity, 4.0);
  }
  // An all-idle period shrinks every shard; the router's view follows.
  ASSERT_TRUE(cluster.RunPeriod().ok());
  for (int s = 0; s < 2; ++s) {
    const ShardStatus& status =
        cluster.shard_statuses()[static_cast<size_t>(s)];
    ASSERT_TRUE(status.next_capacity.has_value());
    EXPECT_LT(*status.next_capacity, 4.0);
    EXPECT_DOUBLE_EQ(*status.next_capacity,
                     cluster.shard(s).engine().options().capacity);
    EXPECT_GT(*status.next_capacity, 0.0);
  }
}

}  // namespace
}  // namespace streambid::cluster
