// Copyright 2026 The streambid Authors
// Two-price mechanism (Algorithm 3): candidate-set construction, the
// Step 3 duplicate adjustment, cross pricing, and the Theorem 11 profit
// bound E[profit] >= OPT_C - 2h on small instances.

#include "auction/mechanisms/two_price.h"

#include <gtest/gtest.h>

#include "auction/mechanisms/opt_c.h"
#include "auction/metrics.h"

namespace streambid::auction {
namespace {

AuctionInstance Make(std::vector<double> op_loads,
                     std::vector<QuerySpec> queries) {
  std::vector<OperatorSpec> ops;
  for (double l : op_loads) ops.push_back({l});
  auto r = AuctionInstance::Create(std::move(ops), std::move(queries));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

/// n unit-load queries with the given bids; capacity given separately.
AuctionInstance UnitQueries(std::vector<double> bids) {
  std::vector<OperatorSpec> ops;
  std::vector<QuerySpec> queries;
  for (size_t i = 0; i < bids.size(); ++i) {
    ops.push_back({1.0});
    queries.push_back({static_cast<UserId>(i), bids[i],
                       {static_cast<OperatorId>(i)}});
  }
  auto r = AuctionInstance::Create(std::move(ops), std::move(queries));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(TwoPriceTest, WinnersPayTheCrossPrice) {
  // 4 queries, all fit. Whatever the partition, each winner pays the
  // optimal single price of the OTHER half, and every payment is one of
  // the submitted valuations or zero.
  AuctionInstance inst = UnitQueries({10.0, 8.0, 6.0, 4.0});
  for (uint64_t seed = 0; seed < 20; ++seed) {
    AuctionContext rng(seed);
    const Allocation alloc = MakeTwoPrice()->Run(inst, 4.0, rng);
    for (QueryId i = 0; i < 4; ++i) {
      if (alloc.IsAdmitted(i)) {
        const double p = alloc.Payment(i);
        EXPECT_TRUE(p == 0.0 || p == 10.0 || p == 8.0 || p == 6.0 ||
                    p == 4.0)
            << "payment " << p;
        EXPECT_LT(p, inst.bid(i));  // Winners bid strictly above price.
      }
    }
    EXPECT_TRUE(IsFeasible(inst, alloc));
  }
}

TEST(TwoPriceTest, RejectsQueriesOutsideCandidateSet) {
  // Capacity 2: H = top two bids; the others can never win.
  AuctionInstance inst = UnitQueries({10.0, 9.0, 8.0, 7.0});
  for (uint64_t seed = 0; seed < 10; ++seed) {
    AuctionContext rng(seed);
    const Allocation alloc = MakeTwoPrice()->Run(inst, 2.0, rng);
    EXPECT_FALSE(alloc.IsAdmitted(2));
    EXPECT_FALSE(alloc.IsAdmitted(3));
  }
}

TEST(TwoPriceTest, SingletonCandidateWinsFree) {
  AuctionInstance inst = UnitQueries({10.0, 1.0});
  AuctionContext rng(3);
  const Allocation alloc = MakeTwoPrice()->Run(inst, 1.0, rng);
  EXPECT_TRUE(alloc.IsAdmitted(0));
  EXPECT_DOUBLE_EQ(alloc.Payment(0), 0.0);  // Other half empty: price 0.
  EXPECT_FALSE(alloc.IsAdmitted(1));
}

TEST(TwoPriceTest, Step3PacksDuplicatesAtBoundary) {
  // Bids: 10, 5, 5, 5 with unit loads, capacity 2. H = {10, first 5};
  // the last H member ties with the first loser (5), so Step 3
  // re-packs: D = the three 5s, H' = {10}, D* = one of them. The
  // winner set must still fit; with the exhaustive step the mechanism
  // remains well-defined and feasible.
  AuctionInstance inst = UnitQueries({10.0, 5.0, 5.0, 5.0});
  for (uint64_t seed = 0; seed < 20; ++seed) {
    AuctionContext rng(seed);
    const Allocation with = MakeTwoPrice()->Run(inst, 2.0, rng);
    EXPECT_TRUE(IsFeasible(inst, with));
    AuctionContext rng2(seed);
    const Allocation without = MakeTwoPricePoly()->Run(inst, 2.0, rng2);
    EXPECT_TRUE(IsFeasible(inst, without));
  }
}

TEST(TwoPriceTest, Step3FallsBackWhenTieClassHuge) {
  // 30 tied queries exceed the enumeration cap: the mechanism must
  // behave like the polynomial variant and stay feasible.
  std::vector<double> bids(31, 5.0);
  bids[0] = 50.0;
  AuctionInstance inst = UnitQueries(bids);
  AuctionContext rng(5);
  const Allocation alloc = MakeTwoPrice()->Run(inst, 10.0, rng);
  EXPECT_TRUE(IsFeasible(inst, alloc));
}

TEST(TwoPriceTest, ExpectedProfitWithinTheorem11Bound) {
  // E[profit] >= OPT_C - 2h (Theorem 11). Distinct valuations so Step 3
  // is a no-op. Estimate the expectation over many runs.
  AuctionInstance inst =
      UnitQueries({12.0, 11.0, 10.0, 9.0, 8.0, 7.0, 6.0, 5.0});
  const double capacity = 8.0;
  const ConstantPriceResult opt = OptimalConstantPricing(inst, capacity);
  // All fit; OPT_C = max over price p of p * |{v >= p}| = 7 * 6 = 42.
  EXPECT_DOUBLE_EQ(opt.profit, 42.0);

  AuctionContext rng(7);
  double total = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const Allocation alloc = MakeTwoPrice()->Run(inst, capacity, rng);
    total += ComputeMetrics(inst, alloc).profit;
  }
  const double expected_profit = total / trials;
  const double h = inst.max_bid();
  EXPECT_GE(expected_profit, opt.profit - 2.0 * h - 1e-9);
}

TEST(TwoPriceTest, LoadObliviousPricing) {
  // Identical valuations but wildly different loads: payments must not
  // depend on loads (allocation ignores them beyond the H cutoff).
  AuctionInstance heavy = Make(
      {9.0, 1.0}, {{0, 10.0, {0}}, {1, 8.0, {1}}});
  AuctionInstance light = Make(
      {1.0, 9.0}, {{0, 10.0, {0}}, {1, 8.0, {1}}});
  for (uint64_t seed = 0; seed < 10; ++seed) {
    AuctionContext rng_a(seed), rng_b(seed);
    const Allocation a = MakeTwoPrice()->Run(heavy, 10.0, rng_a);
    const Allocation b = MakeTwoPrice()->Run(light, 10.0, rng_b);
    // Same valuations, same capacity usage feasiblity (both fit fully):
    // identical outcomes under identical randomness.
    EXPECT_EQ(a.IsAdmitted(0), b.IsAdmitted(0));
    EXPECT_EQ(a.IsAdmitted(1), b.IsAdmitted(1));
    EXPECT_DOUBLE_EQ(a.Payment(0), b.Payment(0));
    EXPECT_DOUBLE_EQ(a.Payment(1), b.Payment(1));
  }
}

TEST(TwoPriceTest, EmptyInstance) {
  auto inst = AuctionInstance::Create({}, {});
  ASSERT_TRUE(inst.ok());
  AuctionContext rng(1);
  const Allocation alloc = MakeTwoPrice()->Run(*inst, 10.0, rng);
  EXPECT_EQ(alloc.NumAdmitted(), 0);
}

TEST(TwoPriceTest, PropertiesClaimProfitGuarantee) {
  EXPECT_TRUE(MakeTwoPrice()->properties().profit_guarantee);
  EXPECT_TRUE(MakeTwoPrice()->properties().strategyproof);
  EXPECT_FALSE(MakeTwoPrice()->properties().sybil_immune);
  EXPECT_TRUE(MakeTwoPrice()->properties().randomized);
}

}  // namespace
}  // namespace streambid::auction
