// Copyright 2026 The streambid Authors
// The §III characterization as a property suite: for the stop-variant
// strategyproof mechanisms, every winner's payment equals her critical
// value (the bid threshold below which she loses), across randomized
// shared workloads.

#include <gtest/gtest.h>

#include "service/admission_service.h"
#include "gametheory/properties.h"
#include "workload/generator.h"

namespace streambid {
namespace {

auction::AuctionInstance RandomShared(uint64_t seed) {
  workload::WorkloadParams p;
  p.num_queries = 35;
  p.base_num_operators = 15;
  p.base_max_sharing = 8;
  Rng rng(seed);
  auto inst = workload::GenerateBaseWorkload(p, rng).ToInstance();
  EXPECT_TRUE(inst.ok());
  return std::move(inst).value();
}

class CriticalValueSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CriticalValueSweep, CafPaymentsAreCriticalValues) {
  const auction::AuctionInstance inst = RandomShared(GetParam());
  service::AdmissionService service;
  const double disc = gametheory::MaxCriticalValueDiscrepancy(
      service, "caf", inst, inst.total_union_load() * 0.5,
      /*seed=*/GetParam() + 11, /*max_queries=*/8);
  EXPECT_LT(disc, 1e-5);
}

TEST_P(CriticalValueSweep, CatPaymentsAreCriticalValues) {
  const auction::AuctionInstance inst = RandomShared(GetParam());
  service::AdmissionService service;
  const double disc = gametheory::MaxCriticalValueDiscrepancy(
      service, "cat", inst, inst.total_union_load() * 0.5,
      /*seed=*/GetParam() + 22, 8);
  EXPECT_LT(disc, 1e-5);
}

TEST_P(CriticalValueSweep, GvPaymentsAreCriticalValues) {
  const auction::AuctionInstance inst = RandomShared(GetParam());
  service::AdmissionService service;
  const double disc = gametheory::MaxCriticalValueDiscrepancy(
      service, "gv", inst, inst.total_union_load() * 0.5,
      /*seed=*/GetParam() + 33, 8);
  EXPECT_LT(disc, 1e-5);
}

TEST_P(CriticalValueSweep, MechanismsAreMonotone) {
  const auction::AuctionInstance inst = RandomShared(GetParam());
  service::AdmissionService service;
  for (const char* name : {"caf", "caf+", "cat", "cat+", "gv"}) {
    const gametheory::MonotonicityReport r =
        gametheory::CheckMonotonicity(service, name, inst,
                                      inst.total_union_load() * 0.5,
                                      /*check_subset_monotonicity=*/true,
                                      /*seed=*/GetParam() + 44);
    EXPECT_TRUE(r.monotone)
        << name << " violated by query " << r.violating_query
        << " at bid " << r.violating_bid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CriticalValueSweep,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace streambid
