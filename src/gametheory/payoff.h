// Copyright 2026 The streambid Authors
// Payoff accounting (paper §II): the payoff of the user who submitted
// query q_i is v_i - p_i if admitted and 0 otherwise; a user owning
// several queries (e.g., a sybil attacker and her fakes) earns the sum
// over her queries, and is responsible for her fake queries' payments
// (§V: fakes have value 0, so an admitted fake contributes -p).
//
// All harness entry points run auctions through the AdmissionService —
// mechanisms are named, never constructed here — with deterministic
// (seed, trial) RNG streams, so every evaluation is replayable.

#ifndef STREAMBID_GAMETHEORY_PAYOFF_H_
#define STREAMBID_GAMETHEORY_PAYOFF_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "auction/allocation.h"
#include "auction/instance.h"
#include "service/admission_service.h"

namespace streambid::gametheory {

/// Payoff of `user` under one allocation, with per-query true values.
double UserPayoff(const auction::AuctionInstance& instance,
                  const auction::Allocation& alloc,
                  const std::vector<double>& values, auction::UserId user);

/// Runs one auction through the service with metrics off (the harness
/// hot path) and returns the allocation. CHECK-fails on an unknown
/// mechanism name — harness callers resolve names up front.
auction::Allocation RunAuction(service::AdmissionService& service,
                               std::string_view mechanism,
                               const auction::AuctionInstance& instance,
                               double capacity, uint64_t seed,
                               uint32_t trial = 0);

/// Expected payoff of `user` under `mechanism`, averaging `trials` runs
/// with streams (seed, 0..trials-1). One run suffices for deterministic
/// mechanisms; the harness still averages so callers need not
/// special-case randomized ones.
double ExpectedUserPayoff(service::AdmissionService& service,
                          std::string_view mechanism,
                          const auction::AuctionInstance& instance,
                          double capacity,
                          const std::vector<double>& values,
                          auction::UserId user, uint64_t seed, int trials);

/// True values when everyone is truthful: value_i = bid_i.
std::vector<double> TruthfulValues(const auction::AuctionInstance& instance);

}  // namespace streambid::gametheory

#endif  // STREAMBID_GAMETHEORY_PAYOFF_H_
