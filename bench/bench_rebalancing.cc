// Copyright 2026 The streambid Authors
// Inter-period shard rebalancing vs the static hash placement. The
// paper's auctions assume one center sees all competing queries; a
// sharded deployment with a fixed hash placement breaks that on a
// skewed workload — a Zipf-hot user cohort hashes onto one shard,
// which rejects most of its (high-bid) demand while the other shards
// idle. The ShardRebalancer migrates tenants between periods from the
// hottest shard to the coldest one; this bench measures the revenue
// it recovers on exactly that workload, per mechanism.
//
// Experiment 2 re-runs the rebalanced 20-period 4-shard configuration
// across executor pool sizes 1/2/8 and CHECKs the merged reports and
// the migration log byte-identical — the replay contract with the
// migration stage in the loop.
//
// Usage: bench_rebalancing [--smoke]   (--smoke shrinks the horizon
// for the ctest smoke target; every CHECK runs in both modes).

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster_center.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/zipf.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

namespace {

using namespace streambid;

constexpr int kShards = 4;
constexpr double kShardCapacity = 2.5;
constexpr int kHotUsers = 12;
constexpr int kBackgroundUsers = 12;

Status RegisterQuotes(stream::Engine& engine) {
  return engine.RegisterSource(stream::MakeStockQuoteSource(
      "quotes", {"IBM", "AAPL", "MSFT", "GOOG"}, /*rate=*/100.0, 5));
}

struct TenantBookEntry {
  auction::UserId user;
  double bid;
  double threshold;
};

/// The skewed tenant book: a hot cohort whose user ids all hash to one
/// shard (the worst case a static placement can meet) plus background
/// users the hash spreads naturally. Distinct thresholds, so every
/// query costs ~1 unit with no cross-tenant sharing.
std::vector<TenantBookEntry> MakeTenantBook() {
  std::vector<TenantBookEntry> book;
  const int hot_shard = static_cast<int>(
      cluster::ShardRouter::HashUser(1) % static_cast<uint64_t>(kShards));
  auction::UserId next = 1;
  while (static_cast<int>(book.size()) < kHotUsers) {
    if (static_cast<int>(cluster::ShardRouter::HashUser(next) %
                         static_cast<uint64_t>(kShards)) == hot_shard) {
      const int k = static_cast<int>(book.size());
      book.push_back(TenantBookEntry{next, 95.0 - 4.0 * k,
                                     101.0 + 1.5 * k});
    }
    ++next;
  }
  for (int k = 0; k < kBackgroundUsers; ++k) {
    book.push_back(TenantBookEntry{next + static_cast<auction::UserId>(k),
                                   25.0 + 2.0 * (k % 6),
                                   131.0 + 1.5 * k});
  }
  return book;
}

/// Deterministic per-period submission schedule, shared by every
/// configuration: hot users submit every period (the persistent
/// hot-spot), background users with Zipf-modulated frequency.
std::vector<std::vector<int>> MakeSchedule(int periods,
                                           const std::vector<TenantBookEntry>&
                                               book) {
  ZipfDistribution zipf(4, 1.2);
  Rng rng(0x5EBA1ull);
  std::vector<std::vector<int>> schedule;
  schedule.reserve(static_cast<size_t>(periods));
  for (int p = 0; p < periods; ++p) {
    std::vector<int> entries;
    for (int k = 0; k < static_cast<int>(book.size()); ++k) {
      const bool hot = k < kHotUsers;
      if (hot || zipf.Sample(rng) == 1) entries.push_back(k);
    }
    schedule.push_back(std::move(entries));
  }
  return schedule;
}

stream::QuerySubmission MakeTenant(const TenantBookEntry& entry, int id) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(entry.threshold));
  stream::QuerySubmission sub;
  sub.query_id = id;
  sub.user = entry.user;
  sub.bid = entry.bid;
  sub.plan = b.Build(sel);
  return sub;
}

cluster::ClusterOptions BaseOptions(const std::string& mechanism,
                                    bool rebalance, int executor_threads) {
  cluster::ClusterOptions options;
  options.num_shards = kShards;
  options.total_capacity = kShardCapacity * kShards;
  options.routing = cluster::RoutingPolicy::kHashUser;
  options.mechanism = mechanism;
  options.period_length = 10.0;
  options.seed = 71;
  options.engine_options.tick = 1.0;
  options.engine_options.sink_history = 4;
  options.executor_threads = executor_threads;
  options.rebalance.enabled = rebalance;
  options.rebalance.max_moves_per_period = 2;
  options.rebalance.min_history_periods = 2;
  options.rebalance.tenant_cooldown_periods = 3;
  return options;
}

struct RunResult {
  double revenue = 0.0;
  int admitted = 0;
  int submitted = 0;
  int migrations = 0;  ///< Tenant moves across the whole run.
  std::vector<cluster::ClusterPeriodReport> reports;
  std::vector<cluster::MigrationPlan> plans;
};

RunResult RunConfiguration(const std::string& mechanism, bool rebalance,
                           int executor_threads,
                           const std::vector<TenantBookEntry>& book,
                           const std::vector<std::vector<int>>& schedule) {
  cluster::ClusterCenter center(
      BaseOptions(mechanism, rebalance, executor_threads), RegisterQuotes);
  RunResult result;
  int next_id = 1;
  for (const std::vector<int>& entries : schedule) {
    for (int k : entries) {
      STREAMBID_CHECK(
          center.Submit(MakeTenant(book[static_cast<size_t>(k)], next_id++))
              .ok());
    }
    const auto report = center.RunPeriod();
    STREAMBID_CHECK(report.ok());
    result.revenue += report->revenue;
    result.admitted += report->admitted;
    result.submitted += report->submissions;
    result.reports.push_back(*report);
  }
  for (const cluster::MigrationPlan& plan : center.migrations()) {
    result.migrations += static_cast<int>(plan.moves.size());
  }
  result.plans = center.migrations();
  return result;
}

void RunRevenueExperiment(int periods) {
  const std::vector<TenantBookEntry> book = MakeTenantBook();
  const std::vector<std::vector<int>> schedule =
      MakeSchedule(periods, book);
  std::printf("\n== static hash vs rebalanced placement (%d periods, "
              "%d hot users on one shard, capacity %.1f x %d) ==\n",
              periods, kHotUsers, kShardCapacity, kShards);

  TextTable table({"mechanism", "placement", "revenue", "admitted",
                   "admit_rate", "moves", "recovered"});
  std::vector<std::pair<std::string, double>> artifact;
  for (const std::string& mechanism :
       {std::string("cat"), std::string("car")}) {
    const RunResult fixed =
        RunConfiguration(mechanism, false, 4, book, schedule);
    const RunResult rebalanced =
        RunConfiguration(mechanism, true, 4, book, schedule);
    for (const auto* r : {&fixed, &rebalanced}) {
      table.AddRow(
          {mechanism, r == &fixed ? "static-hash" : "rebalanced",
           FormatDouble(r->revenue, 2), FormatInt(r->admitted),
           FormatDouble(r->submitted > 0
                            ? static_cast<double>(r->admitted) / r->submitted
                            : 0.0,
                        3),
           FormatInt(r->migrations),
           r == &fixed
               ? "-"
               : FormatDouble(r->revenue - fixed.revenue, 2)});
    }
    std::printf("# %s: rebalanced revenue %.2f vs static %.2f (%+.2f, "
                "%d tenant moves)\n",
                mechanism.c_str(), rebalanced.revenue, fixed.revenue,
                rebalanced.revenue - fixed.revenue,
                rebalanced.migrations);
    // The acceptance bar: on the skewed workload the rebalanced
    // cluster must recover revenue against the static hash placement,
    // and must actually migrate to do it.
    STREAMBID_CHECK_GE(rebalanced.revenue, fixed.revenue);
    STREAMBID_CHECK_GT(rebalanced.migrations, 0);
    artifact.emplace_back("revenue_recovered_" + mechanism,
                          rebalanced.revenue - fixed.revenue);
    artifact.emplace_back("migrations_" + mechanism,
                          static_cast<double>(rebalanced.migrations));
  }
  std::fputs(table.ToAligned().c_str(), stdout);
  bench::WriteBenchJson("rebalancing", artifact);
}

void CheckRunsIdentical(const RunResult& a, const RunResult& b) {
  STREAMBID_CHECK_EQ(a.reports.size(), b.reports.size());
  for (size_t p = 0; p < a.reports.size(); ++p) {
    const cluster::ClusterPeriodReport& ra = a.reports[p];
    const cluster::ClusterPeriodReport& rb = b.reports[p];
    STREAMBID_CHECK_EQ(ra.submissions, rb.submissions);
    STREAMBID_CHECK_EQ(ra.admitted, rb.admitted);
    STREAMBID_CHECK_EQ(ra.revenue, rb.revenue);
    STREAMBID_CHECK_EQ(ra.total_payoff, rb.total_payoff);
    STREAMBID_CHECK_EQ(ra.auction_utilization, rb.auction_utilization);
    STREAMBID_CHECK_EQ(ra.measured_utilization, rb.measured_utilization);
    STREAMBID_CHECK_EQ(ra.shard_reports.size(), rb.shard_reports.size());
    for (size_t s = 0; s < ra.shard_reports.size(); ++s) {
      STREAMBID_CHECK(ra.shard_reports[s].admitted_ids ==
                      rb.shard_reports[s].admitted_ids);
      STREAMBID_CHECK(ra.shard_reports[s].payments ==
                      rb.shard_reports[s].payments);
      STREAMBID_CHECK_EQ(ra.shard_reports[s].revenue,
                         rb.shard_reports[s].revenue);
    }
  }
  STREAMBID_CHECK_EQ(a.plans.size(), b.plans.size());
  for (size_t m = 0; m < a.plans.size(); ++m) {
    STREAMBID_CHECK_EQ(a.plans[m].moves.size(), b.plans[m].moves.size());
    for (size_t k = 0; k < a.plans[m].moves.size(); ++k) {
      STREAMBID_CHECK_EQ(a.plans[m].moves[k].user,
                         b.plans[m].moves[k].user);
      STREAMBID_CHECK_EQ(a.plans[m].moves[k].from,
                         b.plans[m].moves[k].from);
      STREAMBID_CHECK_EQ(a.plans[m].moves[k].to, b.plans[m].moves[k].to);
    }
  }
}

void RunReplayExperiment(int periods) {
  const std::vector<TenantBookEntry> book = MakeTenantBook();
  const std::vector<std::vector<int>> schedule =
      MakeSchedule(periods, book);
  std::printf("\n== rebalanced replay identity across executor pool "
              "sizes (cat, %d periods) ==\n",
              periods);
  const RunResult pool1 = RunConfiguration("cat", true, 1, book, schedule);
  const RunResult pool2 = RunConfiguration("cat", true, 2, book, schedule);
  const RunResult pool8 = RunConfiguration("cat", true, 8, book, schedule);
  CheckRunsIdentical(pool1, pool2);
  CheckRunsIdentical(pool1, pool8);
  STREAMBID_CHECK_GT(pool1.migrations, 0);
  std::printf("# pools 1/2/8 byte-identical across %d periods, "
              "%d migrations in the log\n",
              periods, pool1.migrations);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int periods = smoke ? 12 : 32;
  std::printf("inter-period shard rebalancing: revenue recovered vs the "
              "static hash placement on a Zipf-hot-user workload%s\n",
              smoke ? " (smoke)" : "");
  RunRevenueExperiment(periods);
  RunReplayExperiment(smoke ? 12 : 20);
  return 0;
}
