// Copyright 2026 The streambid Authors
// Operator-sharing semantics of the runtime graph: the engine must
// realize the paper's §II model, where "many CQs may contain the same
// operator" and shared operators are processed once.

#include <gtest/gtest.h>

#include "stream/engine.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

namespace streambid::stream {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : engine_(EngineOptions{1000.0, 1.0, 8}) {
    EXPECT_TRUE(engine_
                    .RegisterSource(MakeStockQuoteSource(
                        "quotes", {"IBM", "AAPL", "MSFT"}, 20.0, 7))
                    .ok());
    EXPECT_TRUE(engine_
                    .RegisterSource(MakeNewsSource(
                        "news", {"IBM", "AAPL", "MSFT"}, 0.7, 5.0, 8))
                    .ok());
  }

  Engine engine_;
};

TEST_F(NetworkTest, Example1TopologyShapesSharing) {
  // Mirror paper Figure 1: q1 = A->B, q2 = A->C, q3 = D->E, where A is
  // shared between q1 and q2.
  QueryBuilder b;
  // q1: select on quotes (A), then project (B).
  int src = b.Source("quotes");
  int a = b.Select(src, "price", CompareOp::kGt, Value(100.0));
  int b1 = b.Project(a, {"symbol", "price"});
  const QueryPlan q1 = b.Build(b1);

  // q2: the same select (A), then a different select (C).
  src = b.Source("quotes");
  a = b.Select(src, "price", CompareOp::kGt, Value(100.0));
  int c = b.Select(a, "volume", CompareOp::kGt, Value(int64_t{5000}));
  const QueryPlan q2 = b.Build(c);

  // q3: disjoint plan on news (D->E).
  src = b.Source("news");
  int d = b.Select(src, "listed", CompareOp::kEq, Value(int64_t{1}));
  int e = b.Project(d, {"company"});
  const QueryPlan q3 = b.Build(e);

  ASSERT_TRUE(engine_.InstallQuery(1, q1).ok());
  ASSERT_TRUE(engine_.InstallQuery(2, q2).ok());
  ASSERT_TRUE(engine_.InstallQuery(3, q3).ok());

  // Nodes: quotes-src, A, B, C, news-src, D, E = 7.
  EXPECT_EQ(engine_.num_runtime_nodes(), 7);
  // Shared: the quotes source (q1, q2) and A (q1, q2).
  EXPECT_EQ(engine_.num_shared_nodes(), 2);

  int shared_selects = 0;
  for (const OperatorLoadInfo& info : engine_.OperatorLoads()) {
    if (!info.is_source && info.sharing_degree == 2) ++shared_selects;
  }
  EXPECT_EQ(shared_selects, 1);  // Operator A.
}

TEST_F(NetworkTest, SharedOperatorProcessesTuplesOnce) {
  QueryBuilder b;
  int src = b.Source("quotes");
  int sel = b.Select(src, "price", CompareOp::kGt, Value(0.0));
  const QueryPlan plan_a = b.Build(sel);
  src = b.Source("quotes");
  sel = b.Select(src, "price", CompareOp::kGt, Value(0.0));
  const QueryPlan plan_b = b.Build(sel);

  ASSERT_TRUE(engine_.InstallQuery(1, plan_a).ok());
  ASSERT_TRUE(engine_.InstallQuery(2, plan_b).ok());
  engine_.Run(10.0);

  // The select runs once per source tuple despite two subscribers:
  // ~200 tuples at rate 20/s.
  for (const OperatorLoadInfo& info : engine_.OperatorLoads()) {
    if (info.is_source) continue;
    EXPECT_NEAR(static_cast<double>(info.tuples_processed), 200.0, 10.0);
  }
  // Both sinks receive every passing tuple.
  EXPECT_EQ(engine_.sink(1)->tuples, engine_.sink(2)->tuples);
}

TEST_F(NetworkTest, JoinPlanWiresTwoSources) {
  QueryBuilder b;
  const int quotes = b.Source("quotes");
  const int hi = b.Select(quotes, "price", CompareOp::kGt, Value(0.0));
  const int news = b.Source("news");
  const int listed =
      b.Select(news, "listed", CompareOp::kEq, Value(int64_t{1}));
  const int joined = b.Join(hi, listed, "symbol", "company", 30.0);
  ASSERT_TRUE(engine_.InstallQuery(5, b.Build(joined)).ok());
  engine_.Run(30.0);
  const SinkStats* sink = engine_.sink(5);
  ASSERT_NE(sink, nullptr);
  // Quotes and listed news share three symbols: matches must occur.
  EXPECT_GT(sink->tuples, 0);
}

TEST_F(NetworkTest, PartialOverlapSharesOnlyCommonPrefix) {
  QueryBuilder b;
  int src = b.Source("quotes");
  int s1 = b.Select(src, "price", CompareOp::kGt, Value(50.0));
  int agg = b.Aggregate(s1, AggFn::kAvg, "price", "symbol", {10.0, 10.0});
  const QueryPlan with_agg = b.Build(agg);

  src = b.Source("quotes");
  s1 = b.Select(src, "price", CompareOp::kGt, Value(50.0));
  int proj = b.Project(s1, {"symbol"});
  const QueryPlan with_proj = b.Build(proj);

  ASSERT_TRUE(engine_.InstallQuery(1, with_agg).ok());
  ASSERT_TRUE(engine_.InstallQuery(2, with_proj).ok());
  // Nodes: source, select (shared), aggregate, project = 4.
  EXPECT_EQ(engine_.num_runtime_nodes(), 4);
  EXPECT_EQ(engine_.num_shared_nodes(), 2);  // Source + select.
}

}  // namespace
}  // namespace streambid::stream
