// Copyright 2026 The streambid Authors

#include "auction/metrics.h"

#include <gtest/gtest.h>

namespace streambid::auction {
namespace {

AuctionInstance SmallInstance() {
  auto r = AuctionInstance::Create(
      {{4.0}, {1.0}, {2.0}}, {{0, 10.0, {0, 1}}, {1, 20.0, {0, 2}}});
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(MetricsTest, AllRejectedGivesZeroes) {
  AuctionInstance inst = SmallInstance();
  Allocation alloc = MakeEmptyAllocation("test", 10.0, 2);
  const AllocationMetrics m = ComputeMetrics(inst, alloc);
  EXPECT_DOUBLE_EQ(m.profit, 0.0);
  EXPECT_DOUBLE_EQ(m.admission_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.total_payoff, 0.0);
  EXPECT_DOUBLE_EQ(m.utilization, 0.0);
}

TEST(MetricsTest, HandComputedValues) {
  AuctionInstance inst = SmallInstance();
  Allocation alloc = MakeEmptyAllocation("test", 10.0, 2);
  alloc.admitted = {true, true};
  alloc.payments = {3.0, 8.0};
  const AllocationMetrics m = ComputeMetrics(inst, alloc);
  EXPECT_DOUBLE_EQ(m.profit, 11.0);
  EXPECT_DOUBLE_EQ(m.admission_rate, 1.0);
  EXPECT_DOUBLE_EQ(m.total_payoff, (10 - 3) + (20 - 8));
  EXPECT_DOUBLE_EQ(m.utilization, 0.7);  // Union 4+1+2 over 10.
}

TEST(MetricsTest, ValuesOverrideBidsForPayoff) {
  AuctionInstance inst = SmallInstance();
  Allocation alloc = MakeEmptyAllocation("test", 10.0, 2);
  alloc.admitted = {true, false};
  alloc.payments = {3.0, 0.0};
  // Lying scenario: submitted bid 10 but true value 30.
  const AllocationMetrics m =
      ComputeMetricsWithValues(inst, alloc, {30.0, 20.0});
  EXPECT_DOUBLE_EQ(m.total_payoff, 27.0);
  EXPECT_DOUBLE_EQ(m.profit, 3.0);
}

TEST(MetricsTest, UsedCapacityCountsSharedOpsOnce) {
  AuctionInstance inst = SmallInstance();
  Allocation alloc = MakeEmptyAllocation("test", 10.0, 2);
  alloc.admitted = {true, true};
  EXPECT_DOUBLE_EQ(UsedCapacity(inst, alloc), 7.0);
}

TEST(MetricsTest, FeasibilityChecks) {
  AuctionInstance inst = SmallInstance();
  Allocation ok = MakeEmptyAllocation("test", 7.0, 2);
  ok.admitted = {true, true};
  EXPECT_TRUE(IsFeasible(inst, ok));

  Allocation overload = MakeEmptyAllocation("test", 6.0, 2);
  overload.admitted = {true, true};
  EXPECT_FALSE(IsFeasible(inst, overload));

  Allocation bad_payment = MakeEmptyAllocation("test", 10.0, 2);
  bad_payment.payments[0] = 5.0;  // Rejected query paying.
  EXPECT_FALSE(IsFeasible(inst, bad_payment));

  Allocation negative = MakeEmptyAllocation("test", 10.0, 2);
  negative.admitted = {true, false};
  negative.payments[0] = -1.0;
  EXPECT_FALSE(IsFeasible(inst, negative));
}

TEST(MetricsTest, EmptyInstance) {
  auto inst = AuctionInstance::Create({}, {});
  ASSERT_TRUE(inst.ok());
  Allocation alloc = MakeEmptyAllocation("test", 10.0, 0);
  const AllocationMetrics m = ComputeMetrics(*inst, alloc);
  EXPECT_DOUBLE_EQ(m.admission_rate, 0.0);
  EXPECT_TRUE(IsFeasible(*inst, alloc));
}

}  // namespace
}  // namespace streambid::auction
