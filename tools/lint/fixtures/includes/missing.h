// Copyright 2026 The streambid Authors
// Fixture: a symbol used without its own #include leaks in through
// whatever <string> happens to pull today.

#ifndef STREAMBID_TOOLS_LINT_FIXTURES_INCLUDES_MISSING_H_
#define STREAMBID_TOOLS_LINT_FIXTURES_INCLUDES_MISSING_H_

#include <string>

inline std::vector<std::string> Names() {  // WANT(missing-include)
  return {};
}

#endif  // STREAMBID_TOOLS_LINT_FIXTURES_INCLUDES_MISSING_H_
