// Copyright 2026 The streambid Authors

#include "gametheory/sybil.h"

#include <gtest/gtest.h>

#include "service/admission_service.h"
#include "gametheory/attacks.h"

namespace streambid::gametheory {
namespace {

TEST(SybilTest, FairShareAttackReplicatesAttackerOperators) {
  auction::AuctionInstance inst = Example1Instance();
  const SybilAttack attack = FairShareAttack(inst, 0, 3, 1e-6);
  ASSERT_EQ(attack.fake_queries.size(), 3u);
  for (const auction::QuerySpec& fake : attack.fake_queries) {
    EXPECT_EQ(fake.user, inst.user(0));
    EXPECT_DOUBLE_EQ(fake.bid, 1e-6);
    EXPECT_EQ(fake.operators, inst.query_operators(0));
  }
  EXPECT_TRUE(attack.new_operators.empty());
}

TEST(SybilTest, EvaluateReportsBothPayoffs) {
  const AttackScenario s = FairShareScenario();
  service::AdmissionService service;
  auto report = EvaluateSybilAttack(service, "caf", s.instance,
                                    s.capacity, s.attacker, s.attack,
                                    /*seed=*/1);
  ASSERT_TRUE(report.ok());
  // §V-A: attacker (user 2) loses without the attack, wins cheaply with
  // it (CSF drops from 4 to 1).
  EXPECT_DOUBLE_EQ(report->payoff_without_attack, 0.0);
  EXPECT_GT(report->payoff_with_attack, 0.0);
  EXPECT_TRUE(report->Profitable());
}

TEST(SybilTest, SameAttackHarmlessAgainstCat) {
  const AttackScenario s = FairShareScenario();
  service::AdmissionService service;
  auto report = EvaluateSybilAttack(service, "cat", s.instance,
                                    s.capacity, s.attacker, s.attack,
                                    /*seed=*/2);
  ASSERT_TRUE(report.ok());
  // CAT prices by total load: fakes do not deflate anything.
  EXPECT_FALSE(report->Profitable());
}

TEST(SybilTest, SearchFindsCafVulnerability) {
  // Search over fair-share-style attacks on a small shared instance:
  // must find a strictly profitable attack against CAF (Theorem 15:
  // universally vulnerable).
  const AttackScenario s = FairShareScenario();
  service::AdmissionService service;
  const SybilReport best =
      SearchSybilAttacks(service, "caf", s.instance, s.capacity,
                         /*seed=*/3, /*max_attackers=*/2);
  EXPECT_TRUE(best.Profitable());
}

TEST(SybilTest, SearchFindsNothingAgainstCatOnSmallInstances) {
  const AttackScenario s = FairShareScenario();
  service::AdmissionService service;
  const SybilReport best =
      SearchSybilAttacks(service, "cat", s.instance, s.capacity,
                         /*seed=*/4, 2);
  EXPECT_FALSE(best.Profitable());
}

TEST(SybilTest, AttackWithNewOperatorsExtendsPool) {
  const AttackScenario s = TableIIScenario();
  EXPECT_EQ(s.attack.new_operators.size(), 1u);
  EXPECT_EQ(s.attack.fake_queries.size(), 1u);
  // The fake's operator id points into the extended pool.
  EXPECT_EQ(s.attack.fake_queries[0].operators[0], 2);
}

}  // namespace
}  // namespace streambid::gametheory
