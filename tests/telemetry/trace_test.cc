// Copyright 2026 The streambid Authors
// The period tracer: logical identity vs wall-clock annotation. Sorted
// export must be independent of recording interleavings, the identity
// sequence must exclude every nondeterministic field, and disabled
// tracing must be free.

#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace streambid::telemetry {
namespace {

TEST(PhaseNameTest, AllPhases) {
  EXPECT_STREQ(PhaseName(Phase::kGateDrain), "gate_drain");
  EXPECT_STREQ(PhaseName(Phase::kPrepare), "prepare");
  EXPECT_STREQ(PhaseName(Phase::kAutoscale), "autoscale");
  EXPECT_STREQ(PhaseName(Phase::kAdmit), "admit");
  EXPECT_STREQ(PhaseName(Phase::kComplete), "complete");
  EXPECT_STREQ(PhaseName(Phase::kRebalance), "rebalance");
}

TEST(PeriodTracerTest, DisabledRecordsNothing) {
  PeriodTracer tracer(/*enabled=*/false);
  tracer.Record(Phase::kPrepare, 0, 0, 1, 0.0, 1.0);
  EXPECT_EQ(tracer.span_count(), 0);
  EXPECT_TRUE(tracer.IdentitySequence().empty());
}

TEST(PeriodTracerTest, NullTracerScopedSpanIsSafe) {
  ScopedSpan span(nullptr, Phase::kAdmit, 3, 1, 7);
  // Destruction must be a no-op; nothing to assert beyond not crashing.
}

TEST(PeriodTracerTest, ScopedSpanRecordsOnDestruction) {
  PeriodTracer tracer;
  {
    ScopedSpan span(&tracer, Phase::kComplete, 2, 3, 9);
    EXPECT_EQ(tracer.span_count(), 0);  // Not yet.
  }
  EXPECT_EQ(tracer.span_count(), 1);
  const std::vector<TraceSpan> spans = tracer.SortedSpans();
  EXPECT_EQ(spans[0].phase, Phase::kComplete);
  EXPECT_EQ(spans[0].period, 2);
  EXPECT_EQ(spans[0].shard, 3);
  EXPECT_EQ(spans[0].epoch, 9u);
  EXPECT_GE(spans[0].duration_ms, 0.0);
}

TEST(PeriodTracerTest, SortedSpansUseLogicalOrder) {
  // Record out of logical order (as racing pool workers would); the
  // export must come back in (period, shard, phase) order.
  PeriodTracer tracer;
  tracer.Record(Phase::kComplete, 1, 0, 2, 50.0, 1.0);
  tracer.Record(Phase::kPrepare, 0, 1, 1, 5.0, 1.0);
  tracer.Record(Phase::kGateDrain, 0, -1, 1, 0.0, 1.0);
  tracer.Record(Phase::kAdmit, 0, 1, 1, 6.0, 1.0);
  tracer.Record(Phase::kPrepare, 1, 0, 2, 40.0, 1.0);
  const std::vector<TraceSpan> spans = tracer.SortedSpans();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[0].phase, Phase::kGateDrain);  // period 0, shard -1.
  EXPECT_EQ(spans[1].phase, Phase::kPrepare);    // period 0, shard 1.
  EXPECT_EQ(spans[2].phase, Phase::kAdmit);      // period 0, shard 1.
  EXPECT_EQ(spans[3].phase, Phase::kPrepare);    // period 1, shard 0.
  EXPECT_EQ(spans[4].phase, Phase::kComplete);   // period 1, shard 0.
}

TEST(PeriodTracerTest, IdentityIndependentOfInterleaving) {
  // Two tracers record the same logical spans in different orders with
  // different wall clocks: identical identity sequences.
  PeriodTracer a;
  a.Record(Phase::kPrepare, 0, 0, 1, 1.0, 2.0);
  a.Record(Phase::kComplete, 0, 0, 1, 3.0, 4.0);
  PeriodTracer b;
  b.Record(Phase::kComplete, 0, 0, 1, 99.0, 0.5);
  b.Record(Phase::kPrepare, 0, 0, 1, 98.0, 0.25);
  EXPECT_EQ(a.IdentitySequence(), b.IdentitySequence());
  EXPECT_NE(a.IdentitySequence().find(
                "period=0 shard=0 epoch=1 phase=prepare"),
            std::string::npos);
}

TEST(PeriodTracerTest, ConcurrentRecorders) {
  PeriodTracer tracer;
  constexpr int kThreads = 8;
  constexpr int kSpans = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpans; ++i) {
        tracer.Record(Phase::kAdmit, i, t, 1, 0.0, 0.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.span_count(),
            static_cast<int64_t>(kThreads) * kSpans);
  // Sorted export is a total order here: every (period, shard) pair is
  // unique, so the sequence is deterministic despite the racing.
  const std::vector<TraceSpan> spans = tracer.SortedSpans();
  for (size_t i = 1; i < spans.size(); ++i) {
    const bool ordered =
        spans[i - 1].period < spans[i].period ||
        (spans[i - 1].period == spans[i].period &&
         spans[i - 1].shard < spans[i].shard);
    EXPECT_TRUE(ordered);
  }
}

TEST(PeriodTracerTest, ClearResets) {
  PeriodTracer tracer;
  tracer.Record(Phase::kPrepare, 0, 0, 1, 0.0, 1.0);
  EXPECT_EQ(tracer.span_count(), 1);
  tracer.Clear();
  EXPECT_EQ(tracer.span_count(), 0);
  EXPECT_TRUE(tracer.IdentitySequence().empty());
}

TEST(ChromeTraceTest, JsonShape) {
  PeriodTracer tracer;
  tracer.Record(Phase::kGateDrain, 0, -1, 1, 1.5, 2.5);
  tracer.Record(Phase::kAdmit, 0, 2, 1, 4.0, 1.0);
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gate_drain\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"admit\""), std::string::npos);
  // tid = shard + 1: gate-level spans (shard -1) land on track 0.
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  // ts/dur are microseconds: 1.5 ms -> 1500.
  EXPECT_NE(json.find("\"ts\":1500"), std::string::npos);
}

TEST(ChromeTraceTest, WriteToFile) {
  PeriodTracer tracer;
  tracer.Record(Phase::kPrepare, 0, 0, 1, 0.0, 1.0);
  const std::string path =
      testing::TempDir() + "/streambid_trace_test.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  // An unwritable path must surface kInternal, not crash.
  EXPECT_FALSE(
      tracer.WriteChromeTrace("/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace streambid::telemetry
