// Copyright 2026 The streambid Authors
// Cluster scaling bench. Two experiments:
//
//  1. Parallel admission speedup — the Table IV runtime workload
//     (2000-query instances at max sharing degree 5) submitted as one
//     batch, serial AdmissionService::AdmitBatch vs the cluster
//     AdmissionExecutor at 1/2/4/8 workers, with a byte-identity check
//     (the determinism contract) and the executor's per-mechanism
//     rolling stats.
//
//  2. One big center vs N shards at equal total capacity — the sharded
//     multi-center question: for each mechanism and routing policy, the
//     same tenant book runs three subscription periods against a
//     1-shard and a 4-shard ClusterCenter and we compare aggregate
//     revenue, admission, utilization, and wall clock. Sharding splits
//     operator sharing across shards (a tenant's operators are only
//     shared with co-located tenants), which is exactly the profit
//     tension the paper's single-center model cannot see.
//
// Scales with the usual STREAMBID_* env knobs (see bench_common.h).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/admission_executor.h"
#include "cluster/cluster_center.h"
#include "common/table.h"
#include "common/timer.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

namespace {

using namespace streambid;

// --- Experiment 1: parallel admission speedup. -----------------------

bool SameAllocations(const std::vector<service::AdmissionResponse>& a,
                     const std::vector<service::AdmissionResponse>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].allocation.admitted != b[i].allocation.admitted ||
        a[i].allocation.payments != b[i].allocation.payments) {
      return false;
    }
  }
  return true;
}

void RunSpeedupExperiment(const bench::BenchConfig& config) {
  std::printf("\n== Parallel admission: serial AdmitBatch vs "
              "AdmitBatchParallel ==\n");
  // The Table IV regime: max sharing degree 5 keeps the scaled capacity
  // binding (without it every mechanism short-circuits).
  workload::WorkloadSet ws(config.params, /*seed=*/0xABCDu);
  const auction::AuctionInstance& instance = ws.InstanceAt(5);
  const double capacity = 15000.0 * config.queries / 2000.0;

  // The fast Table IV mechanisms (the movement-window skip-variants are
  // measured by bench_table4_runtime; at full scale they would dominate
  // the batch and measure themselves, not the executor).
  const std::vector<std::string> mechanisms = {
      "random", "gv", "two-price", "caf", "cat", "car", "opt-c"};
  const int trials = config.trials * 8;
  std::vector<service::AdmissionRequest> requests;
  for (const std::string& name : mechanisms) {
    for (int t = 0; t < trials; ++t) {
      service::AdmissionRequest request;
      request.instance = &instance;
      request.capacity = capacity;
      request.mechanism = name;
      request.seed = 0xD00Du;
      request.request_index = static_cast<uint32_t>(t);
      requests.push_back(std::move(request));
    }
  }
  std::printf("# %zu requests (%zu mechanisms x %d trials), %d queries, "
              "capacity %.0f\n",
              requests.size(), mechanisms.size(), trials, config.queries,
              capacity);
  std::printf("# hardware threads: %u (speedup is bounded by physical "
              "cores; identity must hold regardless)\n",
              std::thread::hardware_concurrency());

  service::AdmissionService serial_service;
  Timer timer;
  const auto serial = serial_service.AdmitBatch(requests);
  const double serial_ms = timer.ElapsedMillis();
  STREAMBID_CHECK(serial.ok());

  TextTable table({"threads", "ms", "speedup", "identical"});
  table.AddRow({"serial", FormatDouble(serial_ms, 1), "1.00", "-"});
  cluster::ExecutorStats stats;
  for (int threads : {1, 2, 4, 8}) {
    cluster::AdmissionExecutor executor(
        cluster::ExecutorOptions{threads});
    timer.Start();
    const auto parallel = executor.AdmitBatchParallel(requests);
    const double parallel_ms = timer.ElapsedMillis();
    STREAMBID_CHECK(parallel.ok());
    const bool identical = SameAllocations(*serial, *parallel);
    STREAMBID_CHECK(identical);  // The determinism contract.
    table.AddRow({std::to_string(threads), FormatDouble(parallel_ms, 1),
                  FormatDouble(serial_ms / parallel_ms, 2),
                  identical ? "yes" : "NO"});
    stats = executor.StatsReport();
  }
  std::fputs(table.ToAligned().c_str(), stdout);

  std::printf("\n# executor rolling stats (8-thread run)\n");
  TextTable stats_table({"mechanism", "count", "admit_rate", "util",
                         "mean_ms", "max_ms", "overruns"});
  for (const auto& [name, m] : stats.per_mechanism) {
    stats_table.AddRow({name, std::to_string(m.count),
                        FormatDouble(m.admit_rate.mean(), 3),
                        FormatDouble(m.utilization.mean(), 3),
                        FormatDouble(m.elapsed_ms.mean(), 3),
                        FormatDouble(m.elapsed_ms.max(), 3),
                        std::to_string(m.deadline_overruns)});
  }
  std::fputs(stats_table.ToAligned().c_str(), stdout);
}

// --- Experiment 2: one big center vs N shards. -----------------------

struct TenantBookEntry {
  int id;
  auction::UserId user;
  double bid;
  double threshold;
};

/// Deterministic tenant book: distinct users, Zipf-ish bids, a handful
/// of distinct select thresholds so tenants share operators — which is
/// precisely what sharding splits.
std::vector<TenantBookEntry> MakeTenantBook(int tenants) {
  std::vector<TenantBookEntry> book;
  Rng rng(0x7EA7u);
  book.reserve(static_cast<size_t>(tenants));
  for (int i = 1; i <= tenants; ++i) {
    TenantBookEntry entry;
    entry.id = i;
    entry.user = i;
    entry.bid = 5.0 + rng.NextRange(0.0, 95.0);
    entry.threshold = 95.0 + 2.0 * static_cast<double>(rng.NextBounded(8));
    book.push_back(entry);
  }
  return book;
}

stream::QuerySubmission MakeTenant(const TenantBookEntry& entry) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(entry.threshold));
  stream::QuerySubmission sub;
  sub.query_id = entry.id;
  sub.user = entry.user;
  sub.bid = entry.bid;
  sub.plan = b.Build(sel);
  return sub;
}

Status RegisterQuotes(stream::Engine& engine) {
  return engine.RegisterSource(stream::MakeStockQuoteSource(
      "quotes", {"IBM", "AAPL", "MSFT", "GOOG"}, /*rate=*/100.0, 5));
}

struct ShardingRow {
  std::string layout;
  double revenue = 0.0;
  int admitted = 0;
  int submitted = 0;
  double utilization = 0.0;
  double wall_ms = 0.0;
};

ShardingRow RunLayout(const std::string& mechanism, int num_shards,
                      cluster::RoutingPolicy policy, int tenants,
                      int periods, double total_capacity) {
  cluster::ClusterOptions options;
  options.num_shards = num_shards;
  options.total_capacity = total_capacity;
  options.routing = policy;
  options.mechanism = mechanism;
  options.period_length = 30.0;
  options.seed = 97;
  options.engine_options.tick = 1.0;
  options.engine_options.sink_history = 4;
  options.executor_threads = num_shards;
  cluster::ClusterCenter center(options, RegisterQuotes);

  const std::vector<TenantBookEntry> book = MakeTenantBook(tenants);
  ShardingRow row;
  row.layout = num_shards == 1
                   ? "1-center"
                   : std::to_string(num_shards) + "-shard/" +
                         cluster::RoutingPolicyName(policy);
  Timer timer;
  for (int period = 0; period < periods; ++period) {
    for (const TenantBookEntry& entry : book) {
      const auto shard = center.Submit(MakeTenant(entry));
      STREAMBID_CHECK(shard.ok());
    }
    const auto report = center.RunPeriod();
    STREAMBID_CHECK(report.ok());
    row.admitted += report->admitted;
    row.submitted += report->submissions;
    row.utilization += report->auction_utilization / periods;
  }
  row.wall_ms = timer.ElapsedMillis();
  row.revenue = center.total_revenue();
  return row;
}

void RunShardingExperiment(const bench::BenchConfig& config) {
  const int tenants =
      std::min(120, std::max(16, config.queries / 10));
  const int periods = 3;
  // Half the demand of distinct selects fits: the auction stays binding
  // in both layouts (each distinct threshold costs ~1 unit shared by
  // its tenants; 8 distinct thresholds -> ~8 units of demand).
  const double total_capacity = 4.0;
  std::printf("\n== 1 big center vs 4 shards at equal total capacity "
              "(%d tenants, %d periods) ==\n",
              tenants, periods);

  TextTable table({"mechanism", "layout", "revenue", "admit_rate",
                   "auction_util", "wall_ms"});
  for (const std::string& mechanism : {std::string("cat"),
                                       std::string("car"),
                                       std::string("two-price")}) {
    std::vector<ShardingRow> rows;
    rows.push_back(RunLayout(mechanism, 1,
                             cluster::RoutingPolicy::kHashUser, tenants,
                             periods, total_capacity));
    for (cluster::RoutingPolicy policy :
         {cluster::RoutingPolicy::kHashUser,
          cluster::RoutingPolicy::kLeastLoaded,
          cluster::RoutingPolicy::kPriceAware}) {
      rows.push_back(RunLayout(mechanism, 4, policy, tenants, periods,
                               total_capacity));
    }
    for (const ShardingRow& row : rows) {
      table.AddRow(
          {mechanism, row.layout, FormatDouble(row.revenue, 2),
           FormatDouble(row.submitted > 0 ? static_cast<double>(row.admitted) /
                                                row.submitted
                                          : 0.0,
                        3),
           FormatDouble(row.utilization, 3),
           FormatDouble(row.wall_ms, 1)});
    }
  }
  std::fputs(table.ToAligned().c_str(), stdout);
  std::printf("# sharding splits operator sharing: the 1-center layout "
              "admits tenants whose operators are shared cluster-wide,\n"
              "# shards only share within a shard — the revenue gap "
              "quantifies the paper's sharing effect at cluster scale\n");
}

// --- Experiment 3: barriered vs pipelined periods. -------------------

bool SameClusterReports(const cluster::ClusterPeriodReport& a,
                        const cluster::ClusterPeriodReport& b) {
  if (a.submissions != b.submissions || a.admitted != b.admitted ||
      a.revenue != b.revenue || a.total_payoff != b.total_payoff ||
      a.provisioned_capacity != b.provisioned_capacity ||
      a.energy_cost != b.energy_cost ||
      a.shard_reports.size() != b.shard_reports.size()) {
    return false;
  }
  for (size_t s = 0; s < a.shard_reports.size(); ++s) {
    const cloud::PeriodReport& sa = a.shard_reports[s];
    const cloud::PeriodReport& sb = b.shard_reports[s];
    if (sa.admitted_ids != sb.admitted_ids ||
        sa.payments != sb.payments || sa.revenue != sb.revenue) {
      return false;
    }
  }
  return true;
}

struct PipelineRow {
  double wall_ms = 0.0;
  std::vector<cluster::ClusterPeriodReport> reports;
};

PipelineRow RunPeriodMode(bool pipelined, int tenants, int periods) {
  cluster::ClusterOptions options;
  options.num_shards = 4;
  options.total_capacity = 4.0;
  options.routing = cluster::RoutingPolicy::kHashUser;
  options.mechanism = "cat";
  // Long enough periods that engine execution dominates — the stage the
  // barriered loop cannot overlap with the next shard's auction.
  options.period_length = 120.0;
  options.seed = 97;
  options.engine_options.tick = 1.0;
  options.engine_options.sink_history = 4;
  options.executor_threads = 4;
  cluster::ClusterCenter center(options, RegisterQuotes);

  const std::vector<TenantBookEntry> book = MakeTenantBook(tenants);
  PipelineRow row;
  Timer timer;
  for (int period = 0; period < periods; ++period) {
    for (const TenantBookEntry& entry : book) {
      STREAMBID_CHECK(center.Submit(MakeTenant(entry)).ok());
    }
    const auto report =
        pipelined ? center.RunPeriod() : center.RunPeriodBarriered();
    STREAMBID_CHECK(report.ok());
    row.reports.push_back(*report);
  }
  row.wall_ms = timer.ElapsedMillis();
  return row;
}

void RunPipelineExperiment(const bench::BenchConfig& config) {
  const int tenants = std::min(120, std::max(16, config.queries / 10));
  const int periods = 4;
  std::printf("\n== Period pipelining: barriered vs per-shard chains "
              "(4 shards, %d tenants, %d periods) ==\n",
              tenants, periods);

  const PipelineRow barriered = RunPeriodMode(false, tenants, periods);
  const PipelineRow pipelined = RunPeriodMode(true, tenants, periods);

  STREAMBID_CHECK(barriered.reports.size() == pipelined.reports.size());
  bool identical = true;
  for (size_t p = 0; p < barriered.reports.size(); ++p) {
    identical = identical &&
                SameClusterReports(barriered.reports[p],
                                   pipelined.reports[p]);
  }
  STREAMBID_CHECK(identical);  // The determinism contract.

  TextTable table({"mode", "wall_ms", "speedup", "identical"});
  table.AddRow({"barriered", FormatDouble(barriered.wall_ms, 1), "1.00",
                "-"});
  table.AddRow({"pipelined", FormatDouble(pipelined.wall_ms, 1),
                FormatDouble(barriered.wall_ms / pipelined.wall_ms, 2),
                identical ? "yes" : "NO"});
  std::fputs(table.ToAligned().c_str(), stdout);
  bench::WriteBenchJson(
      "cluster_scaling",
      {{"barriered_wall_ms", barriered.wall_ms},
       {"pipelined_wall_ms", pipelined.wall_ms},
       {"pipeline_speedup", barriered.wall_ms / pipelined.wall_ms},
       {"reports_identical", identical ? 1.0 : 0.0}});
  std::printf("# pipelined periods run each shard's prepare/admit/"
              "complete as one chain on the persistent pool:\n"
              "# shard k's engine execution overlaps shard k+1's "
              "auction, and no per-period threads are spawned\n");
}

}  // namespace

int main() {
  bench::BenchConfig config = bench::LoadConfig();
  bench::PrintBanner("cluster scaling: parallel admission + sharded "
                     "multi-center + period pipelining",
                     config);
  RunSpeedupExperiment(config);
  RunShardingExperiment(config);
  RunPipelineExperiment(config);
  return 0;
}
