// Copyright 2026 The streambid Authors

#include "stream/value.h"

#include <gtest/gtest.h>

namespace streambid::stream {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42});
  EXPECT_EQ(i.type(), ValueType::kInt64);
  EXPECT_EQ(i.AsInt64(), 42);
  EXPECT_DOUBLE_EQ(i.AsDouble(), 42.0);

  Value d(3.5);
  EXPECT_EQ(d.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 3.5);

  Value s("IBM");
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(s.AsString(), "IBM");
}

TEST(ValueTest, NumericEqualityPromotes) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value(3.1));
  EXPECT_NE(Value(int64_t{3}), Value("3"));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, OrderingNumeric) {
  EXPECT_LT(Value(1.0), Value(int64_t{2}));
  EXPECT_FALSE(Value(2.0) < Value(int64_t{2}));
}

TEST(ValueTest, OrderingStrings) {
  EXPECT_LT(Value("abc"), Value("abd"));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, KeysDistinguishTypes) {
  EXPECT_NE(Value(int64_t{1}).ToKey(), Value("1").ToKey());
  EXPECT_EQ(Value("IBM").ToKey(), Value("IBM").ToKey());
}

TEST(ValueTest, DefaultIsZeroInt) {
  Value v;
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), 0);
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace streambid::stream
