// Copyright 2026 The streambid Authors

#include "stream/operators/aggregate.h"

#include <cmath>

#include "common/check.h"

namespace streambid::stream {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
  }
  return "?";
}

double AggregateOperator::Accumulator::Final(AggFn fn) const {
  switch (fn) {
    case AggFn::kCount:
      return static_cast<double>(count);
    case AggFn::kSum:
      return sum;
    case AggFn::kAvg:
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    case AggFn::kMin:
      return min;
    case AggFn::kMax:
      return max;
  }
  return 0.0;
}

AggregateOperator::AggregateOperator(const SchemaPtr& input_schema,
                                     AggFn fn, std::string agg_field,
                                     std::string group_field,
                                     WindowSpec window,
                                     double cost_per_tuple)
    : OperatorBase(std::string("agg(") + AggFnName(fn) + "(" + agg_field +
                       ")" +
                       (group_field.empty() ? "" : " by " + group_field) +
                       " w=" + std::to_string(window.size) + "/" +
                       std::to_string(window.slide) + ")",
                   cost_per_tuple),
      fn_(fn),
      agg_field_index_(fn == AggFn::kCount && agg_field.empty()
                           ? -1
                           : input_schema->FieldIndex(agg_field)),
      group_field_index_(group_field.empty()
                             ? -1
                             : input_schema->FieldIndex(group_field)),
      window_(window) {
  STREAMBID_CHECK(fn == AggFn::kCount || agg_field_index_ >= 0);
  STREAMBID_CHECK(group_field.empty() || group_field_index_ >= 0);
  STREAMBID_CHECK_GT(window.size, 0.0);
  STREAMBID_CHECK_GT(window.slide, 0.0);
  STREAMBID_CHECK_LE(window.slide, window.size);

  std::vector<Field> fields;
  if (group_field_index_ >= 0) {
    fields.push_back(input_schema->field(group_field_index_));
  }
  fields.push_back({"window_end", ValueType::kDouble});
  fields.push_back({"value", ValueType::kDouble});
  output_schema_ = MakeSchema(std::move(fields));
}

std::vector<VirtualTime> AggregateOperator::WindowStartsFor(
    VirtualTime ts) const {
  // Windows are aligned at multiples of slide. A tuple at ts belongs to
  // every window [s, s+size) with s <= ts < s+size and s = k*slide.
  std::vector<VirtualTime> starts;
  const double first_k = std::floor(ts / window_.slide);
  for (double k = first_k;; k -= 1.0) {
    const VirtualTime s = k * window_.slide;
    if (s < 0.0 && k < 0.0) break;
    if (s + window_.size <= ts) break;
    starts.push_back(s);
    if (k == 0.0) break;
  }
  return starts;
}

void AggregateOperator::Process(int port, const Tuple& tuple,
                                std::vector<Tuple>* out) {
  STREAMBID_DCHECK(port == 0);
  (void)port;
  (void)out;  // Emission happens on AdvanceTime.
  const double x =
      agg_field_index_ >= 0 ? tuple.value(agg_field_index_).AsDouble()
                            : 1.0;
  std::string key;
  Value key_value;
  if (group_field_index_ >= 0) {
    key_value = tuple.value(group_field_index_);
    key = key_value.ToKey();
  }
  for (VirtualTime s : WindowStartsFor(tuple.timestamp())) {
    OpenWindow& w = open_[s];
    w.start = s;
    w.groups[key].Add(x);
    if (group_field_index_ >= 0) w.group_values[key] = key_value;
  }
}

void AggregateOperator::EmitWindow(const OpenWindow& w,
                                   std::vector<Tuple>* out) {
  const VirtualTime end = w.start + window_.size;
  for (const auto& [key, acc] : w.groups) {
    std::vector<Value> values;
    if (group_field_index_ >= 0) {
      values.push_back(w.group_values.at(key));
    }
    values.emplace_back(end);
    values.emplace_back(acc.Final(fn_));
    out->emplace_back(output_schema_, std::move(values), end);
  }
}

void AggregateOperator::AdvanceTime(VirtualTime now,
                                    std::vector<Tuple>* out) {
  auto it = open_.begin();
  while (it != open_.end() && it->first + window_.size <= now) {
    EmitWindow(it->second, out);
    it = open_.erase(it);
  }
}

void AggregateOperator::Reset() { open_.clear(); }

}  // namespace streambid::stream
