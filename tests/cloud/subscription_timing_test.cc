// Copyright 2026 The streambid Authors
// The strategic behaviour §VII flags as future work, demonstrated: "a
// user who wants to run a CQ for one month in July may instead bid for
// a two month subscription starting in June if she believes demand is
// low enough in June to get charged a sufficiently low price". The
// per-category auctions are individually bid-strategyproof, but the
// REPEATED scheme is open to subscription-length/timing manipulation —
// this suite constructs exactly that scenario.

#include <gtest/gtest.h>

#include "cloud/subscription.h"

namespace streambid::cloud {
namespace {

/// Pool of ten unit-load operators.
std::vector<auction::OperatorSpec> Pool() {
  return std::vector<auction::OperatorSpec>(10, auction::OperatorSpec{1.0});
}

/// Monthly (30-day) and bimonthly (60-day) categories, half the free
/// capacity each.
std::vector<SubscriptionCategory> Categories() {
  return {{"monthly", 30, 0.5}, {"bimonthly", 60, 0.5}};
}

SubscriptionRequest Req(int id, auction::UserId user, double bid,
                        std::vector<auction::OperatorId> ops, int cat) {
  SubscriptionRequest r;
  r.request_id = id;
  r.user = user;
  r.bid = bid;
  r.operators = std::move(ops);
  r.category = cat;
  return r;
}

TEST(SubscriptionTimingTest, EarlyLongSubscriptionDodgesJulyPrices) {
  // Capacity 4: each category auction sees 2 units per day.
  SubscriptionManager mgr(Categories(), Pool(), 4.0, "cat", 1);

  // "June" (day 1): demand is low. The strategic user (id 100) wants
  // her query only for July but books a BIMONTHLY subscription now; one
  // lonely competitor keeps the June price trivial.
  ASSERT_TRUE(mgr.Submit(Req(100, 100, 50.0, {0}, /*bimonthly*/ 1)).ok());
  ASSERT_TRUE(mgr.Submit(Req(101, 101, 1.0, {1}, /*monthly*/ 0)).ok());
  const SubscriptionDayReport june = mgr.AdvanceDay();
  ASSERT_EQ(june.admitted, 2);
  double strategic_payment = -1.0;
  for (const ActiveSubscription& sub : mgr.active()) {
    if (sub.user == 100) strategic_payment = sub.payment;
  }
  // Unchallenged in her category: she pays nothing.
  ASSERT_GE(strategic_payment, 0.0);
  EXPECT_DOUBLE_EQ(strategic_payment, 0.0);

  // "July" (day 31): demand spikes. Honest users with identical
  // valuations compete for the monthly category; the strategic user's
  // subscription still runs (expires day 61), occupying capacity she
  // paid June prices for.
  for (int day = 2; day <= 30; ++day) (void)mgr.AdvanceDay();
  ASSERT_TRUE(mgr.Submit(Req(200, 200, 50.0, {2}, 0)).ok());
  ASSERT_TRUE(mgr.Submit(Req(201, 201, 48.0, {3}, 0)).ok());
  ASSERT_TRUE(mgr.Submit(Req(202, 202, 46.0, {4}, 0)).ok());
  const SubscriptionDayReport july = mgr.AdvanceDay();

  // The strategic user is still active through July.
  bool strategic_active = false;
  for (const ActiveSubscription& sub : mgr.active()) {
    strategic_active |= sub.user == 100;
  }
  EXPECT_TRUE(strategic_active);

  // July's honest monthly winners pay real prices: only one unit fits
  // the monthly slice (capacity shrank to (4-2)*0.5 = 1), so the
  // marginal bidder prices the winner at 48.
  double honest_payment = 0.0;
  for (const ActiveSubscription& sub : mgr.active()) {
    if (sub.user == 200) honest_payment = sub.payment;
  }
  EXPECT_GT(honest_payment, strategic_payment);
  EXPECT_GE(honest_payment, 40.0);

  // The manipulation: same valuation (50), same one-month need in July,
  // but booking early-and-long cost $0 while bidding honestly in July
  // costs ~$48 — the repeated-auction scheme is NOT timing-strategyproof
  // even though each daily auction is bid-strategyproof (§VII).
  (void)july;
}

TEST(SubscriptionTimingTest, CommittedCapacitySqueezesLaterAuctions) {
  SubscriptionManager mgr(Categories(), Pool(), 4.0, "cat", 2);
  ASSERT_TRUE(mgr.Submit(Req(1, 1, 60.0, {0, 1}, /*bimonthly*/ 1)).ok());
  const SubscriptionDayReport day1 = mgr.AdvanceDay();
  ASSERT_EQ(day1.admitted, 1);
  EXPECT_DOUBLE_EQ(day1.available_capacity, 4.0);

  const SubscriptionDayReport day2 = mgr.AdvanceDay();
  // Two units committed for 60 days: later bidders see half the system.
  EXPECT_DOUBLE_EQ(day2.committed_load, 2.0);
  EXPECT_DOUBLE_EQ(day2.available_capacity, 2.0);
}

TEST(SubscriptionTimingTest, ExpiryReleasesCapacityOnSchedule) {
  SubscriptionManager mgr(Categories(), Pool(), 4.0, "cat", 3);
  ASSERT_TRUE(mgr.Submit(Req(1, 1, 60.0, {0}, /*monthly*/ 0)).ok());
  (void)mgr.AdvanceDay();  // Day 1: admitted, expires day 31.
  for (int day = 2; day <= 30; ++day) {
    EXPECT_EQ(mgr.AdvanceDay().expired, 0) << "day " << day;
  }
  const SubscriptionDayReport day31 = mgr.AdvanceDay();
  EXPECT_EQ(day31.expired, 1);
  EXPECT_DOUBLE_EQ(day31.committed_load, 0.0);
}

}  // namespace
}  // namespace streambid::cloud
