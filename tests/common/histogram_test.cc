// Copyright 2026 The streambid Authors

#include "common/histogram.h"

#include <gtest/gtest.h>

#include <limits>

namespace streambid {
namespace {

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.total, 0);
  EXPECT_DOUBLE_EQ(h.sum, 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 0.0);
}

TEST(LatencyHistogramTest, BucketPlacement) {
  LatencyHistogram h;
  h.Record(0.5);   // Sub-microsecond -> bucket 0.
  h.Record(1.0);   // [1, 2) -> bucket 1.
  h.Record(3.0);   // [2, 4) -> bucket 2.
  h.Record(100.0);
  EXPECT_EQ(h.total, 4);
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 1);
  EXPECT_EQ(h.buckets[2], 1);
  EXPECT_DOUBLE_EQ(h.sum, 104.5);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 104.5 / 4.0);
}

TEST(LatencyHistogramTest, PercentileIsBucketUpperEdge) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(10.0);   // Bucket 4: [8, 16).
  h.Record(5000.0);                               // Bucket 13.
  // p50 falls in the dense bucket; its upper edge is 16 us = 0.016 ms.
  EXPECT_DOUBLE_EQ(h.PercentileMillis(0.5), 0.016);
  // p100 must cover the outlier: 5000 us lands in bucket 13, whose
  // upper edge is 8192 us = 8.192 ms.
  EXPECT_DOUBLE_EQ(h.PercentileMillis(1.0), 8.192);
}

TEST(LatencyHistogramTest, MergeMatchesSequential) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram sequential;
  for (double v : {1.0, 7.0, 90.0, 1500.0}) {
    a.Record(v);
    sequential.Record(v);
  }
  for (double v : {0.2, 33.0, 250000.0}) {
    b.Record(v);
    sequential.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.total, sequential.total);
  EXPECT_DOUBLE_EQ(a.sum, sequential.sum);
  EXPECT_EQ(a.buckets, sequential.buckets);
  EXPECT_DOUBLE_EQ(a.PercentileMillis(0.99),
                   sequential.PercentileMillis(0.99));
}

TEST(LatencyHistogramTest, MergeWithEmpty) {
  LatencyHistogram a;
  a.Record(42.0);
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.total, 1);
  empty.Merge(a);
  EXPECT_EQ(empty.total, 1);
  EXPECT_DOUBLE_EQ(empty.sum, 42.0);
}

TEST(LatencyHistogramTest, PercentileClampsOutOfRangeFractions) {
  // Regression: p <= 0, p > 1, and NaN used to walk the bucket scan
  // with a nonsense threshold; now they clamp to the min / max
  // recorded bucket.
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(10.0);  // Bucket 4: edge 0.016ms.
  h.Record(5000.0);                             // Bucket 13: edge 8.192ms.
  const double quiet_nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(h.PercentileMillis(-0.5), 0.016);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(0.0), 0.016);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(quiet_nan), 0.016);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(1.5), 8.192);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(
                       std::numeric_limits<double>::infinity()),
                   8.192);
}

TEST(LatencyHistogramTest, PercentileOnEmptyIsZeroForAnyFraction) {
  const LatencyHistogram h;
  for (const double p : {-1.0, 0.0, 0.5, 1.0, 2.0,
                         std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_DOUBLE_EQ(h.PercentileMillis(p), 0.0) << p;
  }
}

TEST(LatencyHistogramTest, ZeroFractionAnchorsAtFirstNonEmptyBucket) {
  // p == 0 must report the smallest *recorded* latency's bucket, not
  // trivially match empty bucket 0.
  LatencyHistogram h;
  h.Record(5000.0);  // Only bucket 13 is populated.
  EXPECT_DOUBLE_EQ(h.PercentileMillis(0.0), 8.192);
}

TEST(LatencyHistogramTest, MergeOfEmptyIsNoOp) {
  LatencyHistogram a;
  a.Record(42.0);
  const LatencyHistogram snapshot = a;
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.total, snapshot.total);
  EXPECT_DOUBLE_EQ(a.sum, snapshot.sum);
  EXPECT_EQ(a.buckets, snapshot.buckets);
  // Empty into empty stays exactly empty.
  LatencyHistogram e2;
  empty.Merge(e2);
  EXPECT_EQ(empty.total, 0);
  EXPECT_DOUBLE_EQ(empty.sum, 0.0);
}

TEST(LatencyHistogramTest, BucketUpperMicros) {
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperMicros(0), 1.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperMicros(1), 2.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperMicros(10), 1024.0);
}

}  // namespace
}  // namespace streambid
