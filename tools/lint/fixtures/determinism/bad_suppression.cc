// Copyright 2026 The streambid Authors
// Fixture: a NOLINT(determinism) without a reason is itself a finding.

#include <cstdlib>

inline int BareSuppressed() {
  return std::rand();  // NOLINT(determinism) WANT(bare-suppression)
}
