// Copyright 2026 The streambid Authors
// The outcome of running an admission mechanism: winners and payments.

#ifndef STREAMBID_AUCTION_ALLOCATION_H_
#define STREAMBID_AUCTION_ALLOCATION_H_

#include <string>
#include <utility>
#include <vector>

#include "auction/types.h"
#include "common/check.h"

namespace streambid::auction {

/// Winners and payments for one auction run. `admitted` and `payments`
/// are indexed by QueryId; rejected queries always pay 0 (paper §II:
/// payoff of a rejected user is 0).
struct Allocation {
  std::string mechanism;
  double capacity = 0.0;
  std::vector<bool> admitted;
  std::vector<double> payments;

  /// Number of admitted queries.
  int NumAdmitted() const {
    int n = 0;
    for (bool a : admitted) n += a ? 1 : 0;
    return n;
  }

  bool IsAdmitted(QueryId i) const {
    return admitted[static_cast<size_t>(i)];
  }
  double Payment(QueryId i) const {
    return payments[static_cast<size_t>(i)];
  }
};

/// Creates an empty (all-rejected) allocation sized for `num_queries`.
inline Allocation MakeEmptyAllocation(std::string mechanism, double capacity,
                                      int num_queries) {
  Allocation a;
  a.mechanism = std::move(mechanism);
  a.capacity = capacity;
  a.admitted.assign(static_cast<size_t>(num_queries), false);
  a.payments.assign(static_cast<size_t>(num_queries), 0.0);
  return a;
}

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_ALLOCATION_H_
