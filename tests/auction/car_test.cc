// Copyright 2026 The streambid Authors
// CAR-specific behaviour (§IV-A): remaining-load priorities recomputed
// after every admission, and the bid-dependence that breaks
// strategyproofness.

#include "auction/mechanisms/car.h"

#include <gtest/gtest.h>

#include "auction/metrics.h"
#include "gametheory/attacks.h"
#include "gametheory/payoff.h"

namespace streambid::auction {
namespace {

AuctionInstance Make(std::vector<double> op_loads,
                     std::vector<QuerySpec> queries) {
  std::vector<OperatorSpec> ops;
  for (double l : op_loads) ops.push_back({l});
  auto r = AuctionInstance::Create(std::move(ops), std::move(queries));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(CarTest, PrioritiesRecomputedAfterEachAdmission) {
  // Paper Example 1 dynamics: q2 first (priority 12), then q1's CR drops
  // from 5 to 1, boosting its priority from 11 to 55.
  AuctionInstance inst = gametheory::Example1Instance();
  AuctionContext rng(1);
  const Allocation alloc = MakeCar()->Run(inst, 10.0, rng);
  EXPECT_TRUE(alloc.IsAdmitted(0));
  EXPECT_TRUE(alloc.IsAdmitted(1));
  EXPECT_FALSE(alloc.IsAdmitted(2));
}

TEST(CarTest, FullyCoveredQueryAdmittedFree) {
  // q1's only operator is shared with q0; once q0 wins, q1 has CR 0 and
  // infinite priority — admitted at no charge even at tight capacity.
  AuctionInstance inst =
      Make({4.0, 4.0}, {{0, 40.0, {0}}, {1, 1.0, {0}}, {2, 39.0, {1}}});
  AuctionContext rng(1);
  const Allocation alloc = MakeCar()->Run(inst, 4.0, rng);
  EXPECT_TRUE(alloc.IsAdmitted(0));
  EXPECT_TRUE(alloc.IsAdmitted(1));
  EXPECT_FALSE(alloc.IsAdmitted(2));
  EXPECT_DOUBLE_EQ(alloc.Payment(1), 0.0);
}

TEST(CarTest, StopsAtFirstMisfitEvenIfLaterFits) {
  AuctionInstance inst = Make(
      {5.0, 6.0, 1.0},
      {{0, 50.0, {0}}, {1, 54.0, {1}}, {2, 6.0, {2}}});
  AuctionContext rng(1);
  const Allocation alloc = MakeCar()->Run(inst, 7.0, rng);
  EXPECT_TRUE(alloc.IsAdmitted(0));
  EXPECT_FALSE(alloc.IsAdmitted(1));
  EXPECT_FALSE(alloc.IsAdmitted(2));  // q2 fits but scan stopped.
}

TEST(CarTest, UnderbiddingReducesPaymentOnSharedOps) {
  // The §IV-A manipulation: user 1 (q1 = {A, B}) bids below her value so
  // she is selected after q2 (which covers A), shrinking her
  // selection-time CR from 5 to 1 and her payment fivefold.
  AuctionInstance truthful = gametheory::Example1Instance();
  AuctionContext rng(1);
  // Truthful: priorities 11, 12, 10 -> q2 then q1; q1's payment $10.
  // (Already selected after q2 in Example 1 — make q1's density highest
  // so truthful selection happens FIRST and costs more.)
  AuctionInstance boosted = truthful.WithBid(0, 80.0);
  const Allocation honest = MakeCar()->Run(boosted, 10.0, rng);
  ASSERT_TRUE(honest.IsAdmitted(0));
  // q1 selected first at CR 5: pays 5 * (100/10) = 50.
  EXPECT_DOUBLE_EQ(honest.Payment(0), 50.0);

  // Same true value 80, but she strategically bids 55 (density 11 <
  // q2's 12 implies selection after q2, CR 1).
  AuctionInstance lying = boosted.WithBid(0, 55.0);
  const Allocation strategic = MakeCar()->Run(lying, 10.0, rng);
  ASSERT_TRUE(strategic.IsAdmitted(0));
  EXPECT_DOUBLE_EQ(strategic.Payment(0), 10.0);
  // Payoff with value 80: honest 30 < strategic 70. Not strategyproof.
  EXPECT_GT(80.0 - strategic.Payment(0), 80.0 - honest.Payment(0));
}

TEST(CarTest, AllAdmittedPayNothing) {
  AuctionInstance inst = Make({1.0, 1.0}, {{0, 5.0, {0}}, {1, 4.0, {1}}});
  AuctionContext rng(1);
  const Allocation alloc = MakeCar()->Run(inst, 10.0, rng);
  EXPECT_EQ(alloc.NumAdmitted(), 2);
  EXPECT_DOUBLE_EQ(alloc.Payment(0), 0.0);
  EXPECT_DOUBLE_EQ(alloc.Payment(1), 0.0);
}

TEST(CarTest, FeasibleOnExample1) {
  AuctionInstance inst = gametheory::Example1Instance();
  AuctionContext rng(1);
  const Allocation alloc = MakeCar()->Run(inst, 10.0, rng);
  EXPECT_TRUE(IsFeasible(inst, alloc));
}

TEST(CarTest, NotStrategyproofByProperties) {
  EXPECT_FALSE(MakeCar()->properties().strategyproof);
}

TEST(CarTest, WorkspaceReuseDoesNotChangeResults) {
  // The heap and load buffers live in the context workspace; a context
  // hot from other runs must produce the same allocation as a fresh one.
  AuctionInstance small =
      Make({4.0, 4.0}, {{0, 40.0, {0}}, {1, 1.0, {0}}, {2, 39.0, {1}}});
  AuctionInstance inst = gametheory::Example1Instance();
  const MechanismPtr car = MakeCar();
  AuctionContext hot(1);
  (void)car->Run(small, 4.0, hot);   // Dirty the workspace...
  (void)car->Run(inst, 100.0, hot);  // ...at a different size too.
  const Allocation reused = car->Run(inst, 10.0, hot);
  AuctionContext fresh(1);
  const Allocation expected = car->Run(inst, 10.0, fresh);
  EXPECT_EQ(reused.admitted, expected.admitted);
  EXPECT_EQ(reused.payments, expected.payments);
}

}  // namespace
}  // namespace streambid::auction
