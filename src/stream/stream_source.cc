// Copyright 2026 The streambid Authors

#include "stream/stream_source.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace streambid::stream {

std::vector<Tuple> StreamSource::EmitUntil(VirtualTime until) {
  std::vector<Tuple> out;
  if (rate_ <= 0.0) return out;
  const VirtualTime step = 1.0 / rate_;
  while (next_ts_ <= until) {
    out.emplace_back(schema_, Generate(next_ts_, rng_), next_ts_);
    next_ts_ += step;
    ++emitted_;
  }
  return out;
}

namespace {

class StockQuoteSource final : public StreamSource {
 public:
  StockQuoteSource(std::string name, std::vector<std::string> symbols,
                   double rate, uint64_t seed)
      : StreamSource(std::move(name),
                     MakeSchema({{"symbol", ValueType::kString},
                                 {"price", ValueType::kDouble},
                                 {"volume", ValueType::kInt64}}),
                     rate, seed),
        symbols_(std::move(symbols)),
        prices_(symbols_.size(), 100.0) {
    STREAMBID_CHECK(!symbols_.empty());
  }

 protected:
  std::vector<Value> Generate(VirtualTime ts, Rng& rng) override {
    (void)ts;
    const size_t k = rng.NextBounded(symbols_.size());
    // Geometric random walk with ~1% step volatility.
    prices_[k] *= std::exp((rng.NextDouble() - 0.5) * 0.02);
    const int64_t volume = 100 + static_cast<int64_t>(rng.NextBounded(10000));
    return {Value(symbols_[k]), Value(prices_[k]), Value(volume)};
  }

 private:
  std::vector<std::string> symbols_;
  std::vector<double> prices_;
};

class NewsSource final : public StreamSource {
 public:
  NewsSource(std::string name, std::vector<std::string> companies,
             double listed_fraction, double rate, uint64_t seed)
      : StreamSource(std::move(name),
                     MakeSchema({{"company", ValueType::kString},
                                 {"category", ValueType::kString},
                                 {"listed", ValueType::kInt64},
                                 {"sentiment", ValueType::kDouble}}),
                     rate, seed),
        companies_(std::move(companies)),
        listed_fraction_(listed_fraction) {
    STREAMBID_CHECK(!companies_.empty());
  }

 protected:
  std::vector<Value> Generate(VirtualTime ts, Rng& rng) override {
    (void)ts;
    static const char* kCategories[] = {"earnings", "merger", "product",
                                        "regulation", "markets"};
    const size_t k = rng.NextBounded(companies_.size());
    const int64_t listed = rng.NextBool(listed_fraction_) ? 1 : 0;
    const double sentiment = rng.NextRange(-1.0, 1.0);
    return {Value(companies_[k]),
            Value(std::string(kCategories[rng.NextBounded(5)])),
            Value(listed), Value(sentiment)};
  }

 private:
  std::vector<std::string> companies_;
  double listed_fraction_;
};

class SensorSource final : public StreamSource {
 public:
  SensorSource(std::string name, int num_sensors, double rate,
               uint64_t seed)
      : StreamSource(std::move(name),
                     MakeSchema({{"sensor", ValueType::kInt64},
                                 {"reading", ValueType::kDouble}}),
                     rate, seed),
        readings_(static_cast<size_t>(num_sensors), 20.0) {
    STREAMBID_CHECK_GT(num_sensors, 0);
  }

 protected:
  std::vector<Value> Generate(VirtualTime ts, Rng& rng) override {
    (void)ts;
    const size_t k = rng.NextBounded(readings_.size());
    // Mean-reverting walk around 20.0.
    readings_[k] += 0.1 * (20.0 - readings_[k]) + rng.NextRange(-0.5, 0.5);
    return {Value(static_cast<int64_t>(k)), Value(readings_[k])};
  }

 private:
  std::vector<double> readings_;
};

}  // namespace

StreamSourcePtr MakeStockQuoteSource(std::string name,
                                     std::vector<std::string> symbols,
                                     double rate, uint64_t seed) {
  return std::make_unique<StockQuoteSource>(std::move(name),
                                            std::move(symbols), rate, seed);
}

StreamSourcePtr MakeNewsSource(std::string name,
                               std::vector<std::string> companies,
                               double listed_fraction, double rate,
                               uint64_t seed) {
  return std::make_unique<NewsSource>(std::move(name), std::move(companies),
                                      listed_fraction, rate, seed);
}

StreamSourcePtr MakeSensorSource(std::string name, int num_sensors,
                                 double rate, uint64_t seed) {
  return std::make_unique<SensorSource>(std::move(name), num_sensors, rate,
                                        seed);
}

}  // namespace streambid::stream
