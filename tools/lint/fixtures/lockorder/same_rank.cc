// Copyright 2026 The streambid Authors
// Fixture: ranks must STRICTLY ascend -- two mutexes of the same rank
// nested is a descent finding (two threads nesting them in opposite
// orders deadlock, and the rank table cannot order them).

#include "ranks.h"

Mutex g_same_first{LockRank::kMiddle, "fixture/same_first"};
Mutex g_same_second{LockRank::kMiddle, "fixture/same_second"};

inline void SameRankNesting() {
  MutexLock first(g_same_first);
  MutexLock second(g_same_second);  // WANT(lock-order-descent)
}
