// Copyright 2026 The streambid Authors
// Inter-period shard rebalancing in ~70 lines: a 4-shard cluster whose
// hash placement piles six hot tenants onto one shard. Watch the
// ShardRebalancer read the period signals, migrate tenants from the
// hot shard to the idle ones (bounded, with cooldown hysteresis), pin
// them there via routing overrides, and lift cluster revenue as the
// spread demand clears on capacity the static placement wasted.

#include <cstdio>

#include "cluster/cluster_center.h"
#include "common/check.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

using namespace streambid;

namespace {

stream::QuerySubmission MakeTenant(int id, auction::UserId user,
                                   double bid, double threshold) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(threshold));
  stream::QuerySubmission sub;
  sub.query_id = id;
  sub.user = user;
  sub.bid = bid;
  sub.plan = b.Build(sel);
  return sub;
}

}  // namespace

int main() {
  cluster::ClusterOptions options;
  options.num_shards = 4;
  options.total_capacity = 8.0;  // 2 units per shard.
  options.routing = cluster::RoutingPolicy::kHashUser;
  options.mechanism = "cat";
  options.period_length = 10.0;
  options.seed = 7;
  options.engine_options.tick = 1.0;
  options.rebalance.enabled = true;
  options.rebalance.max_moves_per_period = 2;  // Bounded churn.
  options.rebalance.min_history_periods = 2;   // Signals first.
  options.rebalance.tenant_cooldown_periods = 3;
  cluster::ClusterCenter center(options, [](stream::Engine& engine) {
    return engine.RegisterSource(stream::MakeStockQuoteSource(
        "quotes", {"IBM", "AAPL", "MSFT"}, /*rate=*/100.0, 5));
  });

  // Ten hot users that all hash to the same shard — the skew a static
  // placement cannot escape.
  std::vector<auction::UserId> hot;
  const int hot_shard = static_cast<int>(
      cluster::ShardRouter::HashUser(1) % 4ull);
  for (auction::UserId u = 1; hot.size() < 10; ++u) {
    if (static_cast<int>(cluster::ShardRouter::HashUser(u) % 4ull) ==
        hot_shard) {
      hot.push_back(u);
    }
  }

  std::printf("period  admitted/submitted  revenue  migrations\n");
  for (int period = 0; period < 10; ++period) {
    for (size_t k = 0; k < hot.size(); ++k) {
      STREAMBID_CHECK(
          center
              .Submit(MakeTenant(period * 10 + static_cast<int>(k) + 1,
                                 hot[k],
                                 80.0 - 6.0 * static_cast<double>(k),
                                 102.0 + 3.0 * static_cast<double>(k)))
              .ok());
    }
    const auto report = center.RunPeriod();
    STREAMBID_CHECK(report.ok());
    std::string moved;
    if (!center.migrations().empty() &&
        center.migrations().back().period == period + 1) {
      const cluster::MigrationPlan& plan = center.migrations().back();
      for (const cluster::TenantMove& move : plan.moves) {
        moved += " user" + std::to_string(move.user) + ":" +
                 std::to_string(move.from) + "->" +
                 std::to_string(move.to);
      }
    }
    std::printf("%6d  %8d/%-9d  %7.2f %s\n", period, report->admitted,
                report->submissions, report->revenue,
                moved.empty() ? " (none)" : moved.c_str());
  }
  std::printf("\ntotal revenue: %.2f; tenants pinned off their hash "
              "home: %zu\n",
              center.total_revenue(),
              center.placement_overrides().size());
  return 0;
}
