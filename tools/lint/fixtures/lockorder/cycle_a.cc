// Copyright 2026 The streambid Authors
// Fixture (with cycle_b.cc): a two-lock cycle across files. Neither
// mutex is ranked, so the per-edge rank check cannot fire -- the cycle
// rule is what catches it (reported once, at the smallest edge site).

#include "ranks.h"

void LockBThenA();

Mutex g_cyc_a;  // WANT(unranked-mutex)

inline void LockAThenB() {
  MutexLock a(g_cyc_a);
  LockBThenA();  // WANT(lock-order-cycle)
}
