// Copyright 2026 The streambid Authors
// Lightweight Status / Result<T> error handling (no exceptions), in the
// style of absl::Status / arrow::Result. Library functions that can fail
// return Status or Result<T>; callers must inspect before use.

#ifndef STREAMBID_COMMON_STATUS_H_
#define STREAMBID_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace streambid {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// Returns a stable human-readable name for `code`.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

/// Value-semantic error carrier. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "CODE: message" ("OK" when ok).
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// failed Result is a fatal error (checked).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors StatusOr<T>.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    STREAMBID_CHECK(!status_.ok());  // OK statuses must carry a value.
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    STREAMBID_CHECK(ok());
    return *value_;
  }
  T& value() & {
    STREAMBID_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    STREAMBID_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

/// Propagates a non-OK Status from an expression (early return).
#define STREAMBID_RETURN_IF_ERROR(expr)          \
  do {                                           \
    ::streambid::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a Result expression or early-returns its Status.
/// (Double-expansion so __LINE__ resolves before pasting — otherwise two
/// uses in one scope would both declare `_res___LINE__`.)
#define STREAMBID_STATUS_CONCAT_IMPL(a, b) a##b
#define STREAMBID_STATUS_CONCAT(a, b) STREAMBID_STATUS_CONCAT_IMPL(a, b)
#define STREAMBID_ASSIGN_OR_RETURN(lhs, expr)                      \
  STREAMBID_ASSIGN_OR_RETURN_IMPL(                                 \
      STREAMBID_STATUS_CONCAT(_res_, __LINE__), lhs, expr)
#define STREAMBID_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) {                                      \
    return tmp.status();                                \
  }                                                     \
  lhs = std::move(tmp).value()

}  // namespace streambid

#endif  // STREAMBID_COMMON_STATUS_H_
