// Copyright 2026 The streambid Authors
// Reproduces the paper's worked Example 1 (§II, §IV) exactly:
//   q1 = {A, B}, bid $55;  q2 = {A, C}, bid $72;  q3 = {D, E}, bid $100;
//   loads A=4 B=1 C=2, D+E=10; capacity 10; A shared by q1 and q2.
// Expected outcomes (quoted from the paper):
//   CAR: winners {q1, q2}, payments $10 and $60, q3 lost at $10/unit.
//   CAF: priorities 18.34/18/10, winners {q1, q2}, payments $30 and $40.
//   CAT: priorities 11/12/10, winners {q1, q2}, payments $50 and $60.

#include <gtest/gtest.h>

#include "auction/metrics.h"
#include "auction/registry.h"
#include "gametheory/attacks.h"

namespace streambid::auction {
namespace {

using gametheory::Example1Instance;
using gametheory::kExample1Capacity;

class Example1Test : public ::testing::Test {
 protected:
  Allocation RunMechanism(const std::string& name) {
    auto mechanism = MakeMechanism(name);
    EXPECT_TRUE(mechanism.ok());
    AuctionContext rng(42);
    return (*mechanism)->Run(instance_, kExample1Capacity, rng);
  }

  AuctionInstance instance_ = Example1Instance();
};

TEST_F(Example1Test, DerivedLoadsMatchPaper) {
  // CT: q1 = 4+1 = 5, q2 = 4+2 = 6, q3 = 10.
  EXPECT_DOUBLE_EQ(instance_.total_load(0), 5.0);
  EXPECT_DOUBLE_EQ(instance_.total_load(1), 6.0);
  EXPECT_DOUBLE_EQ(instance_.total_load(2), 10.0);
  // CSF: q1 = 4/2 + 1 = 3, q2 = 4/2 + 2 = 4, q3 = 10.
  EXPECT_DOUBLE_EQ(instance_.fair_share_load(0), 3.0);
  EXPECT_DOUBLE_EQ(instance_.fair_share_load(1), 4.0);
  EXPECT_DOUBLE_EQ(instance_.fair_share_load(2), 10.0);
  // Operator A is shared by two queries.
  EXPECT_EQ(instance_.sharing_degree(0), 2);
  EXPECT_EQ(instance_.sharing_degree(3), 1);
}

TEST_F(Example1Test, CarAdmitsQ1Q2AndChargesTenAndSixty) {
  const Allocation alloc = RunMechanism("car");
  EXPECT_TRUE(alloc.IsAdmitted(0));
  EXPECT_TRUE(alloc.IsAdmitted(1));
  EXPECT_FALSE(alloc.IsAdmitted(2));
  // q2 picked first (priority 12); q1's remaining load drops to 1
  // (operator A already admitted), priority 55. Price: $10 per unit of
  // remaining load (q3: bid 100 / CR 10).
  EXPECT_DOUBLE_EQ(alloc.Payment(0), 10.0);
  EXPECT_DOUBLE_EQ(alloc.Payment(1), 60.0);
  EXPECT_DOUBLE_EQ(alloc.Payment(2), 0.0);
}

TEST_F(Example1Test, CafAdmitsQ1Q2AndChargesThirtyAndForty) {
  const Allocation alloc = RunMechanism("caf");
  EXPECT_TRUE(alloc.IsAdmitted(0));
  EXPECT_TRUE(alloc.IsAdmitted(1));
  EXPECT_FALSE(alloc.IsAdmitted(2));
  // $10 per unit of static fair-share load (q3: bid 100 / CSF 10).
  EXPECT_DOUBLE_EQ(alloc.Payment(0), 30.0);
  EXPECT_DOUBLE_EQ(alloc.Payment(1), 40.0);
}

TEST_F(Example1Test, CatAdmitsQ1Q2AndChargesFiftyAndSixty) {
  const Allocation alloc = RunMechanism("cat");
  EXPECT_TRUE(alloc.IsAdmitted(0));
  EXPECT_TRUE(alloc.IsAdmitted(1));
  EXPECT_FALSE(alloc.IsAdmitted(2));
  // $10 per unit of total load (q3: bid 100 / CT 10).
  EXPECT_DOUBLE_EQ(alloc.Payment(0), 50.0);
  EXPECT_DOUBLE_EQ(alloc.Payment(1), 60.0);
}

TEST_F(Example1Test, PlusVariantsAdmitSameWinnersHere) {
  // With capacity 10 and q3 needing 10 fresh units, skipping does not
  // change the outcome of this instance; only payments differ (movement
  // windows extend to the end of the list -> q1/q2 still pay based on
  // q3, the first query whose admission would displace them).
  for (const char* name : {"caf+", "cat+"}) {
    const Allocation alloc = RunMechanism(name);
    EXPECT_TRUE(alloc.IsAdmitted(0)) << name;
    EXPECT_TRUE(alloc.IsAdmitted(1)) << name;
    EXPECT_FALSE(alloc.IsAdmitted(2)) << name;
  }
  // CAF+ movement windows: placing q1 after q2 still wins (A covered, B
  // fits); placing q1 after q3 is impossible since q3 can never be
  // admitted after q2+q1... but the window simulation drops q1, so after
  // {q2, q3-rejected}: q1 still fits => last(q1) = null? No: with q1
  // absent, q2 (6) is admitted, then q3 (10) does not fit and is
  // skipped; q1 placed after q3 occupies 6+... A covered, so +1 = 7
  // <= 10: q1 still wins. Window spans the list: q1 pays 0.
  const Allocation caf_plus = RunMechanism("caf+");
  EXPECT_DOUBLE_EQ(caf_plus.Payment(0), 0.0);
  // q2 after q3: with q2 absent, q1 (5) admitted, q3 (10) skipped; q2
  // placed after q3 needs 2 fresh units (A covered): wins. Pays 0.
  EXPECT_DOUBLE_EQ(caf_plus.Payment(1), 0.0);
}

TEST_F(Example1Test, GvAdmitsOnlyQ3) {
  // Greedy by valuation: q3 ($100, load 10) exactly fills capacity;
  // q2 no longer fits, so the scan stops. Winners pay the first losing
  // bid, $72.
  const Allocation alloc = RunMechanism("gv");
  EXPECT_FALSE(alloc.IsAdmitted(0));
  EXPECT_FALSE(alloc.IsAdmitted(1));
  EXPECT_TRUE(alloc.IsAdmitted(2));
  EXPECT_DOUBLE_EQ(alloc.Payment(2), 72.0);
}

TEST_F(Example1Test, AllocationsAreFeasible) {
  for (const auto& name : AllMechanismNames()) {
    const Allocation alloc = RunMechanism(name);
    EXPECT_TRUE(IsFeasible(instance_, alloc)) << name;
  }
}

TEST_F(Example1Test, MetricsMatchHandComputation) {
  const Allocation cat = RunMechanism("cat");
  const AllocationMetrics m = ComputeMetrics(instance_, cat);
  EXPECT_DOUBLE_EQ(m.profit, 110.0);            // 50 + 60.
  EXPECT_NEAR(m.admission_rate, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.total_payoff, (55 - 50) + (72 - 60));
  EXPECT_DOUBLE_EQ(m.utilization, 0.7);         // (4+1+2) / 10.
}

}  // namespace
}  // namespace streambid::auction
