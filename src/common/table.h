// Copyright 2026 The streambid Authors
// Plain-text table and CSV emitters used by the bench harness to print
// the paper's figures (as CSV series) and tables (as aligned text).

#ifndef STREAMBID_COMMON_TABLE_H_
#define STREAMBID_COMMON_TABLE_H_

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace streambid {

/// Collects rows of string cells and renders them either as an aligned
/// monospace table (for paper Tables) or CSV (for paper Figures, so the
/// series can be re-plotted directly).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; must match the header arity.
  void AddRow(std::vector<std::string> cells) {
    STREAMBID_CHECK_EQ(cells.size(), header_.size());
    rows_.push_back(std::move(cells));
  }

  /// Renders with column alignment and a header separator.
  std::string ToAligned() const {
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        out << std::left << std::setw(static_cast<int>(width[c]) + 2)
            << row[c];
      }
      out << "\n";
    };
    emit_row(header_);
    size_t total = 0;
    for (size_t w : width) total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto& row : rows_) emit_row(row);
    return out.str();
  }

  /// Renders as CSV (header row + data rows).
  std::string ToCsv() const {
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out << ",";
        out << row[c];
      }
      out << "\n";
    };
    emit_row(header_);
    for (const auto& row : rows_) emit_row(row);
    return out.str();
  }

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits (fixed notation).
inline std::string FormatDouble(double v, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// Formats an integer count.
inline std::string FormatInt(int64_t v) { return std::to_string(v); }

/// Formats a ratio as a percentage with `digits` fractional digits.
inline std::string FormatPercent(double ratio, int digits = 1) {
  return FormatDouble(ratio * 100.0, digits) + "%";
}

}  // namespace streambid

#endif  // STREAMBID_COMMON_TABLE_H_
