// Copyright 2026 The streambid Authors
// Fixture: std::random_device is ambient entropy -- banned.

#include <random>

inline unsigned Entropy() {
  std::random_device device;  // WANT(random-device)
  return device();
}
