// Copyright 2026 The streambid Authors

#include "common/cpu.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace streambid {
namespace {

/// Reads a small text file fully; empty string on any failure.
std::string ReadSmallFile(const char* path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// CPUs permitted by the scheduling affinity mask; 0 if unknown.
int AffinityCpuCount() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    return CPU_COUNT(&set);
  }
#endif
  return 0;
}

/// CPUs permitted by the cgroup CPU quota (v2 then v1); 0 if unlimited
/// or unreadable.
int CgroupCpuCount() {
  const int v2 = ParseCgroupCpuMax(
      ReadSmallFile("/sys/fs/cgroup/cpu.max"));
  if (v2 > 0) return v2;
  const std::string quota =
      ReadSmallFile("/sys/fs/cgroup/cpu/cpu.cfs_quota_us");
  const std::string period =
      ReadSmallFile("/sys/fs/cgroup/cpu/cpu.cfs_period_us");
  if (quota.empty() || period.empty()) return 0;
  return CpusFromQuota(std::atoll(quota.c_str()),
                       std::atoll(period.c_str()));
}

}  // namespace

int ParseCgroupCpuMax(const std::string& content) {
  std::istringstream in(content);
  std::string quota;
  long long period = 0;
  if (!(in >> quota >> period)) return 0;
  if (quota == "max") return 0;
  char* end = nullptr;
  const long long quota_us = std::strtoll(quota.c_str(), &end, 10);
  if (end == quota.c_str() || *end != '\0') return 0;
  return CpusFromQuota(quota_us, period);
}

int CpusFromQuota(long long quota_us, long long period_us) {
  if (quota_us <= 0 || period_us <= 0) return 0;
  const long long cpus = (quota_us + period_us - 1) / period_us;
  return static_cast<int>(std::max(1LL, cpus));
}

int AvailableCpuCount() {
  int n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  const int affinity = AffinityCpuCount();
  if (affinity > 0) n = std::min(n, affinity);
  const int cgroup = CgroupCpuCount();
  if (cgroup > 0) n = std::min(n, cgroup);
  return std::max(1, n);
}

}  // namespace streambid
