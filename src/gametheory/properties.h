// Copyright 2026 The streambid Authors
// Structural property checks from the §III characterizations:
// monotonicity (a winner keeps winning when raising her bid) and
// critical-value pricing (a winner's payment equals the bid threshold at
// which she stops winning) — together equivalent to
// bid-strategyproofness in single-parameter settings [Nisan 2007].
// Mechanisms are addressed by registry name through the AdmissionService.

#ifndef STREAMBID_GAMETHEORY_PROPERTIES_H_
#define STREAMBID_GAMETHEORY_PROPERTIES_H_

#include <cstdint>
#include <string_view>

#include "auction/instance.h"
#include "service/admission_service.h"

namespace streambid::gametheory {

/// Result of a monotonicity sweep.
struct MonotonicityReport {
  bool monotone = true;
  auction::QueryId violating_query = auction::kNoQuery;
  double violating_bid = 0.0;
};

/// Checks (deterministic mechanisms only): every winner still wins after
/// multiplying her bid by each factor > 1; every loser still loses after
/// multiplying by each factor < 1. Checks the SMB extension too when
/// `check_subset_monotonicity`: a winner restricted to a strict subset of
/// her operators still wins (§III, Lehmann et al. characterization).
MonotonicityReport CheckMonotonicity(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    bool check_subset_monotonicity, uint64_t seed = 0);

/// Binary-searches the critical bid of `query`: the threshold value c
/// such that bidding above c wins and below c loses. Requires a monotone
/// deterministic mechanism. Returns 0 when the query wins even with bid
/// ~0, and +inf (represented as `unbounded=true`) when it never wins.
struct CriticalValue {
  double value = 0.0;
  bool unbounded = false;
};
CriticalValue EstimateCriticalValue(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    auction::QueryId query, uint64_t seed = 0, double hi_hint = 0.0,
    int iterations = 60);

/// Verifies that each winner's payment equals her critical value within
/// `tolerance` (the §III bid-strategyproofness characterization).
/// Returns the worst absolute discrepancy observed. `seed` drives both
/// the auctions and the query sampling when `max_queries` limits them.
double MaxCriticalValueDiscrepancy(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    uint64_t seed = 0, int max_queries = -1);

}  // namespace streambid::gametheory

#endif  // STREAMBID_GAMETHEORY_PROPERTIES_H_
