// Copyright 2026 The streambid Authors
// The Two-price randomized mechanism (paper Algorithm 3, §IV-D): the only
// proposed mechanism with a profit guarantee. Bid-strategyproof (Theorem
// 10) and, since allocation and payments ignore query loads entirely,
// strategyproof; expected profit is at least OPT_C - 2h with the
// exhaustive duplicate-handling Step 3 (Theorem 11), and OPT_C - d*h
// without it (Theorem 12), where h is the largest valuation and d the
// number of users tied at the boundary valuation.

#ifndef STREAMBID_AUCTION_MECHANISMS_TWO_PRICE_H_
#define STREAMBID_AUCTION_MECHANISMS_TWO_PRICE_H_

#include "auction/mechanism.h"

namespace streambid::auction {

/// Options for the Two-price mechanism.
struct TwoPriceOptions {
  /// Run the exhaustive Step 3 (subset search over the duplicate set D).
  /// The paper notes this step is exponential in |D|; disabling it gives
  /// the polynomial-time variant of Theorem 12.
  bool exhaustive_step3 = true;

  /// Step 3 cost cap: if |D| exceeds this, fall back to skipping Step 3
  /// (documented substitution — with integer Zipf valuations the
  /// boundary tie class can hold hundreds of queries, and 2^|D| subsets
  /// are not enumerable; the paper's guarantee degrades gracefully to
  /// the Theorem 12 bound in exactly this case).
  int max_exhaustive_duplicates = 16;
};

/// Builds the Two-price mechanism ("two-price"), exhaustive Step 3.
MechanismPtr MakeTwoPrice();

/// Builds the polynomial-time variant ("two-price-poly"), Step 3 omitted.
MechanismPtr MakeTwoPricePoly();

/// Builds a Two-price mechanism with explicit options (ablation benches).
MechanismPtr MakeTwoPriceWithOptions(const TwoPriceOptions& options);

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_MECHANISMS_TWO_PRICE_H_
