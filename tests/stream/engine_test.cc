// Copyright 2026 The streambid Authors
// End-to-end engine behaviour: execution, operator sharing, sinks, and
// measured loads.

#include "stream/engine.h"

#include <gtest/gtest.h>

#include "stream/query_builder.h"

namespace streambid::stream {
namespace {

/// Deterministic counter source: price cycles 1..10, symbol alternates.
class CounterSource final : public StreamSource {
 public:
  CounterSource(std::string name, double rate)
      : StreamSource(std::move(name),
                     MakeSchema({{"symbol", ValueType::kString},
                                 {"price", ValueType::kDouble}}),
                     rate, /*seed=*/1) {}

 protected:
  std::vector<Value> Generate(VirtualTime ts, Rng& rng) override {
    (void)ts;
    (void)rng;
    ++n_;
    return {Value(n_ % 2 == 0 ? "A" : "B"),
            Value(static_cast<double>(n_ % 10 + 1))};
  }

 private:
  int64_t n_ = 0;
};

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(EngineOptions{100.0, 1.0, 16}) {
    EXPECT_TRUE(engine_
                    .RegisterSource(std::make_unique<CounterSource>(
                        "quotes", /*rate=*/10.0))
                    .ok());
  }

  QueryPlan SelectPlan(double threshold) {
    QueryBuilder b;
    const int src = b.Source("quotes");
    const int sel =
        b.Select(src, "price", CompareOp::kGt, Value(threshold));
    return b.Build(sel);
  }

  Engine engine_;
};

TEST_F(EngineTest, RegisterSourceRejectsDuplicates) {
  EXPECT_FALSE(engine_
                   .RegisterSource(std::make_unique<CounterSource>(
                       "quotes", 1.0))
                   .ok());
  EXPECT_NE(engine_.source("quotes"), nullptr);
  EXPECT_EQ(engine_.source("nope"), nullptr);
}

TEST_F(EngineTest, InstallAndRunDeliversToSink) {
  ASSERT_TRUE(engine_.InstallQuery(1, SelectPlan(5.0)).ok());
  engine_.Run(10.0);
  const SinkStats* sink = engine_.sink(1);
  ASSERT_NE(sink, nullptr);
  // Prices cycle 1..10; > 5 passes half: ~100 tuples emitted, ~50 pass.
  EXPECT_GT(sink->tuples, 30);
  EXPECT_LT(sink->tuples, 70);
  EXPECT_FALSE(sink->recent.empty());
}

TEST_F(EngineTest, InstallValidatesPlan) {
  QueryBuilder b;
  const int src = b.Source("unknown_stream");
  const QueryPlan bad_source = b.Build(src);
  EXPECT_EQ(engine_.InstallQuery(1, bad_source).code(),
            StatusCode::kNotFound);

  const int src2 = b.Source("quotes");
  const int sel = b.Select(src2, "no_such_field", CompareOp::kGt,
                           Value(1.0));
  const QueryPlan bad_field = b.Build(sel);
  EXPECT_EQ(engine_.InstallQuery(1, bad_field).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine_.IsInstalled(1));
}

TEST_F(EngineTest, DuplicateIdRejected) {
  ASSERT_TRUE(engine_.InstallQuery(1, SelectPlan(5.0)).ok());
  EXPECT_EQ(engine_.InstallQuery(1, SelectPlan(6.0)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(EngineTest, IdenticalPlansShareOperators) {
  ASSERT_TRUE(engine_.InstallQuery(1, SelectPlan(5.0)).ok());
  const int nodes_after_first = engine_.num_runtime_nodes();
  ASSERT_TRUE(engine_.InstallQuery(2, SelectPlan(5.0)).ok());
  // Same subtree: no new nodes.
  EXPECT_EQ(engine_.num_runtime_nodes(), nodes_after_first);
  EXPECT_EQ(engine_.num_shared_nodes(), nodes_after_first);

  ASSERT_TRUE(engine_.InstallQuery(3, SelectPlan(7.0)).ok());
  // Different predicate: one new select node, shared source.
  EXPECT_EQ(engine_.num_runtime_nodes(), nodes_after_first + 1);

  engine_.Run(5.0);
  // Both sharers see identical outputs.
  EXPECT_EQ(engine_.sink(1)->tuples, engine_.sink(2)->tuples);
  EXPECT_GT(engine_.sink(1)->tuples, 0);
}

TEST_F(EngineTest, UninstallKeepsSharedNodesAlive) {
  ASSERT_TRUE(engine_.InstallQuery(1, SelectPlan(5.0)).ok());
  ASSERT_TRUE(engine_.InstallQuery(2, SelectPlan(5.0)).ok());
  const int shared_nodes = engine_.num_runtime_nodes();
  ASSERT_TRUE(engine_.UninstallQuery(1).ok());
  EXPECT_EQ(engine_.num_runtime_nodes(), shared_nodes);
  ASSERT_TRUE(engine_.UninstallQuery(2).ok());
  EXPECT_EQ(engine_.num_runtime_nodes(), 0);
  EXPECT_EQ(engine_.UninstallQuery(2).code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, RunWithoutQueriesIsHarmless) {
  engine_.Run(5.0);
  EXPECT_DOUBLE_EQ(engine_.now(), 5.0);
  EXPECT_DOUBLE_EQ(engine_.LastRunCost(), 0.0);
}

TEST_F(EngineTest, MeasuredLoadsReflectRates) {
  ASSERT_TRUE(engine_.InstallQuery(1, SelectPlan(5.0)).ok());
  engine_.Run(10.0);
  bool found_select = false;
  for (const OperatorLoadInfo& info : engine_.OperatorLoads()) {
    if (info.is_source) continue;
    found_select = true;
    // 10 tuples/sec * kSelect cost (0.01) = 0.1 capacity units.
    EXPECT_NEAR(info.measured_load, 10.0 * 0.01, 0.02);
    EXPECT_EQ(info.sharing_degree, 1);
    EXPECT_GT(info.tuples_processed, 0);
  }
  EXPECT_TRUE(found_select);
  EXPECT_GT(engine_.LastRunUtilization(), 0.0);
  EXPECT_LT(engine_.LastRunUtilization(), 1.0);
}

TEST_F(EngineTest, MeasuredLoadLookupBySignature) {
  const QueryPlan plan = SelectPlan(5.0);
  ASSERT_TRUE(engine_.InstallQuery(1, plan).ok());
  EXPECT_EQ(engine_.MeasuredLoad("nope").status().code(),
            StatusCode::kNotFound);
  engine_.Run(10.0);
  auto load = engine_.MeasuredLoad(plan.NodeSignature(plan.output_node));
  ASSERT_TRUE(load.ok());
  EXPECT_GT(*load, 0.0);
}

TEST_F(EngineTest, AggregateQueryEmitsWindows) {
  QueryBuilder b;
  const int src = b.Source("quotes");
  const int agg = b.Aggregate(src, AggFn::kAvg, "price", "symbol",
                              {10.0, 10.0});
  ASSERT_TRUE(engine_.InstallQuery(9, b.Build(agg)).ok());
  engine_.Run(25.0);
  // Two full windows closed ([0,10), [10,20)), two symbols each.
  const SinkStats* sink = engine_.sink(9);
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->tuples, 4);
}

TEST_F(EngineTest, DeriveOutputSchemaMatchesInstalled) {
  QueryBuilder b;
  const int src = b.Source("quotes");
  const int agg = b.Aggregate(src, AggFn::kAvg, "price", "symbol",
                              {10.0, 10.0});
  const QueryPlan plan = b.Build(agg);
  auto schema = engine_.DeriveOutputSchema(plan);
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE((*schema)->HasField("symbol"));
  EXPECT_TRUE((*schema)->HasField("window_end"));
  EXPECT_TRUE((*schema)->HasField("value"));
}

}  // namespace
}  // namespace streambid::stream
