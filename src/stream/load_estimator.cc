// Copyright 2026 The streambid Authors

#include "stream/load_estimator.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace streambid::stream {
namespace {

double DefaultCostFor(const OpSpec& spec) {
  if (spec.cost_override > 0.0) return spec.cost_override;
  switch (spec.kind) {
    case OpKind::kSource:
      return 0.0;
    case OpKind::kSelect:
      return DefaultCosts::kSelect;
    case OpKind::kProject:
      return DefaultCosts::kProject;
    case OpKind::kMap:
      return DefaultCosts::kMap;
    case OpKind::kAggregate:
      return DefaultCosts::kAggregate;
    case OpKind::kJoin:
      return DefaultCosts::kJoin;
    case OpKind::kUnion:
      return DefaultCosts::kUnion;
    case OpKind::kTopK:
      return DefaultCosts::kTopK;
    case OpKind::kDistinct:
      return DefaultCosts::kDistinct;
  }
  return 0.0;
}

}  // namespace

Result<PlanLoadEstimate> EstimatePlanLoad(
    const Engine& engine, const QueryPlan& plan,
    const LoadEstimateOptions& options) {
  STREAMBID_RETURN_IF_ERROR(plan.Validate());
  // Field-level validation via schema derivation.
  STREAMBID_RETURN_IF_ERROR(engine.DeriveOutputSchema(plan).status());

  PlanLoadEstimate est;
  est.nodes.resize(plan.nodes.size());
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const QueryPlan::Node& pn = plan.nodes[i];
    NodeLoadEstimate& ne = est.nodes[i];
    ne.signature = plan.NodeSignature(static_cast<int>(i));
    ne.name = pn.spec.Signature();
    ne.is_source = pn.spec.kind == OpKind::kSource;

    double in_rate = 0.0;
    for (int in : pn.inputs) {
      in_rate += est.nodes[static_cast<size_t>(in)].output_rate;
    }

    switch (pn.spec.kind) {
      case OpKind::kSource: {
        const StreamSource* src = engine.source(pn.spec.source_name);
        STREAMBID_CHECK(src != nullptr);  // Validated above.
        ne.input_rate = 0.0;
        ne.output_rate = src->rate();
        ne.load = 0.0;
        continue;
      }
      case OpKind::kSelect:
        ne.output_rate = in_rate * options.select_selectivity;
        break;
      case OpKind::kProject:
      case OpKind::kMap:
      case OpKind::kUnion:
        ne.output_rate = in_rate;
        break;
      case OpKind::kAggregate:
        ne.output_rate = pn.spec.window.slide > 0.0
                             ? options.aggregate_groups /
                                   pn.spec.window.slide
                             : 0.0;
        break;
      case OpKind::kTopK:
        // k tuples per tumbling window.
        ne.output_rate = pn.spec.window.size > 0.0
                             ? pn.spec.top_k / pn.spec.window.size
                             : 0.0;
        break;
      case OpKind::kDistinct:
        // At most one tuple per distinct key per window; reuse the
        // aggregate group-count heuristic, capped by the input rate.
        ne.output_rate =
            pn.spec.window.size > 0.0
                ? std::min(in_rate, options.aggregate_groups /
                                        pn.spec.window.size)
                : in_rate;
        break;
      case OpKind::kJoin: {
        const double rl =
            est.nodes[static_cast<size_t>(pn.inputs[0])].output_rate;
        const double rr =
            est.nodes[static_cast<size_t>(pn.inputs[1])].output_rate;
        ne.output_rate =
            rl * rr * pn.spec.join_window * options.join_match_fraction;
        break;
      }
    }
    ne.input_rate = in_rate;
    ne.load = DefaultCostFor(pn.spec) * in_rate;

    if (options.prefer_measured) {
      auto measured = engine.MeasuredLoad(ne.signature);
      if (measured.ok() && *measured > 0.0) ne.load = *measured;
    }
    ne.load = std::max(ne.load, options.min_load);
    est.total_load += ne.load;
  }
  return est;
}

Result<AuctionBuild> BuildAuctionInstance(
    const Engine& engine, const std::vector<QuerySubmission>& submissions,
    const LoadEstimateOptions& options) {
  std::vector<auction::OperatorSpec> ops;
  std::vector<auction::QuerySpec> queries;
  std::vector<int> query_ids;
  std::vector<std::string> op_signatures;
  std::map<std::string, auction::OperatorId> op_index;

  for (const QuerySubmission& sub : submissions) {
    STREAMBID_ASSIGN_OR_RETURN(
        PlanLoadEstimate est,
        EstimatePlanLoad(engine, sub.plan, options));
    auction::QuerySpec q;
    q.user = sub.user;
    q.bid = sub.bid;
    // Collect DISTINCT non-source nodes of this plan (a plan may
    // reference the same subtree twice, e.g. self-joins).
    std::vector<auction::OperatorId> seen;
    for (const NodeLoadEstimate& ne : est.nodes) {
      if (ne.is_source) continue;
      auto it = op_index.find(ne.signature);
      auction::OperatorId op_id;
      if (it == op_index.end()) {
        op_id = static_cast<auction::OperatorId>(ops.size());
        ops.push_back({ne.load});
        op_signatures.push_back(ne.signature);
        op_index.emplace(ne.signature, op_id);
      } else {
        op_id = it->second;
      }
      if (std::find(seen.begin(), seen.end(), op_id) == seen.end()) {
        seen.push_back(op_id);
        q.operators.push_back(op_id);
      }
    }
    if (q.operators.empty()) {
      return Status::InvalidArgument(
          "submission " + std::to_string(sub.query_id) +
          " has no billable operators (plan is only a source tap)");
    }
    queries.push_back(std::move(q));
    query_ids.push_back(sub.query_id);
  }

  STREAMBID_ASSIGN_OR_RETURN(
      auction::AuctionInstance instance,
      auction::AuctionInstance::Create(std::move(ops), std::move(queries)));
  AuctionBuild build{std::move(instance), std::move(query_ids),
                     std::move(op_signatures)};
  return build;
}

}  // namespace streambid::stream
