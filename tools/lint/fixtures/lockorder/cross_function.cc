// Copyright 2026 The streambid Authors
// Fixture: a descent reached through a call -- the held scope never
// names the inner mutex; the edge comes from the callee's acquisition
// and is flagged at the call site.

#include "ranks.h"

Mutex g_cross_outer{LockRank::kOuter, "fixture/cross_outer"};
Mutex g_cross_inner{LockRank::kInner, "fixture/cross_inner"};

inline void LockCrossOuter() { MutexLock outer(g_cross_outer); }

inline void CrossFunctionDescent() {
  MutexLock inner(g_cross_inner);
  LockCrossOuter();  // WANT(lock-order-descent)
}
