// Copyright 2026 The streambid Authors

#ifndef STREAMBID_COMMON_INLINE_FUNCTION_H_
#define STREAMBID_COMMON_INLINE_FUNCTION_H_

/// Small-buffer-optimized move-only callable.
///
/// `InlineFunction<R(Args...), kCapacity>` is the executor's task slot:
/// any callable whose decayed type fits in `kCapacity` bytes (and is
/// nothrow-move-constructible) is stored inline in the object itself —
/// constructing, moving, and destroying it never touches the heap.
/// Larger callables fall back to a single heap allocation; every such
/// fallback is counted in a process-wide atomic so benches can CHECK
/// that the steady-state hot path stayed inline (see
/// `InlineFunctionHeapFallbacks()`).
///
/// Differences from `std::function`:
///   - move-only (never copies the target, so move-only captures work),
///   - guaranteed inline storage up to `kCapacity` bytes instead of an
///     implementation-defined SBO threshold,
///   - no allocator, no `target()`, no empty-call exception — invoking
///     an empty InlineFunction is undefined (callers check `operator
///     bool` first).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace streambid {

namespace internal {
inline std::atomic<int64_t> inline_function_heap_fallbacks{0};
}  // namespace internal

/// Process-wide count of InlineFunction constructions that exceeded the
/// inline capacity and heap-allocated. Monotonic; benches snapshot it
/// around a hot loop and CHECK the delta is zero.
inline int64_t InlineFunctionHeapFallbacks() {
  return internal::inline_function_heap_fallbacks.load(
      std::memory_order_relaxed);
}

template <typename Signature, size_t kCapacity = 64>
class InlineFunction;

template <typename R, typename... Args, size_t kCapacity>
class InlineFunction<R(Args...), kCapacity> {
 public:
  InlineFunction() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    constexpr bool kFitsInline =
        sizeof(D) <= kCapacity && alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;
    if constexpr (kFitsInline) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) =
          new D(std::forward<F>(f));  // NOLINT(determinism): the counted SBO fallback -- the line below makes every heap hit observable, and the hot-path benches assert the count stays zero
      internal::inline_function_heap_fallbacks.fetch_add(
          1, std::memory_order_relaxed);
    }
    ops_ = &OpsFor<D, kFitsInline>::kOps;
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-construct the target into `to` and destroy it in `from`.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
  };

  template <typename D, bool kFitsInline>
  struct OpsFor {
    static D* Get(void* p) {
      if constexpr (kFitsInline) {
        return std::launder(reinterpret_cast<D*>(p));
      } else {
        return *reinterpret_cast<D**>(p);
      }
    }
    static R Invoke(void* p, Args&&... args) {
      return (*Get(p))(std::forward<Args>(args)...);
    }
    static void Relocate(void* from, void* to) {
      if constexpr (kFitsInline) {
        D* src = Get(from);
        ::new (to) D(std::move(*src));
        src->~D();
      } else {
        // Pointer-sized handoff: the heap target itself never moves.
        *reinterpret_cast<D**>(to) = *reinterpret_cast<D**>(from);
      }
    }
    static void Destroy(void* p) {
      if constexpr (kFitsInline) {
        Get(p)->~D();
      } else {
        delete Get(p);  // NOLINT(determinism): the matching destroy for the counted SBO heap fallback above; never reached on the allocation-free hot path
      }
    }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace streambid

#endif  // STREAMBID_COMMON_INLINE_FUNCTION_H_
