// Copyright 2026 The streambid Authors
// Fixture: a reasoned NOLINT(lockorder) on the inner acquisition drops
// the edge from every check -- no findings in this file.

#include "ranks.h"

Mutex g_sup_outer{LockRank::kOuter, "fixture/sup_outer"};
Mutex g_sup_inner{LockRank::kInner, "fixture/sup_inner"};

inline void SanctionedInversion() {
  MutexLock inner(g_sup_inner);
  MutexLock outer(g_sup_outer);  // NOLINT(lockorder): fixture exercising a reasoned suppression
}
