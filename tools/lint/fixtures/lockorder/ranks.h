// Copyright 2026 The streambid Authors
// Miniature rank table for the lock_order_lint fixtures: the self-test
// parses this instead of src/common/lock_order.h so fixture findings
// stay stable as the real hierarchy grows.

#ifndef STREAMBID_TOOLS_LINT_FIXTURES_LOCKORDER_RANKS_H_
#define STREAMBID_TOOLS_LINT_FIXTURES_LOCKORDER_RANKS_H_

enum class LockRank : int {
  kOuter = 100,
  kMiddle = 200,
  kInner = 300,
  kLeaf = 1000,
};

#endif  // STREAMBID_TOOLS_LINT_FIXTURES_LOCKORDER_RANKS_H_
