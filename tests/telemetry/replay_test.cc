// Copyright 2026 The streambid Authors
// The zero-perturbation contract, end to end: a gated 4-shard cluster
// run must produce byte-identical ClusterPeriodReports with telemetry
// fully wired vs the no-op sink, at every executor pool size — and the
// tracer's identity sequence must itself be byte-identical across pool
// sizes (span identity is logical time, not scheduling).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gate/stream_ingress.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace streambid {
namespace {

Status RegisterQuotes(stream::Engine& engine) {
  return engine.RegisterSource(stream::MakeStockQuoteSource(
      "quotes", {"IBM", "AAPL"}, /*rate=*/100.0, 5));
}

stream::QuerySubmission MakeSubmission(int period, int tenant) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(50.0 + tenant));
  stream::QuerySubmission sub;
  sub.query_id = period * 100 + tenant;
  sub.user = static_cast<auction::UserId>(tenant);
  sub.bid = 4.0 + (tenant * 5 + period) % 7;
  sub.plan = b.Build(sel);
  return sub;
}

constexpr int kPeriods = 6;

std::vector<cluster::ClusterPeriodReport> RunGated(
    int executor_threads, telemetry::MetricsRegistry* registry,
    telemetry::PeriodTracer* tracer) {
  cluster::ClusterOptions options;
  options.num_shards = 4;
  options.total_capacity = 8.0;
  options.routing = cluster::RoutingPolicy::kHashUser;
  options.mechanism = "cat";
  options.period_length = 10.0;
  options.seed = 17;
  options.engine_options.tick = 1.0;
  options.engine_options.sink_history = 2;
  options.executor_threads = executor_threads;
  options.metrics = registry;
  options.tracer = tracer;
  cluster::ClusterCenter center(options, RegisterQuotes);

  gate::IngressOptions ingress_options;
  ingress_options.tenant_classes = 2;
  ingress_options.tickets_per_class = 16;  // Never exhausted here.
  ingress_options.metrics = registry;
  ingress_options.tracer = tracer;
  gate::StreamIngress ingress(&center, ingress_options);

  std::vector<cluster::ClusterPeriodReport> reports;
  for (int period = 0; period < kPeriods; ++period) {
    for (int t = 1; t <= 5 + period % 3; ++t) {
      EXPECT_TRUE(ingress.Offer(MakeSubmission(period, t)).ok());
    }
    const Result<gate::GatedPeriodReport> report = ingress.ClosePeriod();
    EXPECT_TRUE(report.ok());
    reports.push_back(report->report);
  }
  return reports;
}

void ExpectReportsIdentical(
    const std::vector<cluster::ClusterPeriodReport>& a,
    const std::vector<cluster::ClusterPeriodReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].period, b[p].period);
    EXPECT_EQ(a[p].submissions, b[p].submissions);
    EXPECT_EQ(a[p].admitted, b[p].admitted);
    EXPECT_EQ(a[p].revenue, b[p].revenue);
    EXPECT_EQ(a[p].total_payoff, b[p].total_payoff);
    EXPECT_EQ(a[p].auction_utilization, b[p].auction_utilization);
    EXPECT_EQ(a[p].measured_utilization, b[p].measured_utilization);
    EXPECT_EQ(a[p].provisioned_capacity, b[p].provisioned_capacity);
    EXPECT_EQ(a[p].energy_cost, b[p].energy_cost);
    ASSERT_EQ(a[p].shard_reports.size(), b[p].shard_reports.size());
    for (size_t s = 0; s < a[p].shard_reports.size(); ++s) {
      EXPECT_EQ(a[p].shard_reports[s].revenue,
                b[p].shard_reports[s].revenue);
      EXPECT_EQ(a[p].shard_reports[s].admitted,
                b[p].shard_reports[s].admitted);
      EXPECT_EQ(a[p].shard_reports[s].submissions,
                b[p].shard_reports[s].submissions);
    }
  }
}

TEST(TelemetryReplayTest, ReportsIdenticalOnVsOff) {
  const std::vector<cluster::ClusterPeriodReport> off =
      RunGated(4, nullptr, nullptr);
  telemetry::MetricsRegistry registry;
  telemetry::PeriodTracer tracer;
  const std::vector<cluster::ClusterPeriodReport> on =
      RunGated(4, &registry, &tracer);
  ExpectReportsIdentical(off, on);
  // And telemetry actually observed the run.
  EXPECT_GT(tracer.span_count(), 0);
  EXPECT_GT(registry.Snapshot().counters.at("gate_offered"), 0);
}

TEST(TelemetryReplayTest, ReportsIdenticalAcrossPoolSizes) {
  const std::vector<cluster::ClusterPeriodReport> reference =
      RunGated(1, nullptr, nullptr);
  for (const int threads : {2, 8}) {
    telemetry::MetricsRegistry registry;
    telemetry::PeriodTracer tracer;
    ExpectReportsIdentical(reference,
                           RunGated(threads, &registry, &tracer));
  }
}

TEST(TelemetryReplayTest, TraceIdentityIdenticalAcrossPoolSizes) {
  std::string identity;
  for (const int threads : {1, 2, 8}) {
    telemetry::PeriodTracer tracer;
    RunGated(threads, nullptr, &tracer);
    const std::string sequence = tracer.IdentitySequence();
    EXPECT_FALSE(sequence.empty());
    if (identity.empty()) {
      identity = sequence;
    } else {
      // Byte-identical: logical span keys replay; only the wall-clock
      // annotations (excluded here) differ between pool sizes.
      EXPECT_EQ(identity, sequence);
    }
  }
}

TEST(TelemetryReplayTest, MetricsIdenticalAcrossPoolSizes) {
  // Counter totals are as deterministic as the reports: same offered /
  // admitted / period counts at every pool size.
  std::vector<int64_t> offered, admitted, periods;
  for (const int threads : {1, 4}) {
    telemetry::MetricsRegistry registry;
    RunGated(threads, &registry, nullptr);
    const telemetry::MetricsSnapshot snapshot = registry.Snapshot();
    offered.push_back(snapshot.counters.at("gate_offered"));
    admitted.push_back(snapshot.counters.at("gate_admitted"));
    periods.push_back(snapshot.counters.at("cluster_periods"));
  }
  EXPECT_EQ(offered[0], offered[1]);
  EXPECT_EQ(admitted[0], admitted[1]);
  EXPECT_EQ(periods[0], periods[1]);
  EXPECT_EQ(periods[0], static_cast<int64_t>(kPeriods));
}

}  // namespace
}  // namespace streambid
