// Copyright 2026 The streambid Authors
// Bid-deviation search: the empirical test of bid-strategyproofness.
// A mechanism is bid-strategyproof iff no user can raise her (expected)
// payoff by bidding something other than her true value (§III). The
// harness sweeps a grid of deviating bids for a chosen query and reports
// the most profitable deviation found, if any. Auctions run through the
// AdmissionService; mechanisms are named, never constructed here.

#ifndef STREAMBID_GAMETHEORY_DEVIATION_H_
#define STREAMBID_GAMETHEORY_DEVIATION_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "auction/instance.h"
#include "service/admission_service.h"

namespace streambid::gametheory {

/// Outcome of a deviation search for one query.
struct DeviationReport {
  bool profitable_deviation_found = false;
  auction::QueryId query = auction::kNoQuery;
  double true_value = 0.0;
  double best_deviant_bid = 0.0;
  double truthful_payoff = 0.0;
  double best_deviant_payoff = 0.0;

  /// Gain from the best deviation (<= tolerance when strategyproof).
  double Gain() const { return best_deviant_payoff - truthful_payoff; }
};

/// Options for the search.
struct DeviationOptions {
  /// Deviant bids tried, as multiples of the true value.
  std::vector<double> bid_factors = {0.0,  0.1, 0.2,  0.3,  0.4,  0.5,
                                     0.6,  0.7, 0.75, 0.8,  0.9,  0.95,
                                     0.99, 1.01, 1.05, 1.1,  1.25, 1.5,
                                     2.0,  5.0};
  /// Also try bids just above/below every other query's bid (captures
  /// reorder-sensitive manipulations like the CAR attack of §IV-A).
  bool probe_other_bids = true;
  /// Runs averaged per bid for randomized mechanisms.
  int trials = 1;
  /// Payoff slack treated as noise (exact arithmetic -> tiny; raise it
  /// when sampling randomized mechanisms).
  double tolerance = 1e-7;
  /// Common-random-numbers seed: every candidate bid (and the truthful
  /// baseline) is evaluated with identical (crn_seed, trial) service
  /// streams, so for randomized mechanisms the comparison isolates the
  /// effect of the bid rather than partition luck.
  uint64_t crn_seed = 0x5EEDED;
};

/// Searches deviating bids for `query`, everyone else truthful.
DeviationReport FindBestDeviation(service::AdmissionService& service,
                                  std::string_view mechanism,
                                  const auction::AuctionInstance& instance,
                                  double capacity, auction::QueryId query,
                                  const DeviationOptions& options);

/// Sweeps every query (or a `seed`-seeded random sample of
/// `max_queries`), returning the worst report. Strategyproof mechanisms
/// should yield profitable_deviation_found == false.
DeviationReport SweepDeviations(service::AdmissionService& service,
                                std::string_view mechanism,
                                const auction::AuctionInstance& instance,
                                double capacity,
                                const DeviationOptions& options,
                                uint64_t seed = 0, int max_queries = -1);

}  // namespace streambid::gametheory

#endif  // STREAMBID_GAMETHEORY_DEVIATION_H_
