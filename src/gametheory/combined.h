// Copyright 2026 The streambid Authors
// Combined manipulation search (paper Definition 18 / Theorem 19): a
// mechanism is *sybil-strategyproof* when no user can improve her payoff
// by lying about her valuation, perpetrating a sybil attack, or doing
// both at once. CAT is proven sybil-strategyproof; this harness searches
// the joint strategy space empirically through the AdmissionService.

#ifndef STREAMBID_GAMETHEORY_COMBINED_H_
#define STREAMBID_GAMETHEORY_COMBINED_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "auction/instance.h"
#include "gametheory/sybil.h"
#include "service/admission_service.h"

namespace streambid::gametheory {

/// The best combined (bid-lie x sybil) strategy found for one attacker.
struct CombinedAttackReport {
  auction::QueryId attacker_query = auction::kNoQuery;
  double truthful_payoff = 0.0;
  double best_payoff = 0.0;
  double best_bid = 0.0;       ///< Attacker's submitted bid.
  int best_num_fakes = 0;      ///< 0 = pure bid deviation.
  double best_fake_value = 0.0;

  double Gain() const { return best_payoff - truthful_payoff; }
  bool Profitable(double tolerance = 1e-7) const {
    return Gain() > tolerance;
  }
};

/// Options for the combined search.
struct CombinedAttackOptions {
  /// Attacker bids tried, as multiples of the true value.
  std::vector<double> bid_factors = {0.25, 0.5, 0.75, 0.9, 1.0,
                                     1.1, 1.5, 2.0};
  /// Fake-query counts tried (0 = no sybil component).
  std::vector<int> fake_counts = {0, 1, 3, 8};
  /// Fake valuations tried.
  std::vector<double> fake_values = {1e-6, 1.0};
  /// Expectation trials for randomized mechanisms.
  int trials = 1;
};

/// Searches the joint strategy grid for `attacker_query`: the attacker
/// submits bid = factor * value and `k` fake queries replicating her
/// operator set (the §V-A construction, the strongest known generic
/// attack family). Everyone else is truthful.
CombinedAttackReport SearchCombinedAttack(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    auction::QueryId attacker_query, const CombinedAttackOptions& options,
    uint64_t seed = 0);

/// Sweeps a `seed`-seeded sample of queries; returns the most profitable
/// report.
CombinedAttackReport SweepCombinedAttacks(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    const CombinedAttackOptions& options, uint64_t seed,
    int max_attackers);

}  // namespace streambid::gametheory

#endif  // STREAMBID_GAMETHEORY_COMBINED_H_
