// Copyright 2026 The streambid Authors
// The paper's concrete attacks, reproduced end-to-end:
//   Theorem 17 via Table II (CAT+ falls, CAT stands),
//   Theorem 15 via the §V-A fair-share attack,
//   Theorem 20 via the §V-C Two-price partition attack.

#include "gametheory/attacks.h"

#include <gtest/gtest.h>

#include "service/admission_service.h"
#include "gametheory/payoff.h"

namespace streambid::gametheory {
namespace {

TEST(TableIITest, AttackBeatsCatPlus) {
  const AttackScenario s = TableIIScenario(0.01);
  service::AdmissionService service;

  // Without the attack: user 1 wins, user 2 (attacker) is rejected.
  const auction::Allocation before =
      RunAuction(service, "cat+", s.instance, s.capacity, /*seed=*/1);
  EXPECT_TRUE(before.IsAdmitted(0));
  EXPECT_FALSE(before.IsAdmitted(1));

  // With the fake "user 3": the fake and user 2 win, user 1 is skipped.
  auto attacked = s.instance.WithExtraOperators(s.attack.new_operators,
                                                s.attack.fake_queries);
  ASSERT_TRUE(attacked.ok());
  const auction::Allocation after =
      RunAuction(service, "cat+", *attacked, s.capacity, /*seed=*/1);
  EXPECT_FALSE(after.IsAdmitted(0));
  EXPECT_TRUE(after.IsAdmitted(1));
  EXPECT_TRUE(after.IsAdmitted(2));  // The fake.
  // Table II payments: user 2 pays 0; the fake pays 100 * epsilon.
  EXPECT_DOUBLE_EQ(after.Payment(1), 0.0);
  EXPECT_NEAR(after.Payment(2), 100.0 * 0.01, 1e-9);

  // Attacker payoff: 0 before; 89 - 100*eps after (Table II).
  std::vector<double> values = TruthfulValues(s.instance);
  values.push_back(0.0);  // The fake is worthless to her.
  const double payoff_after = UserPayoff(*attacked, after, values, 2);
  EXPECT_NEAR(payoff_after, 89.0 - 1.0, 1e-9);
  EXPECT_GT(payoff_after, 0.0);
}

TEST(TableIITest, SameAttackFailsAgainstCat) {
  // §V-B: CAT stops at the first misfit, so the fake only displaces
  // user 1 and user 2 still loses — the attack costs the attacker the
  // fake's payment for nothing.
  const AttackScenario s = TableIIScenario(0.01);
  service::AdmissionService service;
  auto attacked = s.instance.WithExtraOperators(s.attack.new_operators,
                                                s.attack.fake_queries);
  ASSERT_TRUE(attacked.ok());
  const auction::Allocation after =
      RunAuction(service, "cat", *attacked, s.capacity, /*seed=*/2);
  EXPECT_FALSE(after.IsAdmitted(1));  // Attacker still loses.
  std::vector<double> values = TruthfulValues(s.instance);
  values.push_back(0.0);
  EXPECT_LE(UserPayoff(*attacked, after, values, 2), 0.0);
}

TEST(FairShareScenarioTest, NumbersMatchSectionVA) {
  const AttackScenario s = FairShareScenario();
  service::AdmissionService service;
  const auction::Allocation before =
      RunAuction(service, "caf", s.instance, s.capacity, /*seed=*/3);
  EXPECT_TRUE(before.IsAdmitted(0));
  EXPECT_FALSE(before.IsAdmitted(1));

  auto attacked = s.instance.WithExtraOperators(s.attack.new_operators,
                                                s.attack.fake_queries);
  ASSERT_TRUE(attacked.ok());
  // Attacker's CSF drops from 4 to 4/4 = 1: priority 10 beats 12/4 = 3.
  EXPECT_DOUBLE_EQ(attacked->fair_share_load(1), 1.0);
  const auction::Allocation after =
      RunAuction(service, "caf", *attacked, s.capacity, /*seed=*/3);
  EXPECT_TRUE(after.IsAdmitted(1));
  EXPECT_FALSE(after.IsAdmitted(0));
}

TEST(TwoPriceScenarioTest, PartitionAttackRaisesExpectedPayoff) {
  const AttackScenario s = TwoPricePartitionScenario();
  service::AdmissionService service;

  const std::vector<double> values = TruthfulValues(s.instance);
  const int trials = 20000;
  const double before =
      ExpectedUserPayoff(service, "two-price", s.instance, s.capacity,
                         values, s.attacker, /*seed=*/4, trials);

  auto attacked = s.instance.WithExtraOperators(s.attack.new_operators,
                                                s.attack.fake_queries);
  ASSERT_TRUE(attacked.ok());
  std::vector<double> attacked_values = values;
  attacked_values.push_back(0.0);
  const double after =
      ExpectedUserPayoff(service, "two-price", *attacked, s.capacity,
                         attacked_values, s.attacker, /*seed=*/4, trials);
  // Hand analysis: before = 10 - 5 = 5 exactly; after = (1/3)*10 +
  // (2/3)*5 ~ 6.67 (minus fake fees ~ 0). Allow sampling noise.
  EXPECT_NEAR(before, 5.0, 0.05);
  EXPECT_GT(after, before + 1.0);
}

TEST(Example1Test, MatchesPaperFigure2) {
  const auction::AuctionInstance inst = Example1Instance();
  EXPECT_EQ(inst.num_queries(), 3);
  EXPECT_EQ(inst.num_operators(), 5);
  EXPECT_DOUBLE_EQ(inst.bid(0), 55.0);
  EXPECT_DOUBLE_EQ(inst.bid(1), 72.0);
  EXPECT_DOUBLE_EQ(inst.bid(2), 100.0);
  EXPECT_DOUBLE_EQ(inst.total_union_load(), 17.0);
}

}  // namespace
}  // namespace streambid::gametheory
