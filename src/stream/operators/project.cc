// Copyright 2026 The streambid Authors

#include "stream/operators/project.h"

#include "common/check.h"
#include "common/string_util.h"

namespace streambid::stream {

ProjectOperator::ProjectOperator(const SchemaPtr& input_schema,
                                 std::vector<std::string> fields,
                                 double cost_per_tuple)
    : OperatorBase("project(" + Join(fields, ",") + ")", cost_per_tuple) {
  std::vector<Field> out_fields;
  for (const std::string& f : fields) {
    const int idx = input_schema->FieldIndex(f);
    STREAMBID_CHECK_GE(idx, 0);
    indices_.push_back(idx);
    out_fields.push_back(input_schema->field(idx));
  }
  output_schema_ = MakeSchema(std::move(out_fields));
}

void ProjectOperator::Process(int port, const Tuple& tuple,
                              std::vector<Tuple>* out) {
  STREAMBID_DCHECK(port == 0);
  (void)port;
  std::vector<Value> values;
  values.reserve(indices_.size());
  for (int idx : indices_) values.push_back(tuple.value(idx));
  out->emplace_back(output_schema_, std::move(values), tuple.timestamp());
}

}  // namespace streambid::stream
