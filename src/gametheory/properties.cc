// Copyright 2026 The streambid Authors

#include "gametheory/properties.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "gametheory/payoff.h"

namespace streambid::gametheory {
namespace {

bool Wins(service::AdmissionService& service, std::string_view mechanism,
          const auction::AuctionInstance& instance, double capacity,
          auction::QueryId query, uint64_t seed) {
  const auction::Allocation alloc =
      RunAuction(service, mechanism, instance, capacity, seed);
  return alloc.IsAdmitted(query);
}

}  // namespace

MonotonicityReport CheckMonotonicity(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    bool check_subset_monotonicity, uint64_t seed) {
  MonotonicityReport report;
  const auction::Allocation base =
      RunAuction(service, mechanism, instance, capacity, seed);
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    const double v = instance.bid(i);
    if (base.IsAdmitted(i)) {
      for (double factor : {1.5, 3.0, 10.0}) {
        const auction::AuctionInstance raised =
            instance.WithBid(i, v * factor);
        if (!Wins(service, mechanism, raised, capacity, i, seed)) {
          report.monotone = false;
          report.violating_query = i;
          report.violating_bid = v * factor;
          return report;
        }
      }
      if (check_subset_monotonicity &&
          instance.query_operators(i).size() > 1) {
        // Drop the last operator: a winner asking for a strict subset of
        // her operators must still win (SMB monotonicity, §III).
        std::vector<auction::QuerySpec> queries = instance.queries();
        queries[static_cast<size_t>(i)].operators.pop_back();
        auto shrunk = auction::AuctionInstance::Create(
            instance.operators(), std::move(queries));
        STREAMBID_CHECK(shrunk.ok());
        if (!Wins(service, mechanism, *shrunk, capacity, i, seed)) {
          report.monotone = false;
          report.violating_query = i;
          report.violating_bid = v;
          return report;
        }
      }
    } else if (v > 0.0) {
      for (double factor : {0.5, 0.1}) {
        const auction::AuctionInstance lowered =
            instance.WithBid(i, v * factor);
        if (Wins(service, mechanism, lowered, capacity, i, seed)) {
          report.monotone = false;
          report.violating_query = i;
          report.violating_bid = v * factor;
          return report;
        }
      }
    }
  }
  return report;
}

CriticalValue EstimateCriticalValue(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    auction::QueryId query, uint64_t seed, double hi_hint,
    int iterations) {
  CriticalValue cv;
  // Upper probe: if the query loses even at an enormous bid, it can
  // never win (e.g., its own remaining load exceeds capacity).
  double hi = std::max({hi_hint, instance.max_bid() * 4.0, 1.0});
  if (!Wins(service, mechanism, instance.WithBid(query, hi), capacity,
            query, seed)) {
    cv.unbounded = true;
    return cv;
  }
  double lo = 0.0;
  if (Wins(service, mechanism, instance.WithBid(query, 0.0), capacity,
           query, seed)) {
    cv.value = 0.0;  // Wins for free.
    return cv;
  }
  for (int it = 0; it < iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (Wins(service, mechanism, instance.WithBid(query, mid), capacity,
             query, seed)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  cv.value = 0.5 * (lo + hi);
  return cv;
}

double MaxCriticalValueDiscrepancy(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    uint64_t seed, int max_queries) {
  const auction::Allocation base =
      RunAuction(service, mechanism, instance, capacity, seed);
  std::vector<auction::QueryId> targets;
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    if (base.IsAdmitted(i)) targets.push_back(i);
  }
  if (max_queries > 0 &&
      max_queries < static_cast<int>(targets.size())) {
    Rng sampler(seed ^ 0xD15C4E9Aull);
    sampler.Shuffle(targets);
    targets.resize(static_cast<size_t>(max_queries));
  }
  double worst = 0.0;
  for (auction::QueryId q : targets) {
    const CriticalValue cv = EstimateCriticalValue(
        service, mechanism, instance, capacity, q, seed);
    if (cv.unbounded) continue;  // Winner that can't win: contradiction,
                                 // but let the monotonicity check flag it.
    worst = std::max(worst, std::fabs(cv.value - base.Payment(q)));
  }
  return worst;
}

}  // namespace streambid::gametheory
