// Copyright 2026 The streambid Authors
// Invariant-checking macros. Library code does not use exceptions; fatal
// violations abort with a source location, mirroring the CHECK idiom used
// by production database engines.

#ifndef STREAMBID_COMMON_CHECK_H_
#define STREAMBID_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace streambid::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace streambid::internal

/// Aborts the process if `expr` is false. Enabled in all build types:
/// admission-control invariants guard billing correctness, so we never
/// compile them out.
#define STREAMBID_CHECK(expr)                                        \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::streambid::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                                \
  } while (0)

/// Convenience comparison checks (report the failing expression verbatim).
#define STREAMBID_CHECK_EQ(a, b) STREAMBID_CHECK((a) == (b))
#define STREAMBID_CHECK_NE(a, b) STREAMBID_CHECK((a) != (b))
#define STREAMBID_CHECK_LT(a, b) STREAMBID_CHECK((a) < (b))
#define STREAMBID_CHECK_LE(a, b) STREAMBID_CHECK((a) <= (b))
#define STREAMBID_CHECK_GT(a, b) STREAMBID_CHECK((a) > (b))
#define STREAMBID_CHECK_GE(a, b) STREAMBID_CHECK((a) >= (b))

/// Debug-only check for hot paths (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define STREAMBID_DCHECK(expr) \
  do {                         \
  } while (0)
#else
#define STREAMBID_DCHECK(expr) STREAMBID_CHECK(expr)
#endif

#endif  // STREAMBID_COMMON_CHECK_H_
