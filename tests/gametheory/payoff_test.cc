// Copyright 2026 The streambid Authors

#include "gametheory/payoff.h"

#include <gtest/gtest.h>

#include "service/admission_service.h"

namespace streambid::gametheory {
namespace {

auction::AuctionInstance TwoUserInstance() {
  // User 7 owns queries 0 and 2; user 8 owns query 1.
  std::vector<auction::OperatorSpec> ops = {{1.0}, {1.0}, {1.0}};
  std::vector<auction::QuerySpec> queries = {
      {7, 10.0, {0}}, {8, 20.0, {1}}, {7, 5.0, {2}}};
  auto r = auction::AuctionInstance::Create(ops, queries);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(PayoffTest, AggregatesAcrossUserQueries) {
  auction::AuctionInstance inst = TwoUserInstance();
  auction::Allocation alloc = auction::MakeEmptyAllocation("t", 10.0, 3);
  alloc.admitted = {true, true, true};
  alloc.payments = {4.0, 12.0, 5.0};
  const std::vector<double> values = TruthfulValues(inst);
  // User 7: (10-4) + (5-5) = 6. User 8: 20-12 = 8.
  EXPECT_DOUBLE_EQ(UserPayoff(inst, alloc, values, 7), 6.0);
  EXPECT_DOUBLE_EQ(UserPayoff(inst, alloc, values, 8), 8.0);
  EXPECT_DOUBLE_EQ(UserPayoff(inst, alloc, values, 99), 0.0);
}

TEST(PayoffTest, RejectedQueriesContributeNothing) {
  auction::AuctionInstance inst = TwoUserInstance();
  auction::Allocation alloc = auction::MakeEmptyAllocation("t", 10.0, 3);
  alloc.admitted = {false, true, false};
  alloc.payments = {0.0, 3.0, 0.0};
  const std::vector<double> values = TruthfulValues(inst);
  EXPECT_DOUBLE_EQ(UserPayoff(inst, alloc, values, 7), 0.0);
  EXPECT_DOUBLE_EQ(UserPayoff(inst, alloc, values, 8), 17.0);
}

TEST(PayoffTest, FakeQueryValuesZeroGiveNegativePayoff) {
  auction::AuctionInstance inst = TwoUserInstance();
  auction::Allocation alloc = auction::MakeEmptyAllocation("t", 10.0, 3);
  alloc.admitted = {true, false, true};
  alloc.payments = {2.0, 0.0, 1.0};
  // Query 2 is a fake (value 0): the attacker pays its fee.
  const std::vector<double> values = {10.0, 20.0, 0.0};
  EXPECT_DOUBLE_EQ(UserPayoff(inst, alloc, values, 7), (10 - 2) + (0 - 1));
}

TEST(PayoffTest, ExpectedPayoffDeterministicMechanism) {
  auction::AuctionInstance inst = TwoUserInstance();
  service::AdmissionService service;
  const std::vector<double> values = TruthfulValues(inst);
  const double once =
      ExpectedUserPayoff(service, "cat", inst, 10.0, values, 7,
                         /*seed=*/1, 1);
  const double many =
      ExpectedUserPayoff(service, "cat", inst, 10.0, values, 7,
                         /*seed=*/1, 16);
  EXPECT_DOUBLE_EQ(once, many);
}

TEST(PayoffTest, TruthfulValuesMirrorBids) {
  auction::AuctionInstance inst = TwoUserInstance();
  const std::vector<double> values = TruthfulValues(inst);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 10.0);
  EXPECT_DOUBLE_EQ(values[1], 20.0);
  EXPECT_DOUBLE_EQ(values[2], 5.0);
}

}  // namespace
}  // namespace streambid::gametheory
