// Copyright 2026 The streambid Authors

#include "stream/operators/join.h"

#include <algorithm>

#include "common/check.h"

namespace streambid::stream {

JoinOperator::JoinOperator(const SchemaPtr& left_schema,
                           const SchemaPtr& right_schema,
                           const std::string& left_key,
                           const std::string& right_key,
                           VirtualTime window, double cost_per_tuple)
    : OperatorBase("join(" + left_key + "==" + right_key +
                       " w=" + std::to_string(window) + ")",
                   cost_per_tuple),
      window_(window) {
  STREAMBID_CHECK_GT(window, 0.0);
  sides_[0].key_index = left_schema->FieldIndex(left_key);
  sides_[1].key_index = right_schema->FieldIndex(right_key);
  STREAMBID_CHECK_GE(sides_[0].key_index, 0);
  STREAMBID_CHECK_GE(sides_[1].key_index, 0);

  std::vector<Field> fields = left_schema->fields();
  for (const Field& f : right_schema->fields()) {
    Field out = f;
    if (left_schema->HasField(out.name)) out.name = "r_" + out.name;
    fields.push_back(std::move(out));
  }
  output_schema_ = MakeSchema(std::move(fields));
}

void JoinOperator::Emit(const Tuple& left, const Tuple& right,
                        std::vector<Tuple>* out) {
  std::vector<Value> values = left.values();
  values.insert(values.end(), right.values().begin(),
                right.values().end());
  out->emplace_back(output_schema_, std::move(values),
                    std::max(left.timestamp(), right.timestamp()));
}

void JoinOperator::Process(int port, const Tuple& tuple,
                           std::vector<Tuple>* out) {
  STREAMBID_DCHECK(port == 0 || port == 1);
  Side& mine = sides_[port];
  Side& other = sides_[1 - port];

  const std::string key = tuple.value(mine.key_index).ToKey();
  // Probe the other side within the window.
  auto it = other.table.find(key);
  if (it != other.table.end()) {
    for (const Tuple& match : it->second) {
      if (match.timestamp() >= tuple.timestamp() - window_) {
        if (port == 0) {
          Emit(tuple, match, out);
        } else {
          Emit(match, tuple, out);
        }
      }
    }
  }
  mine.Insert(key, tuple);
}

void JoinOperator::AdvanceTime(VirtualTime now, std::vector<Tuple>* out) {
  (void)out;  // Joins emit only on arrival.
  for (Side& side : sides_) side.EvictOlderThan(now - window_);
}

void JoinOperator::Reset() {
  for (Side& side : sides_) {
    side.table.clear();
    side.buffered = 0;
  }
}

size_t JoinOperator::BufferedTuples() const {
  return sides_[0].buffered + sides_[1].buffered;
}

}  // namespace streambid::stream
