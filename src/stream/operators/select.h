// Copyright 2026 The streambid Authors
// Selection (filter) operator: passes tuples matching a comparison
// predicate on one field.

#ifndef STREAMBID_STREAM_OPERATORS_SELECT_H_
#define STREAMBID_STREAM_OPERATORS_SELECT_H_

#include <string>
#include <vector>

#include "stream/operator.h"

namespace streambid::stream {

/// Comparison predicates supported by Select.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// Stable token for signatures ("<", "<=", ...).
const char* CompareOpToken(CompareOp op);

/// Evaluates `lhs OP rhs`.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

/// select(field OP constant).
class SelectOperator : public OperatorBase {
 public:
  SelectOperator(SchemaPtr input_schema, std::string field, CompareOp op,
                 Value operand,
                 double cost_per_tuple = DefaultCosts::kSelect);

  SchemaPtr output_schema() const override { return schema_; }

  void Process(int port, const Tuple& tuple,
               std::vector<Tuple>* out) override;

 private:
  SchemaPtr schema_;
  int field_index_;
  CompareOp op_;
  Value operand_;
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_OPERATORS_SELECT_H_
