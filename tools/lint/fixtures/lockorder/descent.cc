// Copyright 2026 The streambid Authors
// Fixture: acquiring a lower-ranked mutex while holding a higher one --
// the inversion-deadlock pattern, flagged at the inner acquisition.

#include "ranks.h"

Mutex g_desc_outer{LockRank::kOuter, "fixture/desc_outer"};
Mutex g_desc_inner{LockRank::kInner, "fixture/desc_inner"};

inline void DescendingOrder() {
  MutexLock inner(g_desc_inner);
  MutexLock outer(g_desc_outer);  // WANT(lock-order-descent)
}
