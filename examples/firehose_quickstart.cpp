// Copyright 2026 The streambid Authors
// The streaming admission gate in one page: a StreamIngress fronting a
// 2-shard cluster with two tiny per-tenant-class ticket pools. A burst
// of offers exhausts one class's pool — those requests shed BEFORE
// costing an auction slot, with a typed retry-after status — while the
// other class keeps flowing; the period drain hands the granted batch
// to the cluster, and the throughput probe adjusts the concurrency
// limit from the measured admit throughput.
//
// Build & run:  ./build/examples/firehose_quickstart

#include <cstdio>

#include "common/table.h"
#include "gate/stream_ingress.h"
#include "service/gate_status.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

using namespace streambid;

namespace {

stream::QuerySubmission Tenant(int id, auction::UserId user, double bid,
                               double threshold) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(threshold));
  stream::QuerySubmission sub;
  sub.query_id = id;
  sub.user = user;
  sub.bid = bid;
  sub.plan = b.Build(sel);
  return sub;
}

}  // namespace

int main() {
  cluster::ClusterOptions cluster_options;
  cluster_options.num_shards = 2;
  cluster_options.total_capacity = 4.0;
  cluster_options.mechanism = "cat";
  cluster_options.period_length = 60.0;
  cluster_options.seed = 7;
  cluster::ClusterCenter cluster(cluster_options, [](stream::Engine& e) {
    return e.RegisterSource(stream::MakeStockQuoteSource(
        "quotes", {"IBM", "AAPL", "MSFT"}, /*rate=*/100.0, 3));
  });

  gate::IngressOptions options;
  options.tenant_classes = 2;   // user id % 2 picks the class.
  options.tickets_per_class = 3;
  options.retry_after_periods = 1.0;
  options.probe.enabled = true;
  options.probe.initial_concurrency = 6;
  options.probe.min_concurrency = 2;
  options.probe.max_concurrency = 16;
  gate::StreamIngress gate(&cluster, options);

  std::printf("== streaming admission gate: %d classes x %d tickets in "
              "front of a %d-shard cluster ==\n\n",
              options.tenant_classes, options.tickets_per_class,
              cluster.num_shards());

  // A burst of 8 even-user offers slams class 0 (3 tickets): the first
  // three hold tickets, the rest shed in O(1) with a retry hint.
  for (int i = 1; i <= 8; ++i) {
    const auction::UserId user = 2 * i;  // All class 0.
    const Status status =
        gate.Offer(Tenant(i, user, 50.0 - 3.0 * i, 96.0 + 4.0 * (i % 3)));
    if (status.ok()) {
      std::printf("offer %d (user %d): granted a class-0 ticket\n", i,
                  user);
    } else {
      std::printf("offer %d (user %d): SHED by pool %s — retry after "
                  "%.1f period(s)\n",
                  i, user, service::ShedPool(status).c_str(),
                  *service::RetryAfterPeriods(status));
    }
  }
  // Class 1 is unaffected by class 0's overload.
  const Status odd = gate.Offer(Tenant(9, 9, 40.0, 97.0));
  std::printf("offer 9 (user 9):  %s — classes shed independently\n\n",
              odd.ok() ? "granted a class-1 ticket" : "shed");

  // Close the period: the granted batch drains into the cluster's
  // auction, tickets recycle, and the probe observes the throughput.
  const auto gated = gate.ClosePeriod();
  if (!gated.ok()) {
    std::fprintf(stderr, "period failed: %s\n",
                 gated.status().ToString().c_str());
    return 1;
  }

  TextTable table({"pool", "capacity", "granted", "shed", "high_water"});
  for (const gate::TicketHolderStats& pool : gated->gate.pools) {
    table.AddRow({pool.name, FormatInt(pool.capacity),
                  FormatInt(pool.granted_immediate + pool.granted_queued),
                  FormatInt(pool.rejected + pool.timed_out),
                  FormatInt(pool.used_high_water)});
  }
  std::fputs(table.ToAligned().c_str(), stdout);

  std::printf("\nperiod 0: offered %lld, admitted %lld, shed %lld "
              "before the auction; cluster admitted %d of %d\n",
              static_cast<long long>(gated->gate.offered),
              static_cast<long long>(gated->gate.admitted),
              static_cast<long long>(gated->gate.shed),
              gated->report.admitted, gated->report.submissions);
  if (gated->probe.has_value()) {
    std::printf("probe epoch %d: %s -> concurrency %d (stable %d, "
                "ema %.2f)\n",
                gated->probe->epoch,
                gate::ProbeStateName(gated->probe->state),
                gated->probe->concurrency,
                gated->probe->stable_concurrency,
                gated->probe->ema_throughput);
  }
  return 0;
}
