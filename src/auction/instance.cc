// Copyright 2026 The streambid Authors

#include "auction/instance.h"

#include <sstream>
#include <unordered_set>
#include <utility>

namespace streambid::auction {

Result<AuctionInstance> AuctionInstance::Create(
    std::vector<OperatorSpec> operators, std::vector<QuerySpec> queries) {
  const int num_ops = static_cast<int>(operators.size());
  for (int j = 0; j < num_ops; ++j) {
    if (!(operators[static_cast<size_t>(j)].load > 0.0)) {
      return Status::InvalidArgument("operator " + std::to_string(j) +
                                     " has non-positive load");
    }
  }
  std::unordered_set<OperatorId> seen;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QuerySpec& q = queries[i];
    if (q.bid < 0.0) {
      return Status::InvalidArgument("query " + std::to_string(i) +
                                     " has negative bid");
    }
    if (q.operators.empty()) {
      return Status::InvalidArgument("query " + std::to_string(i) +
                                     " has no operators");
    }
    seen.clear();
    for (OperatorId j : q.operators) {
      if (j < 0 || j >= num_ops) {
        return Status::InvalidArgument(
            "query " + std::to_string(i) + " references unknown operator " +
            std::to_string(j));
      }
      if (!seen.insert(j).second) {
        return Status::InvalidArgument("query " + std::to_string(i) +
                                       " lists operator " +
                                       std::to_string(j) + " twice");
      }
    }
  }

  AuctionInstance inst;
  inst.operators_ = std::move(operators);
  inst.queries_ = std::move(queries);
  inst.BuildDerived();
  return inst;
}

void AuctionInstance::BuildDerived() {
  const size_t num_ops = operators_.size();
  const size_t num_queries = queries_.size();

  sharing_degree_.assign(num_ops, 0);
  op_queries_.assign(num_ops, {});
  for (size_t i = 0; i < num_queries; ++i) {
    for (OperatorId j : queries_[i].operators) {
      ++sharing_degree_[static_cast<size_t>(j)];
      op_queries_[static_cast<size_t>(j)].push_back(
          static_cast<QueryId>(i));
    }
  }

  total_load_.assign(num_queries, 0.0);
  fair_share_load_.assign(num_queries, 0.0);
  max_bid_ = 0.0;
  total_demand_ = 0.0;
  for (size_t i = 0; i < num_queries; ++i) {
    double ct = 0.0;
    double csf = 0.0;
    for (OperatorId j : queries_[i].operators) {
      const double load = operators_[static_cast<size_t>(j)].load;
      ct += load;
      csf += load / sharing_degree_[static_cast<size_t>(j)];
    }
    total_load_[i] = ct;
    fair_share_load_[i] = csf;
    total_demand_ += ct;
    if (queries_[i].bid > max_bid_) max_bid_ = queries_[i].bid;
  }

  total_union_load_ = 0.0;
  for (size_t j = 0; j < num_ops; ++j) {
    if (sharing_degree_[j] > 0) total_union_load_ += operators_[j].load;
  }
}

Result<AuctionInstance> AuctionInstance::WithExtraQueries(
    std::vector<QuerySpec> extra) const {
  std::vector<QuerySpec> all = queries_;
  for (auto& q : extra) all.push_back(std::move(q));
  return Create(operators_, std::move(all));
}

AuctionInstance AuctionInstance::WithBid(QueryId i, double new_bid) const {
  AuctionInstance copy = *this;
  copy.queries_[static_cast<size_t>(i)].bid = new_bid;
  if (new_bid > copy.max_bid_) {
    copy.max_bid_ = new_bid;
  } else {
    // Bid may have been the unique maximum; recompute.
    copy.max_bid_ = 0.0;
    for (const auto& q : copy.queries_) {
      if (q.bid > copy.max_bid_) copy.max_bid_ = q.bid;
    }
  }
  return copy;
}

Result<AuctionInstance> AuctionInstance::WithExtraOperators(
    std::vector<OperatorSpec> extra_ops,
    std::vector<QuerySpec> extra_queries) const {
  std::vector<OperatorSpec> ops = operators_;
  for (auto& o : extra_ops) ops.push_back(o);
  std::vector<QuerySpec> all = queries_;
  for (auto& q : extra_queries) all.push_back(std::move(q));
  return Create(std::move(ops), std::move(all));
}

std::string AuctionInstance::Summary() const {
  std::ostringstream out;
  out << "AuctionInstance{queries=" << num_queries()
      << ", operators=" << num_operators()
      << ", union_load=" << total_union_load_
      << ", total_demand=" << total_demand_ << ", max_bid=" << max_bid_
      << "}";
  return out.str();
}

}  // namespace streambid::auction
