// Copyright 2026 The streambid Authors
// The gate's replay-identity contract: for a closed-loop workload that
// never exhausts tickets, per-period cluster reports with the gate
// enabled are byte-identical to direct ClusterCenter::Submit — at
// executor pool sizes 1/2/8, with the throughput probe off or on
// (probed resizes only move capacity the workload never reaches). Plus
// the concurrency properties: gated runs replay byte-identically
// against themselves, and the ticket bound holds under racing
// producers.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "gate/stream_ingress.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

namespace streambid::gate {
namespace {

constexpr int kPeriods = 6;

Status RegisterQuotes(stream::Engine& engine) {
  return engine.RegisterSource(stream::MakeStockQuoteSource(
      "quotes", {"IBM", "AAPL", "MSFT"}, 100.0, 11));
}

stream::QuerySubmission MakeSubmission(int id, auction::UserId user,
                                       double bid, double threshold) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(threshold));
  stream::QuerySubmission sub;
  sub.query_id = id;
  sub.user = user;
  sub.bid = bid;
  sub.plan = b.Build(sel);
  return sub;
}

/// Spiky but closed-loop: every period's batch fits far under the
/// ticket pools, including one idle period.
int TenantsFor(int period) {
  if (period == 4) return 0;
  return period % 2 == 0 ? 9 : 4;
}

stream::QuerySubmission TenantSubmission(int period, int t) {
  return MakeSubmission(100 * period + t, t, 55.0 - 3.0 * t,
                        100.0 + 5.0 * (t % 4));
}

cluster::ClusterOptions BaseClusterOptions(int executor_threads) {
  cluster::ClusterOptions options;
  options.num_shards = 3;
  options.total_capacity = 6.0;
  options.routing = cluster::RoutingPolicy::kHashUser;
  options.mechanism = "cat";
  options.period_length = 5.0;
  options.seed = 61;
  options.engine_options.tick = 1.0;
  options.engine_options.sink_history = 4;
  options.executor_threads = executor_threads;
  return options;
}

IngressOptions AmpleTickets(bool probing) {
  IngressOptions options;
  options.tenant_classes = 2;
  options.tickets_per_class = 32;
  if (probing) {
    options.probe.enabled = true;
    // The probe moves concurrency far above what the workload uses, so
    // tickets never run out and the reports must stay untouched.
    options.probe.initial_concurrency = 64;
    options.probe.min_concurrency = 32;
    options.probe.max_concurrency = 128;
    options.probe.seed = 9;
  }
  return options;
}

void ExpectShardReportsIdentical(const cloud::PeriodReport& a,
                                 const cloud::PeriodReport& b) {
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.mechanism, b.mechanism);
  EXPECT_EQ(a.submissions, b.submissions);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.admitted_ids, b.admitted_ids);
  EXPECT_EQ(a.payments, b.payments);
  // Byte-identical doubles: the gate must be invisible, not "close".
  EXPECT_EQ(a.revenue, b.revenue);
  EXPECT_EQ(a.total_payoff, b.total_payoff);
  EXPECT_EQ(a.auction_utilization, b.auction_utilization);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.shed_fraction, b.shed_fraction);
  EXPECT_EQ(a.provisioned_capacity, b.provisioned_capacity);
  EXPECT_EQ(a.energy_cost, b.energy_cost);
}

void ExpectClusterReportsIdentical(const cluster::ClusterPeriodReport& a,
                                   const cluster::ClusterPeriodReport& b) {
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.submissions, b.submissions);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.revenue, b.revenue);
  EXPECT_EQ(a.total_payoff, b.total_payoff);
  EXPECT_EQ(a.auction_utilization, b.auction_utilization);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.provisioned_capacity, b.provisioned_capacity);
  EXPECT_EQ(a.energy_cost, b.energy_cost);
  ASSERT_EQ(a.shard_reports.size(), b.shard_reports.size());
  for (size_t s = 0; s < a.shard_reports.size(); ++s) {
    ExpectShardReportsIdentical(a.shard_reports[s], b.shard_reports[s]);
  }
}

std::vector<cluster::ClusterPeriodReport> RunDirect(int executor_threads) {
  cluster::ClusterCenter center(BaseClusterOptions(executor_threads),
                                RegisterQuotes);
  std::vector<cluster::ClusterPeriodReport> reports;
  for (int period = 0; period < kPeriods; ++period) {
    for (int t = 1; t <= TenantsFor(period); ++t) {
      EXPECT_TRUE(center.Submit(TenantSubmission(period, t)).ok());
    }
    const auto report = center.RunPeriod();
    EXPECT_TRUE(report.ok());
    reports.push_back(*report);
  }
  return reports;
}

std::vector<cluster::ClusterPeriodReport> RunGated(int executor_threads,
                                                   bool probing) {
  cluster::ClusterCenter center(BaseClusterOptions(executor_threads),
                                RegisterQuotes);
  StreamIngress gate(&center, AmpleTickets(probing));
  std::vector<cluster::ClusterPeriodReport> reports;
  for (int period = 0; period < kPeriods; ++period) {
    for (int t = 1; t <= TenantsFor(period); ++t) {
      EXPECT_TRUE(gate.Offer(TenantSubmission(period, t)).ok());
    }
    const auto gated = gate.ClosePeriod();
    EXPECT_TRUE(gated.ok());
    EXPECT_EQ(gated->gate.shed, 0);     // Closed loop: no shedding...
    EXPECT_EQ(gated->gate.dropped, 0);  // ...and no drain refusals.
    reports.push_back(gated->report);
  }
  return reports;
}

TEST(GateReplayTest, GatedMatchesDirectSubmitAtEveryPoolSize) {
  const std::vector<cluster::ClusterPeriodReport> reference = RunDirect(1);
  for (const int threads : {1, 2, 8}) {
    for (const bool probing : {false, true}) {
      const std::vector<cluster::ClusterPeriodReport> gated =
          RunGated(threads, probing);
      ASSERT_EQ(gated.size(), reference.size());
      for (size_t p = 0; p < reference.size(); ++p) {
        ExpectClusterReportsIdentical(gated[p], reference[p]);
      }
    }
    // Direct runs are themselves pool-size invariant (the existing
    // pipelining contract) — assert it so a regression here cannot
    // masquerade as a gate bug.
    const std::vector<cluster::ClusterPeriodReport> direct =
        RunDirect(threads);
    for (size_t p = 0; p < reference.size(); ++p) {
      ExpectClusterReportsIdentical(direct[p], reference[p]);
    }
  }
}

TEST(GateReplayTest, ProbeDecisionsReplayAcrossGatedRuns) {
  auto run = []() -> std::vector<ProbeDecision> {
    cluster::ClusterCenter center(BaseClusterOptions(2), RegisterQuotes);
    StreamIngress gate(&center, AmpleTickets(/*probing=*/true));
    std::vector<ProbeDecision> decisions;
    for (int period = 0; period < kPeriods; ++period) {
      for (int t = 1; t <= TenantsFor(period); ++t) {
        EXPECT_TRUE(gate.Offer(TenantSubmission(period, t)).ok());
      }
      const auto gated = gate.ClosePeriod();
      EXPECT_TRUE(gated.ok());
      if (gated.ok() && gated->probe.has_value()) {
        decisions.push_back(*gated->probe);
      }
    }
    return decisions;
  };
  const std::vector<ProbeDecision> a = run();
  const std::vector<ProbeDecision> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].state, b[i].state);
    EXPECT_EQ(a[i].concurrency, b[i].concurrency);
    EXPECT_EQ(a[i].stable_concurrency, b[i].stable_concurrency);
    EXPECT_EQ(a[i].reason, b[i].reason);
    EXPECT_EQ(a[i].ema_throughput, b[i].ema_throughput);
  }
}

TEST(GateReplayTest, TicketBoundHoldsUnderRacingProducers) {
  cluster::ClusterCenter center(BaseClusterOptions(2), RegisterQuotes);
  IngressOptions options;
  options.tenant_classes = 2;
  options.tickets_per_class = 4;  // 8 tickets total, 64 offers.
  StreamIngress gate(&center, options);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 16;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&gate, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int t = p * kPerProducer + i + 1;
        (void)gate.Offer(MakeSubmission(t, t, 50.0 - (t % 7),
                                        100.0 + 5.0 * (t % 4)));
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // The open-loop invariant: the buffer can never outgrow the pools.
  EXPECT_LE(gate.buffered_high_water(), 8);
  EXPECT_LE(gate.buffered(), 8);
  const auto gated = gate.ClosePeriod();
  ASSERT_TRUE(gated.ok());
  EXPECT_EQ(gated->gate.offered, kProducers * kPerProducer);
  EXPECT_EQ(gated->gate.admitted + gated->gate.shed,
            kProducers * kPerProducer);
  EXPECT_LE(gated->gate.admitted, 8);
  EXPECT_GT(gated->gate.shed, 0);
  EXPECT_EQ(gate.pool(0).used() + gate.pool(1).used(), 0);
}

}  // namespace
}  // namespace streambid::gate
