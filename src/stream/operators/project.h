// Copyright 2026 The streambid Authors
// Projection operator: keeps a subset of fields (in the given order).

#ifndef STREAMBID_STREAM_OPERATORS_PROJECT_H_
#define STREAMBID_STREAM_OPERATORS_PROJECT_H_

#include <string>
#include <vector>

#include "stream/operator.h"

namespace streambid::stream {

/// project(f1,f2,...).
class ProjectOperator : public OperatorBase {
 public:
  ProjectOperator(const SchemaPtr& input_schema,
                  std::vector<std::string> fields,
                  double cost_per_tuple = DefaultCosts::kProject);

  SchemaPtr output_schema() const override { return output_schema_; }

  void Process(int port, const Tuple& tuple,
               std::vector<Tuple>* out) override;

 private:
  SchemaPtr output_schema_;
  std::vector<int> indices_;
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_OPERATORS_PROJECT_H_
