// Copyright 2026 The streambid Authors
// Monotonic wall-clock stopwatch, shared by the bench harness, the
// admission service's response timing, and the telemetry layer's span
// and latency instrumentation (steady_clock: never jumps backwards).

#ifndef STREAMBID_COMMON_TIMER_H_
#define STREAMBID_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace streambid {

/// Monotonic stopwatch. Start() resets; elapsed accessors may be called
/// repeatedly while running.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streambid

#endif  // STREAMBID_COMMON_TIMER_H_
