// Copyright 2026 The streambid Authors
// §VII energy extension: profit net of energy cost as a function of the
// capacity offered to the auction. The paper's observation: "it might
// be more profitable not to fully utilize the available capacity" —
// density mechanisms' prices collapse when capacity approaches total
// demand, so a smaller provisioned capacity can earn strictly more
// even before energy savings.

#include <cstdio>

#include "bench/bench_common.h"
#include "cloud/energy.h"
#include "common/check.h"
#include "common/table.h"

int main() {
  using namespace streambid;
  using namespace streambid::bench;
  const BenchConfig config = LoadConfig();
  PrintBanner("§VII energy/capacity ablation (max degree of sharing 20)",
              config);

  workload::WorkloadParams params = config.params;
  workload::WorkloadSet ws(params, 0xE4E56Au);
  const auction::AuctionInstance& inst = ws.InstanceAt(20);
  const double demand = inst.total_union_load();
  std::printf("# union demand at degree 20: %.0f units\n", demand);

  std::vector<double> candidates;
  for (double f : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2}) {
    candidates.push_back(demand * f);
  }

  cloud::EnergyModel energy;
  service::AdmissionService service;
  std::vector<std::pair<std::string, double>> artifact;
  for (const char* name : {"cat", "caf", "two-price"}) {
    auto properties = service.Properties(name);
    STREAMBID_CHECK(properties.ok());
    const auto evals = cloud::EvaluateCapacities(
        service, name, inst, candidates, energy, /*seed=*/11,
        properties->randomized ? config.trials * 4 : 1);
    STREAMBID_CHECK(evals.ok());
    TextTable table({"capacity", "gross_profit", "energy_cost",
                     "net_profit", "utilization", "admitted"});
    for (const auto& e : *evals) {
      table.AddRow({FormatDouble(e.capacity, 0),
                    FormatDouble(e.gross_profit, 1),
                    FormatDouble(e.energy_cost, 1),
                    FormatDouble(e.net_profit, 1),
                    FormatPercent(e.utilization, 1),
                    FormatInt(e.admitted)});
    }
    std::printf("## mechanism %s\n", name);
    std::fputs(table.ToAligned().c_str(), stdout);
    const auto best = cloud::OptimizeCapacity(service, name, inst,
                                              candidates, energy,
                                              /*seed=*/11, 1);
    STREAMBID_CHECK(best.ok());
    std::printf("# most beneficial capacity for %s: %.0f "
                "(%.0f%% of demand), net %.1f\n",
                name, best->capacity, 100.0 * best->capacity / demand,
                best->net_profit);
    artifact.emplace_back(std::string("best_capacity_frac_") + name,
                          best->capacity / demand);
    artifact.emplace_back(std::string("best_net_profit_") + name,
                          best->net_profit);
  }
  WriteBenchJson("energy_capacity", artifact);
  return 0;
}
