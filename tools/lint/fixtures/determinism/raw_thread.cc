// Copyright 2026 The streambid Authors
// Fixture: raw std::thread spawn outside TaskExecutor. Reading
// hardware_concurrency (std::thread:: static) is fine.

#include <thread>

inline void SpawnDetached() {
  std::thread worker([] {});  // WANT(raw-thread)
  worker.detach();
}

inline unsigned Cores() { return std::thread::hardware_concurrency(); }
