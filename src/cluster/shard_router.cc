// Copyright 2026 The streambid Authors

#include "cluster/shard_router.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace streambid::cluster {

namespace {

/// Clearing prices are revenue / admitted: the same allocation computed
/// on different platforms (or through a different summation order) can
/// differ in the last bits, and an exact == tie-break would flip the
/// routed shard on that noise.
constexpr double kPriceRelativeTolerance = 1e-9;

/// Pending load relative to the shard's next-period capacity. A shard
/// whose owner tracks no provisioning compares at capacity 1 — with a
/// provisioning-tracking owner (the ClusterCenter) every shard always
/// carries a capacity, so the mixed case only arises in hand-built
/// status vectors.
double RelativeLoad(const ShardStatus& status) {
  return status.pending_load / status.next_capacity.value_or(1.0);
}

}  // namespace

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kHashUser:
      return "hash";
    case RoutingPolicy::kLeastLoaded:
      return "least-loaded";
    case RoutingPolicy::kPriceAware:
      return "price-aware";
  }
  return "unknown";
}

ShardRouter::ShardRouter(RoutingPolicy policy, int num_shards)
    : policy_(policy), num_shards_(num_shards) {
  STREAMBID_CHECK_GE(num_shards, 1);
}

uint64_t ShardRouter::HashUser(auction::UserId user) {
  // User ids are typically small and sequential; Mix64 spreads them
  // evenly over shards.
  return Mix64(static_cast<uint64_t>(static_cast<int64_t>(user)) +
               0x9E3779B97F4A7C15ull);
}

bool ShardRouter::PricesTie(double a, double b) {
  if (std::isinf(a) || std::isinf(b)) {
    return std::isinf(a) && std::isinf(b);
  }
  return std::abs(a - b) <=
         kPriceRelativeTolerance * std::max(std::abs(a), std::abs(b));
}

int ShardRouter::ProbeFrom(int home,
                           const std::vector<ShardStatus>& shards) const {
  // Probe forward from the home shard past drained ones, so the
  // placement stays stable while a shard's provisioning is at zero and
  // snaps back the period it recovers.
  for (int k = 0; k < num_shards_; ++k) {
    const int s = (home + k) % num_shards_;
    if (Eligible(shards[static_cast<size_t>(s)])) return s;
  }
  return home;  // Everything drained: deterministic degenerate choice.
}

int ShardRouter::RouteHash(const stream::QuerySubmission& submission,
                           const std::vector<ShardStatus>& shards) const {
  return ProbeFrom(static_cast<int>(HashUser(submission.user) %
                                    static_cast<uint64_t>(num_shards_)),
                   shards);
}

int ShardRouter::Route(const stream::QuerySubmission& submission,
                       const std::vector<ShardStatus>& shards,
                       const PlacementOverrides* overrides) const {
  STREAMBID_CHECK_EQ(static_cast<int>(shards.size()), num_shards_);
  // A pinned placement wins under every policy: the rebalancer moved
  // this tenant's state, so routing anywhere else would re-split it.
  if (overrides != nullptr) {
    const auto it = overrides->find(submission.user);
    if (it != overrides->end()) {
      STREAMBID_CHECK_GE(it->second, 0);
      STREAMBID_CHECK_LT(it->second, num_shards_);
      return ProbeFrom(it->second, shards);
    }
  }
  switch (policy_) {
    case RoutingPolicy::kHashUser:
      return RouteHash(submission, shards);

    case RoutingPolicy::kLeastLoaded: {
      int best = -1;
      for (int s = 0; s < num_shards_; ++s) {
        if (!Eligible(shards[static_cast<size_t>(s)])) continue;
        // Load relative to next-period capacity: a half-drained shard
        // with half the pending load is exactly as full, not roomier.
        // Strict <: ties stay on the lowest index (deterministic).
        if (best < 0 || RelativeLoad(shards[static_cast<size_t>(s)]) <
                            RelativeLoad(shards[static_cast<size_t>(best)])) {
          best = s;
        }
      }
      return best >= 0 ? best : RouteHash(submission, shards);
    }

    case RoutingPolicy::kPriceAware: {
      // No eligible shard has run a period yet: nothing to compare
      // prices on, so place by the stable hash instead.
      bool any_history = false;
      for (const ShardStatus& status : shards) {
        any_history =
            any_history || (Eligible(status) && status.has_history);
      }
      if (!any_history) return RouteHash(submission, shards);

      // A shard without history is optimistically price 0 / rate 1, so
      // unexplored capacity attracts traffic until it clears a period —
      // otherwise a shard the hash never seeded could stay dead weight
      // forever. Ties go to the lowest index.
      const auto price = [](const ShardStatus& s) {
        return s.has_history ? s.last_clearing_price : 0.0;
      };
      const auto rate = [](const ShardStatus& s) {
        return s.has_history ? s.last_admission_rate : 1.0;
      };
      int best = -1;
      for (int s = 0; s < num_shards_; ++s) {
        const ShardStatus& status = shards[static_cast<size_t>(s)];
        if (!Eligible(status)) continue;
        if (best < 0) {
          best = s;
          continue;
        }
        const ShardStatus& incumbent =
            shards[static_cast<size_t>(best)];
        if (PricesTie(price(status), price(incumbent))
                ? rate(status) > rate(incumbent)
                : price(status) < price(incumbent)) {
          best = s;
        }
      }
      return best >= 0 ? best : RouteHash(submission, shards);
    }
  }
  STREAMBID_CHECK(false);
  return 0;
}

}  // namespace streambid::cluster
