// Copyright 2026 The streambid Authors
// The §VII extension: queries subscribing for different minimum lengths
// (day, week, month, ...). System capacity not committed to continuing
// subscriptions is partitioned among subscription categories each day,
// and an independent strategyproof auction runs per category — which
// keeps the scheme as a whole bid-strategyproof, as the paper argues.

#ifndef STREAMBID_CLOUD_SUBSCRIPTION_H_
#define STREAMBID_CLOUD_SUBSCRIPTION_H_

#include <string>
#include <vector>

#include "auction/instance.h"
#include "common/status.h"
#include "service/admission_service.h"

namespace streambid::cloud {

/// One subscription length class with its share of free capacity.
struct SubscriptionCategory {
  std::string name;          ///< "daily", "weekly", ...
  int length_days = 1;       ///< Subscription span.
  double capacity_fraction;  ///< Share of the *available* capacity.
};

/// A request to run an abstract query (a set of operators from the
/// manager's shared pool) for one subscription of a given category.
struct SubscriptionRequest {
  int request_id = 0;
  auction::UserId user = 0;
  double bid = 0.0;
  std::vector<auction::OperatorId> operators;
  int category = 0;  ///< Index into the category list.
};

/// A live subscription.
struct ActiveSubscription {
  int request_id = 0;
  auction::UserId user = 0;
  int category = 0;
  int expires_day = 0;  ///< First day it no longer runs.
  double payment = 0.0;
  std::vector<auction::OperatorId> operators;
};

/// Per-day outcome.
struct SubscriptionDayReport {
  int day = 0;
  double committed_load = 0.0;  ///< Load of continuing subscriptions.
  double available_capacity = 0.0;
  double revenue = 0.0;
  int admitted = 0;
  int rejected = 0;
  int expired = 0;
  /// Per-category admitted counts, aligned with the category list.
  std::vector<int> admitted_per_category;
};

/// Runs the §VII repeated per-category auctions over a shared operator
/// pool. Operator sharing is counted across ALL submissions of a day's
/// category auction (fair-share loads recomputed per auction, exactly
/// like the one-shot setting).
class SubscriptionManager {
 public:
  /// `operator_pool` defines the loads of every operator requests may
  /// reference; `mechanism` names the per-category auction.
  SubscriptionManager(std::vector<SubscriptionCategory> categories,
                      std::vector<auction::OperatorSpec> operator_pool,
                      double total_capacity, const std::string& mechanism,
                      uint64_t seed);

  /// Queues a request for the next day's auction. kInvalidArgument on
  /// unknown category/operator.
  Status Submit(const SubscriptionRequest& request);

  /// Advances one day: expires finished subscriptions, partitions the
  /// remaining capacity, and auctions each category's queue.
  SubscriptionDayReport AdvanceDay();

  const std::vector<ActiveSubscription>& active() const { return active_; }
  double total_revenue() const { return total_revenue_; }
  int today() const { return day_; }
  const std::vector<SubscriptionCategory>& categories() const {
    return categories_;
  }

  /// Capacity currently committed to continuing subscriptions (union
  /// load of their operators).
  double CommittedLoad() const;

 private:
  std::vector<SubscriptionCategory> categories_;
  std::vector<auction::OperatorSpec> pool_;
  double total_capacity_;
  std::string mechanism_;
  service::AdmissionService service_;
  uint64_t seed_;

  int day_ = 0;
  std::vector<SubscriptionRequest> pending_;
  std::vector<ActiveSubscription> active_;
  double total_revenue_ = 0.0;
};

}  // namespace streambid::cloud

#endif  // STREAMBID_CLOUD_SUBSCRIPTION_H_
