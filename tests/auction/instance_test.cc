// Copyright 2026 The streambid Authors

#include "auction/instance.h"

#include <gtest/gtest.h>

namespace streambid::auction {
namespace {

std::vector<OperatorSpec> Ops(std::initializer_list<double> loads) {
  std::vector<OperatorSpec> ops;
  for (double l : loads) ops.push_back({l});
  return ops;
}

TEST(AuctionInstanceTest, CreateValidatesOperatorReferences) {
  auto r = AuctionInstance::Create(Ops({1.0}), {{0, 5.0, {3}}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(AuctionInstanceTest, CreateRejectsNonPositiveLoad) {
  auto r = AuctionInstance::Create(Ops({0.0}), {{0, 5.0, {0}}});
  EXPECT_FALSE(r.ok());
  auto r2 = AuctionInstance::Create(Ops({-1.0}), {{0, 5.0, {0}}});
  EXPECT_FALSE(r2.ok());
}

TEST(AuctionInstanceTest, CreateRejectsNegativeBid) {
  auto r = AuctionInstance::Create(Ops({1.0}), {{0, -5.0, {0}}});
  EXPECT_FALSE(r.ok());
}

TEST(AuctionInstanceTest, CreateRejectsEmptyQuery) {
  auto r = AuctionInstance::Create(Ops({1.0}), {{0, 5.0, {}}});
  EXPECT_FALSE(r.ok());
}

TEST(AuctionInstanceTest, CreateRejectsDuplicateOperatorInQuery) {
  auto r = AuctionInstance::Create(Ops({1.0}), {{0, 5.0, {0, 0}}});
  EXPECT_FALSE(r.ok());
}

TEST(AuctionInstanceTest, DerivedQuantities) {
  // Two queries share op0 (load 4); q0 also has op1 (load 2), q1 op2 (6).
  auto r = AuctionInstance::Create(
      Ops({4.0, 2.0, 6.0}), {{0, 10.0, {0, 1}}, {1, 20.0, {0, 2}}});
  ASSERT_TRUE(r.ok());
  const AuctionInstance& inst = *r;
  EXPECT_EQ(inst.num_queries(), 2);
  EXPECT_EQ(inst.num_operators(), 3);
  EXPECT_EQ(inst.sharing_degree(0), 2);
  EXPECT_EQ(inst.sharing_degree(1), 1);
  EXPECT_DOUBLE_EQ(inst.total_load(0), 6.0);
  EXPECT_DOUBLE_EQ(inst.total_load(1), 10.0);
  EXPECT_DOUBLE_EQ(inst.fair_share_load(0), 4.0);   // 4/2 + 2.
  EXPECT_DOUBLE_EQ(inst.fair_share_load(1), 8.0);   // 4/2 + 6.
  EXPECT_DOUBLE_EQ(inst.total_union_load(), 12.0);  // 4 + 2 + 6.
  EXPECT_DOUBLE_EQ(inst.total_demand(), 16.0);      // 6 + 10.
  EXPECT_DOUBLE_EQ(inst.max_bid(), 20.0);
  ASSERT_EQ(inst.operator_queries(0).size(), 2u);
  EXPECT_EQ(inst.operator_queries(0)[0], 0);
  EXPECT_EQ(inst.operator_queries(0)[1], 1);
}

TEST(AuctionInstanceTest, UnreferencedOperatorNotInUnionLoad) {
  auto r = AuctionInstance::Create(Ops({4.0, 9.0}), {{0, 10.0, {0}}});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_union_load(), 4.0);
  EXPECT_EQ(r->sharing_degree(1), 0);
}

TEST(AuctionInstanceTest, WithBidReplacesBidAndMaxBid) {
  auto r = AuctionInstance::Create(Ops({1.0}),
                                   {{0, 5.0, {0}}, {1, 9.0, {0}}});
  ASSERT_TRUE(r.ok());
  AuctionInstance lowered = r->WithBid(1, 2.0);
  EXPECT_DOUBLE_EQ(lowered.bid(1), 2.0);
  EXPECT_DOUBLE_EQ(lowered.max_bid(), 5.0);
  AuctionInstance raised = r->WithBid(0, 50.0);
  EXPECT_DOUBLE_EQ(raised.max_bid(), 50.0);
  // Original untouched.
  EXPECT_DOUBLE_EQ(r->bid(1), 9.0);
}

TEST(AuctionInstanceTest, WithExtraQueriesRecomputesFairShare) {
  auto r = AuctionInstance::Create(Ops({4.0}), {{0, 10.0, {0}}});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->fair_share_load(0), 4.0);
  auto grown = r->WithExtraQueries({{1, 0.001, {0}}});
  ASSERT_TRUE(grown.ok());
  // Operator now shared by two queries: CSF halves. This shift is the
  // mechanics of the §V-A sybil attack.
  EXPECT_DOUBLE_EQ(grown->fair_share_load(0), 2.0);
  EXPECT_EQ(grown->num_queries(), 2);
}

TEST(AuctionInstanceTest, WithExtraOperatorsExtendsPool) {
  auto r = AuctionInstance::Create(Ops({4.0}), {{0, 10.0, {0}}});
  ASSERT_TRUE(r.ok());
  auto grown = r->WithExtraOperators({{2.5}}, {{1, 1.0, {1}}});
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->num_operators(), 2);
  EXPECT_DOUBLE_EQ(grown->operator_load(1), 2.5);
  EXPECT_DOUBLE_EQ(grown->total_union_load(), 6.5);
}

TEST(AuctionInstanceTest, SummaryMentionsCounts) {
  auto r = AuctionInstance::Create(Ops({1.0}), {{0, 5.0, {0}}});
  ASSERT_TRUE(r.ok());
  const std::string s = r->Summary();
  EXPECT_NE(s.find("queries=1"), std::string::npos);
  EXPECT_NE(s.find("operators=1"), std::string::npos);
}

TEST(AuctionInstanceTest, EmptyInstanceIsValid) {
  auto r = AuctionInstance::Create({}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_queries(), 0);
  EXPECT_DOUBLE_EQ(r->max_bid(), 0.0);
}

}  // namespace
}  // namespace streambid::auction
