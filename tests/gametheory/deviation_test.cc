// Copyright 2026 The streambid Authors

#include "gametheory/deviation.h"

#include <gtest/gtest.h>

#include "auction/registry.h"
#include "gametheory/attacks.h"

namespace streambid::gametheory {
namespace {

TEST(DeviationTest, FindsCarManipulationOnExample1) {
  // §IV-A: CAR is not bid-strategyproof. With user 1's value boosted so
  // she is selected first, underbidding lowers her remaining load and
  // payment — the deviation search must find a profitable lie.
  auction::AuctionInstance inst = Example1Instance().WithBid(0, 80.0);
  auto car = auction::MakeMechanism("car");
  ASSERT_TRUE(car.ok());
  Rng rng(1);
  DeviationOptions options;
  const DeviationReport report =
      FindBestDeviation(**car, inst, kExample1Capacity, 0, options, rng);
  EXPECT_TRUE(report.profitable_deviation_found);
  EXPECT_LT(report.best_deviant_bid, 80.0);  // An underbid.
  EXPECT_GT(report.Gain(), 1.0);
}

TEST(DeviationTest, NoDeviationBeatsCatOnExample1) {
  auction::AuctionInstance inst = Example1Instance();
  auto cat = auction::MakeMechanism("cat");
  ASSERT_TRUE(cat.ok());
  Rng rng(2);
  DeviationOptions options;
  for (auction::QueryId q = 0; q < inst.num_queries(); ++q) {
    const DeviationReport report = FindBestDeviation(
        **cat, inst, kExample1Capacity, q, options, rng);
    EXPECT_FALSE(report.profitable_deviation_found)
        << "query " << q << " gains " << report.Gain() << " bidding "
        << report.best_deviant_bid;
  }
}

TEST(DeviationTest, SweepReportsWorstQuery) {
  auction::AuctionInstance inst = Example1Instance().WithBid(0, 80.0);
  auto car = auction::MakeMechanism("car");
  ASSERT_TRUE(car.ok());
  Rng rng(3);
  DeviationOptions options;
  const DeviationReport worst =
      SweepDeviations(**car, inst, kExample1Capacity, options, rng);
  EXPECT_TRUE(worst.profitable_deviation_found);
}

TEST(DeviationTest, TruthfulPayoffMatchesDirectComputation) {
  auction::AuctionInstance inst = Example1Instance();
  auto caf = auction::MakeMechanism("caf");
  ASSERT_TRUE(caf.ok());
  Rng rng(4);
  DeviationOptions options;
  const DeviationReport report =
      FindBestDeviation(**caf, inst, kExample1Capacity, 0, options, rng);
  // CAF admits q1 at payment $30 (Example 1): payoff 55 - 30 = 25.
  EXPECT_DOUBLE_EQ(report.truthful_payoff, 25.0);
}

TEST(DeviationTest, ZeroValueQueryCannotGain) {
  auction::AuctionInstance inst = Example1Instance().WithBid(2, 0.0);
  auto cat = auction::MakeMechanism("cat");
  ASSERT_TRUE(cat.ok());
  Rng rng(5);
  DeviationOptions options;
  const DeviationReport report =
      FindBestDeviation(**cat, inst, kExample1Capacity, 2, options, rng);
  // Bidding above 0 can only win at a price >= some positive critical
  // value >= ... well, winning at price <= 0 is impossible here, so any
  // win gives negative payoff. Truthful (losing) payoff is 0.
  EXPECT_FALSE(report.profitable_deviation_found);
}

}  // namespace
}  // namespace streambid::gametheory
