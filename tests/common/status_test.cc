// Copyright 2026 The streambid Authors

#include "common/status.h"

#include <gtest/gtest.h>

namespace streambid {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad load");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad load");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad load");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailingHelper() { return Status::Internal("inner"); }

Status Propagates() {
  STREAMBID_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

Result<int> ProducesValue() { return 21; }

Status UsesAssign(int* out) {
  STREAMBID_ASSIGN_OR_RETURN(int v, ProducesValue());
  *out = v * 2;
  return Status::Ok();
}

TEST(StatusMacroTest, AssignOrReturnUnwraps) {
  int out = 0;
  EXPECT_TRUE(UsesAssign(&out).ok());
  EXPECT_EQ(out, 42);
}

}  // namespace
}  // namespace streambid
