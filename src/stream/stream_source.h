// Copyright 2026 The streambid Authors
// Input stream sources. The paper's motivating applications monitor hot
// shared streams (stock quotes, news stories, sensor feeds, §II); since
// those feeds are proprietary, we generate seeded synthetic equivalents
// with configurable rates — the substitution DESIGN.md documents.

#ifndef STREAMBID_STREAM_STREAM_SOURCE_H_
#define STREAMBID_STREAM_STREAM_SOURCE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "stream/tuple.h"

namespace streambid::stream {

/// Abstract timed tuple generator. Tuples are produced at a fixed mean
/// rate with deterministic inter-arrival times (rate tuples/second in
/// virtual time); subclasses fill in the payload.
class StreamSource {
 public:
  StreamSource(std::string name, SchemaPtr schema, double rate,
               uint64_t seed)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        rate_(rate),
        rng_(seed) {}
  virtual ~StreamSource() = default;

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  double rate() const { return rate_; }

  /// Emits all tuples with timestamps in (last emission, until].
  std::vector<Tuple> EmitUntil(VirtualTime until);

  int64_t tuples_emitted() const { return emitted_; }

 protected:
  /// Produces the payload of the tuple stamped `ts`.
  virtual std::vector<Value> Generate(VirtualTime ts, Rng& rng) = 0;

 private:
  std::string name_;
  SchemaPtr schema_;
  double rate_;
  Rng rng_;
  VirtualTime next_ts_ = 0.0;
  int64_t emitted_ = 0;
};

using StreamSourcePtr = std::unique_ptr<StreamSource>;

/// Synthetic stock-quote feed: per-symbol geometric random walk.
/// Schema: symbol:string, price:double, volume:int64.
StreamSourcePtr MakeStockQuoteSource(std::string name,
                                     std::vector<std::string> symbols,
                                     double rate, uint64_t seed);

/// Synthetic news feed. Schema: company:string, category:string,
/// listed:int64 (1 if the company is publicly traded), sentiment:double.
StreamSourcePtr MakeNewsSource(std::string name,
                               std::vector<std::string> companies,
                               double listed_fraction, double rate,
                               uint64_t seed);

/// Synthetic environmental sensor feed. Schema: sensor:int64,
/// reading:double (mean-reverting walk per sensor).
StreamSourcePtr MakeSensorSource(std::string name, int num_sensors,
                                 double rate, uint64_t seed);

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_STREAM_SOURCE_H_
