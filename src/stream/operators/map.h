// Copyright 2026 The streambid Authors
// Map operator: computes one new numeric field from an existing field
// and a constant (the streaming analogue of a scalar expression).

#ifndef STREAMBID_STREAM_OPERATORS_MAP_H_
#define STREAMBID_STREAM_OPERATORS_MAP_H_

#include <string>
#include <vector>

#include "stream/operator.h"

namespace streambid::stream {

/// Arithmetic applied by MapOperator.
enum class MapFn { kAdd, kSub, kMul, kDiv };

/// Stable token for signatures ("+", "-", "*", "/").
const char* MapFnToken(MapFn fn);

/// map(out = field FN constant): appends the result as a new double
/// field named `output_field`.
class MapOperator : public OperatorBase {
 public:
  MapOperator(const SchemaPtr& input_schema, std::string field, MapFn fn,
              double operand, std::string output_field,
              double cost_per_tuple = DefaultCosts::kMap);

  SchemaPtr output_schema() const override { return output_schema_; }

  void Process(int port, const Tuple& tuple,
               std::vector<Tuple>* out) override;

 private:
  SchemaPtr output_schema_;
  int field_index_;
  MapFn fn_;
  double operand_;
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_OPERATORS_MAP_H_
