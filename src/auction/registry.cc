// Copyright 2026 The streambid Authors

#include "auction/registry.h"

#include "auction/mechanisms/car.h"
#include "auction/mechanisms/density.h"
#include "auction/mechanisms/opt_c.h"
#include "auction/mechanisms/random_admission.h"
#include "auction/mechanisms/two_price.h"

namespace streambid::auction {

std::vector<std::string> AllMechanismNames() {
  return {"car",       "caf",   "caf+",          "cat",    "cat+",
          "gv",        "two-price", "two-price-poly", "random", "opt-c"};
}

Result<MechanismPtr> MakeMechanism(std::string_view name) {
  if (name == "car") return MakeCar();
  if (name == "caf") return MakeCaf();
  if (name == "caf+") return MakeCafPlus();
  if (name == "cat") return MakeCat();
  if (name == "cat+") return MakeCatPlus();
  if (name == "gv") return MakeGv();
  if (name == "two-price") return MakeTwoPrice();
  if (name == "two-price-poly") return MakeTwoPricePoly();
  if (name == "random") return MakeRandomAdmission();
  if (name == "opt-c") return MakeOptC();
  return Status::NotFound("unknown mechanism: " + std::string(name));
}

std::vector<MechanismPtr> MakeAllMechanisms() {
  std::vector<MechanismPtr> out;
  for (const std::string& name : AllMechanismNames()) {
    out.push_back(std::move(MakeMechanism(name).value()));
  }
  return out;
}

std::vector<MechanismPtr> MakeFigure4Mechanisms() {
  std::vector<MechanismPtr> out;
  out.push_back(MakeCaf());
  out.push_back(MakeCafPlus());
  out.push_back(MakeCat());
  out.push_back(MakeCatPlus());
  out.push_back(MakeTwoPrice());
  return out;
}

}  // namespace streambid::auction
