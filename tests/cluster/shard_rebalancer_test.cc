// Copyright 2026 The streambid Authors
// ShardRebalancer planning: hot/cold selection, the hysteresis gates
// (oversubscription, rejected work, pressure gap, cooldown), the
// per-period move bound, the no-inversion rule, and determinism of the
// plan under input reordering.

#include "cluster/shard_rebalancer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace streambid::cluster {
namespace {

RebalancerOptions EnabledOptions() {
  RebalancerOptions options;
  options.enabled = true;
  options.max_moves_per_period = 2;
  options.min_history_periods = 2;
  options.tenant_cooldown_periods = 3;
  options.min_pressure_gap = 0.25;
  return options;
}

/// Two shards at capacity 2 each; the hot shard rejected work last
/// period. The canonical planning scenario every test perturbs.
struct Scenario {
  std::vector<ShardStatus> statuses;
  std::vector<cloud::PeriodReport> last_reports;
  std::vector<TenantSignal> tenants;
  int completed_periods = 4;
};

TenantSignal Tenant(auction::UserId user, int home, double load,
                    int last_active) {
  TenantSignal t;
  t.user = user;
  t.home = home;
  t.load = load;
  t.last_active_period = last_active;
  return t;
}

Scenario HotColdScenario() {
  Scenario s;
  s.statuses.resize(2);
  s.statuses[0].next_capacity = 2.0;
  s.statuses[1].next_capacity = 2.0;
  s.last_reports.resize(2);
  s.last_reports[0].submissions = 5;
  s.last_reports[0].admitted = 2;  // Shard 0 rejected work.
  s.last_reports[1].submissions = 1;
  s.last_reports[1].admitted = 1;
  // Shard 0: 5 units of demand on 2 of capacity; shard 1: 0.5 on 2.
  s.tenants = {Tenant(1, 0, 1.5, 3), Tenant(2, 0, 1.2, 3),
               Tenant(3, 0, 1.0, 3), Tenant(4, 0, 0.8, 3),
               Tenant(5, 0, 0.5, 3), Tenant(6, 1, 0.5, 3)};
  return s;
}

TEST(ShardRebalancerTest, DisabledPlansNothing) {
  ShardRebalancer rebalancer(RebalancerOptions{}, 2);
  const Scenario s = HotColdScenario();
  const MigrationPlan plan = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.hot_shard, -1);
}

TEST(ShardRebalancerTest, WaitsForHistory) {
  ShardRebalancer rebalancer(EnabledOptions(), 2);
  const Scenario s = HotColdScenario();
  EXPECT_TRUE(rebalancer.Plan(1, s.statuses, s.last_reports, s.tenants)
                  .moves.empty());
  EXPECT_FALSE(rebalancer.Plan(2, s.statuses, s.last_reports, s.tenants)
                   .moves.empty());
}

TEST(ShardRebalancerTest, MovesHeaviestTenantsHotToCold) {
  ShardRebalancer rebalancer(EnabledOptions(), 2);
  const Scenario s = HotColdScenario();
  const MigrationPlan plan = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  EXPECT_EQ(plan.hot_shard, 0);
  EXPECT_EQ(plan.cold_shard, 1);
  EXPECT_DOUBLE_EQ(plan.hot_pressure, 2.5);
  EXPECT_DOUBLE_EQ(plan.cold_pressure, 0.25);
  // Bounded at max_moves_per_period, heaviest first. After the
  // 1.5-unit move (hot 3.5, cold 2.0) the 1.2/1.0/0.8 tenants would
  // each invert the imbalance and are skipped; the 0.5-unit one fits.
  ASSERT_EQ(plan.moves.size(), 2u);
  EXPECT_EQ(plan.moves[0].user, 1);
  EXPECT_DOUBLE_EQ(plan.moves[0].load, 1.5);
  EXPECT_EQ(plan.moves[1].user, 5);
  EXPECT_DOUBLE_EQ(plan.moves[1].load, 0.5);
  for (const TenantMove& move : plan.moves) {
    EXPECT_EQ(move.from, 0);
    EXPECT_EQ(move.to, 1);
  }
}

TEST(ShardRebalancerTest, PlanIsPureFunctionOfInputs) {
  ShardRebalancer rebalancer(EnabledOptions(), 2);
  Scenario s = HotColdScenario();
  const MigrationPlan first = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  // Reversing the (hash-map-order-dependent) tenant vector must not
  // change the plan: the planner sorts internally.
  std::reverse(s.tenants.begin(), s.tenants.end());
  const MigrationPlan second = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  ASSERT_EQ(first.moves.size(), second.moves.size());
  for (size_t k = 0; k < first.moves.size(); ++k) {
    EXPECT_EQ(first.moves[k].user, second.moves[k].user);
    EXPECT_EQ(first.moves[k].from, second.moves[k].from);
    EXPECT_EQ(first.moves[k].to, second.moves[k].to);
  }
}

TEST(ShardRebalancerTest, GapGateBlocksBalancedShards) {
  ShardRebalancer rebalancer(EnabledOptions(), 2);
  Scenario s = HotColdScenario();
  // Load the cold shard until the relative gap is inside the 25% band:
  // 2.5 vs 2.1 — imbalanced, but within hysteresis.
  s.tenants.push_back(Tenant(7, 1, 3.7, 3));
  const MigrationPlan plan = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  EXPECT_DOUBLE_EQ(plan.hot_pressure, 2.5);
  EXPECT_DOUBLE_EQ(plan.cold_pressure, 2.1);
  EXPECT_TRUE(plan.moves.empty());
}

TEST(ShardRebalancerTest, UnderCapacityHotShardDoesNotShed) {
  ShardRebalancer rebalancer(EnabledOptions(), 2);
  Scenario s = HotColdScenario();
  // Same imbalance shape, but the hot shard fits its demand (pressure
  // <= 1): no revenue on the floor, no move.
  for (TenantSignal& t : s.tenants) t.load *= 0.3;
  const MigrationPlan plan = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  EXPECT_LE(plan.hot_pressure, 1.0);
  EXPECT_TRUE(plan.moves.empty());
}

TEST(ShardRebalancerTest, RequiresRejectedWorkLastPeriod) {
  ShardRebalancer rebalancer(EnabledOptions(), 2);
  Scenario s = HotColdScenario();
  // The load estimates scream hot, but the auction admitted everything
  // last period: estimates alone must not trigger churn.
  s.last_reports[0].admitted = s.last_reports[0].submissions;
  const MigrationPlan plan = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  EXPECT_TRUE(plan.moves.empty());
}

TEST(ShardRebalancerTest, CooldownPinsRecentlyMovedTenants) {
  ShardRebalancer rebalancer(EnabledOptions(), 2);
  Scenario s = HotColdScenario();
  // Tenants 1 and 2 moved last period (cooldown 3): the plan must fall
  // through to the next heaviest movable tenants.
  s.tenants[0].last_moved_period = s.completed_periods - 1;
  s.tenants[1].last_moved_period = s.completed_periods - 1;
  const MigrationPlan plan = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  ASSERT_EQ(plan.moves.size(), 2u);
  EXPECT_EQ(plan.moves[0].user, 3);
  EXPECT_EQ(plan.moves[1].user, 4);
}

TEST(ShardRebalancerTest, MoveNeverInvertsTheImbalance) {
  RebalancerOptions options = EnabledOptions();
  options.max_moves_per_period = 10;
  ShardRebalancer rebalancer(options, 2);
  Scenario s = HotColdScenario();
  const MigrationPlan plan = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  ASSERT_FALSE(plan.moves.empty());
  double hot = 5.0, cold = 0.5;  // Scenario demand.
  for (const TenantMove& move : plan.moves) {
    hot -= move.load;
    cold += move.load;
    // After every committed move the destination stays strictly less
    // pressured than the source (equal capacities: compare demand).
    EXPECT_LT(cold, hot);
  }
  // A tenant whose load would flip the imbalance (e.g. the 1.5-unit
  // one once the gap is narrow) is skipped, not force-moved.
  EXPECT_LT(plan.moves.size(), 5u);
}

TEST(ShardRebalancerTest, InactiveTenantsNeitherLoadNorMove) {
  ShardRebalancer rebalancer(EnabledOptions(), 2);
  Scenario s = HotColdScenario();
  // Everybody on the hot shard went quiet longer ago than the signal
  // window: their stale loads must not drive migrations.
  for (TenantSignal& t : s.tenants) t.last_active_period = 0;
  const MigrationPlan plan = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_DOUBLE_EQ(plan.hot_pressure, 0.0);
}

TEST(ShardRebalancerTest, DrainedShardIsNeverTheDestination) {
  ShardRebalancer rebalancer(EnabledOptions(), 3);
  Scenario s = HotColdScenario();
  s.statuses.resize(3);
  s.statuses[2].next_capacity = 0.0;  // Idle but drained.
  s.last_reports.resize(3);
  const MigrationPlan plan = rebalancer.Plan(
      s.completed_periods, s.statuses, s.last_reports, s.tenants);
  ASSERT_FALSE(plan.moves.empty());
  for (const TenantMove& move : plan.moves) {
    EXPECT_EQ(move.to, 1);
  }
}

TEST(ShardRebalancerTest, SingleShardNeverPlans) {
  ShardRebalancer rebalancer(EnabledOptions(), 1);
  std::vector<ShardStatus> statuses(1);
  statuses[0].next_capacity = 1.0;
  const MigrationPlan plan =
      rebalancer.Plan(10, statuses, {}, {Tenant(1, 0, 5.0, 9)});
  EXPECT_TRUE(plan.moves.empty());
}

TEST(ShardRebalancerTest, SeedBreaksExactLoadTiesDeterministically) {
  RebalancerOptions options = EnabledOptions();
  options.max_moves_per_period = 1;
  Scenario s = HotColdScenario();
  // All hot tenants identical: the chosen one is a pure function of
  // the seed, stable across calls.
  for (TenantSignal& t : s.tenants) {
    if (t.home == 0) t.load = 1.2;
  }
  ShardRebalancer a(options, 2);
  const auction::UserId first =
      a.Plan(s.completed_periods, s.statuses, s.last_reports, s.tenants)
          .moves[0]
          .user;
  EXPECT_EQ(a.Plan(s.completed_periods, s.statuses, s.last_reports,
                   s.tenants)
                .moves[0]
                .user,
            first);
  options.seed = 99;
  ShardRebalancer b(options, 2);
  const MigrationPlan other = b.Plan(s.completed_periods, s.statuses,
                                     s.last_reports, s.tenants);
  ASSERT_EQ(other.moves.size(), 1u);  // Still bounded and valid.
}

}  // namespace
}  // namespace streambid::cluster
