// Copyright 2026 The streambid Authors
// The DSMS center: per-period auction -> transition -> execution ->
// billing.

#include "cloud/dsms_center.h"

#include <gtest/gtest.h>

#include "stream/query_builder.h"

namespace streambid::cloud {
namespace {

using stream::CompareOp;
using stream::QueryBuilder;
using stream::QueryPlan;
using stream::QuerySubmission;
using stream::Value;

class DsmsCenterTest : public ::testing::Test {
 protected:
  DsmsCenterTest() : engine_(stream::EngineOptions{2.0, 1.0, 8}) {
    // Tiny capacity (2 units) so the auction actually rejects: each
    // select at 100 tuples/s costs ~1 unit.
    EXPECT_TRUE(engine_
                    .RegisterSource(stream::MakeStockQuoteSource(
                        "quotes", {"IBM", "AAPL", "MSFT"}, 100.0, 11))
                    .ok());
  }

  QuerySubmission MakeSubmission(int id, auction::UserId user, double bid,
                                 double threshold) {
    QueryBuilder b;
    const int src = b.Source("quotes");
    const int sel =
        b.Select(src, "price", CompareOp::kGt, Value(threshold));
    QuerySubmission sub;
    sub.query_id = id;
    sub.user = user;
    sub.bid = bid;
    sub.plan = b.Build(sel);
    return sub;
  }

  stream::Engine engine_;
};

TEST_F(DsmsCenterTest, AdmitsByDensityAndBills) {
  DsmsCenterOptions options;
  options.mechanism = "cat";
  options.period_length = 10.0;
  DsmsCenter center(options, &engine_);

  // Three distinct queries, each ~1 unit load, capacity 2: the two
  // highest-density queries win, the third prices them.
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 100, 50.0, 110.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(2, 200, 40.0, 120.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(3, 300, 10.0, 130.0)).ok());

  auto report = center.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->submissions, 3);
  EXPECT_EQ(report->admitted, 2);
  EXPECT_GT(report->revenue, 0.0);
  EXPECT_EQ(center.total_revenue(), report->revenue);
  // Winners installed and executed.
  for (int qid : report->admitted_ids) {
    EXPECT_TRUE(engine_.IsInstalled(qid));
    EXPECT_NE(engine_.sink(qid), nullptr);
  }
  // The losing query is not installed.
  EXPECT_EQ(report->payments.count(3), 0u);
  EXPECT_FALSE(engine_.IsInstalled(3));
  // Billing attributed to the right users.
  EXPECT_GT(center.ledger().TotalCharged(100), 0.0);
  EXPECT_DOUBLE_EQ(center.ledger().TotalCharged(300), 0.0);
}

TEST_F(DsmsCenterTest, QueriesExpireUnlessResubmitted) {
  DsmsCenterOptions options;
  options.period_length = 5.0;
  DsmsCenter center(options, &engine_);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  auto r1 = center.RunPeriod();
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1->admitted, 1);
  EXPECT_TRUE(engine_.IsInstalled(1));

  // No resubmission: the next period evicts it.
  auto r2 = center.RunPeriod();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->admitted, 0);
  EXPECT_FALSE(engine_.IsInstalled(1));
  EXPECT_TRUE(center.active_queries().empty());
}

TEST_F(DsmsCenterTest, ResubmissionRenews) {
  DsmsCenterOptions options;
  options.period_length = 5.0;
  DsmsCenter center(options, &engine_);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  ASSERT_TRUE(center.RunPeriod().ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  auto r2 = center.RunPeriod();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->admitted, 1);
  EXPECT_TRUE(engine_.IsInstalled(1));
  // Charged every period it wins.
  EXPECT_EQ(center.history().size(), 2u);
}

TEST_F(DsmsCenterTest, SubmitValidation) {
  DsmsCenterOptions options;
  DsmsCenter center(options, &engine_);
  QuerySubmission bad = MakeSubmission(1, 1, -5.0, 110.0);
  EXPECT_EQ(center.Submit(bad).code(), StatusCode::kInvalidArgument);

  QueryBuilder b;
  const int src = b.Source("no_such_stream");
  QuerySubmission unknown;
  unknown.query_id = 2;
  unknown.bid = 5.0;
  unknown.plan = b.Build(src);
  EXPECT_EQ(center.Submit(unknown).code(), StatusCode::kNotFound);

  ASSERT_TRUE(center.Submit(MakeSubmission(3, 1, 5.0, 1.0)).ok());
  EXPECT_EQ(center.Submit(MakeSubmission(3, 1, 5.0, 1.0)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DsmsCenterTest, EmptyPeriodRunsCleanly) {
  DsmsCenterOptions options;
  options.period_length = 3.0;
  DsmsCenter center(options, &engine_);
  auto report = center.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->submissions, 0);
  EXPECT_EQ(report->admitted, 0);
  EXPECT_DOUBLE_EQ(report->revenue, 0.0);
  EXPECT_DOUBLE_EQ(engine_.now(), 3.0);
}

TEST_F(DsmsCenterTest, MeasuredUtilizationReported) {
  DsmsCenterOptions options;
  options.period_length = 10.0;
  DsmsCenter center(options, &engine_);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  auto report = center.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->measured_utilization, 0.0);
  EXPECT_LE(report->measured_utilization, 1.0);
}

TEST_F(DsmsCenterTest, SharedSubmissionsAdmitMoreThanDisjoint) {
  // Two identical plans share their operator: both fit in capacity 2
  // alongside a third distinct query.
  DsmsCenterOptions options;
  options.period_length = 5.0;
  DsmsCenter center(options, &engine_);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(2, 2, 40.0, 110.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(3, 3, 30.0, 120.0)).ok());
  auto report = center.RunPeriod();
  ASSERT_TRUE(report.ok());
  // Queries 1 and 2 share one ~1-unit operator; query 3 needs its own.
  EXPECT_EQ(report->admitted, 3);
}

// --- Tenant extract/adopt: the migration surface the cluster
// rebalancer moves a subscription's state through. ---

TEST_F(DsmsCenterTest, ExtractTenantMovesPendingAndCharges) {
  DsmsCenterOptions options;
  options.mechanism = "cat";
  options.period_length = 5.0;
  DsmsCenter center(options, &engine_);

  // Bill user 7 in period 0 so there are charges to carry.
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 7, 50.0, 110.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(2, 7, 45.0, 115.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(3, 9, 40.0, 120.0)).ok());
  ASSERT_TRUE(center.RunPeriod().ok());
  const double charged = center.ledger().TotalCharged(7);
  ASSERT_GT(charged, 0.0);
  const double total_before = center.total_revenue();

  // Queue the next period with a mix of tenants, then extract user 7.
  ASSERT_TRUE(center.Submit(MakeSubmission(11, 7, 30.0, 110.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(12, 9, 25.0, 120.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(13, 7, 20.0, 125.0)).ok());
  TenantState state = center.ExtractTenant(7);
  EXPECT_EQ(state.user, 7);
  ASSERT_EQ(state.pending.size(), 2u);
  EXPECT_EQ(state.pending[0].query_id, 11);  // Submission order kept.
  EXPECT_EQ(state.pending[1].query_id, 13);
  EXPECT_DOUBLE_EQ(state.charged, charged);
  // The source center no longer holds any of it.
  EXPECT_EQ(center.pending_submissions(), 1);
  EXPECT_DOUBLE_EQ(center.ledger().TotalCharged(7), 0.0);
  EXPECT_DOUBLE_EQ(center.total_revenue(), total_before - charged);

  // Unknown tenants extract as empty state, harmlessly.
  const TenantState nobody = center.ExtractTenant(12345);
  EXPECT_TRUE(nobody.pending.empty());
  EXPECT_DOUBLE_EQ(nobody.charged, 0.0);
}

TEST_F(DsmsCenterTest, AdoptTenantQueuesAndCredits) {
  DsmsCenterOptions options;
  options.mechanism = "cat";
  options.period_length = 5.0;
  DsmsCenter source(options, &engine_);
  stream::Engine other_engine(stream::EngineOptions{2.0, 1.0, 8});
  ASSERT_TRUE(other_engine
                  .RegisterSource(stream::MakeStockQuoteSource(
                      "quotes", {"IBM", "AAPL", "MSFT"}, 100.0, 11))
                  .ok());
  DsmsCenter destination(options, &other_engine);

  // Three ~1-unit queries on 2 units of capacity: user 7's bids win
  // and the losing bid prices them, so the charge is positive.
  ASSERT_TRUE(source.Submit(MakeSubmission(1, 7, 50.0, 110.0)).ok());
  ASSERT_TRUE(source.Submit(MakeSubmission(3, 7, 45.0, 120.0)).ok());
  ASSERT_TRUE(source.Submit(MakeSubmission(4, 9, 10.0, 130.0)).ok());
  ASSERT_TRUE(source.RunPeriod().ok());
  ASSERT_TRUE(source.Submit(MakeSubmission(2, 7, 45.0, 112.0)).ok());
  const double charged = source.ledger().TotalCharged(7);
  ASSERT_GT(charged, 0.0);

  TenantState state = source.ExtractTenant(7);
  ASSERT_TRUE(destination.AdoptTenant(state).ok());
  EXPECT_TRUE(state.pending.empty());  // Consumed on success.
  EXPECT_DOUBLE_EQ(state.charged, 0.0);
  EXPECT_EQ(destination.pending_submissions(), 1);
  EXPECT_DOUBLE_EQ(destination.ledger().TotalCharged(7), charged);

  // The state is spent: adopting it again is a harmless no-op, never a
  // double credit.
  ASSERT_TRUE(destination.AdoptTenant(state).ok());
  EXPECT_EQ(destination.pending_submissions(), 1);
  EXPECT_DOUBLE_EQ(destination.ledger().TotalCharged(7), charged);

  // The adopted submission competes in the destination's next auction.
  const auto report = destination.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->submissions, 1);
  EXPECT_EQ(report->admitted, 1);
}

TEST_F(DsmsCenterTest, AdoptTenantIsAllOrNothing) {
  DsmsCenterOptions options;
  options.mechanism = "cat";
  options.period_length = 5.0;
  DsmsCenter center(options, &engine_);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 9, 50.0, 110.0)).ok());

  // Second pending submission collides with an id already queued here:
  // nothing may be adopted, and the caller keeps the state.
  TenantState state;
  state.user = 7;
  state.charged = 3.5;
  state.pending.push_back(MakeSubmission(5, 7, 40.0, 112.0));
  state.pending.push_back(MakeSubmission(1, 7, 30.0, 114.0));
  EXPECT_EQ(center.AdoptTenant(state).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(state.pending.size(), 2u);
  EXPECT_EQ(center.pending_submissions(), 1);
  EXPECT_DOUBLE_EQ(center.ledger().TotalCharged(7), 0.0);

  // A plan the destination engine rejects blocks adoption the same way.
  QueryBuilder bad;
  const int src = bad.Source("no_such_stream");
  QuerySubmission unknown;
  unknown.query_id = 6;
  unknown.user = 7;
  unknown.bid = 5.0;
  unknown.plan = bad.Build(src);
  state.pending[1] = std::move(unknown);
  EXPECT_EQ(center.AdoptTenant(state).code(), StatusCode::kNotFound);
  EXPECT_EQ(center.pending_submissions(), 1);

  // Duplicate ids inside the adopted batch itself are also rejected.
  TenantState twins;
  twins.user = 8;
  twins.pending.push_back(MakeSubmission(9, 8, 20.0, 111.0));
  twins.pending.push_back(MakeSubmission(9, 8, 25.0, 113.0));
  EXPECT_EQ(center.AdoptTenant(twins).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(center.pending_submissions(), 1);
}

}  // namespace
}  // namespace streambid::cloud
