// Copyright 2026 The streambid Authors
// Figure 4(b): total user payoff (sum over winners of valuation minus
// payment) vs maximum degree of sharing, capacity 15,000.
// Expected shape (paper §VI-B): density mechanisms beat Two-price;
// CAF+ is highest (most admissions, fair-share prices); CAF overtakes
// CAT+ as sharing grows (fair-share loads, hence payments, shrink).

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace streambid::bench;
  streambid::service::AdmissionService service;
  const BenchConfig config = LoadConfig();
  PrintBanner(
      "Figure 4(b): total user payoff vs max degree of sharing "
      "(capacity 15000)",
      config);

  const std::vector<std::string> mechanisms = {"caf", "caf+", "cat",
                                               "cat+", "two-price"};
  const double capacity = 15000.0;
  const SweepResult result =
      RunSweep(service, config, mechanisms, {capacity}, PayoffMetric());
  PrintSeries(config, result, capacity, mechanisms);

  const auto& series = result.at(capacity);
  const size_t last = config.Degrees().size() - 1;
  bool caf_plus_tops = true;
  for (size_t d = 0; d <= last; ++d) {
    for (const char* m : {"caf", "cat", "cat+", "two-price"}) {
      if (series.at("caf+")[d] + 1e-9 < series.at(m)[d]) {
        caf_plus_tops = false;
      }
    }
  }
  std::printf("# shape: caf+ has the highest payoff everywhere: %s\n",
              caf_plus_tops ? "yes" : "NO");
  std::printf("# shape: caf overtakes cat+ at degree %s (paper: as "
              "sharing increases)\n",
              CrossoverDegree(config, result, capacity, "caf", "cat+")
                  .c_str());
  WriteBenchJson("fig4b_payoff",
                 {{"payoff_caf_plus_last", series.at("caf+")[last]},
                  {"payoff_caf_last", series.at("caf")[last]},
                  {"payoff_two_price_last", series.at("two-price")[last]},
                  {"caf_plus_tops_everywhere", caf_plus_tops ? 1.0 : 0.0}});
  return 0;
}
