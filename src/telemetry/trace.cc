// Copyright 2026 The streambid Authors

#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>

namespace streambid::telemetry {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kGateDrain:
      return "gate_drain";
    case Phase::kPrepare:
      return "prepare";
    case Phase::kAutoscale:
      return "autoscale";
    case Phase::kAdmit:
      return "admit";
    case Phase::kComplete:
      return "complete";
    case Phase::kRebalance:
      return "rebalance";
  }
  return "unknown";
}

void PeriodTracer::Record(Phase phase, int period, int shard,
                          uint64_t epoch, double start_ms,
                          double duration_ms) {
  if (!enabled_) return;
  TraceSpan span;
  span.phase = phase;
  span.period = period;
  span.shard = shard;
  span.epoch = epoch;
  span.start_ms = start_ms;
  span.duration_ms = duration_ms;
  MutexLock lock(mutex_);
  span.seq = next_seq_++;
  spans_.push_back(span);
}

int64_t PeriodTracer::span_count() const {
  MutexLock lock(mutex_);
  return static_cast<int64_t>(spans_.size());
}

void PeriodTracer::Clear() {
  MutexLock lock(mutex_);
  spans_.clear();
  next_seq_ = 0;
}

std::vector<TraceSpan> PeriodTracer::SortedSpans() const {
  std::vector<TraceSpan> spans;
  {
    MutexLock lock(mutex_);
    spans = spans_;
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.period != b.period) return a.period < b.period;
              if (a.shard != b.shard) return a.shard < b.shard;
              if (a.phase != b.phase) {
                return static_cast<int>(a.phase) < static_cast<int>(b.phase);
              }
              // Identity keys are unique per instrumentation site; seq
              // breaks hypothetical ties stably for the annotated views
              // (it never appears in IdentitySequence).
              return a.seq < b.seq;
            });
  return spans;
}

std::string PeriodTracer::IdentitySequence() const {
  std::string out;
  for (const TraceSpan& span : SortedSpans()) {
    out += "period=" + std::to_string(span.period) +
           " shard=" + std::to_string(span.shard) +
           " epoch=" + std::to_string(span.epoch) +
           " phase=" + PhaseName(span.phase) + "\n";
  }
  return out;
}

std::string PeriodTracer::ChromeTraceJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buffer[256];
  for (const TraceSpan& span : SortedSpans()) {
    if (!first) out += ",";
    first = false;
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"name\":\"%s\",\"cat\":\"period\",\"ph\":\"X\","
        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,"
        "\"args\":{\"period\":%d,\"shard\":%d,\"epoch\":%llu}}",
        PhaseName(span.phase), span.start_ms * 1000.0,
        span.duration_ms * 1000.0, span.shard + 1, span.period, span.shard,
        static_cast<unsigned long long>(span.epoch));
    out += buffer;
  }
  out += "]}";
  return out;
}

Status PeriodTracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path);
  }
  const std::string json = ChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int closed = std::fclose(f);
  if (written != json.size() || closed != 0) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace streambid::telemetry
