// Copyright 2026 The streambid Authors
// Table IV: mean runtime of each mechanism on 2000-query workloads at
// capacity 15,000 (google-benchmark). The paper's Java numbers (ms):
//   Random 0.92, GV 2.0, Two-price 3.7, CAF 7.1, CAT 7.3,
//   CAT+ 10091, CAF+ 12555.
// Absolute times differ (C++ vs Java, different hardware); the SHAPE to
// reproduce is the ordering and the ~3 orders of magnitude separating
// the skip-variants (whose movement-window payments re-simulate the
// priority list per winner) from everything else.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using streambid::auction::AuctionInstance;
using streambid::bench::BenchConfig;
using streambid::bench::LoadConfig;

/// One shared workload instance per process, built lazily. Max sharing
/// degree 5 keeps capacity 15,000 binding (admission ~90%), which is
/// the regime Table IV measures: with spare capacity for everyone the
/// skip-variants short-circuit their movement-window payments (every
/// payment is provably zero) and the paper's 1000x runtime separation
/// would disappear.
const AuctionInstance& SharedInstance() {
  static const AuctionInstance* instance = [] {
    BenchConfig config = LoadConfig();
    auto* ws = new streambid::workload::WorkloadSet(config.params,
                                                    /*seed=*/0xABCDu);
    return &ws->InstanceAt(5);
  }();
  return *instance;
}

void RunMechanism(benchmark::State& state, const std::string& name) {
  streambid::service::AdmissionService service;
  if (!service.HasMechanism(name)) {
    state.SkipWithError("unknown mechanism");
    return;
  }
  streambid::service::AdmissionRequest request;
  request.instance = &SharedInstance();
  request.capacity = 15000.0;
  request.mechanism = name;
  // Metrics and O(n) diagnostics off: Table IV times the mechanism,
  // not the §VI bookkeeping (the residual service overhead is a name
  // lookup, a reseed, and the count diagnostics — O(1) + O(n) bits).
  request.options.compute_metrics = false;
  request.options.compute_diagnostics = false;
  uint64_t seed = 0;
  for (auto _ : state) {
    request.seed = ++seed;
    benchmark::DoNotOptimize(service.Admit(request));
  }
}

// Table IV column order.
void BM_Random(benchmark::State& s) { RunMechanism(s, "random"); }
void BM_GV(benchmark::State& s) { RunMechanism(s, "gv"); }
void BM_TwoPrice(benchmark::State& s) { RunMechanism(s, "two-price"); }
void BM_CAF(benchmark::State& s) { RunMechanism(s, "caf"); }
void BM_CAFPlus(benchmark::State& s) { RunMechanism(s, "caf+"); }
void BM_CAT(benchmark::State& s) { RunMechanism(s, "cat"); }
void BM_CATPlus(benchmark::State& s) { RunMechanism(s, "cat+"); }
void BM_CAR(benchmark::State& s) { RunMechanism(s, "car"); }
void BM_OptC(benchmark::State& s) { RunMechanism(s, "opt-c"); }

BENCHMARK(BM_Random)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GV)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoPrice)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CAF)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CAFPlus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CAT)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CATPlus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CAR)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OptC)->Unit(benchmark::kMillisecond);

/// Console reporter that also captures each benchmark's adjusted real
/// time (in its display unit — ms here) so main can drop the uniform
/// BENCH_table4_runtime.json artifact after the run.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      rows.emplace_back(run.benchmark_name() + "_ms",
                        run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }
  std::vector<std::pair<std::string, double>> rows;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  streambid::bench::WriteBenchJson("table4_runtime", reporter.rows);
  benchmark::Shutdown();
  return 0;
}
