// Copyright 2026 The streambid Authors
// Fixture: an include whose symbols never appear is dead dependency
// weight for every consumer.

#ifndef STREAMBID_TOOLS_LINT_FIXTURES_INCLUDES_UNUSED_H_
#define STREAMBID_TOOLS_LINT_FIXTURES_INCLUDES_UNUSED_H_

#include <string>
#include <vector>  // WANT(unused-include)

inline std::string Greeting() { return "hello"; }

#endif  // STREAMBID_TOOLS_LINT_FIXTURES_INCLUDES_UNUSED_H_
