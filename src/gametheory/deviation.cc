// Copyright 2026 The streambid Authors

#include "gametheory/deviation.h"

#include <algorithm>

#include "common/rng.h"
#include "gametheory/payoff.h"

namespace streambid::gametheory {
namespace {

/// Candidate deviant bids for `query`.
std::vector<double> CandidateBids(const auction::AuctionInstance& instance,
                                  auction::QueryId query,
                                  const DeviationOptions& options) {
  const double v = instance.bid(query);
  std::vector<double> bids;
  for (double f : options.bid_factors) bids.push_back(v * f);
  if (options.probe_other_bids) {
    for (auction::QueryId j = 0; j < instance.num_queries(); ++j) {
      if (j == query) continue;
      const double b = instance.bid(j);
      bids.push_back(b);
      bids.push_back(b * 0.999);
      bids.push_back(b * 1.001);
    }
  }
  std::sort(bids.begin(), bids.end());
  bids.erase(std::unique(bids.begin(), bids.end()), bids.end());
  // Negative bids are not legal inputs.
  bids.erase(std::remove_if(bids.begin(), bids.end(),
                            [](double b) { return b < 0.0; }),
             bids.end());
  return bids;
}

}  // namespace

DeviationReport FindBestDeviation(service::AdmissionService& service,
                                  std::string_view mechanism,
                                  const auction::AuctionInstance& instance,
                                  double capacity, auction::QueryId query,
                                  const DeviationOptions& options) {
  DeviationReport report;
  report.query = query;
  report.true_value = instance.bid(query);

  const std::vector<double> values = TruthfulValues(instance);
  const auction::UserId user = instance.user(query);

  // Common random numbers: every evaluation replays the same
  // (crn_seed, trial) service streams, so randomized mechanisms see
  // identical coin flips across candidate bids.
  auto evaluate = [&](const auction::AuctionInstance& inst) {
    return ExpectedUserPayoff(service, mechanism, inst, capacity, values,
                              user, options.crn_seed, options.trials);
  };

  report.truthful_payoff = evaluate(instance);
  report.best_deviant_payoff = report.truthful_payoff;
  report.best_deviant_bid = report.true_value;

  for (double bid : CandidateBids(instance, query, options)) {
    if (bid == report.true_value) continue;
    const auction::AuctionInstance deviant = instance.WithBid(query, bid);
    // True values are unchanged by the lie.
    const double payoff = evaluate(deviant);
    if (payoff > report.best_deviant_payoff) {
      report.best_deviant_payoff = payoff;
      report.best_deviant_bid = bid;
    }
  }
  report.profitable_deviation_found =
      report.Gain() > options.tolerance;
  return report;
}

DeviationReport SweepDeviations(service::AdmissionService& service,
                                std::string_view mechanism,
                                const auction::AuctionInstance& instance,
                                double capacity,
                                const DeviationOptions& options,
                                uint64_t seed, int max_queries) {
  std::vector<auction::QueryId> targets;
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    targets.push_back(i);
  }
  if (max_queries > 0 &&
      max_queries < static_cast<int>(targets.size())) {
    Rng sampler(seed ^ 0xDE71A7E5ull);
    sampler.Shuffle(targets);
    targets.resize(static_cast<size_t>(max_queries));
  }

  DeviationReport worst;
  bool first = true;
  for (auction::QueryId q : targets) {
    DeviationReport r = FindBestDeviation(service, mechanism, instance,
                                          capacity, q, options);
    if (first || r.Gain() > worst.Gain()) {
      worst = r;
      first = false;
    }
  }
  return worst;
}

}  // namespace streambid::gametheory
