// Copyright 2026 The streambid Authors
// Clang thread-safety (capability) annotations plus the annotated
// synchronization primitives the whole tree locks with. The repo's
// concurrency invariants — which mutex guards which member, which
// private helpers require which lock — used to live in comments
// ("Guarded by wake_mutex_"); with these macros they are attributes
// the compiler checks: build with
//
//   cmake -B build-ts -S . -DSTREAMBID_THREAD_SAFETY=ON
//         -DCMAKE_CXX_COMPILER=clang++
//
// and every unguarded access to a GUARDED_BY member, every *Locked
// helper called without its REQUIRES lock, and every lock-scope
// mismatch is a hard error (-Werror=thread-safety). Under GCC (which
// has no capability analysis) every macro expands to nothing and the
// wrappers below are zero-overhead forwarding shims over std::mutex /
// std::condition_variable, so sanitizer and release builds are
// unchanged.
//
// The macro set mirrors the documented Clang capability attributes
// (the Abseil/MongoDB discipline: locks as capabilities, guarded
// members as attributes, violations as build errors):
//   CAPABILITY(name)        a class is a lockable capability
//   SCOPED_CAPABILITY       RAII type that acquires at construction
//   GUARDED_BY(mu)          member access requires holding mu
//   PT_GUARDED_BY(mu)       pointee access requires holding mu
//   REQUIRES(mu...)         caller must hold mu (the *Locked contract)
//   ACQUIRE / RELEASE       function acquires / releases mu
//   TRY_ACQUIRE(ok, mu)     conditional acquire (returns `ok` on success)
//   EXCLUDES(mu...)         caller must NOT hold mu (deadlock guard)
//   ASSERT_CAPABILITY(mu)   runtime assertion that mu is held
//   NO_THREAD_SAFETY_ANALYSIS  opt a function out (needs a reason)

#ifndef STREAMBID_COMMON_THREAD_ANNOTATIONS_H_
#define STREAMBID_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_order.h"

#if defined(__clang__) && defined(__has_attribute)
#define STREAMBID_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define STREAMBID_THREAD_ANNOTATION_(x)  // No-op outside clang.
#endif

#define CAPABILITY(x) STREAMBID_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY STREAMBID_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) STREAMBID_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) STREAMBID_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  STREAMBID_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  STREAMBID_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  STREAMBID_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  STREAMBID_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  STREAMBID_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  STREAMBID_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  STREAMBID_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  STREAMBID_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  STREAMBID_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) STREAMBID_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) \
  STREAMBID_THREAD_ANNOTATION_(assert_capability(x))
#define RETURN_CAPABILITY(x) STREAMBID_THREAD_ANNOTATION_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  STREAMBID_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace streambid {

/// Phantom capability anchoring the cross-class half of the declared
/// lock hierarchy (common/lock_order.h). The boundaries below are never
/// locked; they exist so every Mutex member — whose ACQUIRED_BEFORE /
/// ACQUIRED_AFTER arguments must name capabilities visible at its
/// declaration — can chain to the layer order (gate → cluster →
/// executor → telemetry → leaf) even when its real neighbors live in
/// other classes. Clang parses the chain today and checks it wherever
/// -Wthread-safety-beta is enabled; the lock-order lint and the runtime
/// sentinel enforce the same order unconditionally.
class CAPABILITY("mutex") RankBoundary {
 public:
  constexpr RankBoundary() = default;
  RankBoundary(const RankBoundary&) = delete;
  RankBoundary& operator=(const RankBoundary&) = delete;
};

inline constexpr RankBoundary kGateRankBoundary;
inline constexpr RankBoundary kClusterRankBoundary
    ACQUIRED_AFTER(kGateRankBoundary);
inline constexpr RankBoundary kExecutorRankBoundary
    ACQUIRED_AFTER(kClusterRankBoundary);
inline constexpr RankBoundary kTelemetryRankBoundary
    ACQUIRED_AFTER(kExecutorRankBoundary);
inline constexpr RankBoundary kLeafRankBoundary
    ACQUIRED_AFTER(kTelemetryRankBoundary);

/// The repo's mutex: std::mutex carrying the capability attribute so
/// the analysis can name it in GUARDED_BY/REQUIRES expressions, plus a
/// compile-time rank and name binding it into the declared lock
/// hierarchy (common/lock_order.h). It satisfies the standard Lockable
/// concept (lock/unlock/try_lock), so std::unique_lock<Mutex> and
/// std::lock_guard<Mutex> call sites keep compiling — but prefer
/// MutexLock, which the analysis understands as a scoped acquire
/// (std::unique_lock is opaque to it on libstdc++).
///
/// Under -DSTREAMBID_LOCK_ORDER=ON, lock/try_lock/unlock feed the
/// thread-local held-lock sentinel, which CHECK-fails on any
/// acquisition that does not strictly ascend the rank order. When the
/// option is off the hooks are empty inline bodies and the rank/name
/// are not even stored — the wrapper is the same zero-overhead
/// forwarding shim it was before the hierarchy existed.
class CAPABILITY("mutex") Mutex {
 public:
  /// Unranked construction defaults to LockRank::kLeaf (innermost:
  /// nothing may be acquired while holding it) — the safe default for
  /// tests and scratch code. Every Mutex under src/ must name its rank
  /// explicitly; the lock-order lint fails on one that does not.
  constexpr Mutex() : Mutex(LockRank::kLeaf, "unranked") {}
  constexpr Mutex(LockRank rank, const char* name)
#if STREAMBID_LOCK_ORDER
      : rank_(rank), name_(name)
#endif
  {
    (void)rank;
    (void)name;
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    // The sentinel checks BEFORE blocking: a real inversion may
    // deadlock inside mu_.lock() and never return to report itself.
    lock_order::OnAcquire(rank(), name());
    mu_.lock();
  }
  void unlock() RELEASE() {
    lock_order::OnRelease(rank(), name());
    mu_.unlock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A try-lock cannot deadlock, but a descending one still violates
    // the declared order — flagged after the fact.
    lock_order::OnTryAcquire(rank(), name());
    return true;
  }

  /// The wrapped std::mutex, for CondVar's adopt-lock wait bridge.
  /// Callers must not lock it directly — that would bypass the
  /// capability tracking this wrapper exists for.
  std::mutex& native_handle() { return mu_; }

#if STREAMBID_LOCK_ORDER
  constexpr LockRank rank() const { return rank_; }
  constexpr const char* name() const { return name_; }
#else
  constexpr LockRank rank() const { return LockRank::kLeaf; }
  constexpr const char* name() const { return "unranked"; }
#endif

 private:
  std::mutex mu_;
#if STREAMBID_LOCK_ORDER
  const LockRank rank_;
  const char* const name_;
#endif
};

/// RAII lock the analysis tracks: construction acquires the capability,
/// destruction releases it. The drop-in replacement for
/// std::lock_guard / std::unique_lock over a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Waits take the Mutex itself (not the
/// MutexLock) so they can carry REQUIRES(mu) — the analysis verifies
/// every wait happens with the lock held, which std::condition_variable
/// cannot express. Internally each wait adopts the already-held
/// std::mutex into a std::unique_lock for the standard wait call and
/// releases the adoption before returning, so ownership never actually
/// changes hands and the caller's MutexLock stays the one true owner.
///
/// A predicate passed to Wait runs with mu held (standard condition
/// semantics), but the analysis treats lambda bodies as separate
/// functions and cannot see that: predicates that read GUARDED_BY
/// members must be replaced by a manual `while (!cond) cv.Wait(mu);`
/// loop in the annotated caller (see TicketHolder::Acquire), or the
/// condition lifted into a REQUIRES helper called from such a loop.
/// Predicates over atomics need no such care.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken); mu is released while
  /// sleeping and re-held on return, exactly like std::condition_variable.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native_handle(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Standard predicate wait: loops Wait until pred() holds. The
  /// predicate must only read state safe to read under mu from the
  /// analysis's point of view — see the class comment.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Timed wait; returns std::cv_status::timeout when `deadline`
  /// passed without a notification. No predicate variant on purpose:
  /// deadline loops in this codebase re-check guarded state, which
  /// must live in the annotated caller.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace streambid

#endif  // STREAMBID_COMMON_THREAD_ANNOTATIONS_H_
