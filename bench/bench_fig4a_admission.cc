// Copyright 2026 The streambid Authors
// Figure 4(a): percentage of queries serviced under each mechanism as
// the maximum degree of sharing grows, system capacity 15,000.
// Expected shape (paper §VI-B): every mechanism admits more as sharing
// grows; Two-price always admits the smallest fraction because it
// ignores loads when selecting winners.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace streambid::bench;
  streambid::service::AdmissionService service;
  const BenchConfig config = LoadConfig();
  PrintBanner("Figure 4(a): admission rate vs max degree of sharing "
              "(capacity 15000)",
              config);

  const std::vector<std::string> mechanisms = {"caf", "caf+", "cat",
                                               "cat+", "two-price"};
  const double capacity = 15000.0;
  const SweepResult result =
      RunSweep(service, config, mechanisms, {capacity}, AdmissionRateMetric());
  PrintSeries(config, result, capacity, mechanisms);

  // Shape assertions the paper makes in prose. (Two-price admission is
  // governed by its internal sampled price, not by load, so it stays
  // roughly flat once the candidate set H saturates — the paper's claim
  // is that it is always the LOWEST, checked below.)
  const auto& series = result.at(capacity);
  const size_t last = config.Degrees().size() - 1;
  std::printf("# shape: density-mechanism admission rises with sharing "
              "— caf %s, cat %s\n",
              series.at("caf")[last] > series.at("caf")[0] ? "yes" : "NO",
              series.at("cat")[last] > series.at("cat")[0] ? "yes" : "NO");
  double min_gap = 1.0;
  for (size_t d = 0; d <= last; ++d) {
    for (const char* m : {"caf", "caf+", "cat", "cat+"}) {
      min_gap = std::min(min_gap,
                         series.at(m)[d] - series.at("two-price")[d]);
    }
  }
  std::printf("# shape: two-price admits least everywhere: %s "
              "(min gap %.3f)\n",
              min_gap >= -0.02 ? "yes" : "NO", min_gap);
  WriteBenchJson("fig4a_admission",
                 {{"admission_caf_first", series.at("caf")[0]},
                  {"admission_caf_last", series.at("caf")[last]},
                  {"admission_cat_last", series.at("cat")[last]},
                  {"admission_two_price_last",
                   series.at("two-price")[last]},
                  {"min_gap_density_vs_two_price", min_gap}});
  return 0;
}
