// Copyright 2026 The streambid Authors
// Declarative continuous-query plans. A plan is a small DAG of operator
// specs; the engine instantiates plans into runtime operators, *sharing*
// any node whose spec-and-inputs subtree is identical to one already
// installed (the operator sharing the paper's auction prices, §II).

#ifndef STREAMBID_STREAM_QUERY_H_
#define STREAMBID_STREAM_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stream/operators/aggregate.h"
#include "stream/operators/map.h"
#include "stream/operators/select.h"
#include "stream/tuple.h"

namespace streambid::stream {

/// Operator kinds available in plans.
enum class OpKind {
  kSource,
  kSelect,
  kProject,
  kMap,
  kAggregate,
  kJoin,
  kUnion,
  kTopK,
  kDistinct,
};

/// Stable name for `kind`.
const char* OpKindName(OpKind kind);

/// Parameters of one plan node (a tagged union; only the fields of the
/// active kind are meaningful).
struct OpSpec {
  OpKind kind = OpKind::kSelect;

  // kSource.
  std::string source_name;

  // kSelect / kMap / kAggregate field operand.
  std::string field;

  // kSelect.
  CompareOp compare_op = CompareOp::kGt;
  Value operand;

  // kProject.
  std::vector<std::string> fields;

  // kMap.
  MapFn map_fn = MapFn::kMul;
  double map_operand = 1.0;
  std::string output_field;

  // kAggregate.
  AggFn agg_fn = AggFn::kCount;
  std::string group_field;
  WindowSpec window;

  // kJoin.
  std::string left_key;
  std::string right_key;
  VirtualTime join_window = 60.0;

  // kTopK (rank field in `field`, window in `window.size`).
  int top_k = 10;

  // kDistinct uses `field` (key) and `window.size` (dedup horizon).

  /// Per-tuple cost override; 0 uses the kind's default cost.
  double cost_override = 0.0;

  /// Number of inputs this spec requires (2 for join/union, 0 for
  /// source, else 1).
  int expected_inputs() const {
    switch (kind) {
      case OpKind::kSource:
        return 0;
      case OpKind::kJoin:
      case OpKind::kUnion:
        return 2;
      default:
        return 1;
    }
  }

  /// Canonical parameter signature (excludes inputs), e.g.
  /// "select(price>100)". Two nodes with equal signatures and equal
  /// input subtrees are shared.
  std::string Signature() const;
};

/// A query plan: nodes with input edges (indices into `nodes`, which
/// must point to earlier entries, making the vector a topological
/// order), plus the index of the output (sink) node.
struct QueryPlan {
  struct Node {
    OpSpec spec;
    std::vector<int> inputs;
  };

  std::vector<Node> nodes;
  int output_node = -1;

  /// Structural validation: input arity and ordering, output in range,
  /// at least one source.
  Status Validate() const;

  /// Recursive subtree signature of `node` (the engine's sharing key).
  std::string NodeSignature(int node) const;
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_QUERY_H_
