// Copyright 2026 The streambid Authors
// The admission facade over the generic TaskExecutor: the cluster
// layer's parallel admission runtime, now expressed as closures on the
// shared worker pool instead of its own bespoke thread army. Because
// every AdmissionRequest carries its own deterministic
// (seed, request_index) RNG stream, a request's response is a pure
// function of the request: it does not matter which worker runs it, in
// what order, or how many workers exist. That is the contract that
// makes the three surfaces below safe:
//
//  - AdmitBatchParallel: blocking batch fanned across the pool via
//    TaskExecutor::RunAll, responses positionally aligned and
//    byte-identical to serial AdmissionService::AdmitBatch (timing
//    fields excepted);
//  - Enqueue / TryEnqueue / Poll / Wait: async submit of individual
//    auctions with typed-ticket completion draining; TryEnqueue is the
//    backpressure path against a bounded queue (kResourceExhausted
//    instead of unbounded growth);
//  - AdmitOn: run one auction on a worker's own service from inside a
//    generic task — the hook the ClusterCenter's pipelined period
//    chains use so their admissions still land in these rolling stats.
//
// Admission-specific diagnostics are folded into per-mechanism rolling
// stats (count, admit rate, utilization, elapsed, deadline overruns);
// StatsReport() combines them with the TaskExecutor's generic counters
// (per-worker task counts, queue-depth high-water mark).

#ifndef STREAMBID_CLUSTER_ADMISSION_EXECUTOR_H_
#define STREAMBID_CLUSTER_ADMISSION_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/task_executor.h"
#include "common/lock_order.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "service/admission_service.h"

namespace streambid::cluster {

/// Completion handle for an asynchronously enqueued auction.
using AdmissionTicket = Ticket<service::AdmissionResponse>;

/// Rolling per-mechanism statistics aggregated from the
/// AdmissionDiagnostics of every successful request the executor ran.
struct MechanismRollingStats {
  int64_t count = 0;              ///< Successful requests.
  int64_t deadline_overruns = 0;  ///< diagnostics.deadline_exceeded.
  RunningStats admit_rate;        ///< admitted / submitted per request.
  RunningStats utilization;       ///< diagnostics.capacity_utilization.
  RunningStats elapsed_ms;        ///< Mechanism wall clock per request.
};

/// Snapshot returned by StatsReport(). Ordered by mechanism name so
/// reports print deterministically.
struct ExecutorStats {
  int64_t total_requests = 0;   ///< Successful requests across mechanisms.
  int64_t failed_requests = 0;  ///< Requests whose execution errored.
  std::map<std::string, MechanismRollingStats> per_mechanism;
  /// Generic-pool observability (see TaskExecutorStats): every task the
  /// underlying pool executed, per worker id. Includes non-admission
  /// tasks (e.g. the ClusterCenter's period chains); its length equals
  /// num_threads() — the pool is the only place work can run.
  std::vector<int64_t> tasks_per_worker;
  /// Pool tasks an idle worker stole from another worker's deque,
  /// indexed by the thief's worker id (see TaskExecutorStats).
  std::vector<int64_t> steals_per_worker;
  /// Pool tasks executed from the owner's own deque (local hits).
  int64_t tasks_local = 0;
  /// Pool tasks executed via steal (tasks_local + tasks_stolen equals
  /// the pool-wide executed count).
  int64_t tasks_stolen = 0;
  /// Highest pool-wide queued-task depth observed.
  int64_t queue_high_water = 0;
};

/// Thread-pool admission runtime, a facade over TaskExecutor.
/// Thread-safe: any thread may submit batches, enqueue requests, and
/// poll tickets concurrently. Instances referenced by in-flight
/// requests must outlive their completion (instances are immutable and
/// may back many concurrent requests).
class AdmissionExecutor {
 public:
  explicit AdmissionExecutor(const ExecutorOptions& options = {});

  AdmissionExecutor(const AdmissionExecutor&) = delete;
  AdmissionExecutor& operator=(const AdmissionExecutor&) = delete;

  int num_threads() const { return tasks_.num_threads(); }

  /// The generic task surface sharing this executor's pool — submit
  /// arbitrary closures (period pipelines, prepare fan-outs) alongside
  /// admissions. Lifecycle (Shutdown) also lives here.
  TaskExecutor& tasks() { return tasks_; }
  const TaskExecutor& tasks() const { return tasks_; }

  /// Runs `requests` across the worker pool and returns responses
  /// positionally aligned with the requests — byte-identical to serial
  /// AdmissionService::AdmitBatch on the same requests (timing fields
  /// excluded), for every pool size. Validation fails the whole batch up
  /// front with the same "request i: ..." errors as the serial path; an
  /// execution failure (feasibility check) returns the status of the
  /// lowest-index failing request.
  Result<std::vector<service::AdmissionResponse>> AdmitBatchParallel(
      const std::vector<service::AdmissionRequest>& requests);

  /// Validates and enqueues one auction; the returned ticket completes
  /// on some worker. Validation errors are returned here, execution
  /// errors via Poll/Wait. Blocks for space when the queue is bounded
  /// and full.
  Result<AdmissionTicket> Enqueue(const service::AdmissionRequest& request);

  /// Non-blocking Enqueue: kResourceExhausted when the bounded queue
  /// (ExecutorOptions::max_queue_depth) is full — the backpressure
  /// signal for async producers.
  Result<AdmissionTicket> TryEnqueue(
      const service::AdmissionRequest& request);

  /// Non-blocking completion check: empty while the ticket is still
  /// queued or running; otherwise the response (or execution error),
  /// which is removed — a second Poll of the same ticket is kNotFound.
  std::optional<Result<service::AdmissionResponse>> Poll(
      AdmissionTicket ticket) {
    return tasks_.Poll(ticket);
  }

  /// Blocks until the ticket completes and returns its result (removing
  /// it, as Poll does). kNotFound for never-issued or already-consumed
  /// tickets.
  Result<service::AdmissionResponse> Wait(AdmissionTicket ticket) {
    return tasks_.Wait(ticket);
  }

  /// Outstanding (submitted, not yet consumed) tickets on the shared
  /// pool — admission tickets plus any generic tasks.
  int pending_tickets() const { return tasks_.pending_tasks(); }

  /// Runs one auction on `context`'s worker-local service and folds the
  /// outcome into the rolling stats. For use from inside TaskExecutor
  /// tasks (the ClusterCenter period chains): admission stays on the
  /// worker's own service, so the one-service-per-thread rule holds
  /// without extra locking.
  Result<service::AdmissionResponse> AdmitOn(
      WorkerContext& context, const service::AdmissionRequest& request);

  /// Copies the rolling per-mechanism stats plus the generic pool
  /// counters accumulated so far.
  ExecutorStats StatsReport() const;

  /// Clears the rolling stats and pool counters (benches reset between
  /// phases).
  void ResetStats();

 private:
  void RecordStats(int worker_id,
                   const Result<service::AdmissionResponse>& result);

  /// Stats are sharded per worker so the hot path never contends on a
  /// global lock (each worker touches only its own accumulator; the
  /// per-shard mutex only synchronizes against StatsReport/ResetStats
  /// readers). StatsReport merges via RunningStats::Merge.
  struct WorkerStats {
    mutable Mutex mutex ACQUIRED_AFTER(kClusterRankBoundary)
        ACQUIRED_BEFORE(kExecutorRankBoundary) =
            Mutex{LockRank::kClusterWorkerStats, "cluster/worker_stats"};
    int64_t total_requests GUARDED_BY(mutex) = 0;
    int64_t failed_requests GUARDED_BY(mutex) = 0;
    std::map<std::string, MechanismRollingStats> per_mechanism
        GUARDED_BY(mutex);
  };
  /// Declared before tasks_ on purpose: members destroy in reverse
  /// declaration order, and ~TaskExecutor joins the workers — which may
  /// still be running AdmitOn closures that record into these shards.
  /// The pool must die first, the stats it writes to last.
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
  TaskExecutor tasks_;
};

}  // namespace streambid::cluster

#endif  // STREAMBID_CLUSTER_ADMISSION_EXECUTOR_H_
