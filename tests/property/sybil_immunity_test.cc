// Copyright 2026 The streambid Authors
// Empirical sybil immunity (paper §V): CAT never profits from the
// attack family; CAF/CAF+ are (universally) vulnerable — the §V-A
// attack must succeed on shared instances.

#include <gtest/gtest.h>

#include "auction/registry.h"
#include "gametheory/sybil.h"
#include "workload/generator.h"

namespace streambid {
namespace {

using auction::AuctionInstance;
using gametheory::SearchSybilAttacks;
using gametheory::SybilReport;

AuctionInstance RandomSharedInstance(uint64_t seed) {
  workload::WorkloadParams p;
  p.num_queries = 30;
  p.base_num_operators = 12;
  p.base_max_sharing = 8;
  Rng rng(seed);
  auto inst = workload::GenerateBaseWorkload(p, rng).ToInstance();
  EXPECT_TRUE(inst.ok());
  return std::move(inst).value();
}

class SybilSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SybilSweep, CatNeverProfitsFromSybilAttacks) {
  const AuctionInstance inst = RandomSharedInstance(GetParam());
  auto cat = auction::MakeMechanism("cat");
  ASSERT_TRUE(cat.ok());
  Rng rng(GetParam() + 100);
  const SybilReport best = SearchSybilAttacks(
      **cat, inst, inst.total_union_load() * 0.5, rng, /*max_attackers=*/8);
  EXPECT_FALSE(best.Profitable())
      << "gain " << best.Gain() << " — CAT is sybil-strategyproof "
      << "(Theorem 19), the harness found a counterexample";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SybilSweep,
                         ::testing::Range<uint64_t>(1, 11));

TEST(SybilVulnerabilityTest, CafAttackSucceedsSomewhere) {
  // Theorem 15: CAF is universally vulnerable. The search should find a
  // profitable attack on at least one (in practice nearly every)
  // shared instance at competitive capacity.
  auto caf = auction::MakeMechanism("caf");
  ASSERT_TRUE(caf.ok());
  bool found = false;
  for (uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    const AuctionInstance inst = RandomSharedInstance(seed);
    Rng rng(seed + 200);
    const SybilReport best = SearchSybilAttacks(
        **caf, inst, inst.total_union_load() * 0.5, rng, 10);
    found = best.Profitable();
  }
  EXPECT_TRUE(found);
}

TEST(SybilVulnerabilityTest, CafPlusAttackSucceedsSomewhere) {
  auto caf_plus = auction::MakeMechanism("caf+");
  ASSERT_TRUE(caf_plus.ok());
  bool found = false;
  for (uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    const AuctionInstance inst = RandomSharedInstance(seed);
    Rng rng(seed + 300);
    const SybilReport best = SearchSybilAttacks(
        **caf_plus, inst, inst.total_union_load() * 0.5, rng, 10);
    found = best.Profitable();
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace streambid
