// Copyright 2026 The streambid Authors
// The sharded multi-center deployment: N DsmsCenters (each with its own
// engine at total_capacity / N) behind a ShardRouter, with every period
// stage — autoscaled prepare, admission, completion — running on the
// executor's persistent worker pool and the per-shard PeriodReports
// merged into a ClusterPeriodReport. This is the ROADMAP "sharded
// multi-center" item plus the "period pipelining" item: no per-period
// threads are ever spawned, and shards flow through their stages
// independently instead of barriering between phases.
//
// A period is one dependency chain per shard, submitted to the pool:
//
//   shard k:  PrepareAuction ──▶ Admit (worker service) ──▶ CompletePeriod
//             (autoscaler grid)                             (transition +
//                                                            engine + bill)
//
// Chains are mutually independent (a shard's service, engine, ledger,
// and autoscaler are private to it), so shard k's engine execution
// overlaps shard k+1's auction. Every stage is a deterministic function
// of shard-local state — the (seed + shard, period) request streams
// carry the auction RNG — so the pipelined report is byte-identical to
// the barriered reference (RunPeriodBarriered) at every pool size.
//
// The period tail (shared by every variant) is itself staged: the
// router's per-shard view refreshes, the shard reports merge, and —
// when ClusterOptions::rebalance is enabled — a ShardRebalancer plans
// inter-period tenant migrations from the refreshed signals and the
// migrations fan out on the same pool (extraction tasks per source
// shard, then adoption tasks per destination shard; each shard is
// touched by at most one task per phase). The plan is a pure function
// of (history, seed), so the replay contract survives rebalancing.
//
// Surfaces: RunPeriod() runs one pipelined period synchronously;
// BeginPeriod()/EndPeriod() split it so a caller can overlap the
// period's execution with its own work (but not with Submit — see
// BeginPeriod); RunPeriodBarriered() keeps the lock-step reference
// implementation (serial prepare, one parallel admission batch, pooled
// completion) for identity tests and the pipelining bench.

#ifndef STREAMBID_CLUSTER_CLUSTER_CENTER_H_
#define STREAMBID_CLUSTER_CLUSTER_CENTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <cstdint>
#include <limits>
#include <unordered_map>

#include "cloud/dsms_center.h"
#include "cluster/admission_executor.h"
#include "cluster/shard_rebalancer.h"
#include "cluster/shard_router.h"
#include "common/status.h"
#include "common/timer.h"
#include "stream/engine.h"

namespace streambid::telemetry {
class Counter;
class MetricsRegistry;
class PeriodTracer;
}  // namespace streambid::telemetry

namespace streambid::cluster {

/// Cluster configuration.
struct ClusterOptions {
  /// Number of DsmsCenter shards (>= 1).
  int num_shards = 2;
  /// Total engine capacity, split evenly across shards.
  double total_capacity = 1000.0;
  /// Submission routing policy.
  RoutingPolicy routing = RoutingPolicy::kHashUser;
  /// Admission mechanism run by every shard.
  std::string mechanism = "cat";
  /// Per-period virtual execution length (see DsmsCenterOptions).
  stream::VirtualTime period_length = 3600.0;
  /// Load model for the per-shard auctions and the router's pending-load
  /// estimates.
  stream::LoadEstimateOptions load_options;
  /// Base seed; shard s auctions on stream (seed + s, period), so shard
  /// outcomes are independent and individually replayable.
  uint64_t seed = 1;
  /// Engine settings applied to every shard (capacity is overridden with
  /// the per-shard share).
  stream::EngineOptions engine_options;
  /// Executor pool size; 0 sizes to the hardware.
  int executor_threads = 0;
  /// Executor queue bound passed through to ExecutorOptions; 0 means
  /// unbounded. A bound must admit at least the period fan-out (one
  /// chain per shard) or BeginPeriod will block on its own backlog.
  int executor_queue_depth = 0;
  /// Executor work stealing (ExecutorOptions::steal). Off is the
  /// single-queue-equivalent reference mode; results are identical
  /// either way — the replay tests assert exactly that.
  bool executor_stealing = true;
  /// Seed for the executor's deterministic steal-victim scan order
  /// (ExecutorOptions::steal_seed).
  uint64_t executor_steal_seed = 0x51EA15EEDULL;
  /// Per-shard closed-loop capacity autoscaling. Each shard runs its
  /// own CapacityAutoscaler against its share of total_capacity (the
  /// ratio bounds apply to the per-shard baseline); decisions are made
  /// in the shard's own prepare stage from shard-local history, so the
  /// cluster's determinism contract is unchanged. The
  /// ClusterPeriodReport aggregates the shards' total provisioned
  /// capacity and energy cost.
  cloud::AutoscalerOptions autoscale;
  /// Inter-period tenant migration (see ShardRebalancer). When enabled,
  /// each period tail plans a bounded migration from the hottest shard
  /// to the coldest one, moves the tenants' center-resident state on
  /// the executor pool, and pins the moved tenants to their new home
  /// via routing overrides. Plans are pure functions of (history,
  /// rebalance.seed): replay is unchanged at every pool size.
  ///
  /// Meant for stable placements (kHashUser, or tenants already
  /// pinned): the per-tenant demand signal attributes a tenant's whole
  /// period load to the shard its LAST submission routed to, so under
  /// kLeastLoaded/kPriceAware — where one tenant's submissions can
  /// spread over several shards within a period — the pressure signal
  /// is approximate until a migration pins the tenant (after which its
  /// traffic, and therefore its signal, is exact again).
  RebalancerOptions rebalance;
  /// Optional telemetry sink, fanned through every layer the cluster
  /// owns: the executor (queue depth, task latency), each worker's
  /// admission service, and each shard's DsmsCenter (per-shard labeled
  /// business series), plus the cluster's own period/migration
  /// counters. Null (the default) disables all of it. Must outlive the
  /// cluster.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Optional period tracer. When set, the pipelined period path
  /// records one span per (period, shard, phase): prepare, admit,
  /// complete on the workers, plus the cluster-level rebalance stage
  /// (shard -1). Spans are write-only annotations — replay identity is
  /// unchanged with tracing on or off. Must outlive the cluster.
  telemetry::PeriodTracer* tracer = nullptr;
};

/// One cluster period: the merged view plus the per-shard breakdown.
struct ClusterPeriodReport {
  int period = 0;
  int submissions = 0;       ///< Sum over shards.
  int admitted = 0;          ///< Sum over shards.
  double revenue = 0.0;      ///< Sum over shards.
  double total_payoff = 0.0;
  /// Means over shards weighted by each shard's provisioned_capacity,
  /// so the cluster-level figure stays truthful after the autoscalers
  /// diverge per-shard capacity (a tiny drained shard at 100% must not
  /// read like half the cluster is busy). Falls back to the plain mean
  /// only in the degenerate all-shards-at-zero-capacity period.
  double auction_utilization = 0.0;
  double measured_utilization = 0.0;
  /// Total capacity provisioned across shards this period (== the
  /// configured total unless autoscaling re-provisioned shards).
  double provisioned_capacity = 0.0;
  /// Summed per-shard energy cost under the configured EnergyModel.
  double energy_cost = 0.0;
  /// Wall clock of the whole cluster period (BeginPeriod through the
  /// merge, or all three barriered phases).
  double elapsed_ms = 0.0;
  /// Indexed by shard; each report carries its mechanism name.
  std::vector<cloud::PeriodReport> shard_reports;
};

/// What SubmitBatch did with a drained gate batch: how many submissions
/// each shard queue accepted, how many the cluster refused, and the
/// first refusal (in batch order) for diagnostics. Per-item refusals do
/// not abort the batch — later items still submit, mirroring what a
/// caller looping over Submit would get.
struct BatchSubmitOutcome {
  int accepted = 0;
  int rejected = 0;
  /// OK when rejected == 0; otherwise the first per-item error.
  Status first_error = Status::Ok();
};

/// Handle for an in-flight pipelined period issued by BeginPeriod and
/// consumed (exactly once) by EndPeriod. Identity-tagged: EndPeriod
/// only accepts the handle of ITS cluster's CURRENT in-flight period —
/// stale copies, foreign clusters' handles, and default-constructed
/// ones are all rejected with kFailedPrecondition.
struct PendingPeriod {
  /// One chain ticket per shard, indexed by shard.
  std::vector<Ticket<cloud::PeriodReport>> shard_tickets;
  Timer timer;  ///< Started at BeginPeriod; read at the merge.
  bool consumed = false;
  /// Issuing cluster and its period epoch at issue time; checked by
  /// EndPeriod before any state changes.
  const void* owner = nullptr;
  uint64_t epoch = 0;
};

/// N admission-controlled centers behind one router and one executor.
/// Not thread-safe at the surface (one caller drives submissions and
/// periods); internally every period stage fans out on the executor's
/// persistent pool — no other threads are ever created.
class ClusterCenter {
 public:
  /// Applied to every shard engine at construction (register sources,
  /// etc.) before any submission arrives.
  using EngineConfigurator = std::function<Status(stream::Engine&)>;

  /// Preconditions (checked): num_shards >= 1, positive total capacity,
  /// registered mechanism (verified by each shard's DsmsCenter
  /// constructor). The configurator must succeed on every shard engine
  /// (checked).
  ClusterCenter(const ClusterOptions& options,
                const EngineConfigurator& configure_engine);

  /// Routes the submission to a shard and queues it there for the next
  /// period. Returns the shard index. Routing happens before admission:
  /// a submission rejected by its shard's auction is not re-routed.
  /// kFailedPrecondition while a period is in flight (shard state is on
  /// the workers' side of the fence until EndPeriod).
  Result<int> Submit(stream::QuerySubmission submission);

  /// Moves a drained gate batch into the shard queues, in batch order —
  /// the streaming ingress path. Equivalent to calling Submit on each
  /// element (same routing, same tenant signals, so replay is identical
  /// to the loop), but per-item errors are folded into the outcome
  /// instead of aborting: the batch was already granted tickets, and a
  /// routed-but-refused submission must be accounted, not lose its
  /// successors. kFailedPrecondition (whole batch) while a period is in
  /// flight.
  Result<BatchSubmitOutcome> SubmitBatch(
      std::vector<stream::QuerySubmission> batch);

  /// Runs one pipelined period (BeginPeriod + EndPeriod) and merges the
  /// shard reports.
  Result<ClusterPeriodReport> RunPeriod();

  /// Submits every shard's period chain (prepare -> admit -> complete)
  /// to the executor pool and returns immediately. Until EndPeriod
  /// consumes the handle, the cluster surface is frozen: Submit and
  /// further Begin/Run calls fail with kFailedPrecondition. The caller
  /// may do unrelated work — or drive other executors — in between.
  Result<PendingPeriod> BeginPeriod();

  /// Waits for every shard chain, refreshes the router's view, merges
  /// the shard reports, and appends to history(). Consumes the handle:
  /// a second EndPeriod on the same PendingPeriod is kFailedPrecondition.
  Result<ClusterPeriodReport> EndPeriod(PendingPeriod& period);

  /// The lock-step reference implementation the pipelined path is
  /// byte-compared against: serial prepare over all shards, one
  /// AdmitBatchParallel, then pooled completion tasks with a barrier
  /// between phases. Same merged report (timing aside), more idle time.
  Result<ClusterPeriodReport> RunPeriodBarriered();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ClusterOptions& options() const { return options_; }
  const ShardRouter& router() const { return router_; }
  AdmissionExecutor& executor() { return executor_; }
  const cloud::DsmsCenter& shard(int s) const {
    return *shards_[static_cast<size_t>(s)].center;
  }
  /// Router-visible status snapshots, indexed by shard.
  const std::vector<ShardStatus>& shard_statuses() const {
    return statuses_;
  }
  const std::vector<ClusterPeriodReport>& history() const {
    return history_;
  }
  /// Aggregate revenue across shards and periods.
  double total_revenue() const;

  /// Every migration plan that moved at least one tenant, in period
  /// order (empty unless options().rebalance.enabled).
  const std::vector<MigrationPlan>& migrations() const {
    return migrations_;
  }
  /// Tenants the rebalancer pinned away from their policy placement.
  const PlacementOverrides& placement_overrides() const {
    return overrides_;
  }
  const ShardRebalancer& rebalancer() const { return rebalancer_; }
  /// Epoch of the most recently begun period (0 before the first).
  /// The gate layer stamps its drain spans with this after RunPeriod.
  uint64_t period_epoch() const { return period_epoch_; }

 private:
  struct Shard {
    std::unique_ptr<stream::Engine> engine;
    std::unique_ptr<cloud::DsmsCenter> center;
  };

  /// Shard s's whole period, run as one task on a pool worker: the
  /// autoscaled prepare, the auction on the worker's own service (via
  /// AdmitOn, so it lands in the rolling stats), and the completion.
  /// Touches only shard-local state plus the worker context. `epoch` is
  /// the issuing BeginPeriod's epoch, captured into the task so trace
  /// spans carry the logical key without reading mutable cluster state.
  Result<cloud::PeriodReport> RunShardPeriod(int s, uint64_t epoch,
                                             WorkerContext& context);
  /// The serial tail every period variant shares: refresh the router's
  /// per-shard view, surface the lowest-shard-index error, merge the
  /// reports, append to history, and run the rebalance stage.
  /// `completed` is indexed by shard.
  Result<ClusterPeriodReport> MergeCompleted(
      std::vector<Result<cloud::PeriodReport>> completed,
      const Timer& timer);
  /// The rebalance stage of the period tail: fold the period's tenant
  /// activity into the signals, plan, and apply the migrations on the
  /// executor pool (extract per source shard, adopt per destination
  /// shard). No-op when rebalancing is disabled or the plan is empty.
  /// A failed adoption surfaces here and — like a failed shard — leaves
  /// the cluster unrecoverable mid-migration.
  Status RebalanceAfterPeriod();

  /// Submit-time view of one tenant, the rebalancer's signal source.
  struct TenantRecord {
    int home = 0;             ///< Shard the last submission routed to.
    double period_load = 0.0; ///< Accumulating over the open period.
    double last_load = 0.0;   ///< Folded at the period close.
    int last_active_period = -1;
    int last_moved_period = std::numeric_limits<int>::min();
  };

  ClusterOptions options_;
  ShardRouter router_;
  ShardRebalancer rebalancer_;
  std::vector<Shard> shards_;
  std::vector<ShardStatus> statuses_;
  std::vector<ClusterPeriodReport> history_;
  std::unordered_map<auction::UserId, TenantRecord> tenants_;
  PlacementOverrides overrides_;
  std::vector<MigrationPlan> migrations_;
  bool period_in_flight_ = false;
  /// Bumped by every BeginPeriod; the live PendingPeriod carries the
  /// current value, so stale handle copies cannot end a later period.
  uint64_t period_epoch_ = 0;
  /// Cluster-level telemetry instruments; null without options.metrics.
  telemetry::Counter* periods_metric_ = nullptr;
  telemetry::Counter* migrated_tenants_metric_ = nullptr;
  /// Declared last on purpose: members destroy in reverse declaration
  /// order, and ~TaskExecutor (inside the facade) joins workers that
  /// may still be running a shard's period chain — the pool must die
  /// before the shards the chains dereference. This is what makes
  /// dropping a PendingPeriod without EndPeriod safe.
  AdmissionExecutor executor_;
};

}  // namespace streambid::cluster

#endif  // STREAMBID_CLUSTER_CLUSTER_CENTER_H_
