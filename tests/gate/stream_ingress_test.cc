// Copyright 2026 The streambid Authors
// StreamIngress contract tests: granted submissions buffer and drain
// into real cluster periods, ticket-starved offers shed with the typed
// retry-after status, classes are isolated, tickets recycle across
// periods, drain-time cluster refusals are accounted as drops, and the
// throughput probe's decisions resize the pools and the executor bound.
// Also the backpressure satellite: the gate's kResourceExhausted is the
// status the caller sees, distinguishable from executor backpressure,
// with the shedding accounted in the period report.

#include "gate/stream_ingress.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "cluster/task_executor.h"
#include "service/gate_status.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

namespace streambid::gate {
namespace {

using stream::QuerySubmission;

Status RegisterQuotes(stream::Engine& engine) {
  return engine.RegisterSource(stream::MakeStockQuoteSource(
      "quotes", {"IBM", "AAPL", "MSFT"}, 100.0, 11));
}

QuerySubmission MakeSubmission(int id, auction::UserId user, double bid,
                               double threshold) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(threshold));
  QuerySubmission sub;
  sub.query_id = id;
  sub.user = user;
  sub.bid = bid;
  sub.plan = b.Build(sel);
  return sub;
}

/// A plan over a source no engine registered: routing succeeds but the
/// cluster's load estimate refuses it at drain time.
QuerySubmission MakeUnroutableSubmission(int id, auction::UserId user) {
  stream::QueryBuilder b;
  const int src = b.Source("no-such-source");
  QuerySubmission sub;
  sub.query_id = id;
  sub.user = user;
  sub.bid = 10.0;
  sub.plan = b.Build(src);
  return sub;
}

cluster::ClusterOptions BaseClusterOptions() {
  cluster::ClusterOptions options;
  options.num_shards = 2;
  options.total_capacity = 4.0;
  options.routing = cluster::RoutingPolicy::kHashUser;
  options.mechanism = "cat";
  options.period_length = 5.0;
  options.seed = 21;
  options.engine_options.tick = 1.0;
  options.engine_options.sink_history = 8;
  options.executor_threads = 2;
  return options;
}

TEST(StreamIngressTest, GrantsBufferAndDrainIntoClusterPeriod) {
  cluster::ClusterCenter center(BaseClusterOptions(), RegisterQuotes);
  IngressOptions options;
  options.tenant_classes = 1;
  options.tickets_per_class = 16;
  StreamIngress gate(&center, options);

  for (int id = 1; id <= 8; ++id) {
    ASSERT_TRUE(gate.Offer(MakeSubmission(id, id, 60.0 - 5.0 * id,
                                          100.0 + 5.0 * (id % 3)))
                    .ok());
  }
  EXPECT_EQ(gate.buffered(), 8);
  EXPECT_EQ(gate.pool(0).used(), 8);

  const auto gated = gate.ClosePeriod();
  ASSERT_TRUE(gated.ok());
  EXPECT_EQ(gated->report.submissions, 8);
  EXPECT_GT(gated->report.admitted, 0);
  EXPECT_EQ(gated->gate.offered, 8);
  EXPECT_EQ(gated->gate.admitted, 8);
  EXPECT_EQ(gated->gate.shed, 0);
  EXPECT_EQ(gated->gate.dropped, 0);
  EXPECT_FALSE(gated->probe.has_value());  // Probing off by default.
  ASSERT_EQ(gated->gate.pools.size(), 1u);
  EXPECT_EQ(gated->gate.pools[0].name, "cat/class0");
  EXPECT_EQ(gate.buffered(), 0);
  EXPECT_EQ(gate.pool(0).used(), 0);  // Tickets recycled at the drain.
}

TEST(StreamIngressTest, ShedsTicketStarvedOffersWithRetryAfterHint) {
  cluster::ClusterCenter center(BaseClusterOptions(), RegisterQuotes);
  IngressOptions options;
  options.tenant_classes = 1;
  options.tickets_per_class = 2;
  options.retry_after_periods = 2.5;
  StreamIngress gate(&center, options);

  int granted = 0;
  std::vector<Status> sheds;
  for (int id = 1; id <= 5; ++id) {
    const Status status =
        gate.Offer(MakeSubmission(id, id, 50.0, 102.0));
    if (status.ok()) {
      ++granted;
    } else {
      sheds.push_back(status);
    }
  }
  EXPECT_EQ(granted, 2);
  ASSERT_EQ(sheds.size(), 3u);
  for (const Status& shed : sheds) {
    EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(service::IsShed(shed));
    ASSERT_TRUE(service::RetryAfterPeriods(shed).has_value());
    EXPECT_DOUBLE_EQ(*service::RetryAfterPeriods(shed), 2.5);
    EXPECT_EQ(service::ShedPool(shed), "cat/class0");
  }

  const auto gated = gate.ClosePeriod();
  ASSERT_TRUE(gated.ok());
  EXPECT_EQ(gated->gate.offered, 5);
  EXPECT_EQ(gated->gate.admitted, 2);
  EXPECT_EQ(gated->gate.shed, 3);
  EXPECT_EQ(gated->report.submissions, 2);  // Sheds never cost a slot.
  EXPECT_EQ(gate.total_offered(), 5);
  EXPECT_EQ(gate.total_admitted(), 2);
  EXPECT_EQ(gate.total_shed(), 3);
}

TEST(StreamIngressTest, ShedIsDistinguishableFromExecutorBackpressure) {
  // The satellite's end-to-end claim: both the gate and the executor
  // speak kResourceExhausted, but only the gate's carries the shed
  // marker — a caller can retry-later on sheds and spin on queue-full.
  cluster::TaskExecutor executor(cluster::ExecutorOptions{1, 1});
  // Park the worker so the queue stays full.
  std::mutex hold;
  hold.lock();
  auto parked = executor.Submit<bool>([&hold](cluster::WorkerContext&) {
    std::lock_guard<std::mutex> lock(hold);
    return true;
  });
  ASSERT_TRUE(parked.ok());
  Result<cluster::Ticket<bool>> full = executor.TrySubmit<bool>(
      [](cluster::WorkerContext&) -> Result<bool> { return true; });
  while (full.ok()) {
    full = executor.TrySubmit<bool>(
        [](cluster::WorkerContext&) -> Result<bool> { return true; });
  }
  EXPECT_EQ(full.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(service::IsShed(full.status()));
  hold.unlock();

  TicketHolder pool("cat/class0", 1);
  ASSERT_TRUE(pool.TryAcquire());
  const Status shed = service::ShedRejection(pool.name(), 1.0);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(service::IsShed(shed));
}

TEST(StreamIngressTest, TenantClassesShedIndependently) {
  cluster::ClusterCenter center(BaseClusterOptions(), RegisterQuotes);
  IngressOptions options;
  options.tenant_classes = 2;
  options.tickets_per_class = 2;
  StreamIngress gate(&center, options);

  // Four even users saturate class 0 (user % 2 == 0)...
  int class0_granted = 0;
  for (int id = 1; id <= 4; ++id) {
    if (gate.Offer(MakeSubmission(id, 2 * id, 50.0, 102.0)).ok()) {
      ++class0_granted;
    }
  }
  EXPECT_EQ(class0_granted, 2);
  // ...while class 1 still grants.
  EXPECT_TRUE(gate.Offer(MakeSubmission(9, 9, 50.0, 102.0)).ok());
  EXPECT_EQ(gate.pool(0).used(), 2);
  EXPECT_EQ(gate.pool(1).used(), 1);

  const auto gated = gate.ClosePeriod();
  ASSERT_TRUE(gated.ok());
  EXPECT_EQ(gated->gate.shed, 2);
  EXPECT_EQ(gated->gate.admitted, 3);
}

TEST(StreamIngressTest, TicketsRecycleAcrossPeriods) {
  cluster::ClusterCenter center(BaseClusterOptions(), RegisterQuotes);
  IngressOptions options;
  options.tenant_classes = 1;
  options.tickets_per_class = 2;
  StreamIngress gate(&center, options);

  for (int period = 0; period < 3; ++period) {
    ASSERT_TRUE(
        gate.Offer(MakeSubmission(2 * period + 1, 1, 50.0, 102.0)).ok());
    ASSERT_TRUE(
        gate.Offer(MakeSubmission(2 * period + 2, 2, 45.0, 104.0)).ok());
    EXPECT_FALSE(
        gate.Offer(MakeSubmission(100 + period, 3, 40.0, 103.0)).ok());
    const auto gated = gate.ClosePeriod();
    ASSERT_TRUE(gated.ok());
    EXPECT_EQ(gated->report.period, period);
    EXPECT_EQ(gated->gate.admitted, 2);
    EXPECT_EQ(gated->gate.shed, 1);
  }
  EXPECT_EQ(gate.buffered_high_water(), 2);  // Bounded by the pool.
}

TEST(StreamIngressTest, ClusterRefusalsAtDrainCountAsDropped) {
  cluster::ClusterCenter center(BaseClusterOptions(), RegisterQuotes);
  IngressOptions options;
  options.tenant_classes = 1;
  options.tickets_per_class = 8;
  StreamIngress gate(&center, options);

  ASSERT_TRUE(gate.Offer(MakeSubmission(1, 1, 50.0, 102.0)).ok());
  ASSERT_TRUE(gate.Offer(MakeUnroutableSubmission(2, 2)).ok());
  ASSERT_TRUE(gate.Offer(MakeSubmission(3, 3, 45.0, 104.0)).ok());

  const auto gated = gate.ClosePeriod();
  ASSERT_TRUE(gated.ok());
  EXPECT_EQ(gated->gate.admitted, 2);
  EXPECT_EQ(gated->gate.dropped, 1);
  EXPECT_EQ(gated->report.submissions, 2);  // The drop never landed.
  EXPECT_EQ(gate.pool(0).used(), 0);  // Its ticket still recycled.
}

TEST(StreamIngressTest, ProbeResizesPoolsAndExecutorQueueDepth) {
  cluster::ClusterOptions cluster_options = BaseClusterOptions();
  cluster_options.executor_queue_depth = 64;
  cluster::ClusterCenter center(cluster_options, RegisterQuotes);
  IngressOptions options;
  options.tenant_classes = 2;
  options.tickets_per_class = 8;
  options.probe.enabled = true;
  options.probe.initial_concurrency = 16;
  options.probe.min_concurrency = 4;
  options.probe.max_concurrency = 32;
  StreamIngress gate(&center, options);

  for (int period = 0; period < 6; ++period) {
    for (int id = 1; id <= 6; ++id) {
      (void)gate.Offer(MakeSubmission(100 * period + id, id,
                                      60.0 - 5.0 * id,
                                      100.0 + 5.0 * (id % 3)));
    }
    const auto gated = gate.ClosePeriod();
    ASSERT_TRUE(gated.ok());
    ASSERT_TRUE(gated->probe.has_value());
    const ProbeDecision& decision = *gated->probe;
    EXPECT_GE(decision.concurrency, options.probe.min_concurrency);
    EXPECT_LE(decision.concurrency, options.probe.max_concurrency);
    // The decision lands on the pools and the executor bound.
    const int per_class = std::max(1, decision.concurrency / 2);
    EXPECT_EQ(gate.pool(0).capacity(), per_class);
    EXPECT_EQ(gate.pool(1).capacity(), per_class);
    EXPECT_EQ(center.executor().tasks().max_queue_depth(),
              std::max(decision.concurrency, center.num_shards()));
  }
}

}  // namespace
}  // namespace streambid::gate
