// Copyright 2026 The streambid Authors
// Closed-loop capacity autoscaling vs fixed provisioning (§VII, made
// operational). A bursty multi-period workload — tenant volume
// modulated by a Zipf draw, so most periods are lulls and a few are
// spikes — runs against two otherwise identical centers per mechanism:
// one provisioned at fixed full capacity, one driven by the
// CapacityAutoscaler. Net profit = auction revenue - energy cost under
// one shared EnergyModel. The fixed center pays full idle energy
// through every lull *and* (for the density mechanisms) sees prices
// collapse whenever capacity exceeds demand; the autoscaled center
// shrinks into the lulls, keeping capacity binding and energy lean.
//
// A second experiment shows the same loop sharded: a 4-shard
// ClusterCenter where every shard autoscales independently and the
// merged report tracks total provisioned capacity and energy.
//
// Usage: bench_autoscaling [--smoke]   (--smoke shrinks the horizon
// for the ctest smoke target; the autoscaled >= fixed check runs in
// both modes).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/dsms_center.h"
#include "cluster/cluster_center.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/zipf.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

namespace {

using namespace streambid;

constexpr double kBaselineCapacity = 12.0;
constexpr int kDistinctThresholds = 12;
constexpr int kBookSize = 48;

struct TenantBookEntry {
  int id;
  auction::UserId user;
  double bid;
  double threshold;
};

// Deterministic tenant book: a handful of distinct select thresholds
// (~1 capacity unit each at 100 tuples/s), Zipf-ish bids.
std::vector<TenantBookEntry> MakeTenantBook() {
  std::vector<TenantBookEntry> book;
  Rng rng(0x7EA7A5ull);
  book.reserve(kBookSize);
  for (int i = 1; i <= kBookSize; ++i) {
    TenantBookEntry entry;
    entry.id = i;
    entry.user = i;
    entry.bid = 5.0 + rng.NextRange(0.0, 95.0);
    entry.threshold =
        95.0 + 2.0 * static_cast<double>(i % kDistinctThresholds);
    book.push_back(entry);
  }
  return book;
}

stream::QuerySubmission MakeTenant(const TenantBookEntry& entry) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(entry.threshold));
  stream::QuerySubmission sub;
  sub.query_id = entry.id;
  sub.user = entry.user;
  sub.bid = entry.bid;
  sub.plan = b.Build(sel);
  return sub;
}

Status RegisterQuotes(stream::Engine& engine) {
  return engine.RegisterSource(stream::MakeStockQuoteSource(
      "quotes", {"IBM", "AAPL", "MSFT", "GOOG"}, /*rate=*/100.0, 5));
}

// The bursty schedule: tenants in period p = 4 * Zipf(12, 1.0) — mass
// at the low end (lulls), occasional full-book spikes. Shared by every
// configuration so comparisons see the identical demand stream.
std::vector<int> BurstSchedule(int periods) {
  ZipfDistribution zipf(kDistinctThresholds, 1.0);
  Rng rng(0xB1257ull);
  std::vector<int> tenants;
  tenants.reserve(static_cast<size_t>(periods));
  for (int p = 0; p < periods; ++p) {
    tenants.push_back(4 * zipf.Sample(rng));
  }
  return tenants;
}

cloud::EnergyModel BenchEnergyModel() {
  cloud::EnergyModel energy;
  energy.idle_cost_per_capacity = 0.05;
  energy.active_cost_per_capacity = 0.02;
  return energy;
}

cloud::AutoscalerOptions AutoscaleConfig(bool enabled) {
  cloud::AutoscalerOptions autoscale;
  autoscale.enabled = enabled;
  autoscale.min_capacity_ratio = 0.25;
  autoscale.min_dwell_periods = 2;
  autoscale.max_step_ratio = 0.5;
  autoscale.energy = BenchEnergyModel();
  return autoscale;
}

struct RunResult {
  double gross = 0.0;
  double energy = 0.0;
  double net = 0.0;
  double mean_capacity = 0.0;
  double min_capacity = 1e30;
  int admitted = 0;
  int submitted = 0;
  int capacity_changes = 0;
};

RunResult RunCenter(const std::string& mechanism, bool autoscaled,
                    const std::vector<int>& schedule,
                    const std::vector<TenantBookEntry>& book) {
  stream::Engine engine(
      stream::EngineOptions{kBaselineCapacity, 1.0, 4});
  STREAMBID_CHECK(RegisterQuotes(engine).ok());
  cloud::DsmsCenterOptions options;
  options.mechanism = mechanism;
  options.period_length = 20.0;
  options.seed = 71;
  options.autoscale = AutoscaleConfig(autoscaled);
  cloud::DsmsCenter center(options, &engine);

  RunResult result;
  const int periods = static_cast<int>(schedule.size());
  for (int p = 0; p < periods; ++p) {
    for (int t = 0; t < schedule[static_cast<size_t>(p)]; ++t) {
      STREAMBID_CHECK(
          center.Submit(MakeTenant(book[static_cast<size_t>(t)])).ok());
    }
    const auto report = center.RunPeriod();
    STREAMBID_CHECK(report.ok());
    result.gross += report->revenue;
    result.energy += report->energy_cost;
    result.submitted += report->submissions;
    result.admitted += report->admitted;
    result.mean_capacity += report->provisioned_capacity / periods;
    result.min_capacity =
        std::min(result.min_capacity, report->provisioned_capacity);
    if (report->autoscale_decision.has_value() &&
        report->autoscale_decision->changed) {
      ++result.capacity_changes;
    }
  }
  result.net = result.gross - result.energy;
  return result;
}

void RunCenterExperiment(int periods) {
  const std::vector<TenantBookEntry> book = MakeTenantBook();
  const std::vector<int> schedule = BurstSchedule(periods);
  int burst_periods = 0;
  for (int n : schedule) burst_periods += n >= kBookSize / 2 ? 1 : 0;
  std::printf("\n== fixed vs autoscaled provisioning (%d periods, "
              "%d bursts, baseline capacity %.0f) ==\n",
              periods, burst_periods, kBaselineCapacity);

  TextTable table({"mechanism", "provisioning", "gross", "energy", "net",
                   "mean_cap", "min_cap", "admit_rate", "changes"});
  for (const std::string& mechanism :
       {std::string("cat"), std::string("car"), std::string("two-price"),
        std::string("caf")}) {
    const RunResult fixed = RunCenter(mechanism, false, schedule, book);
    const RunResult scaled = RunCenter(mechanism, true, schedule, book);
    for (const auto* r : {&fixed, &scaled}) {
      table.AddRow(
          {mechanism, r == &fixed ? "fixed" : "autoscaled",
           FormatDouble(r->gross, 2), FormatDouble(r->energy, 2),
           FormatDouble(r->net, 2), FormatDouble(r->mean_capacity, 2),
           FormatDouble(r->min_capacity, 2),
           FormatDouble(r->submitted > 0
                            ? static_cast<double>(r->admitted) /
                                  r->submitted
                            : 0.0,
                        3),
           FormatInt(r->capacity_changes)});
    }
    std::printf("# %s: autoscaled net %.2f vs fixed net %.2f (%+.2f)\n",
                mechanism.c_str(), scaled.net, fixed.net,
                scaled.net - fixed.net);
    // The acceptance bar: closing the §VII loop must not lose money on
    // the bursty workload for the paper's headline mechanisms.
    if (mechanism == "cat" || mechanism == "car") {
      STREAMBID_CHECK_GE(scaled.net, fixed.net);
    }
  }
  std::fputs(table.ToAligned().c_str(), stdout);
}

void RunClusterExperiment(int periods) {
  const std::vector<TenantBookEntry> book = MakeTenantBook();
  const std::vector<int> schedule = BurstSchedule(periods);
  std::printf("\n== 4-shard cluster, every shard autoscaling "
              "independently (cat) ==\n");

  TextTable table({"provisioning", "gross", "energy", "net",
                   "mean_total_cap", "min_total_cap"});
  double net_fixed = 0.0;
  double net_autoscaled = 0.0;
  for (const bool autoscaled : {false, true}) {
    cluster::ClusterOptions options;
    options.num_shards = 4;
    options.total_capacity = kBaselineCapacity;
    options.routing = cluster::RoutingPolicy::kHashUser;
    options.mechanism = "cat";
    options.period_length = 20.0;
    options.seed = 71;
    options.engine_options.tick = 1.0;
    options.engine_options.sink_history = 4;
    options.executor_threads = 4;
    options.autoscale = AutoscaleConfig(autoscaled);
    cluster::ClusterCenter center(options, RegisterQuotes);

    double gross = 0.0, energy = 0.0;
    double mean_capacity = 0.0, min_capacity = 1e30;
    for (int p = 0; p < periods; ++p) {
      for (int t = 0; t < schedule[static_cast<size_t>(p)]; ++t) {
        STREAMBID_CHECK(
            center.Submit(MakeTenant(book[static_cast<size_t>(t)]))
                .ok());
      }
      const auto report = center.RunPeriod();
      STREAMBID_CHECK(report.ok());
      gross += report->revenue;
      energy += report->energy_cost;
      mean_capacity += report->provisioned_capacity / periods;
      min_capacity = std::min(min_capacity,
                              report->provisioned_capacity);
    }
    (autoscaled ? net_autoscaled : net_fixed) = gross - energy;
    table.AddRow({autoscaled ? "autoscaled" : "fixed",
                  FormatDouble(gross, 2), FormatDouble(energy, 2),
                  FormatDouble(gross - energy, 2),
                  FormatDouble(mean_capacity, 2),
                  FormatDouble(min_capacity, 2)});
  }
  std::fputs(table.ToAligned().c_str(), stdout);
  std::printf("# the merged ClusterPeriodReport tracks the shards' "
              "total provisioned capacity and energy cost\n");
  bench::WriteBenchJson(
      "autoscaling",
      {{"cluster_net_fixed", net_fixed},
       {"cluster_net_autoscaled", net_autoscaled},
       {"cluster_net_gain", net_autoscaled - net_fixed}});
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int periods = smoke ? 10 : 24;
  std::printf("closed-loop capacity autoscaling: fixed vs autoscaled "
              "net profit under a Zipf-modulated bursty workload%s\n",
              smoke ? " (smoke)" : "");
  RunCenterExperiment(periods);
  RunClusterExperiment(periods);
  return 0;
}
