// Copyright 2026 The streambid Authors
// The throughput-probing concurrency controller of the streaming
// admission gate, after MongoDB's execution-control algorithm
// (SNIPPETS.md): instead of a static concurrency limit, the controller
// epochs over observed admit throughput and probes the limit up and
// down, keeping whatever setting measured throughput rewards.
//
// Three-state machine, one transition per epoch:
//
//               ┌────────── improved ──────────┐
//               ▼                              │
//   ┌────────┐ pick ┌────────────┐   not   ┌───┴────────┐
//   │ stable ├─────▶│ probe-up   ├─ imp. ─▶│ revert to  │
//   │ (ema)  │  or  │ (+step)    │         │ stable     │
//   │        ├─────▶│ probe-down ├─ imp. ─▶│ adopt probe│
//   └────────┘      │ (-step)    │         └────────────┘
//                   └────────────┘
//
// From kStable the controller blends the epoch's throughput into an
// exponential moving average and picks a probe direction (up unless
// pinned at the max, down unless pinned at the min; when both are
// possible the direction is a seeded — and therefore replayable — coin
// per epoch). The probe epoch then runs at stable*(1±step); if its
// throughput beats the moving average, the probed concurrency becomes
// the new stable value, otherwise the controller reverts. Decisions are
// pure functions of (options, observation history, seed) — the same
// contract the autoscaler and rebalancer honor — so a gated run
// replays byte-identically.

#ifndef STREAMBID_GATE_THROUGHPUT_PROBE_H_
#define STREAMBID_GATE_THROUGHPUT_PROBE_H_

#include <cstdint>
#include <string>

namespace streambid::gate {

/// Probe configuration (names mirror the MongoDB server parameters in
/// SNIPPETS.md).
struct ProbeOptions {
  /// Master switch for owners that wire the probe optionally (the
  /// probe object itself always runs; StreamIngress checks this).
  bool enabled = false;
  /// Concurrency the first epoch runs at (clamped into the bounds).
  int initial_concurrency = 64;
  int min_concurrency = 4;
  int max_concurrency = 4096;
  /// Probe step as a fraction of the stable concurrency: a probe epoch
  /// runs at round(stable * (1 ± step_ratio)), at least one away.
  double step_ratio = 0.25;
  /// Weight of the newest stable observation in the moving average.
  double ema_weight = 0.5;
  /// A probe must beat the moving average by this relative margin to be
  /// adopted (0 = any improvement wins).
  double min_gain_ratio = 0.0;
  /// Seeds the up-vs-down coin when both directions are possible.
  uint64_t seed = 1;
};

enum class ProbeState { kStable, kProbingUp, kProbingDown };

/// Stable lowercase name ("stable", "probe-up", "probe-down").
const char* ProbeStateName(ProbeState state);

/// One epoch's outcome: what was observed, what was decided, and the
/// concurrency the next epoch runs at.
struct ProbeDecision {
  int epoch = 0;
  /// State entering the NEXT epoch (kProbingUp means the next epoch
  /// runs at the probed concurrency).
  ProbeState state = ProbeState::kStable;
  /// Concurrency for the next epoch.
  int concurrency = 0;
  /// The current stable (accepted) concurrency.
  int stable_concurrency = 0;
  double throughput = 0.0;      ///< This epoch's observation.
  double ema_throughput = 0.0;  ///< Moving average after the update.
  bool adopted = false;         ///< A probe became the new stable value.
  /// "probe-up" / "probe-down" (probe launched), "adopted" / "reverted"
  /// (probe judged), "pinned" (min == max).
  std::string reason;
};

/// The concurrency controller. Not thread-safe: the gate drives one
/// Observe per period epoch from its single closing thread.
class ThroughputProbe {
 public:
  /// Preconditions (checked): 1 <= min <= max, 0 < step_ratio <= 1,
  /// 0 < ema_weight <= 1, min_gain_ratio >= 0.
  explicit ThroughputProbe(const ProbeOptions& options);

  /// Closes one epoch with its measured throughput (any monotone unit —
  /// the gate feeds admitted submissions per period) and returns the
  /// decision for the next epoch. Pure function of the observation
  /// history and the seed.
  ProbeDecision Observe(double throughput);

  /// Concurrency the next epoch should run at.
  int concurrency() const { return concurrency_; }
  int stable_concurrency() const { return stable_; }
  ProbeState state() const { return state_; }
  double ema_throughput() const { return ema_; }
  int epochs() const { return epochs_; }
  const ProbeOptions& options() const { return options_; }

 private:
  int ClampStep(double target) const;
  int StepUp() const;
  int StepDown() const;

  ProbeOptions options_;
  ProbeState state_ = ProbeState::kStable;
  int stable_ = 0;       ///< Last accepted concurrency.
  int concurrency_ = 0;  ///< What the next epoch runs at.
  double ema_ = 0.0;
  bool has_ema_ = false;
  int epochs_ = 0;
};

}  // namespace streambid::gate

#endif  // STREAMBID_GATE_THROUGHPUT_PROBE_H_
