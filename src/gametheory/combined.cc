// Copyright 2026 The streambid Authors

#include "gametheory/combined.h"

#include "common/rng.h"
#include "gametheory/payoff.h"

namespace streambid::gametheory {

CombinedAttackReport SearchCombinedAttack(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    auction::QueryId attacker_query, const CombinedAttackOptions& options,
    uint64_t seed) {
  CombinedAttackReport report;
  report.attacker_query = attacker_query;
  const auction::UserId attacker = instance.user(attacker_query);
  const double true_value = instance.bid(attacker_query);
  const std::vector<double> values = TruthfulValues(instance);

  report.truthful_payoff =
      ExpectedUserPayoff(service, mechanism, instance, capacity, values,
                         attacker, seed, options.trials);
  report.best_payoff = report.truthful_payoff;
  report.best_bid = true_value;

  for (double factor : options.bid_factors) {
    const double bid = true_value * factor;
    const auction::AuctionInstance lied =
        instance.WithBid(attacker_query, bid);
    for (int fakes : options.fake_counts) {
      for (double fake_value : options.fake_values) {
        double payoff;
        if (fakes == 0) {
          if (fake_value != options.fake_values.front()) continue;
          payoff = ExpectedUserPayoff(service, mechanism, lied, capacity,
                                      values, attacker, seed,
                                      options.trials);
        } else {
          const SybilAttack attack =
              FairShareAttack(lied, attacker_query, fakes, fake_value);
          auto attacked = lied.WithExtraQueries(attack.fake_queries);
          if (!attacked.ok()) continue;
          std::vector<double> attacked_values = values;
          attacked_values.resize(
              static_cast<size_t>(attacked->num_queries()), 0.0);
          payoff = ExpectedUserPayoff(service, mechanism, *attacked,
                                      capacity, attacked_values, attacker,
                                      seed, options.trials);
        }
        if (payoff > report.best_payoff) {
          report.best_payoff = payoff;
          report.best_bid = bid;
          report.best_num_fakes = fakes;
          report.best_fake_value = fakes > 0 ? fake_value : 0.0;
        }
      }
    }
  }
  return report;
}

CombinedAttackReport SweepCombinedAttacks(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    const CombinedAttackOptions& options, uint64_t seed,
    int max_attackers) {
  std::vector<auction::QueryId> targets;
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    targets.push_back(i);
  }
  Rng sampler(seed ^ 0xC0B1AEDull);
  sampler.Shuffle(targets);
  if (max_attackers > 0 &&
      max_attackers < static_cast<int>(targets.size())) {
    targets.resize(static_cast<size_t>(max_attackers));
  }
  CombinedAttackReport best;
  bool first = true;
  for (auction::QueryId q : targets) {
    CombinedAttackReport r = SearchCombinedAttack(
        service, mechanism, instance, capacity, q, options, seed);
    if (first || r.Gain() > best.Gain()) {
      best = r;
      first = false;
    }
  }
  return best;
}

}  // namespace streambid::gametheory
