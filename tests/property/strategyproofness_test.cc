// Copyright 2026 The streambid Authors
// Empirical strategyproofness (paper Theorems 4, 7, 8, 9, 10): across
// seeded random shared-operator workloads, no query can profit from any
// deviating bid in the search grid. Parameterized over workload seeds.

#include <gtest/gtest.h>

#include "auction/registry.h"
#include "gametheory/deviation.h"
#include "workload/generator.h"

namespace streambid {
namespace {

using auction::AuctionInstance;
using gametheory::DeviationOptions;
using gametheory::DeviationReport;
using gametheory::SweepDeviations;

/// A small but genuinely shared workload (~40 queries, ~25 operators).
AuctionInstance RandomSharedInstance(uint64_t seed) {
  workload::WorkloadParams p;
  p.num_queries = 40;
  p.base_num_operators = 18;
  p.base_max_sharing = 10;
  Rng rng(seed);
  auto inst = workload::GenerateBaseWorkload(p, rng).ToInstance();
  EXPECT_TRUE(inst.ok());
  return std::move(inst).value();
}

/// Capacity that leaves roughly half the demand unserved — the
/// competitive regime where manipulation would pay.
double TightCapacity(const AuctionInstance& inst) {
  return inst.total_union_load() * 0.5;
}

class StrategyproofSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyproofSweep, CafHasNoProfitableDeviation) {
  const AuctionInstance inst = RandomSharedInstance(GetParam());
  auto m = auction::MakeMechanism("caf");
  ASSERT_TRUE(m.ok());
  Rng rng(GetParam() + 1000);
  DeviationOptions options;
  options.probe_other_bids = false;  // Factor grid suffices; keeps the
                                     // sweep O(queries * factors).
  const DeviationReport r =
      SweepDeviations(**m, inst, TightCapacity(inst), options, rng, 12);
  EXPECT_FALSE(r.profitable_deviation_found)
      << "query " << r.query << " gains " << r.Gain() << " bidding "
      << r.best_deviant_bid << " (value " << r.true_value << ")";
}

TEST_P(StrategyproofSweep, CatHasNoProfitableDeviation) {
  const AuctionInstance inst = RandomSharedInstance(GetParam());
  auto m = auction::MakeMechanism("cat");
  ASSERT_TRUE(m.ok());
  Rng rng(GetParam() + 2000);
  DeviationOptions options;
  options.probe_other_bids = false;
  const DeviationReport r =
      SweepDeviations(**m, inst, TightCapacity(inst), options, rng, 12);
  EXPECT_FALSE(r.profitable_deviation_found)
      << "query " << r.query << " gains " << r.Gain();
}

TEST_P(StrategyproofSweep, GvHasNoProfitableDeviation) {
  const AuctionInstance inst = RandomSharedInstance(GetParam());
  auto m = auction::MakeMechanism("gv");
  ASSERT_TRUE(m.ok());
  Rng rng(GetParam() + 3000);
  DeviationOptions options;
  options.probe_other_bids = false;
  const DeviationReport r =
      SweepDeviations(**m, inst, TightCapacity(inst), options, rng, 12);
  EXPECT_FALSE(r.profitable_deviation_found)
      << "query " << r.query << " gains " << r.Gain();
}

TEST_P(StrategyproofSweep, CafPlusHasNoProfitableDeviation) {
  const AuctionInstance inst = RandomSharedInstance(GetParam());
  auto m = auction::MakeMechanism("caf+");
  ASSERT_TRUE(m.ok());
  Rng rng(GetParam() + 4000);
  DeviationOptions options;
  options.probe_other_bids = false;
  const DeviationReport r =
      SweepDeviations(**m, inst, TightCapacity(inst), options, rng, 12);
  EXPECT_FALSE(r.profitable_deviation_found)
      << "query " << r.query << " gains " << r.Gain() << " bidding "
      << r.best_deviant_bid << " (value " << r.true_value << ")";
}

TEST_P(StrategyproofSweep, CatPlusHasNoProfitableDeviation) {
  const AuctionInstance inst = RandomSharedInstance(GetParam());
  auto m = auction::MakeMechanism("cat+");
  ASSERT_TRUE(m.ok());
  Rng rng(GetParam() + 5000);
  DeviationOptions options;
  options.probe_other_bids = false;
  const DeviationReport r =
      SweepDeviations(**m, inst, TightCapacity(inst), options, rng, 12);
  EXPECT_FALSE(r.profitable_deviation_found)
      << "query " << r.query << " gains " << r.Gain() << " bidding "
      << r.best_deviant_bid << " (value " << r.true_value << ")";
}

TEST_P(StrategyproofSweep, CarIsManipulableSomewhere) {
  // Control: across the full seed set the non-strategyproof CAR must be
  // manipulable at least once (§IV-A); asserting per-seed would be too
  // strong, so this test only accumulates evidence and the companion
  // aggregate test below asserts it.
  const AuctionInstance inst = RandomSharedInstance(GetParam());
  auto m = auction::MakeMechanism("car");
  ASSERT_TRUE(m.ok());
  Rng rng(GetParam() + 6000);
  DeviationOptions options;
  options.probe_other_bids = true;
  const DeviationReport r =
      SweepDeviations(**m, inst, TightCapacity(inst), options, rng, 12);
  RecordProperty("car_gain", std::to_string(r.Gain()));
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyproofSweep,
                         ::testing::Range<uint64_t>(1, 13));

TEST(CarManipulableAggregate, FindsAtLeastOneProfitableLie) {
  auto m = auction::MakeMechanism("car");
  ASSERT_TRUE(m.ok());
  DeviationOptions options;
  bool found = false;
  for (uint64_t seed = 1; seed <= 12 && !found; ++seed) {
    const AuctionInstance inst = RandomSharedInstance(seed);
    Rng rng(seed + 7000);
    const DeviationReport r = SweepDeviations(
        **m, inst, TightCapacity(inst), options, rng, 20);
    found = r.profitable_deviation_found;
  }
  EXPECT_TRUE(found) << "CAR resisted manipulation on every seed — "
                        "the §IV-A counterexample should be easy to hit";
}

}  // namespace
}  // namespace streambid
