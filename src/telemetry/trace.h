// Copyright 2026 The streambid Authors
// Structured period tracing: every phase of a cluster period — gate
// drain, per-shard prepare, admit, engine completion, the autoscale
// decision, the rebalance stage — records one span keyed by LOGICAL
// time (period, shard, epoch, phase). The logical key is the span's
// identity; wall-clock start/duration ride along as annotations only.
// That split is what makes traces replay-comparable: two runs of the
// same deterministic workload produce byte-identical identity
// sequences (IdentitySequence()) at every executor pool size, while
// the wall-clock annotations still tell an operator where the time
// went (ChromeTraceJson(), loadable in chrome://tracing or Perfetto).
//
// Threading: Record appends under a mutex (pool workers trace their
// shard phases concurrently); readers sort by the logical key, so the
// nondeterministic arrival order never leaks into any exported view.
//
// Zero-perturbation: a tracer constructed disabled (or a null tracer
// pointer) records nothing, and ScopedSpan skips even the clock reads,
// so disabled tracing executes no extra instructions on the period
// path. Enabled tracing writes only to the tracer's own buffer — it
// never feeds back into admission, routing, or scaling decisions.

#ifndef STREAMBID_TELEMETRY_TRACE_H_
#define STREAMBID_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/lock_order.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace streambid::telemetry {

/// The period phases, in their canonical within-(period, shard) order.
/// The enum value is the tiebreak of the logical sort key, so phases of
/// one shard's period always export in pipeline order.
enum class Phase : int {
  kGateDrain = 0,  ///< Gate buffer swap + SubmitBatch into the cluster.
  kPrepare = 1,    ///< Auction build (+ autoscaled candidate grid).
  kAutoscale = 2,  ///< The capacity decision inside prepare.
  kAdmit = 3,      ///< The admission auction on a worker's service.
  kComplete = 4,   ///< Transition + engine execution + billing.
  kRebalance = 5,  ///< The period tail's migration plan + fan-out.
};

const char* PhaseName(Phase phase);

/// One recorded span. (period, shard, epoch, phase) is the identity;
/// start_ms/duration_ms/seq are wall-clock annotations that vary run to
/// run and are excluded from IdentitySequence().
struct TraceSpan {
  Phase phase = Phase::kGateDrain;
  int period = 0;
  int shard = -1;  ///< -1 for cluster/gate-level spans.
  uint64_t epoch = 0;
  double start_ms = 0.0;     ///< Wall offset from tracer construction.
  double duration_ms = 0.0;  ///< Wall duration.
  int64_t seq = 0;           ///< Arrival order (nondeterministic).
};

/// The span recorder. Thread-safe.
class PeriodTracer {
 public:
  explicit PeriodTracer(bool enabled = true) : enabled_(enabled) {}
  PeriodTracer(const PeriodTracer&) = delete;
  PeriodTracer& operator=(const PeriodTracer&) = delete;

  bool enabled() const { return enabled_; }
  /// Wall milliseconds since construction (the span time base).
  double NowMs() const { return since_.ElapsedMillis(); }

  /// Appends one span. No-op when disabled.
  void Record(Phase phase, int period, int shard, uint64_t epoch,
              double start_ms, double duration_ms);

  int64_t span_count() const;
  void Clear();

  /// Spans sorted by the logical key (period, shard, phase) — the
  /// deterministic export order, independent of recording interleaving.
  std::vector<TraceSpan> SortedSpans() const;

  /// One line per span, "period=<p> shard=<s> epoch=<e> phase=<name>",
  /// in logical order: byte-identical across replays of the same
  /// deterministic workload at any pool size.
  std::string IdentitySequence() const;

  /// Chrome trace format (JSON object with traceEvents of complete "X"
  /// events; ts/dur in microseconds, tid = shard + 1 so gate-level
  /// spans land on track 0). Loadable in chrome://tracing / Perfetto.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path` (kInternal on I/O failure).
  Status WriteChromeTrace(const std::string& path) const;

 private:
  const bool enabled_;
  Timer since_;
  mutable Mutex mutex_ ACQUIRED_AFTER(kTelemetryRankBoundary)
      ACQUIRED_BEFORE(kLeafRankBoundary) =
          Mutex{LockRank::kPeriodTracer, "telemetry/tracer"};
  std::vector<TraceSpan> spans_ GUARDED_BY(mutex_);
  int64_t next_seq_ GUARDED_BY(mutex_) = 0;
};

/// RAII span: times its scope and records into the tracer at
/// destruction. A null or disabled tracer makes construction and
/// destruction free (no clock reads).
class ScopedSpan {
 public:
  ScopedSpan(PeriodTracer* tracer, Phase phase, int period, int shard,
             uint64_t epoch)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        phase_(phase),
        period_(period),
        shard_(shard),
        epoch_(epoch),
        start_ms_(tracer_ != nullptr ? tracer_->NowMs() : 0.0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->Record(phase_, period_, shard_, epoch_, start_ms_,
                      tracer_->NowMs() - start_ms_);
    }
  }

 private:
  PeriodTracer* tracer_;
  Phase phase_;
  int period_;
  int shard_;
  uint64_t epoch_;
  double start_ms_;
};

}  // namespace streambid::telemetry

#endif  // STREAMBID_TELEMETRY_TRACE_H_
