// Copyright 2026 The streambid Authors

#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/zipf.h"

namespace streambid::workload {

RawWorkload GenerateBaseWorkload(const WorkloadParams& params, Rng& rng) {
  STREAMBID_CHECK_GT(params.num_queries, 0);
  STREAMBID_CHECK_GT(params.base_num_operators, 0);
  STREAMBID_CHECK_GE(params.base_max_sharing, 1);
  STREAMBID_CHECK_GE(params.bid_load_correlation, 0.0);

  const ZipfDistribution bid_dist(params.max_bid, params.bid_skew);
  const ZipfDistribution load_dist(params.max_operator_load,
                                   params.load_skew);
  const ZipfDistribution degree_dist(params.base_max_sharing,
                                     params.sharing_skew);

  RawWorkload w;
  w.valuations.resize(static_cast<size_t>(params.num_queries));
  w.users.resize(static_cast<size_t>(params.num_queries));
  for (int i = 0; i < params.num_queries; ++i) {
    w.users[static_cast<size_t>(i)] = i;  // One user per query.
  }

  // Operators first: valuations may depend on the query loads they
  // imply (bid_load_correlation).
  std::vector<bool> covered(static_cast<size_t>(params.num_queries), false);
  for (int j = 0; j < params.base_num_operators; ++j) {
    RawOperator op;
    op.load = load_dist.Sample(rng);
    const int degree =
        std::min(degree_dist.Sample(rng), params.num_queries);
    const std::vector<int> chosen =
        rng.SampleDistinct(params.num_queries, degree);
    op.subscribers.reserve(chosen.size());
    for (int q : chosen) {
      op.subscribers.push_back(static_cast<auction::QueryId>(q));
      covered[static_cast<size_t>(q)] = true;
    }
    w.operators.push_back(std::move(op));
  }

  // Coverage pass: a query with no operators would be malformed (and
  // could never be priced); give each a private operator.
  for (int q = 0; q < params.num_queries; ++q) {
    if (covered[static_cast<size_t>(q)]) continue;
    RawOperator op;
    op.load = load_dist.Sample(rng);
    op.subscribers.push_back(static_cast<auction::QueryId>(q));
    w.operators.push_back(std::move(op));
  }

  // Total loads CT_i (invariant under the splitting procedure, so the
  // valuations below are consistent across the whole sharing sweep).
  std::vector<double> total_load(static_cast<size_t>(params.num_queries),
                                 0.0);
  double demand = 0.0;
  for (const RawOperator& op : w.operators) {
    for (auction::QueryId q : op.subscribers) {
      total_load[static_cast<size_t>(q)] += op.load;
      demand += op.load;
    }
  }
  const double mean_load = demand / params.num_queries;

  for (int i = 0; i < params.num_queries; ++i) {
    const double base = bid_dist.Sample(rng);
    double bid = base;
    if (params.bid_load_correlation > 0.0) {
      bid = base * std::pow(total_load[static_cast<size_t>(i)] / mean_load,
                            params.bid_load_correlation);
    }
    w.valuations[static_cast<size_t>(i)] = std::max(1.0, bid);
  }
  return w;
}

}  // namespace streambid::workload
