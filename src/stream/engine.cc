// Copyright 2026 The streambid Authors

#include "stream/engine.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "stream/operators/distinct.h"
#include "stream/operators/join.h"
#include "stream/operators/project.h"
#include "stream/operators/topk.h"
#include "stream/operators/union_op.h"

namespace streambid::stream {

/// One runtime graph node: either a source tap (op == nullptr) or an
/// operator instance. Nodes are owned by the signature map; topo_ holds
/// raw pointers in creation (= topological) order.
struct Engine::Node {
  std::string signature;
  OperatorPtr op;          // Null for source taps.
  int source_index = -1;   // Valid for source taps.
  SchemaPtr schema;        // Output schema.
  std::vector<std::pair<Node*, int>> downstream;  // (consumer, port).
  std::deque<std::pair<int, Tuple>> inbox;        // (port, tuple).
  std::set<int> subscribers;  // Query ids whose plans include this node.
  std::set<int> sink_of;      // Query ids whose output node is this.
  double run_cost = 0.0;      // Cost consumed during the current Run().
  double total_cost = 0.0;
  int64_t processed = 0;
};

Engine::Engine(EngineOptions options) : options_(options) {
  STREAMBID_CHECK_GT(options_.capacity, 0.0);
  STREAMBID_CHECK_GT(options_.tick, 0.0);
}

Engine::~Engine() = default;

void Engine::SetCapacity(double capacity) {
  STREAMBID_CHECK_GT(capacity, 0.0);
  options_.capacity = capacity;
}

Status Engine::RegisterSource(StreamSourcePtr source) {
  STREAMBID_CHECK(source != nullptr);
  const std::string& name = source->name();
  if (source_index_.count(name) > 0) {
    return Status::AlreadyExists("source already registered: " + name);
  }
  source_index_[name] = static_cast<int>(sources_.size());
  sources_.push_back(std::move(source));
  held_.emplace_back();
  return Status::Ok();
}

const StreamSource* Engine::source(const std::string& name) const {
  auto it = source_index_.find(name);
  return it == source_index_.end() ? nullptr
                                   : sources_[static_cast<size_t>(it->second)]
                                         .get();
}

Result<OperatorPtr> Engine::MakeOperator(
    const OpSpec& spec, const std::vector<SchemaPtr>& inputs) const {
  auto cost = [&spec](double fallback) {
    return spec.cost_override > 0.0 ? spec.cost_override : fallback;
  };
  switch (spec.kind) {
    case OpKind::kSource:
      return Status::Internal("source specs have no operator");
    case OpKind::kSelect: {
      if (!inputs[0]->HasField(spec.field)) {
        return Status::InvalidArgument("select: unknown field " +
                                       spec.field);
      }
      return OperatorPtr(new SelectOperator(inputs[0], spec.field,
                                            spec.compare_op, spec.operand,
                                            cost(DefaultCosts::kSelect)));
    }
    case OpKind::kProject: {
      for (const std::string& f : spec.fields) {
        if (!inputs[0]->HasField(f)) {
          return Status::InvalidArgument("project: unknown field " + f);
        }
      }
      return OperatorPtr(new ProjectOperator(inputs[0], spec.fields,
                                             cost(DefaultCosts::kProject)));
    }
    case OpKind::kMap: {
      if (!inputs[0]->HasField(spec.field)) {
        return Status::InvalidArgument("map: unknown field " + spec.field);
      }
      return OperatorPtr(new MapOperator(inputs[0], spec.field, spec.map_fn,
                                         spec.map_operand,
                                         spec.output_field,
                                         cost(DefaultCosts::kMap)));
    }
    case OpKind::kAggregate: {
      if (spec.agg_fn != AggFn::kCount || !spec.field.empty()) {
        if (!inputs[0]->HasField(spec.field)) {
          return Status::InvalidArgument("aggregate: unknown field " +
                                         spec.field);
        }
      }
      if (!spec.group_field.empty() &&
          !inputs[0]->HasField(spec.group_field)) {
        return Status::InvalidArgument("aggregate: unknown group field " +
                                       spec.group_field);
      }
      return OperatorPtr(new AggregateOperator(
          inputs[0], spec.agg_fn, spec.field, spec.group_field, spec.window,
          cost(DefaultCosts::kAggregate)));
    }
    case OpKind::kJoin: {
      if (!inputs[0]->HasField(spec.left_key)) {
        return Status::InvalidArgument("join: unknown left key " +
                                       spec.left_key);
      }
      if (!inputs[1]->HasField(spec.right_key)) {
        return Status::InvalidArgument("join: unknown right key " +
                                       spec.right_key);
      }
      return OperatorPtr(new JoinOperator(inputs[0], inputs[1],
                                          spec.left_key, spec.right_key,
                                          spec.join_window,
                                          cost(DefaultCosts::kJoin)));
    }
    case OpKind::kUnion: {
      if (!(*inputs[0] == *inputs[1])) {
        return Status::InvalidArgument("union: input schemas differ");
      }
      return OperatorPtr(
          new UnionOperator(inputs[0], inputs[1],
                            cost(DefaultCosts::kUnion)));
    }
    case OpKind::kTopK: {
      if (!inputs[0]->HasField(spec.field)) {
        return Status::InvalidArgument("topk: unknown rank field " +
                                       spec.field);
      }
      if (spec.top_k <= 0) {
        return Status::InvalidArgument("topk: k must be positive");
      }
      return OperatorPtr(new TopKOperator(inputs[0], spec.top_k,
                                          spec.field, spec.window.size,
                                          cost(DefaultCosts::kTopK)));
    }
    case OpKind::kDistinct: {
      if (!inputs[0]->HasField(spec.field)) {
        return Status::InvalidArgument("distinct: unknown key field " +
                                       spec.field);
      }
      return OperatorPtr(new DistinctOperator(inputs[0], spec.field,
                                              spec.window.size,
                                              cost(DefaultCosts::kDistinct)));
    }
  }
  return Status::Internal("unknown operator kind");
}

Result<Engine::Node*> Engine::Instantiate(int query_id,
                                          const QueryPlan& plan, int idx) {
  const QueryPlan::Node& pn = plan.nodes[static_cast<size_t>(idx)];
  const std::string sig = plan.NodeSignature(idx);

  // Instantiate (or revisit) children first so subscribers propagate
  // through the whole subtree.
  std::vector<Node*> children;
  std::vector<SchemaPtr> child_schemas;
  for (int in : pn.inputs) {
    STREAMBID_ASSIGN_OR_RETURN(Node * child,
                               Instantiate(query_id, plan, in));
    children.push_back(child);
    child_schemas.push_back(child->schema);
  }

  auto it = nodes_.find(sig);
  if (it != nodes_.end()) {
    it->second->subscribers.insert(query_id);
    return it->second.get();
  }

  auto node = std::make_unique<Node>();
  node->signature = sig;
  if (pn.spec.kind == OpKind::kSource) {
    auto src = source_index_.find(pn.spec.source_name);
    if (src == source_index_.end()) {
      return Status::NotFound("unknown source: " + pn.spec.source_name);
    }
    node->source_index = src->second;
    node->schema = sources_[static_cast<size_t>(src->second)]->schema();
  } else {
    STREAMBID_ASSIGN_OR_RETURN(OperatorPtr op,
                               MakeOperator(pn.spec, child_schemas));
    node->schema = op->output_schema();
    node->op = std::move(op);
  }
  node->subscribers.insert(query_id);

  Node* raw = node.get();
  for (size_t port = 0; port < children.size(); ++port) {
    children[port]->downstream.push_back({raw, static_cast<int>(port)});
  }
  nodes_.emplace(sig, std::move(node));
  topo_.push_back(raw);
  return raw;
}

Result<SchemaPtr> Engine::DeriveOutputSchema(const QueryPlan& plan) const {
  STREAMBID_RETURN_IF_ERROR(plan.Validate());
  // Derive schemas bottom-up without touching engine state.
  std::vector<SchemaPtr> schemas(plan.nodes.size());
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const QueryPlan::Node& pn = plan.nodes[i];
    if (pn.spec.kind == OpKind::kSource) {
      const StreamSource* src = source(pn.spec.source_name);
      if (src == nullptr) {
        return Status::NotFound("unknown source: " + pn.spec.source_name);
      }
      schemas[i] = src->schema();
      continue;
    }
    std::vector<SchemaPtr> inputs;
    for (int in : pn.inputs) {
      inputs.push_back(schemas[static_cast<size_t>(in)]);
    }
    STREAMBID_ASSIGN_OR_RETURN(OperatorPtr op,
                               MakeOperator(pn.spec, inputs));
    schemas[i] = op->output_schema();
  }
  return schemas[static_cast<size_t>(plan.output_node)];
}

Status Engine::InstallQuery(int query_id, const QueryPlan& plan) {
  if (sinks_.count(query_id) > 0) {
    return Status::AlreadyExists("query id already installed: " +
                                 std::to_string(query_id));
  }
  STREAMBID_RETURN_IF_ERROR(plan.Validate());
  // Validate fully (fields, sources) before mutating shared state.
  STREAMBID_RETURN_IF_ERROR(DeriveOutputSchema(plan).status());

  STREAMBID_ASSIGN_OR_RETURN(
      Node * out, Instantiate(query_id, plan, plan.output_node));
  out->sink_of.insert(query_id);
  sinks_[query_id] = SinkStats{};
  return Status::Ok();
}

Status Engine::UninstallQuery(int query_id) {
  if (sinks_.erase(query_id) == 0) {
    return Status::NotFound("query not installed: " +
                            std::to_string(query_id));
  }
  for (Node* node : topo_) {
    node->subscribers.erase(query_id);
    node->sink_of.erase(query_id);
  }
  // Destroy orphaned nodes (reverse topological order so downstream
  // edges are unhooked before their targets die).
  for (auto it = topo_.rbegin(); it != topo_.rend();) {
    Node* node = *it;
    if (!node->subscribers.empty()) {
      ++it;
      continue;
    }
    // Unhook from upstream.
    for (Node* up : topo_) {
      auto& ds = up->downstream;
      ds.erase(std::remove_if(ds.begin(), ds.end(),
                              [node](const std::pair<Node*, int>& e) {
                                return e.first == node;
                              }),
               ds.end());
    }
    const std::string sig = node->signature;
    it = decltype(it)(topo_.erase(std::next(it).base()));
    nodes_.erase(sig);
  }
  return Status::Ok();
}

bool Engine::IsInstalled(int query_id) const {
  return sinks_.count(query_id) > 0;
}

std::vector<int> Engine::InstalledQueries() const {
  std::vector<int> out;
  out.reserve(sinks_.size());
  for (const auto& [id, stats] : sinks_) out.push_back(id);
  return out;
}

void Engine::BeginTransition() {
  if (in_transition_) return;
  in_transition_ = true;
  // Drain in-flight tuples through the network before modification
  // (§II: subnetwork queues empty through downstream connection
  // points).
  ProcessPass(now_);
}

Status Engine::CommitTransition() {
  if (!in_transition_) {
    return Status::FailedPrecondition("no transition in progress");
  }
  // Replay held tuples into the modified network before new arrivals.
  for (size_t s = 0; s < held_.size(); ++s) {
    for (Node* node : topo_) {
      if (node->source_index == static_cast<int>(s)) {
        for (const Tuple& t : held_[s]) {
          node->inbox.push_back({0, t});
        }
      }
    }
    held_[s].clear();
  }
  in_transition_ = false;
  ProcessPass(now_);
  return Status::Ok();
}

void Engine::Deliver(Node* node, const Tuple& tuple) {
  for (auto& [consumer, port] : node->downstream) {
    consumer->inbox.push_back({port, tuple});
  }
  if (!node->sink_of.empty()) {
    for (int qid : node->sink_of) {
      SinkStats& sink = sinks_[qid];
      ++sink.tuples;
      sink.recent.push_back(tuple);
      while (static_cast<int>(sink.recent.size()) > options_.sink_history) {
        sink.recent.pop_front();
      }
    }
  }
}

double Engine::ProcessPass(VirtualTime now) {
  // Edges always point from earlier to later topo_ entries, so one
  // ordered pass drains everything, including window emissions.
  double pass_cost = 0.0;
  std::vector<Tuple> outputs;
  for (Node* node : topo_) {
    if (node->op == nullptr) {
      // Source tap: forward.
      while (!node->inbox.empty()) {
        const Tuple tuple = std::move(node->inbox.front().second);
        node->inbox.pop_front();
        ++node->processed;
        Deliver(node, tuple);
      }
      continue;
    }
    while (!node->inbox.empty()) {
      auto [port, tuple] = std::move(node->inbox.front());
      node->inbox.pop_front();
      outputs.clear();
      node->op->Process(port, tuple, &outputs);
      node->op->RecordInput(1);
      node->op->RecordOutput(static_cast<int64_t>(outputs.size()));
      node->run_cost += node->op->cost_per_tuple();
      node->total_cost += node->op->cost_per_tuple();
      pass_cost += node->op->cost_per_tuple();
      ++node->processed;
      for (const Tuple& out : outputs) Deliver(node, out);
    }
    outputs.clear();
    node->op->AdvanceTime(now, &outputs);
    if (!outputs.empty()) {
      node->op->RecordOutput(static_cast<int64_t>(outputs.size()));
      for (const Tuple& out : outputs) Deliver(node, out);
    }
  }
  return pass_cost;
}

void Engine::Run(VirtualTime duration) {
  STREAMBID_CHECK_GE(duration, 0.0);
  for (Node* node : topo_) node->run_cost = 0.0;
  last_run_duration_ = duration;
  // Snapshot: a later SetCapacity (autoscaling) must not retroactively
  // rescale this run's utilization.
  last_run_capacity_ = options_.capacity;
  last_run_shed_ = 0;
  last_run_ingested_ = 0;
  shed_probability_ = 0.0;
  const double tick_budget = options_.capacity * options_.tick;
  const VirtualTime end = now_ + duration;
  while (now_ < end) {
    now_ = std::min(now_ + options_.tick, end);
    for (size_t s = 0; s < sources_.size(); ++s) {
      std::vector<Tuple> batch = sources_[s]->EmitUntil(now_);
      if (batch.empty()) continue;
      if (in_transition_) {
        // Connection point holds arrivals during the transition.
        held_[s].insert(held_[s].end(), batch.begin(), batch.end());
        continue;
      }
      for (Node* node : topo_) {
        if (node->source_index == static_cast<int>(s)) {
          for (const Tuple& t : batch) {
            // Closed-loop tuple shedding (Aurora-style random drops):
            // the drop probability tracks last tick's overload ratio.
            if (options_.shed_on_overload && shed_probability_ > 0.0 &&
                shed_rng_.NextBool(shed_probability_)) {
              ++last_run_shed_;
              continue;
            }
            node->inbox.push_back({0, t});
            ++last_run_ingested_;
          }
        }
      }
    }
    if (!in_transition_) {
      const double tick_cost = ProcessPass(now_);
      if (options_.shed_on_overload && tick_budget > 0.0) {
        // The measured cost already reflects the current drop rate;
        // de-bias it to estimate the offered demand, then aim the drop
        // probability so post-shedding cost equals the budget.
        const double kept = 1.0 - shed_probability_;
        const double offered =
            kept > 1e-6 ? tick_cost / kept : tick_cost;
        const double target =
            offered > tick_budget ? 1.0 - tick_budget / offered : 0.0;
        // Fast-attack, fast-release controller.
        shed_probability_ = 0.5 * shed_probability_ + 0.5 * target;
      }
    }
  }
  last_run_cost_ = 0.0;
  for (Node* node : topo_) last_run_cost_ += node->run_cost;
}

const SinkStats* Engine::sink(int query_id) const {
  auto it = sinks_.find(query_id);
  return it == sinks_.end() ? nullptr : &it->second;
}

std::vector<OperatorLoadInfo> Engine::OperatorLoads() const {
  std::vector<OperatorLoadInfo> out;
  out.reserve(topo_.size());
  for (const Node* node : topo_) {
    OperatorLoadInfo info;
    info.signature = node->signature;
    info.is_source = node->op == nullptr;
    info.name = info.is_source
                    ? "source(" +
                          sources_[static_cast<size_t>(node->source_index)]
                              ->name() +
                          ")"
                    : node->op->name();
    info.cost_per_tuple =
        info.is_source ? 0.0 : node->op->cost_per_tuple();
    info.tuples_processed = node->processed;
    info.measured_load = last_run_duration_ > 0.0
                             ? node->run_cost / last_run_duration_
                             : 0.0;
    info.sharing_degree = static_cast<int>(node->subscribers.size());
    out.push_back(std::move(info));
  }
  return out;
}

Result<double> Engine::MeasuredLoad(const std::string& signature) const {
  auto it = nodes_.find(signature);
  if (it == nodes_.end()) {
    return Status::NotFound("no such operator: " + signature);
  }
  if (last_run_duration_ <= 0.0) {
    return Status::FailedPrecondition("engine has not run yet");
  }
  return it->second->run_cost / last_run_duration_;
}

double Engine::LastRunUtilization() const {
  if (last_run_duration_ <= 0.0 || last_run_capacity_ <= 0.0) return 0.0;
  return last_run_cost_ / (last_run_duration_ * last_run_capacity_);
}

int Engine::num_shared_nodes() const {
  int n = 0;
  for (const Node* node : topo_) {
    if (node->subscribers.size() > 1) ++n;
  }
  return n;
}

}  // namespace streambid::stream
