// Copyright 2026 The streambid Authors

#include "workload/splitting.h"

#include <utility>

#include "common/check.h"

namespace streambid::workload {

std::vector<int> HalvingChain(int d, int max_degree) {
  STREAMBID_CHECK_GE(d, 1);
  STREAMBID_CHECK_GE(max_degree, 1);
  if (d <= max_degree) return {d};
  // One halving-chain pass: d -> d/2, d/4, ..., 1, 1 (floors; the tail
  // "1, 1" appears because the final remainder of 1 joins the chain).
  std::vector<int> parts;
  int remaining = d;
  while (remaining > 1) {
    const int part = remaining / 2;
    parts.push_back(part);
    remaining -= part;
  }
  parts.push_back(remaining);  // The final 1.
  // Recurse on any part still above the target (happens when
  // max_degree < d/2).
  std::vector<int> out;
  for (int part : parts) {
    if (part > max_degree) {
      std::vector<int> sub = HalvingChain(part, max_degree);
      out.insert(out.end(), sub.begin(), sub.end());
    } else {
      out.push_back(part);
    }
  }
  return out;
}

RawWorkload SplitToMaxDegree(const RawWorkload& base, int max_degree,
                             Rng& rng) {
  STREAMBID_CHECK_GE(max_degree, 1);
  RawWorkload out;
  out.valuations = base.valuations;
  out.users = base.users;
  out.operators.reserve(base.operators.size());

  for (const RawOperator& op : base.operators) {
    const int degree = static_cast<int>(op.subscribers.size());
    if (degree <= max_degree) {
      out.operators.push_back(op);
      continue;
    }
    const std::vector<int> parts = HalvingChain(degree, max_degree);
    // Distribute the subscribers randomly across the parts.
    std::vector<auction::QueryId> shuffled = op.subscribers;
    rng.Shuffle(shuffled);
    size_t next = 0;
    for (int part : parts) {
      RawOperator piece;
      piece.load = op.load;  // Same load as the original (§VI-A).
      piece.subscribers.assign(
          shuffled.begin() + static_cast<long>(next),
          shuffled.begin() + static_cast<long>(next + part));
      next += static_cast<size_t>(part);
      out.operators.push_back(std::move(piece));
    }
    STREAMBID_CHECK_EQ(next, shuffled.size());
  }
  return out;
}

}  // namespace streambid::workload
