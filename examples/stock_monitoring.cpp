// Copyright 2026 The streambid Authors
// Stock-monitoring scenario (the paper's §I/§II motivating workload):
// tenants register continuous queries over shared stock-quote and news
// streams; the provider estimates operator loads, auctions admission
// with the sybil-strategyproof CAT mechanism, installs the winners
// through the §II transition phase, and executes a (compressed) trading
// day — then re-auctions using MEASURED loads.
//
// Build & run:  ./build/examples/stock_monitoring

#include <cstdio>

#include "common/table.h"
#include "service/admission_service.h"
#include "stream/load_estimator.h"
#include "stream/query_builder.h"

int main() {
  using namespace streambid;
  using namespace streambid::stream;

  // --- The shared infrastructure: two hot streams. -------------------
  Engine engine(EngineOptions{/*capacity=*/8.0, /*tick=*/1.0,
                              /*sink_history=*/8});
  const std::vector<std::string> symbols = {"IBM", "AAPL", "MSFT",
                                            "GOOG", "AMZN"};
  (void)engine.RegisterSource(
      MakeStockQuoteSource("quotes", symbols, /*rate=*/150.0, 1));
  (void)engine.RegisterSource(
      MakeNewsSource("news", symbols, /*listed_fraction=*/0.7,
                     /*rate=*/25.0, 2));

  // --- Tenant queries (note the shared select prefixes). --------------
  auto select_quotes = [](double threshold) {
    QueryBuilder b;
    const int src = b.Source("quotes");
    const int sel =
        b.Select(src, "price", CompareOp::kGt, Value(threshold));
    return std::pair<QueryBuilder, int>(std::move(b), sel);
  };

  std::vector<QuerySubmission> submissions;
  // Tenants 1 and 2: the Example-1 pattern — both need high-value
  // quotes (shared operator A), then diverge.
  {
    auto [b, hi] = select_quotes(100.0);
    const int proj = b.Project(hi, {"symbol", "price"});
    submissions.push_back({/*query_id=*/1, /*user=*/1, /*bid=*/55.0,
                           b.Build(proj)});
  }
  {
    auto [b, hi] = select_quotes(100.0);
    const int news = b.Source("news");
    const int listed =
        b.Select(news, "listed", CompareOp::kEq, Value(int64_t{1}));
    const int joined = b.Join(hi, listed, "symbol", "company", 120.0);
    submissions.push_back({2, 2, 72.0, b.Build(joined)});
  }
  // Tenant 3: per-symbol average price over tumbling minutes.
  {
    QueryBuilder b;
    const int src = b.Source("quotes");
    const int agg =
        b.Aggregate(src, AggFn::kAvg, "price", "symbol", {60.0, 60.0});
    submissions.push_back({3, 3, 100.0, b.Build(agg)});
  }
  // Tenant 4: cheap duplicate of tenant 1's filter (pure free-riding on
  // sharing).
  {
    auto [b, hi] = select_quotes(100.0);
    const int proj = b.Project(hi, {"symbol", "price"});
    submissions.push_back({4, 4, 21.0, b.Build(proj)});
  }

  // --- Load estimation -> auction view (§II Figure 2). ----------------
  LoadEstimateOptions load_options;
  auto build = BuildAuctionInstance(engine, submissions, load_options);
  if (!build.ok()) {
    std::fprintf(stderr, "auction build failed: %s\n",
                 build.status().ToString().c_str());
    return 1;
  }
  std::printf("auction view: %s\n", build->instance.Summary().c_str());
  {
    TextTable ops({"op", "load", "shared_by"});
    for (auction::OperatorId j = 0;
         j < build->instance.num_operators(); ++j) {
      ops.AddRow({build->op_signatures[static_cast<size_t>(j)].substr(
                      0, 48),
                  FormatDouble(build->instance.operator_load(j), 2),
                  FormatInt(build->instance.sharing_degree(j))});
    }
    std::fputs(ops.ToAligned().c_str(), stdout);
  }

  // --- Admission auction (CAT: strategyproof + sybil immune). ---------
  service::AdmissionService service;
  service::AdmissionRequest request;
  request.instance = &build->instance;
  request.capacity = engine.options().capacity;
  request.mechanism = "cat";
  request.seed = 7;
  auto response = service.Admit(request);
  if (!response.ok()) {
    std::fprintf(stderr, "admission failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  const auction::Allocation& alloc = response->allocation;
  const auction::AllocationMetrics& metrics = response->metrics;
  std::printf("\nCAT admission at capacity %.0f: profit $%.2f, "
              "admission %s\n",
              engine.options().capacity, metrics.profit,
              FormatPercent(metrics.admission_rate, 0).c_str());

  // --- Transition phase: install winners, execute the day. ------------
  engine.BeginTransition();
  for (size_t i = 0; i < submissions.size(); ++i) {
    if (alloc.IsAdmitted(static_cast<auction::QueryId>(i))) {
      (void)engine.InstallQuery(submissions[i].query_id,
                                submissions[i].plan);
    }
  }
  (void)engine.CommitTransition();
  engine.Run(/*duration=*/600.0);  // A compressed "day".

  TextTable outcome(
      {"tenant", "bid", "admitted", "payment", "output_tuples"});
  for (size_t i = 0; i < submissions.size(); ++i) {
    const auto q = static_cast<auction::QueryId>(i);
    const SinkStats* sink = engine.sink(submissions[i].query_id);
    outcome.AddRow({std::to_string(submissions[i].query_id),
                    FormatDouble(submissions[i].bid, 0),
                    alloc.IsAdmitted(q) ? "yes" : "no",
                    FormatDouble(alloc.Payment(q), 2),
                    sink != nullptr ? FormatInt(sink->tuples) : "-"});
  }
  std::printf("\n");
  std::fputs(outcome.ToAligned().c_str(), stdout);
  std::printf("\nengine: %d runtime nodes (%d shared), measured "
              "utilization %s\n",
              engine.num_runtime_nodes(), engine.num_shared_nodes(),
              FormatPercent(engine.LastRunUtilization(), 1).c_str());

  // --- Re-estimate with measured loads (the §II "reasonably
  //     approximated by the system" loop). -----------------------------
  auto rebuilt = BuildAuctionInstance(engine, submissions, load_options);
  if (rebuilt.ok()) {
    std::printf("\nre-auction with measured loads:\n");
    TextTable diff({"op", "estimated", "measured"});
    for (auction::OperatorId j = 0;
         j < rebuilt->instance.num_operators(); ++j) {
      diff.AddRow(
          {rebuilt->op_signatures[static_cast<size_t>(j)].substr(0, 48),
           FormatDouble(build->instance.operator_load(j), 2),
           FormatDouble(rebuilt->instance.operator_load(j), 2)});
    }
    std::fputs(diff.ToAligned().c_str(), stdout);
  }
  return 0;
}
