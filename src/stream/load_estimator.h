// Copyright 2026 The streambid Authors
// Operator load estimation: the bridge between the stream engine and the
// admission auction. The paper assumes "each operator o_j has an
// associated load c_j ... and this load can at least be reasonably
// approximated by the system" (§II). We provide both an analytic
// estimate from source rates and per-operator cost/selectivity models
// (available before a query ever runs) and measured loads from the
// engine (available after execution), preferring measurement when the
// operator is already installed.

#ifndef STREAMBID_STREAM_LOAD_ESTIMATOR_H_
#define STREAMBID_STREAM_LOAD_ESTIMATOR_H_

#include <string>
#include <vector>

#include "auction/instance.h"
#include "common/status.h"
#include "stream/engine.h"
#include "stream/query.h"

namespace streambid::stream {

/// Tunables of the analytic load model.
struct LoadEstimateOptions {
  /// Assumed fraction of tuples passing a selection.
  double select_selectivity = 0.5;
  /// Assumed fraction of key pairs matching in a join window.
  double join_match_fraction = 0.01;
  /// Assumed distinct groups emitted per aggregate window.
  double aggregate_groups = 8.0;
  /// Prefer engine-measured loads for already-installed operators.
  bool prefer_measured = true;
  /// Loads are clamped to at least this (the auction requires positive
  /// loads).
  double min_load = 1e-6;
};

/// Analytic estimate for one plan node.
struct NodeLoadEstimate {
  std::string signature;
  std::string name;
  bool is_source = false;
  double input_rate = 0.0;   ///< Tuples/second entering the node.
  double output_rate = 0.0;  ///< Tuples/second leaving the node.
  double load = 0.0;         ///< Capacity units (cost * input rate).
};

/// Per-plan estimate, in plan-node order.
struct PlanLoadEstimate {
  std::vector<NodeLoadEstimate> nodes;
  /// Sum of operator loads (the query's total load CT if nothing were
  /// shared).
  double total_load = 0.0;
};

/// Estimates rates and loads for `plan` against the engine's registered
/// sources. Fails when the plan references unknown sources/fields.
Result<PlanLoadEstimate> EstimatePlanLoad(const Engine& engine,
                                          const QueryPlan& plan,
                                          const LoadEstimateOptions& options);

/// One query submitted to the admission auction.
struct QuerySubmission {
  int query_id = 0;  ///< Caller-assigned id (engine install id).
  auction::UserId user = 0;
  double bid = 0.0;
  QueryPlan plan;
};

/// The auction instance derived from a batch of submissions, plus the
/// mapping back to engine entities.
struct AuctionBuild {
  auction::AuctionInstance instance;
  /// instance QueryId (dense index) -> submission query_id.
  std::vector<int> query_ids;
  /// instance OperatorId -> runtime node signature.
  std::vector<std::string> op_signatures;
};

/// Builds the §II abstract auction view of `submissions`: operators are
/// deduplicated by subtree signature (exactly the engine's sharing
/// rule), loads come from the analytic model or engine measurement, and
/// source taps are excluded (stream ingestion is provider overhead, as
/// in the paper's Example 1 where operators begin at the first box).
Result<AuctionBuild> BuildAuctionInstance(
    const Engine& engine, const std::vector<QuerySubmission>& submissions,
    const LoadEstimateOptions& options);

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_LOAD_ESTIMATOR_H_
