// Copyright 2026 The streambid Authors
// Per-auction execution context handed to every Mechanism::Run call: the
// deterministic RNG stream for randomized mechanisms plus a scratch
// workspace the greedy paths reuse across calls, so a service running
// millions of auctions does not pay a fresh round of vector allocations
// per request.

#ifndef STREAMBID_AUCTION_CONTEXT_H_
#define STREAMBID_AUCTION_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "auction/types.h"
#include "common/rng.h"

namespace streambid::auction {

/// Scratch buffers shared by the greedy mechanisms. Buffers are resized
/// (never shrunk) per call, so steady-state auctions of similar size run
/// allocation-free. Contents are unspecified between calls; callers must
/// overwrite before reading.
struct AuctionWorkspace {
  /// Lazy-heap entry (CAR): the priority, the query it scores, and the
  /// remaining-load stamp the priority was computed from (stale entries
  /// are detected by stamp mismatch and discarded on pop).
  struct HeapSlot {
    double priority;
    QueryId query;
    double stamp;
  };

  std::vector<double> priority;   ///< Per-query priority Pr_i.
  std::vector<QueryId> order;     ///< Priority-sorted query ids.
  std::vector<double> values;     ///< Valuation scratch (Two-price).
  std::vector<HeapSlot> heap;     ///< Binary-heap storage (CAR).
  std::vector<double> remaining;  ///< Per-query remaining load (CAR).
  std::vector<double> selection;  ///< Load at selection time (CAR).
  std::vector<uint8_t> flags;     ///< Per-query boolean scratch.
  std::vector<QueryId> winners;   ///< Winner accumulation (OPT_C).
  std::vector<QueryId> candidates;  ///< Per-price trial set (OPT_C).
  std::vector<QueryId> ties;      ///< Boundary tie class (OPT_C).
};

/// Execution context for one or more auction runs. Holds the RNG stream
/// (consumed only by randomized mechanisms) and the reusable workspace.
/// Not thread-safe: one context per thread.
class AuctionContext {
 public:
  explicit AuctionContext(uint64_t seed = 0x9E3779B97F4A7C15ull)
      : rng_(seed) {}

  /// Restarts the RNG stream; used by the admission service to derive an
  /// independent deterministic stream per request.
  void Reseed(uint64_t seed) { rng_ = Rng(seed); }

  Rng& rng() { return rng_; }
  AuctionWorkspace& workspace() { return workspace_; }

 private:
  Rng rng_;
  AuctionWorkspace workspace_;
};

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_CONTEXT_H_
