// Copyright 2026 The streambid Authors
// ThroughputProbe contract tests: probes launch from stable epochs and
// are judged against the moving average, adoption moves the stable
// concurrency and reversion restores it, bounds always hold, and the
// whole decision sequence is a pure function of (observations, seed).

#include "gate/throughput_probe.h"

#include <gtest/gtest.h>

#include <vector>

namespace streambid::gate {
namespace {

/// min == initial pins the down direction, so the first probe is
/// deterministically up without touching the seed coin.
ProbeOptions UpFirstOptions() {
  ProbeOptions options;
  options.initial_concurrency = 4;
  options.min_concurrency = 4;
  options.max_concurrency = 64;
  options.step_ratio = 0.25;
  options.ema_weight = 0.5;
  return options;
}

TEST(ThroughputProbeTest, InitialConcurrencyClampsIntoBounds) {
  ProbeOptions options;
  options.initial_concurrency = 1000;
  options.min_concurrency = 2;
  options.max_concurrency = 64;
  ThroughputProbe probe(options);
  EXPECT_EQ(probe.concurrency(), 64);

  options.initial_concurrency = 1;
  ThroughputProbe low(options);
  EXPECT_EQ(low.concurrency(), 2);
}

TEST(ThroughputProbeTest, PinnedWhenMinEqualsMax) {
  ProbeOptions options;
  options.initial_concurrency = 8;
  options.min_concurrency = 8;
  options.max_concurrency = 8;
  ThroughputProbe probe(options);
  const ProbeDecision decision = probe.Observe(100.0);
  EXPECT_EQ(decision.state, ProbeState::kStable);
  EXPECT_EQ(decision.concurrency, 8);
  EXPECT_EQ(decision.reason, "pinned");
  EXPECT_DOUBLE_EQ(decision.ema_throughput, 100.0);
}

TEST(ThroughputProbeTest, ProbeUpAdoptsOnImprovement) {
  ThroughputProbe probe(UpFirstOptions());
  const ProbeDecision launch = probe.Observe(100.0);
  EXPECT_EQ(launch.state, ProbeState::kProbingUp);
  EXPECT_EQ(launch.reason, "probe-up");
  EXPECT_EQ(launch.concurrency, 5);  // 4 * 1.25.
  EXPECT_EQ(launch.stable_concurrency, 4);

  const ProbeDecision verdict = probe.Observe(150.0);
  EXPECT_EQ(verdict.state, ProbeState::kStable);
  EXPECT_TRUE(verdict.adopted);
  EXPECT_EQ(verdict.reason, "adopted");
  EXPECT_EQ(verdict.stable_concurrency, 5);
  EXPECT_EQ(verdict.concurrency, 5);
}

TEST(ThroughputProbeTest, ProbeRevertsWithoutImprovement) {
  ThroughputProbe probe(UpFirstOptions());
  ASSERT_EQ(probe.Observe(100.0).state, ProbeState::kProbingUp);
  const ProbeDecision verdict = probe.Observe(80.0);
  EXPECT_EQ(verdict.state, ProbeState::kStable);
  EXPECT_FALSE(verdict.adopted);
  EXPECT_EQ(verdict.reason, "reverted");
  EXPECT_EQ(verdict.concurrency, 4);
  EXPECT_EQ(verdict.stable_concurrency, 4);
  // The failed probe's throughput never pollutes the moving average.
  EXPECT_DOUBLE_EQ(verdict.ema_throughput, 100.0);
}

TEST(ThroughputProbeTest, MinGainRatioRequiresMargin) {
  ProbeOptions options = UpFirstOptions();
  options.min_gain_ratio = 0.5;
  ThroughputProbe probe(options);
  ASSERT_EQ(probe.Observe(100.0).state, ProbeState::kProbingUp);
  // +20% is improvement but under the +50% bar: reverted.
  EXPECT_EQ(probe.Observe(120.0).reason, "reverted");
}

TEST(ThroughputProbeTest, BoundsHoldAcrossManyEpochs) {
  ProbeOptions options;
  options.initial_concurrency = 8;
  options.min_concurrency = 2;
  options.max_concurrency = 32;
  options.seed = 7;
  ThroughputProbe probe(options);
  double throughput = 50.0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    // A noisy sawtooth keeps both adoption and reversion exercised.
    throughput = 50.0 + (epoch % 7) * 13.0 - (epoch % 3) * 9.0;
    const ProbeDecision decision = probe.Observe(throughput);
    EXPECT_GE(decision.concurrency, options.min_concurrency);
    EXPECT_LE(decision.concurrency, options.max_concurrency);
    EXPECT_GE(decision.stable_concurrency, options.min_concurrency);
    EXPECT_LE(decision.stable_concurrency, options.max_concurrency);
  }
}

TEST(ThroughputProbeTest, DecisionsReplayFromHistoryAndSeed) {
  ProbeOptions options;
  options.initial_concurrency = 16;
  options.min_concurrency = 2;
  options.max_concurrency = 64;
  options.seed = 21;
  ThroughputProbe a(options);
  ThroughputProbe b(options);
  for (int epoch = 0; epoch < 100; ++epoch) {
    const double throughput = 40.0 + (epoch * 17) % 31;
    const ProbeDecision da = a.Observe(throughput);
    const ProbeDecision db = b.Observe(throughput);
    ASSERT_EQ(da.state, db.state);
    ASSERT_EQ(da.concurrency, db.concurrency);
    ASSERT_EQ(da.stable_concurrency, db.stable_concurrency);
    ASSERT_EQ(da.reason, db.reason);
    ASSERT_EQ(da.adopted, db.adopted);
    ASSERT_EQ(da.ema_throughput, db.ema_throughput);
  }
}

TEST(ThroughputProbeTest, SeedChangesTheDirectionSequence) {
  ProbeOptions options;
  options.initial_concurrency = 16;
  options.min_concurrency = 2;
  options.max_concurrency = 64;
  options.seed = 1;
  ProbeOptions other = options;
  other.seed = 2;
  ThroughputProbe a(options);
  ThroughputProbe b(other);
  // Same observations; with both directions open the seeded coin must
  // eventually pick differently for different seeds.
  bool diverged = false;
  for (int epoch = 0; epoch < 50 && !diverged; ++epoch) {
    const ProbeDecision da = a.Observe(100.0);
    const ProbeDecision db = b.Observe(100.0);
    diverged = da.state != db.state || da.concurrency != db.concurrency;
  }
  EXPECT_TRUE(diverged);
}

TEST(ThroughputProbeTest, StateNamesAreStable) {
  EXPECT_STREQ(ProbeStateName(ProbeState::kStable), "stable");
  EXPECT_STREQ(ProbeStateName(ProbeState::kProbingUp), "probe-up");
  EXPECT_STREQ(ProbeStateName(ProbeState::kProbingDown), "probe-down");
}

}  // namespace
}  // namespace streambid::gate
