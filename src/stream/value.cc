// Copyright 2026 The streambid Authors

#include "stream/value.h"

#include <cstdio>

namespace streambid::stream {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return {};
}

std::string Value::ToKey() const {
  // Distinguish 1 (int) from "1" (string) in keys.
  switch (type()) {
    case ValueType::kInt64:
      return "i:" + std::to_string(AsInt64());
    case ValueType::kDouble:
      return "d:" + ToString();
    case ValueType::kString:
      return "s:" + AsString();
  }
  return {};
}

}  // namespace streambid::stream
