// Copyright 2026 The streambid Authors
// The telemetry layer in one page: wire a MetricsRegistry and a
// PeriodTracer through the gate -> cluster -> center stack, run a few
// gated periods, then export both surfaces — the Prometheus text
// exposition and a Chrome/Perfetto trace of every period phase.
//
// Build & run:  ./build/examples/telemetry_quickstart
// Then load telemetry_quickstart_trace.json at ui.perfetto.dev (or
// chrome://tracing) to see the per-shard prepare/admit/complete lanes.

#include <cstdio>
#include <string>

#include "gate/stream_ingress.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

using namespace streambid;

namespace {

stream::QuerySubmission Tenant(int period, int id, double bid) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(95.0 + 5.0 * (id % 3)));
  stream::QuerySubmission sub;
  sub.query_id = period * 100 + id;
  sub.user = id;
  sub.bid = bid;
  sub.plan = b.Build(sel);
  return sub;
}

}  // namespace

int main() {
  // Both sinks are optional everywhere: leave the pointers null and
  // the instrumented code paths cost nothing.
  telemetry::MetricsRegistry registry;
  telemetry::PeriodTracer tracer;

  cluster::ClusterOptions options;
  options.num_shards = 2;
  options.total_capacity = 6.0;
  options.routing = cluster::RoutingPolicy::kHashUser;
  options.mechanism = "cat";
  options.period_length = 30.0;
  options.seed = 11;
  options.metrics = &registry;
  options.tracer = &tracer;
  cluster::ClusterCenter cluster(options, [](stream::Engine& engine) {
    return engine.RegisterSource(stream::MakeStockQuoteSource(
        "quotes", {"IBM", "AAPL", "MSFT"}, /*rate=*/100.0, 3));
  });

  gate::IngressOptions ingress_options;
  ingress_options.tenant_classes = 2;
  ingress_options.tickets_per_class = 8;
  ingress_options.metrics = &registry;
  ingress_options.tracer = &tracer;
  gate::StreamIngress gate(&cluster, ingress_options);

  for (int period = 0; period < 3; ++period) {
    for (int id = 1; id <= 6; ++id) {
      const Status offered =
          gate.Offer(Tenant(period, id, 60.0 - 7.0 * id + period));
      if (!offered.ok()) {
        std::fprintf(stderr, "offer failed: %s\n",
                     offered.ToString().c_str());
        return 1;
      }
    }
    const auto report = gate.ClosePeriod();
    if (!report.ok()) {
      std::fprintf(stderr, "period failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("period %d: %d offered, %d admitted, revenue $%.2f\n",
                report->report.period, report->report.submissions,
                report->report.admitted, report->report.revenue);
  }

  // Surface 1: the pull-style exposition a scraper would GET. Every
  // instrument registered anywhere in the stack shows up here.
  std::printf("\n== /metrics exposition ==\n%s",
              registry.TextExposition().c_str());

  // Surface 2: the period trace. Span identity is logical (period,
  // shard, epoch, phase) — the identity sequence below is byte-stable
  // across runs and pool sizes; only the wall-clock annotations vary.
  std::printf("\n== trace identity (first lines) ==\n");
  const std::string identity = tracer.IdentitySequence();
  size_t pos = 0;
  for (int line = 0; line < 6 && pos != std::string::npos; ++line) {
    const size_t end = identity.find('\n', pos);
    std::printf("%s\n", identity.substr(pos, end - pos).c_str());
    pos = end == std::string::npos ? end : end + 1;
  }
  std::printf("... %lld spans total\n",
              static_cast<long long>(tracer.span_count()));

  const std::string trace_path = "telemetry_quickstart_trace.json";
  const Status written = tracer.WriteChromeTrace(trace_path);
  if (!written.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s — open it at ui.perfetto.dev\n",
              trace_path.c_str());
  return 0;
}
