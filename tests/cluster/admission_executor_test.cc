// Copyright 2026 The streambid Authors
// AdmissionExecutor contract tests: parallel batches are byte-identical
// to the serial AdmitBatch at every pool size, the async surface
// completes out of order, and the rolling stats aggregate diagnostics.

#include "cluster/admission_executor.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <vector>

#include "workload/generator.h"

namespace streambid::cluster {
namespace {

/// A workload big enough that every mechanism does real work and shards
/// actually interleave across workers.
auction::AuctionInstance TestInstance() {
  workload::WorkloadParams params;
  params.num_queries = 60;
  params.base_num_operators = 25;
  Rng rng(0xFEEDu);
  return workload::GenerateBaseWorkload(params, rng).ToInstance().value();
}

/// The sweep shape of the benches: mechanisms x capacities x trials.
std::vector<service::AdmissionRequest> TestRequests(
    const auction::AuctionInstance& instance) {
  std::vector<service::AdmissionRequest> requests;
  for (const char* name : {"cat", "car", "two-price", "random", "caf+"}) {
    for (double capacity : {20.0, 60.0}) {
      for (uint32_t trial = 0; trial < 3; ++trial) {
        service::AdmissionRequest request;
        request.instance = &instance;
        request.capacity = capacity;
        request.mechanism = name;
        request.seed = 77;
        request.request_index = trial;
        requests.push_back(std::move(request));
      }
    }
  }
  return requests;
}

/// Everything except the timing fields must match byte for byte.
void ExpectIdentical(const service::AdmissionResponse& a,
                     const service::AdmissionResponse& b, size_t index) {
  EXPECT_EQ(a.allocation.admitted, b.allocation.admitted) << index;
  EXPECT_EQ(a.allocation.payments, b.allocation.payments) << index;
  EXPECT_EQ(a.allocation.mechanism, b.allocation.mechanism) << index;
  EXPECT_EQ(a.metrics.profit, b.metrics.profit) << index;
  EXPECT_EQ(a.metrics.admission_rate, b.metrics.admission_rate) << index;
  EXPECT_EQ(a.metrics.total_payoff, b.metrics.total_payoff) << index;
  EXPECT_EQ(a.metrics.utilization, b.metrics.utilization) << index;
  EXPECT_EQ(a.diagnostics.mechanism, b.diagnostics.mechanism) << index;
  EXPECT_EQ(a.diagnostics.capacity, b.diagnostics.capacity) << index;
  EXPECT_EQ(a.diagnostics.used_capacity, b.diagnostics.used_capacity)
      << index;
  EXPECT_EQ(a.diagnostics.capacity_utilization,
            b.diagnostics.capacity_utilization)
      << index;
  EXPECT_EQ(a.diagnostics.num_queries, b.diagnostics.num_queries) << index;
  EXPECT_EQ(a.diagnostics.admitted_count, b.diagnostics.admitted_count)
      << index;
  EXPECT_EQ(a.diagnostics.rejected_count, b.diagnostics.rejected_count)
      << index;
}

TEST(AdmissionExecutorTest, ParallelBatchMatchesSerialAtEveryPoolSize) {
  const auction::AuctionInstance instance = TestInstance();
  const std::vector<service::AdmissionRequest> requests =
      TestRequests(instance);

  service::AdmissionService serial_service;
  const auto serial = serial_service.AdmitBatch(requests);
  ASSERT_TRUE(serial.ok());

  for (int threads : {1, 2, 8}) {
    AdmissionExecutor executor(ExecutorOptions{threads});
    EXPECT_EQ(executor.num_threads(), threads);
    const auto parallel = executor.AdmitBatchParallel(requests);
    ASSERT_TRUE(parallel.ok()) << threads << " threads";
    ASSERT_EQ(parallel->size(), serial->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      ExpectIdentical((*parallel)[i], (*serial)[i], i);
    }
  }
}

TEST(AdmissionExecutorTest, RepeatedParallelBatchesAreStable) {
  // Worker contexts are reused across batches; the per-request streams
  // must keep results independent of what ran before.
  const auction::AuctionInstance instance = TestInstance();
  const std::vector<service::AdmissionRequest> requests =
      TestRequests(instance);
  AdmissionExecutor executor(ExecutorOptions{4});
  const auto first = executor.AdmitBatchParallel(requests);
  const auto second = executor.AdmitBatchParallel(requests);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  for (size_t i = 0; i < first->size(); ++i) {
    ExpectIdentical((*first)[i], (*second)[i], i);
  }
}

TEST(AdmissionExecutorTest, BatchValidationMatchesSerialErrorSpelling) {
  const auction::AuctionInstance instance = TestInstance();
  std::vector<service::AdmissionRequest> requests(2);
  requests[0].instance = &instance;
  requests[0].capacity = 10.0;
  requests[0].mechanism = "cat";
  requests[1].instance = &instance;
  requests[1].capacity = 10.0;
  requests[1].mechanism = "bogus";

  service::AdmissionService serial_service;
  const auto serial = serial_service.AdmitBatch(requests);
  AdmissionExecutor executor(ExecutorOptions{2});
  const auto parallel = executor.AdmitBatchParallel(requests);
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), serial.status().code());
  EXPECT_EQ(parallel.status().message(), serial.status().message());
}

TEST(AdmissionExecutorTest, EmptyBatchIsEmpty) {
  AdmissionExecutor executor(ExecutorOptions{2});
  const auto responses = executor.AdmitBatchParallel({});
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses->empty());
}

TEST(AdmissionExecutorTest, AsyncCompletionsDrainOutOfOrder) {
  const auction::AuctionInstance instance = TestInstance();
  AdmissionExecutor executor(ExecutorOptions{2});
  service::AdmissionService serial_service;

  std::vector<AdmissionTicket> tickets;
  std::vector<service::AdmissionRequest> requests;
  for (uint32_t t = 0; t < 6; ++t) {
    service::AdmissionRequest request;
    request.instance = &instance;
    request.capacity = 30.0;
    request.mechanism = t % 2 == 0 ? "two-price" : "cat";
    request.seed = 5;
    request.request_index = t;
    const auto ticket = executor.Enqueue(request);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
    requests.push_back(std::move(request));
  }

  // Drain newest-first: completion order must not matter.
  for (size_t k = tickets.size(); k-- > 0;) {
    const auto response = executor.Wait(tickets[k]);
    ASSERT_TRUE(response.ok()) << k;
    const auto expected = serial_service.Admit(requests[k]);
    ASSERT_TRUE(expected.ok());
    ExpectIdentical(*response, *expected, k);
  }
  EXPECT_EQ(executor.pending_tickets(), 0);
}

TEST(AdmissionExecutorTest, PollEventuallyCompletesAndConsumes) {
  const auction::AuctionInstance instance = TestInstance();
  AdmissionExecutor executor(ExecutorOptions{1});
  service::AdmissionRequest request;
  request.instance = &instance;
  request.capacity = 30.0;
  request.mechanism = "cat";
  const auto ticket = executor.Enqueue(request);
  ASSERT_TRUE(ticket.ok());

  std::optional<Result<service::AdmissionResponse>> polled;
  while (!polled.has_value()) polled = executor.Poll(*ticket);
  ASSERT_TRUE(polled->ok());
  EXPECT_EQ((*polled)->diagnostics.mechanism, "cat");

  // Consumed: a second poll (or wait) is kNotFound.
  const auto again = executor.Poll(*ticket);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->status().code(), StatusCode::kNotFound);
  EXPECT_EQ(executor.Wait(*ticket).status().code(), StatusCode::kNotFound);
}

TEST(AdmissionExecutorTest, EnqueueValidatesUpFront) {
  AdmissionExecutor executor(ExecutorOptions{1});
  service::AdmissionRequest request;  // Null instance.
  request.mechanism = "cat";
  EXPECT_EQ(executor.Enqueue(request).status().code(),
            StatusCode::kInvalidArgument);
  const auction::AuctionInstance instance = TestInstance();
  request.instance = &instance;
  request.mechanism = "bogus";
  EXPECT_EQ(executor.Enqueue(request).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(executor.pending_tickets(), 0);
}

TEST(AdmissionExecutorTest, UnknownTicketIsNotFound) {
  AdmissionExecutor executor(ExecutorOptions{1});
  const auto polled = executor.Poll(AdmissionTicket{123});
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->status().code(), StatusCode::kNotFound);
  EXPECT_EQ(executor.Wait(AdmissionTicket{123}).status().code(),
            StatusCode::kNotFound);
}

TEST(AdmissionExecutorTest, TryEnqueueBackpressuresOnFullQueue) {
  const auction::AuctionInstance instance = TestInstance();
  // One worker, queue depth 1. Park the worker on a generic task from
  // the shared TaskExecutor surface so the admission queue state is
  // deterministic: one running task, one queued auction, queue full.
  AdmissionExecutor executor(ExecutorOptions{1, 1});
  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  const auto blocker = executor.tasks().Submit<int>(
      [&](WorkerContext&) -> Result<int> {
        std::unique_lock<std::mutex> lock(mutex);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
        return 0;
      });
  ASSERT_TRUE(blocker.ok());
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return started; });
  }

  service::AdmissionRequest request;
  request.instance = &instance;
  request.capacity = 30.0;
  request.mechanism = "cat";
  const auto queued = executor.TryEnqueue(request);
  ASSERT_TRUE(queued.ok());

  const auto rejected = executor.TryEnqueue(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // Validation errors still win over backpressure (checked up front).
  service::AdmissionRequest bogus = request;
  bogus.mechanism = "bogus";
  EXPECT_EQ(executor.TryEnqueue(bogus).status().code(),
            StatusCode::kNotFound);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE(executor.tasks().Wait(*blocker).ok());
  const auto response = executor.Wait(*queued);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->diagnostics.mechanism, "cat");
  // Space freed: the backpressure clears.
  const auto retried = executor.TryEnqueue(request);
  ASSERT_TRUE(retried.ok());
  ASSERT_TRUE(executor.Wait(*retried).ok());
}

TEST(AdmissionExecutorTest, StatsAggregatePerMechanism) {
  const auction::AuctionInstance instance = TestInstance();
  AdmissionExecutor executor(ExecutorOptions{4});
  const std::vector<service::AdmissionRequest> requests =
      TestRequests(instance);
  ASSERT_TRUE(executor.AdmitBatchParallel(requests).ok());

  const ExecutorStats stats = executor.StatsReport();
  EXPECT_EQ(stats.total_requests,
            static_cast<int64_t>(requests.size()));
  EXPECT_EQ(stats.failed_requests, 0);
  // The generic pool counters ride along: every request executed on
  // one of the 4 pool workers, and the queue was observed non-empty.
  ASSERT_EQ(stats.tasks_per_worker.size(), 4u);
  int64_t pool_tasks = 0;
  for (const int64_t t : stats.tasks_per_worker) pool_tasks += t;
  EXPECT_EQ(pool_tasks, static_cast<int64_t>(requests.size()));
  EXPECT_GE(stats.queue_high_water, 1);
  ASSERT_EQ(stats.per_mechanism.size(), 5u);
  for (const auto& [name, m] : stats.per_mechanism) {
    // 2 capacities x 3 trials per mechanism.
    EXPECT_EQ(m.count, 6) << name;
    EXPECT_EQ(m.admit_rate.count(), 6) << name;
    EXPECT_GT(m.admit_rate.mean(), 0.0) << name;
    EXPECT_GT(m.utilization.mean(), 0.0) << name;
    EXPECT_GE(m.elapsed_ms.mean(), 0.0) << name;
    EXPECT_EQ(m.deadline_overruns, 0) << name;
  }

  executor.ResetStats();
  EXPECT_EQ(executor.StatsReport().total_requests, 0);
  EXPECT_TRUE(executor.StatsReport().per_mechanism.empty());
}

TEST(AdmissionExecutorTest, DestructionWithInFlightAuctionIsSafe) {
  // Regression: the executor destroys its pool before the stats shards
  // (members in reverse declaration order), so an auction still running
  // at destruction records its stats into live memory. Without the
  // ordering this is a heap-use-after-free the ASan CI job catches.
  const auction::AuctionInstance instance = TestInstance();
  for (int round = 0; round < 20; ++round) {
    AdmissionExecutor executor(ExecutorOptions{2});
    service::AdmissionRequest request;
    request.instance = &instance;
    request.capacity = 30.0;
    request.mechanism = "cat";
    request.request_index = static_cast<uint32_t>(round);
    ASSERT_TRUE(executor.Enqueue(request).ok());
    // Destroy immediately: the auction may be queued, running, or done.
  }
  SUCCEED();
}

TEST(AdmissionExecutorTest, StatsCountDeadlineOverruns) {
  const auction::AuctionInstance instance = TestInstance();
  AdmissionExecutor executor(ExecutorOptions{1});
  service::AdmissionRequest request;
  request.instance = &instance;
  request.capacity = 30.0;
  request.mechanism = "cat";
  // Any positive elapsed time overruns a denormal budget.
  request.options.time_budget_ms = 1e-300;
  const auto ticket = executor.Enqueue(request);
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(executor.Wait(*ticket).ok());
  const ExecutorStats stats = executor.StatsReport();
  EXPECT_EQ(stats.per_mechanism.at("cat").deadline_overruns, 1);
}

}  // namespace
}  // namespace streambid::cluster
