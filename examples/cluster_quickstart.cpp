// Copyright 2026 The streambid Authors
// The cluster layer in one page: a 2-shard ClusterCenter routing tenant
// submissions by least-loaded, running each period as per-shard
// prepare -> admit -> complete chains on the executor's persistent
// TaskExecutor pool (no per-period threads), and merging the shard
// reports.
//
// Build & run:  ./build/examples/cluster_quickstart

#include <cstdio>

#include "cluster/cluster_center.h"
#include "common/table.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

using namespace streambid;

namespace {

stream::QuerySubmission Tenant(int id, double bid, double threshold) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(threshold));
  stream::QuerySubmission sub;
  sub.query_id = id;
  sub.user = id;
  sub.bid = bid;
  sub.plan = b.Build(sel);
  return sub;
}

}  // namespace

int main() {
  cluster::ClusterOptions options;
  options.num_shards = 2;
  options.total_capacity = 4.0;  // 2 units per shard.
  options.routing = cluster::RoutingPolicy::kLeastLoaded;
  options.mechanism = "cat";
  options.period_length = 60.0;
  options.seed = 7;

  cluster::ClusterCenter cluster(options, [](stream::Engine& engine) {
    return engine.RegisterSource(stream::MakeStockQuoteSource(
        "quotes", {"IBM", "AAPL", "MSFT"}, /*rate=*/100.0, 3));
  });

  std::printf("== 2-shard cluster, %s routing, mechanism %s ==\n",
              cluster::RoutingPolicyName(options.routing),
              options.mechanism.c_str());
  TextTable table({"period", "submitted", "admitted", "revenue",
                   "auction_util", "cluster_ms"});
  for (int period = 0; period < 2; ++period) {
    for (int id = 1; id <= 6; ++id) {
      const auto shard = cluster.Submit(
          Tenant(id, 60.0 - 8.0 * id + period, 95.0 + 5.0 * (id % 3)));
      if (!shard.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     shard.status().ToString().c_str());
        return 1;
      }
      if (period == 0) {
        std::printf("tenant %d -> shard %d\n", id, *shard);
      }
    }
    const auto report = cluster.RunPeriod();
    if (!report.ok()) {
      std::fprintf(stderr, "period failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    table.AddRow({std::to_string(report->period),
                  std::to_string(report->submissions),
                  std::to_string(report->admitted),
                  FormatDouble(report->revenue, 2),
                  FormatPercent(report->auction_utilization, 1),
                  FormatDouble(report->elapsed_ms, 2)});
  }
  std::fputs(table.ToAligned().c_str(), stdout);
  std::printf("total revenue: $%.2f across %d shards\n",
              cluster.total_revenue(), cluster.num_shards());

  // The executor's rolling stats double as the service observability
  // surface: every shard auction it ran is folded in per mechanism,
  // and the generic pool counters show where the period chains landed.
  const cluster::ExecutorStats stats =
      cluster.executor().StatsReport();
  for (const auto& [name, m] : stats.per_mechanism) {
    std::printf("mechanism %s: %lld auctions, mean admit rate %.2f, "
                "mean %.3f ms\n",
                name.c_str(), static_cast<long long>(m.count),
                m.admit_rate.mean(), m.elapsed_ms.mean());
  }
  for (size_t w = 0; w < stats.tasks_per_worker.size(); ++w) {
    std::printf("pool worker %zu ran %lld period tasks\n", w,
                static_cast<long long>(stats.tasks_per_worker[w]));
  }
  std::printf("queue high-water mark: %lld\n",
              static_cast<long long>(stats.queue_high_water));
  return 0;
}
