// Copyright 2026 The streambid Authors
// Windowed duplicate elimination: forwards a tuple only if no tuple with
// the same key field was seen within the trailing window (dedup for
// alert-style queries: "notify once per company per hour").

#ifndef STREAMBID_STREAM_OPERATORS_DISTINCT_H_
#define STREAMBID_STREAM_OPERATORS_DISTINCT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "stream/operator.h"

namespace streambid::stream {

/// distinct(field within window seconds).
class DistinctOperator : public OperatorBase {
 public:
  DistinctOperator(SchemaPtr input_schema, std::string key_field,
                   VirtualTime window,
                   double cost_per_tuple = DefaultCosts::kDistinct);

  SchemaPtr output_schema() const override { return schema_; }

  void Process(int port, const Tuple& tuple,
               std::vector<Tuple>* out) override;

  void AdvanceTime(VirtualTime now, std::vector<Tuple>* out) override;

  void Reset() override;

  /// Keys currently suppressed (tests/monitoring).
  size_t TrackedKeys() const { return last_seen_.size(); }

 private:
  SchemaPtr schema_;
  int key_index_;
  VirtualTime window_;
  std::unordered_map<std::string, VirtualTime> last_seen_;
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_OPERATORS_DISTINCT_H_
