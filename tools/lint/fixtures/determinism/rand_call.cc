// Copyright 2026 The streambid Authors
// Fixture: the C rand()/srand() pair is process-global state -- banned.

#include <cstdlib>

inline int Roll() {
  std::srand(42u);     // WANT(random-device)
  return std::rand();  // WANT(random-device)
}
