// Copyright 2026 The streambid Authors
// Behavioural tests for CAF/CAF+/CAT/CAT+/GV beyond the Example 1
// walkthrough: skip semantics, pricing edge cases, and the paper's
// qualitative claims (CAF+ admits at least as many queries as CAF, etc.).

#include "auction/mechanisms/density.h"

#include <gtest/gtest.h>

#include "auction/metrics.h"
#include "auction/registry.h"

namespace streambid::auction {
namespace {

AuctionInstance Make(std::vector<double> op_loads,
                     std::vector<QuerySpec> queries) {
  std::vector<OperatorSpec> ops;
  for (double l : op_loads) ops.push_back({l});
  auto r = AuctionInstance::Create(std::move(ops), std::move(queries));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(DensityTest, PlusVariantAdmitsSupersetOnStopInstance) {
  // CAT stops at the big query; CAT+ skips it and admits the small one.
  AuctionInstance inst = Make(
      {5.0, 6.0, 1.0},
      {{0, 50.0, {0}}, {1, 54.0, {1}}, {2, 6.0, {2}}});
  AuctionContext rng(1);
  const Allocation cat = MakeCat()->Run(inst, 7.0, rng);
  const Allocation cat_plus = MakeCatPlus()->Run(inst, 7.0, rng);
  EXPECT_EQ(cat.NumAdmitted(), 1);
  EXPECT_EQ(cat_plus.NumAdmitted(), 2);
  for (QueryId i = 0; i < inst.num_queries(); ++i) {
    if (cat.IsAdmitted(i)) {
      EXPECT_TRUE(cat_plus.IsAdmitted(i));
    }
  }
}

TEST(DensityTest, AllAdmittedMeansZeroPayments) {
  AuctionInstance inst = Make({1.0, 2.0}, {{0, 5.0, {0}}, {1, 9.0, {1}}});
  AuctionContext rng(1);
  for (auto make : {MakeCaf, MakeCat, MakeCafPlus, MakeCatPlus, MakeGv}) {
    const Allocation alloc = make()->Run(inst, 100.0, rng);
    EXPECT_EQ(alloc.NumAdmitted(), 2) << alloc.mechanism;
    EXPECT_DOUBLE_EQ(alloc.Payment(0), 0.0) << alloc.mechanism;
    EXPECT_DOUBLE_EQ(alloc.Payment(1), 0.0) << alloc.mechanism;
  }
}

TEST(DensityTest, FirstLoserPricingProportionalToLoad) {
  // Winners pay the same per-unit price; heavier queries pay more.
  AuctionInstance inst = Make(
      {2.0, 4.0, 8.0},
      {{0, 20.0, {0}}, {1, 30.0, {1}}, {2, 30.0, {2}}});
  // Densities (CT): 10, 7.5, 3.75. Capacity 6 admits q0 and q1 only.
  AuctionContext rng(1);
  const Allocation cat = MakeCat()->Run(inst, 6.0, rng);
  EXPECT_TRUE(cat.IsAdmitted(0));
  EXPECT_TRUE(cat.IsAdmitted(1));
  EXPECT_FALSE(cat.IsAdmitted(2));
  // Unit price = 30/8 = 3.75.
  EXPECT_DOUBLE_EQ(cat.Payment(0), 2.0 * 3.75);
  EXPECT_DOUBLE_EQ(cat.Payment(1), 4.0 * 3.75);
}

TEST(DensityTest, WinnerPaysAtMostBid) {
  // First-loser pricing never exceeds a winner's own bid: the winner has
  // weakly higher density than the loser.
  AuctionInstance inst = Make(
      {3.0, 5.0, 4.0, 2.0},
      {{0, 30.0, {0}}, {1, 35.0, {1}}, {2, 20.0, {2}}, {3, 4.0, {3}}});
  AuctionContext rng(1);
  for (auto make : {MakeCaf, MakeCat, MakeGv, MakeCafPlus, MakeCatPlus}) {
    const Allocation alloc = make()->Run(inst, 9.0, rng);
    for (QueryId i = 0; i < inst.num_queries(); ++i) {
      if (alloc.IsAdmitted(i)) {
        EXPECT_LE(alloc.Payment(i), inst.bid(i) + 1e-9)
            << alloc.mechanism << " query " << i;
      }
    }
  }
}

TEST(DensityTest, GvChargesUniformPrice) {
  AuctionInstance inst = Make(
      {3.0, 3.0, 3.0},
      {{0, 50.0, {0}}, {1, 40.0, {1}}, {2, 30.0, {2}}});
  AuctionContext rng(1);
  const Allocation gv = MakeGv()->Run(inst, 6.0, rng);
  EXPECT_TRUE(gv.IsAdmitted(0));
  EXPECT_TRUE(gv.IsAdmitted(1));
  EXPECT_FALSE(gv.IsAdmitted(2));
  EXPECT_DOUBLE_EQ(gv.Payment(0), 30.0);
  EXPECT_DOUBLE_EQ(gv.Payment(1), 30.0);
}

TEST(DensityTest, CafPlusPaymentUsesMovementWindow) {
  // Three unit-load queries, capacity 2: the last query prices the first
  // two under skip semantics.
  AuctionInstance inst = Make(
      {1.0, 1.0, 1.0},
      {{0, 9.0, {0}}, {1, 8.0, {1}}, {2, 5.0, {2}}});
  AuctionContext rng(1);
  const Allocation alloc = MakeCafPlus()->Run(inst, 2.0, rng);
  EXPECT_TRUE(alloc.IsAdmitted(0));
  EXPECT_TRUE(alloc.IsAdmitted(1));
  EXPECT_FALSE(alloc.IsAdmitted(2));
  // Moving q0 below q2 would lose (q1 and q2 fill capacity): last(0)=q2.
  // CSF are all 1 so payment = bid of q2 = 5.
  EXPECT_DOUBLE_EQ(alloc.Payment(0), 5.0);
  EXPECT_DOUBLE_EQ(alloc.Payment(1), 5.0);
}

TEST(DensityTest, SkipPricingCanDifferPerWinner) {
  // q0 big, q1 small, q2 medium, q3 small. Windows differ.
  AuctionInstance inst = Make(
      {4.0, 1.0, 3.0, 1.0},
      {{0, 40.0, {0}}, {1, 9.0, {1}}, {2, 21.0, {2}}, {3, 5.0, {3}}});
  // Densities (CT): 10, 9, 7, 5. Capacity 5: q0 (4), q1 (1) admitted;
  // q2 misfit; q3 misfit (5+1 > 5).
  AuctionContext rng(1);
  const Allocation alloc = MakeCatPlus()->Run(inst, 5.0, rng);
  EXPECT_TRUE(alloc.IsAdmitted(0));
  EXPECT_TRUE(alloc.IsAdmitted(1));
  EXPECT_FALSE(alloc.IsAdmitted(2));
  EXPECT_FALSE(alloc.IsAdmitted(3));
  // q0: placed after q1 -> used 1 + 4 = 5 fits; after q2: q2 admitted
  // without q0 (1+3=4), then q0 needs 4 -> 8 > 5: last(q0) = q2.
  // Payment = CT0 * b2/CT2 = 4 * 7 = 28.
  EXPECT_DOUBLE_EQ(alloc.Payment(0), 28.0);
  // q1: after q2: {q0 4, q2 misfit(7>5)} wait - without q1, q0=4, q2
  // needs 3 -> 7 > 5 skipped; q1 after q2 -> 4+1=5 fits; after q3:
  // q3 admitted (4+1=5), q1 -> 6 > 5: last(q1) = q3.
  // Payment = CT1 * b3/CT3 = 1 * 5 = 5.
  EXPECT_DOUBLE_EQ(alloc.Payment(1), 5.0);
}

TEST(DensityTest, PropertiesMatchPaperTableI) {
  EXPECT_TRUE(MakeCaf()->properties().strategyproof);
  EXPECT_FALSE(MakeCaf()->properties().sybil_immune);
  EXPECT_TRUE(MakeCafPlus()->properties().strategyproof);
  EXPECT_FALSE(MakeCafPlus()->properties().sybil_immune);
  EXPECT_TRUE(MakeCat()->properties().strategyproof);
  EXPECT_TRUE(MakeCat()->properties().sybil_immune);
  EXPECT_TRUE(MakeCatPlus()->properties().strategyproof);
  EXPECT_FALSE(MakeCatPlus()->properties().sybil_immune);
  EXPECT_FALSE(MakeCaf()->properties().profit_guarantee);
}

TEST(DensityTest, EmptyInstance) {
  auto inst = AuctionInstance::Create({}, {});
  ASSERT_TRUE(inst.ok());
  AuctionContext rng(1);
  for (auto make : {MakeCaf, MakeCat, MakeCafPlus, MakeCatPlus, MakeGv}) {
    const Allocation alloc = make()->Run(*inst, 10.0, rng);
    EXPECT_EQ(alloc.NumAdmitted(), 0);
  }
}

TEST(DensityTest, NamesAreStable) {
  EXPECT_EQ(MakeCaf()->name(), "caf");
  EXPECT_EQ(MakeCafPlus()->name(), "caf+");
  EXPECT_EQ(MakeCat()->name(), "cat");
  EXPECT_EQ(MakeCatPlus()->name(), "cat+");
  EXPECT_EQ(MakeGv()->name(), "gv");
}

}  // namespace
}  // namespace streambid::auction
