// Copyright 2026 The streambid Authors
// CAR — CQ Admission based on Remaining load (paper §IV-A).
//
// The naive mechanism that motivates the rest of the paper: winners are
// chosen iteratively by the highest current priority Pr_i = b_i / CR_i,
// where the remaining load CR_i (Definition 2) excludes operators already
// admitted with earlier winners; payments charge each winner its
// *selection-time* remaining load at the per-unit price of the first
// rejected query. CAR is NOT bid-strategyproof: a user sharing operators
// with other winners gains by underbidding so she is selected later, with
// a smaller CR_i and hence a smaller payment — exactly the manipulation
// Figure 5 quantifies.

#ifndef STREAMBID_AUCTION_MECHANISMS_CAR_H_
#define STREAMBID_AUCTION_MECHANISMS_CAR_H_

#include "auction/mechanism.h"

namespace streambid::auction {

/// Builds the CAR mechanism.
MechanismPtr MakeCar();

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_MECHANISMS_CAR_H_
