// Copyright 2026 The streambid Authors
// The admission service: a request/response facade over the auction
// mechanisms. Instead of looking up a Mechanism, seeding an Rng, and
// assembling metrics by hand, callers submit an AdmissionRequest and get
// back an AdmissionResponse carrying the allocation, metrics, wall-clock
// timing, and structured diagnostics. The service owns the mechanism
// registry and derives a deterministic, independent RNG stream per
// request from (seed, request_index), so any request is replayable in
// isolation — the property that makes batch sweeps, sharding, and async
// submission (see ROADMAP) safe to add behind this API.

#ifndef STREAMBID_SERVICE_ADMISSION_SERVICE_H_
#define STREAMBID_SERVICE_ADMISSION_SERVICE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "auction/allocation.h"
#include "auction/context.h"
#include "auction/instance.h"
#include "auction/mechanism.h"
#include "auction/metrics.h"
#include "common/status.h"

namespace streambid::telemetry {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace streambid::telemetry

namespace streambid::service {

/// Per-request knobs.
struct AdmissionOptions {
  /// Compute the §VI AllocationMetrics for the response. Turn off on
  /// hot paths that only need the allocation (e.g. the gametheory
  /// deviation sweeps, which run thousands of auctions per report).
  bool compute_metrics = true;
  /// Re-verify feasibility of the returned allocation (used capacity
  /// within bounds, rejected queries pay zero). A violation is a
  /// mechanism bug and fails the request with kInternal.
  bool check_feasibility = false;
  /// Compute the used-capacity / utilization diagnostics, an
  /// O(queries x operators) pass over the allocation. Turn off together
  /// with compute_metrics on hot paths (runtime benches, deviation
  /// sweeps); the cheap count diagnostics are always populated.
  bool compute_diagnostics = true;
  /// Soft wall-clock budget in milliseconds; 0 disables. Mechanisms are
  /// not preempted mid-run — an overrun is reported via
  /// Diagnostics::deadline_exceeded so callers can shed or downgrade.
  double time_budget_ms = 0.0;
};

/// One admission auction to run. The instance is borrowed and must
/// outlive the call; instances are immutable, so one instance may back
/// many concurrent requests.
struct AdmissionRequest {
  const auction::AuctionInstance* instance = nullptr;
  double capacity = 0.0;
  std::string mechanism;        ///< Registry name, e.g. "cat", "two-price".
  uint64_t seed = 0;            ///< Base seed for randomized mechanisms.
  uint32_t request_index = 0;   ///< Distinguishes replicas under one seed
                                ///< (e.g. trial number in a sweep).
  AdmissionOptions options;
};

/// Structured service-level diagnostics attached to every response.
struct AdmissionDiagnostics {
  std::string mechanism;                      ///< Resolved registry name.
  auction::MechanismProperties properties;    ///< Claimed Table-I bits.
  double capacity = 0.0;
  double used_capacity = 0.0;     ///< Union load admitted (0 when
                                  ///< options.compute_diagnostics off).
  double capacity_utilization = 0.0;          ///< used / capacity.
  int num_queries = 0;
  int admitted_count = 0;
  int rejected_count = 0;
  bool deadline_exceeded = false;             ///< See AdmissionOptions.
};

/// The outcome of one admission auction.
struct AdmissionResponse {
  auction::Allocation allocation;
  /// Zero-initialized unless options.compute_metrics.
  auction::AllocationMetrics metrics;
  double elapsed_ms = 0.0;                    ///< Mechanism wall clock.
  AdmissionDiagnostics diagnostics;
};

/// Request/response admission endpoint. Owns one instance of every
/// registered mechanism and a reusable AuctionContext (scratch arena),
/// so steady-state requests run allocation-free in the greedy paths.
/// Not thread-safe: shard one service per thread.
class AdmissionService {
 public:
  AdmissionService();

  /// Runs one admission auction. Errors:
  /// - kInvalidArgument: null instance or negative capacity;
  /// - kNotFound: unknown mechanism name;
  /// - kInternal: feasibility check requested and failed.
  Result<AdmissionResponse> Admit(const AdmissionRequest& request);

  /// Runs a batch of requests — the sweep shape of the benches
  /// (mechanisms x capacities x trials in one call). All requests are
  /// validated up front, so a bad request fails the batch before any
  /// auction runs; responses are positionally aligned with requests.
  /// Each request still gets its own (seed, request_index) RNG stream,
  /// so AdmitBatch({r}) and Admit(r) are byte-identical — the
  /// determinism contract that will let this loop go parallel without
  /// changing results.
  Result<std::vector<AdmissionResponse>> AdmitBatch(
      const std::vector<AdmissionRequest>& requests);

  /// Convenience: one auction per registered mechanism (registry
  /// order), all at the same capacity and seed.
  Result<std::vector<AdmissionResponse>> AdmitAll(
      const auction::AuctionInstance& instance, double capacity,
      uint64_t seed = 0, const AdmissionOptions& options = {});

  /// Registered mechanism names, in the paper's presentation order.
  const std::vector<std::string>& MechanismNames() const {
    return names_;
  }

  bool HasMechanism(std::string_view name) const;

  /// Checks a request without running it: kInvalidArgument for a null
  /// instance or negative capacity, kNotFound for an unknown mechanism.
  /// Admit/AdmitBatch validate internally; this is exposed so batching
  /// layers (the cluster AdmissionExecutor) can fail fast at enqueue
  /// time with the same errors the serial path would produce.
  Status Validate(const AdmissionRequest& request) const;

  /// Claimed Table-I properties of a registered mechanism; kNotFound
  /// for unknown names.
  Result<auction::MechanismProperties> Properties(
      std::string_view name) const;

  /// The deterministic RNG stream id used for (seed, request_index) —
  /// exposed so tests and replay tooling can reproduce a request's
  /// stream without a service instance.
  static uint64_t DeriveStreamSeed(uint64_t seed, uint32_t request_index);

  /// Wires the service to a telemetry registry: every executed request
  /// increments service_admissions and records its mechanism wall clock
  /// into service_admit_latency. Null (the default) disables both at
  /// zero cost. Many services may share one registry — the instruments
  /// are sharded internally. The registry must outlive the service.
  void set_metrics(telemetry::MetricsRegistry* metrics);

 private:
  /// Transparent hashing so name lookups take string_view without a
  /// temporary std::string — Admit sits on harness hot paths.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  const auction::Mechanism* Find(std::string_view name) const;
  /// Runs a validated request against its resolved mechanism,
  /// including the optional feasibility re-check.
  Result<AdmissionResponse> Execute(const AdmissionRequest& request,
                                    const auction::Mechanism& mechanism);

  std::vector<auction::MechanismPtr> mechanisms_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, const auction::Mechanism*, StringHash,
                     std::equal_to<>>
      index_;
  auction::AuctionContext context_;  ///< Reseeded per request.
  /// Telemetry instruments; null unless set_metrics wired a registry.
  telemetry::Counter* admissions_metric_ = nullptr;
  telemetry::Histogram* admit_latency_metric_ = nullptr;
};

}  // namespace streambid::service

#endif  // STREAMBID_SERVICE_ADMISSION_SERVICE_H_
