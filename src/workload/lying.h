// Copyright 2026 The streambid Authors
// Strategizing-user (lying) workloads for the Figure 5 experiment.
//
// Paper §VI: a user whose query shares many operators (static fair share
// much smaller than total load) can gain under the non-strategyproof CAR
// mechanism by underbidding. The simulation gives each such user an
// alternative bid = valuation * lying_factor, submitted with probability
// lying_probability whenever CSF_i / CT_i < ratio_threshold.

#ifndef STREAMBID_WORKLOAD_LYING_H_
#define STREAMBID_WORKLOAD_LYING_H_

#include <vector>

#include "auction/instance.h"
#include "common/rng.h"

namespace streambid::workload {

/// Parameters of the lying model.
struct LyingProfile {
  double ratio_threshold = 0.0;   ///< Lie iff CSF/CT < threshold.
  double lying_probability = 0.0; ///< P(lie | eligible).
  double lying_factor = 1.0;      ///< Submitted bid = value * factor.
};

/// Moderate Lying workload (threshold .25, probability .5, factor .5).
LyingProfile ModerateLying();

/// Aggressive Lying workload (threshold .35, probability .7, factor .3).
LyingProfile AggressiveLying();

/// Computes the bids users submit under `profile` given the truthful
/// instance (whose bids are the true valuations). Indexed by QueryId.
std::vector<double> ApplyLying(const auction::AuctionInstance& truthful,
                               const LyingProfile& profile, Rng& rng);

}  // namespace streambid::workload

#endif  // STREAMBID_WORKLOAD_LYING_H_
