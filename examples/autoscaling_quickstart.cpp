// Copyright 2026 The streambid Authors
// Closed-loop capacity autoscaling in ~60 lines: a DsmsCenter with
// DsmsCenterOptions::autoscale enabled rides a bursty tenant stream.
// Watch the per-period decisions — idle shrink through the lull,
// optimized growth when the burst lands, dwell holds in between — and
// the net-profit ledger that prices energy into every period.

#include <cstdio>

#include "cloud/dsms_center.h"
#include "common/check.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"

using namespace streambid;

namespace {

stream::QuerySubmission MakeTenant(int id, double bid,
                                   double threshold) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(threshold));
  stream::QuerySubmission sub;
  sub.query_id = id;
  sub.user = id;
  sub.bid = bid;
  sub.plan = b.Build(sel);
  return sub;
}

}  // namespace

int main() {
  stream::Engine engine(stream::EngineOptions{/*capacity=*/8.0,
                                              /*tick=*/1.0,
                                              /*sink_history=*/4});
  STREAMBID_CHECK(engine
                      .RegisterSource(stream::MakeStockQuoteSource(
                          "quotes", {"IBM", "AAPL", "MSFT"},
                          /*rate=*/100.0, 5))
                      .ok());

  cloud::DsmsCenterOptions options;
  options.mechanism = "cat";
  options.period_length = 20.0;
  options.seed = 7;
  options.autoscale.enabled = true;
  options.autoscale.min_capacity_ratio = 0.25;  // Floor: 2 units.
  options.autoscale.min_dwell_periods = 2;      // Hold >= 2 periods.
  options.autoscale.max_step_ratio = 0.5;       // Move <= 50% a step.
  options.autoscale.energy.idle_cost_per_capacity = 0.05;
  cloud::DsmsCenter center(options, &engine);

  // 12 periods: a lull (2 tenants), a burst (10 tenants), a lull.
  std::printf("period tenants capacity  reason     admitted revenue "
              "energy   net\n");
  double net = 0.0;
  for (int period = 0; period < 12; ++period) {
    const int tenants = (period >= 4 && period < 8) ? 10 : 2;
    for (int t = 1; t <= tenants; ++t) {
      STREAMBID_CHECK(
          center
              .Submit(MakeTenant(t, 40.0 - 2.0 * t,
                                 100.0 + 5.0 * (t % 5)))
              .ok());
    }
    const auto report = center.RunPeriod();
    STREAMBID_CHECK(report.ok());
    net += report->revenue - report->energy_cost;
    std::printf("%6d %7d %8.2f  %-9s %8d %7.2f %6.3f %7.2f\n",
                report->period, tenants, report->provisioned_capacity,
                report->autoscale_decision->reason.c_str(),
                report->admitted, report->revenue, report->energy_cost,
                report->revenue - report->energy_cost);
  }
  std::printf("net profit over 12 periods: %.2f (baseline capacity "
              "8.0, floor %.1f)\n",
              net, center.autoscaler()->min_capacity());
  return 0;
}
