// Copyright 2026 The streambid Authors

#include "cloud/autoscaler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace streambid::cloud {

CapacityAutoscaler::CapacityAutoscaler(const AutoscalerOptions& options,
                                       double baseline_capacity)
    : options_(options), baseline_(baseline_capacity) {
  STREAMBID_CHECK_GT(baseline_capacity, 0.0);
  STREAMBID_CHECK_GT(options.min_capacity_ratio, 0.0);
  STREAMBID_CHECK_LE(options.min_capacity_ratio,
                     options.max_capacity_ratio);
  STREAMBID_CHECK_GE(options.window, 1);
  STREAMBID_CHECK_GE(options.min_dwell_periods, 1);
  STREAMBID_CHECK_GT(options.max_step_ratio, 0.0);
  STREAMBID_CHECK_GE(options.grid_points, 2);
  STREAMBID_CHECK_GT(options.grid_span, 0.0);
  STREAMBID_CHECK_GT(options.target_headroom, 0.0);
  STREAMBID_CHECK_GE(options.min_improvement_ratio, 0.0);
  STREAMBID_CHECK_GE(options.trials, 1);
  capacity_ = std::clamp(baseline_, min_capacity(), max_capacity());
  // The initial capacity has served no period yet, so the first
  // decision is free to move; thereafter the dwell counter tracks how
  // many periods the current capacity has served.
  periods_since_change_ = options_.min_dwell_periods;
}

void CapacityAutoscaler::Observe(const PeriodObservation& observation) {
  window_.push_back(observation);
  while (window_.size() > static_cast<size_t>(options_.window)) {
    window_.pop_front();
  }
}

double CapacityAutoscaler::DemandEstimate() const {
  if (window_.empty()) return capacity_;
  double sum = 0.0;
  for (const PeriodObservation& obs : window_) {
    // Demand actually served by the engine, corrected for shedding: a
    // period that shed f of its arrivals saw true demand used/(1-f).
    double used = obs.measured_utilization * obs.provisioned_capacity;
    if (obs.shed_fraction > 0.0 && obs.shed_fraction < 1.0) {
      used /= (1.0 - obs.shed_fraction);
    }
    // The auction's view of the same period can exceed the engine
    // measurement (its load model is an estimate); track whichever
    // signal says demand was higher so shrinking stays conservative.
    used = std::max(used,
                    obs.auction_utilization * obs.provisioned_capacity);
    sum += used;
  }
  return sum / static_cast<double>(window_.size());
}

uint64_t CapacityAutoscaler::EvaluationSeed(uint64_t seed, int period) {
  // Salted away from the center's (seed, period) auction streams so a
  // what-if candidate run never replays the real auction's randomness.
  return Mix64(seed ^ 0xCA9AC17BA1A4CEull) +
         static_cast<uint64_t>(period);
}

Result<AutoscaleDecision> CapacityAutoscaler::Propose(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance* instance, uint64_t seed) {
  AutoscaleDecision decision;
  decision.period = decisions_;
  decision.previous_capacity = capacity_;
  decision.capacity = capacity_;
  decision.demand_estimate = DemandEstimate();

  // Hysteresis guard 1: the current capacity must serve at least
  // min_dwell_periods periods before the controller may move again.
  if (periods_since_change_ < options_.min_dwell_periods) {
    decision.reason = "dwell";
    ++periods_since_change_;
    ++decisions_;
    return decision;
  }

  // The per-step move window: capacity bounds intersected with the
  // max-step band around the current capacity.
  const double step_lo =
      std::max(min_capacity(), capacity_ * (1.0 - options_.max_step_ratio));
  const double step_hi =
      std::min(max_capacity(), capacity_ * (1.0 + options_.max_step_ratio));

  double next = capacity_;
  if (instance == nullptr) {
    // Idle period: no auction to price, so every candidate earns 0 and
    // the greenest allowed capacity wins — shrink at the step limit.
    next = step_lo;
    decision.reason = "idle";
  } else {
    // Candidate grid centered on the demand estimate, clamped into the
    // move window; the current capacity is always a candidate so "hold"
    // competes on equal terms (and the improvement guard has a
    // reference evaluation).
    const double center =
        std::clamp(decision.demand_estimate * options_.target_headroom,
                   step_lo, step_hi);
    std::vector<double> candidates;
    candidates.reserve(static_cast<size_t>(options_.grid_points) + 1);
    for (int i = 0; i < options_.grid_points; ++i) {
      const double f =
          -options_.grid_span +
          2.0 * options_.grid_span * static_cast<double>(i) /
              static_cast<double>(options_.grid_points - 1);
      candidates.push_back(
          std::clamp(center * (1.0 + f), step_lo, step_hi));
    }
    candidates.push_back(capacity_);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    STREAMBID_ASSIGN_OR_RETURN(
        const std::vector<CapacityEvaluation> evals,
        EvaluateCapacities(service, mechanism, *instance, candidates,
                           options_.energy,
                           EvaluationSeed(seed, decision.period),
                           options_.trials));
    const CapacityEvaluation& best = BestEvaluation(evals);
    const CapacityEvaluation* current = nullptr;
    for (const CapacityEvaluation& e : evals) {
      if (e.capacity == capacity_) current = &e;
    }
    STREAMBID_CHECK(current != nullptr);
    decision.evaluated = true;
    // Hysteresis guard 2: moving must beat holding by a margin.
    const double hurdle =
        current->net_profit +
        options_.min_improvement_ratio * std::abs(current->net_profit);
    if (best.capacity != capacity_ && best.net_profit > hurdle) {
      next = best.capacity;
      decision.expected_net_profit = best.net_profit;
    } else {
      decision.expected_net_profit = current->net_profit;
    }
    decision.reason = "optimized";
  }

  decision.capacity = next;
  decision.changed = next != capacity_;
  if (decision.changed) {
    capacity_ = next;
    periods_since_change_ = 1;  // Serves its first period now.
  } else {
    ++periods_since_change_;
  }
  ++decisions_;
  return decision;
}

}  // namespace streambid::cloud
