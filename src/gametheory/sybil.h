// Copyright 2026 The streambid Authors
// Sybil-attack harness (paper §V). A sybil attack submits additional
// fake queries under forged identities; the attacker pays admitted fakes'
// payments and values them at zero, so her payoff is
//   sum over her real queries (v - p) - sum over admitted fakes (p).
// A mechanism is sybil immune iff no attack ever raises this payoff
// (Definition 16). Auctions run through the AdmissionService.

#ifndef STREAMBID_GAMETHEORY_SYBIL_H_
#define STREAMBID_GAMETHEORY_SYBIL_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "auction/instance.h"
#include "common/status.h"
#include "service/admission_service.h"

namespace streambid::gametheory {

/// A sybil attack: fake queries (attributed to the attacker's user id for
/// payoff accounting — the mechanism itself cannot link them) and any new
/// operators the fakes reference (offsets are relative to the base
/// instance's operator count).
struct SybilAttack {
  std::vector<auction::OperatorSpec> new_operators;
  std::vector<auction::QuerySpec> fake_queries;
};

/// Result of evaluating one attack.
struct SybilReport {
  double payoff_without_attack = 0.0;
  double payoff_with_attack = 0.0;
  double Gain() const { return payoff_with_attack - payoff_without_attack; }
  bool Profitable(double tolerance = 1e-7) const {
    return Gain() > tolerance;
  }
};

/// The §V-A universal attack against the fair-share mechanisms: fake
/// queries with negligible valuations replicating the attacker's operator
/// set, which deflates her CSF (and her fair-share payment) while the
/// fakes rank too low to win.
SybilAttack FairShareAttack(const auction::AuctionInstance& instance,
                            auction::QueryId attacker_query, int num_fakes,
                            double fake_valuation = 1e-6);

/// Evaluates `attack` by `attacker` (expected payoffs over `trials`
/// (seed, trial)-streamed runs for randomized mechanisms). All other
/// users bid truthfully.
Result<SybilReport> EvaluateSybilAttack(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance, double capacity,
    auction::UserId attacker, const SybilAttack& attack, uint64_t seed = 0,
    int trials = 1);

/// Randomized attack search: tries fair-share-style attacks of various
/// sizes/valuations for `max_attackers` random attackers; returns the
/// best gain found (<= tolerance for a sybil-immune mechanism).
SybilReport SearchSybilAttacks(service::AdmissionService& service,
                               std::string_view mechanism,
                               const auction::AuctionInstance& instance,
                               double capacity, uint64_t seed,
                               int max_attackers, int trials = 1);

}  // namespace streambid::gametheory

#endif  // STREAMBID_GAMETHEORY_SYBIL_H_
