// Copyright 2026 The streambid Authors

#include "auction/mechanisms/two_price.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "auction/admitted_set.h"
#include "auction/greedy_common.h"
#include "common/check.h"

namespace streambid::auction {
namespace {

/// Computes the optimal single-price profit of a valuation multiset
/// sorted non-increasingly: max_i i * v_i (1-based), returning the price
/// v_i at the argmax (0 when empty). This is Step 5 of Algorithm 3.
double OptimalSinglePrice(const std::vector<double>& sorted_desc,
                          double* best_profit) {
  double best = 0.0;
  double price = 0.0;
  for (size_t i = 0; i < sorted_desc.size(); ++i) {
    const double profit = static_cast<double>(i + 1) * sorted_desc[i];
    if (profit > best) {
      best = profit;
      price = sorted_desc[i];
    }
  }
  if (best_profit != nullptr) *best_profit = best;
  return price;
}

class TwoPriceMechanism : public Mechanism {
 public:
  TwoPriceMechanism(std::string name, const TwoPriceOptions& options)
      : name_(std::move(name)), options_(options) {}

  const std::string& name() const override { return name_; }

  MechanismProperties properties() const override {
    MechanismProperties p;
    p.strategyproof = true;
    p.sybil_immune = false;  // §V-C: vulnerable (Theorem 20).
    p.profit_guarantee = true;
    p.randomized = true;
    return p;
  }

  Allocation Run(const AuctionInstance& instance, double capacity,
                 AuctionContext& context) const override {
    const int n = instance.num_queries();
    Allocation alloc = MakeEmptyAllocation(name_, capacity, n);
    if (n == 0) return alloc;

    // Steps 1-2: greedy-by-valuation candidate set H (maximal prefix of
    // the bid-sorted list that fits; union loads, shared ops counted
    // once).
    const std::vector<QueryId>& order =
        PriorityOrder(instance, LoadBasis::kUnit, context.workspace());
    const GreedyScan scan =
        RunGreedyScan(instance, capacity, order, MisfitPolicy::kStop);
    std::vector<QueryId> h;
    for (size_t p = 0; p < order.size(); ++p) {
      if (scan.admitted[static_cast<size_t>(order[p])]) {
        h.push_back(order[p]);
      } else {
        break;  // kStop: everything from here on is in L.
      }
    }

    // Step 3: duplicate adjustment at the H/L boundary.
    if (options_.exhaustive_step3 && scan.first_loser_pos >= 0 &&
        !h.empty()) {
      const QueryId first_lost =
          order[static_cast<size_t>(scan.first_loser_pos)];
      const double v_l = instance.bid(first_lost);
      if (instance.bid(h.back()) == v_l) {
        AdjustDuplicates(instance, capacity, v_l, &h);
      }
    }

    // Step 4: random even partition of H into A and B.
    std::vector<QueryId> shuffled = h;
    context.rng().Shuffle(shuffled);
    const size_t half = (shuffled.size() + 1) / 2;
    std::vector<QueryId> a(shuffled.begin(),
                           shuffled.begin() + static_cast<long>(half));
    std::vector<QueryId> b(shuffled.begin() + static_cast<long>(half),
                           shuffled.end());

    // Step 5: optimal single price within each half.
    std::vector<double>& vals = context.workspace().values;
    const double price_a = HalfPrice(instance, a, vals);
    const double price_b = HalfPrice(instance, b, vals);

    // Step 6: cross-application. Winners of B beat price_a and pay it;
    // winners of A beat price_b and pay it.
    for (QueryId q : b) {
      if (instance.bid(q) > price_a) {
        alloc.admitted[static_cast<size_t>(q)] = true;
        alloc.payments[static_cast<size_t>(q)] = price_a;
      }
    }
    for (QueryId q : a) {
      if (instance.bid(q) > price_b) {
        alloc.admitted[static_cast<size_t>(q)] = true;
        alloc.payments[static_cast<size_t>(q)] = price_b;
      }
    }
    return alloc;
  }

 private:
  static double HalfPrice(const AuctionInstance& instance,
                          const std::vector<QueryId>& half,
                          std::vector<double>& vals) {
    vals.clear();
    vals.reserve(half.size());
    for (QueryId q : half) vals.push_back(instance.bid(q));
    std::sort(vals.begin(), vals.end(), std::greater<double>());
    return OptimalSinglePrice(vals, nullptr);
  }

  /// Step 3: D = every query valued exactly v_l; H' = H - D; replace H by
  /// H' plus the largest-cardinality subset of D that fits alongside H'
  /// (ties broken by higher total value, then deterministically).
  void AdjustDuplicates(const AuctionInstance& instance, double capacity,
                        double v_l, std::vector<QueryId>* h) const {
    std::vector<QueryId> d;
    for (QueryId i = 0; i < instance.num_queries(); ++i) {
      if (instance.bid(i) == v_l) d.push_back(i);
    }
    if (d.size() >
        static_cast<size_t>(options_.max_exhaustive_duplicates)) {
      // Documented fallback: enumeration infeasible; behave like the
      // polynomial variant (keep H as computed by Step 2).
      return;
    }
    std::vector<QueryId> h_prime;
    for (QueryId q : *h) {
      if (instance.bid(q) != v_l) h_prime.push_back(q);
    }

    // Base set admitted once; each subset trial copies it (the copy is a
    // bitset over operators — far cheaper than re-admitting H').
    AdmittedSet base(instance);
    for (QueryId q : h_prime) base.Admit(q);

    const size_t dn = d.size();
    size_t best_mask = 0;
    int best_count = -1;
    for (size_t mask = 0; mask < (1ull << dn); ++mask) {
      AdmittedSet set = base;
      int count = 0;
      bool fits = true;
      for (size_t k = 0; k < dn; ++k) {
        if ((mask >> k) & 1u) {
          const QueryId q = d[k];
          if (!set.Fits(q, capacity)) {
            fits = false;
            break;
          }
          set.Admit(q);
          ++count;
        }
      }
      if (fits && count > best_count) {
        best_count = count;
        best_mask = mask;
      }
    }
    *h = std::move(h_prime);
    for (size_t k = 0; k < dn; ++k) {
      if ((best_mask >> k) & 1u) h->push_back(d[k]);
    }
  }

  std::string name_;
  TwoPriceOptions options_;
};

}  // namespace

MechanismPtr MakeTwoPrice() {
  return std::make_unique<TwoPriceMechanism>("two-price", TwoPriceOptions{});
}

MechanismPtr MakeTwoPricePoly() {
  TwoPriceOptions options;
  options.exhaustive_step3 = false;
  return std::make_unique<TwoPriceMechanism>("two-price-poly", options);
}

MechanismPtr MakeTwoPriceWithOptions(const TwoPriceOptions& options) {
  return std::make_unique<TwoPriceMechanism>(
      options.exhaustive_step3 ? "two-price" : "two-price-poly", options);
}

}  // namespace streambid::auction
