// Copyright 2026 The streambid Authors
// Sybil-strategyproofness (Definition 18 / Theorem 19): CAT resists
// every combined lie+sybil strategy in the search grid; CAF falls to
// combinations even where pure bid deviations fail.

#include "gametheory/combined.h"

#include <gtest/gtest.h>

#include "auction/registry.h"
#include "gametheory/attacks.h"
#include "workload/generator.h"

namespace streambid::gametheory {
namespace {

auction::AuctionInstance RandomShared(uint64_t seed) {
  workload::WorkloadParams p;
  p.num_queries = 30;
  p.base_num_operators = 12;
  p.base_max_sharing = 8;
  Rng rng(seed);
  auto inst = workload::GenerateBaseWorkload(p, rng).ToInstance();
  EXPECT_TRUE(inst.ok());
  return std::move(inst).value();
}

class CombinedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CombinedSweep, CatIsSybilStrategyproof) {
  const auction::AuctionInstance inst = RandomShared(GetParam());
  auto cat = auction::MakeMechanism("cat").value();
  Rng rng(GetParam() + 400);
  CombinedAttackOptions options;
  const CombinedAttackReport best = SweepCombinedAttacks(
      *cat, inst, inst.total_union_load() * 0.5, options, rng,
      /*max_attackers=*/8);
  EXPECT_FALSE(best.Profitable(1e-6))
      << "query " << best.attacker_query << " gains " << best.Gain()
      << " bidding " << best.best_bid << " with " << best.best_num_fakes
      << " fakes at " << best.best_fake_value;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinedSweep,
                         ::testing::Range<uint64_t>(1, 9));

TEST(CombinedAttackTest, CafFallsToCombinedStrategy) {
  // The §V-A scenario: the attacker loses truthfully; fakes alone
  // already help against CAF, and the combined search must find at
  // least as much.
  const AttackScenario s = FairShareScenario();
  auto caf = auction::MakeMechanism("caf").value();
  Rng rng(5);
  CombinedAttackOptions options;
  const CombinedAttackReport report = SearchCombinedAttack(
      *caf, s.instance, s.capacity, /*attacker_query=*/1, options, rng);
  EXPECT_TRUE(report.Profitable());
  EXPECT_GT(report.best_num_fakes, 0);  // The gain needs the sybils.
}

TEST(CombinedAttackTest, PureDeviationSubsumedByGrid) {
  // With fake_counts = {0}, the search degenerates to a bid-deviation
  // sweep; on Example 1 under CAT it must find nothing.
  auction::AuctionInstance inst = Example1Instance();
  auto cat = auction::MakeMechanism("cat").value();
  Rng rng(6);
  CombinedAttackOptions options;
  options.fake_counts = {0};
  for (auction::QueryId q = 0; q < inst.num_queries(); ++q) {
    const CombinedAttackReport r = SearchCombinedAttack(
        *cat, inst, kExample1Capacity, q, options, rng);
    EXPECT_FALSE(r.Profitable()) << "query " << q;
  }
}

TEST(CombinedAttackTest, ReportsTruthfulBaseline) {
  auction::AuctionInstance inst = Example1Instance();
  auto cat = auction::MakeMechanism("cat").value();
  Rng rng(7);
  CombinedAttackOptions options;
  const CombinedAttackReport r =
      SearchCombinedAttack(*cat, inst, kExample1Capacity, 0, options, rng);
  // CAT admits q1 at $50: payoff 5.
  EXPECT_DOUBLE_EQ(r.truthful_payoff, 5.0);
  EXPECT_GE(r.best_payoff, r.truthful_payoff);
}

}  // namespace
}  // namespace streambid::gametheory
