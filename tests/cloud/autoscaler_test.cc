// Copyright 2026 The streambid Authors
// CapacityAutoscaler unit behavior: demand tracking, hysteresis, idle
// shrink, error hygiene, and the DsmsCenter closed-loop wiring.

#include "cloud/autoscaler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cloud/dsms_center.h"
#include "service/admission_service.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"
#include "workload/generator.h"

namespace streambid::cloud {
namespace {

auction::AuctionInstance SharedWorkload(uint64_t seed) {
  workload::WorkloadParams p;
  p.num_queries = 60;
  p.base_num_operators = 24;
  p.base_max_sharing = 8;
  Rng rng(seed);
  auto inst = workload::GenerateBaseWorkload(p, rng).ToInstance();
  EXPECT_TRUE(inst.ok());
  return std::move(inst).value();
}

AutoscalerOptions FastOptions() {
  AutoscalerOptions options;
  options.enabled = true;
  options.min_capacity_ratio = 0.25;
  options.max_capacity_ratio = 1.0;
  options.min_dwell_periods = 1;  // Most tests exercise single steps.
  options.max_step_ratio = 0.5;
  return options;
}

TEST(CapacityAutoscalerTest, StartsAtBaselineClampedIntoBounds) {
  AutoscalerOptions options = FastOptions();
  CapacityAutoscaler scaler(options, 100.0);
  EXPECT_DOUBLE_EQ(scaler.capacity(), 100.0);
  EXPECT_DOUBLE_EQ(scaler.min_capacity(), 25.0);
  EXPECT_DOUBLE_EQ(scaler.max_capacity(), 100.0);

  options.max_capacity_ratio = 0.8;
  options.min_capacity_ratio = 0.5;
  CapacityAutoscaler clamped(options, 100.0);
  EXPECT_DOUBLE_EQ(clamped.capacity(), 80.0);
}

TEST(CapacityAutoscalerTest, ObserveWindowRolls) {
  AutoscalerOptions options = FastOptions();
  options.window = 3;
  CapacityAutoscaler scaler(options, 10.0);
  for (int i = 0; i < 5; ++i) {
    PeriodObservation obs;
    obs.provisioned_capacity = 10.0;
    obs.measured_utilization = 0.1 * (i + 1);
    scaler.Observe(obs);
  }
  ASSERT_EQ(scaler.window().size(), 3u);
  // Oldest two rolled out: the window holds utilizations .3, .4, .5.
  EXPECT_DOUBLE_EQ(scaler.window().front().measured_utilization, 0.3);
  EXPECT_DOUBLE_EQ(scaler.window().back().measured_utilization, 0.5);
  EXPECT_DOUBLE_EQ(scaler.DemandEstimate(), 4.0);  // mean(3,4,5).
}

TEST(CapacityAutoscalerTest, DemandEstimateCorrectsForShedding) {
  CapacityAutoscaler scaler(FastOptions(), 10.0);
  PeriodObservation obs;
  obs.provisioned_capacity = 10.0;
  obs.measured_utilization = 0.5;
  obs.shed_fraction = 0.5;  // Half the arrivals were dropped.
  scaler.Observe(obs);
  EXPECT_DOUBLE_EQ(scaler.DemandEstimate(), 10.0);  // 5 / (1 - .5).
}

TEST(CapacityAutoscalerTest, DemandEstimateTakesMaxOfEngineAndAuction) {
  CapacityAutoscaler scaler(FastOptions(), 10.0);
  PeriodObservation obs;
  obs.provisioned_capacity = 10.0;
  obs.measured_utilization = 0.2;
  obs.auction_utilization = 0.7;  // The auction saw more demand.
  scaler.Observe(obs);
  EXPECT_DOUBLE_EQ(scaler.DemandEstimate(), 7.0);
}

TEST(CapacityAutoscalerTest, EmptyWindowEstimatesCurrentCapacity) {
  CapacityAutoscaler scaler(FastOptions(), 10.0);
  EXPECT_DOUBLE_EQ(scaler.DemandEstimate(), 10.0);
}

TEST(CapacityAutoscalerTest, IdlePeriodsShrinkTowardMinimumAtStepRate) {
  service::AdmissionService service;
  CapacityAutoscaler scaler(FastOptions(), 100.0);
  // No upcoming auction: each decision shrinks by the step ratio until
  // the lower bound, never below.
  double expected = 100.0;
  for (int i = 0; i < 5; ++i) {
    const auto decision = scaler.Propose(service, "cat", nullptr, 1);
    ASSERT_TRUE(decision.ok());
    expected = std::max(scaler.min_capacity(), expected * 0.5);
    EXPECT_EQ(decision->reason, "idle");
    EXPECT_FALSE(decision->evaluated);
    EXPECT_DOUBLE_EQ(decision->capacity, expected);
    EXPECT_DOUBLE_EQ(scaler.capacity(), expected);
  }
  EXPECT_DOUBLE_EQ(scaler.capacity(), scaler.min_capacity());
}

TEST(CapacityAutoscalerTest, DwellHoldsCapacityBetweenChanges) {
  service::AdmissionService service;
  AutoscalerOptions options = FastOptions();
  options.min_dwell_periods = 3;
  CapacityAutoscaler scaler(options, 100.0);
  // First decision is free (the initial capacity never served a
  // period): the idle shrink fires.
  auto d0 = scaler.Propose(service, "cat", nullptr, 1);
  ASSERT_TRUE(d0.ok());
  EXPECT_TRUE(d0->changed);
  EXPECT_DOUBLE_EQ(d0->capacity, 50.0);
  // The new capacity must now serve min_dwell_periods periods.
  for (int i = 0; i < 2; ++i) {
    auto d = scaler.Propose(service, "cat", nullptr, 1);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->reason, "dwell") << i;
    EXPECT_FALSE(d->changed);
    EXPECT_DOUBLE_EQ(d->capacity, 50.0);
  }
  auto d3 = scaler.Propose(service, "cat", nullptr, 1);
  ASSERT_TRUE(d3.ok());
  EXPECT_TRUE(d3->changed);
  EXPECT_DOUBLE_EQ(d3->capacity, 25.0);  // == min bound.
}

TEST(CapacityAutoscalerTest, OptimizedDecisionStaysWithinStepAndBounds) {
  service::AdmissionService service;
  const auction::AuctionInstance inst = SharedWorkload(11);
  AutoscalerOptions options = FastOptions();
  CapacityAutoscaler scaler(options, inst.total_union_load());
  const double before = scaler.capacity();
  const auto decision = scaler.Propose(service, "cat", &inst, 7);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->evaluated);
  EXPECT_EQ(decision->reason, "optimized");
  EXPECT_GE(decision->capacity, scaler.min_capacity());
  EXPECT_LE(decision->capacity, scaler.max_capacity());
  EXPECT_GE(decision->capacity, before * (1.0 - options.max_step_ratio));
  EXPECT_LE(decision->capacity, before * (1.0 + options.max_step_ratio));
  EXPECT_DOUBLE_EQ(decision->previous_capacity, before);
  EXPECT_DOUBLE_EQ(scaler.capacity(), decision->capacity);
}

TEST(CapacityAutoscalerTest, GrowsBackAfterShrinkWhenDemandReturns) {
  service::AdmissionService service;
  const auction::AuctionInstance inst = SharedWorkload(12);
  const double demand = inst.total_union_load();
  AutoscalerOptions options = FastOptions();
  options.min_capacity_ratio = 0.1;
  CapacityAutoscaler scaler(options, demand);
  // Idle periods shrink to the floor...
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scaler.Propose(service, "cat", nullptr, 1).ok());
  }
  ASSERT_DOUBLE_EQ(scaler.capacity(), scaler.min_capacity());
  // ...then sustained demand (observations near saturation + a real
  // instance) walks capacity back up, one bounded step at a time.
  double previous = scaler.capacity();
  bool grew = false;
  for (int i = 0; i < 10; ++i) {
    PeriodObservation obs;
    obs.provisioned_capacity = scaler.capacity();
    obs.measured_utilization = 1.0;
    obs.auction_utilization = 1.0;
    obs.submissions = 40;
    obs.admitted = 5;
    scaler.Observe(obs);
    const auto decision = scaler.Propose(service, "cat", &inst, 5);
    ASSERT_TRUE(decision.ok());
    EXPECT_LE(decision->capacity,
              previous * (1.0 + options.max_step_ratio) + 1e-12);
    grew = grew || decision->capacity > previous;
    previous = decision->capacity;
  }
  EXPECT_TRUE(grew);
  EXPECT_GT(scaler.capacity(), scaler.min_capacity());
}

TEST(CapacityAutoscalerTest, EvaluationErrorsPropagateWithoutMutation) {
  service::AdmissionService service;
  const auction::AuctionInstance inst = SharedWorkload(13);
  CapacityAutoscaler scaler(FastOptions(), 50.0);
  const auto decision =
      scaler.Propose(service, "no-such-mechanism", &inst, 1);
  EXPECT_EQ(decision.status().code(), StatusCode::kNotFound);
  EXPECT_DOUBLE_EQ(scaler.capacity(), 50.0);
  // The failed call did not consume a decision slot: the next valid
  // call is still decision 0.
  const auto ok = scaler.Propose(service, "cat", &inst, 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->period, 0);
}

TEST(CapacityAutoscalerTest, EvaluationSeedIsSaltedAndPeriodDistinct) {
  const uint64_t a = CapacityAutoscaler::EvaluationSeed(1, 0);
  const uint64_t b = CapacityAutoscaler::EvaluationSeed(1, 1);
  const uint64_t c = CapacityAutoscaler::EvaluationSeed(2, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, 1u);  // Not the raw center seed.
}

// --- DsmsCenter closed-loop wiring. ----------------------------------

class AutoscaledCenterTest : public ::testing::Test {
 protected:
  AutoscaledCenterTest() : engine_(stream::EngineOptions{4.0, 1.0, 8}) {
    EXPECT_TRUE(engine_
                    .RegisterSource(stream::MakeStockQuoteSource(
                        "quotes", {"IBM", "AAPL", "MSFT"}, 100.0, 11))
                    .ok());
  }

  stream::QuerySubmission MakeSubmission(int id, auction::UserId user,
                                         double bid, double threshold) {
    stream::QueryBuilder b;
    const int src = b.Source("quotes");
    const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                             stream::Value(threshold));
    stream::QuerySubmission sub;
    sub.query_id = id;
    sub.user = user;
    sub.bid = bid;
    sub.plan = b.Build(sel);
    return sub;
  }

  DsmsCenterOptions AutoscaledOptions() {
    DsmsCenterOptions options;
    options.mechanism = "cat";
    options.period_length = 5.0;
    options.autoscale.enabled = true;
    options.autoscale.min_dwell_periods = 1;
    return options;
  }

  stream::Engine engine_;
};

TEST_F(AutoscaledCenterTest, ReportsCarryDecisionAndProvisioning) {
  DsmsCenter center(AutoscaledOptions(), &engine_);
  ASSERT_NE(center.autoscaler(), nullptr);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(2, 2, 40.0, 120.0)).ok());
  const auto report = center.RunPeriod();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->autoscale_decision.has_value());
  const AutoscaleDecision& decision = *report->autoscale_decision;
  EXPECT_EQ(decision.period, 0);
  EXPECT_DOUBLE_EQ(decision.previous_capacity, 4.0);
  EXPECT_DOUBLE_EQ(report->provisioned_capacity, decision.capacity);
  EXPECT_DOUBLE_EQ(engine_.options().capacity, decision.capacity);
  EXPECT_GT(report->energy_cost, 0.0);
}

TEST_F(AutoscaledCenterTest, IdlePeriodShrinksProvisioning) {
  DsmsCenter center(AutoscaledOptions(), &engine_);
  const auto report = center.RunPeriod();  // No submissions.
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->autoscale_decision.has_value());
  EXPECT_EQ(report->autoscale_decision->reason, "idle");
  EXPECT_LT(report->provisioned_capacity, 4.0);
  EXPECT_DOUBLE_EQ(engine_.options().capacity,
                   report->provisioned_capacity);
}

TEST_F(AutoscaledCenterTest, DisabledAutoscaleLeavesCapacityAlone) {
  DsmsCenterOptions options;
  options.mechanism = "cat";
  options.period_length = 5.0;
  DsmsCenter center(options, &engine_);
  EXPECT_EQ(center.autoscaler(), nullptr);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  const auto report = center.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->autoscale_decision.has_value());
  EXPECT_DOUBLE_EQ(report->provisioned_capacity, 4.0);
  EXPECT_DOUBLE_EQ(engine_.options().capacity, 4.0);
  // Energy is still priced so fixed-vs-autoscaled nets compare.
  EXPECT_GT(report->energy_cost, 0.0);
}

TEST_F(AutoscaledCenterTest, PreparedRequestUsesDecidedCapacity) {
  DsmsCenter center(AutoscaledOptions(), &engine_);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  auto prepared = center.PrepareAuction();
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->has_auction);
  EXPECT_DOUBLE_EQ(prepared->request.capacity,
                   engine_.options().capacity);
  EXPECT_DOUBLE_EQ(prepared->request.capacity,
                   center.autoscaler()->capacity());
}

}  // namespace
}  // namespace streambid::cloud
