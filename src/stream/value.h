// Copyright 2026 The streambid Authors
// Typed scalar values flowing through the stream engine.

#ifndef STREAMBID_STREAM_VALUE_H_
#define STREAMBID_STREAM_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace streambid::stream {

/// Scalar type tags for schema fields.
enum class ValueType {
  kInt64,
  kDouble,
  kString,
};

/// Returns a stable name for `type` ("int64", "double", "string").
const char* ValueTypeName(ValueType type);

/// A dynamically typed scalar. Streams carry small tuples of these;
/// numeric comparisons promote int64 to double.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  // NOLINTNEXTLINE(google-explicit-constructor): literal-friendly.
  Value(int64_t v) : data_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(int v) : data_(static_cast<int64_t>(v)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(double v) : data_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kInt64;
      case 1:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_numeric() const { return type() != ValueType::kString; }

  int64_t AsInt64() const {
    STREAMBID_CHECK(type() == ValueType::kInt64);
    return std::get<int64_t>(data_);
  }

  /// Numeric coercion (int64 or double); CHECK-fails on strings.
  double AsDouble() const {
    if (type() == ValueType::kInt64) {
      return static_cast<double>(std::get<int64_t>(data_));
    }
    STREAMBID_CHECK(type() == ValueType::kDouble);
    return std::get<double>(data_);
  }

  const std::string& AsString() const {
    STREAMBID_CHECK(type() == ValueType::kString);
    return std::get<std::string>(data_);
  }

  /// Equality: numeric values compare by promoted double; strings by
  /// content; mixed string/numeric is false.
  bool operator==(const Value& other) const {
    if (is_numeric() && other.is_numeric()) {
      return AsDouble() == other.AsDouble();
    }
    if (!is_numeric() && !other.is_numeric()) {
      return AsString() == other.AsString();
    }
    return false;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Ordering for numeric values and lexicographic for strings;
  /// CHECK-fails on mixed comparison.
  bool operator<(const Value& other) const {
    if (is_numeric() && other.is_numeric()) {
      return AsDouble() < other.AsDouble();
    }
    STREAMBID_CHECK(!is_numeric() && !other.is_numeric());
    return AsString() < other.AsString();
  }

  /// Render for debugging and sinks.
  std::string ToString() const;

  /// Hash key usable for group-by and join keys.
  std::string ToKey() const;

 private:
  std::variant<int64_t, double, std::string> data_;
};

}  // namespace streambid::stream

#endif  // STREAMBID_STREAM_VALUE_H_
