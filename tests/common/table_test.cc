// Copyright 2026 The streambid Authors

#include "common/table.h"

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace streambid {
namespace {

TEST(TextTableTest, CsvRoundTrip) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, AlignedContainsAllCells) {
  TextTable t({"mechanism", "profit"});
  t.AddRow({"caf", "123.45"});
  const std::string s = t.ToAligned();
  EXPECT_NE(s.find("mechanism"), std::string::npos);
  EXPECT_NE(s.find("caf"), std::string::npos);
  EXPECT_NE(s.find("123.45"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(FormatTest, Double) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(FormatPercent(0.5, 1), "50.0%");
  EXPECT_EQ(FormatPercent(0.987, 0), "99%");
}

TEST(FormatTest, Int) { EXPECT_EQ(FormatInt(1234567), "1234567"); }

TEST(StringUtilTest, SplitAndJoin) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, EnvIntFallback) {
  EXPECT_EQ(EnvInt("STREAMBID_DOES_NOT_EXIST_XYZ", 42), 42);
  ::setenv("STREAMBID_TEST_ENV_INT", "17", 1);
  EXPECT_EQ(EnvInt("STREAMBID_TEST_ENV_INT", 42), 17);
  ::setenv("STREAMBID_TEST_ENV_INT", "not-a-number", 1);
  EXPECT_EQ(EnvInt("STREAMBID_TEST_ENV_INT", 42), 42);
  ::unsetenv("STREAMBID_TEST_ENV_INT");
}

}  // namespace
}  // namespace streambid
