// Copyright 2026 The streambid Authors

#include "auction/mechanisms/car.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "auction/admitted_set.h"
#include "common/check.h"

namespace streambid::auction {
namespace {

using HeapSlot = AuctionWorkspace::HeapSlot;

/// Max-heap order for the lazy priority queue (std::push_heap places the
/// *greatest* element first). Priorities only increase over the run (CR
/// shrinks as operators get admitted), so we push a fresh entry whenever
/// a query's CR changes and discard stale entries on pop.
bool HeapLess(const HeapSlot& a, const HeapSlot& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  // Deterministic tie-break: lower id wins, so it must compare greater.
  return a.query > b.query;
}

class CarMechanism : public Mechanism {
 public:
  const std::string& name() const override {
    static const std::string kName = "car";
    return kName;
  }

  MechanismProperties properties() const override {
    MechanismProperties p;
    p.strategyproof = false;  // §IV-A: payments depend on bids.
    p.sybil_immune = false;
    return p;
  }

  Allocation Run(const AuctionInstance& instance, double capacity,
                 AuctionContext& context) const override {
    const int n = instance.num_queries();
    Allocation alloc = MakeEmptyAllocation("car", capacity, n);
    if (n == 0) return alloc;

    // All scratch lives in the context workspace, so a service running
    // steady-state auctions of similar size pays no allocations here.
    AuctionWorkspace& ws = context.workspace();
    // Current remaining load per query, updated incrementally as
    // operators get admitted.
    std::vector<double>& cr = ws.remaining;
    cr.resize(static_cast<size_t>(n));
    std::vector<uint8_t>& done = ws.flags;
    done.assign(static_cast<size_t>(n), 0);
    std::vector<HeapSlot>& heap = ws.heap;
    heap.clear();
    heap.reserve(static_cast<size_t>(n));
    for (QueryId i = 0; i < n; ++i) {
      cr[static_cast<size_t>(i)] = instance.total_load(i);
      Push(heap, {Priority(instance.bid(i), cr[static_cast<size_t>(i)]), i,
                  cr[static_cast<size_t>(i)]});
    }

    AdmittedSet set(instance);
    // Selection-time remaining load of each winner — the load its payment
    // is based on (§IV-A).
    std::vector<double>& cr_at_selection = ws.selection;
    cr_at_selection.assign(static_cast<size_t>(n), 0.0);
    QueryId lost = kNoQuery;
    double lost_cr = 0.0;

    while (!heap.empty()) {
      const HeapSlot top = Pop(heap);
      const auto qi = static_cast<size_t>(top.query);
      if (done[qi] != 0) continue;
      if (top.stamp != cr[qi]) continue;  // Stale entry.

      const QueryId q = top.query;
      const double q_cr = cr[qi];
      if (set.used() + q_cr > capacity + kFitEpsilon) {
        // First query that does not fit: the scan stops (§IV-A example)
        // and this query prices the winners.
        lost = q;
        lost_cr = q_cr;
        break;
      }
      // Admit q; update CRs of queries sharing its not-yet-admitted ops.
      done[qi] = 1;
      alloc.admitted[qi] = true;
      cr_at_selection[qi] = q_cr;
      for (OperatorId j : instance.query_operators(q)) {
        if (set.IsOperatorAdmitted(j)) continue;
        const double load = instance.operator_load(j);
        for (QueryId other : instance.operator_queries(j)) {
          const auto oi = static_cast<size_t>(other);
          if (done[oi] != 0 || other == q) continue;
          cr[oi] -= load;
          if (cr[oi] < 0.0) cr[oi] = 0.0;  // Guard rounding.
          Push(heap, {Priority(instance.bid(other), cr[oi]), other, cr[oi]});
        }
      }
      set.Admit(q);
    }

    if (lost == kNoQuery || lost_cr <= 0.0) {
      // Everyone admitted (or the blocker costs nothing): free service.
      return alloc;
    }
    const double unit_price = instance.bid(lost) / lost_cr;
    for (QueryId i = 0; i < n; ++i) {
      const auto qi = static_cast<size_t>(i);
      if (alloc.admitted[qi]) {
        alloc.payments[qi] = cr_at_selection[qi] * unit_price;
      }
    }
    return alloc;
  }

 private:
  static void Push(std::vector<HeapSlot>& heap, HeapSlot slot) {
    heap.push_back(slot);
    std::push_heap(heap.begin(), heap.end(), HeapLess);
  }

  static HeapSlot Pop(std::vector<HeapSlot>& heap) {
    std::pop_heap(heap.begin(), heap.end(), HeapLess);
    const HeapSlot top = heap.back();
    heap.pop_back();
    return top;
  }

  static double Priority(double bid, double cr) {
    // A fully covered query (CR = 0) costs nothing to admit; it sorts
    // ahead of everything (and trivially fits).
    return cr > 0.0 ? bid / cr : std::numeric_limits<double>::infinity();
  }
};

}  // namespace

MechanismPtr MakeCar() { return std::make_unique<CarMechanism>(); }

}  // namespace streambid::auction
