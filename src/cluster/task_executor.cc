// Copyright 2026 The streambid Authors

#include "cluster/task_executor.h"

#include <algorithm>

#include "common/timer.h"
#include "telemetry/metrics.h"

namespace streambid::cluster {

TaskExecutor::TaskExecutor(const ExecutorOptions& options) {
  int n = options.num_threads;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  max_queue_depth_ = options.max_queue_depth > 0
                         ? static_cast<size_t>(options.max_queue_depth)
                         : 0;
  if (options.metrics != nullptr) {
    tasks_executed_metric_ =
        options.metrics->GetCounter("executor_tasks_executed");
    queue_depth_metric_ = options.metrics->GetGauge("executor_queue_depth");
    task_latency_metric_ =
        options.metrics->GetHistogram("executor_task_latency");
  }
  services_.reserve(static_cast<size_t>(n));
  counters_.reserve(static_cast<size_t>(n));
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    services_.push_back(std::make_unique<service::AdmissionService>());
    services_.back()->set_metrics(options.metrics);
    counters_.push_back(std::make_unique<WorkerCounters>());
  }
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskExecutor::~TaskExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Queued work was dropped above; complete every unconsumed ticket
  // with an error and wake waiters, so a straggling Wait() returns
  // instead of sleeping forever on a result that will never arrive.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [ticket, slot] : tickets_) {
      if (!slot.has_value()) {
        slot = ErasedResult(Status::FailedPrecondition("executor shut down"));
      }
    }
  }
  done_cv_.notify_all();
}

void TaskExecutor::WorkerLoop(int worker_id) {
  WorkerContext context;
  context.worker_id = worker_id;
  context.service = services_[static_cast<size_t>(worker_id)].get();
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return stopping_ || draining_ || !queue_.empty();
      });
      // Destructor teardown drops queued work (the documented contract:
      // only the tasks already running finish), so teardown with a deep
      // backlog does not block on the backlog's runtime. Shutdown()
      // instead drains: workers keep popping until the queue is empty.
      if (stopping_) return;
      if (queue_.empty()) return;  // draining_ and nothing left.
      item = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_metric_ != nullptr) {
        queue_depth_metric_->Set(static_cast<double>(queue_.size()));
      }
    }
    space_cv_.notify_one();

    // Execute outside the lock: the closure is the expensive part, and
    // the executor adds no state of its own to the result — placement
    // cannot change what a deterministic task computes. The latency
    // clock reads happen only when telemetry is wired.
    const bool timed = task_latency_metric_ != nullptr;
    Timer task_timer;
    if (timed) task_timer.Start();
    ErasedResult result = item.task(context);
    if (timed) {
      task_latency_metric_->Record(task_timer.ElapsedMillis() * 1000.0);
    }
    if (tasks_executed_metric_ != nullptr) tasks_executed_metric_->Increment();
    WorkerCounters& counters = *counters_[static_cast<size_t>(worker_id)];
    counters.executed.fetch_add(1, std::memory_order_relaxed);
    if (!result.ok()) {
      counters.failed.fetch_add(1, std::memory_order_relaxed);
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (item.job != nullptr) {
        item.job->results[item.index] = std::move(result);
        --item.job->remaining;
      } else {
        auto it = tickets_.find(item.ticket);
        // Teardown never erases in-flight tickets, so the slot is
        // present unless the executor is tearing down mid-item.
        if (it != tickets_.end()) it->second = std::move(result);
      }
    }
    done_cv_.notify_all();
  }
}

Status TaskExecutor::ReserveSlotLocked(std::unique_lock<std::mutex>& lock,
                                       bool blocking) {
  if (stopping_ || draining_) {
    return Status::FailedPrecondition("executor shut down");
  }
  if (max_queue_depth_ > 0 && queue_.size() >= max_queue_depth_) {
    if (!blocking) {
      return Status::ResourceExhausted(
          "executor queue full (max_queue_depth " +
          std::to_string(max_queue_depth_) + ")");
    }
    // Re-checks max_queue_depth_ inside the predicate: a concurrent
    // SetMaxQueueDepth may have grown the bound or removed it entirely
    // (0 = unbounded) while we slept.
    space_cv_.wait(lock, [this] {
      return stopping_ || draining_ || max_queue_depth_ == 0 ||
             queue_.size() < max_queue_depth_;
    });
    if (stopping_ || draining_) {
      return Status::FailedPrecondition("executor shut down");
    }
  }
  return Status::Ok();
}

void TaskExecutor::PushLocked(WorkItem item) {
  queue_.push_back(std::move(item));
  queue_high_water_ = std::max(queue_high_water_,
                               static_cast<int64_t>(queue_.size()));
  ++submitted_;
  if (queue_depth_metric_ != nullptr) {
    queue_depth_metric_->Set(static_cast<double>(queue_.size()));
  }
}

Result<uint64_t> TaskExecutor::SubmitErased(ErasedTask task, bool blocking) {
  uint64_t ticket = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    STREAMBID_RETURN_IF_ERROR(ReserveSlotLocked(lock, blocking));
    // Mint the ticket only after the slot is granted (a rejected
    // TrySubmit leaves no orphaned slot) and while the lock is still
    // held (concurrent submitters must not observe the same id).
    ticket = next_ticket_++;
    tickets_.emplace(ticket, std::nullopt);
    WorkItem item;
    item.task = std::move(task);
    item.ticket = ticket;
    PushLocked(std::move(item));
  }
  work_cv_.notify_one();
  return ticket;
}

std::optional<TaskExecutor::ErasedResult> TaskExecutor::PollErased(
    uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return ErasedResult(
        Status::NotFound("unknown ticket: " + std::to_string(ticket)));
  }
  if (!it->second.has_value()) return std::nullopt;  // Still in flight.
  std::optional<ErasedResult> result = std::move(it->second);
  tickets_.erase(it);
  return result;
}

TaskExecutor::ErasedResult TaskExecutor::WaitErased(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return Status::NotFound("unknown ticket: " + std::to_string(ticket));
  }
  done_cv_.wait(lock, [&] {
    it = tickets_.find(ticket);
    return it == tickets_.end() || it->second.has_value();
  });
  if (it == tickets_.end()) {
    // Consumed concurrently by another Poll/Wait of the same ticket.
    return Status::NotFound("ticket already consumed: " +
                            std::to_string(ticket));
  }
  ErasedResult result = std::move(*it->second);
  tickets_.erase(it);
  return result;
}

Result<std::vector<TaskExecutor::ErasedResult>> TaskExecutor::RunAllErased(
    std::vector<ErasedTask> tasks) {
  BatchJob job;
  job.results.resize(tasks.size());
  job.remaining = tasks.size();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (size_t i = 0; i < tasks.size(); ++i) {
      const Status status = ReserveSlotLocked(lock, /*blocking=*/true);
      if (status.ok()) {
        WorkItem item;
        item.task = std::move(tasks[i]);
        item.job = &job;
        item.index = i;
        PushLocked(std::move(item));
      } else {
        // Lifecycle raced the batch (a documented contract violation).
        // Account the unpushed tail and wait out the pushed head so no
        // queued item outlives `job`, then surface the error.
        job.remaining -= tasks.size() - i;
        done_cv_.wait(lock, [&job] { return job.remaining == 0; });
        return status;
      }
      // Wake workers as items land: with a bounded queue the batch only
      // makes progress if workers drain while we are still pushing.
      work_cv_.notify_one();
    }
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&job] { return job.remaining == 0; });
  }

  std::vector<ErasedResult> results;
  results.reserve(job.results.size());
  for (std::optional<ErasedResult>& slot : job.results) {
    results.push_back(std::move(*slot));
  }
  return results;
}

Status TaskExecutor::SetMaxQueueDepth(int depth) {
  if (depth < 0) {
    return Status::InvalidArgument("max queue depth must be >= 0");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    max_queue_depth_ = static_cast<size_t>(depth);
  }
  // Growing (or unbounding) may free blocked producers; waking on a
  // shrink is harmless — the wait predicate re-checks the new bound.
  space_cv_.notify_all();
  return Status::Ok();
}

int TaskExecutor::max_queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(max_queue_depth_);
}

Status TaskExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_called_) {
      return Status::FailedPrecondition("executor already shut down");
    }
    shutdown_called_ = true;
    draining_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  return Status::Ok();
}

int TaskExecutor::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(tickets_.size());
}

TaskExecutorStats TaskExecutor::StatsReport() const {
  TaskExecutorStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.submitted = submitted_;
    stats.queue_high_water = queue_high_water_;
  }
  stats.tasks_per_worker.reserve(counters_.size());
  for (const std::unique_ptr<WorkerCounters>& counters : counters_) {
    const int64_t executed =
        counters->executed.load(std::memory_order_relaxed);
    stats.tasks_per_worker.push_back(executed);
    stats.executed += executed;
    stats.failed += counters->failed.load(std::memory_order_relaxed);
  }
  return stats;
}

void TaskExecutor::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  submitted_ = 0;
  queue_high_water_ = 0;
  for (const std::unique_ptr<WorkerCounters>& counters : counters_) {
    counters->executed.store(0, std::memory_order_relaxed);
    counters->failed.store(0, std::memory_order_relaxed);
  }
}

}  // namespace streambid::cluster
