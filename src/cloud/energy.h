// Copyright 2026 The streambid Authors
// The §VII energy discussion: "it might be more profitable not to fully
// utilize the available capacity ... decide what is the most beneficial
// capacity for a given auction, considering both the profit as well as
// the savings from energy reduction." We model server power as an
// affine-in-utilization curve and search candidate auction capacities
// for the best net profit. Auctions run through the AdmissionService.

#ifndef STREAMBID_CLOUD_ENERGY_H_
#define STREAMBID_CLOUD_ENERGY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "auction/instance.h"
#include "service/admission_service.h"

namespace streambid::cloud {

/// Energy cost of operating the DSMS server for one subscription period.
struct EnergyModel {
  /// Power draw at zero utilization, in cost-dollars per period per
  /// unit of provisioned capacity (idle servers still burn energy).
  double idle_cost_per_capacity = 0.002;
  /// Additional dollars per period per unit of *used* capacity.
  double active_cost_per_capacity = 0.004;

  /// Dollars per period when `capacity` units are provisioned and
  /// `used` of them are busy.
  double PeriodCost(double capacity, double used) const {
    return idle_cost_per_capacity * capacity +
           active_cost_per_capacity * used;
  }
};

/// Evaluation of one candidate capacity.
struct CapacityEvaluation {
  double capacity = 0.0;
  double gross_profit = 0.0;  ///< Auction revenue.
  double energy_cost = 0.0;
  double net_profit = 0.0;
  double utilization = 0.0;
  int admitted = 0;
};

/// Runs `mechanism` over `instance` at each candidate capacity and
/// returns all evaluations (net = revenue - energy). Randomized
/// mechanisms are averaged over `trials` (seed, trial)-streamed runs.
/// Errors:
/// - kInvalidArgument: empty candidate list, a candidate capacity that
///   is zero/negative/non-finite, or trials < 1;
/// - admission errors (unknown mechanism, ...) propagate unchanged.
Result<std::vector<CapacityEvaluation>> EvaluateCapacities(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance,
    const std::vector<double>& candidate_capacities,
    const EnergyModel& energy, uint64_t seed = 0, int trials = 1);

/// The net-profit argmax of `evaluations`, with ties going to the
/// smaller (greener) capacity — the one tie-break rule shared by
/// OptimizeCapacity and the CapacityAutoscaler's grid selection.
/// Precondition (checked): non-empty.
const CapacityEvaluation& BestEvaluation(
    const std::vector<CapacityEvaluation>& evaluations);

/// The net-profit-maximizing candidate (ties go to the smaller, i.e.
/// greener, capacity). Same errors as EvaluateCapacities.
Result<CapacityEvaluation> OptimizeCapacity(
    service::AdmissionService& service, std::string_view mechanism,
    const auction::AuctionInstance& instance,
    const std::vector<double>& candidate_capacities,
    const EnergyModel& energy, uint64_t seed = 0, int trials = 1);

}  // namespace streambid::cloud

#endif  // STREAMBID_CLOUD_ENERGY_H_
