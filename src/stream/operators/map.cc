// Copyright 2026 The streambid Authors

#include "stream/operators/map.h"

#include "common/check.h"

namespace streambid::stream {

const char* MapFnToken(MapFn fn) {
  switch (fn) {
    case MapFn::kAdd:
      return "+";
    case MapFn::kSub:
      return "-";
    case MapFn::kMul:
      return "*";
    case MapFn::kDiv:
      return "/";
  }
  return "?";
}

MapOperator::MapOperator(const SchemaPtr& input_schema, std::string field,
                         MapFn fn, double operand,
                         std::string output_field, double cost_per_tuple)
    : OperatorBase("map(" + output_field + "=" + field + MapFnToken(fn) +
                       std::to_string(operand) + ")",
                   cost_per_tuple),
      field_index_(input_schema->FieldIndex(field)),
      fn_(fn),
      operand_(operand) {
  STREAMBID_CHECK_GE(field_index_, 0);
  STREAMBID_CHECK(fn != MapFn::kDiv || operand != 0.0);
  std::vector<Field> fields = input_schema->fields();
  fields.push_back({std::move(output_field), ValueType::kDouble});
  output_schema_ = MakeSchema(std::move(fields));
}

void MapOperator::Process(int port, const Tuple& tuple,
                          std::vector<Tuple>* out) {
  STREAMBID_DCHECK(port == 0);
  (void)port;
  const double x = tuple.value(field_index_).AsDouble();
  double y = 0.0;
  switch (fn_) {
    case MapFn::kAdd:
      y = x + operand_;
      break;
    case MapFn::kSub:
      y = x - operand_;
      break;
    case MapFn::kMul:
      y = x * operand_;
      break;
    case MapFn::kDiv:
      y = x / operand_;
      break;
  }
  std::vector<Value> values = tuple.values();
  values.emplace_back(y);
  out->emplace_back(output_schema_, std::move(values), tuple.timestamp());
}

}  // namespace streambid::stream
