// Copyright 2026 The streambid Authors

#include "common/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace streambid {
namespace {

TEST(ZipfTest, SamplesWithinRange) {
  ZipfDistribution dist(10, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const int v = dist.Sample(rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 10);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  for (double theta : {0.0, 0.5, 1.0, 2.0}) {
    ZipfDistribution dist(60, theta);
    double sum = 0.0;
    for (int v = 1; v <= 60; ++v) sum += dist.Pmf(v);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "theta=" << theta;
  }
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfDistribution dist(4, 0.0);
  for (int v = 1; v <= 4; ++v) EXPECT_NEAR(dist.Pmf(v), 0.25, 1e-12);
}

TEST(ZipfTest, HigherSkewFavorsSmallValues) {
  ZipfDistribution flat(100, 0.5), steep(100, 2.0);
  EXPECT_GT(steep.Pmf(1), flat.Pmf(1));
  EXPECT_LT(steep.Pmf(100), flat.Pmf(100));
}

TEST(ZipfTest, EmpiricalFrequenciesMatchPmf) {
  ZipfDistribution dist(10, 1.0);
  Rng rng(5);
  std::vector<int> counts(11, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(dist.Sample(rng))];
  for (int v = 1; v <= 10; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(v)]) / n,
                dist.Pmf(v), 0.005)
        << "v=" << v;
  }
}

TEST(ZipfTest, MeanMatchesTheory) {
  // Zipf(theta=1, max=M) has mean M / H_M.
  ZipfDistribution dist(10, 1.0);
  double h10 = 0.0;
  for (int v = 1; v <= 10; ++v) h10 += 1.0 / v;
  EXPECT_NEAR(dist.Mean(), 10.0 / h10, 1e-9);
}

TEST(ZipfTest, EmpiricalMeanMatchesExactMean) {
  ZipfDistribution dist(60, 1.0);
  Rng rng(6);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += dist.Sample(rng);
  EXPECT_NEAR(sum / n, dist.Mean(), 0.1);
}

TEST(ZipfTest, MaxValueOneAlwaysSamplesOne) {
  ZipfDistribution dist(1, 1.0);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.Sample(rng), 1);
}

}  // namespace
}  // namespace streambid
