// Copyright 2026 The streambid Authors
// AdmissionService contract tests: validation errors, deterministic
// replay, batch/single equivalence, and diagnostics.

#include "service/admission_service.h"

#include <gtest/gtest.h>

#include "auction/registry.h"

namespace streambid::service {
namespace {

/// Paper Example 1: loads A=4 B=1 C=2 D=6 E=4; q1 {A,B} $55,
/// q2 {A,C} $72, q3 {D,E} $100; capacity 10 admits {q1, q2}.
auction::AuctionInstance Example1() {
  return auction::AuctionInstance::Create(
             {{4.0}, {1.0}, {2.0}, {6.0}, {4.0}},
             {{1, 55.0, {0, 1}}, {2, 72.0, {0, 2}}, {3, 100.0, {3, 4}}})
      .value();
}

AdmissionRequest MakeRequest(const auction::AuctionInstance& instance,
                             const std::string& mechanism,
                             double capacity = 10.0, uint64_t seed = 0) {
  AdmissionRequest request;
  request.instance = &instance;
  request.capacity = capacity;
  request.mechanism = mechanism;
  request.seed = seed;
  return request;
}

TEST(AdmissionServiceTest, UnknownMechanismIsNotFound) {
  AdmissionService service;
  const auction::AuctionInstance instance = Example1();
  const auto response = service.Admit(MakeRequest(instance, "bogus"));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST(AdmissionServiceTest, NullInstanceAndNegativeCapacityRejected) {
  AdmissionService service;
  AdmissionRequest request;
  request.mechanism = "cat";
  EXPECT_EQ(service.Admit(request).status().code(),
            StatusCode::kInvalidArgument);

  const auction::AuctionInstance instance = Example1();
  AdmissionRequest negative = MakeRequest(instance, "cat", -1.0);
  EXPECT_EQ(service.Admit(negative).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AdmissionServiceTest, RegistryErrorPath) {
  EXPECT_FALSE(auction::MakeMechanism("bogus").ok());
  EXPECT_EQ(auction::MakeMechanism("bogus").status().code(),
            StatusCode::kNotFound);
  AdmissionService service;
  EXPECT_FALSE(service.HasMechanism("bogus"));
  EXPECT_EQ(service.Properties("bogus").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.MechanismNames(), auction::AllMechanismNames());
}

TEST(AdmissionServiceTest, MatchesPaperExample1) {
  AdmissionService service;
  const auction::AuctionInstance instance = Example1();
  const auto response = service.Admit(MakeRequest(instance, "cat"));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->allocation.IsAdmitted(0));
  EXPECT_TRUE(response->allocation.IsAdmitted(1));
  EXPECT_FALSE(response->allocation.IsAdmitted(2));
  EXPECT_DOUBLE_EQ(response->allocation.Payment(0), 50.0);
  EXPECT_DOUBLE_EQ(response->allocation.Payment(1), 60.0);
}

TEST(AdmissionServiceTest, DeterministicReplayForRandomizedMechanisms) {
  const auction::AuctionInstance instance = Example1();
  for (const char* name : {"two-price", "random"}) {
    AdmissionService a;
    AdmissionService b;
    const AdmissionRequest request =
        MakeRequest(instance, name, 10.0, /*seed=*/42);
    const auto first = a.Admit(request);
    // Interleave unrelated requests on `b` before replaying: per-request
    // streams must not depend on service history.
    (void)b.Admit(MakeRequest(instance, name, 10.0, /*seed=*/7));
    (void)b.Admit(MakeRequest(instance, "cat", 10.0));
    const auto second = b.Admit(request);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first->allocation.admitted, second->allocation.admitted)
        << name;
    EXPECT_EQ(first->allocation.payments, second->allocation.payments)
        << name;
  }
}

TEST(AdmissionServiceTest, DistinctStreamsAcrossSeedAndIndex) {
  // Streams must differ across seeds and across request_index; this is
  // statistical in principle, but with 64-bit mixing any collision here
  // means the derivation is broken.
  EXPECT_NE(AdmissionService::DeriveStreamSeed(1, 0),
            AdmissionService::DeriveStreamSeed(2, 0));
  EXPECT_NE(AdmissionService::DeriveStreamSeed(1, 0),
            AdmissionService::DeriveStreamSeed(1, 1));
  EXPECT_NE(AdmissionService::DeriveStreamSeed(0, 0),
            AdmissionService::DeriveStreamSeed(0, 1));
}

TEST(AdmissionServiceTest, BatchMatchesSingleByteForByte) {
  const auction::AuctionInstance instance = Example1();
  std::vector<AdmissionRequest> requests;
  for (const char* name : {"two-price", "random", "cat", "caf+"}) {
    for (uint32_t t = 0; t < 3; ++t) {
      AdmissionRequest request =
          MakeRequest(instance, name, 10.0, /*seed=*/11);
      request.request_index = t;
      requests.push_back(std::move(request));
    }
  }
  AdmissionService batch_service;
  const auto batch = batch_service.AdmitBatch(requests);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    AdmissionService single_service;
    const auto single = single_service.Admit(requests[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[i].allocation.admitted,
              single->allocation.admitted)
        << "request " << i;
    EXPECT_EQ((*batch)[i].allocation.payments,
              single->allocation.payments)
        << "request " << i;
  }
}

TEST(AdmissionServiceTest, BatchFailsUpFrontOnBadRequest) {
  AdmissionService service;
  const auction::AuctionInstance instance = Example1();
  std::vector<AdmissionRequest> requests = {
      MakeRequest(instance, "cat"), MakeRequest(instance, "bogus")};
  const auto batch = service.AdmitBatch(requests);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kNotFound);
  // The error names the offending position.
  EXPECT_NE(batch.status().message().find("request 1"),
            std::string::npos);
}

TEST(AdmissionServiceTest, AdmitAllCoversEveryMechanism) {
  AdmissionService service;
  const auction::AuctionInstance instance = Example1();
  const auto responses = service.AdmitAll(instance, 10.0, /*seed=*/1);
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses->size(), service.MechanismNames().size());
  for (size_t i = 0; i < responses->size(); ++i) {
    EXPECT_EQ((*responses)[i].diagnostics.mechanism,
              service.MechanismNames()[i]);
  }
}

TEST(AdmissionServiceTest, DiagnosticsAndMetrics) {
  AdmissionService service;
  const auction::AuctionInstance instance = Example1();
  const auto response = service.Admit(MakeRequest(instance, "cat"));
  ASSERT_TRUE(response.ok());
  const AdmissionDiagnostics& diag = response->diagnostics;
  EXPECT_EQ(diag.mechanism, "cat");
  EXPECT_TRUE(diag.properties.strategyproof);
  EXPECT_TRUE(diag.properties.sybil_immune);
  EXPECT_EQ(diag.num_queries, 3);
  EXPECT_EQ(diag.admitted_count, 2);
  EXPECT_EQ(diag.rejected_count, 1);
  EXPECT_DOUBLE_EQ(diag.capacity, 10.0);
  // q1+q2 admit operators A, B, C: 4 + 1 + 2 = 7 units.
  EXPECT_DOUBLE_EQ(diag.used_capacity, 7.0);
  EXPECT_DOUBLE_EQ(diag.capacity_utilization, 0.7);
  EXPECT_FALSE(diag.deadline_exceeded);
  EXPECT_GE(response->elapsed_ms, 0.0);
  // Metrics computed by default, consistent with the allocation.
  EXPECT_DOUBLE_EQ(response->metrics.profit, 110.0);
  EXPECT_DOUBLE_EQ(response->metrics.utilization, 0.7);
}

TEST(AdmissionServiceTest, MetricsCanBeDisabled) {
  AdmissionService service;
  const auction::AuctionInstance instance = Example1();
  AdmissionRequest request = MakeRequest(instance, "cat");
  request.options.compute_metrics = false;
  const auto response = service.Admit(request);
  ASSERT_TRUE(response.ok());
  EXPECT_DOUBLE_EQ(response->metrics.profit, 0.0);
  EXPECT_DOUBLE_EQ(response->metrics.admission_rate, 0.0);
  // Diagnostics are always populated.
  EXPECT_EQ(response->diagnostics.admitted_count, 2);
}

TEST(AdmissionServiceTest, HotPathSkipsUsedCapacityDiagnostics) {
  AdmissionService service;
  const auction::AuctionInstance instance = Example1();
  AdmissionRequest request = MakeRequest(instance, "cat");
  request.options.compute_metrics = false;
  request.options.compute_diagnostics = false;
  const auto response = service.Admit(request);
  ASSERT_TRUE(response.ok());
  // The O(queries x operators) pass is skipped...
  EXPECT_DOUBLE_EQ(response->diagnostics.used_capacity, 0.0);
  EXPECT_DOUBLE_EQ(response->diagnostics.capacity_utilization, 0.0);
  // ...while the cheap counts and the allocation itself are intact.
  EXPECT_EQ(response->diagnostics.admitted_count, 2);
  EXPECT_EQ(response->diagnostics.rejected_count, 1);
  EXPECT_TRUE(response->allocation.IsAdmitted(0));
}

TEST(AdmissionServiceTest, TinyTimeBudgetFlagsDeadline) {
  AdmissionService service;
  const auction::AuctionInstance instance = Example1();
  AdmissionRequest request = MakeRequest(instance, "cat");
  // Any positive elapsed time exceeds a denormal budget; the request
  // still succeeds (soft deadline), but diagnostics flag the overrun.
  request.options.time_budget_ms = 1e-300;
  const auto response = service.Admit(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->diagnostics.deadline_exceeded);
}

TEST(AdmissionServiceTest, FeasibilityCheckPasses) {
  AdmissionService service;
  const auction::AuctionInstance instance = Example1();
  for (const std::string& name : service.MechanismNames()) {
    AdmissionRequest request = MakeRequest(instance, name);
    request.options.check_feasibility = true;
    EXPECT_TRUE(service.Admit(request).ok()) << name;
  }
}

}  // namespace
}  // namespace streambid::service
