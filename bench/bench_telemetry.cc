// Copyright 2026 The streambid Authors
// The telemetry layer's acceptance bench: instrumentation must be
// observable without being perturbative.
//
// Experiments (every CHECK runs in both modes):
//  1. Overhead bound: the same deterministic gated 4-shard workload runs
//     with telemetry fully wired (metrics registry + enabled tracer
//     across gate -> cluster -> center) and with the no-op sink (null
//     registry/tracer). Trials interleave and each config keeps its
//     best (minimum) wall time — the robust estimator under scheduler
//     noise. CHECKs the full-instrumentation admit throughput within
//     3% of the no-op sink (10% in --smoke, where periods are so short
//     that timer jitter dominates).
//  2. Replay identity: per-period ClusterPeriodReports are byte-
//     identical with telemetry on and off, and the tracer's
//     IdentitySequence is byte-identical across executor pools 1/2/8 —
//     telemetry never feeds back, and span identity is logical time,
//     not wall time.
//  3. Exposition: prints the span census per phase and a registry
//     excerpt, and drops a Perfetto-loadable Chrome trace next to the
//     JSON artifact.
//  4. Executor allocation audit: a warmed 8-worker TaskExecutor runs
//     thousands of Submit→execute→Wait cycles under the counting
//     operator new (alloc_probe.cc); CHECKs the steady state performed
//     exactly zero heap allocations and zero inline-task-slot spills.
//
// Emits BENCH_telemetry.json (throughputs, overhead fraction, span and
// series counts) — the perf-trajectory artifact CI uploads per PR.
//
// Usage: bench_telemetry [--smoke]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/alloc_probe.h"
#include "bench/bench_common.h"
#include "cluster/task_executor.h"
#include "common/check.h"
#include "common/inline_function.h"
#include "common/timer.h"
#include "gate/stream_ingress.h"
#include "stream/query_builder.h"
#include "stream/stream_source.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using namespace streambid;

Status RegisterQuotes(stream::Engine& engine) {
  return engine.RegisterSource(stream::MakeStockQuoteSource(
      "quotes", {"IBM", "AAPL", "MSFT", "GOOG"}, /*rate=*/100.0, 5));
}

stream::QuerySubmission MakeSubmission(int period, int tenant) {
  stream::QueryBuilder b;
  const int src = b.Source("quotes");
  const int sel = b.Select(src, "price", stream::CompareOp::kGt,
                           stream::Value(50.0 + tenant));
  stream::QuerySubmission sub;
  sub.query_id = period * 1000 + tenant;
  sub.user = static_cast<auction::UserId>(tenant);
  sub.bid = 5.0 + (tenant * 7 + period * 3) % 11;
  sub.plan = b.Build(sel);
  return sub;
}

int TenantsInPeriod(int period) { return 6 + period % 5; }

/// One full gated run. When `registry`/`tracer` are null the stack runs
/// with the no-op sink; otherwise every layer publishes into them.
struct RunOutcome {
  std::vector<cluster::ClusterPeriodReport> reports;
  double elapsed_seconds = 0.0;
  int64_t submissions = 0;
};

RunOutcome RunGated(int executor_threads, int periods,
                    telemetry::MetricsRegistry* registry,
                    telemetry::PeriodTracer* tracer) {
  cluster::ClusterOptions options;
  options.num_shards = 4;
  options.total_capacity = 10.0;
  options.routing = cluster::RoutingPolicy::kHashUser;
  options.mechanism = "cat";
  options.period_length = 10.0;
  options.seed = 71;
  options.engine_options.tick = 1.0;
  options.engine_options.sink_history = 4;
  options.executor_threads = executor_threads;
  options.metrics = registry;
  options.tracer = tracer;
  cluster::ClusterCenter center(options, RegisterQuotes);

  gate::IngressOptions ingress_options;
  ingress_options.tenant_classes = 2;
  ingress_options.tickets_per_class = 32;  // Never exhausted here.
  ingress_options.metrics = registry;
  ingress_options.tracer = tracer;
  gate::StreamIngress ingress(&center, ingress_options);

  RunOutcome outcome;
  Timer timer;
  for (int period = 0; period < periods; ++period) {
    for (int t = 1; t <= TenantsInPeriod(period); ++t) {
      STREAMBID_CHECK(ingress.Offer(MakeSubmission(period, t)).ok());
      ++outcome.submissions;
    }
    const auto report = ingress.ClosePeriod();
    STREAMBID_CHECK(report.ok());
    STREAMBID_CHECK_EQ(report->gate.shed, 0);
    STREAMBID_CHECK_EQ(report->gate.dropped, 0);
    outcome.reports.push_back(report->report);
  }
  outcome.elapsed_seconds = timer.ElapsedSeconds();
  return outcome;
}

void CheckReportsIdentical(
    const std::vector<cluster::ClusterPeriodReport>& a,
    const std::vector<cluster::ClusterPeriodReport>& b) {
  STREAMBID_CHECK_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    STREAMBID_CHECK_EQ(a[p].period, b[p].period);
    STREAMBID_CHECK_EQ(a[p].submissions, b[p].submissions);
    STREAMBID_CHECK_EQ(a[p].admitted, b[p].admitted);
    STREAMBID_CHECK_EQ(a[p].revenue, b[p].revenue);
    STREAMBID_CHECK_EQ(a[p].total_payoff, b[p].total_payoff);
    STREAMBID_CHECK_EQ(a[p].auction_utilization,
                       b[p].auction_utilization);
    STREAMBID_CHECK_EQ(a[p].measured_utilization,
                       b[p].measured_utilization);
    STREAMBID_CHECK_EQ(a[p].provisioned_capacity,
                       b[p].provisioned_capacity);
    STREAMBID_CHECK_EQ(a[p].energy_cost, b[p].energy_cost);
    STREAMBID_CHECK_EQ(a[p].shard_reports.size(),
                       b[p].shard_reports.size());
    for (size_t s = 0; s < a[p].shard_reports.size(); ++s) {
      STREAMBID_CHECK_EQ(a[p].shard_reports[s].revenue,
                         b[p].shard_reports[s].revenue);
      STREAMBID_CHECK_EQ(a[p].shard_reports[s].admitted,
                         b[p].shard_reports[s].admitted);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int periods = smoke ? 10 : 40;
  const int trials = smoke ? 3 : 5;
  // Short smoke periods put the wall time near timer resolution, so
  // the bound loosens there; the Release run enforces the real 3%.
  const double bound = smoke ? 1.10 : 1.03;
  std::printf("telemetry overhead + replay identity: gated 4-shard "
              "cluster, %d periods, best of %d trials%s\n",
              periods, trials, smoke ? " (smoke)" : "");

  // -- Experiment 1: overhead bound (interleaved best-of-N). -----------
  double best_off = 1e300;
  double best_full = 1e300;
  int64_t submissions = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const RunOutcome off = RunGated(4, periods, nullptr, nullptr);
    telemetry::MetricsRegistry registry;
    telemetry::PeriodTracer tracer;
    const RunOutcome full = RunGated(4, periods, &registry, &tracer);
    best_off = std::min(best_off, off.elapsed_seconds);
    best_full = std::min(best_full, full.elapsed_seconds);
    submissions = off.submissions;
  }
  const double throughput_off = submissions / best_off;
  const double throughput_full = submissions / best_full;
  const double overhead = best_full / best_off - 1.0;
  std::printf("# admit throughput: no-op sink %.0f subs/s, full "
              "instrumentation %.0f subs/s (overhead %+.2f%%)\n",
              throughput_off, throughput_full, 100.0 * overhead);
  STREAMBID_CHECK(best_full <= best_off * bound);

  // -- Experiment 2: replay identity. ----------------------------------
  const RunOutcome plain = RunGated(4, periods, nullptr, nullptr);
  telemetry::MetricsRegistry registry;
  telemetry::PeriodTracer tracer;
  const RunOutcome traced = RunGated(4, periods, &registry, &tracer);
  CheckReportsIdentical(plain.reports, traced.reports);
  std::printf("# reports byte-identical with telemetry on vs off\n");

  std::string identity;
  for (const int threads : {1, 2, 8}) {
    telemetry::PeriodTracer pool_tracer;
    const RunOutcome run = RunGated(threads, periods, nullptr, &pool_tracer);
    CheckReportsIdentical(plain.reports, run.reports);
    const std::string sequence = pool_tracer.IdentitySequence();
    if (identity.empty()) {
      identity = sequence;
    } else {
      STREAMBID_CHECK(identity == sequence);
    }
  }
  std::printf("# trace identity sequences byte-identical at executor "
              "pools 1/2/8\n");

  // -- Experiment 3: exposition. ---------------------------------------
  const auto snapshot = registry.Snapshot();
  const int64_t series =
      static_cast<int64_t>(snapshot.counters.size() +
                           snapshot.gauges.size() +
                           snapshot.histograms.size());
  std::printf("# registry: %lld series (%zu counters, %zu gauges, "
              "%zu histograms), tracer: %lld spans\n",
      static_cast<long long>(series), snapshot.counters.size(),
      snapshot.gauges.size(), snapshot.histograms.size(),
      static_cast<long long>(tracer.span_count()));
  // Span census: every period has 1 gate drain + 4 prepare + 4
  // complete + 1 rebalance; admit spans only where a shard had pending
  // submissions (hash routing leaves some shards idle some periods).
  int64_t drains = 0, prepares = 0, admits = 0, completes = 0,
          rebalances = 0, autoscales = 0;
  for (const telemetry::TraceSpan& span : tracer.SortedSpans()) {
    switch (span.phase) {
      case telemetry::Phase::kGateDrain: ++drains; break;
      case telemetry::Phase::kPrepare: ++prepares; break;
      case telemetry::Phase::kAutoscale: ++autoscales; break;
      case telemetry::Phase::kAdmit: ++admits; break;
      case telemetry::Phase::kComplete: ++completes; break;
      case telemetry::Phase::kRebalance: ++rebalances; break;
    }
  }
  std::printf("# span census: %lld drain, %lld prepare, %lld admit, "
              "%lld complete, %lld rebalance\n",
              static_cast<long long>(drains),
              static_cast<long long>(prepares),
              static_cast<long long>(admits),
              static_cast<long long>(completes),
              static_cast<long long>(rebalances));
  STREAMBID_CHECK_EQ(drains, static_cast<int64_t>(periods));
  STREAMBID_CHECK_EQ(prepares, static_cast<int64_t>(periods) * 4);
  STREAMBID_CHECK_EQ(completes, static_cast<int64_t>(periods) * 4);
  STREAMBID_CHECK_EQ(rebalances, static_cast<int64_t>(periods));
  STREAMBID_CHECK_EQ(autoscales, 0);  // No autoscaler in this config.
  STREAMBID_CHECK_GT(admits, 0);
  STREAMBID_CHECK_LE(admits, static_cast<int64_t>(periods) * 4);
  STREAMBID_CHECK(tracer.WriteChromeTrace("telemetry_trace.json").ok());
  std::printf("# wrote telemetry_trace.json (chrome://tracing / "
              "Perfetto)\n");

  // -- Experiment 4: executor allocation audit. ------------------------
  // The work-stealing executor promises an allocation-free steady
  // state on the Submit→execute→Wait path: tasks travel in inline
  // slots, deque rings are recycled in place, and ticket slots come
  // from a free list. The probe's counting operator new turns that
  // from a comment into a CHECKed property.
  double audit_tasks_per_sec = 0.0;
  int64_t audit_allocs = 0;
  {
    cluster::ExecutorOptions exec_options;
    exec_options.num_threads = 8;
    cluster::TaskExecutor executor(exec_options);
    auto run_cycles = [&executor](int cycles) {
      int64_t acc = 0;
      for (int i = 0; i < cycles; ++i) {
        const auto ticket = executor.Submit<int>(
            [i](cluster::WorkerContext&) -> Result<int> { return i; });
        STREAMBID_CHECK(ticket.ok());
        const Result<int> result = executor.Wait(ticket.value());
        STREAMBID_CHECK(result.ok());
        acc += result.value();
      }
      return acc;
    };
    // Warm every per-worker ring, the ticket table, and the free lists;
    // the audited window must hit only recycled storage.
    run_cycles(512);
    const int audited = smoke ? 2000 : 20000;
    const int64_t heap_before = bench::AllocCount();
    const int64_t spills_before = InlineFunctionHeapFallbacks();
    Timer audit_timer;
    const int64_t acc = run_cycles(audited);
    const double audit_seconds = audit_timer.ElapsedSeconds();
    STREAMBID_CHECK_EQ(
        acc, static_cast<int64_t>(audited) * (audited - 1) / 2);
    audit_allocs = bench::AllocCount() - heap_before;
    audit_tasks_per_sec = audited / audit_seconds;
    const cluster::TaskExecutorStats pool = executor.StatsReport();
    STREAMBID_CHECK_EQ(pool.local_hits + pool.stolen, pool.executed);
    std::printf("# executor audit: %d submit→wait cycles, %.0f tasks/s, "
                "%lld heap allocations, %lld inline-slot spills "
                "(%lld stolen / %lld local)\n",
                audited, audit_tasks_per_sec,
                static_cast<long long>(audit_allocs),
                static_cast<long long>(InlineFunctionHeapFallbacks() -
                                       spills_before),
                static_cast<long long>(pool.stolen),
                static_cast<long long>(pool.local_hits));
    // The headline CHECK: zero steady-state allocations on the
    // Submit→execute→Wait path (skipped only where a sanitizer owns
    // the allocator and the probe cannot hook it).
    if (bench::AllocProbeAvailable()) {
      STREAMBID_CHECK_EQ(audit_allocs, 0);
    }
    STREAMBID_CHECK_EQ(InlineFunctionHeapFallbacks() - spills_before, 0);
  }

  bench::WriteBenchJson(
      "telemetry",
      {{"admit_throughput_noop_sink", throughput_off},
       {"admit_throughput_full_instrumentation", throughput_full},
       {"overhead_fraction", overhead},
       {"executor_submit_wait_tasks_per_sec", audit_tasks_per_sec},
       {"executor_audit_heap_allocs", static_cast<double>(audit_allocs)},
       {"spans_recorded", static_cast<double>(tracer.span_count())},
       {"metric_series", static_cast<double>(series)},
       {"reports_identical", 1.0}});
  return 0;
}
