// Copyright 2026 The streambid Authors
// The parallel admission runtime of the cluster layer: a fixed pool of
// worker threads, each owning its own AdmissionService (and therefore
// its own AuctionContext scratch arena — the service header's "shard one
// service per thread"). Because every AdmissionRequest carries its own
// deterministic (seed, request_index) RNG stream, a request's response
// is a pure function of the request: it does not matter which worker
// runs it, in what order, or how many workers exist. That is the
// contract that makes the two surfaces below safe:
//
//  - AdmitBatchParallel: blocking batch sharded across the pool,
//    responses positionally aligned and byte-identical to serial
//    AdmissionService::AdmitBatch (timing fields excepted);
//  - Enqueue / Poll / Wait: async submit of individual auctions with
//    ticket-based completion draining, for callers (the ClusterCenter,
//    period pipelines) that overlap admission with other work.
//
// Worker-side diagnostics are folded into per-mechanism rolling stats
// (count, admit rate, utilization, elapsed, deadline overruns) exposed
// via StatsReport() — the cluster bench's observability surface.

#ifndef STREAMBID_CLUSTER_ADMISSION_EXECUTOR_H_
#define STREAMBID_CLUSTER_ADMISSION_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "service/admission_service.h"

namespace streambid::cluster {

/// Executor configuration.
struct ExecutorOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (at
  /// least 1).
  int num_threads = 0;
};

/// Completion handle returned by Enqueue. Tickets are issued once and
/// consumed once: a successful Poll/Wait removes the result.
using Ticket = uint64_t;

/// Rolling per-mechanism statistics aggregated from the
/// AdmissionDiagnostics of every successful request the executor ran.
struct MechanismRollingStats {
  int64_t count = 0;              ///< Successful requests.
  int64_t deadline_overruns = 0;  ///< diagnostics.deadline_exceeded.
  RunningStats admit_rate;        ///< admitted / submitted per request.
  RunningStats utilization;       ///< diagnostics.capacity_utilization.
  RunningStats elapsed_ms;        ///< Mechanism wall clock per request.
};

/// Snapshot returned by StatsReport(). Ordered by mechanism name so
/// reports print deterministically.
struct ExecutorStats {
  int64_t total_requests = 0;   ///< Successful requests across mechanisms.
  int64_t failed_requests = 0;  ///< Requests whose execution errored.
  std::map<std::string, MechanismRollingStats> per_mechanism;
};

/// Thread-pool admission runtime. Thread-safe: any thread may submit
/// batches, enqueue requests, and poll tickets concurrently. Instances
/// referenced by in-flight requests must outlive their completion
/// (instances are immutable and may back many concurrent requests).
class AdmissionExecutor {
 public:
  explicit AdmissionExecutor(const ExecutorOptions& options = {});
  /// Drains nothing: queued work is dropped, running auctions finish,
  /// and unconsumed tickets complete with kFailedPrecondition so a
  /// straggling Wait unblocks. Destruction must still happen-after any
  /// concurrent Poll/Wait/AdmitBatchParallel call returns (they use the
  /// executor's synchronization internals).
  ~AdmissionExecutor();

  AdmissionExecutor(const AdmissionExecutor&) = delete;
  AdmissionExecutor& operator=(const AdmissionExecutor&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs `requests` across the worker pool and returns responses
  /// positionally aligned with the requests — byte-identical to serial
  /// AdmissionService::AdmitBatch on the same requests (timing fields
  /// excluded), for every pool size. Validation fails the whole batch up
  /// front with the same "request i: ..." errors as the serial path; an
  /// execution failure (feasibility check) returns the status of the
  /// lowest-index failing request.
  Result<std::vector<service::AdmissionResponse>> AdmitBatchParallel(
      const std::vector<service::AdmissionRequest>& requests);

  /// Validates and enqueues one auction; the returned ticket completes
  /// on some worker. Validation errors are returned here, execution
  /// errors via Poll/Wait.
  Result<Ticket> Enqueue(const service::AdmissionRequest& request);

  /// Non-blocking completion check: empty while the ticket is still
  /// queued or running; otherwise the response (or execution error),
  /// which is removed — a second Poll of the same ticket is kNotFound.
  std::optional<Result<service::AdmissionResponse>> Poll(Ticket ticket);

  /// Blocks until the ticket completes and returns its result (removing
  /// it, as Poll does). kNotFound for never-issued or already-consumed
  /// tickets.
  Result<service::AdmissionResponse> Wait(Ticket ticket);

  /// Outstanding (enqueued, not yet consumed) async tickets.
  int pending_tickets() const;

  /// Copies the rolling per-mechanism stats accumulated so far.
  ExecutorStats StatsReport() const;

  /// Clears the rolling stats (benches reset between phases).
  void ResetStats();

 private:
  /// One unit of work: an async ticket or one index of a batch job.
  struct BatchJob;
  struct WorkItem {
    service::AdmissionRequest request;
    Ticket ticket = 0;          ///< Valid when job == nullptr.
    BatchJob* job = nullptr;    ///< Valid for batch items.
    size_t index = 0;           ///< Position within the batch.
  };

  void WorkerLoop(int worker_id);
  void RecordStats(int worker_id,
                   const Result<service::AdmissionResponse>& result);

  std::vector<std::unique_ptr<service::AdmissionService>> services_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< Signals queued work / shutdown.
  std::condition_variable done_cv_;  ///< Signals completions.
  std::deque<WorkItem> queue_;
  Ticket next_ticket_ = 1;
  /// Issued-but-unconsumed async tickets; presence without a result
  /// means queued or running.
  std::unordered_map<Ticket,
                     std::optional<Result<service::AdmissionResponse>>>
      tickets_;
  bool stopping_ = false;

  /// Stats are sharded per worker so the hot path never contends on a
  /// global lock (each worker touches only its own accumulator; the
  /// per-shard mutex only synchronizes against StatsReport/ResetStats
  /// readers). StatsReport merges via RunningStats::Merge.
  struct WorkerStats {
    mutable std::mutex mutex;
    ExecutorStats stats;
  };
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
};

}  // namespace streambid::cluster

#endif  // STREAMBID_CLUSTER_ADMISSION_EXECUTOR_H_
