// Copyright 2026 The streambid Authors
// Closed-loop capacity autoscaling — the §VII energy argument made
// operational. The paper observes that the center should not blindly
// provision its full capacity: "it might be more profitable not to
// fully utilize the available capacity". The CapacityAutoscaler closes
// that loop: it watches a rolling window of period outcomes (measured
// vs auction utilization, revenue, shedding), derives a
// utilization-tracking demand estimate, and at each period boundary
// runs OptimizeCapacity over a candidate grid centered on that
// estimate — under hysteresis (minimum dwell between changes, maximum
// per-step ratio) so capacity does not thrash. Decisions are a pure
// function of (options, observed history, upcoming instance, seed):
// replaying the same inputs yields byte-identical decisions, which is
// what keeps the cluster layer's determinism contract intact when every
// shard autoscales independently.

#ifndef STREAMBID_CLOUD_AUTOSCALER_H_
#define STREAMBID_CLOUD_AUTOSCALER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "auction/instance.h"
#include "cloud/energy.h"
#include "common/status.h"
#include "service/admission_service.h"

namespace streambid::cloud {

/// Autoscaler configuration. Capacity bounds are expressed as ratios of
/// the baseline (installed) capacity: the autoscaler decides how much of
/// the hardware to power, it cannot conjure servers beyond it.
struct AutoscalerOptions {
  /// Master switch; when false the owning center never re-provisions.
  bool enabled = false;
  /// Lower provisioning bound, as a fraction of the baseline capacity.
  /// Must stay strictly positive: a zero-capacity engine cannot run.
  double min_capacity_ratio = 0.25;
  /// Upper provisioning bound, as a fraction of the baseline capacity.
  double max_capacity_ratio = 1.0;
  /// Periods of history kept for the demand estimate.
  int window = 4;
  /// Hysteresis: a new capacity must be held for at least this many
  /// periods before the next change (1 = may change every period).
  int min_dwell_periods = 2;
  /// Hysteresis: |next - current| <= current * max_step_ratio.
  double max_step_ratio = 0.5;
  /// Candidate capacities evaluated per decision.
  int grid_points = 5;
  /// The grid spans estimate * [1 - grid_span, 1 + grid_span] (clamped
  /// into the step and capacity bounds).
  double grid_span = 0.5;
  /// Demand estimate = mean windowed demand * target_headroom, i.e. the
  /// tracker aims at utilization 1 / target_headroom.
  double target_headroom = 1.25;
  /// A candidate must beat the current capacity's net profit by this
  /// fraction of |current net| to trigger a change — the second
  /// hysteresis guard, so marginal wins do not cause thrash.
  double min_improvement_ratio = 0.02;
  /// Energy curve priced into every candidate (and into the owning
  /// center's PeriodReport::energy_cost, autoscaled or not).
  EnergyModel energy;
  /// Averaging trials per candidate for randomized mechanisms.
  int trials = 1;
};

/// One period boundary's provisioning decision.
struct AutoscaleDecision {
  /// Decision index (== the period the capacity applies to).
  int period = 0;
  /// True when a candidate grid was actually evaluated (false under
  /// dwell, and for idle periods with no upcoming auction).
  bool evaluated = false;
  /// True when the capacity moved.
  bool changed = false;
  double previous_capacity = 0.0;
  /// The capacity provisioned for the upcoming period.
  double capacity = 0.0;
  /// The utilization-tracking demand estimate the grid was centered on.
  double demand_estimate = 0.0;
  /// Net profit of the chosen candidate (0 unless evaluated).
  double expected_net_profit = 0.0;
  /// Why: "dwell" (hysteresis hold), "idle" (no upcoming auction —
  /// shrink toward the minimum), "optimized" (grid evaluated).
  std::string reason;
};

/// What the autoscaler sees of one completed period. Kept separate from
/// cloud::PeriodReport so the header dependency points the right way
/// (dsms_center.h embeds AutoscaleDecision in its report).
struct PeriodObservation {
  double provisioned_capacity = 0.0;
  double measured_utilization = 0.0;
  double auction_utilization = 0.0;
  double revenue = 0.0;
  /// Fraction of arriving tuples shed by engine overload protection —
  /// a shed period's true demand exceeded what the engine admitted.
  double shed_fraction = 0.0;
  int submissions = 0;
  int admitted = 0;
};

/// The closed-loop capacity controller. Not thread-safe; one per
/// center (the cluster layer gives each shard its own).
class CapacityAutoscaler {
 public:
  /// Preconditions (checked): baseline_capacity > 0, 0 <
  /// min_capacity_ratio <= max_capacity_ratio, window >= 1,
  /// min_dwell_periods >= 1, max_step_ratio > 0, grid_points >= 2,
  /// grid_span > 0, target_headroom > 0, min_improvement_ratio >= 0,
  /// trials >= 1.
  CapacityAutoscaler(const AutoscalerOptions& options,
                     double baseline_capacity);

  /// Records a completed period into the rolling window.
  void Observe(const PeriodObservation& observation);

  /// Proposes the capacity for the upcoming period. `instance` is the
  /// period's auction demand (null when no submissions are pending —
  /// an idle period shrinks toward the minimum bound). The decision is
  /// a pure function of (options, baseline, observation history,
  /// instance, seed); it commits internally, so call once per period.
  /// Errors from candidate evaluation (unknown mechanism, admission
  /// failures) propagate without mutating the controller.
  Result<AutoscaleDecision> Propose(service::AdmissionService& service,
                                    std::string_view mechanism,
                                    const auction::AuctionInstance* instance,
                                    uint64_t seed);

  /// The capacity the next period should run at (baseline clamped into
  /// bounds before the first Propose).
  double capacity() const { return capacity_; }
  double baseline_capacity() const { return baseline_; }
  double min_capacity() const {
    return baseline_ * options_.min_capacity_ratio;
  }
  double max_capacity() const {
    return baseline_ * options_.max_capacity_ratio;
  }
  const AutoscalerOptions& options() const { return options_; }
  const std::deque<PeriodObservation>& window() const { return window_; }

  /// The mean demand (capacity units) the rolling window tracks:
  /// per-period engine-or-auction load, corrected for shedding. Falls
  /// back to the current capacity while the window is empty.
  double DemandEstimate() const;

  /// The deterministic evaluation seed for decision `period` under
  /// `seed` — a salted stream distinct from the period auctions', so
  /// what-if candidate runs never collide with the real (seed, period)
  /// request streams.
  static uint64_t EvaluationSeed(uint64_t seed, int period);

 private:
  AutoscalerOptions options_;
  double baseline_ = 0.0;
  double capacity_ = 0.0;
  std::deque<PeriodObservation> window_;
  int decisions_ = 0;           ///< Propose calls so far.
  int periods_since_change_ = 0;
};

}  // namespace streambid::cloud

#endif  // STREAMBID_CLOUD_AUTOSCALER_H_
