// Copyright 2026 The streambid Authors
// Deterministic pseudo-random number generation. All stochastic components
// (workload generation, Two-price partitioning, stream sources) take an
// explicit Rng so experiments are reproducible from a single seed.

#ifndef STREAMBID_COMMON_RNG_H_
#define STREAMBID_COMMON_RNG_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace streambid {

/// The SplitMix64 finalizer: a bijective 64-bit mix used wherever
/// nearby integers (seeds, user ids) must map to unrelated values —
/// Rng seeding, the admission service's per-request stream derivation,
/// and the cluster router's user hash all share this one definition.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Deterministic 64-bit PRNG (xoshiro256** by Blackman & Vigna).
/// Not cryptographic; chosen for speed, quality, and full reproducibility
/// across platforms (unlike std::mt19937 + std::uniform_*_distribution,
/// whose outputs are not standardized identically across stdlib versions
/// for all distributions).
class Rng {
 public:
  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;  // SplitMix64 increment.
      s = Mix64(x);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) for bound >= 1 (Lemire rejection-free
  /// multiply-shift; bias is negligible for our bounds << 2^64).
  uint64_t NextBounded(uint64_t bound) {
    STREAMBID_CHECK_GT(bound, 0u);
    // 128-bit multiply-high.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    STREAMBID_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Uniform double in [lo, hi).
  double NextRange(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (partial Fisher-Yates on an
  /// index vector; O(n) setup, used for operator->query assignment where
  /// n is the number of queries).
  std::vector<int> SampleDistinct(int n, int k) {
    STREAMBID_CHECK_GE(n, k);
    std::vector<int> idx(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
    for (int i = 0; i < k; ++i) {
      int j = i + static_cast<int>(NextBounded(static_cast<uint64_t>(n - i)));
      std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
    }
    idx.resize(static_cast<size_t>(k));
    return idx;
  }

  /// Derives an independent child stream (for per-instance seeding).
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace streambid

#endif  // STREAMBID_COMMON_RNG_H_
