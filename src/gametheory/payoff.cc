// Copyright 2026 The streambid Authors

#include "gametheory/payoff.h"

#include "common/check.h"

namespace streambid::gametheory {

double UserPayoff(const auction::AuctionInstance& instance,
                  const auction::Allocation& alloc,
                  const std::vector<double>& values,
                  auction::UserId user) {
  STREAMBID_CHECK_EQ(static_cast<int>(values.size()),
                     instance.num_queries());
  double payoff = 0.0;
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    if (instance.user(i) != user) continue;
    if (!alloc.IsAdmitted(i)) continue;
    payoff += values[static_cast<size_t>(i)] - alloc.Payment(i);
  }
  return payoff;
}

auction::Allocation RunAuction(service::AdmissionService& service,
                               std::string_view mechanism,
                               const auction::AuctionInstance& instance,
                               double capacity, uint64_t seed,
                               uint32_t trial) {
  service::AdmissionRequest request;
  request.instance = &instance;
  request.capacity = capacity;
  request.mechanism = std::string(mechanism);
  request.seed = seed;
  request.request_index = trial;
  request.options.compute_metrics = false;
  request.options.compute_diagnostics = false;
  auto response = service.Admit(request);
  STREAMBID_CHECK(response.ok());
  return std::move(response).value().allocation;
}

double ExpectedUserPayoff(service::AdmissionService& service,
                          std::string_view mechanism,
                          const auction::AuctionInstance& instance,
                          double capacity,
                          const std::vector<double>& values,
                          auction::UserId user, uint64_t seed,
                          int trials) {
  STREAMBID_CHECK_GT(trials, 0);
  // One request object reused across trials; only the replica index
  // changes, so high-trial expectations skip per-call setup.
  service::AdmissionRequest request;
  request.instance = &instance;
  request.capacity = capacity;
  request.mechanism = std::string(mechanism);
  request.seed = seed;
  request.options.compute_metrics = false;
  request.options.compute_diagnostics = false;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    request.request_index = static_cast<uint32_t>(t);
    auto response = service.Admit(request);
    STREAMBID_CHECK(response.ok());
    total += UserPayoff(instance, response->allocation, values, user);
  }
  return total / trials;
}

std::vector<double> TruthfulValues(
    const auction::AuctionInstance& instance) {
  std::vector<double> values(static_cast<size_t>(instance.num_queries()));
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    values[static_cast<size_t>(i)] = instance.bid(i);
  }
  return values;
}

}  // namespace streambid::gametheory
