// Copyright 2026 The streambid Authors

#ifndef STREAMBID_COMMON_CPU_H_
#define STREAMBID_COMMON_CPU_H_

/// CPU-count detection that respects container limits.
///
/// `std::thread::hardware_concurrency()` reports the machine's core
/// count even inside a cgroup-limited container, so a pool sized from
/// it oversubscribes CI runners (e.g. 64 threads fighting over a
/// 2-CPU quota). `AvailableCpuCount()` clamps to what the process can
/// actually use: the scheduling affinity mask and the cgroup CPU quota
/// (v2 `cpu.max`, v1 `cpu.cfs_quota_us`/`cpu.cfs_period_us`),
/// whichever is smaller, falling back to `hardware_concurrency()` when
/// neither is readable. Always returns at least 1.

#include <string>

namespace streambid {

/// CPUs usable by this process (affinity ∧ cgroup quota), >= 1.
int AvailableCpuCount();

/// Parses a cgroup-v2 `cpu.max` file ("<quota_us> <period_us>" or
/// "max <period_us>"). Returns the quota ceiling in whole CPUs
/// (rounded up), or 0 when unlimited / unparseable.
int ParseCgroupCpuMax(const std::string& content);

/// Converts a cgroup-v1 quota/period pair to a CPU ceiling (rounded
/// up). Returns 0 when the quota is unlimited (<= 0) or the period is
/// invalid.
int CpusFromQuota(long long quota_us, long long period_us);

}  // namespace streambid

#endif  // STREAMBID_COMMON_CPU_H_
