// Copyright 2026 The streambid Authors
// Synthetic workload generation per paper §VI-A / Table III.

#ifndef STREAMBID_WORKLOAD_GENERATOR_H_
#define STREAMBID_WORKLOAD_GENERATOR_H_

#include "common/rng.h"
#include "workload/params.h"
#include "workload/raw_workload.h"

namespace streambid::workload {

/// Generates the base workload at the highest maximum degree of sharing
/// (params.base_max_sharing, default 60):
///  - one valuation per query ~ Zipf(max_bid, bid_skew);
///  - base_num_operators operators, each with load ~ Zipf(max_operator_
///    load, load_skew) and degree of sharing ~ Zipf(base_max_sharing,
///    sharing_skew), assigned to that many distinct random queries;
///  - every query left without an operator receives one dedicated
///    (degree-1) operator so the instance is well-formed.
/// Lower-sharing instances are derived from this one by SplitToMaxDegree
/// (splitting.h), never regenerated, so average query load is identical
/// across the sweep — exactly the paper's methodology.
RawWorkload GenerateBaseWorkload(const WorkloadParams& params, Rng& rng);

}  // namespace streambid::workload

#endif  // STREAMBID_WORKLOAD_GENERATOR_H_
