// Copyright 2026 The streambid Authors

#include "auction/mechanisms/density.h"

#include <memory>

#include "auction/movement_window.h"
#include "common/check.h"

namespace streambid::auction {

Allocation DensityMechanism::Run(const AuctionInstance& instance,
                                 double capacity,
                                 AuctionContext& context) const {
  Allocation alloc =
      MakeEmptyAllocation(name_, capacity, instance.num_queries());
  if (instance.num_queries() == 0) return alloc;

  const GreedyScan scan = RunGreedy(instance, capacity, basis_, policy_,
                                    context.workspace());
  alloc.admitted = scan.admitted;

  if (policy_ == MisfitPolicy::kStop) {
    // First-loser pricing: a fixed price per unit of C-load.
    if (scan.first_loser_pos < 0) return alloc;  // Everyone admitted: free.
    const QueryId lost =
        scan.order[static_cast<size_t>(scan.first_loser_pos)];
    const double lost_load = LoadOf(instance, lost, basis_);
    STREAMBID_CHECK_GT(lost_load, 0.0);
    const double unit_price = instance.bid(lost) / lost_load;
    for (QueryId i = 0; i < instance.num_queries(); ++i) {
      if (alloc.admitted[static_cast<size_t>(i)]) {
        alloc.payments[static_cast<size_t>(i)] =
            LoadOf(instance, i, basis_) * unit_price;
      }
    }
    return alloc;
  }

  // Movement-window pricing (CAF+/CAT+). When every query was admitted
  // the union of all operators fits within capacity, so a winner fits at
  // ANY position in the list: every movement window spans the remainder
  // of the priority list and all payments are zero (Definition 6). The
  // shortcut matters: it skips an O(n * |ops|) simulation per winner in
  // the saturated high-sharing regime of Figure 4.
  if (scan.first_loser_pos < 0) return alloc;
  for (QueryId i = 0; i < instance.num_queries(); ++i) {
    if (!alloc.admitted[static_cast<size_t>(i)]) continue;
    const QueryId last = ComputeLast(instance, capacity, scan.order, i);
    if (last == kNoQuery) continue;  // Window spans the list: pays 0.
    const double last_load = LoadOf(instance, last, basis_);
    STREAMBID_CHECK_GT(last_load, 0.0);
    alloc.payments[static_cast<size_t>(i)] =
        LoadOf(instance, i, basis_) * instance.bid(last) / last_load;
  }
  return alloc;
}

namespace {

MechanismProperties DensityProps(bool sybil_immune) {
  MechanismProperties p;
  p.strategyproof = true;
  p.sybil_immune = sybil_immune;
  p.profit_guarantee = false;
  p.randomized = false;
  return p;
}

}  // namespace

MechanismPtr MakeCaf() {
  return std::make_unique<DensityMechanism>(
      "caf", LoadBasis::kFairShare, MisfitPolicy::kStop,
      DensityProps(/*sybil_immune=*/false));
}

MechanismPtr MakeCafPlus() {
  return std::make_unique<DensityMechanism>(
      "caf+", LoadBasis::kFairShare, MisfitPolicy::kSkip,
      DensityProps(/*sybil_immune=*/false));
}

MechanismPtr MakeCat() {
  return std::make_unique<DensityMechanism>(
      "cat", LoadBasis::kTotal, MisfitPolicy::kStop,
      DensityProps(/*sybil_immune=*/true));
}

MechanismPtr MakeCatPlus() {
  return std::make_unique<DensityMechanism>(
      "cat+", LoadBasis::kTotal, MisfitPolicy::kSkip,
      DensityProps(/*sybil_immune=*/false));
}

MechanismPtr MakeGv() {
  return std::make_unique<DensityMechanism>(
      "gv", LoadBasis::kUnit, MisfitPolicy::kStop,
      DensityProps(/*sybil_immune=*/false));
}

}  // namespace streambid::auction
