// Copyright 2026 The streambid Authors
// The §II transition phase: during the boundary between subscription
// periods, connection points hold arriving tuples, in-flight tuples
// drain, the network is modified, and held tuples replay before new
// arrivals — "this transition phase ensures the correctness of the
// results output by CQs that continue to execute".

#include <gtest/gtest.h>

#include "stream/engine.h"
#include "stream/query_builder.h"

namespace streambid::stream {
namespace {

/// Emits exactly one tuple per second with increasing sequence numbers.
class SequenceSource final : public StreamSource {
 public:
  explicit SequenceSource(std::string name)
      : StreamSource(std::move(name),
                     MakeSchema({{"seq", ValueType::kInt64}}), 1.0, 1) {}

 protected:
  std::vector<Value> Generate(VirtualTime ts, Rng& rng) override {
    (void)ts;
    (void)rng;
    return {Value(next_++)};
  }

 private:
  int64_t next_ = 0;
};

QueryPlan PassThrough() {
  QueryBuilder b;
  const int src = b.Source("seq");
  const int sel = b.Select(src, "seq", CompareOp::kGe, Value(int64_t{0}));
  return b.Build(sel);
}

QueryPlan EvenOnly() {
  QueryBuilder b;
  const int src = b.Source("seq");
  const int sel = b.Select(src, "seq", CompareOp::kGe, Value(int64_t{0}));
  const int proj = b.Project(sel, {"seq"});
  return b.Build(proj);
}

class TransitionTest : public ::testing::Test {
 protected:
  TransitionTest() : engine_(EngineOptions{100.0, 1.0, 1024}) {
    EXPECT_TRUE(
        engine_.RegisterSource(std::make_unique<SequenceSource>("seq"))
            .ok());
  }

  Engine engine_;
};

TEST_F(TransitionTest, HeldTuplesReplayAfterCommit) {
  ASSERT_TRUE(engine_.InstallQuery(1, PassThrough()).ok());
  engine_.Run(5.0);
  const int64_t before = engine_.sink(1)->tuples;
  ASSERT_GT(before, 0);

  engine_.BeginTransition();
  EXPECT_TRUE(engine_.in_transition());
  // Tuples arriving mid-transition are held at the connection point.
  engine_.Run(5.0);
  EXPECT_EQ(engine_.sink(1)->tuples, before);

  ASSERT_TRUE(engine_.CommitTransition().ok());
  EXPECT_FALSE(engine_.in_transition());
  // Held tuples were replayed: nothing lost.
  const int64_t after = engine_.sink(1)->tuples;
  EXPECT_GT(after, before);
  // Running further continues normally.
  engine_.Run(5.0);
  EXPECT_GT(engine_.sink(1)->tuples, after);
}

TEST_F(TransitionTest, NoTupleLossAcrossTransition) {
  ASSERT_TRUE(engine_.InstallQuery(1, PassThrough()).ok());
  engine_.Run(10.0);
  engine_.BeginTransition();
  engine_.Run(7.0);
  ASSERT_TRUE(engine_.CommitTransition().ok());
  engine_.Run(10.0);
  // Sequence source emits 1/s beginning at t=0: by t=27 it has emitted
  // 28 tuples (0..27). Every one must reach the sink exactly once.
  EXPECT_EQ(engine_.sink(1)->tuples, 28);
  // Sequence numbers in the sink history are consecutive.
  const auto& recent = engine_.sink(1)->recent;
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].field("seq").AsInt64(),
              recent[i - 1].field("seq").AsInt64() + 1);
  }
}

TEST_F(TransitionTest, QuerySwapDuringTransition) {
  ASSERT_TRUE(engine_.InstallQuery(1, PassThrough()).ok());
  engine_.Run(5.0);
  engine_.BeginTransition();
  ASSERT_TRUE(engine_.UninstallQuery(1).ok());
  ASSERT_TRUE(engine_.InstallQuery(2, EvenOnly()).ok());
  engine_.Run(3.0);  // Held.
  ASSERT_TRUE(engine_.CommitTransition().ok());
  engine_.Run(5.0);
  EXPECT_EQ(engine_.sink(1), nullptr);
  // The new query received the held tuples AND the post-commit ones.
  EXPECT_GT(engine_.sink(2)->tuples, 5);
}

TEST_F(TransitionTest, CommitWithoutBeginFails) {
  EXPECT_EQ(engine_.CommitTransition().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(TransitionTest, DoubleBeginIsIdempotent) {
  ASSERT_TRUE(engine_.InstallQuery(1, PassThrough()).ok());
  engine_.BeginTransition();
  engine_.BeginTransition();
  EXPECT_TRUE(engine_.in_transition());
  ASSERT_TRUE(engine_.CommitTransition().ok());
  EXPECT_FALSE(engine_.in_transition());
}

TEST_F(TransitionTest, NewQueryDoesNotSeePreTransitionTuples) {
  // A query installed during the transition must only process tuples
  // held at the connection point (arrivals during the transition) and
  // later ones — not historical data.
  engine_.Run(10.0);  // Tuples 0..10 flow with no queries installed.
  engine_.BeginTransition();
  ASSERT_TRUE(engine_.InstallQuery(3, PassThrough()).ok());
  ASSERT_TRUE(engine_.CommitTransition().ok());
  engine_.Run(10.0);
  // Tuples 11..20 (emitted after t=10) reach the sink.
  EXPECT_EQ(engine_.sink(3)->tuples, 10);
  EXPECT_GE(engine_.sink(3)->recent.front().field("seq").AsInt64(), 11);
}

}  // namespace
}  // namespace streambid::stream
