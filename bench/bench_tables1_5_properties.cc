// Copyright 2026 The streambid Authors
// Tables I and V: the property matrix of the proposed mechanisms,
// verified empirically:
//   - strategyproof: deviation search finds no profitable lie
//     (plus the canned CAR counterexample must succeed);
//   - sybil immune: attack search + the paper's canned attacks
//     (fair-share attack §V-A, Table II vs CAT+, partition attack vs
//     Two-price);
//   - profit guarantee: Two-price expected profit >= OPT_C - 2h;
//   - the Table V relative rankings (admission rate / payoff / profit)
//     computed from a small Figure-4-style sweep.
// Every auction goes through the AdmissionService.

#include <cstdio>

#include "auction/mechanisms/opt_c.h"
#include "bench/bench_common.h"
#include "common/table.h"
#include "gametheory/attacks.h"
#include "gametheory/deviation.h"
#include "gametheory/payoff.h"
#include "gametheory/sybil.h"
#include "workload/generator.h"

namespace {

using namespace streambid;

auction::AuctionInstance SmallShared(uint64_t seed) {
  workload::WorkloadParams p;
  p.num_queries = 40;
  p.base_num_operators = 18;
  p.base_max_sharing = 10;
  Rng rng(seed);
  auto inst = workload::GenerateBaseWorkload(p, rng).ToInstance();
  return std::move(inst).value();
}

bool IsRandomized(service::AdmissionService& service,
                  const std::string& name) {
  auto properties = service.Properties(name);
  STREAMBID_CHECK(properties.ok());
  return properties->randomized;
}

/// Empirical strategyproofness verdict over several seeds. Randomized
/// mechanisms are compared in expectation with common random numbers
/// and a noise-aware tolerance.
bool Strategyproof(service::AdmissionService& service,
                   const std::string& name) {
  gametheory::DeviationOptions options;
  options.probe_other_bids = name == "car";
  if (IsRandomized(service, name)) {
    // Expectation sampling: even with common random numbers, the max
    // over ~200 candidate deviations rides the noise (a 300-trial run
    // produced a spurious +1.4 "gain" that flipped sign at 40k
    // trials). 600 trials with a 2.0 tolerance separates real
    // manipulations (the §V attacks gain 1.5+ deterministically) from
    // sampling artifacts.
    options.trials = 600;
    options.tolerance = 2.0;
  }
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const auction::AuctionInstance inst = SmallShared(seed);
    options.crn_seed = seed + 50;
    const auto r = gametheory::SweepDeviations(
        service, name, inst, inst.total_union_load() * 0.5, options,
        /*seed=*/seed + 50, 10);
    if (r.profitable_deviation_found) return false;
  }
  return true;
}

/// Empirical sybil verdict: generic search plus the paper's canned
/// attacks aimed at this mechanism.
bool SybilImmune(service::AdmissionService& service,
                 const std::string& name) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const auction::AuctionInstance inst = SmallShared(seed);
    const auto r = gametheory::SearchSybilAttacks(
        service, name, inst, inst.total_union_load() * 0.5,
        /*seed=*/seed + 90, 8);
    if (r.Profitable()) return false;
  }
  // Canned §V attacks.
  for (const auto& scenario :
       {gametheory::TableIIScenario(), gametheory::FairShareScenario(),
        gametheory::TwoPricePartitionScenario()}) {
    auto report = gametheory::EvaluateSybilAttack(
        service, name, scenario.instance, scenario.capacity,
        scenario.attacker, scenario.attack, /*seed=*/7,
        IsRandomized(service, name) ? 4000 : 1);
    if (report.ok() && report->Profitable(1e-3)) return false;
  }
  return true;
}

/// Profit-guarantee verdict: expected profit >= OPT_C - 2h on shared
/// instances (Theorem 11). Only meaningful for randomized constant-
/// price style mechanisms; greedy mechanisms fail it on pathological
/// instances — demonstrated with a near-tie two-query instance where
/// first-loser pricing collects almost nothing.
bool ProfitGuarantee(service::AdmissionService& service,
                     const std::string& name) {
  auto mean_profit = [&](const auction::AuctionInstance& inst, double cap,
                         uint64_t seed, int trials) {
    double total = 0.0;
    for (int t = 0; t < trials; ++t) {
      service::AdmissionRequest request;
      request.instance = &inst;
      request.capacity = cap;
      request.mechanism = name;
      request.seed = seed;
      request.request_index = static_cast<uint32_t>(t);
      auto response = service.Admit(request);
      STREAMBID_CHECK(response.ok());
      total += response->metrics.profit;
    }
    return total / trials;
  };

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const auction::AuctionInstance inst = SmallShared(seed);
    const double cap = inst.total_union_load() * 0.5;
    const auto opt = auction::OptimalConstantPricing(inst, cap);
    if (mean_profit(inst, cap, seed, 400) <
        opt.profit - 2.0 * inst.max_bid() - 1e-6) {
      return false;
    }
  }
  // Pathological instance where the bound has teeth (OPT_C >> 2h):
  // 200 near-tied high-value unit-load queries that all fit. Greedy
  // first-loser pricing has no loser and collects 0; Two-price's
  // random-sampling prices collect nearly OPT_C (Theorem 11 assumes
  // distinct valuations, so the tie is broken by epsilons).
  std::vector<auction::OperatorSpec> ops;
  std::vector<auction::QuerySpec> queries;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    ops.push_back({1.0});
    queries.push_back({i, 100.0 - 0.01 * i, {i}});
  }
  auto inst =
      auction::AuctionInstance::Create(std::move(ops), std::move(queries))
          .value();
  const double cap = static_cast<double>(n);
  const auto opt = auction::OptimalConstantPricing(inst, cap);
  return mean_profit(inst, cap, /*seed=*/5, 200) >=
         opt.profit - 2.0 * inst.max_bid() - 1e-6;
}

}  // namespace

int main() {
  using namespace streambid::bench;
  streambid::service::AdmissionService service;
  const BenchConfig config = LoadConfig();
  std::printf("# Tables I & V: empirical property matrix\n");

  const std::vector<std::string> names = {"caf", "caf+", "cat", "cat+",
                                          "two-price"};
  streambid::TextTable matrix(
      {"mechanism", "strategyproof", "sybil_immune", "profit_guarantee"});
  std::vector<std::pair<std::string, double>> artifact;
  for (const std::string& name : names) {
    const bool sp = Strategyproof(service, name);
    const bool si = SybilImmune(service, name);
    const bool pg = ProfitGuarantee(service, name);
    matrix.AddRow({name, sp ? "X" : "x", si ? "X" : "x",
                   pg ? "X" : "x"});
    artifact.emplace_back("strategyproof_" + name, sp ? 1.0 : 0.0);
    artifact.emplace_back("sybil_immune_" + name, si ? 1.0 : 0.0);
    artifact.emplace_back("profit_guarantee_" + name, pg ? 1.0 : 0.0);
  }
  // CAR: the paper's strawman (not in Table I; shown for contrast).
  matrix.AddRow({"car", Strategyproof(service, "car") ? "X" : "x", "-",
                 "-"});
  std::fputs(matrix.ToAligned().c_str(), stdout);
  std::printf("# paper Table I: strategyproof = all of caf/caf+/cat/"
              "cat+/two-price; sybil immune = cat only; profit "
              "guarantee = two-price only; car = neither\n");

  // Table V rankings from a coarse sweep. Capacity 5000 keeps the
  // auction competitive across most of the sharing sweep (at 15000 our
  // calibration saturates past degree ~10 and every density mechanism
  // collapses to "admit everyone free", washing out the rankings).
  BenchConfig small = config;
  small.sets = std::min(small.sets, 3);
  const std::vector<std::string> mechanisms = {"caf", "caf+", "cat",
                                               "cat+", "two-price"};
  const double cap = 5000.0;
  const SweepResult admission =
      RunSweep(service, small, mechanisms, {cap}, AdmissionRateMetric());
  const SweepResult payoff =
      RunSweep(service, small, mechanisms, {cap}, PayoffMetric());
  const SweepResult profit =
      RunSweep(service, small, mechanisms, {cap}, ProfitMetric());
  auto mean = [&](const SweepResult& r, const std::string& m) {
    const auto& s = r.at(cap).at(m);
    double acc = 0.0;
    for (double v : s) acc += v;
    return acc / s.size();
  };
  streambid::TextTable tv(
      {"mechanism", "mean_admission", "mean_payoff", "mean_profit"});
  for (const std::string& m : mechanisms) {
    tv.AddRow({m, streambid::FormatPercent(mean(admission, m), 1),
               streambid::FormatDouble(mean(payoff, m), 0),
               streambid::FormatDouble(mean(profit, m), 0)});
  }
  std::fputs(tv.ToAligned().c_str(), stdout);
  std::printf("# paper Table V: admission High=caf/caf+ Med=cat/cat+ "
              "Low=two-price; payoff High=caf+/cat+ Med=caf/cat "
              "Low=two-price; profit High=caf/cat Med=two-price "
              "Low=caf+/cat+\n");
  for (const std::string& m : mechanisms) {
    artifact.emplace_back("mean_profit_" + m, mean(profit, m));
  }
  WriteBenchJson("tables1_5_properties", artifact);
  return 0;
}
