// Copyright 2026 The streambid Authors
// Fixture: naked new/delete in a hot-path directory. Placement new,
// same-line smart-pointer wraps, and deleted special members are fine.

#include <memory>

struct FixtureWidget {
  FixtureWidget() = default;
  FixtureWidget(const FixtureWidget&) = delete;             // allowed
  FixtureWidget& operator=(const FixtureWidget&) = delete;  // allowed
};

inline int* MakeLeak() {
  return new int(3);  // WANT(naked-new)
}

inline void FreeLeak(int* p) {
  delete p;  // WANT(naked-new)
}

inline int* MakeArray() {
  return new int[4];  // WANT(naked-new)
}

inline void FreeArray(int* p) {
  delete[] p;  // WANT(naked-new)
}

inline std::unique_ptr<FixtureWidget> MakeWrapped() {
  return std::unique_ptr<FixtureWidget>(new FixtureWidget());  // allowed
}

inline void PlacementConstruct(void* buffer) {
  ::new (buffer) FixtureWidget();  // allowed
}
