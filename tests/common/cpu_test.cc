// Copyright 2026 The streambid Authors
// Container-aware CPU counting: the pure cgroup parsers are checked
// against the formats the kernel actually writes, and the composed
// AvailableCpuCount() is pinned to its floor-of-1 / never-oversubscribe
// contract (the exact value depends on where the test runs).

#include "common/cpu.h"

#include <gtest/gtest.h>

#include <thread>

namespace streambid {
namespace {

TEST(CpuTest, ParseCgroupCpuMaxQuotaRoundsUp) {
  // 1.5 CPUs of quota must provision 2 workers, not 1: rounding down
  // would leave granted quota unused.
  EXPECT_EQ(ParseCgroupCpuMax("150000 100000"), 2);
  EXPECT_EQ(ParseCgroupCpuMax("100000 100000"), 1);
  EXPECT_EQ(ParseCgroupCpuMax("400000 100000"), 4);
  EXPECT_EQ(ParseCgroupCpuMax("50000 100000"), 1);
  // The kernel writes a trailing newline.
  EXPECT_EQ(ParseCgroupCpuMax("200000 100000\n"), 2);
}

TEST(CpuTest, ParseCgroupCpuMaxUnlimitedIsZero) {
  EXPECT_EQ(ParseCgroupCpuMax("max 100000"), 0);
  EXPECT_EQ(ParseCgroupCpuMax("max 100000\n"), 0);
}

TEST(CpuTest, ParseCgroupCpuMaxGarbageIsZero) {
  EXPECT_EQ(ParseCgroupCpuMax(""), 0);
  EXPECT_EQ(ParseCgroupCpuMax("banana"), 0);
  EXPECT_EQ(ParseCgroupCpuMax("100000"), 0);
  EXPECT_EQ(ParseCgroupCpuMax("100000 0"), 0);
  EXPECT_EQ(ParseCgroupCpuMax("-100000 100000"), 0);
}

TEST(CpuTest, CpusFromQuotaRoundsUpAndIgnoresUnlimited) {
  EXPECT_EQ(CpusFromQuota(150000, 100000), 2);
  EXPECT_EQ(CpusFromQuota(100000, 100000), 1);
  EXPECT_EQ(CpusFromQuota(1, 100000), 1);
  // cgroup v1 writes -1 for "no quota".
  EXPECT_EQ(CpusFromQuota(-1, 100000), 0);
  EXPECT_EQ(CpusFromQuota(0, 100000), 0);
  EXPECT_EQ(CpusFromQuota(100000, 0), 0);
  EXPECT_EQ(CpusFromQuota(100000, -5), 0);
}

TEST(CpuTest, AvailableCpuCountIsAtLeastOneAndNeverOversubscribes) {
  const int available = AvailableCpuCount();
  EXPECT_GE(available, 1);
  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware > 0) {
    EXPECT_LE(available, static_cast<int>(hardware));
  }
  // Deterministic per environment: two reads agree.
  EXPECT_EQ(available, AvailableCpuCount());
}

}  // namespace
}  // namespace streambid
