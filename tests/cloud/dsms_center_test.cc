// Copyright 2026 The streambid Authors
// The DSMS center: per-period auction -> transition -> execution ->
// billing.

#include "cloud/dsms_center.h"

#include <gtest/gtest.h>

#include "stream/query_builder.h"

namespace streambid::cloud {
namespace {

using stream::CompareOp;
using stream::QueryBuilder;
using stream::QueryPlan;
using stream::QuerySubmission;
using stream::Value;

class DsmsCenterTest : public ::testing::Test {
 protected:
  DsmsCenterTest() : engine_(stream::EngineOptions{2.0, 1.0, 8}) {
    // Tiny capacity (2 units) so the auction actually rejects: each
    // select at 100 tuples/s costs ~1 unit.
    EXPECT_TRUE(engine_
                    .RegisterSource(stream::MakeStockQuoteSource(
                        "quotes", {"IBM", "AAPL", "MSFT"}, 100.0, 11))
                    .ok());
  }

  QuerySubmission MakeSubmission(int id, auction::UserId user, double bid,
                                 double threshold) {
    QueryBuilder b;
    const int src = b.Source("quotes");
    const int sel =
        b.Select(src, "price", CompareOp::kGt, Value(threshold));
    QuerySubmission sub;
    sub.query_id = id;
    sub.user = user;
    sub.bid = bid;
    sub.plan = b.Build(sel);
    return sub;
  }

  stream::Engine engine_;
};

TEST_F(DsmsCenterTest, AdmitsByDensityAndBills) {
  DsmsCenterOptions options;
  options.mechanism = "cat";
  options.period_length = 10.0;
  DsmsCenter center(options, &engine_);

  // Three distinct queries, each ~1 unit load, capacity 2: the two
  // highest-density queries win, the third prices them.
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 100, 50.0, 110.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(2, 200, 40.0, 120.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(3, 300, 10.0, 130.0)).ok());

  auto report = center.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->submissions, 3);
  EXPECT_EQ(report->admitted, 2);
  EXPECT_GT(report->revenue, 0.0);
  EXPECT_EQ(center.total_revenue(), report->revenue);
  // Winners installed and executed.
  for (int qid : report->admitted_ids) {
    EXPECT_TRUE(engine_.IsInstalled(qid));
    EXPECT_NE(engine_.sink(qid), nullptr);
  }
  // The losing query is not installed.
  EXPECT_EQ(report->payments.count(3), 0u);
  EXPECT_FALSE(engine_.IsInstalled(3));
  // Billing attributed to the right users.
  EXPECT_GT(center.ledger().TotalCharged(100), 0.0);
  EXPECT_DOUBLE_EQ(center.ledger().TotalCharged(300), 0.0);
}

TEST_F(DsmsCenterTest, QueriesExpireUnlessResubmitted) {
  DsmsCenterOptions options;
  options.period_length = 5.0;
  DsmsCenter center(options, &engine_);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  auto r1 = center.RunPeriod();
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1->admitted, 1);
  EXPECT_TRUE(engine_.IsInstalled(1));

  // No resubmission: the next period evicts it.
  auto r2 = center.RunPeriod();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->admitted, 0);
  EXPECT_FALSE(engine_.IsInstalled(1));
  EXPECT_TRUE(center.active_queries().empty());
}

TEST_F(DsmsCenterTest, ResubmissionRenews) {
  DsmsCenterOptions options;
  options.period_length = 5.0;
  DsmsCenter center(options, &engine_);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  ASSERT_TRUE(center.RunPeriod().ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  auto r2 = center.RunPeriod();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->admitted, 1);
  EXPECT_TRUE(engine_.IsInstalled(1));
  // Charged every period it wins.
  EXPECT_EQ(center.history().size(), 2u);
}

TEST_F(DsmsCenterTest, SubmitValidation) {
  DsmsCenterOptions options;
  DsmsCenter center(options, &engine_);
  QuerySubmission bad = MakeSubmission(1, 1, -5.0, 110.0);
  EXPECT_EQ(center.Submit(bad).code(), StatusCode::kInvalidArgument);

  QueryBuilder b;
  const int src = b.Source("no_such_stream");
  QuerySubmission unknown;
  unknown.query_id = 2;
  unknown.bid = 5.0;
  unknown.plan = b.Build(src);
  EXPECT_EQ(center.Submit(unknown).code(), StatusCode::kNotFound);

  ASSERT_TRUE(center.Submit(MakeSubmission(3, 1, 5.0, 1.0)).ok());
  EXPECT_EQ(center.Submit(MakeSubmission(3, 1, 5.0, 1.0)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DsmsCenterTest, EmptyPeriodRunsCleanly) {
  DsmsCenterOptions options;
  options.period_length = 3.0;
  DsmsCenter center(options, &engine_);
  auto report = center.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->submissions, 0);
  EXPECT_EQ(report->admitted, 0);
  EXPECT_DOUBLE_EQ(report->revenue, 0.0);
  EXPECT_DOUBLE_EQ(engine_.now(), 3.0);
}

TEST_F(DsmsCenterTest, MeasuredUtilizationReported) {
  DsmsCenterOptions options;
  options.period_length = 10.0;
  DsmsCenter center(options, &engine_);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  auto report = center.RunPeriod();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->measured_utilization, 0.0);
  EXPECT_LE(report->measured_utilization, 1.0);
}

TEST_F(DsmsCenterTest, SharedSubmissionsAdmitMoreThanDisjoint) {
  // Two identical plans share their operator: both fit in capacity 2
  // alongside a third distinct query.
  DsmsCenterOptions options;
  options.period_length = 5.0;
  DsmsCenter center(options, &engine_);
  ASSERT_TRUE(center.Submit(MakeSubmission(1, 1, 50.0, 110.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(2, 2, 40.0, 110.0)).ok());
  ASSERT_TRUE(center.Submit(MakeSubmission(3, 3, 30.0, 120.0)).ok());
  auto report = center.RunPeriod();
  ASSERT_TRUE(report.ok());
  // Queries 1 and 2 share one ~1-unit operator; query 3 needs its own.
  EXPECT_EQ(report->admitted, 3);
}

}  // namespace
}  // namespace streambid::cloud
