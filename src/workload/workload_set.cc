// Copyright 2026 The streambid Authors

#include "workload/workload_set.h"

#include "common/check.h"
#include "workload/generator.h"
#include "workload/splitting.h"

namespace streambid::workload {

WorkloadSet::WorkloadSet(const WorkloadParams& params, uint64_t seed)
    : params_(params), seed_(seed), derive_rng_(seed ^ 0xD15EA5E5u) {
  Rng gen_rng(seed);
  base_ = GenerateBaseWorkload(params, gen_rng);
}

const RawWorkload& WorkloadSet::RawAt(int max_degree) {
  STREAMBID_CHECK_GE(max_degree, 1);
  auto it = raw_cache_.find(max_degree);
  if (it == raw_cache_.end()) {
    // Derivation must be deterministic per (seed, degree) regardless of
    // the order degrees are requested in: fork a degree-specific stream.
    Rng split_rng(seed_ * 0x9E3779B97F4A7C15ull +
                  static_cast<uint64_t>(max_degree));
    it = raw_cache_
             .emplace(max_degree,
                      SplitToMaxDegree(base_, max_degree, split_rng))
             .first;
  }
  return it->second;
}

const auction::AuctionInstance& WorkloadSet::InstanceAt(int max_degree) {
  auto it = instance_cache_.find(max_degree);
  if (it == instance_cache_.end()) {
    auto result = RawAt(max_degree).ToInstance();
    STREAMBID_CHECK(result.ok());
    it = instance_cache_.emplace(max_degree, std::move(result).value())
             .first;
  }
  return it->second;
}

std::vector<int> WorkloadSet::SharingSweep(int base_max, int step) {
  STREAMBID_CHECK_GE(step, 1);
  std::vector<int> degrees;
  degrees.push_back(1);
  for (int s = step; s <= base_max; s += step) {
    if (s != 1) degrees.push_back(s);
  }
  if (degrees.back() != base_max) degrees.push_back(base_max);
  return degrees;
}

}  // namespace streambid::workload
