// Copyright 2026 The streambid Authors

#include "gametheory/payoff.h"

#include "common/check.h"

namespace streambid::gametheory {

double UserPayoff(const auction::AuctionInstance& instance,
                  const auction::Allocation& alloc,
                  const std::vector<double>& values,
                  auction::UserId user) {
  STREAMBID_CHECK_EQ(static_cast<int>(values.size()),
                     instance.num_queries());
  double payoff = 0.0;
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    if (instance.user(i) != user) continue;
    if (!alloc.IsAdmitted(i)) continue;
    payoff += values[static_cast<size_t>(i)] - alloc.Payment(i);
  }
  return payoff;
}

double ExpectedUserPayoff(const auction::Mechanism& mechanism,
                          const auction::AuctionInstance& instance,
                          double capacity,
                          const std::vector<double>& values,
                          auction::UserId user, Rng& rng, int trials) {
  STREAMBID_CHECK_GT(trials, 0);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auction::Allocation alloc =
        mechanism.Run(instance, capacity, rng);
    total += UserPayoff(instance, alloc, values, user);
  }
  return total / trials;
}

std::vector<double> TruthfulValues(
    const auction::AuctionInstance& instance) {
  std::vector<double> values(static_cast<size_t>(instance.num_queries()));
  for (auction::QueryId i = 0; i < instance.num_queries(); ++i) {
    values[static_cast<size_t>(i)] = instance.bid(i);
  }
  return values;
}

}  // namespace streambid::gametheory
