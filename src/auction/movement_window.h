// Copyright 2026 The streambid Authors
// Movement-window payments for the skip-greedy mechanisms CAF+ and CAT+
// (paper Definitions 5 and 6).
//
// For a winning query i, the movement window is the span of priority-list
// positions i could be demoted to (by lowering its bid) while still being
// admitted. last(i) is the first query j after i in the priority list such
// that, were i re-inserted directly after j, the skip-greedy scan would no
// longer admit i. The winner's payment is C_i * b_last(i) / C_last(i) — its
// critical value — or 0 if no such j exists (Definition 6: last(i) = null).
//
// Naively this costs a full re-run of the greedy scan per candidate
// position, O(n^2) per winner. We instead exploit that when i is placed
// directly after j, every query ranked before that slot is processed
// exactly as in the scan over the list *without i*. One simulation of that
// scan per winner suffices: we record the running used-capacity and, for
// each of i's operators, the earliest position at which an admitted winner
// first covers it; then "i fits directly after position k" reduces to
// used_after[k] + remaining_load_i(k) <= capacity. Total cost is
// O(n * |ops|) per winner, which is what makes the paper's Table IV
// CAF+/CAT+ runtimes (~1000x CAF/CAT) tractable to reproduce.

#ifndef STREAMBID_AUCTION_MOVEMENT_WINDOW_H_
#define STREAMBID_AUCTION_MOVEMENT_WINDOW_H_

#include <vector>

#include "auction/instance.h"
#include "auction/types.h"

namespace streambid::auction {

/// Computes last(i) for winner `winner` of a skip-greedy run over
/// `order` (the full priority order including the winner) at `capacity`.
/// Returns kNoQuery when the movement window spans the remainder of the
/// priority list.
QueryId ComputeLast(const AuctionInstance& instance, double capacity,
                    const std::vector<QueryId>& order, QueryId winner);

/// Brute-force reference implementation used by tests: for each candidate
/// position, physically reorders the list and re-runs the skip-greedy
/// scan. O(n^2 * |ops|) per winner.
QueryId ComputeLastBruteForce(const AuctionInstance& instance,
                              double capacity,
                              const std::vector<QueryId>& order,
                              QueryId winner);

}  // namespace streambid::auction

#endif  // STREAMBID_AUCTION_MOVEMENT_WINDOW_H_
