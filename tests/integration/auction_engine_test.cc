// Copyright 2026 The streambid Authors
// Integration: the full §II loop — submissions with shared plans ->
// load estimation -> auction instance -> mechanism -> installation ->
// execution -> measured loads feed the next auction.

#include <gtest/gtest.h>

#include "auction/metrics.h"
#include "service/admission_service.h"
#include "stream/load_estimator.h"
#include "stream/query_builder.h"

namespace streambid {
namespace {

using stream::CompareOp;
using stream::Engine;
using stream::EngineOptions;
using stream::QueryBuilder;
using stream::QuerySubmission;
using stream::Value;

class AuctionEngineTest : public ::testing::Test {
 protected:
  AuctionEngineTest() : engine_(EngineOptions{3.0, 1.0, 8}) {
    EXPECT_TRUE(engine_
                    .RegisterSource(stream::MakeStockQuoteSource(
                        "quotes", {"IBM", "AAPL", "MSFT", "GOOG"}, 100.0,
                        21))
                    .ok());
    EXPECT_TRUE(engine_
                    .RegisterSource(stream::MakeNewsSource(
                        "news", {"IBM", "AAPL", "MSFT", "GOOG"}, 0.6,
                        20.0, 22))
                    .ok());
  }

  QuerySubmission SelectSub(int id, double bid, double threshold) {
    QueryBuilder b;
    const int src = b.Source("quotes");
    const int sel =
        b.Select(src, "price", CompareOp::kGt, Value(threshold));
    QuerySubmission sub;
    sub.query_id = id;
    sub.user = id;
    sub.bid = bid;
    sub.plan = b.Build(sel);
    return sub;
  }

  static service::AdmissionRequest MakeRequest(
      const auction::AuctionInstance& instance,
      const std::string& mechanism, double capacity, uint64_t seed) {
    service::AdmissionRequest request;
    request.instance = &instance;
    request.capacity = capacity;
    request.mechanism = mechanism;
    request.seed = seed;
    request.options.check_feasibility = true;
    return request;
  }

  Engine engine_;
  service::AdmissionService service_;
};

TEST_F(AuctionEngineTest, SharingLetsMoreQueriesFit) {
  // Five users submit the SAME select (one shared ~1-unit operator)
  // plus one user with a distinct select. Capacity 3 admits all six
  // under sharing; without sharing only ~3 would fit.
  std::vector<QuerySubmission> subs;
  for (int i = 0; i < 5; ++i) {
    subs.push_back(SelectSub(i, 50.0 - i, 150.0));
  }
  subs.push_back(SelectSub(99, 45.0, 60.0));

  auto build = stream::BuildAuctionInstance(engine_, subs, {});
  ASSERT_TRUE(build.ok());
  EXPECT_EQ(build->instance.num_operators(), 2);
  EXPECT_EQ(build->instance.sharing_degree(0), 5);

  auto response = service_.Admit(
      MakeRequest(build->instance, "cat", engine_.options().capacity, 1));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->allocation.NumAdmitted(), 6);
}

TEST_F(AuctionEngineTest, WinnersExecuteAndLoadsConverge) {
  std::vector<QuerySubmission> subs = {SelectSub(1, 50.0, 150.0),
                                       SelectSub(2, 40.0, 60.0)};
  auto build = stream::BuildAuctionInstance(engine_, subs, {});
  ASSERT_TRUE(build.ok());

  auto response =
      service_.Admit(MakeRequest(build->instance, "cat", 3.0, 2));
  ASSERT_TRUE(response.ok());
  const auction::Allocation& alloc = response->allocation;
  ASSERT_TRUE(IsFeasible(build->instance, alloc));

  engine_.BeginTransition();
  for (size_t i = 0; i < subs.size(); ++i) {
    if (alloc.IsAdmitted(static_cast<auction::QueryId>(i))) {
      ASSERT_TRUE(
          engine_.InstallQuery(subs[i].query_id, subs[i].plan).ok());
    }
  }
  ASSERT_TRUE(engine_.CommitTransition().ok());
  engine_.Run(20.0);

  // Measured loads now exist for installed signatures; a re-estimate
  // must pick them up (prefer_measured default).
  auto re_estimate =
      stream::EstimatePlanLoad(engine_, subs[0].plan, {});
  ASSERT_TRUE(re_estimate.ok());
  auto measured = engine_.MeasuredLoad(
      subs[0].plan.NodeSignature(subs[0].plan.output_node));
  ASSERT_TRUE(measured.ok());
  EXPECT_DOUBLE_EQ(re_estimate->nodes[1].load, *measured);
  // The analytic model (cost 0.01 x 100/s = 1) should be close to the
  // measurement.
  EXPECT_NEAR(*measured, 1.0, 0.25);
}

TEST_F(AuctionEngineTest, EveryMechanismProducesInstallableWinners) {
  std::vector<QuerySubmission> subs;
  for (int i = 0; i < 6; ++i) {
    subs.push_back(SelectSub(i, 60.0 - 5 * i, 100.0 + 20 * i));
  }
  auto build = stream::BuildAuctionInstance(engine_, subs, {});
  ASSERT_TRUE(build.ok());

  for (const std::string& name : service_.MechanismNames()) {
    auto response =
        service_.Admit(MakeRequest(build->instance, name, 3.0, 3));
    ASSERT_TRUE(response.ok()) << name;
    const auction::Allocation& alloc = response->allocation;
    ASSERT_TRUE(IsFeasible(build->instance, alloc)) << name;

    Engine fresh(EngineOptions{3.0, 1.0, 8});
    ASSERT_TRUE(fresh
                    .RegisterSource(stream::MakeStockQuoteSource(
                        "quotes", {"IBM"}, 100.0, 5))
                    .ok());
    for (size_t i = 0; i < subs.size(); ++i) {
      if (alloc.IsAdmitted(static_cast<auction::QueryId>(i))) {
        ASSERT_TRUE(
            fresh.InstallQuery(subs[i].query_id, subs[i].plan).ok())
            << name;
      }
    }
    fresh.Run(5.0);
    // The engine must not exceed its provisioned capacity on admitted
    // work (the auction's promise).
    EXPECT_LE(fresh.LastRunUtilization(), 1.0 + 0.2) << name;
  }
}

}  // namespace
}  // namespace streambid
