// Copyright 2026 The streambid Authors
// Fixture: seeding an RNG from a clock breaks replay identity.

#include <chrono>
#include <ctime>
#include <random>

inline std::mt19937 TimeSeededEngine() {
  std::mt19937 rng(static_cast<unsigned>(time(nullptr)));  // WANT(time-seed)
  rng.seed(std::chrono::steady_clock::now().time_since_epoch().count());  // WANT(time-seed)
  return rng;
}
